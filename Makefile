# Developer entry points. `make check` is the one-stop gate: full build,
# test suite, the perf smoke, and a bounded fault-injection smoke
# (both timeouts so a hung pool cannot wedge CI).

SMOKE_TIMEOUT ?= 900
JOBS ?= 4

.PHONY: all build test smoke faults-smoke check clean

all: build

build:
	dune build

test:
	dune runtest

smoke: build
	timeout $(SMOKE_TIMEOUT) dune exec bench/main.exe -- --perf-smoke --jobs $(JOBS)

# Small fixed-seed campaign: one benchmark, two rates, all protections.
# Exercises the injector, protection paths, and the resilience report
# end to end in a few seconds; the report is uploaded as a CI artifact.
faults-smoke: build
	timeout $(SMOKE_TIMEOUT) dune exec bin/axmemo_cli.exe -- faults \
	  -b fft --sample --seed 1234 --rates 1e-3,1e-2 --jobs $(JOBS) \
	  --quiet --metrics FAULTS_SMOKE.json

check: build test smoke faults-smoke

clean:
	dune clean
