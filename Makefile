# Developer entry points. `make check` is the one-stop gate: full build,
# test suite, the perf smoke, bounded fault-injection, multi-core co-run,
# open-loop serve, tiered-storage warm-restart and sharded-cluster smokes
# (all under timeouts so a hung pool cannot wedge CI), and the diff gate
# comparing each smoke report against its committed baseline snapshot.

SMOKE_TIMEOUT ?= 900
JOBS ?= 4

.PHONY: all build test smoke faults-smoke corun-smoke serve-smoke bench-serve tier-smoke cluster-smoke diff-gate check clean

all: build

build:
	dune build

test:
	dune runtest

smoke: build
	timeout $(SMOKE_TIMEOUT) dune exec bench/main.exe -- --perf-smoke --jobs $(JOBS)

# Small fixed-seed campaign: one benchmark, two rates, all protections.
# Exercises the injector, protection paths, and the resilience report
# end to end in a few seconds; the report is uploaded as a CI artifact.
faults-smoke: build
	timeout $(SMOKE_TIMEOUT) dune exec bin/axmemo_cli.exe -- faults \
	  -b fft --sample --seed 1234 --rates 1e-3,1e-2 --jobs $(JOBS) \
	  --quiet --metrics FAULTS_SMOKE.json

# Small fixed-seed co-run matrix: two-workload mix over 1 and 2 cores, all
# partitioning policies, fanned over the pool. Exercises the shared LUT,
# arbitration, the scheduler and the bounded co-run report end to end; the
# report is uploaded as a CI artifact.
corun-smoke: build
	timeout $(SMOKE_TIMEOUT) dune exec bin/axmemo_cli.exe -- corun \
	  -b blackscholes,sobel --sample --seed 1234 --cores 1,2 --requests 8 \
	  --jobs $(JOBS) --quiet --metrics CORUN_SMOKE.json

# Small fixed-seed open-loop service matrix: Poisson arrivals at two loads
# over 1 and 2 cores into a bounded drop-tail queue. Exercises arrival
# generation, the open dispatcher, shedding, the latency histograms, the
# SLO accounting and the "service" report section end to end; --wall adds
# the per-run simulator wall time so the gate also watches serve-path
# throughput (with a loose tolerance).
serve-smoke: build
	timeout $(SMOKE_TIMEOUT) dune exec bin/axmemo_cli.exe -- serve \
	  -b blackscholes,sobel --sample --seed 1234 --cores 1,2 --requests 24 \
	  --partition ffa --arrival poisson --load 0.8,2 --queue 4 \
	  --jobs $(JOBS) --wall --quiet --metrics SERVE_SMOKE.json

# The offered-load ramp (bench experiment): saturation sweep over cores and
# partition policies; writes BENCH_SERVE.json with no wall-clock fields, so
# its gate is exact.
bench-serve: build
	timeout $(SMOKE_TIMEOUT) dune exec bench/main.exe -- serve --jobs $(JOBS)

# Warm-restart smoke (bench experiment): a closed co-run with small SRAM
# LUTs spills into the DRAM L3 tier, its LUT state is captured into
# TIER_SNAPSHOT.axs, and a cold vs warm open-loop serve pair is compared on
# the first-window hit rate (the experiment exits nonzero if warm does not
# beat cold). Writes TIER_SMOKE.json with no wall-clock fields, so its gate
# is exact.
tier-smoke: build
	timeout $(SMOKE_TIMEOUT) dune exec bench/main.exe -- tier --jobs $(JOBS)

# Sharded-cluster smoke (bench experiment): the 1/2/4-node scale-out curve
# on the blackscholes+sobel mix plus a kmeans directory-vs-broadcast twin.
# The experiment exits nonzero unless 2 nodes out-serve 1 node, the
# directory sends strictly fewer invalidation messages than the flat
# per-core broadcast fan-out, and the report is byte-identical between
# serial and parallel matrices. Writes CLUSTER_SMOKE.json with no
# wall-clock fields, so its gate is exact.
cluster-smoke: build
	timeout $(SMOKE_TIMEOUT) dune exec bench/main.exe -- cluster --jobs $(JOBS)

# Regression gate: every metric in the fresh smoke reports must match the
# committed baseline exactly (the simulator is deterministic), with one
# exception: summary.sim_wall_seconds is host wall clock, so it carries a
# loose tolerance — wide enough not to flap on machine noise, tight enough
# to catch an order-of-magnitude simulator-throughput regression. A
# legitimate perf or model change updates the snapshot in the same PR:
#   cp BENCH_PR1.json FAULTS_SMOKE.json CORUN_SMOKE.json SERVE_SMOKE.json \
#      BENCH_SERVE.json TIER_SMOKE.json CLUSTER_SMOKE.json bench/baselines/
diff-gate: smoke faults-smoke corun-smoke serve-smoke bench-serve tier-smoke cluster-smoke
	dune exec bin/axmemo_cli.exe -- diff bench/baselines/BENCH_PR1.json BENCH_PR1.json \
	  --tol "summary.sim_wall_seconds=3:0.5" --gate --quiet
	dune exec bin/axmemo_cli.exe -- diff bench/baselines/FAULTS_SMOKE.json FAULTS_SMOKE.json --gate --quiet
	dune exec bin/axmemo_cli.exe -- diff bench/baselines/CORUN_SMOKE.json CORUN_SMOKE.json --gate --quiet
	dune exec bin/axmemo_cli.exe -- diff bench/baselines/SERVE_SMOKE.json SERVE_SMOKE.json \
	  --tol "summary.sim_wall_seconds=3:0.5" --gate --quiet
	dune exec bin/axmemo_cli.exe -- diff bench/baselines/BENCH_SERVE.json BENCH_SERVE.json --gate --quiet
	dune exec bin/axmemo_cli.exe -- diff bench/baselines/TIER_SMOKE.json TIER_SMOKE.json --gate --quiet
	dune exec bin/axmemo_cli.exe -- diff bench/baselines/CLUSTER_SMOKE.json CLUSTER_SMOKE.json --gate --quiet

check: build test diff-gate

clean:
	dune clean
