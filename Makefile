# Developer entry points. `make check` is the one-stop gate: full build,
# test suite, and the perf smoke (bounded so a hung pool cannot wedge CI).

SMOKE_TIMEOUT ?= 900
JOBS ?= 4

.PHONY: all build test smoke check clean

all: build

build:
	dune build

test:
	dune runtest

smoke: build
	timeout $(SMOKE_TIMEOUT) dune exec bench/main.exe -- --perf-smoke --jobs $(JOBS)

check: build test smoke

clean:
	dune clean
