(* End-to-end integration tests through the runner: baseline vs AxMemo vs
   software schemes on real (sample-sized) benchmarks. *)

module W = Axmemo_workloads
module Workload = W.Workload
module Runner = Axmemo.Runner
module Analysis = Axmemo.Analysis

let sample make = make Workload.Sample

let test_blackscholes_end_to_end () =
  let base = Runner.run Baseline (sample W.Blackscholes.make) in
  let memo = Runner.run Runner.l1_8k (sample W.Blackscholes.make) in
  Alcotest.(check bool) "speedup > 2x" true (Runner.speedup ~baseline:base memo > 2.0);
  Alcotest.(check bool) "energy saving > 1.5x" true
    (Runner.energy_saving ~baseline:base memo > 1.5);
  Alcotest.(check bool) "hit rate high" true (memo.hit_rate > 0.8);
  Alcotest.(check bool) "fewer dynamic instructions" true
    (memo.dyn_normal + memo.dyn_memo < base.dyn_normal);
  (* truncation is 0 for blackscholes: outputs must be exact *)
  let loss = Workload.quality_loss ~reference:base.outputs ~approx:memo.outputs in
  Alcotest.(check (float 1e-12)) "zero loss" 0.0 loss;
  Alcotest.(check bool) "monitor never tripped" false memo.memo_disabled;
  Alcotest.(check int) "no hash collisions" 0 memo.collisions

let test_jmeint_no_benefit () =
  let base = Runner.run Baseline (sample W.Jmeint.make) in
  let memo = Runner.run Runner.l1_8k (sample W.Jmeint.make) in
  Alcotest.(check bool) "hit rate ~0" true (memo.hit_rate < 0.01);
  Alcotest.(check bool) "no speedup" true (Runner.speedup ~baseline:base memo < 1.1)

let test_l2_lut_improves_capacity_bound_benchmark () =
  let small = Runner.run Runner.l1_4k (sample W.Inversek2j.make) in
  let large = Runner.run Runner.l1_8k_l2_512k (sample W.Inversek2j.make) in
  Alcotest.(check bool)
    (Printf.sprintf "hit rate grows with capacity (%.3f -> %.3f)" small.hit_rate
       large.hit_rate)
    true
    (large.hit_rate > small.hit_rate +. 0.05)

let test_approximation_matters_for_sobel () =
  let approx = Runner.run Runner.l1_8k (sample W.Sobel.make) in
  let exact =
    Runner.run
      (Hw_memo { l1_bytes = 8192; l2_bytes = None; approximate = false; monitor = true; total_l2 = None; adaptive = false })
      (sample W.Sobel.make)
  in
  Alcotest.(check bool)
    (Printf.sprintf "truncation raises hit rate (%.3f vs %.3f)" approx.hit_rate
       exact.hit_rate)
    true
    (approx.hit_rate > exact.hit_rate +. 0.2)

let test_quality_within_bound () =
  List.iter
    (fun ((meta : Workload.meta), make) ->
      let base = Runner.run Baseline (sample make) in
      let memo = Runner.run Runner.l1_8k_l2_512k (sample make) in
      let loss = Workload.quality_loss ~reference:base.outputs ~approx:memo.outputs in
      Alcotest.(check bool)
        (Printf.sprintf "%s loss %.4f within 10x bound" meta.name loss)
        true
        (loss < 10.0 *. meta.error_bound +. 1e-9))
    W.Registry.all

let test_software_lut_overhead () =
  (* The software scheme roughly doubles dynamic instructions on average
     (Figure 8) and must show a large instruction increase on sobel. *)
  let base = Runner.run Baseline (sample W.Sobel.make) in
  let sw = Runner.run Runner.software_default (sample W.Sobel.make) in
  let ratio =
    float_of_int (sw.dyn_normal + sw.dyn_memo) /. float_of_int base.dyn_normal
  in
  Alcotest.(check bool) (Printf.sprintf "instruction blow-up %.1fx" ratio) true
    (ratio > 2.0);
  Alcotest.(check bool) "software slower than baseline on sobel" true
    (Runner.speedup ~baseline:base sw < 1.0)

let test_software_wins_on_blackscholes () =
  let base = Runner.run Baseline (sample W.Blackscholes.make) in
  let sw = Runner.run Runner.software_default (sample W.Blackscholes.make) in
  Alcotest.(check bool) "software memoization pays off here" true
    (Runner.speedup ~baseline:base sw > 1.2)

let test_atm_cheaper_hash_than_software () =
  let base = Runner.run Baseline (sample W.Blackscholes.make) in
  let sw = Runner.run Runner.software_default (sample W.Blackscholes.make) in
  let atm = Runner.run Runner.atm_default (sample W.Blackscholes.make) in
  Alcotest.(check bool) "ATM faster than software CRC on blackscholes" true
    (Runner.speedup ~baseline:base atm > Runner.speedup ~baseline:base sw)

let test_hw_beats_software_everywhere () =
  List.iter
    (fun ((meta : Workload.meta), make) ->
      let hw = Runner.run Runner.l1_8k_l2_512k (sample make) in
      let sw = Runner.run Runner.software_default (sample make) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: hw (%d cy) <= sw (%d cy)" meta.name hw.cycles sw.cycles)
        true (hw.cycles <= sw.cycles))
    W.Registry.all

let test_result_invariants () =
  List.iter
    (fun cfg ->
      let r = Runner.run cfg (sample W.Fft.make) in
      Alcotest.(check bool) "cycles positive" true (r.cycles > 0);
      Alcotest.(check bool) "hit rate in [0,1]" true (r.hit_rate >= 0.0 && r.hit_rate <= 1.0);
      Alcotest.(check bool) "energy positive" true (r.energy.total_pj > 0.0);
      Alcotest.(check bool) "seconds consistent" true
        (abs_float (r.seconds -. (float_of_int r.cycles /. 2e9)) < 1e-9))
    [ Runner.Baseline; Runner.l1_4k; Runner.l1_8k_l2_256k; Runner.software_default;
      Runner.atm_default ]

let test_analysis_rows () =
  let row = Analysis.analyze ~max_entries:20_000 W.Blackscholes.make in
  Alcotest.(check bool) "candidates found" true (row.total_dynamic_subgraphs > 0);
  Alcotest.(check bool) "unique small" true
    (row.unique_subgraphs > 0 && row.unique_subgraphs < 50);
  Alcotest.(check bool) "high ci ratio" true (row.ci_ratio > 10.0);
  Alcotest.(check bool) "coverage in (0,1]" true (row.coverage > 0.0 && row.coverage <= 1.0)

let test_hw_custom_matches_hw_memo () =
  (* Hw_custom with the stock configuration must reproduce l1_8k exactly. *)
  let stock = Runner.run Runner.l1_8k (sample W.Sobel.make) in
  let custom =
    Runner.run
      (Hw_custom
         {
           label = "stock-as-custom";
           unit_cfg = Axmemo_memo.Memo_unit.default_config;
           approximate = true;
           crc_bytes_per_cycle = Axmemo_isa.Timing.crc_bytes_per_cycle;
         })
      (sample W.Sobel.make)
  in
  Alcotest.(check int) "same cycles" stock.cycles custom.cycles;
  Alcotest.(check bool) "same hit rate" true (stock.hit_rate = custom.hit_rate)

let test_serial_crc_slower () =
  let serial =
    Runner.run
      (Hw_custom
         {
           label = "serial-crc";
           unit_cfg = Axmemo_memo.Memo_unit.default_config;
           approximate = true;
           crc_bytes_per_cycle = 1;
         })
      (sample W.Sobel.make)
  in
  let unrolled = Runner.run Runner.l1_8k (sample W.Sobel.make) in
  Alcotest.(check bool)
    (Printf.sprintf "serial %d >= unrolled %d cycles" serial.cycles unrolled.cycles)
    true
    (serial.cycles >= unrolled.cycles)

let test_crc16_collides () =
  (* A 16-bit tag over tens of thousands of lookups must alias somewhere. *)
  let r =
    Runner.run
      (Hw_custom
         {
           label = "crc16";
           unit_cfg =
             { Axmemo_memo.Memo_unit.default_config with crc = Axmemo_crc.Poly.crc16_ccitt };
           approximate = true;
           crc_bytes_per_cycle = 4;
         })
      (sample W.Inversek2j.make)
  in
  let r32 = Runner.run Runner.l1_8k (sample W.Inversek2j.make) in
  Alcotest.(check bool) (Printf.sprintf "crc16 collisions (%d) > 0" r.collisions) true
    (r.collisions > 0);
  Alcotest.(check int) "crc32 collision-free" 0 r32.collisions

let test_no_coherence_needed_across_cores () =
  (* Section 3.4: LUTs are private per core and need no coherence because
     the same tag always maps to the same data (absent collisions). Run the
     same kernel on two "cores" over different datasets and check that every
     key present in both private LUTs carries bit-identical payloads. *)
  let module MU = Axmemo_memo.Memo_unit in
  let module Transform = Axmemo_compiler.Transform in
  let module Interp = Axmemo_ir.Interp in
  let run_core (instance : Workload.instance) =
    let program =
      Transform.memoize ?barrier:instance.barrier ~entry:instance.entry
        instance.program instance.regions
    in
    (* No entry-retiring epilogue interference: drop trailing invalidates by
       reading the LUT right after the run would be too late, so use a unit
       without monitor and read entries just before returning... the
       transform's epilogue invalidate runs at program exit, which would
       empty the LUT; disable it by renaming the entry lookup: instead run
       with the barrier-free original entry and harvest entries through a
       hook-free second unit. Simplest robust approach: strip the trailing
       invalidates from the entry function. *)
    let strip_invalidates (p : Axmemo_ir.Ir.program) =
      {
        Axmemo_ir.Ir.funcs =
          Array.map
            (fun (f : Axmemo_ir.Ir.func) ->
              {
                f with
                blocks =
                  Array.map
                    (fun (b : Axmemo_ir.Ir.block) ->
                      {
                        b with
                        instrs =
                          Array.of_list
                            (List.filter
                               (function Axmemo_ir.Ir.Memo (Invalidate _) -> false | _ -> true)
                               (Array.to_list b.instrs));
                      })
                    f.blocks;
              })
            p.funcs;
      }
    in
    let program = strip_invalidates program in
    let unit =
      MU.create
        { MU.default_config with monitor = false }
        (Transform.lut_decls instance.program instance.regions)
    in
    let t = Interp.create ~memo:(MU.hooks unit) ~program ~mem:instance.mem () in
    ignore (Interp.run t instance.entry instance.args);
    unit
  in
  (* Two cores working the same option book (a sharded pricing service):
     each builds its own private LUT. *)
  let core0 = run_core (W.Blackscholes.make Workload.Eval) in
  let core1 = run_core (W.Blackscholes.make Workload.Eval) in
  let table u =
    let tbl = Hashtbl.create 1024 in
    List.iter (fun (lut, key, payload) -> Hashtbl.replace tbl (lut, key) payload)
      (MU.lut_entries u);
    tbl
  in
  let t0 = table core0 and t1 = table core1 in
  let shared = ref 0 in
  Hashtbl.iter
    (fun k p0 ->
      match Hashtbl.find_opt t1 k with
      | Some p1 ->
          incr shared;
          Alcotest.(check int64) "same tag, same data across cores" p0 p1
      | None -> ())
    t0;
  (* The cores saw the same book, so the check covers the whole LUT. *)
  Alcotest.(check bool)
    (Printf.sprintf "datasets overlap in the LUTs (%d shared keys)" !shared)
    true (!shared > 0)

let test_determinism () =
  (* Fixed seeds end to end: two identical runs agree cycle for cycle. *)
  let a = Runner.run Runner.l1_8k (sample W.Hotspot.make) in
  let b = Runner.run Runner.l1_8k (sample W.Hotspot.make) in
  Alcotest.(check int) "cycles" a.cycles b.cycles;
  Alcotest.(check int) "instructions" a.dyn_normal b.dyn_normal;
  Alcotest.(check bool) "outputs" true (a.outputs = b.outputs);
  Alcotest.(check bool) "energy" true (a.energy.total_pj = b.energy.total_pj)

let test_config_labels () =
  Alcotest.(check string) "baseline" "baseline" (Runner.config_label Baseline);
  Alcotest.(check string) "hw" "L1(8KB)+L2(512KB)" (Runner.config_label Runner.l1_8k_l2_512k);
  Alcotest.(check string) "noapprox" "L1(8KB)-noapprox"
    (Runner.config_label
       (Hw_memo { l1_bytes = 8192; l2_bytes = None; approximate = false; monitor = true; total_l2 = None; adaptive = false }))

let () =
  Alcotest.run "integration"
    [
      ( "axmemo",
        [
          Alcotest.test_case "blackscholes end to end" `Slow test_blackscholes_end_to_end;
          Alcotest.test_case "jmeint no benefit" `Slow test_jmeint_no_benefit;
          Alcotest.test_case "l2 lut capacity" `Slow test_l2_lut_improves_capacity_bound_benchmark;
          Alcotest.test_case "approximation matters" `Slow test_approximation_matters_for_sobel;
          Alcotest.test_case "quality bounds" `Slow test_quality_within_bound;
        ] );
      ( "contenders",
        [
          Alcotest.test_case "software overhead" `Slow test_software_lut_overhead;
          Alcotest.test_case "software wins blackscholes" `Slow test_software_wins_on_blackscholes;
          Alcotest.test_case "atm cheaper hash" `Slow test_atm_cheaper_hash_than_software;
          Alcotest.test_case "hw beats software" `Slow test_hw_beats_software_everywhere;
        ] );
      ( "plumbing",
        [
          Alcotest.test_case "result invariants" `Slow test_result_invariants;
          Alcotest.test_case "analysis rows" `Slow test_analysis_rows;
          Alcotest.test_case "hw_custom = hw_memo" `Slow test_hw_custom_matches_hw_memo;
          Alcotest.test_case "serial crc slower" `Slow test_serial_crc_slower;
          Alcotest.test_case "crc16 collides" `Slow test_crc16_collides;
          Alcotest.test_case "no coherence needed" `Slow test_no_coherence_needed_across_cores;
          Alcotest.test_case "determinism" `Slow test_determinism;
          Alcotest.test_case "config labels" `Quick test_config_labels;
        ] );
    ]
