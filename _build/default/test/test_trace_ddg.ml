(* Tests for the dynamic tracer and the DDDG candidate analysis. *)

module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder
module Memory = Axmemo_ir.Memory
module Interp = Axmemo_ir.Interp
module Trace = Axmemo_trace.Trace
module Ddg = Axmemo_ddg.Ddg
module Machine = Axmemo_cpu.Machine

let trace_of funcs entry args =
  let program = { Ir.funcs = Array.of_list funcs } in
  let trace = Trace.create ~machine:Machine.hpi ~program () in
  let t =
    Interp.create ~hook:(Trace.hook trace) ~program ~mem:(Memory.create ()) ()
  in
  ignore (Interp.run t entry args);
  trace

(* f(x) = (x + 1) * (x + 2): a little diamond. *)
let diamond () =
  let b = B.create ~name:"f" ~params:[ Ir.I32 ] ~rets:[ Ir.I32 ] () in
  let x = B.param b 0 in
  let a = B.addi b x (B.i32 1) in
  let c = B.addi b x (B.i32 2) in
  B.ret b [ B.muli b a c ];
  B.finish b

let test_trace_entry_count () =
  let tr = trace_of [ diamond () ] "f" [| VI 5L |] in
  Alcotest.(check int) "three vertices" 3 (Array.length (Trace.entries tr))

let test_trace_dataflow () =
  let tr = trace_of [ diamond () ] "f" [| VI 5L |] in
  let e = Trace.entries tr in
  (* entries: 0 = add, 1 = add, 2 = mul with srcs [0;1] *)
  Alcotest.(check bool) "mul consumes both adds" true
    (Array.to_list e.(2).srcs = [ 0; 1 ] || Array.to_list e.(2).srcs = [ 1; 0 ]);
  (* both adds read the parameter: same external id *)
  Alcotest.(check bool) "adds share the external param" true
    (e.(0).srcs = e.(1).srcs && Array.length e.(0).srcs = 1 && e.(0).srcs.(0) < 0)

let test_trace_static_ids_stable_across_iterations () =
  let b = B.create ~name:"loop" ~params:[] ~rets:[ Ir.I32 ] () in
  let acc = B.fresh b in
  B.mov b acc (B.i32 0);
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 5) (fun i ->
      B.mov b acc (B.addi b (B.rv acc) i));
  B.ret b [ B.rv acc ];
  let tr = trace_of [ B.finish b ] "loop" [||] in
  let inst = Trace.static_instances tr in
  (* the loop-body add executes 5 times under one static id *)
  let five = Hashtbl.fold (fun _ n acc -> if n = 5 then acc + 1 else acc) inst 0 in
  Alcotest.(check bool) "some static id repeats 5x" true (five > 0)

let test_trace_load_store_dependency () =
  let b = B.create ~name:"ls" ~params:[ Ir.I64 ] ~rets:[ Ir.I32 ] () in
  let base = B.param b 0 in
  B.store b I32 ~src:(B.addi b (B.i32 1) (B.i32 2)) ~base ~offset:0;
  B.ret b [ B.load b I32 base 0 ];
  let tr = trace_of [ B.finish b ] "ls" [| VI 128L |] in
  let e = Trace.entries tr in
  (* entries: 0 = add, 1 = store, 2 = load; load must depend on the store *)
  Alcotest.(check bool) "load sees store" true (Array.exists (fun s -> s = 1) e.(2).srcs);
  Alcotest.(check bool) "flags" true (e.(2).is_load && e.(1).is_store)

let test_trace_cross_call_renaming () =
  let callee =
    let b = B.create ~name:"g" ~pure:true ~params:[ Ir.I32 ] ~rets:[ Ir.I32 ] () in
    B.ret b [ B.addi b (B.param b 0) (B.i32 10) ];
    B.finish b
  in
  let main =
    let b = B.create ~name:"m" ~params:[] ~rets:[ Ir.I32 ] () in
    let x = B.addi b (B.i32 1) (B.i32 2) in
    match B.call b "g" ~rets:1 [ x ] with
    | [ r ] ->
        B.ret b [ B.addi b r (B.i32 0) ];
        B.finish b
    | _ -> assert false
  in
  let tr = trace_of [ main; callee ] "m" [||] in
  let e = Trace.entries tr in
  (* entries: 0 = caller add, 1 = callee add (param <- entry 0), 2 = final add *)
  Alcotest.(check int) "three entries, call is transparent" 3 (Array.length e);
  Alcotest.(check bool) "callee add reads caller value" true
    (Array.exists (fun s -> s = 0) e.(1).srcs);
  Alcotest.(check bool) "caller uses callee result" true
    (Array.exists (fun s -> s = 1) e.(2).srcs)

let test_trace_truncation () =
  let b = B.create ~name:"big" ~params:[] ~rets:[ Ir.I32 ] () in
  let acc = B.fresh b in
  B.mov b acc (B.i32 0);
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 1000) (fun i ->
      B.mov b acc (B.addi b (B.rv acc) i));
  B.ret b [ B.rv acc ];
  let program = { Ir.funcs = [| B.finish b |] } in
  let trace = Trace.create ~max_entries:50 ~machine:Machine.hpi ~program () in
  let t = Interp.create ~hook:(Trace.hook trace) ~program ~mem:(Memory.create ()) () in
  ignore (Interp.run t "big" [||]);
  Alcotest.(check bool) "truncated" true (Trace.truncated trace);
  Alcotest.(check int) "capped" 50 (Array.length (Trace.entries trace))

(* --- DDG --- *)

let test_consumers () =
  let tr = trace_of [ diamond () ] "f" [| VI 5L |] in
  let cons = Ddg.consumers_of (Trace.entries tr) in
  Alcotest.(check (list int)) "add0 feeds mul" [ 2 ] cons.(0);
  Alcotest.(check (list int)) "mul feeds nothing" [] cons.(2)

let test_grow_candidate_diamond () =
  let tr = trace_of [ diamond () ] "f" [| VI 5L |] in
  let entries = Trace.entries tr in
  let consumers = Ddg.consumers_of entries in
  let params = { Ddg.default_params with min_ci_ratio = 0.0 } in
  match Ddg.grow_candidate params entries ~consumers 2 with
  | None -> Alcotest.fail "expected a candidate rooted at the multiply"
  | Some c ->
      Alcotest.(check int) "whole diamond" 3 (List.length c.vertices);
      (* one external input: the shared parameter *)
      Alcotest.(check int) "single input" 1 c.n_inputs;
      (* two 1-cycle adds + one 3-cycle multiply *)
      Alcotest.(check int) "weight = adds + mul" 5 c.total_weight

let test_grow_candidate_respects_threshold () =
  let tr = trace_of [ diamond () ] "f" [| VI 5L |] in
  let entries = Trace.entries tr in
  let consumers = Ddg.consumers_of entries in
  let params = { Ddg.default_params with min_ci_ratio = 1000.0 } in
  Alcotest.(check bool) "nothing above an absurd threshold" true
    (Ddg.grow_candidate params entries ~consumers 2 = None)

let test_analysis_dedups_loop_iterations () =
  (* A loop recomputing the same expensive expression: many dynamic
     candidates, one unique signature. *)
  let b = B.create ~name:"l" ~params:[ Ir.F32 ] ~rets:[ Ir.F32 ] () in
  let acc = B.fresh b in
  B.mov b acc (B.param b 0);
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 20) (fun _ ->
      let x = B.rv acc in
      let y = B.fdiv b F32 (B.fmul b F32 x x) (B.fadd b F32 x (B.f32 3.0)) in
      B.mov b acc y);
  B.ret b [ B.rv acc ];
  let tr = trace_of [ B.finish b ] "l" [| VF 1.5 |] in
  let a = Ddg.analyze ~params:{ Ddg.default_params with min_ci_ratio = 3.0 } (Trace.entries tr) in
  Alcotest.(check bool) "many dynamic candidates" true (a.total_dynamic >= 20);
  Alcotest.(check bool) "few unique" true (List.length a.unique <= 3);
  Alcotest.(check bool) "coverage positive" true (a.coverage > 0.0 && a.coverage <= 1.0);
  Alcotest.(check bool) "ratio positive" true (a.avg_ci_ratio > 0.0)

let test_analysis_empty_trace () =
  let a = Ddg.analyze [||] in
  Alcotest.(check int) "no candidates" 0 a.total_dynamic;
  Alcotest.(check (float 0.0)) "coverage" 0.0 a.coverage

let prop_candidate_is_closed =
  (* Every candidate must have a single output: no internal vertex feeds a
     consumer outside the set. *)
  QCheck.Test.make ~name:"candidates are closed subgraphs" ~count:30
    (QCheck.int_range 2 30) (fun n ->
      let b = B.create ~name:"p" ~params:[ Ir.I32 ] ~rets:[ Ir.I32 ] () in
      let acc = B.fresh b in
      B.mov b acc (B.param b 0);
      B.for_loop b ~from:(B.i32 0) ~below:(B.i32 n) (fun i ->
          B.mov b acc (B.muli b (B.addi b (B.rv acc) i) (B.i32 3)));
      B.ret b [ B.rv acc ];
      let tr = trace_of [ B.finish b ] "p" [| VI 7L |] in
      let entries = Trace.entries tr in
      let consumers = Ddg.consumers_of entries in
      let a = Ddg.analyze ~params:{ Ddg.default_params with min_ci_ratio = 0.5 } entries in
      List.for_all
        (fun (c : Ddg.candidate) ->
          let in_s v = List.mem v c.vertices in
          List.for_all
            (fun v ->
              v = c.root
              || List.for_all (fun consumer -> in_s consumer) consumers.(v))
            c.vertices)
        a.unique)

let () =
  Alcotest.run "trace_ddg"
    [
      ( "trace",
        [
          Alcotest.test_case "entry count" `Quick test_trace_entry_count;
          Alcotest.test_case "dataflow" `Quick test_trace_dataflow;
          Alcotest.test_case "static ids" `Quick test_trace_static_ids_stable_across_iterations;
          Alcotest.test_case "load-store dep" `Quick test_trace_load_store_dependency;
          Alcotest.test_case "cross-call renaming" `Quick test_trace_cross_call_renaming;
          Alcotest.test_case "truncation" `Quick test_trace_truncation;
        ] );
      ( "ddg",
        [
          Alcotest.test_case "consumers" `Quick test_consumers;
          Alcotest.test_case "grow diamond" `Quick test_grow_candidate_diamond;
          Alcotest.test_case "threshold" `Quick test_grow_candidate_respects_threshold;
          Alcotest.test_case "loop dedup" `Quick test_analysis_dedups_loop_iterations;
          Alcotest.test_case "empty trace" `Quick test_analysis_empty_trace;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_candidate_is_closed ]);
    ]
