(* Per-benchmark tests: every workload builds, validates, runs, and agrees
   with an independent OCaml oracle where one is available. *)

module W = Axmemo_workloads
module Workload = W.Workload
module Ir = Axmemo_ir.Ir
module Memory = Axmemo_ir.Memory
module Interp = Axmemo_ir.Interp
module Rng = Axmemo_util.Rng
module Stats = Axmemo_util.Stats

let run_baseline (instance : Workload.instance) =
  let t = Interp.create ~program:instance.program ~mem:instance.mem () in
  ignore (Interp.run t instance.entry instance.args);
  instance.read_outputs ()

let floats = function
  | Workload.Floats f -> f
  | Workload.Bools _ -> Alcotest.fail "expected float outputs"

let bools = function
  | Workload.Bools b -> b
  | Workload.Floats _ -> Alcotest.fail "expected bool outputs"

(* --- generic checks over the whole registry --- *)

let test_registry_complete () =
  Alcotest.(check int) "ten benchmarks" 10 (List.length W.Registry.all);
  Alcotest.(check (list string)) "paper order"
    [ "blackscholes"; "fft"; "inversek2j"; "jmeint"; "jpeg"; "kmeans"; "sobel";
      "hotspot"; "lavamd"; "srad" ]
    W.Registry.names

let test_find () =
  Alcotest.(check bool) "find hit" true (W.Registry.find "sobel" <> None);
  Alcotest.(check bool) "find miss" true (W.Registry.find "nope" = None)

let generic_checks name make () =
  let (instance : Workload.instance) = make Workload.Sample in
  Alcotest.(check bool) "program validates" true (Ir.validate instance.program = Ok ());
  (* Every region kernel exists, is pure, and trunc arities match. *)
  List.iter
    (fun (r : Axmemo_compiler.Transform.region) ->
      let k = Ir.find_func instance.program r.kernel in
      Alcotest.(check bool) (r.kernel ^ " pure") true k.pure;
      Alcotest.(check int) "trunc arity" (Array.length k.params) (Array.length r.truncs))
    instance.regions;
  let out = run_baseline instance in
  (match out with
  | Workload.Floats f ->
      Alcotest.(check bool) "non-empty" true (Array.length f > 0);
      Alcotest.(check bool) "all finite" true (Array.for_all Float.is_finite f);
      let distinct = Array.length (Array.of_seq (Hashtbl.to_seq_keys (
        let h = Hashtbl.create 16 in
        Array.iter (fun v -> Hashtbl.replace h v ()) f; h))) in
      Alcotest.(check bool) "not constant" true (distinct > 1)
  | Workload.Bools b -> Alcotest.(check bool) "non-empty" true (Array.length b > 0));
  ignore name

let test_sample_eval_disjoint () =
  (* Sample and Eval datasets must differ (disjoint input sets, Section 5). *)
  let a = floats (run_baseline (W.Blackscholes.make Workload.Sample)) in
  let b = floats (run_baseline (W.Blackscholes.make Workload.Eval)) in
  Alcotest.(check bool) "different sizes or content" true
    (Array.length a <> Array.length b || a <> b)

(* --- blackscholes oracle: closed-form prices --- *)

let cndf x =
  let l = abs_float x in
  let k = 1.0 /. (1.0 +. (0.2316419 *. l)) in
  let poly =
    k
    *. (0.319381530
       +. (k *. (-0.356563782 +. (k *. (1.781477937 +. (k *. (-1.821255978 +. (k *. 1.330274429))))))))
  in
  let w = 1.0 -. (0.3989422804 *. exp (-0.5 *. l *. l) *. poly) in
  if x < 0.0 then 1.0 -. w else w

let bs_price s k r v t otype =
  let d1 = (log (s /. k) +. ((r +. (0.5 *. v *. v)) *. t)) /. (v *. sqrt t) in
  let d2 = d1 -. (v *. sqrt t) in
  let call = (s *. cndf d1) -. (k *. exp (-.r *. t) *. cndf d2) in
  if otype > 0.5 then
    (k *. exp (-.r *. t) *. (1.0 -. cndf d2)) -. (s *. (1.0 -. cndf d1))
  else call

let test_blackscholes_oracle () =
  let instance = W.Blackscholes.make Workload.Sample in
  (* Re-read the packed option records before running. *)
  let in_base =
    match instance.args.(0) with Ir.VI v -> Int64.to_int v | _ -> assert false
  in
  let n = 4000 in
  let expected =
    Array.init n (fun i ->
        let f j = Memory.load_f32 instance.mem (in_base + (24 * i) + (4 * j)) in
        bs_price (f 0) (f 1) (f 2) (f 3) (f 4) (f 5))
  in
  let got = floats (run_baseline instance) in
  let err = Stats.output_error ~reference:expected ~approx:got in
  Alcotest.(check bool) (Printf.sprintf "Er vs closed form = %.2g" err) true (err < 1e-3)

(* --- fft oracle: Parseval's theorem --- *)

let test_fft_parseval () =
  let instance = W.Fft.make Workload.Sample in
  let n = 1024 in
  let re0 =
    match instance.args.(0) with
    | Ir.VI v -> Workload.read_f32s instance.mem ~base:(Int64.to_int v) ~count:n
    | _ -> assert false
  in
  let input_energy = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 re0 in
  let out = floats (run_baseline instance) in
  let output_energy = Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 out in
  let ratio = output_energy /. (float_of_int n *. input_energy) in
  Alcotest.(check bool) (Printf.sprintf "Parseval ratio %.4f" ratio) true
    (abs_float (ratio -. 1.0) < 0.01)

(* --- inversek2j oracle: forward(inverse(x)) = x --- *)

let test_inversek2j_roundtrip () =
  let instance = W.Inversek2j.make Workload.Sample in
  let rng = Rng.create 5L in
  let targets = W.Inversek2j.generate_targets rng ~poses:700 ~total:6000 in
  let out = floats (run_baseline instance) in
  let l1 = W.Inversek2j.l1 and l2 = W.Inversek2j.l2 in
  let max_err = ref 0.0 in
  Array.iteri
    (fun i (x, y) ->
      let th1 = out.(2 * i) and th2 = out.((2 * i) + 1) in
      let x' = (l1 *. cos th1) +. (l2 *. cos (th1 +. th2)) in
      let y' = (l1 *. sin th1) +. (l2 *. sin (th1 +. th2)) in
      let e = sqrt (((x -. x') ** 2.0) +. ((y -. y') ** 2.0)) in
      if e > !max_err then max_err := e)
    targets;
  (* millimetre workspace; the f32 + polynomial pipeline keeps the position
     error well under a millimetre *)
  Alcotest.(check bool) (Printf.sprintf "max fk error %.4f mm" !max_err) true
    (!max_err < 1.0)

(* --- jmeint oracle: hand-constructed cases through the kernel --- *)

let run_jmeint_kernel coords =
  let program = { Ir.funcs = [| W.Jmeint.build_kernel () |] } in
  let t = Interp.create ~program ~mem:(Memory.create ()) () in
  match Interp.run t W.Jmeint.kernel_name (Array.map (fun v -> Ir.VF v) coords) with
  | [| VI r |] -> r <> 0L
  | _ -> Alcotest.fail "expected one int"

let test_jmeint_known_cases () =
  (* Two triangles crossing through each other. *)
  let crossing =
    [| 0.0; 0.0; 0.0; 2.0; 0.0; 0.0; 0.0; 2.0; 0.0;
       0.5; 0.5; -1.0; 0.5; 0.5; 1.0; 1.5; 0.5; 0.0 |]
  in
  Alcotest.(check bool) "crossing detected" true (run_jmeint_kernel crossing);
  (* Far apart. *)
  let disjoint =
    [| 0.0; 0.0; 0.0; 1.0; 0.0; 0.0; 0.0; 1.0; 0.0;
       10.0; 10.0; 10.0; 11.0; 10.0; 10.0; 10.0; 11.0; 10.0 |]
  in
  Alcotest.(check bool) "disjoint rejected" false (run_jmeint_kernel disjoint);
  (* Parallel planes, overlapping in x-y but separated in z. *)
  let parallel =
    [| 0.0; 0.0; 0.0; 1.0; 0.0; 0.0; 0.0; 1.0; 0.0;
       0.0; 0.0; 1.0; 1.0; 0.0; 1.0; 0.0; 1.0; 1.0 |]
  in
  Alcotest.(check bool) "parallel rejected" false (run_jmeint_kernel parallel)

let test_jmeint_classes_present () =
  let out = bools (run_baseline (W.Jmeint.make Workload.Sample)) in
  Alcotest.(check bool) "both classes occur" true
    (Array.exists (fun b -> b) out && Array.exists not out)

(* --- jpeg: quantization zeroes high frequencies of a smooth image --- *)

let test_jpeg_sparsity () =
  let out = floats (run_baseline (W.Jpeg.make Workload.Sample)) in
  let zeros = Array.fold_left (fun acc v -> if v = 0.0 then acc + 1 else acc) 0 out in
  let frac = float_of_int zeros /. float_of_int (Array.length out) in
  Alcotest.(check bool) (Printf.sprintf "zero fraction %.2f" frac) true (frac > 0.3);
  Alcotest.(check bool) "some nonzero coefficients" true (frac < 0.99)

let test_jpeg_qtable () =
  Alcotest.(check int) "64 entries" 64 (Array.length W.Jpeg.qtable);
  Alcotest.(check int) "annex K corner" 16 W.Jpeg.qtable.(0)

(* --- kmeans: centroids stay in the colour cube and separate --- *)

let test_kmeans_centroids () =
  let instance = W.Kmeans.make Workload.Sample in
  let out = floats (run_baseline instance) in
  (* outputs are the clustered image: every pixel equals one of k centroids *)
  let distinct = Hashtbl.create 16 in
  let n = Array.length out / 3 in
  for i = 0 to n - 1 do
    Hashtbl.replace distinct (out.(3 * i), out.((3 * i) + 1), out.((3 * i) + 2)) ()
  done;
  Alcotest.(check bool) "at most k distinct colours" true
    (Hashtbl.length distinct <= W.Kmeans.k_clusters);
  Alcotest.(check bool) "at least 2 clusters used" true (Hashtbl.length distinct >= 2);
  Array.iter
    (fun v -> Alcotest.(check bool) "in colour range" true (v >= 0.0 && v <= 256.0))
    out

(* --- sobel oracle: direct convolution --- *)

let test_sobel_oracle () =
  let instance = W.Sobel.make Workload.Sample in
  let width = 64 and height = 64 in
  let rng = Rng.create 7L in
  let img = Workload.synth_image rng ~width ~height ~tones:14 ~slope:0.05 () in
  let f32 x = Int32.float_of_bits (Int32.bits_of_float x) in
  let expected = Array.make (width * height) 0.0 in
  for y = 1 to height - 2 do
    for x = 1 to width - 2 do
      let p dy dx = f32 img.(((y + dy) * width) + x + dx) in
      let gx = p (-1) 1 +. (2.0 *. p 0 1) +. p 1 1 -. (p (-1) (-1) +. (2.0 *. p 0 (-1)) +. p 1 (-1)) in
      let gy = p 1 (-1) +. (2.0 *. p 1 0) +. p 1 1 -. (p (-1) (-1) +. (2.0 *. p (-1) 0) +. p (-1) 1) in
      let m = sqrt ((gx *. gx) +. (gy *. gy)) in
      expected.((y * width) + x) <- Float.min 255.0 m
    done
  done;
  let got = floats (run_baseline instance) in
  let err = Stats.output_error ~reference:expected ~approx:got in
  Alcotest.(check bool) (Printf.sprintf "Er vs direct convolution %.2g" err) true
    (err < 1e-4)

(* --- hotspot: bounded, converging temperatures --- *)

let test_hotspot_sane () =
  let out = floats (run_baseline (W.Hotspot.make Workload.Sample)) in
  Array.iter
    (fun v -> Alcotest.(check bool) "plausible temperature" true (v > 0.0 && v < 500.0))
    out

(* --- lavamd: forces finite, lattice symmetry keeps them bounded --- *)

let test_lavamd_sane () =
  let out = floats (run_baseline (W.Lavamd.make Workload.Sample)) in
  Alcotest.(check bool) "nonzero forces" true (Array.exists (fun v -> abs_float v > 1e-6) out);
  Array.iter
    (fun v -> Alcotest.(check bool) "bounded" true (abs_float v < 1e4))
    out

(* --- srad: diffusion reduces variance --- *)

let test_srad_denoises () =
  let instance = W.Srad.make Workload.Sample in
  let side = 48 in
  let j_base =
    match instance.args.(0) with Ir.VI v -> Int64.to_int v | _ -> assert false
  in
  let before = Workload.read_f32s instance.mem ~base:j_base ~count:(side * side) in
  let var_before = Stats.stddev before in
  let after = floats (run_baseline instance) in
  let var_after = Stats.stddev after in
  Alcotest.(check bool)
    (Printf.sprintf "stddev %.2f -> %.2f" var_before var_after)
    true
    (var_after < var_before)

(* --- memoized smoke: every workload through the full runner --- *)

let memoized_smoke ((meta : Workload.meta), make) () =
  let base = Axmemo.Runner.run Baseline (make Workload.Sample) in
  let r = Axmemo.Runner.run Axmemo.Runner.l1_8k (make Workload.Sample) in
  if meta.name = "jmeint" then
    Alcotest.(check bool) "jmeint stays cold" true (r.hit_rate < 0.01)
  else
    Alcotest.(check bool)
      (Printf.sprintf "%s finds reuse (%.3f)" meta.name r.hit_rate)
      true (r.hit_rate > 0.05);
  Alcotest.(check bool) "monitor stays quiet" false r.memo_disabled;
  let loss = Workload.quality_loss ~reference:base.outputs ~approx:r.outputs in
  Alcotest.(check bool) (Printf.sprintf "%s loss %.4f bounded" meta.name loss) true
    (loss < 0.05)

(* --- synth_image generator properties --- *)

let prop_synth_image_in_range =
  QCheck.Test.make ~name:"synth_image stays in [0,255]" ~count:20 QCheck.int64 (fun seed ->
      let rng = Rng.create seed in
      let img = Workload.synth_image rng ~width:32 ~height:32 () in
      Array.for_all (fun v -> v >= 0.0 && v <= 255.0) img)

let () =
  let generic =
    List.map
      (fun ((m : Workload.meta), make) ->
        Alcotest.test_case m.name `Quick (generic_checks m.name make))
      W.Registry.all
  in
  Alcotest.run "workloads"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_find;
          Alcotest.test_case "sample/eval disjoint" `Quick test_sample_eval_disjoint;
        ] );
      ("builds and runs", generic);
      ( "oracles",
        [
          Alcotest.test_case "blackscholes closed form" `Quick test_blackscholes_oracle;
          Alcotest.test_case "fft parseval" `Quick test_fft_parseval;
          Alcotest.test_case "inversek2j roundtrip" `Quick test_inversek2j_roundtrip;
          Alcotest.test_case "jmeint known cases" `Quick test_jmeint_known_cases;
          Alcotest.test_case "jmeint classes" `Quick test_jmeint_classes_present;
          Alcotest.test_case "jpeg sparsity" `Quick test_jpeg_sparsity;
          Alcotest.test_case "jpeg qtable" `Quick test_jpeg_qtable;
          Alcotest.test_case "kmeans centroids" `Quick test_kmeans_centroids;
          Alcotest.test_case "sobel convolution" `Quick test_sobel_oracle;
          Alcotest.test_case "hotspot bounded" `Quick test_hotspot_sane;
          Alcotest.test_case "lavamd forces" `Quick test_lavamd_sane;
          Alcotest.test_case "srad denoises" `Quick test_srad_denoises;
        ] );
      ( "memoized smoke",
        List.map
          (fun ((m : Workload.meta), _ as wl) ->
            Alcotest.test_case m.name `Slow (memoized_smoke wl))
          W.Registry.all );
      ("properties", [ QCheck_alcotest.to_alcotest prop_synth_image_in_range ]);
    ]
