(* Tests for the software-memoization baselines (software CRC LUT and ATM). *)

module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder
module Memory = Axmemo_ir.Memory
module Interp = Axmemo_ir.Interp
module Transform = Axmemo_compiler.Transform
module Sw = Axmemo_baselines.Software_memo
module Atm = Axmemo_baselines.Atm
module Engine = Axmemo_baselines.Sw_engine

let kernel () =
  let b = B.create ~name:"k" ~pure:true ~params:[ Ir.F32; Ir.F32 ] ~rets:[ Ir.F32 ] () in
  let x = B.param b 0 and y = B.param b 1 in
  B.ret b [ B.fadd b F32 (B.fmul b F32 x y) (B.f32 1.0) ];
  B.finish b

let driver n =
  let b = B.create ~name:"main" ~params:[ Ir.I64; Ir.I64 ] ~rets:[] () in
  let inb = B.param b 0 and outb = B.param b 1 in
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 n) (fun i ->
      let a = B.binop b Add I64 inb (B.cast b Sext_32_64 (B.muli b i (B.i32 8))) in
      let x = B.load b F32 a 0 and y = B.load b F32 a 4 in
      let r = match B.call b "k" ~rets:1 [ x; y ] with [ v ] -> v | _ -> assert false in
      let o = B.binop b Add I64 outb (B.cast b Sext_32_64 (B.muli b i (B.i32 4))) in
      B.store b F32 ~src:r ~base:o ~offset:0);
  B.ret b [];
  B.finish b

let program n = { Ir.funcs = [| driver n; kernel () |] }

let region = { Transform.kernel = "k"; lut_id = 0; truncs = [| 0; 0 |] }

let setup_and_run ?(memoizer = `None) n =
  let mem = Memory.create () in
  let inb = Memory.alloc mem ~bytes:(8 * n) ~align:8 in
  let outb = Memory.alloc mem ~bytes:(4 * n) ~align:8 in
  for i = 0 to n - 1 do
    Memory.store_f32 mem (inb + (8 * i)) (float_of_int (i mod 4));
    Memory.store_f32 mem (inb + (8 * i) + 4) (float_of_int (i mod 3))
  done;
  let p = program n in
  let p =
    match memoizer with
    | `None -> p
    | `Software -> Sw.memoize ~mem ~table_log2:16 ~entry:"main" p [ region ]
    | `Atm -> Atm.memoize ~mem ~table_log2:16 ~entry:"main" p [ region ]
  in
  let t = Interp.create ~program:p ~mem () in
  ignore (Interp.run t "main" [| VI (Int64.of_int inb); VI (Int64.of_int outb) |]);
  (p, Array.init n (fun i -> Memory.load_f32 mem (outb + (4 * i))))

let test_software_validates () =
  let mem = Memory.create () in
  let p = Sw.memoize ~mem ~table_log2:12 ~entry:"main" (program 4) [ region ] in
  Alcotest.(check bool) "validates" true (Ir.validate p = Ok ())

let test_software_preserves_outputs () =
  (* Distinct CRC-32 values on 12 tuples: astronomically unlikely to collide
     in a 2^16 table? Not quite — the tagless table uses low bits only, but
     with 12 distinct keys in 65536 slots a collision is ~0.1%; the fixed
     dataset is collision-free, verified by output equality. *)
  let _, base = setup_and_run ~memoizer:`None 60 in
  let _, sw = setup_and_run ~memoizer:`Software 60 in
  Alcotest.(check bool) "outputs equal" true (base = sw)

let test_software_emits_table_loads () =
  let mem = Memory.create () in
  let p = Sw.memoize ~mem ~table_log2:12 ~entry:"main" (program 4) [ region ] in
  (* Many more loads than before: CRC step-table lookups. *)
  let count pred =
    Array.fold_left
      (fun acc (f : Ir.func) ->
        Array.fold_left
          (fun acc (b : Ir.block) ->
            Array.fold_left (fun acc i -> if pred i then acc + 1 else acc) acc b.instrs)
          acc f.blocks)
      0 (p : Ir.program).funcs
  in
  let loads = count (function Ir.Load _ -> true | _ -> false) in
  Alcotest.(check bool) "crc table loads present" true (loads > 8);
  let memos = count (function Ir.Memo _ -> true | _ -> false) in
  Alcotest.(check int) "no hardware memo instructions" 0 memos

let test_software_hit_miss_labels () =
  let mem = Memory.create () in
  let p = Sw.memoize ~mem ~table_log2:12 ~entry:"main" (program 4) [ region ] in
  let has_prefix prefix =
    Array.exists
      (fun (f : Ir.func) ->
        Array.exists
          (fun (b : Ir.block) ->
            String.length b.label >= String.length prefix
            && String.sub b.label 0 (String.length prefix) = prefix)
          f.blocks)
      (p : Ir.program).funcs
  in
  Alcotest.(check bool) "hit label" true (has_prefix Engine.hit_prefix);
  Alcotest.(check bool) "miss label" true (has_prefix Engine.miss_prefix)

let test_software_hash_matches_real_crc () =
  (* The emitted IR CRC must agree with the reference engine: rerunning the
     same distinct tuples twice through the table must hit the second time,
     which only happens if the IR hash is deterministic; and two different
     tuples must (on this dataset) not alias. Output equality above already
     guarantees values; here we check determinism across reruns. *)
  let _, first = setup_and_run ~memoizer:`Software 30 in
  let _, second = setup_and_run ~memoizer:`Software 30 in
  Alcotest.(check bool) "deterministic" true (first = second)

let test_atm_validates_and_runs () =
  let mem = Memory.create () in
  let p = Atm.memoize ~mem ~table_log2:12 ~entry:"main" (program 4) [ region ] in
  Alcotest.(check bool) "validates" true (Ir.validate p = Ok ())

let test_atm_outputs_reasonable () =
  (* ATM's sampling hash may alias, but on 12 distinct tuples with 8 sampled
     bytes the fixed dataset stays exact. *)
  let _, base = setup_and_run ~memoizer:`None 60 in
  let _, atm = setup_and_run ~memoizer:`Atm 60 in
  let err = Axmemo_util.Stats.output_error ~reference:base ~approx:atm in
  Alcotest.(check bool) "small error" true (err < 0.05)

let test_atm_task_overhead_emitted () =
  let mem = Memory.create () in
  let plain = program 4 in
  let p_sw = Sw.memoize ~mem ~table_log2:12 ~entry:"main" plain [ region ] in
  let p_atm = Atm.memoize ~mem ~table_log2:12 ~entry:"main" plain [ region ] in
  let stores p =
    Array.fold_left
      (fun acc (f : Ir.func) ->
        Array.fold_left
          (fun acc (b : Ir.block) ->
            Array.fold_left
              (fun acc i -> match i with Ir.Store _ -> acc + 1 | _ -> acc)
              acc b.instrs)
          acc f.blocks)
      0 (p : Ir.program).funcs
  in
  (* ATM's task descriptor writes add stores beyond the software scheme's. *)
  Alcotest.(check bool) "atm has extra stores" true (stores p_atm > stores p_sw)

let test_sampled_bytes_constant () =
  Alcotest.(check int) "8 bytes sampled" 8 Atm.sampled_bytes

let test_version_barrier () =
  (* With a barrier between two identical calls, the software scheme must
     miss the second time (version word changed). Observable through the
     update count? Simplest: outputs still correct. *)
  let barrier = Axmemo_workloads.Workload.barrier_func () in
  let main =
    let b = B.create ~name:"main" ~params:[] ~rets:[ Ir.F32; Ir.F32 ] () in
    let r1 = match B.call b "k" ~rets:1 [ B.f32 2.0; B.f32 3.0 ] with [ v ] -> v | _ -> assert false in
    ignore (B.call b barrier.Ir.fname ~rets:0 []);
    let r2 = match B.call b "k" ~rets:1 [ B.f32 2.0; B.f32 3.0 ] with [ v ] -> v | _ -> assert false in
    B.ret b [ r1; r2 ];
    B.finish b
  in
  let p = { Ir.funcs = [| main; kernel (); barrier |] } in
  let mem = Memory.create () in
  let p' =
    Sw.memoize ~mem ~table_log2:12 ~entry:"main" ~barrier:barrier.Ir.fname p [ region ]
  in
  Alcotest.(check bool) "validates" true (Ir.validate p' = Ok ());
  let t = Interp.create ~program:p' ~mem () in
  match Interp.run t "main" [||] with
  | [| VF a; VF b |] ->
      Alcotest.(check (float 1e-6)) "both correct" a b;
      Alcotest.(check (float 1e-6)) "value" 7.0 a
  | _ -> Alcotest.fail "expected two floats"

let prop_software_exact_on_random_data =
  QCheck.Test.make ~name:"software LUT preserves outputs (no truncation)" ~count:15
    (QCheck.int_range 5 40) (fun n ->
      let mk memoizer =
        let mem = Memory.create () in
        let inb = Memory.alloc mem ~bytes:(8 * n) ~align:8 in
        let outb = Memory.alloc mem ~bytes:(4 * n) ~align:8 in
        for i = 0 to n - 1 do
          Memory.store_f32 mem (inb + (8 * i)) (float_of_int (i * i mod 17));
          Memory.store_f32 mem (inb + (8 * i) + 4) (float_of_int (i mod 11))
        done;
        let p = program n in
        let p =
          if memoizer then Sw.memoize ~mem ~table_log2:18 ~entry:"main" p [ region ]
          else p
        in
        let t = Interp.create ~program:p ~mem () in
        ignore (Interp.run t "main" [| VI (Int64.of_int inb); VI (Int64.of_int outb) |]);
        Array.init n (fun i -> Memory.load_f32 mem (outb + (4 * i)))
      in
      mk false = mk true)

let () =
  Alcotest.run "baselines"
    [
      ( "software",
        [
          Alcotest.test_case "validates" `Quick test_software_validates;
          Alcotest.test_case "preserves outputs" `Quick test_software_preserves_outputs;
          Alcotest.test_case "emits table loads" `Quick test_software_emits_table_loads;
          Alcotest.test_case "hit/miss labels" `Quick test_software_hit_miss_labels;
          Alcotest.test_case "deterministic hash" `Quick test_software_hash_matches_real_crc;
          Alcotest.test_case "version barrier" `Quick test_version_barrier;
        ] );
      ( "atm",
        [
          Alcotest.test_case "validates and runs" `Quick test_atm_validates_and_runs;
          Alcotest.test_case "outputs reasonable" `Quick test_atm_outputs_reasonable;
          Alcotest.test_case "task overhead" `Quick test_atm_task_overhead_emitted;
          Alcotest.test_case "sampled bytes" `Quick test_sampled_bytes_constant;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_software_exact_on_random_data ] );
    ]
