(* Accuracy tests of the IR math library against the OCaml stdlib. *)

module Ir = Axmemo_ir.Ir
module Memory = Axmemo_ir.Memory
module Interp = Axmemo_ir.Interp
module Mathlib = Axmemo_workloads.Mathlib

let program = { Ir.funcs = Array.of_list (Mathlib.functions ()) }

let call1 name x =
  let t = Interp.create ~program ~mem:(Memory.create ()) () in
  match Interp.run t name [| VF x |] with
  | [| VF r |] -> r
  | _ -> Alcotest.fail "expected one float result"

let call2 name x y =
  let t = Interp.create ~program ~mem:(Memory.create ()) () in
  match Interp.run t name [| VF x; VF y |] with
  | [| VF r |] -> r
  | _ -> Alcotest.fail "expected one float result"

let close ?(rel = 2e-4) ?(abs = 2e-4) msg expected actual =
  let tol = Float.max abs (rel *. abs_float expected) in
  if abs_float (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.8g, got %.8g (tol %.2g)" msg expected actual tol

let sweep lo hi n f =
  for i = 0 to n - 1 do
    let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (n - 1)) in
    f x
  done

let test_exp () =
  sweep (-20.0) 20.0 200 (fun x ->
      close ~rel:5e-4 (Printf.sprintf "exp %g" x) (exp x) (call1 Mathlib.exp_name x))

let test_exp_extremes () =
  (* Deep negative arguments underflow gracefully toward zero. *)
  Alcotest.(check bool) "exp(-100) tiny" true (call1 Mathlib.exp_name (-100.0) < 1e-30)

let test_log () =
  List.iter
    (fun x -> close ~abs:1e-4 (Printf.sprintf "log %g" x) (log x) (call1 Mathlib.log_name x))
    [ 1e-3; 0.1; 0.5; 1.0; 2.0; 2.718281828; 10.0; 1234.5; 1e6 ]

let test_exp_log_inverse () =
  sweep 0.1 100.0 50 (fun x ->
      close ~rel:1e-3 "exp(log x) = x" x (call1 Mathlib.exp_name (call1 Mathlib.log_name x)))

let test_sin_cos () =
  sweep (-20.0) 20.0 400 (fun x ->
      close ~abs:5e-4 (Printf.sprintf "sin %g" x) (sin x) (call1 Mathlib.sin_name x);
      close ~abs:5e-4 (Printf.sprintf "cos %g" x) (cos x) (call1 Mathlib.cos_name x))

let test_pythagorean () =
  sweep (-6.0) 6.0 60 (fun x ->
      let s = call1 Mathlib.sin_name x and c = call1 Mathlib.cos_name x in
      close ~abs:1e-3 "sin^2+cos^2" 1.0 ((s *. s) +. (c *. c)))

let test_atan () =
  sweep (-10.0) 10.0 200 (fun x ->
      close ~abs:5e-4 (Printf.sprintf "atan %g" x) (atan x) (call1 Mathlib.atan_name x))

let test_atan2_quadrants () =
  let pts =
    [ (1.0, 1.0); (1.0, -1.0); (-1.0, 1.0); (-1.0, -1.0); (0.5, 2.0); (2.0, 0.5);
      (-3.0, 0.7); (0.7, -3.0); (0.0, 1.0); (1.0, 0.0); (-1.0, 0.0) ]
  in
  List.iter
    (fun (y, x) ->
      close ~abs:1e-3
        (Printf.sprintf "atan2 %g %g" y x)
        (atan2 y x) (call2 Mathlib.atan2_name y x))
    pts

let test_atan2_origin () =
  Alcotest.(check (float 1e-6)) "atan2(0,0) defined as 0" 0.0
    (call2 Mathlib.atan2_name 0.0 0.0)

let test_acos_asin () =
  sweep (-0.999) 0.999 100 (fun x ->
      close ~abs:2e-3 (Printf.sprintf "acos %g" x) (acos x) (call1 Mathlib.acos_name x);
      close ~abs:2e-3 (Printf.sprintf "asin %g" x) (asin x) (call1 Mathlib.asin_name x))

let test_acos_bounds () =
  close ~abs:5e-3 "acos 1" 0.0 (call1 Mathlib.acos_name 1.0);
  close ~abs:5e-3 "acos -1" Float.pi (call1 Mathlib.acos_name (-1.0))

let test_all_pure_and_valid () =
  Alcotest.(check bool) "validates" true (Ir.validate program = Ok ());
  Array.iter
    (fun (f : Ir.func) -> Alcotest.(check bool) (f.fname ^ " pure") true f.pure)
    program.funcs

let prop_exp_positive =
  QCheck.Test.make ~name:"exp is positive" ~count:200 (QCheck.float_range (-30.0) 30.0)
    (fun x -> call1 Mathlib.exp_name x > 0.0)

let prop_sin_bounded =
  QCheck.Test.make ~name:"sin in [-1,1]" ~count:200 (QCheck.float_range (-50.0) 50.0)
    (fun x ->
      let s = call1 Mathlib.sin_name x in
      s >= -1.001 && s <= 1.001)

let prop_atan2_range =
  QCheck.Test.make ~name:"atan2 in (-pi, pi]" ~count:200
    QCheck.(pair (float_range (-10.) 10.) (float_range (-10.) 10.))
    (fun (y, x) ->
      QCheck.assume (abs_float y +. abs_float x > 1e-6);
      let a = call2 Mathlib.atan2_name y x in
      a >= -.Float.pi -. 1e-3 && a <= Float.pi +. 1e-3)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_exp_positive; prop_sin_bounded; prop_atan2_range ]

let () =
  Alcotest.run "mathlib"
    [
      ( "accuracy",
        [
          Alcotest.test_case "exp" `Quick test_exp;
          Alcotest.test_case "exp extremes" `Quick test_exp_extremes;
          Alcotest.test_case "log" `Quick test_log;
          Alcotest.test_case "exp/log inverse" `Quick test_exp_log_inverse;
          Alcotest.test_case "sin cos" `Quick test_sin_cos;
          Alcotest.test_case "pythagorean" `Quick test_pythagorean;
          Alcotest.test_case "atan" `Quick test_atan;
          Alcotest.test_case "atan2 quadrants" `Quick test_atan2_quadrants;
          Alcotest.test_case "atan2 origin" `Quick test_atan2_origin;
          Alcotest.test_case "acos asin" `Quick test_acos_asin;
          Alcotest.test_case "acos bounds" `Quick test_acos_bounds;
          Alcotest.test_case "all pure and valid" `Quick test_all_pure_and_valid;
        ] );
      ("properties", qsuite);
    ]
