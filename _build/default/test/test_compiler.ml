(* Tests for the AxMemo code transformation and truncation tuning. *)

module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder
module Memory = Axmemo_ir.Memory
module Interp = Axmemo_ir.Interp
module Payload = Axmemo_ir.Payload
module Transform = Axmemo_compiler.Transform
module Tuning = Axmemo_compiler.Tuning
module MU = Axmemo_memo.Memo_unit

(* kernel k(x, y) = x*y + x, driver maps it over an array. *)
let kernel () =
  let b = B.create ~name:"k" ~pure:true ~params:[ Ir.F32; Ir.F32 ] ~rets:[ Ir.F32 ] () in
  let x = B.param b 0 and y = B.param b 1 in
  B.ret b [ B.fadd b F32 (B.fmul b F32 x y) x ];
  B.finish b

let driver n =
  let b = B.create ~name:"main" ~params:[ Ir.I64; Ir.I64 ] ~rets:[] () in
  let inb = B.param b 0 and outb = B.param b 1 in
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 n) (fun i ->
      let a = B.binop b Add I64 inb (B.cast b Sext_32_64 (B.muli b i (B.i32 8))) in
      let x = B.load b F32 a 0 and y = B.load b F32 a 4 in
      let r =
        match B.call b "k" ~rets:1 [ x; y ] with [ v ] -> v | _ -> assert false
      in
      let o = B.binop b Add I64 outb (B.cast b Sext_32_64 (B.muli b i (B.i32 4))) in
      B.store b F32 ~src:r ~base:o ~offset:0);
  B.ret b [];
  B.finish b

let program n = { Ir.funcs = [| driver n; kernel () |] }

let region = { Transform.kernel = "k"; lut_id = 0; truncs = [| 0; 0 |] }

let count_instrs p pred =
  Array.fold_left
    (fun acc (f : Ir.func) ->
      Array.fold_left
        (fun acc (b : Ir.block) ->
          Array.fold_left (fun acc i -> if pred i then acc + 1 else acc) acc b.instrs)
        acc f.blocks)
    0 (p : Ir.program).funcs

let test_transform_structure () =
  let p = Transform.memoize ~entry:"main" (program 4) [ region ] in
  Alcotest.(check bool) "still validates" true (Ir.validate p = Ok ());
  let lookups = count_instrs p (function Ir.Memo (Lookup _) -> true | _ -> false) in
  let updates = count_instrs p (function Ir.Memo (Update _) -> true | _ -> false) in
  let invs = count_instrs p (function Ir.Memo (Invalidate _) -> true | _ -> false) in
  Alcotest.(check int) "one lookup per call site" 1 lookups;
  Alcotest.(check int) "one update" 1 updates;
  Alcotest.(check int) "invalidate at entry exit" 1 invs

let test_transform_fuses_loads () =
  let p = Transform.memoize ~entry:"main" (program 4) [ region ] in
  let ld_crcs = count_instrs p (function Ir.Memo (Ld_crc _) -> true | _ -> false) in
  let reg_crcs = count_instrs p (function Ir.Memo (Reg_crc _) -> true | _ -> false) in
  Alcotest.(check int) "both loads fused" 2 ld_crcs;
  Alcotest.(check int) "no reg_crc needed" 0 reg_crcs

let test_transform_reg_crc_for_computed_args () =
  (* When the argument is computed (not a load), reg_crc must be used. *)
  let main =
    let b = B.create ~name:"main" ~params:[] ~rets:[ Ir.F32 ] () in
    let x = B.fadd b F32 (B.f32 1.0) (B.f32 2.0) in
    match B.call b "k" ~rets:1 [ x; x ] with
    | [ r ] ->
        B.ret b [ r ];
        B.finish b
    | _ -> assert false
  in
  let p = Transform.memoize ~entry:"main" { Ir.funcs = [| main; kernel () |] } [ region ] in
  let reg_crcs = count_instrs p (function Ir.Memo (Reg_crc _) -> true | _ -> false) in
  Alcotest.(check int) "two reg_crc" 2 reg_crcs

let test_transform_preserves_semantics_exactly () =
  (* With truncation 0 and a real memo unit, memoized output = baseline
     output bit for bit (CRC-32 collisions are absent on this tiny set). *)
  let n = 50 in
  let run memoized =
    let mem = Memory.create () in
    let inb = Memory.alloc mem ~bytes:(8 * n) ~align:8 in
    let outb = Memory.alloc mem ~bytes:(4 * n) ~align:8 in
    for i = 0 to n - 1 do
      Memory.store_f32 mem (inb + (8 * i)) (float_of_int (i mod 7));
      Memory.store_f32 mem (inb + (8 * i) + 4) (float_of_int (i mod 5))
    done;
    let p = program n in
    let p = if memoized then Transform.memoize ~entry:"main" p [ region ] else p in
    let memo =
      if memoized then
        Some (MU.hooks (MU.create MU.default_config (Transform.lut_decls (program n) [ region ])))
      else None
    in
    let t = Interp.create ?memo ~program:p ~mem () in
    ignore (Interp.run t "main" [| VI (Int64.of_int inb); VI (Int64.of_int outb) |]);
    Array.init n (fun i -> Memory.load_f32 mem (outb + (4 * i)))
  in
  Alcotest.(check bool) "bit-identical outputs" true (run false = run true)

let test_transform_actually_hits () =
  let n = 50 in
  let mem = Memory.create () in
  let inb = Memory.alloc mem ~bytes:(8 * n) ~align:8 in
  let outb = Memory.alloc mem ~bytes:(4 * n) ~align:8 in
  for i = 0 to n - 1 do
    Memory.store_f32 mem (inb + (8 * i)) (float_of_int (i mod 3));
    Memory.store_f32 mem (inb + (8 * i) + 4) 1.0
  done;
  let p = Transform.memoize ~entry:"main" (program n) [ region ] in
  let unit = MU.create MU.default_config (Transform.lut_decls (program n) [ region ]) in
  let t = Interp.create ~memo:(MU.hooks unit) ~program:p ~mem () in
  ignore (Interp.run t "main" [| VI (Int64.of_int inb); VI (Int64.of_int outb) |]);
  let s = MU.stats unit in
  Alcotest.(check int) "one lookup per element" n s.lookups;
  (* only 3 distinct inputs -> 47 hits *)
  Alcotest.(check int) "3 misses" 3 s.misses;
  Alcotest.(check int) "invalidate executed" 1 s.invalidations

let test_zero_truncs () =
  let r = { Transform.kernel = "k"; lut_id = 0; truncs = [| 5; 9 |] } in
  Alcotest.(check bool) "zeroed" true ((Transform.zero_truncs r).truncs = [| 0; 0 |])

let test_lut_decls () =
  match Transform.lut_decls (program 1) [ region ] with
  | [ d ] ->
      Alcotest.(check int) "id" 0 d.MU.lut_id;
      Alcotest.(check bool) "payload kind" true (d.MU.payload = Payload.Pf32)
  | _ -> Alcotest.fail "expected one decl"

let test_unknown_kernel_rejected () =
  Alcotest.(check bool) "unknown kernel" true
    (try
       ignore
         (Transform.memoize ~entry:"main" (program 1)
            [ { Transform.kernel = "nope"; lut_id = 0; truncs = [||] } ]);
       false
     with Invalid_argument _ -> true)

let test_impure_kernel_rejected () =
  let impure =
    let b = B.create ~name:"imp" ~params:[ Ir.I64 ] ~rets:[ Ir.I32 ] () in
    B.store b I32 ~src:(B.i32 1) ~base:(B.param b 0) ~offset:0;
    B.ret b [ B.i32 0 ];
    B.finish b
  in
  let p = { Ir.funcs = [| driver 1; kernel (); impure |] } in
  Alcotest.(check bool) "impure rejected" true
    (try
       ignore
         (Transform.memoize ~entry:"main" p
            [ { Transform.kernel = "imp"; lut_id = 0; truncs = [| 0 |] } ]);
       false
     with Invalid_argument _ -> true)

let test_truncs_length_mismatch () =
  Alcotest.(check bool) "length mismatch" true
    (try
       ignore
         (Transform.memoize ~entry:"main" (program 1)
            [ { Transform.kernel = "k"; lut_id = 0; truncs = [| 0 |] } ]);
       false
     with Invalid_argument _ -> true)

let test_barrier_becomes_invalidate () =
  let barrier = Axmemo_workloads.Workload.barrier_func () in
  let main =
    let b = B.create ~name:"main" ~params:[] ~rets:[ Ir.F32 ] () in
    let r1 =
      match B.call b "k" ~rets:1 [ B.f32 1.0; B.f32 2.0 ] with
      | [ v ] -> v
      | _ -> assert false
    in
    ignore (B.call b barrier.Ir.fname ~rets:0 []);
    let r2 =
      match B.call b "k" ~rets:1 [ B.f32 1.0; B.f32 2.0 ] with
      | [ v ] -> v
      | _ -> assert false
    in
    B.ret b [ B.fadd b F32 r1 r2 ];
    B.finish b
  in
  let p = { Ir.funcs = [| main; kernel (); barrier |] } in
  let p' = Transform.memoize ~barrier:barrier.Ir.fname ~entry:"main" p [ region ] in
  let invs = count_instrs p' (function Ir.Memo (Invalidate _) -> true | _ -> false) in
  (* one from the barrier + one at the entry's return *)
  Alcotest.(check int) "barrier + epilogue invalidates" 2 invs;
  let barrier_calls =
    count_instrs p' (function
      | Ir.Call { callee; _ } -> callee = barrier.Ir.fname
      | _ -> false)
  in
  Alcotest.(check int) "marker call removed" 0 barrier_calls

(* --- tuning --- *)

let test_select_truncation_monotone () =
  (* error = n/10 as a mock profile; bound 0.35 -> n = 3 *)
  let n = Tuning.select_truncation ~evaluate:(fun n -> float_of_int n /. 10.0)
      ~error_bound:0.35 ~max_bits:23
  in
  Alcotest.(check int) "largest acceptable" 3 n

let test_select_truncation_zero_when_tight () =
  let n = Tuning.select_truncation ~evaluate:(fun _ -> 1.0) ~error_bound:0.001 ~max_bits:23 in
  Alcotest.(check int) "falls back to exact" 0 n

let test_select_truncation_max () =
  let n = Tuning.select_truncation ~evaluate:(fun _ -> 0.0) ~error_bound:0.001 ~max_bits:16 in
  Alcotest.(check int) "caps at max_bits" 16 n

let prop_transform_always_validates =
  QCheck.Test.make ~name:"transformed programs validate" ~count:30 (QCheck.int_range 1 20)
    (fun n ->
      let p = Transform.memoize ~entry:"main" (program n) [ region ] in
      Ir.validate p = Ok ())

let prop_semantics_preserved_random_inputs =
  QCheck.Test.make ~name:"exact memoization preserves outputs" ~count:20
    (QCheck.list_of_size (QCheck.Gen.return 20) (QCheck.float_range (-50.0) 50.0))
    (fun xs ->
      let xs = Array.of_list xs in
      let n = Array.length xs / 2 in
      QCheck.assume (n > 0);
      let run memoized =
        let mem = Memory.create () in
        let inb = Memory.alloc mem ~bytes:(8 * n) ~align:8 in
        let outb = Memory.alloc mem ~bytes:(4 * n) ~align:8 in
        for i = 0 to n - 1 do
          Memory.store_f32 mem (inb + (8 * i)) xs.(2 * i);
          Memory.store_f32 mem (inb + (8 * i) + 4) xs.((2 * i) + 1)
        done;
        let p = program n in
        let p = if memoized then Transform.memoize ~entry:"main" p [ region ] else p in
        let memo =
          if memoized then
            Some
              (MU.hooks
                 (MU.create MU.default_config (Transform.lut_decls (program n) [ region ])))
          else None
        in
        let t = Interp.create ?memo ~program:p ~mem () in
        ignore (Interp.run t "main" [| VI (Int64.of_int inb); VI (Int64.of_int outb) |]);
        Array.init n (fun i -> Memory.load_f32 mem (outb + (4 * i)))
      in
      run false = run true)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_transform_always_validates; prop_semantics_preserved_random_inputs ]

let () =
  Alcotest.run "compiler"
    [
      ( "transform",
        [
          Alcotest.test_case "structure" `Quick test_transform_structure;
          Alcotest.test_case "fuses loads" `Quick test_transform_fuses_loads;
          Alcotest.test_case "reg_crc fallback" `Quick test_transform_reg_crc_for_computed_args;
          Alcotest.test_case "semantics preserved" `Quick test_transform_preserves_semantics_exactly;
          Alcotest.test_case "actually hits" `Quick test_transform_actually_hits;
          Alcotest.test_case "zero truncs" `Quick test_zero_truncs;
          Alcotest.test_case "lut decls" `Quick test_lut_decls;
          Alcotest.test_case "unknown kernel" `Quick test_unknown_kernel_rejected;
          Alcotest.test_case "impure kernel" `Quick test_impure_kernel_rejected;
          Alcotest.test_case "truncs mismatch" `Quick test_truncs_length_mismatch;
          Alcotest.test_case "barrier" `Quick test_barrier_becomes_invalidate;
        ] );
      ( "tuning",
        [
          Alcotest.test_case "monotone search" `Quick test_select_truncation_monotone;
          Alcotest.test_case "tight bound" `Quick test_select_truncation_zero_when_tight;
          Alcotest.test_case "max bits" `Quick test_select_truncation_max;
        ] );
      ("properties", qsuite);
    ]
