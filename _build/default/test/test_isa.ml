(* Tests for the ISA extension encodings and timing parameters. *)

module E = Axmemo_isa.Encoding
module T = Axmemo_isa.Timing

let all_opcodes = [ E.Op_ld_crc; E.Op_reg_crc; E.Op_lookup; E.Op_update; E.Op_invalidate ]

let test_roundtrip_basic () =
  let i = { E.opcode = Op_ld_crc; lut_id = 3; trunc = 16; reg = 7; imm12 = -100 } in
  match E.decode (E.encode i) with
  | Some d ->
      Alcotest.(check bool) "fields preserved" true (d = i)
  | None -> Alcotest.fail "decode failed"

let test_roundtrip_all_opcodes () =
  List.iter
    (fun opcode ->
      let i = { E.opcode; lut_id = 7; trunc = 63; reg = 31; imm12 = 2047 } in
      Alcotest.(check bool) "roundtrip" true (E.decode (E.encode i) = Some i))
    all_opcodes

let test_decode_invalid_opcode () =
  Alcotest.(check bool) "garbage decodes to None" true (E.decode 0l = None)

let test_encode_range_checks () =
  let base = { E.opcode = E.Op_lookup; lut_id = 0; trunc = 0; reg = 0; imm12 = 0 } in
  let expect_invalid i =
    Alcotest.(check bool) "rejected" true
      (try
         ignore (E.encode i);
         false
       with Invalid_argument _ -> true)
  in
  expect_invalid { base with lut_id = 8 };
  expect_invalid { base with trunc = 64 };
  expect_invalid { base with reg = 32 };
  expect_invalid { base with imm12 = 2048 };
  expect_invalid { base with imm12 = -2049 }

let test_distinct_encodings () =
  let words =
    List.map
      (fun opcode ->
        E.encode { E.opcode; lut_id = 1; trunc = 2; reg = 3; imm12 = 4 })
      all_opcodes
  in
  Alcotest.(check int) "all distinct" (List.length words)
    (List.length (List.sort_uniq compare words))

let test_mnemonics () =
  let m =
    E.mnemonic { E.opcode = Op_lookup; lut_id = 3; trunc = 0; reg = 5; imm12 = 0 }
  in
  Alcotest.(check string) "lookup mnemonic" "lookup x5, LUT#3" m

let test_timing_constants () =
  Alcotest.(check int) "lookup L1" 2 T.lookup_l1_cycles;
  Alcotest.(check int) "lookup L2" 13 T.lookup_l2_cycles;
  Alcotest.(check int) "update" 2 T.update_cycles;
  Alcotest.(check int) "invalidate per way" 1 T.invalidate_cycles_per_way;
  Alcotest.(check int) "serial byte rate" 1 T.crc_cycles_per_byte;
  Alcotest.(check int) "unrolled throughput" 4 T.crc_bytes_per_cycle

let test_crc_cycles () =
  Alcotest.(check int) "0 bytes still 1 cycle" 1 (T.crc_cycles ~bytes:0);
  Alcotest.(check int) "4 bytes" 1 (T.crc_cycles ~bytes:4);
  Alcotest.(check int) "5 bytes" 2 (T.crc_cycles ~bytes:5);
  Alcotest.(check int) "36 bytes" 9 (T.crc_cycles ~bytes:36)

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:500
    QCheck.(
      quad (int_bound 4) (int_bound 7) (pair (int_bound 63) (int_bound 31))
        (int_range (-2048) 2047))
    (fun (op_idx, lut_id, (trunc, reg), imm12) ->
      let opcode = List.nth all_opcodes op_idx in
      let i = { E.opcode; lut_id; trunc; reg; imm12 } in
      E.decode (E.encode i) = Some i)

let () =
  Alcotest.run "isa"
    [
      ( "encoding",
        [
          Alcotest.test_case "roundtrip basic" `Quick test_roundtrip_basic;
          Alcotest.test_case "roundtrip all opcodes" `Quick test_roundtrip_all_opcodes;
          Alcotest.test_case "invalid opcode" `Quick test_decode_invalid_opcode;
          Alcotest.test_case "range checks" `Quick test_encode_range_checks;
          Alcotest.test_case "distinct encodings" `Quick test_distinct_encodings;
          Alcotest.test_case "mnemonics" `Quick test_mnemonics;
        ] );
      ( "timing",
        [
          Alcotest.test_case "table 4 constants" `Quick test_timing_constants;
          Alcotest.test_case "crc cycles" `Quick test_crc_cycles;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
