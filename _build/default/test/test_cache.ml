(* Tests for the set-associative cache model and the two-level hierarchy. *)

module Sa = Axmemo_cache.Sa_cache
module H = Axmemo_cache.Hierarchy

let mk ?(size = 1024) ?(ways = 4) ?(line = 64) () =
  Sa.create ~name:"t" ~size_bytes:size ~ways ~line_bytes:line

let test_geometry () =
  let c = mk () in
  Alcotest.(check int) "sets" 4 (Sa.sets c);
  Alcotest.(check int) "ways" 4 (Sa.ways c);
  Alcotest.(check int) "line" 64 (Sa.line_bytes c)

let test_geometry_invalid () =
  Alcotest.(check bool) "indivisible size rejected" true
    (try
       ignore (Sa.create ~name:"x" ~size_bytes:1000 ~ways:3 ~line_bytes:64);
       false
     with Invalid_argument _ -> true)

let test_miss_then_hit () =
  let c = mk () in
  Alcotest.(check bool) "cold miss" true (Sa.access c ~addr:0 ~write:false = `Miss);
  Alcotest.(check bool) "warm hit" true (Sa.access c ~addr:32 ~write:false = `Hit)

let test_lru_eviction () =
  let c = mk ~size:256 ~ways:2 ~line:64 () in
  (* 2 sets; addresses mapping to set 0: 0, 128, 256, ... *)
  ignore (Sa.access c ~addr:0 ~write:false);
  ignore (Sa.access c ~addr:128 ~write:false);
  (* touch 0 so 128 becomes LRU *)
  ignore (Sa.access c ~addr:0 ~write:false);
  ignore (Sa.access c ~addr:256 ~write:false);
  (* evicts 128 *)
  Alcotest.(check bool) "0 still resident" true (Sa.probe c ~addr:0);
  Alcotest.(check bool) "128 evicted" false (Sa.probe c ~addr:128);
  Alcotest.(check bool) "256 resident" true (Sa.probe c ~addr:256)

let test_probe_no_state_change () =
  let c = mk ~size:256 ~ways:2 ~line:64 () in
  ignore (Sa.access c ~addr:0 ~write:false);
  ignore (Sa.access c ~addr:128 ~write:false);
  (* probing 0 must NOT refresh its LRU position *)
  ignore (Sa.probe c ~addr:0);
  ignore (Sa.access c ~addr:256 ~write:false);
  Alcotest.(check bool) "0 was LRU despite probe" false (Sa.probe c ~addr:0)

let test_stats () =
  let c = mk () in
  ignore (Sa.access c ~addr:0 ~write:false);
  ignore (Sa.access c ~addr:0 ~write:true);
  ignore (Sa.access c ~addr:4096 ~write:false);
  let s = Sa.stats c in
  Alcotest.(check int) "accesses" 3 s.accesses;
  Alcotest.(check int) "hits" 1 s.hits;
  Alcotest.(check int) "misses" 2 s.misses;
  Alcotest.(check int) "writes" 1 s.writes;
  Alcotest.(check (float 1e-9)) "hit rate" (1.0 /. 3.0) (Sa.hit_rate c);
  Sa.reset_stats c;
  Alcotest.(check int) "reset" 0 (Sa.stats c).accesses

let test_invalidate_all () =
  let c = mk () in
  ignore (Sa.access c ~addr:0 ~write:false);
  Sa.invalidate_all c;
  Alcotest.(check bool) "gone" false (Sa.probe c ~addr:0)

(* --- hierarchy --- *)

let test_hierarchy_latencies () =
  let h = H.create H.hpi_default in
  let cfg = H.config h in
  let cold = H.read h ~addr:0 in
  Alcotest.(check int) "cold read = L1+L2+DRAM"
    (cfg.l1_latency + cfg.l2_latency + cfg.dram_latency)
    cold;
  let warm = H.read h ~addr:0 in
  Alcotest.(check int) "warm read = L1" cfg.l1_latency warm

let test_hierarchy_l2_hit () =
  let h =
    H.create { H.hpi_default with l1_size = 128; l1_ways = 2; l2_size = 64 * 1024 }
  in
  let cfg = H.config h in
  (* Fill L1's single set beyond capacity so addr 0 falls back to L2.
     Use far-apart addresses to dodge the next-line prefetcher. *)
  ignore (H.read h ~addr:0);
  ignore (H.read h ~addr:8192);
  ignore (H.read h ~addr:16384);
  let lat = H.read h ~addr:0 in
  Alcotest.(check int) "L2 hit" (cfg.l1_latency + cfg.l2_latency) lat

let test_hierarchy_prefetch_stream () =
  let h = H.create H.hpi_default in
  ignore (H.read h ~addr:0);
  (* Next-line prefetch should have staged the following lines. *)
  let lat = H.read h ~addr:64 in
  Alcotest.(check int) "prefetched line hits L1" (H.config h).l1_latency lat

let test_hierarchy_write () =
  let h = H.create H.hpi_default in
  Alcotest.(check int) "store buffer cost" 1 (H.write h ~addr:0);
  (* write-allocate: a read of the same line now hits *)
  Alcotest.(check int) "allocated" (H.config h).l1_latency (H.read h ~addr:0)

let test_carve_l2 () =
  let c = H.carve_l2 H.hpi_default ~lut_bytes:(256 * 1024) in
  Alcotest.(check int) "ways reduced" 12 c.l2_ways;
  Alcotest.(check int) "size reduced" (768 * 1024) c.l2_size;
  let unchanged = H.carve_l2 H.hpi_default ~lut_bytes:0 in
  Alcotest.(check int) "zero carve unchanged" 16 unchanged.l2_ways

let test_carve_l2_limit () =
  Alcotest.(check bool) "over half rejected" true
    (try
       ignore (H.carve_l2 H.hpi_default ~lut_bytes:(600 * 1024));
       false
     with Invalid_argument _ -> true)

(* --- properties --- *)

let prop_accesses_equal_hits_plus_misses =
  QCheck.Test.make ~name:"accesses = hits + misses" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 500) (int_bound 100_000))
    (fun addrs ->
      let c = mk () in
      List.iter (fun a -> ignore (Sa.access c ~addr:a ~write:false)) addrs;
      let s = Sa.stats c in
      s.accesses = s.hits + s.misses && s.accesses = List.length addrs)

let prop_working_set_within_capacity_never_misses_twice =
  QCheck.Test.make ~name:"small working set has only cold misses" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 200) (int_bound 3))
    (fun lines ->
      (* 4 distinct lines in a 16-line cache: after the cold miss each line
         always hits. *)
      let c = mk () in
      List.iter (fun l -> ignore (Sa.access c ~addr:(l * 64) ~write:false)) lines;
      let distinct = List.sort_uniq compare lines in
      (Sa.stats c).misses = List.length distinct)

let prop_hit_rate_bounded =
  QCheck.Test.make ~name:"hit rate in [0,1]" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 100) (int_bound 10_000))
    (fun addrs ->
      let c = mk () in
      List.iter (fun a -> ignore (Sa.access c ~addr:a ~write:false)) addrs;
      let r = Sa.hit_rate c in
      r >= 0.0 && r <= 1.0)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_accesses_equal_hits_plus_misses;
      prop_working_set_within_capacity_never_misses_twice;
      prop_hit_rate_bounded;
    ]

let () =
  Alcotest.run "cache"
    [
      ( "sa_cache",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "geometry invalid" `Quick test_geometry_invalid;
          Alcotest.test_case "miss then hit" `Quick test_miss_then_hit;
          Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
          Alcotest.test_case "probe is pure" `Quick test_probe_no_state_change;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "invalidate all" `Quick test_invalidate_all;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "latency ladder" `Quick test_hierarchy_latencies;
          Alcotest.test_case "l2 hit" `Quick test_hierarchy_l2_hit;
          Alcotest.test_case "prefetch stream" `Quick test_hierarchy_prefetch_stream;
          Alcotest.test_case "write" `Quick test_hierarchy_write;
          Alcotest.test_case "carve l2" `Quick test_carve_l2;
          Alcotest.test_case "carve limit" `Quick test_carve_l2_limit;
        ] );
      ("properties", qsuite);
    ]
