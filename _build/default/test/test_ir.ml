(* Tests for the IR: memory, builder, validation, payloads, interpreter
   semantics. *)

module Ir = Axmemo_ir.Ir
module Memory = Axmemo_ir.Memory
module B = Axmemo_ir.Builder
module Interp = Axmemo_ir.Interp
module Payload = Axmemo_ir.Payload

let run_func ?memo fn args =
  let program = { Ir.funcs = [| fn |] } in
  let mem = Memory.create () in
  let t = Interp.create ?memo ~program ~mem () in
  Interp.run t fn.Ir.fname args

let run_program ?memo ?hook funcs entry args mem =
  let program = { Ir.funcs = Array.of_list funcs } in
  let t = Interp.create ?memo ?hook ~program ~mem () in
  Interp.run t entry args

let vi = function Ir.VI v -> v | Ir.VF _ -> Alcotest.fail "expected int"
let vf = function Ir.VF v -> v | Ir.VI _ -> Alcotest.fail "expected float"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* --- Memory --- *)

let test_memory_roundtrip () =
  let m = Memory.create () in
  Memory.store_i32 m 0 0xDEADBEEFl;
  Alcotest.(check int32) "i32" 0xDEADBEEFl (Memory.load_i32 m 0);
  Memory.store_i64 m 8 0x1122334455667788L;
  Alcotest.(check int64) "i64" 0x1122334455667788L (Memory.load_i64 m 8);
  Memory.store_f32 m 16 1.5;
  Alcotest.(check (float 0.0)) "f32" 1.5 (Memory.load_f32 m 16);
  Memory.store_f64 m 24 3.14159;
  Alcotest.(check (float 0.0)) "f64" 3.14159 (Memory.load_f64 m 24)

let test_memory_alloc_aligned () =
  let m = Memory.create () in
  let a = Memory.alloc m ~bytes:3 ~align:8 in
  let b = Memory.alloc m ~bytes:8 ~align:64 in
  Alcotest.(check int) "first aligned" 0 (a mod 8);
  Alcotest.(check int) "second aligned" 0 (b mod 64);
  Alcotest.(check bool) "disjoint" true (b >= a + 3)

let test_memory_alloc_bad_align () =
  let m = Memory.create () in
  Alcotest.check_raises "align 3" (Invalid_argument "Memory.alloc: align") (fun () ->
      ignore (Memory.alloc m ~bytes:4 ~align:3))

let test_memory_typed_mismatch () =
  let m = Memory.create () in
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Memory.store: value kind does not match type") (fun () ->
      Memory.store m Ir.I32 0 (VF 1.0))

let test_memory_oom () =
  let m = Memory.create ~size_bytes:4096 () in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Memory.alloc m ~bytes:10_000 ~align:8);
       false
     with Invalid_argument _ -> true)

(* --- Builder + interpreter semantics --- *)

let test_arith_i32_wraparound () =
  let b = B.create ~name:"w" ~params:[] ~rets:[ Ir.I32 ] () in
  B.ret b [ B.addi b (B.i32 0x7FFFFFFF) (B.i32 1) ];
  let r = run_func (B.finish b) [||] in
  Alcotest.(check int64) "wraps to min_int32" (-2147483648L) (vi r.(0))

let test_div_by_zero () =
  let b = B.create ~name:"d" ~params:[ Ir.I32 ] ~rets:[ Ir.I32 ] () in
  B.ret b [ B.binop b Div I32 (B.i32 1) (B.param b 0) ];
  let fn = B.finish b in
  Alcotest.(check bool) "raises" true
    (try
       ignore (run_func fn [| VI 0L |]);
       false
     with Failure _ -> true)

let test_f32_rounding () =
  let b = B.create ~name:"r" ~params:[ Ir.F32 ] ~rets:[ Ir.F32 ] () in
  B.ret b [ B.fadd b F32 (B.param b 0) (B.f32 1e-10) ];
  let r = run_func (B.finish b) [| VF 1.0 |] in
  Alcotest.(check (float 0.0)) "rounded to f32" 1.0 (vf r.(0))

let test_shift_masking () =
  let b = B.create ~name:"s" ~params:[] ~rets:[ Ir.I32 ] () in
  (* shift count 33 on i32 = shift by 1 *)
  B.ret b [ B.binop b Shl I32 (B.i32 1) (B.i32 33) ];
  let r = run_func (B.finish b) [||] in
  Alcotest.(check int64) "mod-32 count" 2L (vi r.(0))

let test_select () =
  let b = B.create ~name:"sel" ~params:[ Ir.I32 ] ~rets:[ Ir.I32 ] () in
  B.ret b [ B.select b (B.param b 0) (B.i32 10) (B.i32 20) ];
  let fn = B.finish b in
  Alcotest.(check int64) "true" 10L (vi (run_func fn [| VI 1L |]).(0));
  Alcotest.(check int64) "false" 20L (vi (run_func fn [| VI 0L |]).(0))

let test_casts_roundtrip () =
  let b = B.create ~name:"c" ~params:[ Ir.F32 ] ~rets:[ Ir.F32 ] () in
  B.ret b [ B.cast b F32_of_bits (B.cast b Bits_of_f32 (B.param b 0)) ];
  let fn = B.finish b in
  Alcotest.(check (float 0.0)) "bits roundtrip" (-2.25) (vf (run_func fn [| VF (-2.25) |]).(0))

let test_f_to_i_truncates () =
  let b = B.create ~name:"f2i" ~params:[ Ir.F32 ] ~rets:[ Ir.I32 ] () in
  B.ret b [ B.cast b F_to_i (B.param b 0) ];
  let fn = B.finish b in
  Alcotest.(check int64) "toward zero pos" 2L (vi (run_func fn [| VF 2.9 |]).(0));
  Alcotest.(check int64) "toward zero neg" (-2L) (vi (run_func fn [| VF (-2.9) |]).(0))

let test_for_loop_sum () =
  let b = B.create ~name:"sum" ~params:[] ~rets:[ Ir.I32 ] () in
  let acc = B.fresh b in
  B.mov b acc (B.i32 0);
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 10) (fun i ->
      B.mov b acc (B.addi b (B.rv acc) i));
  B.ret b [ B.rv acc ];
  let r = run_func (B.finish b) [||] in
  Alcotest.(check int64) "sum 0..9" 45L (vi r.(0))

let test_while_loop () =
  let b = B.create ~name:"wl" ~params:[] ~rets:[ Ir.I32 ] () in
  let x = B.fresh b in
  B.mov b x (B.i32 1);
  B.while_loop b
    ~cond:(fun () -> B.icmp b Ilt I32 (B.rv x) (B.i32 100))
    ~body:(fun () -> B.mov b x (B.muli b (B.rv x) (B.i32 2)));
  B.ret b [ B.rv x ];
  Alcotest.(check int64) "doubles past 100" 128L (vi (run_func (B.finish b) [||]).(0))

let test_if_both_arms () =
  let mk cond_v =
    let b = B.create ~name:"ite" ~params:[ Ir.I32 ] ~rets:[ Ir.I32 ] () in
    let r = B.fresh b in
    B.if_ b (B.param b 0)
      ~then_:(fun () -> B.mov b r (B.i32 111))
      ~else_:(fun () -> B.mov b r (B.i32 222));
    B.ret b [ B.rv r ];
    vi (run_func (B.finish b) [| VI cond_v |]).(0)
  in
  Alcotest.(check int64) "then" 111L (mk 1L);
  Alcotest.(check int64) "else" 222L (mk 0L)

let test_call_results () =
  let callee =
    let b = B.create ~name:"two" ~pure:true ~params:[ Ir.I32 ] ~rets:[ Ir.I32; Ir.I32 ] () in
    B.ret b [ B.addi b (B.param b 0) (B.i32 1); B.addi b (B.param b 0) (B.i32 2) ];
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~params:[] ~rets:[ Ir.I32 ] () in
    match B.call b "two" ~rets:2 [ B.i32 10 ] with
    | [ a; c ] ->
        B.ret b [ B.addi b a c ];
        B.finish b
    | _ -> assert false
  in
  let r = run_program [ main; callee ] "main" [||] (Memory.create ()) in
  Alcotest.(check int64) "11 + 12" 23L (vi r.(0))

let test_loads_stores_via_interp () =
  let b = B.create ~name:"mem" ~params:[ Ir.I64 ] ~rets:[ Ir.F32 ] () in
  let base = B.param b 0 in
  B.store b F32 ~src:(B.f32 2.5) ~base ~offset:8;
  B.ret b [ B.load b F32 base 8 ];
  let r = run_func (B.finish b) [| VI 64L |] in
  Alcotest.(check (float 0.0)) "store/load" 2.5 (vf r.(0))

let test_step_limit () =
  let b = B.create ~name:"inf" ~params:[] ~rets:[ Ir.I32 ] () in
  let x = B.fresh b in
  B.mov b x (B.i32 0);
  B.while_loop b
    ~cond:(fun () -> B.icmp b Ige I32 (B.rv x) (B.i32 0))
    ~body:(fun () -> B.mov b x (B.i32 0));
  B.ret b [ B.rv x ];
  let fn = B.finish b in
  Alcotest.(check bool) "infinite loop trapped" true
    (try
       let program = { Ir.funcs = [| fn |] } in
       let t = Interp.create ~max_steps:1000 ~program ~mem:(Memory.create ()) () in
       ignore (Interp.run t "inf" [||]);
       false
     with Failure _ -> true)

(* --- validation --- *)

let test_validate_ok () =
  let fn =
    let b = B.create ~name:"ok" ~params:[ Ir.I32 ] ~rets:[ Ir.I32 ] () in
    B.ret b [ B.param b 0 ];
    B.finish b
  in
  Alcotest.(check bool) "valid" true (Ir.validate { Ir.funcs = [| fn |] } = Ok ())

let test_validate_unknown_label () =
  let fn =
    {
      Ir.fname = "bad";
      params = [||];
      ret_tys = [||];
      blocks = [| { Ir.label = "entry"; instrs = [||]; term = Jmp "nowhere" } |];
      nregs = 0;
      pure = false;
    }
  in
  Alcotest.(check bool) "invalid" true (Ir.validate { Ir.funcs = [| fn |] } <> Ok ())

let test_validate_pure_store () =
  let b = B.create ~name:"p" ~pure:true ~params:[ Ir.I64 ] ~rets:[] () in
  B.store b I32 ~src:(B.i32 1) ~base:(B.param b 0) ~offset:0;
  B.ret b [];
  let fn = B.finish b in
  Alcotest.(check bool) "pure function may not store" true
    (Ir.validate { Ir.funcs = [| fn |] } <> Ok ())

let test_validate_call_arity () =
  let callee =
    let b = B.create ~name:"g" ~params:[ Ir.I32; Ir.I32 ] ~rets:[] () in
    B.ret b [];
    B.finish b
  in
  let bad =
    let b = B.create ~name:"f" ~params:[] ~rets:[] () in
    ignore (B.call b "g" ~rets:0 [ B.i32 1 ]);
    B.ret b [];
    B.finish b
  in
  Alcotest.(check bool) "arity mismatch caught" true
    (Ir.validate { Ir.funcs = [| bad; callee |] } <> Ok ())

let test_validate_pure_calls_impure () =
  let impure =
    let b = B.create ~name:"imp" ~params:[] ~rets:[] () in
    B.ret b [];
    B.finish b
  in
  let pure =
    let b = B.create ~name:"pur" ~pure:true ~params:[] ~rets:[] () in
    ignore (B.call b "imp" ~rets:0 []);
    B.ret b [];
    B.finish b
  in
  Alcotest.(check bool) "caught" true (Ir.validate { Ir.funcs = [| pure; impure |] } <> Ok ())

let test_builder_double_terminator () =
  let b = B.create ~name:"t" ~params:[] ~rets:[] () in
  B.ret b [];
  Alcotest.(check bool) "second terminator rejected" true
    (try
       B.ret b [];
       false
     with Failure _ -> true)

let test_pp_smoke () =
  let fn =
    let b = B.create ~name:"pp" ~params:[ Ir.F32 ] ~rets:[ Ir.F32 ] () in
    B.ret b [ B.fadd b F32 (B.param b 0) (B.f32 1.0) ];
    B.finish b
  in
  let s = Format.asprintf "%a" Ir.pp_func fn in
  Alcotest.(check bool) "mentions fadd" true (contains s "fadd");
  Alcotest.(check bool) "mentions function name" true (contains s "pp")

let test_static_count () =
  let fn =
    let b = B.create ~name:"sc" ~params:[] ~rets:[ Ir.I32 ] () in
    let x = B.addi b (B.i32 1) (B.i32 2) in
    let y = B.addi b x (B.i32 3) in
    B.ret b [ y ];
    B.finish b
  in
  Alcotest.(check int) "two instrs" 2 (Ir.static_count { Ir.funcs = [| fn |] })

(* --- payload --- *)

let test_payload_roundtrips () =
  let cases =
    [
      (Payload.Pf32, [| Ir.VF 1.5 |]);
      (Payload.Pf64, [| Ir.VF 3.141592653589793 |]);
      (Payload.Pi32, [| Ir.VI (-7L) |]);
      (Payload.Pi64, [| Ir.VI 0x1234_5678_9ABC_DEF0L |]);
      (Payload.Pf32x2, [| Ir.VF (-0.5); Ir.VF 8.25 |]);
      (Payload.Pi32x2, [| Ir.VI 42L; Ir.VI (-42L) |]);
    ]
  in
  List.iter
    (fun (kind, vs) ->
      let back = Payload.unpack kind (Payload.pack kind vs) in
      Alcotest.(check int) "arity" (Array.length vs) (Array.length back);
      Array.iteri
        (fun i v ->
          match (v, back.(i)) with
          | Ir.VI a, Ir.VI b -> Alcotest.(check int64) "int" a b
          | Ir.VF a, Ir.VF b -> Alcotest.(check (float 0.0)) "float" a b
          | _ -> Alcotest.fail "kind flip")
        vs)
    cases

let test_payload_kind_of_rets () =
  Alcotest.(check bool) "f32x2" true (Payload.kind_of_rets [| Ir.F32; Ir.F32 |] = Payload.Pf32x2);
  Alcotest.check_raises "3 outputs rejected"
    (Invalid_argument "Payload.kind_of_rets: signature does not fit one 8-byte LUT entry")
    (fun () -> ignore (Payload.kind_of_rets [| Ir.F32; Ir.F32; Ir.F32 |]))

let test_payload_relative_errors () =
  let e =
    Payload.relative_errors Payload.Pf32
      ~expected:(Payload.pack Payload.Pf32 [| Ir.VF 2.0 |])
      ~actual:(Payload.pack Payload.Pf32 [| Ir.VF 3.0 |])
  in
  Alcotest.(check (float 1e-6)) "50%" 0.5 e.(0)

(* --- memo hooks --- *)

let test_memo_hooks_flow () =
  let sent = ref [] in
  let lookups = ref 0 in
  let updates = ref [] in
  let hooks =
    {
      Interp.send = (fun ~lut ~ty:_ ~trunc:_ v -> sent := (lut, v) :: !sent);
      lookup =
        (fun ~lut:_ ->
          incr lookups;
          if !lookups = 1 then None else Some 77L);
      update = (fun ~lut:_ p -> updates := p :: !updates);
      invalidate = (fun ~lut:_ -> ());
    }
  in
  let fn =
    {
      Ir.fname = "memofn";
      params = [| (0, Ir.I64) |];
      ret_tys = [| Ir.I64 |];
      nregs = 3;
      pure = false;
      blocks =
        [|
          {
            Ir.label = "entry";
            instrs =
              [|
                Ir.Memo (Reg_crc { src = Reg 0; ty = I64; lut = 2; trunc = 0 });
                Ir.Memo (Lookup { dst = 1; lut = 2 });
              |];
            term = Br_memo { on_hit = "hit"; on_miss = "miss" };
          };
          {
            Ir.label = "hit";
            instrs = [| Ir.Mov { dst = 2; src = Reg 1 } |];
            term = Ret [| Reg 2 |];
          };
          {
            Ir.label = "miss";
            instrs = [| Ir.Memo (Update { src = Imm (VI 55L); lut = 2 }) |];
            term = Ret [| Imm (VI 0L) |];
          };
        |];
    }
  in
  let program = { Ir.funcs = [| fn |] } in
  let t = Interp.create ~memo:hooks ~program ~mem:(Memory.create ()) () in
  let r1 = Interp.run t "memofn" [| VI 9L |] in
  Alcotest.(check int64) "miss path" 0L (vi r1.(0));
  Alcotest.(check (list int64)) "update recorded" [ 55L ] !updates;
  let r2 = Interp.run t "memofn" [| VI 9L |] in
  Alcotest.(check int64) "hit path returns payload" 77L (vi r2.(0));
  Alcotest.(check int) "sends observed" 2 (List.length !sent)

let test_memo_without_unit_is_miss () =
  let fn =
    {
      Ir.fname = "m";
      params = [||];
      ret_tys = [| Ir.I64 |];
      nregs = 1;
      pure = false;
      blocks =
        [|
          {
            Ir.label = "entry";
            instrs = [| Ir.Memo (Lookup { dst = 0; lut = 0 }) |];
            term = Br_memo { on_hit = "h"; on_miss = "m" };
          };
          { Ir.label = "h"; instrs = [||]; term = Ret [| Imm (VI 1L) |] };
          { Ir.label = "m"; instrs = [||]; term = Ret [| Imm (VI 0L) |] };
        |];
    }
  in
  let r = run_func fn [||] in
  Alcotest.(check int64) "always miss" 0L (vi r.(0))

(* --- parser --- *)

module Parser = Axmemo_ir.Parser

let test_parse_minimal () =
  let text =
    "pure func inc(r0:i32) -> (i32) [regs=2]\n\
     entry:\n\
     \  r1 = add.i32 r0, 1\n\
     \  ret r1\n"
  in
  match Parser.parse_program text with
  | Error e -> Alcotest.failf "parse failed: %a" Parser.pp_error e
  | Ok p ->
      let fn = Ir.find_func p "inc" in
      Alcotest.(check bool) "pure" true fn.pure;
      Alcotest.(check int) "one block" 1 (Array.length fn.blocks);
      let t = Interp.create ~program:p ~mem:(Memory.create ()) () in
      Alcotest.(check int64) "runs" 42L (vi (Interp.run t "inc" [| VI 41L |]).(0))

let test_parse_comments_and_blanks () =
  let text =
    "# a comment\n\
     \n\
     func f() -> (i32) [regs=1]\n\
     entry:\n\
     \  r0 = const.i32 7\n\
     \  ret r0\n\
     # trailing\n"
  in
  Alcotest.(check bool) "parses" true (Result.is_ok (Parser.parse_program text))

let test_parse_errors_carry_lines () =
  let text = "func f() -> (i32) [regs=1]\nentry:\n  r0 = frobnicate r1\n  ret r0\n" in
  match Parser.parse_program text with
  | Ok _ -> Alcotest.fail "expected a parse error"
  | Error e -> Alcotest.(check int) "line number" 3 e.line

let test_parse_missing_terminator () =
  let text = "func f() -> () [regs=1]\nentry:\n  r0 = const.i32 1\n" in
  Alcotest.(check bool) "rejected" true (Result.is_error (Parser.parse_program text))

let test_parse_rejects_invalid_program () =
  (* Syntactically fine, semantically bad: jump to a missing label. *)
  let text = "func f() -> () [regs=1]\nentry:\n  jmp nowhere\n" in
  Alcotest.(check bool) "validation rejects" true (Result.is_error (Parser.parse_program text))

let all_instruction_forms_func () =
  (* A function exercising every printable instruction form. *)
  let b = B.create ~name:"all_forms" ~params:[ Ir.I64; Ir.F32 ] ~rets:[ Ir.F32 ] () in
  let base = B.param b 0 and x = B.param b 1 in
  let i = B.binop b Add I32 (B.i32 1) (B.i32 2) in
  let i = B.binop b Mul I32 i (B.i32 3) in
  let i = B.binop b Ashr I32 i (B.i32 1) in
  let f = B.fadd b F32 x (B.f32 0.5) in
  let f = B.fdiv b F32 f (B.f32 2.0) in
  let f = B.funop b Fsqrt F32 (B.funop b Fabs F32 f) in
  let c = B.icmp b Ilt I32 i (B.i32 100) in
  let fc = B.fcmp b Fge F32 f (B.f32 0.0) in
  let sel = B.select b c f (B.f32 1.0) in
  let cast = B.cast b I_to_f (B.cast b Trunc_64_32 (B.cast b Bits_of_f32 sel)) in
  B.store b F32 ~src:cast ~base ~offset:4;
  let ld = B.load b F32 base 4 in
  let r = B.fresh b in
  B.if_ b fc ~then_:(fun () -> B.mov b r ld) ~else_:(fun () -> B.mov b r (B.f32 0.0));
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 3) (fun _ -> ());
  B.ret b [ B.rv r ];
  B.finish b

let test_roundtrip_hand_built () =
  let p = { Ir.funcs = [| all_instruction_forms_func () |] } in
  match Parser.roundtrip p with
  | Error e -> Alcotest.failf "roundtrip failed: %a" Parser.pp_error e
  | Ok p' ->
      (* semantic equivalence: same result on the same inputs *)
      let run prog =
        let mem = Memory.create () in
        let t = Interp.create ~program:prog ~mem () in
        vf (Interp.run t "all_forms" [| VI 64L; VF 2.5 |]).(0)
      in
      Alcotest.(check (float 0.0)) "same behaviour" (run p) (run p')

let test_roundtrip_memo_instructions () =
  let fn =
    {
      Ir.fname = "memofn";
      params = [| (0, Ir.I64) |];
      ret_tys = [| Ir.I64 |];
      nregs = 4;
      pure = false;
      blocks =
        [|
          {
            Ir.label = "entry";
            instrs =
              [|
                Ir.Memo (Ld_crc { dst = 1; ty = F32; base = Reg 0; offset = 8; lut = 2; trunc = 5 });
                Ir.Memo (Reg_crc { src = Reg 1; ty = F32; lut = 2; trunc = 5 });
                Ir.Memo (Lookup { dst = 2; lut = 2 });
              |];
            term = Br_memo { on_hit = "hit"; on_miss = "miss" };
          };
          { Ir.label = "hit"; instrs = [||]; term = Ret [| Reg 2 |] };
          {
            Ir.label = "miss";
            instrs =
              [|
                Ir.Memo (Update { src = Imm (VI 5L); lut = 2 });
                Ir.Memo (Invalidate { lut = 2 });
              |];
            term = Ret [| Imm (VI 0L) |];
          };
        |];
    }
  in
  let p = { Ir.funcs = [| fn |] } in
  match Parser.roundtrip p with
  | Error e -> Alcotest.failf "roundtrip failed: %a" Parser.pp_error e
  | Ok p' ->
      Alcotest.(check bool) "structurally equal" true (p = p')

let test_roundtrip_all_workload_programs () =
  (* The printer/parser pair must round-trip every benchmark, before and
     after the AxMemo transformation. *)
  List.iter
    (fun ((meta : Axmemo_workloads.Workload.meta), make) ->
      let (instance : Axmemo_workloads.Workload.instance) =
        make Axmemo_workloads.Workload.Sample
      in
      (match Parser.roundtrip instance.program with
      | Error e -> Alcotest.failf "%s: %a" meta.name Parser.pp_error e
      | Ok p' ->
          Alcotest.(check bool) (meta.name ^ " structurally equal") true
            (p' = instance.program));
      let memoized =
        Axmemo_compiler.Transform.memoize ?barrier:instance.barrier
          ~entry:instance.entry instance.program instance.regions
      in
      match Parser.roundtrip memoized with
      | Error e -> Alcotest.failf "%s (memoized): %a" meta.name Parser.pp_error e
      | Ok p' ->
          Alcotest.(check bool) (meta.name ^ " memoized equal") true (p' = memoized))
    Axmemo_workloads.Registry.all

(* --- properties --- *)

let prop_payload_roundtrip_i32x2 =
  QCheck.Test.make ~name:"Pi32x2 roundtrip" ~count:300 QCheck.(pair int32 int32)
    (fun (a, c) ->
      let vs = [| Ir.VI (Int64.of_int32 a); Ir.VI (Int64.of_int32 c) |] in
      Payload.unpack Payload.Pi32x2 (Payload.pack Payload.Pi32x2 vs) = vs)

let prop_payload_roundtrip_f64 =
  QCheck.Test.make ~name:"Pf64 roundtrip" ~count:300 QCheck.float (fun x ->
      QCheck.assume (Float.is_finite x);
      Payload.unpack Payload.Pf64 (Payload.pack Payload.Pf64 [| Ir.VF x |]) = [| Ir.VF x |])

let prop_interp_matches_native_i32 =
  QCheck.Test.make ~name:"i32 ops match native semantics" ~count:200
    QCheck.(triple int32 int32 (int_bound 5))
    (fun (x, y, op_idx) ->
      let op, native =
        match op_idx with
        | 0 -> (Ir.Add, Int32.add)
        | 1 -> (Ir.Sub, Int32.sub)
        | 2 -> (Ir.Mul, Int32.mul)
        | 3 -> (Ir.And, Int32.logand)
        | 4 -> (Ir.Or, Int32.logor)
        | _ -> (Ir.Xor, Int32.logxor)
      in
      let b = B.create ~name:"op" ~params:[ Ir.I32; Ir.I32 ] ~rets:[ Ir.I32 ] () in
      B.ret b [ B.binop b op I32 (B.param b 0) (B.param b 1) ];
      let r =
        run_func (B.finish b) [| VI (Int64.of_int32 x); VI (Int64.of_int32 y) |]
      in
      vi r.(0) = Int64.of_int32 (native x y))

(* --- random-program fuzzing ---

   Straight-line programs over i32 arithmetic are generated from a seed, run
   through the interpreter, and checked against an independent evaluator that
   re-implements the semantics directly; the same programs also pin the
   printer/parser round trip. *)

module Rng = Axmemo_util.Rng

type rand_op = { op : Ir.binop; a_src : int; b_src : int; b_imm : int64 option }

let random_straightline rng n =
  List.init n (fun i ->
      let op =
        [| Ir.Add; Ir.Sub; Ir.Mul; Ir.And; Ir.Or; Ir.Xor; Ir.Shl; Ir.Lshr; Ir.Ashr |]
        |> Rng.choose rng
      in
      let a_src = Rng.int rng (i + 1) in
      let b_src = Rng.int rng (i + 1) in
      let b_imm =
        if Rng.bool rng then Some (Int64.of_int (Rng.int rng 1000 - 500)) else None
      in
      { op; a_src; b_src; b_imm })

let build_random_func ops =
  (* r0 is the parameter; instruction i defines r(i+1). *)
  let n = List.length ops in
  let instrs =
    List.mapi
      (fun i { op; a_src; b_src; b_imm } ->
        let b = match b_imm with Some v -> Ir.Imm (VI v) | None -> Ir.Reg b_src in
        Ir.Binop { op; ty = I32; dst = i + 1; a = Reg a_src; b })
      ops
  in
  {
    Ir.fname = "fuzz";
    params = [| (0, Ir.I32) |];
    ret_tys = [| Ir.I32 |];
    nregs = n + 1;
    pure = true;
    blocks =
      [| { Ir.label = "entry"; instrs = Array.of_list instrs; term = Ret [| Reg n |] } |];
  }

(* Independent reference semantics. *)
let reference_eval ops x0 =
  let sext32 v = Int64.shift_right (Int64.shift_left v 32) 32 in
  let regs = Array.make (List.length ops + 1) 0L in
  regs.(0) <- sext32 x0;
  List.iteri
    (fun i { op; a_src; b_src; b_imm } ->
      let a = regs.(a_src) in
      let b = match b_imm with Some v -> v | None -> regs.(b_src) in
      let r =
        match op with
        | Ir.Add -> Int64.add a b
        | Ir.Sub -> Int64.sub a b
        | Ir.Mul -> Int64.mul a b
        | Ir.And -> Int64.logand a b
        | Ir.Or -> Int64.logor a b
        | Ir.Xor -> Int64.logxor a b
        | Ir.Shl -> Int64.shift_left a (Int64.to_int b land 31)
        | Ir.Lshr ->
            Int64.shift_right_logical (Int64.logand a 0xFFFFFFFFL) (Int64.to_int b land 31)
        | Ir.Ashr -> Int64.shift_right a (Int64.to_int b land 31)
        | Ir.Div | Ir.Rem -> assert false
      in
      regs.(i + 1) <- sext32 r)
    ops;
  regs.(List.length ops)

let prop_random_programs_match_reference =
  QCheck.Test.make ~name:"random straight-line programs match reference semantics"
    ~count:200
    QCheck.(triple int64 (int_range 1 40) int32)
    (fun (seed, n, x0) ->
      let rng = Rng.create seed in
      let ops = random_straightline rng n in
      let fn = build_random_func ops in
      let x0 = Int64.of_int32 x0 in
      vi (run_func fn [| VI x0 |]).(0) = reference_eval ops x0)

let prop_random_programs_roundtrip =
  QCheck.Test.make ~name:"random programs survive print/parse" ~count:100
    QCheck.(pair int64 (int_range 1 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let fn = build_random_func (random_straightline rng n) in
      match Parser.roundtrip { Ir.funcs = [| fn |] } with
      | Ok p' -> p' = { Ir.funcs = [| fn |] }
      | Error _ -> false)

let prop_random_programs_validate =
  QCheck.Test.make ~name:"random programs validate" ~count:100
    QCheck.(pair int64 (int_range 1 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let fn = build_random_func (random_straightline rng n) in
      Ir.validate { Ir.funcs = [| fn |] } = Ok ())

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_payload_roundtrip_i32x2; prop_payload_roundtrip_f64;
      prop_interp_matches_native_i32; prop_random_programs_match_reference;
      prop_random_programs_roundtrip; prop_random_programs_validate ]

let () =
  Alcotest.run "ir"
    [
      ( "memory",
        [
          Alcotest.test_case "roundtrip" `Quick test_memory_roundtrip;
          Alcotest.test_case "alloc aligned" `Quick test_memory_alloc_aligned;
          Alcotest.test_case "bad align" `Quick test_memory_alloc_bad_align;
          Alcotest.test_case "typed mismatch" `Quick test_memory_typed_mismatch;
          Alcotest.test_case "out of memory" `Quick test_memory_oom;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "i32 wraparound" `Quick test_arith_i32_wraparound;
          Alcotest.test_case "div by zero" `Quick test_div_by_zero;
          Alcotest.test_case "f32 rounding" `Quick test_f32_rounding;
          Alcotest.test_case "shift masking" `Quick test_shift_masking;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "bit casts" `Quick test_casts_roundtrip;
          Alcotest.test_case "f_to_i truncates" `Quick test_f_to_i_truncates;
          Alcotest.test_case "for loop" `Quick test_for_loop_sum;
          Alcotest.test_case "while loop" `Quick test_while_loop;
          Alcotest.test_case "if both arms" `Quick test_if_both_arms;
          Alcotest.test_case "multi-result call" `Quick test_call_results;
          Alcotest.test_case "loads and stores" `Quick test_loads_stores_via_interp;
          Alcotest.test_case "step limit" `Quick test_step_limit;
        ] );
      ( "validation",
        [
          Alcotest.test_case "accepts valid" `Quick test_validate_ok;
          Alcotest.test_case "unknown label" `Quick test_validate_unknown_label;
          Alcotest.test_case "pure store" `Quick test_validate_pure_store;
          Alcotest.test_case "call arity" `Quick test_validate_call_arity;
          Alcotest.test_case "pure calls impure" `Quick test_validate_pure_calls_impure;
          Alcotest.test_case "double terminator" `Quick test_builder_double_terminator;
          Alcotest.test_case "pretty printer" `Quick test_pp_smoke;
          Alcotest.test_case "static count" `Quick test_static_count;
        ] );
      ( "payload",
        [
          Alcotest.test_case "roundtrips" `Quick test_payload_roundtrips;
          Alcotest.test_case "kind_of_rets" `Quick test_payload_kind_of_rets;
          Alcotest.test_case "relative errors" `Quick test_payload_relative_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "minimal" `Quick test_parse_minimal;
          Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blanks;
          Alcotest.test_case "errors carry lines" `Quick test_parse_errors_carry_lines;
          Alcotest.test_case "missing terminator" `Quick test_parse_missing_terminator;
          Alcotest.test_case "invalid program" `Quick test_parse_rejects_invalid_program;
          Alcotest.test_case "roundtrip hand-built" `Quick test_roundtrip_hand_built;
          Alcotest.test_case "roundtrip memo forms" `Quick test_roundtrip_memo_instructions;
          Alcotest.test_case "roundtrip all workloads" `Quick test_roundtrip_all_workload_programs;
        ] );
      ( "memo hooks",
        [
          Alcotest.test_case "flow" `Quick test_memo_hooks_flow;
          Alcotest.test_case "no unit = miss" `Quick test_memo_without_unit_is_miss;
        ] );
      ("properties", qsuite);
    ]
