(* Tests for the in-order pipeline timing model. *)

module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder
module Memory = Axmemo_ir.Memory
module Interp = Axmemo_ir.Interp
module Machine = Axmemo_cpu.Machine
module Pipeline = Axmemo_cpu.Pipeline
module Hierarchy = Axmemo_cache.Hierarchy

let time ?lookup_level ?l2_lut_present fn args =
  let program = { Ir.funcs = [| fn |] } in
  let hierarchy = Hierarchy.(create hpi_default) in
  let pipe =
    Pipeline.create ?lookup_level ?l2_lut_present ~program ~hierarchy ()
  in
  let t = Interp.create ~hook:(Pipeline.hook pipe) ~program ~mem:(Memory.create ()) () in
  ignore (Interp.run t fn.Ir.fname args);
  Pipeline.stats pipe

let straightline name instrs nregs =
  {
    Ir.fname = name;
    params = [||];
    ret_tys = [||];
    nregs;
    pure = false;
    blocks = [| { Ir.label = "entry"; instrs = Array.of_list instrs; term = Ret [||] } |];
  }

let c0 = Ir.Const { dst = 0; ty = I32; value = VI 1L }

let test_dual_issue_independent () =
  (* 8 independent consts: at width 2 they issue in 4 cycles (+ ret). *)
  let instrs = List.init 8 (fun i -> Ir.Const { dst = i; ty = I32; value = VI 0L }) in
  let s = time (straightline "p" instrs 8) [||] in
  Alcotest.(check bool) "about 4-6 cycles" true (s.cycles >= 4 && s.cycles <= 6)

let test_dependent_chain_serializes () =
  (* A chain of 8 dependent adds must take at least 8 cycles. *)
  let instrs =
    c0
    :: List.init 8 (fun i ->
           Ir.Binop { op = Add; ty = I32; dst = i + 1; a = Reg i; b = Imm (VI 1L) })
  in
  let s = time (straightline "p" instrs 10) [||] in
  Alcotest.(check bool) "at least chain length" true (s.cycles >= 8)

let test_div_non_pipelined () =
  (* Two independent divisions on one divider: second waits for the first. *)
  let m = Machine.hpi in
  let instrs =
    [
      c0;
      Ir.Binop { op = Div; ty = I32; dst = 1; a = Imm (VI 100L); b = Reg 0 };
      Ir.Binop { op = Div; ty = I32; dst = 2; a = Imm (VI 200L); b = Reg 0 };
    ]
  in
  let s = time (straightline "p" instrs 3) [||] in
  Alcotest.(check bool) "at least 2x div latency" true (s.cycles >= 2 * m.lat_div)

let test_fp_pipelined () =
  (* Independent fp adds are pipelined: 8 of them take ~8 cycles, not 8x4. *)
  let instrs =
    List.init 8 (fun i ->
        Ir.Fbinop { op = Fadd; ty = F32; dst = i; a = Imm (VF 1.0); b = Imm (VF 2.0) })
  in
  let m = Machine.hpi in
  let s = time (straightline "p" instrs 8) [||] in
  Alcotest.(check bool) "pipelined" true (s.cycles < 8 * m.lat_fp)

let test_load_use_latency () =
  (* load followed by dependent add: cold DRAM miss dominates. *)
  let instrs =
    [
      Ir.Const { dst = 0; ty = I64; value = VI 0L };
      Ir.Load { ty = I32; dst = 1; base = Reg 0; offset = 0 };
      Ir.Binop { op = Add; ty = I32; dst = 2; a = Reg 1; b = Imm (VI 1L) };
    ]
  in
  let s = time (straightline "p" instrs 3) [||] in
  let cfg = Hierarchy.hpi_default in
  Alcotest.(check bool) "cold miss latency visible" true
    (s.cycles >= cfg.dram_latency)

let test_class_counts () =
  let instrs =
    [
      c0;
      Ir.Binop { op = Mul; ty = I32; dst = 1; a = Reg 0; b = Reg 0 };
      Ir.Fbinop { op = Fadd; ty = F32; dst = 2; a = Imm (VF 1.0); b = Imm (VF 1.0) };
      Ir.Store { ty = I32; src = Reg 0; base = Imm (VI 0L); offset = 0 };
    ]
  in
  let s = time (straightline "p" instrs 3) [||] in
  let count cls = List.assoc cls s.per_class in
  Alcotest.(check int) "ialu (const)" 1 (count Pipeline.C_ialu);
  Alcotest.(check int) "imul" 1 (count Pipeline.C_imul);
  Alcotest.(check int) "fp" 1 (count Pipeline.C_fp);
  Alcotest.(check int) "store" 1 (count Pipeline.C_store);
  Alcotest.(check int) "ret counted" 1 (count Pipeline.C_call_ret);
  Alcotest.(check int) "memo none" 0 (count Pipeline.C_memo_lookup)

let test_memo_instruction_accounting () =
  let instrs =
    [
      Ir.Memo (Reg_crc { src = Imm (VI 1L); ty = I32; lut = 0; trunc = 0 });
      Ir.Memo (Lookup { dst = 0; lut = 0 });
      Ir.Memo (Update { src = Imm (VI 0L); lut = 0 });
      Ir.Memo (Invalidate { lut = 0 });
    ]
  in
  let s = time (straightline "p" instrs 1) [||] in
  Alcotest.(check int) "memo dyn count" 4 s.dyn_memo;
  (* ret only *)
  Alcotest.(check int) "normal dyn count" 1 s.dyn_normal

let test_lookup_waits_for_crc () =
  (* Streaming many bytes then looking up: the lookup latency must cover the
     CRC drain time. *)
  let sends =
    List.init 16 (fun _ ->
        Ir.Memo (Reg_crc { src = Imm (VI 1L); ty = I64; lut = 0; trunc = 0 }))
  in
  let instrs = sends @ [ Ir.Memo (Lookup { dst = 0; lut = 0 }) ] in
  let s = time (straightline "p" instrs 1) [||] in
  (* 128 bytes at 4 B/cycle = 32 cycles minimum before lookup completes. *)
  Alcotest.(check bool) "crc throughput respected" true (s.cycles >= 32)

let test_lookup_latency_levels () =
  let mk level =
    let instrs =
      [
        Ir.Memo (Reg_crc { src = Imm (VI 1L); ty = I32; lut = 0; trunc = 0 });
        Ir.Memo (Lookup { dst = 0; lut = 0 });
        (* Dependent use forces the latency to be visible. *)
        Ir.Binop { op = Add; ty = I64; dst = 0; a = Reg 0; b = Imm (VI 1L) };
      ]
    in
    let s =
      time ~lookup_level:(fun () -> level) ~l2_lut_present:true
        (straightline "p" instrs 1) [||]
    in
    s.cycles
  in
  Alcotest.(check bool) "L2 hit slower than L1 hit" true (mk `L2 > mk `L1)

let test_crc_queue_backpressure () =
  (* At 1 B/cycle, flooding 16 x 8-byte sends overruns the 32-byte queue and
     must be recorded as stall cycles; at 4 B/cycle the same burst fits. *)
  let sends =
    List.init 16 (fun _ ->
        Ir.Memo (Reg_crc { src = Imm (VI 1L); ty = I64; lut = 0; trunc = 0 }))
  in
  let fn = straightline "p" sends 1 in
  let run bpc =
    let program = { Ir.funcs = [| fn |] } in
    let hierarchy = Hierarchy.(create hpi_default) in
    let pipe = Pipeline.create ~crc_bytes_per_cycle:bpc ~program ~hierarchy () in
    let t = Interp.create ~hook:(Pipeline.hook pipe) ~program ~mem:(Memory.create ()) () in
    ignore (Interp.run t "p" [||]);
    Pipeline.stats pipe
  in
  let serial = run 1 and unrolled = run 4 in
  Alcotest.(check bool) "serial unit stalls the core" true (serial.crc_stall_cycles > 0);
  Alcotest.(check bool) "unrolled unit stalls less" true
    (unrolled.crc_stall_cycles < serial.crc_stall_cycles);
  Alcotest.(check bool) "serial run is slower" true (serial.cycles > unrolled.cycles)

let test_call_ret_timing_and_count () =
  let callee =
    let b = B.create ~name:"g" ~pure:true ~params:[ Ir.I32 ] ~rets:[ Ir.I32 ] () in
    B.ret b [ B.addi b (B.param b 0) (B.i32 1) ];
    B.finish b
  in
  let main =
    let b = B.create ~name:"main" ~params:[] ~rets:[ Ir.I32 ] () in
    match B.call b "g" ~rets:1 [ B.i32 1 ] with
    | [ r ] ->
        B.ret b [ r ];
        B.finish b
    | _ -> assert false
  in
  let program = { Ir.funcs = [| main; callee |] } in
  let hierarchy = Hierarchy.(create hpi_default) in
  let pipe = Pipeline.create ~program ~hierarchy () in
  let t = Interp.create ~hook:(Pipeline.hook pipe) ~program ~mem:(Memory.create ()) () in
  ignore (Interp.run t "main" [||]);
  let s = Pipeline.stats pipe in
  (* bl + two rets *)
  Alcotest.(check int) "call/ret events" 3 (List.assoc Pipeline.C_call_ret s.per_class);
  Alcotest.(check bool) "cycles positive" true (s.cycles > 0)

let test_seconds () =
  let s = time (straightline "p" [ c0 ] 1) [||] in
  ignore s;
  let program = { Ir.funcs = [| straightline "p" [ c0 ] 1 |] } in
  let hierarchy = Hierarchy.(create hpi_default) in
  let pipe = Pipeline.create ~program ~hierarchy () in
  let t = Interp.create ~hook:(Pipeline.hook pipe) ~program ~mem:(Memory.create ()) () in
  ignore (Interp.run t "p" [||]);
  Alcotest.(check bool) "seconds = cycles/freq" true
    (abs_float (Pipeline.seconds pipe -. (float_of_int (Pipeline.cycles pipe) /. 2e9))
     < 1e-12)

let prop_cycles_monotone_in_work =
  QCheck.Test.make ~name:"more instructions never reduce cycles" ~count:50
    (QCheck.int_range 1 50) (fun n ->
      let mk n =
        let instrs =
          c0
          :: List.init n (fun i ->
                 Ir.Binop { op = Add; ty = I32; dst = 0; a = Reg 0; b = Imm (VI (Int64.of_int i)) })
        in
        (time (straightline "p" instrs 1) [||]).cycles
      in
      mk (n + 1) >= mk n)

let prop_dyn_counts_match_instruction_count =
  QCheck.Test.make ~name:"dyn_normal counts every instruction" ~count:50
    (QCheck.int_range 0 40) (fun n ->
      let instrs = List.init n (fun i -> Ir.Const { dst = 0; ty = I32; value = VI (Int64.of_int i) }) in
      let s = time (straightline "p" instrs 1) [||] in
      (* n consts + 1 ret *)
      s.dyn_normal = n + 1 && s.dyn_memo = 0)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_cycles_monotone_in_work; prop_dyn_counts_match_instruction_count ]

let () =
  Alcotest.run "cpu"
    [
      ( "issue",
        [
          Alcotest.test_case "dual issue" `Quick test_dual_issue_independent;
          Alcotest.test_case "dependent chain" `Quick test_dependent_chain_serializes;
          Alcotest.test_case "div non-pipelined" `Quick test_div_non_pipelined;
          Alcotest.test_case "fp pipelined" `Quick test_fp_pipelined;
          Alcotest.test_case "load-use latency" `Quick test_load_use_latency;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "class counts" `Quick test_class_counts;
          Alcotest.test_case "memo accounting" `Quick test_memo_instruction_accounting;
          Alcotest.test_case "call/ret" `Quick test_call_ret_timing_and_count;
          Alcotest.test_case "seconds" `Quick test_seconds;
        ] );
      ( "memo timing",
        [
          Alcotest.test_case "lookup waits for crc" `Quick test_lookup_waits_for_crc;
          Alcotest.test_case "queue backpressure" `Quick test_crc_queue_backpressure;
          Alcotest.test_case "lookup latency levels" `Quick test_lookup_latency_levels;
        ] );
      ("properties", qsuite);
    ]
