test/test_trace_ddg.mli:
