test/test_compiler.ml: Alcotest Array Axmemo_compiler Axmemo_ir Axmemo_memo Axmemo_workloads Int64 List QCheck QCheck_alcotest
