test/test_workloads.ml: Alcotest Array Axmemo Axmemo_compiler Axmemo_ir Axmemo_util Axmemo_workloads Float Hashtbl Int32 Int64 List Printf QCheck QCheck_alcotest
