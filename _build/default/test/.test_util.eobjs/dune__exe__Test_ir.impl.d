test/test_ir.ml: Alcotest Array Axmemo_compiler Axmemo_ir Axmemo_util Axmemo_workloads Float Format Int32 Int64 List QCheck QCheck_alcotest Result String
