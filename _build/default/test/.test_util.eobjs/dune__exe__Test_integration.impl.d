test/test_integration.ml: Alcotest Array Axmemo Axmemo_compiler Axmemo_crc Axmemo_ir Axmemo_isa Axmemo_memo Axmemo_workloads Hashtbl List Printf
