test/test_isa.ml: Alcotest Axmemo_isa List QCheck QCheck_alcotest
