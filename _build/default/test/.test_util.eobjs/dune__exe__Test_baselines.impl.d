test/test_baselines.ml: Alcotest Array Axmemo_baselines Axmemo_compiler Axmemo_ir Axmemo_util Axmemo_workloads Int64 QCheck QCheck_alcotest String
