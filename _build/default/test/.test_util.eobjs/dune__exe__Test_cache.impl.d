test/test_cache.ml: Alcotest Axmemo_cache List QCheck QCheck_alcotest
