test/test_memo.ml: Alcotest Axmemo_ir Axmemo_memo Axmemo_util Int32 Int64 List Printf QCheck QCheck_alcotest
