test/test_crc.ml: Alcotest Array Axmemo_crc Bytes Char Format Int64 List Printf QCheck QCheck_alcotest String
