test/test_energy.ml: Alcotest Array Axmemo_cache Axmemo_cpu Axmemo_energy Axmemo_ir Axmemo_memo Int64 List
