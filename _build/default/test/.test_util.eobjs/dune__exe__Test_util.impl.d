test/test_util.ml: Alcotest Array Axmemo_util Gen Int64 List QCheck QCheck_alcotest String
