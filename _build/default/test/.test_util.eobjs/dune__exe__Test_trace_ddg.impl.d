test/test_trace_ddg.ml: Alcotest Array Axmemo_cpu Axmemo_ddg Axmemo_ir Axmemo_trace Hashtbl List QCheck QCheck_alcotest
