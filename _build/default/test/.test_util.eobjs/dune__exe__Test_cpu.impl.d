test/test_cpu.ml: Alcotest Array Axmemo_cache Axmemo_cpu Axmemo_ir Int64 List QCheck QCheck_alcotest
