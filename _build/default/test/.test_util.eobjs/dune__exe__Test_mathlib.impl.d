test/test_mathlib.ml: Alcotest Array Axmemo_ir Axmemo_workloads Float List Printf QCheck QCheck_alcotest
