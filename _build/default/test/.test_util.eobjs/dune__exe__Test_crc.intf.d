test/test_crc.mli:
