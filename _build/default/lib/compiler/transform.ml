module Ir = Axmemo_ir.Ir
module Payload = Axmemo_ir.Payload
module Memo_unit = Axmemo_memo.Memo_unit

type region = { kernel : string; lut_id : int; truncs : int array }

let zero_truncs r = { r with truncs = Array.map (fun _ -> 0) r.truncs }

let lut_decls program regions =
  List.map
    (fun r ->
      let kernel = Ir.find_func program r.kernel in
      { Memo_unit.lut_id = r.lut_id; payload = Payload.kind_of_rets kernel.ret_tys })
    regions

let check_region program r =
  let kernel =
    try Ir.find_func program r.kernel
    with Not_found -> invalid_arg ("Transform: unknown kernel " ^ r.kernel)
  in
  if not kernel.pure then invalid_arg ("Transform: kernel is not pure: " ^ r.kernel);
  if Array.length r.truncs <> Array.length kernel.params then
    invalid_arg ("Transform: truncs length mismatch for " ^ r.kernel);
  ignore (Payload.kind_of_rets kernel.ret_tys);
  kernel

(* Mutable rebuilding context for one function. *)
type ctx = {
  mutable next_reg : int;
  mutable next_label : int;
  mutable out_blocks : Ir.block list;  (* reverse order *)
}

let fresh_reg ctx =
  let r = ctx.next_reg in
  ctx.next_reg <- r + 1;
  r

let fresh_label ctx hint =
  let l = Printf.sprintf "%s_mz%d" hint ctx.next_label in
  ctx.next_label <- ctx.next_label + 1;
  l

let push_block ctx label instrs term =
  ctx.out_blocks <- { Ir.label; instrs = Array.of_list instrs; term } :: ctx.out_blocks

(* Emit instructions that unpack the lookup payload register [t] into the
   call's destination registers. *)
let emit_unpack ~fresh kind t dsts =
  let i64_imm v = Ir.Imm (Ir.VI v) in
  match (kind : Payload.kind), (dsts : Ir.reg array) with
  | Pf32, [| d |] -> [ Ir.Cast { op = F32_of_bits; dst = d; src = Reg t } ]
  | Pf64, [| d |] -> [ Ir.Cast { op = F64_of_bits; dst = d; src = Reg t } ]
  | Pi32, [| d |] -> [ Ir.Cast { op = Trunc_64_32; dst = d; src = Reg t } ]
  | Pi64, [| d |] -> [ Ir.Mov { dst = d; src = Reg t } ]
  | Pf32x2, [| d0; d1 |] ->
      let hi = fresh () in
      [
        Ir.Cast { op = F32_of_bits; dst = d0; src = Reg t };
        Ir.Binop { op = Lshr; ty = I64; dst = hi; a = Reg t; b = i64_imm 32L };
        Ir.Cast { op = F32_of_bits; dst = d1; src = Reg hi };
      ]
  | Pi32x2, [| d0; d1 |] ->
      let hi = fresh () in
      [
        Ir.Cast { op = Trunc_64_32; dst = d0; src = Reg t };
        Ir.Binop { op = Lshr; ty = I64; dst = hi; a = Reg t; b = i64_imm 32L };
        Ir.Cast { op = Trunc_64_32; dst = d1; src = Reg hi };
      ]
  | _ -> invalid_arg "Transform: destination count does not match payload kind"

(* Emit instructions packing the freshly computed results into register [u]. *)
let emit_pack ~fresh kind dsts u =
  let i64_imm v = Ir.Imm (Ir.VI v) in
  let mask = 0xFFFFFFFFL in
  let low32 src dst cast_op =
    let b = fresh () in
    [
      Ir.Cast { op = cast_op; dst = b; src = Ir.Reg src };
      Ir.Binop { op = And; ty = I64; dst; a = Reg b; b = i64_imm mask };
    ]
  in
  match (kind : Payload.kind), (dsts : Ir.reg array) with
  | Pf32, [| d |] -> low32 d u Bits_of_f32
  | Pf64, [| d |] -> [ Ir.Cast { op = Bits_of_f64; dst = u; src = Reg d } ]
  | Pi32, [| d |] ->
      [ Ir.Binop { op = And; ty = I64; dst = u; a = Reg d; b = i64_imm mask } ]
  | Pi64, [| d |] -> [ Ir.Mov { dst = u; src = Reg d } ]
  | Pf32x2, [| d0; d1 |] ->
      let lo = fresh () and hi = fresh () and hi_sh = fresh () in
      low32 d0 lo Bits_of_f32 @ low32 d1 hi Bits_of_f32
      @ [
          Ir.Binop { op = Shl; ty = I64; dst = hi_sh; a = Reg hi; b = i64_imm 32L };
          Ir.Binop { op = Or; ty = I64; dst = u; a = Reg lo; b = Reg hi_sh };
        ]
  | Pi32x2, [| d0; d1 |] ->
      let lo = fresh () and hi = fresh () and hi_sh = fresh () in
      [
        Ir.Binop { op = And; ty = I64; dst = lo; a = Reg d0; b = i64_imm mask };
        Ir.Binop { op = And; ty = I64; dst = hi; a = Reg d1; b = i64_imm mask };
        Ir.Binop { op = Shl; ty = I64; dst = hi_sh; a = Reg hi; b = i64_imm 32L };
        Ir.Binop { op = Or; ty = I64; dst = u; a = Reg lo; b = Reg hi_sh };
      ]
  | _ -> invalid_arg "Transform: destination count does not match payload kind"

(* Fuse loads feeding call arguments into ld_crc: for argument register [r],
   find the last instruction in [prefix] defining [r]; if it is a Load and no
   later instruction stores or redefines [r], replace it in place. Returns
   the prefix (mutated copy) and the set of fused argument indices. *)
let fuse_loads prefix (kernel : Ir.func) region args =
  let prefix = Array.copy prefix in
  let n = Array.length prefix in
  let fused = Array.make (Array.length args) false in
  Array.iteri
    (fun j arg ->
      match (arg : Ir.operand) with
      | Imm _ -> ()
      | Reg r ->
          let def = ref (-1) in
          let blocked = ref false in
          for i = 0 to n - 1 do
            (match prefix.(i) with Ir.Store _ -> blocked := true | _ -> ());
            if List.mem r (Ir.instr_dst prefix.(i)) then begin
              def := i;
              blocked := false
            end
          done;
          if !def >= 0 && not !blocked then begin
            match prefix.(!def) with
            | Ir.Load { ty; dst; base; offset } when dst = r ->
                let _, pty = kernel.params.(j) in
                if pty = ty then begin
                  prefix.(!def) <-
                    Ir.Memo
                      (Ld_crc
                         {
                           dst;
                           ty;
                           base;
                           offset;
                           lut = region.lut_id;
                           trunc = region.truncs.(j);
                         });
                  fused.(j) <- true
                end
            | _ -> ()
          end)
    args;
  (prefix, fused)

let transform_func ?barrier program regions (fn : Ir.func) : Ir.func =
  let invalidate_all =
    List.map (fun r -> Ir.Memo (Invalidate { lut = r.lut_id })) regions
  in
  let region_of callee = List.find_opt (fun r -> r.kernel = callee) regions in
  let ctx = { next_reg = fn.nregs; next_label = 0; out_blocks = [] } in
  (* Worklist of raw blocks still to process. *)
  let rec process label (instrs : Ir.instr list) (term : Ir.terminator) =
    let rec split acc = function
      | [] -> push_block ctx label (List.rev acc) term
      | Ir.Call { callee; dsts; args } :: rest when region_of callee <> None ->
          let region = Option.get (region_of callee) in
          let kernel = Ir.find_func program region.kernel in
          let kind = Payload.kind_of_rets kernel.ret_tys in
          let prefix, fused =
            fuse_loads (Array.of_list (List.rev acc)) kernel region args
          in
          (* Stream the unfused arguments. *)
          let sends =
            Array.to_list args
            |> List.mapi (fun j arg -> (j, arg))
            |> List.filter_map (fun (j, arg) ->
                   if fused.(j) then None
                   else
                     let _, pty = kernel.params.(j) in
                     Some
                       (Ir.Memo
                          (Reg_crc
                             { src = arg; ty = pty; lut = region.lut_id; trunc = region.truncs.(j) })))
          in
          let t = fresh_reg ctx in
          let hit_l = fresh_label ctx "hit" in
          let miss_l = fresh_label ctx "miss" in
          let cont_l = fresh_label ctx "cont" in
          let fresh () = fresh_reg ctx in
          push_block ctx label
            (Array.to_list prefix @ sends
            @ [ Ir.Memo (Lookup { dst = t; lut = region.lut_id }) ])
            (Ir.Br_memo { on_hit = hit_l; on_miss = miss_l });
          push_block ctx hit_l (emit_unpack ~fresh kind t dsts) (Ir.Jmp cont_l);
          let u = fresh_reg ctx in
          push_block ctx miss_l
            ((Ir.Call { callee; dsts; args } :: emit_pack ~fresh kind dsts u)
            @ [ Ir.Memo (Update { src = Reg u; lut = region.lut_id }) ])
            (Ir.Jmp cont_l);
          process cont_l rest term
      | Ir.Call { callee; _ } :: rest when barrier = Some callee ->
          (* Phase boundary: drop every logical LUT instead of the marker call. *)
          split (List.rev_append invalidate_all acc) rest
      | i :: rest -> split (i :: acc) rest
    in
    split [] instrs
  in
  Array.iter
    (fun (b : Ir.block) -> process b.label (Array.to_list b.instrs) b.term)
    fn.blocks;
  { fn with blocks = Array.of_list (List.rev ctx.out_blocks); nregs = ctx.next_reg }

let add_invalidates regions (fn : Ir.func) : Ir.func =
  let invs =
    List.map (fun r -> Ir.Memo (Invalidate { lut = r.lut_id })) regions
  in
  let blocks =
    Array.map
      (fun (b : Ir.block) ->
        match b.term with
        | Ret _ -> { b with instrs = Array.append b.instrs (Array.of_list invs) }
        | Jmp _ | Br _ | Br_memo _ -> b)
      fn.blocks
  in
  { fn with blocks }

let memoize ?barrier ~entry program regions =
  List.iter (fun r -> ignore (check_region program r)) regions;
  let kernels = List.map (fun r -> r.kernel) regions in
  let funcs =
    Array.map
      (fun (fn : Ir.func) ->
        if List.mem fn.fname kernels then fn
        else
          let fn = transform_func ?barrier program regions fn in
          if fn.fname = entry then add_invalidates regions fn else fn)
      (program : Ir.program).funcs
  in
  { Ir.funcs }
