let image_error_bound = 0.01
let default_error_bound = 0.001

let select_truncation ~evaluate ~error_bound ~max_bits =
  (* Error is monotone in the truncation level for the profiled kernels, so a
     linear sweep with early exit is both simple and exact; the sweep is a
     one-time compilation cost. *)
  let rec go best n =
    if n > max_bits then best
    else if evaluate n <= error_bound then go n (n + 1)
    else best
  in
  go 0 1
