(** Truncation-bit selection (Section 5, "Code Generation").

    The paper profiles each application on a {e sample} input set, truncating
    memoization inputs by increasing numbers of bits, and keeps the largest
    truncation whose output error stays within a bound (0.1%, or 1% when the
    output is an image). Truncation is applied identically across a block's
    inputs. *)

val select_truncation :
  evaluate:(int -> float) ->
  error_bound:float ->
  max_bits:int ->
  int
(** [select_truncation ~evaluate ~error_bound ~max_bits] returns the largest
    [n <= max_bits] with [evaluate n <= error_bound], assuming error grows
    (weakly) with [n]; 0 if even [evaluate 1] violates the bound. [evaluate]
    runs the memoized program on the sample input with [n] truncated bits and
    returns the output error. *)

val image_error_bound : float
(** 1% — used when the benchmark output is an image. *)

val default_error_bound : float
(** 0.1% — all other benchmarks. *)
