(** AxMemo code generation (Section 2, Figure 1; Section 5 "Code
    Generation").

    Given a program and a set of memoization regions — pure kernel functions
    selected by the DDDG analysis — every call site of a kernel is rewritten
    into the paper's branch structure:

    {v
    ld_crc / reg_crc (stream kernel inputs, truncated, into the hash)
    lookup t, LUT_ID
    br_memo hit, miss
    hit:  unpack t into the result registers
    miss: call kernel; pack results; update LUT_ID
    v}

    Loads that directly feed a kernel argument are fused into [ld_crc]
    (replacing the original load, so they cost no extra instruction);
    remaining arguments are streamed with [reg_crc]. An [invalidate] per LUT
    is appended before every return of the entry function. *)

type region = {
  kernel : string;  (** name of the pure kernel function *)
  lut_id : int;
  truncs : int array;  (** per-parameter LSBs to truncate (Table 2) *)
}

val memoize :
  ?barrier:string ->
  entry:string ->
  Axmemo_ir.Ir.program ->
  region list ->
  Axmemo_ir.Ir.program
(** [memoize ~entry program regions] returns a new program with every call
    site of each region's kernel rewritten. The original program is not
    modified.

    [barrier] names a no-op marker function; calls to it are replaced by an
    [invalidate] of every region's LUT. Workloads whose kernels read state
    that changes between phases (K-means centroids, SRAD's global statistic)
    call the marker at each phase boundary so stale entries are dropped —
    the paper's stated use of [invalidate] (Section 4).
    @raise Invalid_argument if a kernel is unknown, impure, has a return
    signature that does not fit an 8-byte LUT entry, or a [truncs] length
    mismatching its parameter count. *)

val lut_decls : Axmemo_ir.Ir.program -> region list -> Axmemo_memo.Memo_unit.lut_decl list
(** LUT declarations (id + payload kind) the memoization unit needs for the
    given regions. *)

val zero_truncs : region -> region
(** [zero_truncs r] disables approximation for the region (Figure 11's
    "without approximation" configuration). *)

(** {1 Shared codegen pieces}

    Also used by the software-memoization baselines, which reproduce the
    same packing in plain IR. *)

val emit_unpack :
  fresh:(unit -> Axmemo_ir.Ir.reg) ->
  Axmemo_ir.Payload.kind ->
  Axmemo_ir.Ir.reg ->
  Axmemo_ir.Ir.reg array ->
  Axmemo_ir.Ir.instr list
(** [emit_unpack ~fresh kind payload_reg dsts] decodes an 8-byte payload
    register into the kernel's result registers. *)

val emit_pack :
  fresh:(unit -> Axmemo_ir.Ir.reg) ->
  Axmemo_ir.Payload.kind ->
  Axmemo_ir.Ir.reg array ->
  Axmemo_ir.Ir.reg ->
  Axmemo_ir.Ir.instr list
(** [emit_pack ~fresh kind dsts payload_reg] encodes results into a payload. *)
