lib/compiler/transform.ml: Array Axmemo_ir Axmemo_memo List Option Printf
