lib/compiler/transform.mli: Axmemo_ir Axmemo_memo
