lib/compiler/tuning.mli:
