lib/compiler/tuning.ml:
