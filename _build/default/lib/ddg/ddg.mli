(** Dynamic data-dependence graph analysis (Section 5).

    Builds the DDDG from a {!Axmemo_trace.Trace} and enumerates AxMemo-
    transformable candidate subgraphs: for each vertex [v], a reverse BFS
    grows the largest {e closed} ancestor set with [v] as sole output (no
    internal vertex feeds a consumer outside the set), tracking the
    Compute-to-Input ratio

    {v CI_Ratio = sum of vertex weights / number of distinct inputs v}

    Candidates above a ratio threshold are kept, de-duplicated by their
    static-instruction signature, and merged when they overlap heavily —
    reproducing the paper's Table 1 columns. *)

type candidate = {
  root : int;  (** output vertex (trace entry index) *)
  vertices : int list;  (** members, including [root] *)
  signature : int list;  (** sorted distinct static ids: structural identity *)
  total_weight : int;
  n_inputs : int;
  ci_ratio : float;
}

type analysis = {
  total_dynamic : int;  (** candidate subgraphs before structural dedup *)
  unique : candidate list;  (** representatives after dedup and merging *)
  avg_ci_ratio : float;  (** mean CI_Ratio over unique candidates *)
  coverage : float;  (** weight fraction of the trace covered by candidates *)
}

type params = {
  min_ci_ratio : float;  (** keep candidates above this ratio *)
  max_inputs : int;  (** the number of inputs AxMemo can stream per block *)
  max_vertices : int;  (** BFS growth bound *)
  merge_overlap : float;  (** static-signature Jaccard overlap that triggers merging *)
}

val default_params : params
(** ratio ≥ 5.0, ≤ 16 inputs, ≤ 256 vertices, merge at 0.5 overlap. *)

val analyze : ?params:params -> Axmemo_trace.Trace.entry array -> analysis
(** [analyze entries] runs the full candidate search on a recorded trace. *)

val grow_candidate :
  params -> Axmemo_trace.Trace.entry array -> consumers:int list array -> int ->
  candidate option
(** [grow_candidate params entries ~consumers v] grows the best candidate
    rooted at vertex [v]; [None] if it never clears the ratio threshold.
    Exposed for unit testing. *)

val consumers_of : Axmemo_trace.Trace.entry array -> int list array
(** Forward adjacency: [consumers.(v)] lists entries reading [v]'s result. *)
