lib/ddg/ddg.ml: Array Axmemo_trace Hashtbl Int List Set
