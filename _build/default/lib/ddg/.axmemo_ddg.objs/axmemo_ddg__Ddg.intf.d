lib/ddg/ddg.mli: Axmemo_trace
