module Trace = Axmemo_trace.Trace

type candidate = {
  root : int;
  vertices : int list;
  signature : int list;
  total_weight : int;
  n_inputs : int;
  ci_ratio : float;
}

type analysis = {
  total_dynamic : int;
  unique : candidate list;
  avg_ci_ratio : float;
  coverage : float;
}

type params = {
  min_ci_ratio : float;
  max_inputs : int;
  max_vertices : int;
  merge_overlap : float;
}

let default_params =
  { min_ci_ratio = 5.0; max_inputs = 16; max_vertices = 256; merge_overlap = 0.5 }

let consumers_of (entries : Trace.entry array) =
  let consumers = Array.make (Array.length entries) [] in
  Array.iteri
    (fun i (e : Trace.entry) ->
      Array.iter (fun s -> if s >= 0 then consumers.(s) <- i :: consumers.(s)) e.srcs)
    entries;
  consumers

module IntSet = Set.Make (Int)

let evaluate (entries : Trace.entry array) in_s members =
  let weight = List.fold_left (fun acc v -> acc + entries.(v).weight) 0 members in
  let inputs =
    List.fold_left
      (fun acc v ->
        Array.fold_left
          (fun acc s -> if IntSet.mem s in_s then acc else IntSet.add s acc)
          acc entries.(v).srcs)
      IntSet.empty members
  in
  (weight, IntSet.cardinal inputs)

let signature_of entries members =
  List.sort_uniq compare (List.map (fun v -> (entries.(v) : Trace.entry).static_id) members)

let grow_candidate params (entries : Trace.entry array) ~consumers v =
  let in_s = ref (IntSet.singleton v) in
  let members = ref [ v ] in
  let best = ref None in
  let consider () =
    let weight, n_inputs = evaluate entries !in_s !members in
    if n_inputs >= 1 && n_inputs <= params.max_inputs then begin
      let ratio = float_of_int weight /. float_of_int n_inputs in
      let better =
        match !best with None -> true | Some c -> ratio > c.ci_ratio
      in
      if better && ratio >= params.min_ci_ratio then
        best :=
          Some
            {
              root = v;
              vertices = !members;
              signature = signature_of entries !members;
              total_weight = weight;
              n_inputs;
              ci_ratio = ratio;
            }
    end
  in
  consider ();
  (* Grow by layers: a predecessor joins only when all of its consumers are
     already inside (so the set keeps a single output, v). *)
  let continue_growing = ref true in
  while !continue_growing && IntSet.cardinal !in_s < params.max_vertices do
    let frontier =
      List.fold_left
        (fun acc m ->
          Array.fold_left
            (fun acc s -> if s >= 0 && not (IntSet.mem s !in_s) then IntSet.add s acc else acc)
            acc entries.(m).srcs)
        IntSet.empty !members
    in
    let eligible =
      IntSet.filter
        (fun u -> List.for_all (fun c -> IntSet.mem c !in_s) consumers.(u))
        frontier
    in
    if IntSet.is_empty eligible then continue_growing := false
    else begin
      IntSet.iter
        (fun u ->
          in_s := IntSet.add u !in_s;
          members := u :: !members)
        eligible;
      consider ()
    end
  done;
  !best

let jaccard a b =
  let sa = IntSet.of_list a and sb = IntSet.of_list b in
  let inter = IntSet.cardinal (IntSet.inter sa sb) in
  let union = IntSet.cardinal (IntSet.union sa sb) in
  if union = 0 then 0.0 else float_of_int inter /. float_of_int union

let analyze ?(params = default_params) (entries : Trace.entry array) =
  let consumers = consumers_of entries in
  let all = ref [] in
  Array.iteri
    (fun v _ ->
      match grow_candidate params entries ~consumers v with
      | Some c -> all := c :: !all
      | None -> ())
    entries;
  let all = !all in
  let total_dynamic = List.length all in
  (* Structural dedup: one representative (best ratio) per static signature. *)
  let by_sig = Hashtbl.create 64 in
  List.iter
    (fun c ->
      match Hashtbl.find_opt by_sig c.signature with
      | Some c' when c'.ci_ratio >= c.ci_ratio -> ()
      | _ -> Hashtbl.replace by_sig c.signature c)
    all;
  let reps = Hashtbl.fold (fun _ c acc -> c :: acc) by_sig [] in
  (* Drop candidates whose signature is a subset of another's. *)
  let is_subset a b =
    let sb = IntSet.of_list b in
    List.for_all (fun x -> IntSet.mem x sb) a
  in
  let reps =
    List.filter
      (fun c ->
        not
          (List.exists
             (fun c' ->
               c != c'
               && List.length c.signature < List.length c'.signature
               && is_subset c.signature c'.signature)
             reps))
      reps
  in
  (* Merge heavily overlapping candidates from the same dynamic region. *)
  let merged = ref [] in
  List.iter
    (fun c ->
      let rec place = function
        | [] -> [ c ]
        | m :: rest ->
            if jaccard c.vertices m.vertices >= params.merge_overlap then begin
              let union =
                IntSet.elements (IntSet.union (IntSet.of_list c.vertices) (IntSet.of_list m.vertices))
              in
              let in_s = IntSet.of_list union in
              let weight, n_inputs = evaluate entries in_s union in
              let ratio =
                if n_inputs = 0 then float_of_int weight
                else float_of_int weight /. float_of_int n_inputs
              in
              {
                root = m.root;
                vertices = union;
                signature = signature_of entries union;
                total_weight = weight;
                n_inputs;
                ci_ratio = ratio;
              }
              :: rest
            end
            else m :: place rest
      in
      merged := place !merged)
    reps;
  let unique = !merged in
  let avg_ci_ratio =
    match unique with
    | [] -> 0.0
    | _ ->
        List.fold_left (fun acc c -> acc +. c.ci_ratio) 0.0 unique
        /. float_of_int (List.length unique)
  in
  (* Coverage: weight of vertices belonging to any candidate over the whole
     trace weight. *)
  let covered = Array.make (Array.length entries) false in
  List.iter (fun c -> List.iter (fun v -> covered.(v) <- true) c.vertices) all;
  let cov_w = ref 0 and tot_w = ref 0 in
  Array.iteri
    (fun i (e : Trace.entry) ->
      tot_w := !tot_w + e.weight;
      if covered.(i) then cov_w := !cov_w + e.weight)
    entries;
  let coverage =
    if !tot_w = 0 then 0.0 else float_of_int !cov_w /. float_of_int !tot_w
  in
  { total_dynamic; unique; avg_ci_ratio; coverage }
