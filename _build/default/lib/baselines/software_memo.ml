module Ir = Axmemo_ir.Ir
module Memory = Axmemo_ir.Memory
module Crc = Axmemo_crc

let imm v = Ir.Imm (Ir.VI v)

(* The byte-wise reflected CRC-32 loop, emitted as IR:
     idx = (crc ^ w) & 0xFF
     crc = (crc >> 8) ^ step_table[idx]
     w >>= 8
   The step table holds the same constants the hardware unit keeps in its
   small RAM (Figure 3). *)
let emit_crc32 ~step_base ~fresh ~inputs ~table_mask =
  let instrs = ref [] in
  let emit i = instrs := i :: !instrs in
  let crc = fresh () in
  emit (Ir.Const { dst = crc; ty = I64; value = VI 0xFFFFFFFFL });
  List.iter
    (fun (bits, width) ->
      let w = fresh () in
      emit (Ir.Mov { dst = w; src = Reg bits });
      for _ = 1 to width do
        let x = fresh () and idx = fresh () and off = fresh () and addr = fresh () in
        let e = fresh () and em = fresh () and sh = fresh () in
        emit (Ir.Binop { op = Xor; ty = I64; dst = x; a = Reg crc; b = Reg w });
        emit (Ir.Binop { op = And; ty = I64; dst = idx; a = Reg x; b = imm 0xFFL });
        emit (Ir.Binop { op = Shl; ty = I64; dst = off; a = Reg idx; b = imm 2L });
        emit
          (Ir.Binop
             { op = Add; ty = I64; dst = addr; a = Reg off; b = imm (Int64.of_int step_base) });
        emit (Ir.Load { ty = I32; dst = e; base = Reg addr; offset = 0 });
        emit (Ir.Binop { op = And; ty = I64; dst = em; a = Reg e; b = imm 0xFFFFFFFFL });
        emit (Ir.Binop { op = Lshr; ty = I64; dst = sh; a = Reg crc; b = imm 8L });
        emit (Ir.Binop { op = Xor; ty = I64; dst = crc; a = Reg sh; b = Reg em });
        emit (Ir.Binop { op = Lshr; ty = I64; dst = w; a = Reg w; b = imm 8L })
      done)
    inputs;
  (* Final xor-out, then keep only the low index bits (the paper discards
     the upper CRC bits when indexing). *)
  let fin = fresh () and idx = fresh () in
  emit (Ir.Binop { op = Xor; ty = I64; dst = fin; a = Reg crc; b = imm 0xFFFFFFFFL });
  emit (Ir.Binop { op = And; ty = I64; dst = idx; a = Reg fin; b = imm table_mask });
  (List.rev !instrs, idx)

let hasher ~mem : Sw_engine.hasher =
  let step = Crc.Engine.table Crc.Poly.crc32 in
  let step_base = Memory.alloc mem ~bytes:(4 * 256) ~align:64 in
  Array.iteri
    (fun i v -> Memory.store_i32 mem (step_base + (4 * i)) (Int64.to_int32 v))
    step;
  {
    name = "software-crc32";
    emit_hash = (fun ~fresh ~inputs ~table_mask -> emit_crc32 ~step_base ~fresh ~inputs ~table_mask);
    emit_overhead = (fun ~fresh:_ ~scratch_base:_ -> []);
  }

let memoize ~mem ~table_log2 ~entry ?barrier program regions =
  Sw_engine.memoize ~hasher:(hasher ~mem) ~mem ~table_log2 ~entry ?barrier program regions
