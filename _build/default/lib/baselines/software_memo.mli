(** The software memoization contender of Section 6.2.

    Same memoization scheme as AxMemo but entirely in software: a
    table-driven CRC-32 computed with ordinary instructions (at least three
    per hashed byte: extract, table load, xor), a tagless array LUT indexed
    by [CRC mod 2^N], and ordinary loads/stores for the probe and update.
    Discarding the upper CRC bits gives the scheme its non-zero collision
    rate — and hence its higher output error (Figure 10). *)

val memoize :
  mem:Axmemo_ir.Memory.t ->
  table_log2:int ->
  entry:string ->
  ?barrier:string ->
  Axmemo_ir.Ir.program ->
  Axmemo_compiler.Transform.region list ->
  Axmemo_ir.Ir.program
(** Allocates the 256-entry CRC step table (filled with the real CRC-32
    constants) and one [2^table_log2]-entry LUT per region inside [mem],
    then rewrites all call sites. *)

val hasher : mem:Axmemo_ir.Memory.t -> Sw_engine.hasher
(** The CRC-32 hasher (exposed for tests); allocates and fills the step
    table in [mem]. *)
