module Ir = Axmemo_ir.Ir
module Rng = Axmemo_util.Rng

let sampled_bytes = 8

let imm v = Ir.Imm (Ir.VI v)

(* djb2-style mixing over the sampled bytes. *)
let emit_sample_hash ~rng ~fresh ~inputs ~table_mask =
  let positions =
    List.concat
      (List.mapi
         (fun j (_, width) -> List.init width (fun k -> (j, k)))
         inputs)
  in
  let arr = Array.of_list positions in
  Rng.shuffle rng arr;
  let take = min sampled_bytes (Array.length arr) in
  let chosen = Array.sub arr 0 take in
  let regs = Array.of_list (List.map fst inputs) in
  let instrs = ref [] in
  let emit i = instrs := i :: !instrs in
  let h = fresh () in
  emit (Ir.Const { dst = h; ty = I64; value = VI 5381L });
  Array.iter
    (fun (j, k) ->
      let sh = fresh () and byte = fresh () and m = fresh () in
      emit
        (Ir.Binop
           { op = Lshr; ty = I64; dst = sh; a = Reg regs.(j); b = imm (Int64.of_int (8 * k)) });
      emit (Ir.Binop { op = And; ty = I64; dst = byte; a = Reg sh; b = imm 0xFFL });
      emit (Ir.Binop { op = Mul; ty = I64; dst = m; a = Reg h; b = imm 33L });
      emit (Ir.Binop { op = Xor; ty = I64; dst = h; a = Reg m; b = Reg byte }))
    chosen;
  let idx = fresh () in
  emit (Ir.Binop { op = And; ty = I64; dst = idx; a = Reg h; b = imm table_mask });
  (List.rev !instrs, idx)

(* Task bookkeeping: write an 8-word descriptor, read it back (enqueue /
   dequeue), plus a dependent ALU chain standing in for the runtime's
   scheduling and dependence management. Tiny tasks are exactly where
   task-level memoization pays its price: the paper measures ATM slowdowns
   of 0.3-0.7x on the small-kernel benchmarks, which corresponds to an
   overhead in the low hundreds of cycles per task. *)
let emit_task_overhead ~fresh ~scratch_base =
  let instrs = ref [] in
  let emit i = instrs := i :: !instrs in
  let base = imm (Int64.of_int scratch_base) in
  let v = fresh () in
  emit (Ir.Const { dst = v; ty = I64; value = VI 1L });
  for k = 0 to 7 do
    emit (Ir.Store { ty = I64; src = Reg v; base; offset = 8 * k })
  done;
  let acc = fresh () in
  emit (Ir.Const { dst = acc; ty = I64; value = VI 0L });
  for k = 0 to 7 do
    let l = fresh () and a = fresh () in
    emit (Ir.Load { ty = I64; dst = l; base; offset = 8 * k });
    emit (Ir.Binop { op = Add; ty = I64; dst = a; a = Reg acc; b = Reg l });
    emit (Ir.Mov { dst = acc; src = Reg a })
  done;
  for _ = 1 to 36 do
    let a = fresh () in
    emit (Ir.Binop { op = Add; ty = I64; dst = a; a = Reg acc; b = imm 7L });
    emit (Ir.Mov { dst = acc; src = Reg a })
  done;
  List.rev !instrs

let hasher ~seed : Sw_engine.hasher =
  let rng = Rng.create seed in
  {
    name = "atm-sampling";
    emit_hash = (fun ~fresh ~inputs ~table_mask -> emit_sample_hash ~rng ~fresh ~inputs ~table_mask);
    emit_overhead = emit_task_overhead;
  }

let memoize ?(seed = 1337L) ~mem ~table_log2 ~entry ?barrier program regions =
  Sw_engine.memoize ~hasher:(hasher ~seed) ~mem ~table_log2 ~entry ?barrier program regions
