module Ir = Axmemo_ir.Ir
module Memory = Axmemo_ir.Memory
module Payload = Axmemo_ir.Payload
module Transform = Axmemo_compiler.Transform

type hasher = {
  name : string;
  emit_hash :
    fresh:(unit -> Ir.reg) ->
    inputs:(Ir.reg * int) list ->
    table_mask:int64 ->
    Ir.instr list * Ir.reg;
  emit_overhead : fresh:(unit -> Ir.reg) -> scratch_base:int -> Ir.instr list;
}

let hit_prefix = "swhit"
let miss_prefix = "swmiss"

let imm v = Ir.Imm (Ir.VI v)

type ctx = {
  mutable next_reg : int;
  mutable next_label : int;
  mutable out_blocks : Ir.block list;
}

let fresh_reg ctx =
  let r = ctx.next_reg in
  ctx.next_reg <- r + 1;
  r

let fresh_label ctx hint =
  let l = Printf.sprintf "%s_%d" hint ctx.next_label in
  ctx.next_label <- ctx.next_label + 1;
  l

let push_block ctx label instrs term =
  ctx.out_blocks <- { Ir.label; instrs = Array.of_list instrs; term } :: ctx.out_blocks

(* Move each argument's bit pattern, truncated, into a fresh register.
   Returns (instrs, [(reg, width_bytes)]). *)
let emit_input_bits ctx (kernel : Ir.func) truncs args =
  let instrs = ref [] in
  let emit i = instrs := i :: !instrs in
  let bits =
    Array.to_list
      (Array.mapi
         (fun j arg ->
           let _, ty = kernel.params.(j) in
           let r = fresh_reg ctx in
           (match (ty : Ir.ty) with
           | F32 -> emit (Ir.Cast { op = Bits_of_f32; dst = r; src = arg })
           | F64 -> emit (Ir.Cast { op = Bits_of_f64; dst = r; src = arg })
           | I32 | I64 -> emit (Ir.Mov { dst = r; src = arg }));
           let r =
             if truncs.(j) > 0 then begin
               let m = Int64.shift_left (-1L) truncs.(j) in
               let r' = fresh_reg ctx in
               emit (Ir.Binop { op = And; ty = I64; dst = r'; a = Reg r; b = imm m });
               r'
             end
             else r
           in
           (r, Ir.ty_size ty))
         args)
  in
  (List.rev !instrs, bits)

type region_state = {
  region : Transform.region;
  kernel : Ir.func;
  kind : Payload.kind;
  table_base : int;
  table_mask : int64;
}

let memoize ~hasher ~mem ~table_log2 ~entry ?barrier program regions =
  let table_entries = 1 lsl table_log2 in
  let version_addr = Memory.alloc mem ~bytes:8 ~align:8 in
  let scratch_base = Memory.alloc mem ~bytes:256 ~align:64 in
  let states =
    List.map
      (fun (r : Transform.region) ->
        let kernel = Ir.find_func program r.kernel in
        {
          region = r;
          kernel;
          kind = Payload.kind_of_rets kernel.ret_tys;
          table_base = Memory.alloc mem ~bytes:(8 * table_entries) ~align:64;
          table_mask = Int64.of_int (table_entries - 1);
        })
      regions
  in
  let state_of callee = List.find_opt (fun s -> s.region.kernel = callee) states in
  let use_version = barrier <> None in
  let transform_func (fn : Ir.func) =
    let ctx = { next_reg = fn.nregs; next_label = 0; out_blocks = [] } in
    let fresh () = fresh_reg ctx in
    let rec process label instrs term =
      let rec split acc = function
        | [] -> push_block ctx label (List.rev acc) term
        | Ir.Call { callee; dsts; args } :: rest when state_of callee <> None ->
            let st = Option.get (state_of callee) in
            let overhead = hasher.emit_overhead ~fresh ~scratch_base in
            let bit_instrs, bits = emit_input_bits ctx st.kernel st.region.truncs args in
            (* Include the version word so barrier bumps retire old entries. *)
            let ver_instrs, bits =
              if use_version then begin
                let v = fresh_reg ctx in
                ( [ Ir.Load { ty = I32; dst = v; base = imm (Int64.of_int version_addr); offset = 0 } ],
                  bits @ [ (v, 4) ] )
              end
              else ([], bits)
            in
            let hash_instrs, idx = hasher.emit_hash ~fresh ~inputs:bits ~table_mask:st.table_mask in
            let addr = fresh_reg ctx in
            let off = fresh_reg ctx in
            let p = fresh_reg ctx in
            let cond = fresh_reg ctx in
            let probe =
              [
                Ir.Binop { op = Shl; ty = I64; dst = off; a = Reg idx; b = imm 3L };
                Ir.Binop
                  {
                    op = Add;
                    ty = I64;
                    dst = addr;
                    a = Reg off;
                    b = imm (Int64.of_int st.table_base);
                  };
                Ir.Load { ty = I64; dst = p; base = Reg addr; offset = 0 };
                Ir.Icmp { op = Ine; ty = I64; dst = cond; a = Reg p; b = imm 0L };
              ]
            in
            let hit_l = fresh_label ctx hit_prefix in
            let miss_l = fresh_label ctx miss_prefix in
            let cont_l = fresh_label ctx "swcont" in
            push_block ctx label
              (List.rev acc @ overhead @ bit_instrs @ ver_instrs @ hash_instrs @ probe)
              (Ir.Br { cond = Reg cond; if_true = hit_l; if_false = miss_l });
            push_block ctx hit_l
              (Transform.emit_unpack ~fresh st.kind p dsts)
              (Ir.Jmp cont_l);
            let u = fresh_reg ctx in
            push_block ctx miss_l
              ((Ir.Call { callee; dsts; args } :: Transform.emit_pack ~fresh st.kind dsts u)
              @ [ Ir.Store { ty = I64; src = Reg u; base = Reg addr; offset = 0 } ])
              (Ir.Jmp cont_l);
            process cont_l rest term
        | Ir.Call { callee; _ } :: rest when barrier = Some callee ->
            (* Bump the version word: logically invalidates every entry. *)
            let v = fresh_reg ctx in
            let v' = fresh_reg ctx in
            split
              (Ir.Store { ty = I32; src = Reg v'; base = imm (Int64.of_int version_addr); offset = 0 }
               :: Ir.Binop { op = Add; ty = I32; dst = v'; a = Reg v; b = imm 1L }
               :: Ir.Load { ty = I32; dst = v; base = imm (Int64.of_int version_addr); offset = 0 }
               :: acc)
              rest
        | i :: rest -> split (i :: acc) rest
      in
      split [] instrs
    in
    Array.iter
      (fun (b : Ir.block) -> process b.label (Array.to_list b.instrs) b.term)
      fn.blocks;
    { fn with blocks = Array.of_list (List.rev ctx.out_blocks); nregs = ctx.next_reg }
  in
  ignore entry;
  let kernels = List.map (fun (r : Transform.region) -> r.kernel) regions in
  let funcs =
    Array.map
      (fun (fn : Ir.func) -> if List.mem fn.fname kernels then fn else transform_func fn)
      (program : Ir.program).funcs
  in
  { Ir.funcs }
