lib/baselines/sw_engine.ml: Array Axmemo_compiler Axmemo_ir Int64 List Option Printf
