lib/baselines/atm.mli: Axmemo_compiler Axmemo_ir Sw_engine
