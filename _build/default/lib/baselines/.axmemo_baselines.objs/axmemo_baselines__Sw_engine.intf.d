lib/baselines/sw_engine.mli: Axmemo_compiler Axmemo_ir
