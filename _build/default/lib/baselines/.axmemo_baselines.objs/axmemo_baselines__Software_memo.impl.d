lib/baselines/software_memo.ml: Array Axmemo_crc Axmemo_ir Int64 List Sw_engine
