lib/baselines/software_memo.mli: Axmemo_compiler Axmemo_ir Sw_engine
