lib/baselines/atm.ml: Array Axmemo_ir Axmemo_util Int64 List Sw_engine
