(** Shared machinery for the software memoization baselines.

    Both contenders (the software CRC LUT of Section 6.2 and ATM) replace
    kernel calls with {e plain IR}: hash the inputs with ordinary
    instructions, index a tagless in-memory table of [2^table_log2] 8-byte
    entries, branch on a non-zero payload. Because everything is ordinary
    IR, their instruction counts, cache behaviour (the table lives in
    simulated memory) and hash-collision errors all emerge naturally from
    the same simulator that runs the baseline.

    A payload of 0 marks an empty slot; kernels whose packed result is
    exactly 0 are simply never memoized by the software schemes.

    Generated hit/miss blocks are labelled with {!hit_prefix} /
    {!miss_prefix} so the runner can count software LUT hits. *)

type hasher = {
  name : string;
  emit_hash :
    fresh:(unit -> Axmemo_ir.Ir.reg) ->
    inputs:(Axmemo_ir.Ir.reg * int) list ->
    table_mask:int64 ->
    Axmemo_ir.Ir.instr list * Axmemo_ir.Ir.reg;
      (** [emit_hash ~fresh ~inputs ~table_mask] receives one register per
          input holding its (already truncated) bit pattern together with its
          width in bytes, and must return instructions leaving a masked table
          index in the returned register. *)
  emit_overhead : fresh:(unit -> Axmemo_ir.Ir.reg) -> scratch_base:int -> Axmemo_ir.Ir.instr list;
      (** per-invocation runtime overhead (ATM task bookkeeping); [] for the
          plain software LUT. [scratch_base] is a small writable buffer. *)
}

val hit_prefix : string
val miss_prefix : string

val memoize :
  hasher:hasher ->
  mem:Axmemo_ir.Memory.t ->
  table_log2:int ->
  entry:string ->
  ?barrier:string ->
  Axmemo_ir.Ir.program ->
  Axmemo_compiler.Transform.region list ->
  Axmemo_ir.Ir.program
(** Rewrite every kernel call site. Allocates one table per region (plus a
    shared version word used to invalidate logically at [barrier] calls:
    the version participates in the hash, so bumping it retires all previous
    entries). The program is not modified in place. *)
