(** Approximate Task Memoization (Brumar et al., IPDPS 2017), re-implemented
    from its description as the paper did (Section 6.2).

    ATM concatenates a task's inputs into a byte vector, shuffles an index
    vector once, and hashes only the bytes selected by the first [n]
    indices — a cheap but sampling-based key that misses input bits
    entirely (its collision-induced error is the price of the cheaper
    hash). Being a runtime-system technique, every task invocation also
    pays bookkeeping overhead (descriptor write/read plus scheduling
    logic), modelled as a short dependent instruction sequence touching a
    task-descriptor buffer. *)

val sampled_bytes : int
(** Number of input bytes the hash samples (8). *)

val memoize :
  ?seed:int64 ->
  mem:Axmemo_ir.Memory.t ->
  table_log2:int ->
  entry:string ->
  ?barrier:string ->
  Axmemo_ir.Ir.program ->
  Axmemo_compiler.Transform.region list ->
  Axmemo_ir.Ir.program
(** [seed] fixes the index shuffle (default 1337). *)

val hasher : seed:int64 -> Sw_engine.hasher
