(** Microarchitectural parameters of the modelled core (Table 3).

    The paper evaluates the ARM high-performance in-order (HPI) gem5
    configuration: dual-issue in-order at 2 GHz, two integer ALUs, one
    multiplier, one divider, one FP unit, one load/store unit. *)

type t = {
  freq_ghz : float;
  issue_width : int;
  n_alu : int;
  n_mul : int;
  n_div : int;
  n_fpu : int;
  n_lsu : int;
  lat_alu : int;
  lat_mul : int;
  lat_div : int;  (** non-pipelined *)
  lat_fp : int;  (** pipelined FP add/sub/mul/compare *)
  lat_fdiv : int;  (** non-pipelined *)
  lat_fsqrt : int;  (** non-pipelined *)
  lat_ftrig : int;  (** hardware transcendental fallback, non-pipelined;
                        workloads normally lower these to polynomial IR *)
  lat_store : int;
  lat_branch : int;
  call_overhead_instrs : int;
      (** extra dynamic instructions charged per call/return pair
          (bl + ret) *)
}

val hpi : t
(** The default HPI-like configuration used by all experiments. *)

val describe : t -> (string * string) list
(** Key/value rendering for the Table 3 reproduction. *)
