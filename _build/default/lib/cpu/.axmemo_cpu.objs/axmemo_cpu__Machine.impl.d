lib/cpu/machine.ml: Printf
