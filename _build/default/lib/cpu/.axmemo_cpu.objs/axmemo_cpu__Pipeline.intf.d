lib/cpu/pipeline.mli: Axmemo_cache Axmemo_ir Machine
