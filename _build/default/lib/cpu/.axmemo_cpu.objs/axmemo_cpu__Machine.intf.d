lib/cpu/machine.mli:
