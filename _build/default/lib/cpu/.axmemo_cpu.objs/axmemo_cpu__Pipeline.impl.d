lib/cpu/pipeline.ml: Array Axmemo_cache Axmemo_ir Axmemo_isa Hashtbl List Machine
