type t = {
  freq_ghz : float;
  issue_width : int;
  n_alu : int;
  n_mul : int;
  n_div : int;
  n_fpu : int;
  n_lsu : int;
  lat_alu : int;
  lat_mul : int;
  lat_div : int;
  lat_fp : int;
  lat_fdiv : int;
  lat_fsqrt : int;
  lat_ftrig : int;
  lat_store : int;
  lat_branch : int;
  call_overhead_instrs : int;
}

let hpi =
  {
    freq_ghz = 2.0;
    issue_width = 2;
    n_alu = 2;
    n_mul = 1;
    n_div = 1;
    n_fpu = 1;
    n_lsu = 1;
    lat_alu = 1;
    lat_mul = 3;
    lat_div = 12;
    lat_fp = 4;
    lat_fdiv = 15;
    lat_fsqrt = 15;
    lat_ftrig = 25;
    lat_store = 1;
    lat_branch = 1;
    call_overhead_instrs = 2;
  }

let describe t =
  [
    ("Number of Cores, Frequency", Printf.sprintf "One core used, %.0fGHz" t.freq_ghz);
    ("Issue Width", Printf.sprintf "%d, in-order" t.issue_width);
    ( "Integer Units / Core",
      Printf.sprintf "%d ALUs, %d Multiplier, %d Divider" t.n_alu t.n_mul t.n_div );
    ("FP Units / Core", string_of_int t.n_fpu);
    ("Ld/St Units / Core", string_of_int t.n_lsu);
    ("ALU / Mul / Div latency", Printf.sprintf "%d / %d / %d" t.lat_alu t.lat_mul t.lat_div);
    ( "FP / FDiv / FSqrt latency",
      Printf.sprintf "%d / %d / %d" t.lat_fp t.lat_fdiv t.lat_fsqrt );
  ]
