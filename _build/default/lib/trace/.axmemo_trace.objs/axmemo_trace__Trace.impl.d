lib/trace/trace.ml: Array Axmemo_cpu Axmemo_ir Hashtbl List Option
