lib/trace/trace.mli: Axmemo_cpu Axmemo_ir Hashtbl
