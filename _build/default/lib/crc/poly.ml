type t = {
  name : string;
  width : int;
  poly : int64;
  init : int64;
  refin : bool;
  refout : bool;
  xorout : int64;
  check : int64;
}

let crc16_ccitt =
  {
    name = "CRC-16/CCITT-FALSE";
    width = 16;
    poly = 0x1021L;
    init = 0xFFFFL;
    refin = false;
    refout = false;
    xorout = 0L;
    check = 0x29B1L;
  }

let crc32 =
  {
    name = "CRC-32";
    width = 32;
    poly = 0x04C11DB7L;
    init = 0xFFFFFFFFL;
    refin = true;
    refout = true;
    xorout = 0xFFFFFFFFL;
    check = 0xCBF43926L;
  }

let crc32c =
  {
    name = "CRC-32C";
    width = 32;
    poly = 0x1EDC6F41L;
    init = 0xFFFFFFFFL;
    refin = true;
    refout = true;
    xorout = 0xFFFFFFFFL;
    check = 0xE3069283L;
  }

let crc64_xz =
  {
    name = "CRC-64/XZ";
    width = 64;
    poly = 0x42F0E1EBA9EA3693L;
    init = -1L;
    refin = true;
    refout = true;
    xorout = -1L;
    check = 0x995DC9BBDF1939FAL;
  }

let all = [ crc16_ccitt; crc32; crc32c; crc64_xz ]

let mask p = if p.width >= 64 then -1L else Int64.sub (Int64.shift_left 1L p.width) 1L
