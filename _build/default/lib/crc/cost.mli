(** Cost models for CRC computation.

    The paper compares against a {e software} memoization implementation whose
    CRC runs on the CPU: the 8-bit table-driven algorithm needs at least three
    instructions per input byte (AND to extract the byte, LOAD from the step
    table, XOR into the register), i.e. 12 instructions for a 4-byte input
    (Section 6.2). The {e hardware} unit instead consumes one byte per cycle
    off the critical path. *)

val software_instructions_per_byte : int
(** Instructions the software CRC executes per hashed byte (3). *)

val software_instructions : input_bytes:int -> int
(** [software_instructions ~input_bytes] is the dynamic instruction cost of
    hashing [input_bytes] bytes in software, including loop/setup overhead. *)

val software_setup_instructions : int
(** Fixed per-invocation overhead (register init, final mask/index). *)

val hardware_cycles_per_byte : int
(** Cycles the hardware unit needs per input byte (1, Table 4), hidden from
    the CPU unless the input queue is full. *)
