lib/crc/cost.ml:
