lib/crc/cost.mli:
