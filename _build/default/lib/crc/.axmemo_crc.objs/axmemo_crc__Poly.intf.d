lib/crc/poly.mli:
