lib/crc/engine.ml: Array Char Hashtbl Int64 Poly String
