lib/crc/poly.ml: Int64
