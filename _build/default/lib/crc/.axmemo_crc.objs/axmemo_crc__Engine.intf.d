lib/crc/engine.mli: Poly
