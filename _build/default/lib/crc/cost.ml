let software_instructions_per_byte = 3

let software_setup_instructions = 4

let software_instructions ~input_bytes =
  software_setup_instructions + (software_instructions_per_byte * input_bytes)

let hardware_cycles_per_byte = 1
