(** CRC parameterisations.

    A CRC algorithm is defined by its width, generator polynomial, initial
    register value, input/output bit reflection and final XOR (the "Rocksoft"
    model). AxMemo uses CRC-32 by default; 16- and 64-bit variants are
    provided because the paper notes the unit "can work in many sizes"
    (Section 3.1). *)

type t = {
  name : string;  (** canonical algorithm name *)
  width : int;  (** register width in bits, 1..64 *)
  poly : int64;  (** generator polynomial, normal (MSB-first) notation *)
  init : int64;  (** initial register contents *)
  refin : bool;  (** reflect each input byte before feeding *)
  refout : bool;  (** reflect the register before the final XOR *)
  xorout : int64;  (** value XOR-ed into the final register *)
  check : int64;  (** CRC of the ASCII bytes "123456789", for self-test *)
}

val crc16_ccitt : t
(** CRC-16/CCITT-FALSE: width 16, poly 0x1021. *)

val crc32 : t
(** CRC-32 (IEEE 802.3, zlib): width 32, poly 0x04C11DB7, reflected. *)

val crc32c : t
(** CRC-32C (Castagnoli, iSCSI): width 32, poly 0x1EDC6F41, reflected. *)

val crc64_xz : t
(** CRC-64/XZ (ECMA-182 reflected). *)

val all : t list
(** Every preset, for parameterised tests. *)

val mask : t -> int64
(** [mask p] is the [width]-bit all-ones mask. *)
