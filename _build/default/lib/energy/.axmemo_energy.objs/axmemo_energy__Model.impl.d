lib/energy/model.ml: Axmemo_cache Axmemo_cpu Axmemo_memo List Synthesis
