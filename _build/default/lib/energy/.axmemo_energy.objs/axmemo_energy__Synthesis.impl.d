lib/energy/synthesis.ml:
