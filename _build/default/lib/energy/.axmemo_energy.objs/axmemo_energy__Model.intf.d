lib/energy/model.mli: Axmemo_cache Axmemo_cpu Axmemo_memo
