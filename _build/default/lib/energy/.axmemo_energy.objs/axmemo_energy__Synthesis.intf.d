lib/energy/synthesis.mli:
