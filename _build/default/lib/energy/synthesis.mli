(** Synthesis results of the memoization hardware (Table 5), 32 nm node.

    The paper synthesized the CRC unit, hash value registers and LUT SRAMs
    with Design Compiler + FreePDK45 scaled to 32 nm, and estimated the HPI
    core with McPAT. We carry those published constants verbatim — they
    anchor the memo-unit side of the energy model. *)

type unit_row = {
  unit_name : string;
  area_mm2 : float;
  energy_pj : float;  (** per access / per 4-byte operation *)
  latency_ns : float;
}

val crc32_unit : unit_row
(** 8-bit-parallel CRC-32, unrolled 4x and pipelined. *)

val hash_register : unit_row

val lut_4kb : unit_row
val lut_8kb : unit_row
val lut_16kb : unit_row

val lut_row_for : bytes:int -> unit_row
(** Closest published LUT row for a given L1 LUT size. *)

val quality_monitor_area_um2 : float
val quality_monitor_power_uw : float
val quality_monitor_latency_ns : float

val hpi_core_area_mm2 : float
(** McPAT estimate for the HPI processor: 7.97 mm². *)

val area_overhead : l1_lut_bytes:int -> float
(** Fractional core-area overhead of the memoization unit with the given L1
    LUT (the paper reports 2.08% with the largest, 16 KB, LUT). *)

val rows : unit_row list
(** All Table 5 rows, for the harness. *)
