type unit_row = {
  unit_name : string;
  area_mm2 : float;
  energy_pj : float;
  latency_ns : float;
}

let crc32_unit =
  { unit_name = "CRC32 Unit"; area_mm2 = 0.0146; energy_pj = 2.9143; latency_ns = 0.4133 }

let hash_register =
  { unit_name = "Hash Register"; area_mm2 = 0.0018; energy_pj = 0.2634; latency_ns = 0.1121 }

let lut_4kb =
  { unit_name = "LUT (4KB)"; area_mm2 = 0.0217; energy_pj = 3.2556; latency_ns = 0.1768 }

let lut_8kb =
  { unit_name = "LUT (8KB)"; area_mm2 = 0.0364; energy_pj = 4.4221; latency_ns = 0.2175 }

let lut_16kb =
  { unit_name = "LUT (16KB)"; area_mm2 = 0.0666; energy_pj = 7.2340; latency_ns = 0.2658 }

let lut_row_for ~bytes =
  if bytes <= 4 * 1024 then lut_4kb else if bytes <= 8 * 1024 then lut_8kb else lut_16kb

let quality_monitor_area_um2 = 16.8
let quality_monitor_power_uw = 7.47
let quality_monitor_latency_ns = 0.96

let hpi_core_area_mm2 = 7.97

let area_overhead ~l1_lut_bytes =
  let lut = lut_row_for ~bytes:l1_lut_bytes in
  let unit_area =
    crc32_unit.area_mm2 +. hash_register.area_mm2 +. lut.area_mm2
    +. (quality_monitor_area_um2 /. 1e6)
  in
  (* One memoization unit per core; both cores of the HPI carry one. *)
  2.0 *. unit_area /. hpi_core_area_mm2

let rows = [ crc32_unit; hash_register; lut_4kb; lut_8kb; lut_16kb ]
