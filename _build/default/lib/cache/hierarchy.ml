type config = {
  l1_size : int;
  l1_ways : int;
  l1_latency : int;
  l2_size : int;
  l2_ways : int;
  l2_latency : int;
  line_bytes : int;
  dram_latency : int;
}

let hpi_default =
  {
    l1_size = 32 * 1024;
    l1_ways = 4;
    l1_latency = 1;
    l2_size = 1024 * 1024;
    l2_ways = 16;
    l2_latency = 13;
    line_bytes = 64;
    dram_latency = 160;
  }

let carve_l2 c ~lut_bytes =
  if lut_bytes = 0 then c
  else begin
    let way_bytes = c.l2_size / c.l2_ways in
    let ways_needed = (lut_bytes + way_bytes - 1) / way_bytes in
    if ways_needed > c.l2_ways / 2 then
      invalid_arg "Hierarchy.carve_l2: L2 LUT may use at most half the last-level cache";
    let remaining = c.l2_ways - ways_needed in
    { c with l2_ways = remaining; l2_size = remaining * way_bytes }
  end

type t = { cfg : config; l1 : Sa_cache.t; l2 : Sa_cache.t }

let create cfg =
  {
    cfg;
    l1 =
      Sa_cache.create ~name:"L1D" ~size_bytes:cfg.l1_size ~ways:cfg.l1_ways
        ~line_bytes:cfg.line_bytes;
    l2 =
      Sa_cache.create ~name:"L2" ~size_bytes:cfg.l2_size ~ways:cfg.l2_ways
        ~line_bytes:cfg.line_bytes;
  }

let config t = t.cfg

(* Degree-2 next-line prefetch, as the HPI's stride prefetcher would do for
   the streaming accesses these kernels make: fills happen off the critical
   path and are not charged latency. *)
let prefetch t addr =
  for k = 1 to 2 do
    let a = addr + (k * t.cfg.line_bytes) in
    if not (Sa_cache.probe t.l1 ~addr:a) then begin
      ignore (Sa_cache.access t.l1 ~addr:a ~write:false);
      ignore (Sa_cache.access t.l2 ~addr:a ~write:false)
    end
  done

let read t ~addr =
  match Sa_cache.access t.l1 ~addr ~write:false with
  | `Hit -> t.cfg.l1_latency
  | `Miss -> (
      match Sa_cache.access t.l2 ~addr ~write:false with
      | `Hit ->
          prefetch t addr;
          t.cfg.l1_latency + t.cfg.l2_latency
      | `Miss ->
          prefetch t addr;
          t.cfg.l1_latency + t.cfg.l2_latency + t.cfg.dram_latency)

let write t ~addr =
  (* Write-allocate: bring the line in on a miss, but the core only sees the
     store-buffer cost; the fill happens off the critical path. *)
  (match Sa_cache.access t.l1 ~addr ~write:true with
  | `Hit -> ()
  | `Miss -> ignore (Sa_cache.access t.l2 ~addr ~write:true));
  1

let l1 t = t.l1
let l2 t = t.l2

let invalidate_all t =
  Sa_cache.invalidate_all t.l1;
  Sa_cache.invalidate_all t.l2

let reset_stats t =
  Sa_cache.reset_stats t.l1;
  Sa_cache.reset_stats t.l2
