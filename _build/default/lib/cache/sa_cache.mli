(** Set-associative cache model (tags + LRU only; data values live in the
    simulator's flat memory).

    Used for the L1 data cache, the L2 cache, and — with a reduced way count
    — the portion of the L2 left for data when ways are carved out for the
    L2 LUT (Section 3.3). *)

type t

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  evictions : int;
  writes : int;  (** subset of accesses that were stores *)
}

val create : name:string -> size_bytes:int -> ways:int -> line_bytes:int -> t
(** [create ~name ~size_bytes ~ways ~line_bytes] builds an empty cache.
    [size_bytes] must be divisible by [ways * line_bytes].
    @raise Invalid_argument on inconsistent geometry. *)

val name : t -> string
val sets : t -> int
val ways : t -> int
val line_bytes : t -> int

val access : t -> addr:int -> write:bool -> [ `Hit | `Miss ]
(** [access t ~addr ~write] probes the line containing [addr], updates LRU,
    and allocates on miss (write-allocate). *)

val probe : t -> addr:int -> bool
(** [probe t ~addr] checks residency without updating any state. *)

val invalidate_all : t -> unit
val stats : t -> stats
val reset_stats : t -> unit
val hit_rate : t -> float
(** Hits over accesses; 0 when never accessed. *)
