type stats = { accesses : int; hits : int; misses : int; evictions : int; writes : int }

type t = {
  cname : string;
  nsets : int;
  nways : int;
  line : int;
  line_shift : int;
  tags : int array;  (* nsets * nways; -1 = invalid *)
  lru : int array;  (* nsets * nways; lower = older *)
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writes : int;
}

let log2_exact n =
  let rec go k v = if v = 1 then k else go (k + 1) (v lsr 1) in
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Sa_cache: not a power of two"
  else go 0 n

let create ~name ~size_bytes ~ways ~line_bytes =
  if ways <= 0 || line_bytes <= 0 || size_bytes <= 0 then
    invalid_arg "Sa_cache.create: non-positive geometry";
  if size_bytes mod (ways * line_bytes) <> 0 then
    invalid_arg "Sa_cache.create: size not divisible by ways*line";
  let nsets = size_bytes / (ways * line_bytes) in
  {
    cname = name;
    nsets;
    nways = ways;
    line = line_bytes;
    line_shift = log2_exact line_bytes;
    tags = Array.make (nsets * ways) (-1);
    lru = Array.make (nsets * ways) 0;
    clock = 0;
    accesses = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writes = 0;
  }

let name t = t.cname
let sets t = t.nsets
let ways t = t.nways
let line_bytes t = t.line

let set_and_tag t addr =
  let line_addr = addr lsr t.line_shift in
  (line_addr mod t.nsets, line_addr)

let find_way t set tag =
  let base = set * t.nways in
  let rec go w =
    if w >= t.nways then None
    else if t.tags.(base + w) = tag then Some w
    else go (w + 1)
  in
  go 0

let touch t set w =
  t.clock <- t.clock + 1;
  t.lru.((set * t.nways) + w) <- t.clock

let victim_way t set =
  let base = set * t.nways in
  let best = ref 0 in
  for w = 1 to t.nways - 1 do
    (* An invalid way is always preferred; otherwise least recently used. *)
    if t.tags.(base + w) = -1 && t.tags.(base + !best) <> -1 then best := w
    else if
      t.tags.(base + w) <> -1 && t.tags.(base + !best) <> -1
      && t.lru.(base + w) < t.lru.(base + !best)
    then best := w
    else if t.tags.(base + w) = -1 && t.tags.(base + !best) = -1 then ()
  done;
  (* Prefer the first invalid way if any. *)
  let invalid = ref None in
  for w = t.nways - 1 downto 0 do
    if t.tags.(base + w) = -1 then invalid := Some w
  done;
  match !invalid with Some w -> w | None -> !best

let access t ~addr ~write =
  t.accesses <- t.accesses + 1;
  if write then t.writes <- t.writes + 1;
  let set, tag = set_and_tag t addr in
  match find_way t set tag with
  | Some w ->
      t.hits <- t.hits + 1;
      touch t set w;
      `Hit
  | None ->
      t.misses <- t.misses + 1;
      let w = victim_way t set in
      if t.tags.((set * t.nways) + w) <> -1 then t.evictions <- t.evictions + 1;
      t.tags.((set * t.nways) + w) <- tag;
      touch t set w;
      `Miss

let probe t ~addr =
  let set, tag = set_and_tag t addr in
  find_way t set tag <> None

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0

let stats t =
  {
    accesses = t.accesses;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    writes = t.writes;
  }

let reset_stats t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.writes <- 0

let hit_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.hits /. float_of_int t.accesses
