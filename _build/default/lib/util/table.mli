(** Plain-text table rendering for the benchmark harness.

    The harness prints the same rows/columns as the paper's tables and
    figures; this module handles alignment so the output is readable in a
    terminal and diffable across runs. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out [rows] under [header] with columns padded
    to the widest cell. [align] gives per-column alignment (default all
    [Left]; missing entries default to [Left]). Rows shorter than the header
    are padded with empty cells. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [print] is [render] followed by [print_string]. *)

val fmt_float : ?decimals:int -> float -> string
(** [fmt_float x] formats with fixed [decimals] (default 2). *)

val fmt_pct : ?decimals:int -> float -> string
(** [fmt_pct x] formats the fraction [x] as a percentage, e.g. [0.753] ->
    ["75.3%"] (default 1 decimal). *)

val fmt_x : ?decimals:int -> float -> string
(** [fmt_x x] formats a ratio as a multiplier, e.g. ["2.64x"]. *)
