let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let truncate_int64 ~bits v =
  let bits = clamp 0 63 bits in
  if bits = 0 then v else Int64.logand v (Int64.shift_left (-1L) bits)

let truncate_int32 ~bits v =
  let bits = clamp 0 31 bits in
  if bits = 0 then v else Int32.logand v (Int32.shift_left (-1l) bits)

let f32_bits x = Int32.bits_of_float x
let f32_of_bits b = Int32.float_of_bits b
let f64_bits x = Int64.bits_of_float x
let f64_of_bits b = Int64.float_of_bits b

let truncate_f64 ~bits x = f64_of_bits (truncate_int64 ~bits (f64_bits x))

let truncate_f32 ~bits x = f32_of_bits (truncate_int32 ~bits (f32_bits x))

let round_int64 ~bits v =
  let bits = clamp 0 62 bits in
  if bits = 0 then v
  else
    let half = Int64.shift_left 1L (bits - 1) in
    truncate_int64 ~bits (Int64.add v half)

let round_f32 ~bits x =
  let bits = clamp 0 22 bits in
  if bits = 0 then f32_of_bits (f32_bits x)
  else
    let b = Int64.logand (Int64.of_int32 (f32_bits x)) 0xFFFFFFFFL in
    let r = Int64.logand (round_int64 ~bits b) 0xFFFFFFFFL in
    f32_of_bits (Int64.to_int32 r)

let round_f64 ~bits x =
  let bits = clamp 0 51 bits in
  if bits = 0 then x else f64_of_bits (round_int64 ~bits (f64_bits x))

let bytes_of_int64 v ~width =
  if width < 0 || width > 8 then invalid_arg "Bits.bytes_of_int64: width";
  String.init width (fun i ->
      Char.chr
        (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))

let popcount64 v =
  let rec go acc v =
    if v = 0L then acc
    else go (acc + 1) (Int64.logand v (Int64.sub v 1L))
  in
  go 0 v
