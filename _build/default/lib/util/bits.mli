(** Bit-level helpers: float/int bit conversions and least-significant-bit
    truncation, the approximation primitive of AxMemo (Section 3.1).

    Truncating [n] LSBs rounds a value down to a coarser precision so that
    nearby inputs hash to the same CRC value, raising the LUT hit rate at a
    bounded quality cost. *)

val truncate_int64 : bits:int -> int64 -> int64
(** [truncate_int64 ~bits v] zeroes the [bits] least significant bits of [v].
    [bits] outside \[0, 63\] is clamped. *)

val truncate_int32 : bits:int -> int32 -> int32
(** [truncate_int32 ~bits v] zeroes the [bits] least significant bits. *)

val truncate_f64 : bits:int -> float -> float
(** [truncate_f64 ~bits x] truncates the [bits] LSBs of the IEEE-754 binary64
    representation of [x]: a relative-precision rounding for floats. *)

val truncate_f32 : bits:int -> float -> float
(** [truncate_f32 ~bits x] rounds [x] to binary32 and truncates [bits] LSBs of
    that representation, returning the result widened back to [float]. *)

val round_int64 : bits:int -> int64 -> int64
(** [round_int64 ~bits v] rounds [v] to the nearest multiple of [2^bits]
    (ties away from zero in the bit pattern), the paper's "more sophisticated
    approach" alternative to plain truncation. *)

val round_f32 : bits:int -> float -> float
(** [round_f32 ~bits x] rounds the binary32 representation of [x] to the
    nearest [bits]-LSB cell. *)

val round_f64 : bits:int -> float -> float

val f32_bits : float -> int32
(** [f32_bits x] is the binary32 bit pattern of [x] (rounded to single). *)

val f32_of_bits : int32 -> float
(** [f32_of_bits b] reinterprets [b] as a binary32 value. *)

val f64_bits : float -> int64
(** [f64_bits x] is the binary64 bit pattern of [x]. *)

val f64_of_bits : int64 -> float
(** [f64_of_bits b] reinterprets [b] as a binary64 value. *)

val bytes_of_int64 : int64 -> width:int -> string
(** [bytes_of_int64 v ~width] serializes the low [width] bytes of [v] in
    little-endian order; used to feed values to the CRC unit byte stream. *)

val popcount64 : int64 -> int
(** [popcount64 v] counts the set bits of [v]. *)
