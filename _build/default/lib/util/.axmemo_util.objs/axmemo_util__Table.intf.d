lib/util/table.mli:
