lib/util/bits.mli:
