lib/util/stats.mli:
