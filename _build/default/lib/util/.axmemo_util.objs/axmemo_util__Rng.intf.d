lib/util/rng.mli:
