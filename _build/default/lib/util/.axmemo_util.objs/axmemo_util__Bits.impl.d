lib/util/bits.ml: Char Int32 Int64 String
