type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?(align = []) ~header rows =
  let ncols = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let align_of i = match List.nth_opt align i with Some a -> a | None -> Left in
  let trim_right s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do
      decr n
    done;
    String.sub s 0 !n
  in
  let line row =
    row
    |> List.mapi (fun i cell -> pad (align_of i) widths.(i) cell)
    |> String.concat "  "
    |> fun s -> trim_right s ^ "\n"
  in
  let rule =
    String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) ^ "\n"
  in
  String.concat "" (line header :: rule :: List.map line rows)

let print ?align ~header rows = print_string (render ?align ~header rows)

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fmt_pct ?(decimals = 1) x = Printf.sprintf "%.*f%%" decimals (x *. 100.0)

let fmt_x ?(decimals = 2) x = Printf.sprintf "%.*fx" decimals x
