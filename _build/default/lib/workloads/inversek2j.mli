(** Inversek2j benchmark (Table 2). *)

val meta : Workload.meta
val make : Workload.variant -> Workload.instance
val kernel_name : string
val build_kernel : unit -> Axmemo_ir.Ir.func

val l1 : float
(** First link length (mm). *)

val l2 : float
(** Second link length (mm). *)

val generate_targets :
  Axmemo_util.Rng.t -> poses:int -> total:int -> (float * float) array
(** Dataset generator, exposed so tests can replay the evaluation inputs and
    check forward(inverse(x, y)) = (x, y). *)
