(** Blackscholes benchmark (Table 2, row 1). *)

val meta : Workload.meta

val make : Workload.variant -> Workload.instance
(** Fresh instance with a deterministic synthetic option dataset. *)

val kernel_name : string
(** Name of the memoized pricing kernel, for tests. *)

val build_kernel : unit -> Axmemo_ir.Ir.func
val build_cndf : unit -> Axmemo_ir.Ir.func
