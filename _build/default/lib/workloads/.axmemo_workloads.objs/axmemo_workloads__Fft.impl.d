lib/workloads/fft.ml: Array Axmemo_compiler Axmemo_ir Axmemo_util Int64 Mathlib Workload
