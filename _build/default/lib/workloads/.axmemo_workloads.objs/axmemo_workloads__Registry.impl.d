lib/workloads/registry.ml: Blackscholes Fft Hotspot Inversek2j Jmeint Jpeg Kmeans Lavamd List Sobel Srad Workload
