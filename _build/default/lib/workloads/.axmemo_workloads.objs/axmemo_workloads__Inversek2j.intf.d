lib/workloads/inversek2j.mli: Axmemo_ir Axmemo_util Workload
