lib/workloads/hotspot.ml: Array Axmemo_compiler Axmemo_ir Axmemo_util Int64 Workload
