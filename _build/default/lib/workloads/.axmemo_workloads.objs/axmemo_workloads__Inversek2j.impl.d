lib/workloads/inversek2j.ml: Array Axmemo_compiler Axmemo_ir Axmemo_util Float Int64 Mathlib Workload
