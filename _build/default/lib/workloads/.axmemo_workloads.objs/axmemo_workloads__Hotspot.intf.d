lib/workloads/hotspot.mli: Axmemo_ir Workload
