lib/workloads/kmeans.mli: Axmemo_ir Workload
