lib/workloads/blackscholes.mli: Axmemo_ir Workload
