lib/workloads/mathlib.mli: Axmemo_ir
