lib/workloads/lavamd.mli: Axmemo_ir Workload
