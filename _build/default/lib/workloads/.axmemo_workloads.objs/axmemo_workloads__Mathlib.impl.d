lib/workloads/mathlib.ml: Axmemo_ir List
