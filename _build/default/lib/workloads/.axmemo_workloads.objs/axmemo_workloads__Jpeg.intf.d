lib/workloads/jpeg.mli: Axmemo_ir Workload
