lib/workloads/jpeg.ml: Array Axmemo_compiler Axmemo_ir Axmemo_util Float Int64 List Workload
