lib/workloads/blackscholes.ml: Array Axmemo_compiler Axmemo_ir Axmemo_util Int32 Int64 Mathlib Workload
