lib/workloads/workload.mli: Axmemo_compiler Axmemo_ir Axmemo_util
