lib/workloads/sobel.mli: Axmemo_ir Workload
