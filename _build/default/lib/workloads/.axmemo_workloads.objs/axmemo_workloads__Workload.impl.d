lib/workloads/workload.ml: Array Axmemo_compiler Axmemo_ir Axmemo_util Float Int32 Mathlib String
