lib/workloads/jmeint.mli: Axmemo_ir Workload
