lib/workloads/lavamd.ml: Array Axmemo_compiler Axmemo_ir Axmemo_util Int64 List Mathlib Workload
