lib/workloads/fft.mli: Axmemo_ir Workload
