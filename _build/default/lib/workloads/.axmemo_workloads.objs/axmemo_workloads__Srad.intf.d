lib/workloads/srad.mli: Axmemo_ir Workload
