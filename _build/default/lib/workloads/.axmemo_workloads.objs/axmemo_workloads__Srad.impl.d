lib/workloads/srad.ml: Array Axmemo_compiler Axmemo_ir Axmemo_util Float Int64 Workload
