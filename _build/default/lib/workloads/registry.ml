let all =
  [
    (Blackscholes.meta, Blackscholes.make);
    (Fft.meta, Fft.make);
    (Inversek2j.meta, Inversek2j.make);
    (Jmeint.meta, Jmeint.make);
    (Jpeg.meta, Jpeg.make);
    (Kmeans.meta, Kmeans.make);
    (Sobel.meta, Sobel.make);
    (Hotspot.meta, Hotspot.make);
    (Lavamd.meta, Lavamd.make);
    (Srad.meta, Srad.make);
  ]

let find name =
  List.find_opt (fun ((m : Workload.meta), _) -> m.name = name) all

let names = List.map (fun ((m : Workload.meta), _) -> m.name) all
