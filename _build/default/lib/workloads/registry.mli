(** The evaluated benchmark suite (Table 2), in the paper's order. *)

val all : (Workload.meta * (Workload.variant -> Workload.instance)) list
(** Every benchmark's metadata and constructor. *)

val find : string -> (Workload.meta * (Workload.variant -> Workload.instance)) option
(** Look a benchmark up by name. *)

val names : string list
