(** Sobel benchmark (Table 2). *)

val meta : Workload.meta
val make : Workload.variant -> Workload.instance
val kernel_name : string
val build_kernel : unit -> Axmemo_ir.Ir.func
