(** JPEG benchmark (Table 2). *)

val meta : Workload.meta
val make : Workload.variant -> Workload.instance
val kernel_a_name : string
val kernel_b_name : string
val build_kernel_a : unit -> Axmemo_ir.Ir.func
val build_kernel_b : unit -> Axmemo_ir.Ir.func
val qtable : int array
