module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder

let exp_name = "mx_exp"
let log_name = "mx_log"
let sin_name = "mx_sin"
let cos_name = "mx_cos"
let atan_name = "mx_atan"
let atan2_name = "mx_atan2"
let acos_name = "mx_acos"
let asin_name = "mx_asin"

let f = B.f32

(* Horner evaluation; [coeffs] from highest degree to the constant term. *)
let poly b r coeffs =
  match coeffs with
  | [] -> invalid_arg "Mathlib.poly: empty"
  | c0 :: rest ->
      List.fold_left (fun acc cf -> B.fadd b F32 (f cf) (B.fmul b F32 r acc)) (f c0) rest

let ln2 = 0.6931471805599453

let build_exp () =
  let b = B.create ~name:exp_name ~pure:true ~params:[ F32 ] ~rets:[ F32 ] () in
  let x = B.param b 0 in
  let kf = B.funop b Fround F32 (B.fmul b F32 x (f (1.0 /. ln2))) in
  let r = B.fsub b F32 x (B.fmul b F32 kf (f ln2)) in
  (* e^r on |r| <= ln2/2, degree-5 Taylor. *)
  let p = poly b r [ 1.0 /. 120.0; 1.0 /. 24.0; 1.0 /. 6.0; 0.5; 1.0; 1.0 ] in
  (* 2^k via exponent-field construction, k clamped to the normal range. *)
  let k = B.cast b F_to_i kf in
  let k = B.select b (B.icmp b Ilt I32 k (B.i32 (-126))) (B.i32 (-126)) k in
  let k = B.select b (B.icmp b Igt I32 k (B.i32 127)) (B.i32 127) k in
  let bits = B.binop b Shl I32 (B.addi b k (B.i32 127)) (B.i32 23) in
  let scale = B.cast b F32_of_bits bits in
  B.ret b [ B.fmul b F32 p scale ];
  B.finish b

let build_log () =
  let b = B.create ~name:log_name ~pure:true ~params:[ F32 ] ~rets:[ F32 ] () in
  let x = B.param b 0 in
  let bits = B.cast b Bits_of_f32 x in
  let e = B.subi b (B.binop b And I32 (B.binop b Lshr I32 bits (B.i32 23)) (B.i32 0xFF)) (B.i32 127) in
  let mbits = B.binop b Or I32 (B.binop b And I32 bits (B.i32 0x7FFFFF)) (B.i32 0x3F800000) in
  let m = B.cast b F32_of_bits mbits in
  (* Keep the mantissa near 1 for the series. *)
  let big = B.fcmp b Fgt F32 m (f 1.41421356) in
  let m = B.select b big (B.fmul b F32 m (f 0.5)) m in
  let e = B.select b big (B.addi b e (B.i32 1)) e in
  let t = B.fdiv b F32 (B.fsub b F32 m (f 1.0)) (B.fadd b F32 m (f 1.0)) in
  let t2 = B.fmul b F32 t t in
  (* log(m) = 2t (1 + t^2/3 + t^4/5 + t^6/7) *)
  let s = poly b t2 [ 1.0 /. 7.0; 1.0 /. 5.0; 1.0 /. 3.0; 1.0 ] in
  let lm = B.fmul b F32 (B.fmul b F32 (f 2.0) t) s in
  let ef = B.cast b I_to_f e in
  B.ret b [ B.fadd b F32 lm (B.fmul b F32 ef (f ln2)) ];
  B.finish b

let half_pi = 1.5707963267948966

let build_sin () =
  let b = B.create ~name:sin_name ~pure:true ~params:[ F32 ] ~rets:[ F32 ] () in
  let x = B.param b 0 in
  let kf = B.funop b Fround F32 (B.fmul b F32 x (f (1.0 /. half_pi))) in
  let r = B.fsub b F32 x (B.fmul b F32 kf (f half_pi)) in
  let q = B.binop b And I32 (B.cast b F_to_i kf) (B.i32 3) in
  let r2 = B.fmul b F32 r r in
  let s =
    B.fmul b F32 r
      (poly b r2 [ -1.0 /. 5040.0; 1.0 /. 120.0; -1.0 /. 6.0; 1.0 ])
  in
  let c = poly b r2 [ -1.0 /. 720.0; 1.0 /. 24.0; -0.5; 1.0 ] in
  let neg_s = B.funop b Fneg F32 s in
  let neg_c = B.funop b Fneg F32 c in
  let q0 = B.icmp b Ieq I32 q (B.i32 0) in
  let q1 = B.icmp b Ieq I32 q (B.i32 1) in
  let q2 = B.icmp b Ieq I32 q (B.i32 2) in
  let res = B.select b q0 s (B.select b q1 c (B.select b q2 neg_s neg_c)) in
  B.ret b [ res ];
  B.finish b

let build_cos () =
  let b = B.create ~name:cos_name ~pure:true ~params:[ F32 ] ~rets:[ F32 ] () in
  let x = B.param b 0 in
  let shifted = B.fadd b F32 x (f half_pi) in
  let r = B.call b sin_name ~rets:1 [ shifted ] in
  B.ret b r;
  B.finish b

(* Minimax-style arctangent on [-1, 1] (Abramowitz & Stegun 4.4.49 family). *)
let atan_poly b z =
  let z2 = B.fmul b F32 z z in
  let p = poly b z2 [ 0.0208351; -0.0851330; 0.1801410; -0.3302995; 0.9998660 ] in
  B.fmul b F32 z p

let build_atan () =
  let b = B.create ~name:atan_name ~pure:true ~params:[ F32 ] ~rets:[ F32 ] () in
  let x = B.param b 0 in
  let ax = B.funop b Fabs F32 x in
  let outside = B.fcmp b Fgt F32 ax (f 1.0) in
  let z = B.select b outside (B.fdiv b F32 (f 1.0) x) x in
  let core = atan_poly b z in
  let sign_half_pi =
    B.select b (B.fcmp b Flt F32 x (f 0.0)) (f (-.half_pi)) (f half_pi)
  in
  let res = B.select b outside (B.fsub b F32 sign_half_pi core) core in
  B.ret b [ res ];
  B.finish b

let build_atan2 () =
  let b = B.create ~name:atan2_name ~pure:true ~params:[ F32; F32 ] ~rets:[ F32 ] () in
  let y = B.param b 0 and x = B.param b 1 in
  let ax = B.funop b Fabs F32 x and ay = B.funop b Fabs F32 y in
  let swap = B.fcmp b Fgt F32 ay ax in
  let num = B.select b swap ax ay in
  let den = B.select b swap ay ax in
  let z = B.fdiv b F32 num den in
  let a = atan_poly b z in
  let a = B.select b swap (B.fsub b F32 (f half_pi) a) a in
  let a = B.select b (B.fcmp b Flt F32 x (f 0.0)) (B.fsub b F32 (f (2.0 *. half_pi)) a) a in
  let a = B.select b (B.fcmp b Flt F32 y (f 0.0)) (B.funop b Fneg F32 a) a in
  let zero_in = B.fcmp b Feq F32 (B.fadd b F32 ax ay) (f 0.0) in
  B.ret b [ B.select b zero_in (f 0.0) a ];
  B.finish b

let clamped_sqrt_one_minus_sq b x =
  let one_m = B.fsub b F32 (f 1.0) (B.fmul b F32 x x) in
  let one_m = B.select b (B.fcmp b Flt F32 one_m (f 0.0)) (f 0.0) one_m in
  B.funop b Fsqrt F32 one_m

let build_acos () =
  let b = B.create ~name:acos_name ~pure:true ~params:[ F32 ] ~rets:[ F32 ] () in
  let x = B.param b 0 in
  let s = clamped_sqrt_one_minus_sq b x in
  let r = B.call b atan2_name ~rets:1 [ s; x ] in
  B.ret b r;
  B.finish b

let build_asin () =
  let b = B.create ~name:asin_name ~pure:true ~params:[ F32 ] ~rets:[ F32 ] () in
  let x = B.param b 0 in
  let s = clamped_sqrt_one_minus_sq b x in
  let r = B.call b atan2_name ~rets:1 [ x; s ] in
  B.ret b r;
  B.finish b

let functions () =
  [
    build_exp ();
    build_log ();
    build_sin ();
    build_cos ();
    build_atan ();
    build_atan2 ();
    build_acos ();
    build_asin ();
  ]
