(** Common shape of the ten evaluated benchmarks (Table 2).

    Each benchmark module exposes a {!meta} record (the static Table 2 row)
    and a [make] function producing a fresh, fully wired {!instance}:
    program IR (kernels + driver + math library), memory pre-loaded with a
    deterministic synthetic dataset, the memoization regions with their
    Table 2 truncation levels, and a way to read the outputs back for the
    quality metrics.

    Sample and evaluation datasets are disjoint (different seeds and sizes),
    matching the paper's profiling methodology. *)

type variant = Sample | Eval

type outputs = Floats of float array | Bools of bool array

type meta = {
  name : string;
  domain : string;
  description : string;
  dataset : string;  (** evaluation dataset description *)
  input_bytes : string;  (** memoization input size per LUT, for Table 2 *)
  trunc_bits : string;  (** truncation level(s), for Table 2 *)
  error_bound : float;  (** profiling bound: 0.1%, or 1% for image outputs *)
}

type instance = {
  meta : meta;
  program : Axmemo_ir.Ir.program;
  mem : Axmemo_ir.Memory.t;
  entry : string;
  args : Axmemo_ir.Ir.value array;
  regions : Axmemo_compiler.Transform.region list;
  barrier : string option;
      (** marker function for phase-boundary LUT invalidation, if any *)
  read_outputs : unit -> outputs;
}

val entry_name : string
(** Drivers are always named this ("main"). *)

val barrier_name : string
(** Name of the no-op phase marker function. *)

val barrier_func : unit -> Axmemo_ir.Ir.func
(** A fresh copy of the marker function (impure, empty). *)

val quality_loss : reference:outputs -> approx:outputs -> float
(** Equation 2 for float outputs; misclassification rate for booleans.
    @raise Invalid_argument if the two outputs have different shapes. *)

val element_errors : reference:outputs -> approx:outputs -> float array
(** Element-wise relative errors (0/1 for booleans), for the Figure 10b CDF. *)

(** {1 Memory helpers for dataset setup} *)

val alloc_f32s : Axmemo_ir.Memory.t -> float array -> int
(** Allocate and fill an f32 array; returns the base address. *)

val alloc_f32_zeros : Axmemo_ir.Memory.t -> int -> int

val alloc_i32s : Axmemo_ir.Memory.t -> int array -> int

val read_f32s : Axmemo_ir.Memory.t -> base:int -> count:int -> float array
val read_i32s : Axmemo_ir.Memory.t -> base:int -> count:int -> int array

val synth_image :
  Axmemo_util.Rng.t ->
  width:int ->
  height:int ->
  ?tones:int ->
  ?slope:float ->
  ?speckle_fraction:float ->
  ?speckle_sigma:float ->
  unit ->
  float array
(** Piecewise gently-sloped image in a 0..255 intensity scale: a soft
    background plus rectangular regions, each with its own tone and a small
    per-pixel gradient ([slope] intensity levels per pixel). Within a region
    the local windows fall into the same truncation cell — the redundancy
    natural images exhibit — while the continuous gradient ensures exact
    bit-equality is rare, so memoization {e needs} the approximation
    (Figure 11). [speckle_fraction] of pixels get extra Gaussian noise of
    [speckle_sigma] levels (for SRAD's speckle). *)

val program_with_math : Axmemo_ir.Ir.func list -> Axmemo_ir.Ir.program
(** Bundle workload functions with the math library and the barrier marker,
    then {!Axmemo_ir.Ir.validate} (raising [Failure] on violations). *)
