(** Transcendental math as IR functions.

    The benchmarks' kernels need exp, log, trigonometry and inverse
    trigonometry. Real binaries implement these as libm routines of dozens
    of instructions; representing them as single IR opcodes would understate
    the dynamic instruction counts AxMemo eliminates (Figure 8). This module
    therefore provides pure IR implementations — range reduction plus
    polynomial evaluation, all in binary32 — that kernels call like any
    other function.

    Accuracy is a few ulp to ~1e-5 relative, far below the benchmarks'
    quality thresholds; the {e baseline} (non-memoized) run of the same IR
    is the quality reference, so approximation here does not contaminate the
    error metric. *)

val exp_name : string
val log_name : string
val sin_name : string
val cos_name : string
val atan_name : string
val atan2_name : string
val acos_name : string
val asin_name : string

val functions : unit -> Axmemo_ir.Ir.func list
(** Freshly built copies of every math function; include them in any program
    whose kernels call the names above. *)
