module Ir = Axmemo_ir.Ir
module Memory = Axmemo_ir.Memory
module Stats = Axmemo_util.Stats

type variant = Sample | Eval

type outputs = Floats of float array | Bools of bool array

type meta = {
  name : string;
  domain : string;
  description : string;
  dataset : string;
  input_bytes : string;
  trunc_bits : string;
  error_bound : float;
}

type instance = {
  meta : meta;
  program : Ir.program;
  mem : Memory.t;
  entry : string;
  args : Ir.value array;
  regions : Axmemo_compiler.Transform.region list;
  barrier : string option;
  read_outputs : unit -> outputs;
}

let entry_name = "main"

let barrier_name = "axmemo_phase_barrier"

let barrier_func () : Ir.func =
  {
    Ir.fname = barrier_name;
    params = [||];
    ret_tys = [||];
    blocks = [| { Ir.label = "entry"; instrs = [||]; term = Ret [||] } |];
    nregs = 0;
    pure = false;
  }

let quality_loss ~reference ~approx =
  match (reference, approx) with
  | Floats r, Floats a -> Stats.output_error ~reference:r ~approx:a
  | Bools r, Bools a -> Stats.misclassification_rate ~reference:r ~approx:a
  | Floats _, Bools _ | Bools _, Floats _ ->
      invalid_arg "Workload.quality_loss: output shape mismatch"

let element_errors ~reference ~approx =
  match (reference, approx) with
  | Floats r, Floats a ->
      (* Relative error with a scale floor at 1% of the reference RMS, so
         elements whose true value is (near) zero do not blow the CDF up. *)
      let n = Array.length r in
      if n <> Array.length a then
        invalid_arg "Workload.element_errors: length mismatch";
      let rms =
        sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 r /. float_of_int (max 1 n))
      in
      let floor = Float.max 1e-12 (0.01 *. rms) in
      Array.init n (fun i ->
          abs_float (a.(i) -. r.(i)) /. Float.max (abs_float r.(i)) floor)
  | Bools r, Bools a ->
      Array.init (Array.length r) (fun i -> if r.(i) = a.(i) then 0.0 else 1.0)
  | Floats _, Bools _ | Bools _, Floats _ ->
      invalid_arg "Workload.element_errors: output shape mismatch"

let alloc_f32s mem data =
  let base = Memory.alloc mem ~bytes:(4 * Array.length data) ~align:64 in
  Array.iteri (fun i v -> Memory.store_f32 mem (base + (4 * i)) v) data;
  base

let alloc_f32_zeros mem n = Memory.alloc mem ~bytes:(4 * n) ~align:64

let alloc_i32s mem data =
  let base = Memory.alloc mem ~bytes:(4 * Array.length data) ~align:64 in
  Array.iteri (fun i v -> Memory.store_i32 mem (base + (4 * i)) (Int32.of_int v)) data;
  base

let read_f32s mem ~base ~count = Array.init count (fun i -> Memory.load_f32 mem (base + (4 * i)))

let read_i32s mem ~base ~count =
  Array.init count (fun i -> Int32.to_int (Memory.load_i32 mem (base + (4 * i))))

module Rng = Axmemo_util.Rng

let synth_image rng ~width ~height ?(tones = 12) ?(slope = 0.05) ?(speckle_fraction = 0.0)
    ?(speckle_sigma = 0.0) () =
  let img = Array.make (width * height) 0.0 in
  let bg_tone = 80.0 +. Rng.float rng 60.0 in
  (* Anisotropic gradient: the x and y slopes are incommensurate so no two
     pixels are bit-identical — only truncation merges them. *)
  let aniso = 1.3179 in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      img.((y * width) + x) <-
        bg_tone +. (slope *. (float_of_int x +. (aniso *. float_of_int y)))
    done
  done;
  for _ = 1 to tones do
    let x0 = Rng.int rng (max 1 (width - 12)) and y0 = Rng.int rng (max 1 (height - 12)) in
    let w = 8 + Rng.int rng (width / 3) and h = 8 + Rng.int rng (height / 3) in
    let tone = Rng.float rng 255.0 in
    let s = slope *. Rng.uniform rng 0.2 1.5 in
    for y = y0 to min (height - 1) (y0 + h) do
      for x = x0 to min (width - 1) (x0 + w) do
        img.((y * width) + x) <-
          tone +. (s *. (float_of_int (x - x0) +. (aniso *. float_of_int (y - y0))))
      done
    done
  done;
  if speckle_fraction > 0.0 then
    Array.iteri
      (fun i v ->
        if Rng.float rng 1.0 < speckle_fraction then
          img.(i) <- v +. Rng.gaussian rng ~mean:0.0 ~stddev:speckle_sigma)
      img;
  Array.map (fun v -> Float.max 0.0 (Float.min 255.0 v)) img

let program_with_math funcs =
  let program =
    { Ir.funcs = Array.of_list (funcs @ (barrier_func () :: Mathlib.functions ())) }
  in
  (match Ir.validate program with
  | Ok () -> ()
  | Error errs -> failwith ("Workload: invalid program:\n" ^ String.concat "\n" errs));
  program
