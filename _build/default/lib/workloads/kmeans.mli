(** K-means benchmark (Table 2). *)

val meta : Workload.meta
val make : Workload.variant -> Workload.instance
val kernel_name : string
val k_clusters : int
val build_kernel : centroid_base:int -> Axmemo_ir.Ir.func
