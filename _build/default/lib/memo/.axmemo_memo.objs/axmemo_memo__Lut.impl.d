lib/memo/lut.ml: Array Int64
