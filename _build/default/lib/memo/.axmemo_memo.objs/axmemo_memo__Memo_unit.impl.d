lib/memo/memo_unit.ml: Array Axmemo_crc Axmemo_ir Axmemo_util Float Hashtbl Int64 List Lut Option Printf
