lib/memo/lut.mli:
