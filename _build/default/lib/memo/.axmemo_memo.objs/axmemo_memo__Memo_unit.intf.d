lib/memo/memo_unit.mli: Axmemo_crc Axmemo_ir Lut
