type ty = I32 | I64 | F32 | F64
type value = VI of int64 | VF of float
type reg = int
type operand = Reg of reg | Imm of value

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Lshr | Ashr
type fbinop = Fadd | Fsub | Fmul | Fdiv

type funop =
  | Fneg
  | Fabs
  | Fsqrt
  | Fsin
  | Fcos
  | Fexp
  | Flog
  | Ffloor
  | Fround

type icmp = Ieq | Ine | Ilt | Ile | Igt | Ige
type fcmp = Feq | Fne | Flt | Fle | Fgt | Fge

type cast =
  | I_to_f
  | F_to_i
  | F32_of_f64
  | F64_of_f32
  | Bits_of_f32
  | F32_of_bits
  | Bits_of_f64
  | F64_of_bits
  | Sext_32_64
  | Trunc_64_32

type memo_instr =
  | Ld_crc of { dst : reg; ty : ty; base : operand; offset : int; lut : int; trunc : int }
  | Reg_crc of { src : operand; ty : ty; lut : int; trunc : int }
  | Lookup of { dst : reg; lut : int }
  | Update of { src : operand; lut : int }
  | Invalidate of { lut : int }

type instr =
  | Const of { dst : reg; ty : ty; value : value }
  | Mov of { dst : reg; src : operand }
  | Binop of { op : binop; ty : ty; dst : reg; a : operand; b : operand }
  | Fbinop of { op : fbinop; ty : ty; dst : reg; a : operand; b : operand }
  | Funop of { op : funop; ty : ty; dst : reg; a : operand }
  | Icmp of { op : icmp; ty : ty; dst : reg; a : operand; b : operand }
  | Fcmp of { op : fcmp; ty : ty; dst : reg; a : operand; b : operand }
  | Select of { dst : reg; cond : operand; if_true : operand; if_false : operand }
  | Cast of { op : cast; dst : reg; src : operand }
  | Load of { ty : ty; dst : reg; base : operand; offset : int }
  | Store of { ty : ty; src : operand; base : operand; offset : int }
  | Call of { callee : string; dsts : reg array; args : operand array }
  | Memo of memo_instr

type terminator =
  | Jmp of string
  | Br of { cond : operand; if_true : string; if_false : string }
  | Br_memo of { on_hit : string; on_miss : string }
  | Ret of operand array

type block = { label : string; mutable instrs : instr array; mutable term : terminator }

type func = {
  fname : string;
  params : (reg * ty) array;
  ret_tys : ty array;
  mutable blocks : block array;
  nregs : int;
  pure : bool;
}

type program = { funcs : func array }

let find_func p name =
  match Array.find_opt (fun f -> f.fname = name) p.funcs with
  | Some f -> f
  | None -> raise Not_found

let find_block f label =
  let rec go i =
    if i >= Array.length f.blocks then raise Not_found
    else if f.blocks.(i).label = label then i
    else go (i + 1)
  in
  go 0

let ty_size = function I32 | F32 -> 4 | I64 | F64 -> 8

let instr_dst = function
  | Const { dst; _ }
  | Mov { dst; _ }
  | Binop { dst; _ }
  | Fbinop { dst; _ }
  | Funop { dst; _ }
  | Icmp { dst; _ }
  | Fcmp { dst; _ }
  | Select { dst; _ }
  | Cast { dst; _ }
  | Load { dst; _ } -> [ dst ]
  | Store _ -> []
  | Call { dsts; _ } -> Array.to_list dsts
  | Memo (Ld_crc { dst; _ }) -> [ dst ]
  | Memo (Lookup { dst; _ }) -> [ dst ]
  | Memo (Reg_crc _ | Update _ | Invalidate _) -> []

let operand_reg = function Reg r -> [ r ] | Imm _ -> []

let instr_srcs = function
  | Const _ -> []
  | Mov { src; _ } -> operand_reg src
  | Binop { a; b; _ } | Fbinop { a; b; _ } | Icmp { a; b; _ } | Fcmp { a; b; _ } ->
      operand_reg a @ operand_reg b
  | Funop { a; _ } -> operand_reg a
  | Select { cond; if_true; if_false; _ } ->
      operand_reg cond @ operand_reg if_true @ operand_reg if_false
  | Cast { src; _ } -> operand_reg src
  | Load { base; _ } -> operand_reg base
  | Store { src; base; _ } -> operand_reg src @ operand_reg base
  | Call { args; _ } -> Array.to_list args |> List.concat_map operand_reg
  | Memo (Ld_crc { base; _ }) -> operand_reg base
  | Memo (Reg_crc { src; _ }) -> operand_reg src
  | Memo (Update { src; _ }) -> operand_reg src
  | Memo (Lookup _ | Invalidate _) -> []

(* --- validation --- *)

let validate p =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := s :: !errs) fmt in
  let func_tbl = Hashtbl.create 16 in
  Array.iter (fun f -> Hashtbl.replace func_tbl f.fname f) p.funcs;
  let check_func f =
    if Array.length f.blocks = 0 then err "%s: no blocks" f.fname;
    let labels = Hashtbl.create 16 in
    Array.iter
      (fun b ->
        if Hashtbl.mem labels b.label then err "%s: duplicate label %s" f.fname b.label;
        Hashtbl.replace labels b.label ())
      f.blocks;
    let check_label where l =
      if not (Hashtbl.mem labels l) then err "%s/%s: unknown label %s" f.fname where l
    in
    let check_reg where r =
      if r < 0 || r >= f.nregs then err "%s/%s: register %d out of range" f.fname where r
    in
    let check_operand where = function Reg r -> check_reg where r | Imm _ -> () in
    Array.iter
      (fun (r, _) -> check_reg "params" r)
      f.params;
    Array.iter
      (fun b ->
        Array.iter
          (fun i ->
            List.iter (check_reg b.label) (instr_dst i);
            List.iter (fun r -> check_reg b.label r) (instr_srcs i);
            (match i with
            | Call { callee; dsts; args } -> (
                match Hashtbl.find_opt func_tbl callee with
                | None -> err "%s/%s: call to unknown function %s" f.fname b.label callee
                | Some g ->
                    if Array.length args <> Array.length g.params then
                      err "%s/%s: call to %s with %d args (expected %d)" f.fname b.label
                        callee (Array.length args) (Array.length g.params);
                    if Array.length dsts <> Array.length g.ret_tys then
                      err "%s/%s: call to %s binds %d results (expected %d)" f.fname
                        b.label callee (Array.length dsts) (Array.length g.ret_tys);
                    if f.pure && not g.pure then
                      err "%s: pure function calls impure %s" f.fname callee)
            | Store _ when f.pure -> err "%s: pure function contains a store" f.fname
            | Memo _ when f.pure -> err "%s: pure function contains a memo instruction" f.fname
            | Const _ | Mov _ | Binop _ | Fbinop _ | Funop _ | Icmp _ | Fcmp _
            | Select _ | Cast _ | Load _ | Store _ | Memo _ -> ());
            ignore (List.map (fun o -> check_operand b.label o) []))
          b.instrs;
        match b.term with
        | Jmp l -> check_label b.label l
        | Br { cond; if_true; if_false } ->
            check_operand b.label cond;
            check_label b.label if_true;
            check_label b.label if_false
        | Br_memo { on_hit; on_miss } ->
            check_label b.label on_hit;
            check_label b.label on_miss
        | Ret ops ->
            Array.iter (check_operand b.label) ops;
            if Array.length ops <> Array.length f.ret_tys then
              err "%s/%s: ret arity %d (expected %d)" f.fname b.label (Array.length ops)
                (Array.length f.ret_tys))
      f.blocks
  in
  Array.iter check_func p.funcs;
  match !errs with [] -> Ok () | es -> Error (List.rev es)

(* --- pretty printing --- *)

let string_of_ty = function I32 -> "i32" | I64 -> "i64" | F32 -> "f32" | F64 -> "f64"

let string_of_binop = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Lshr -> "lshr"
  | Ashr -> "ashr"

let string_of_fbinop = function
  | Fadd -> "fadd" | Fsub -> "fsub" | Fmul -> "fmul" | Fdiv -> "fdiv"

let string_of_funop = function
  | Fneg -> "fneg" | Fabs -> "fabs" | Fsqrt -> "fsqrt" | Fsin -> "fsin"
  | Fcos -> "fcos" | Fexp -> "fexp" | Flog -> "flog" | Ffloor -> "ffloor"
  | Fround -> "fround"

let string_of_icmp = function
  | Ieq -> "eq" | Ine -> "ne" | Ilt -> "lt" | Ile -> "le" | Igt -> "gt" | Ige -> "ge"

let string_of_fcmp = function
  | Feq -> "feq" | Fne -> "fne" | Flt -> "flt" | Fle -> "fle" | Fgt -> "fgt" | Fge -> "fge"

let string_of_cast = function
  | I_to_f -> "i2f" | F_to_i -> "f2i" | F32_of_f64 -> "f32.of.f64"
  | F64_of_f32 -> "f64.of.f32" | Bits_of_f32 -> "bits.of.f32"
  | F32_of_bits -> "f32.of.bits" | Bits_of_f64 -> "bits.of.f64"
  | F64_of_bits -> "f64.of.bits" | Sext_32_64 -> "sext" | Trunc_64_32 -> "trunc"

let pp_value ppf = function
  | VI v -> Format.fprintf ppf "%Ld" v
  | VF v -> Format.fprintf ppf "%h" v

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "r%d" r
  | Imm v -> pp_value ppf v

let pp_instr ppf i =
  let f fmt = Format.fprintf ppf fmt in
  match i with
  | Const { dst; ty; value } ->
      f "r%d = const.%s %a" dst (string_of_ty ty) pp_value value
  | Mov { dst; src } -> f "r%d = mov %a" dst pp_operand src
  | Binop { op; ty; dst; a; b } ->
      f "r%d = %s.%s %a, %a" dst (string_of_binop op) (string_of_ty ty) pp_operand a
        pp_operand b
  | Fbinop { op; ty; dst; a; b } ->
      f "r%d = %s.%s %a, %a" dst (string_of_fbinop op) (string_of_ty ty) pp_operand a
        pp_operand b
  | Funop { op; ty; dst; a } ->
      f "r%d = %s.%s %a" dst (string_of_funop op) (string_of_ty ty) pp_operand a
  | Icmp { op; ty; dst; a; b } ->
      f "r%d = icmp.%s.%s %a, %a" dst (string_of_icmp op) (string_of_ty ty) pp_operand a
        pp_operand b
  | Fcmp { op; ty; dst; a; b } ->
      f "r%d = fcmp.%s.%s %a, %a" dst (string_of_fcmp op) (string_of_ty ty) pp_operand a
        pp_operand b
  | Select { dst; cond; if_true; if_false } ->
      f "r%d = select %a, %a, %a" dst pp_operand cond pp_operand if_true pp_operand
        if_false
  | Cast { op; dst; src } -> f "r%d = %s %a" dst (string_of_cast op) pp_operand src
  | Load { ty; dst; base; offset } ->
      f "r%d = load.%s [%a + %d]" dst (string_of_ty ty) pp_operand base offset
  | Store { ty; src; base; offset } ->
      f "store.%s %a, [%a + %d]" (string_of_ty ty) pp_operand src pp_operand base offset
  | Call { callee; dsts; args } ->
      let args_s =
        String.concat ", " (Array.to_list args |> List.map (Format.asprintf "%a" pp_operand))
      in
      if Array.length dsts = 0 then f "call %s(%s)" callee args_s
      else
        f "%s = call %s(%s)"
          (String.concat ", " (Array.to_list dsts |> List.map (Printf.sprintf "r%d")))
          callee args_s
  | Memo (Ld_crc { dst; ty; base; offset; lut; trunc }) ->
      f "r%d = ld_crc.%s [%a + %d], lut=%d, n=%d" dst (string_of_ty ty) pp_operand base
        offset lut trunc
  | Memo (Reg_crc { src; ty; lut; trunc }) ->
      f "reg_crc.%s %a, lut=%d, n=%d" (string_of_ty ty) pp_operand src lut trunc
  | Memo (Lookup { dst; lut }) -> f "r%d = lookup lut=%d" dst lut
  | Memo (Update { src; lut }) -> f "update %a, lut=%d" pp_operand src lut
  | Memo (Invalidate { lut }) -> f "invalidate lut=%d" lut

let pp_term ppf = function
  | Jmp l -> Format.fprintf ppf "jmp %s" l
  | Br { cond; if_true; if_false } ->
      Format.fprintf ppf "br %a, %s, %s" pp_operand cond if_true if_false
  | Br_memo { on_hit; on_miss } -> Format.fprintf ppf "br_memo %s, %s" on_hit on_miss
  | Ret ops ->
      Format.fprintf ppf "ret %s"
        (String.concat ", " (Array.to_list ops |> List.map (Format.asprintf "%a" pp_operand)))

let pp_func ppf fn =
  Format.fprintf ppf "@[<v>%s %s(%s) -> (%s) [regs=%d]@,"
    (if fn.pure then "pure func" else "func")
    fn.fname
    (String.concat ", "
       (Array.to_list fn.params
       |> List.map (fun (r, ty) -> Printf.sprintf "r%d:%s" r (string_of_ty ty))))
    (String.concat ", " (Array.to_list fn.ret_tys |> List.map string_of_ty))
    fn.nregs;
  Array.iter
    (fun b ->
      Format.fprintf ppf "%s:@," b.label;
      Array.iter (fun i -> Format.fprintf ppf "  %a@," pp_instr i) b.instrs;
      Format.fprintf ppf "  %a@," pp_term b.term)
    fn.blocks;
  Format.fprintf ppf "@]"

let pp_program ppf p =
  Array.iter (fun f -> Format.fprintf ppf "%a@." pp_func f) p.funcs

let static_count p =
  Array.fold_left
    (fun acc f ->
      Array.fold_left (fun acc b -> acc + Array.length b.instrs) acc f.blocks)
    0 p.funcs
