(** A small typed register IR.

    This is the compilation substrate of the reproduction: workloads are
    authored against {!Builder}, the AxMemo compiler pass rewrites programs at
    this level, and {!Interp} / the CPU timing model execute it. The design
    mirrors the fragment of LLVM IR the paper's toolflow (LLVM-Tracer +
    ALADDIN) operates on: virtual registers, typed arithmetic, loads/stores
    against a flat memory, calls, and — after transformation — the five
    AxMemo instructions of Section 4.

    Registers are mutable (non-SSA): loops are expressed with explicit
    register updates and branches. *)

type ty = I32 | I64 | F32 | F64

type value = VI of int64 | VF of float
(** Runtime values. [VI] carries both integer widths (I32 values are kept
    sign-extended); [VF] carries both float widths (F32 results are rounded
    to binary32 after every operation). *)

type reg = int
(** Virtual register index within a function. *)

type operand = Reg of reg | Imm of value

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Lshr | Ashr
type fbinop = Fadd | Fsub | Fmul | Fdiv

type funop =
  | Fneg
  | Fabs
  | Fsqrt
  | Fsin
  | Fcos
  | Fexp
  | Flog
  | Ffloor
  | Fround

type icmp = Ieq | Ine | Ilt | Ile | Igt | Ige
type fcmp = Feq | Fne | Flt | Fle | Fgt | Fge

type cast =
  | I_to_f  (** signed integer to float *)
  | F_to_i  (** float to integer, truncating toward zero *)
  | F32_of_f64
  | F64_of_f32
  | Bits_of_f32  (** reinterpret binary32 pattern as I32 *)
  | F32_of_bits
  | Bits_of_f64  (** reinterpret binary64 pattern as I64 *)
  | F64_of_bits
  | Sext_32_64
  | Trunc_64_32

type memo_instr =
  | Ld_crc of { dst : reg; ty : ty; base : operand; offset : int; lut : int; trunc : int }
      (** Load [ty] at [base+offset] into [dst] {e and} stream the loaded
          value, with [trunc] LSBs cleared, into LUT [lut]'s hash register. *)
  | Reg_crc of { src : operand; ty : ty; lut : int; trunc : int }
      (** Stream a register value into the hash register. *)
  | Lookup of { dst : reg; lut : int }
      (** Finalize the hash, probe the LUT; on hit write the 8-byte payload
          to [dst] (as I64) and set the memo condition flag; clear it on
          miss. *)
  | Update of { src : operand; lut : int }
      (** Insert [src] (an I64 payload) under the key of the last lookup. *)
  | Invalidate of { lut : int }  (** Drop every entry of logical LUT [lut]. *)

type instr =
  | Const of { dst : reg; ty : ty; value : value }
  | Mov of { dst : reg; src : operand }
  | Binop of { op : binop; ty : ty; dst : reg; a : operand; b : operand }
  | Fbinop of { op : fbinop; ty : ty; dst : reg; a : operand; b : operand }
  | Funop of { op : funop; ty : ty; dst : reg; a : operand }
  | Icmp of { op : icmp; ty : ty; dst : reg; a : operand; b : operand }
  | Fcmp of { op : fcmp; ty : ty; dst : reg; a : operand; b : operand }
  | Select of { dst : reg; cond : operand; if_true : operand; if_false : operand }
  | Cast of { op : cast; dst : reg; src : operand }
  | Load of { ty : ty; dst : reg; base : operand; offset : int }
  | Store of { ty : ty; src : operand; base : operand; offset : int }
  | Call of { callee : string; dsts : reg array; args : operand array }
  | Memo of memo_instr

type terminator =
  | Jmp of string
  | Br of { cond : operand; if_true : string; if_false : string }
  | Br_memo of { on_hit : string; on_miss : string }
      (** Branch on the condition flag set by the last [Lookup]. *)
  | Ret of operand array

type block = { label : string; mutable instrs : instr array; mutable term : terminator }

type func = {
  fname : string;
  params : (reg * ty) array;
  ret_tys : ty array;
  mutable blocks : block array;  (** entry is [blocks.(0)] *)
  nregs : int;
  pure : bool;
      (** Declared side-effect-free and deterministic: eligible for
          memoization. Checked by {!validate}. *)
}

type program = { funcs : func array }

val find_func : program -> string -> func
(** [find_func p name] returns the function named [name].
    @raise Not_found if absent. *)

val find_block : func -> string -> int
(** [find_block f label] is the index of the block labelled [label].
    @raise Not_found if absent. *)

val ty_size : ty -> int
(** [ty_size ty] is the size in bytes (4 or 8). *)

val instr_dst : instr -> reg list
(** Registers written by an instruction. *)

val instr_srcs : instr -> reg list
(** Registers read by an instruction (operand registers only). *)

val validate : program -> (unit, string list) result
(** [validate p] checks structural invariants: block labels resolve,
    registers are in range, call signatures match, entry blocks exist, and
    functions declared [pure] contain no [Store], no [Memo] instruction and
    call only pure functions. Returns the list of violations on error. *)

val pp_instr : Format.formatter -> instr -> unit
val pp_func : Format.formatter -> func -> unit
val pp_program : Format.formatter -> program -> unit

val static_count : program -> int
(** Total number of static instructions (terminators excluded). *)
