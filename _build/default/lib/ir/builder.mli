(** Embedded DSL for constructing IR functions.

    A builder accumulates blocks and instructions imperatively; workloads use
    it to express their kernels and driver loops in a handful of lines.
    Structured helpers ({!for_loop}, {!if_}, {!while_loop}) take care of
    block plumbing for the common shapes. *)

type t
(** A function under construction. *)

val create : name:string -> ?pure:bool -> params:Ir.ty list -> rets:Ir.ty list -> unit -> t
(** [create ~name ~params ~rets ()] starts a function. An entry block is
    opened implicitly; emission starts there. [pure] (default [false]) marks
    the function eligible for memoization. *)

val param : t -> int -> Ir.operand
(** [param t i] is the operand holding the [i]-th parameter. *)

(** {1 Immediates} *)

val i32 : int -> Ir.operand
val i64 : int64 -> Ir.operand
val f32 : float -> Ir.operand
(** [f32 x] pre-rounds [x] to binary32. *)

val f64 : float -> Ir.operand

(** {1 Registers} *)

val fresh : t -> Ir.reg
(** [fresh t] allocates an uninitialized virtual register (for loop-carried
    variables). *)

val rv : Ir.reg -> Ir.operand
(** [rv r] is the operand reading register [r]. *)

val mov : t -> Ir.reg -> Ir.operand -> unit
(** [mov t r v] emits a register move [r := v]. *)

(** {1 Instruction emitters}

    Each emitter appends to the current block and returns the destination
    operand. *)

val binop : t -> Ir.binop -> Ir.ty -> Ir.operand -> Ir.operand -> Ir.operand
val fbinop : t -> Ir.fbinop -> Ir.ty -> Ir.operand -> Ir.operand -> Ir.operand
val funop : t -> Ir.funop -> Ir.ty -> Ir.operand -> Ir.operand
val icmp : t -> Ir.icmp -> Ir.ty -> Ir.operand -> Ir.operand -> Ir.operand
val fcmp : t -> Ir.fcmp -> Ir.ty -> Ir.operand -> Ir.operand -> Ir.operand
val select : t -> Ir.operand -> Ir.operand -> Ir.operand -> Ir.operand
val cast : t -> Ir.cast -> Ir.operand -> Ir.operand
val load : t -> Ir.ty -> Ir.operand -> int -> Ir.operand
val store : t -> Ir.ty -> src:Ir.operand -> base:Ir.operand -> offset:int -> unit

val call : t -> string -> rets:int -> Ir.operand list -> Ir.operand list
(** [call t callee ~rets args] emits a call binding [rets] fresh result
    registers, returned as operands. *)

(** {1 Arithmetic shorthand (i32 / f32 / f64)} *)

val addi : t -> Ir.operand -> Ir.operand -> Ir.operand
val subi : t -> Ir.operand -> Ir.operand -> Ir.operand
val muli : t -> Ir.operand -> Ir.operand -> Ir.operand
val fadd : t -> Ir.ty -> Ir.operand -> Ir.operand -> Ir.operand
val fsub : t -> Ir.ty -> Ir.operand -> Ir.operand -> Ir.operand
val fmul : t -> Ir.ty -> Ir.operand -> Ir.operand -> Ir.operand
val fdiv : t -> Ir.ty -> Ir.operand -> Ir.operand -> Ir.operand

(** {1 Control flow} *)

type label = string

val block : t -> string -> label
(** [block t hint] declares a new, initially empty block with a unique label
    derived from [hint]. Emission position is unchanged. *)

val switch_to : t -> label -> unit
(** [switch_to t l] directs subsequent emission to block [l]. *)

val jmp : t -> label -> unit
val br : t -> Ir.operand -> label -> label -> unit
val ret : t -> Ir.operand list -> unit

val for_loop : t -> from:Ir.operand -> below:Ir.operand -> (Ir.operand -> unit) -> unit
(** [for_loop t ~from ~below body] emits an i32 counted loop; [body] receives
    the induction variable. Emission continues after the loop on return. *)

val if_ : t -> Ir.operand -> then_:(unit -> unit) -> else_:(unit -> unit) -> unit
(** [if_ t cond ~then_ ~else_] emits a two-armed conditional; both arms merge
    and emission continues after it. *)

val while_loop : t -> cond:(unit -> Ir.operand) -> body:(unit -> unit) -> unit
(** [while_loop t ~cond ~body] re-evaluates [cond] each iteration. *)

val finish : t -> Ir.func
(** [finish t] seals the function.
    @raise Failure if any reachable block lacks a terminator. *)
