(** IR interpreter.

    Executes a program functionally and, through an optional event hook,
    drives the tracer (for DDDG construction) and the CPU timing model. The
    memoization unit is attached as a record of callbacks so this library
    stays independent of the hardware model. *)

type memo_hooks = {
  send : lut:int -> ty:Ir.ty -> trunc:int -> Ir.value -> unit;
      (** A [reg_crc]/[ld_crc] streamed one input value; the unit truncates
          [trunc] LSBs and feeds the bytes to the hash register of [lut]. *)
  lookup : lut:int -> int64 option;
      (** Finalize the hash and probe; [Some payload] on hit. *)
  update : lut:int -> int64 -> unit;
      (** Insert a payload under the key of the last lookup on [lut]. *)
  invalidate : lut:int -> unit;
}

type event =
  | Enter of { fname : string }
  | Leave of { fname : string }
  | Exec of { fname : string; bidx : int; iidx : int; instr : Ir.instr; addr : int }
      (** One instruction executed. [addr] is the resolved effective address
          for memory instructions, [-1] otherwise. *)
  | Term of { fname : string; bidx : int; term : Ir.terminator }
      (** A terminator executed (control-flow edge taken). *)

type t

val create :
  ?memo:memo_hooks ->
  ?hook:(event -> unit) ->
  ?max_steps:int ->
  program:Ir.program ->
  mem:Memory.t ->
  unit ->
  t
(** [create ~program ~mem ()] prepares an execution context. [max_steps]
    (default [2_000_000_000]) bounds total executed instructions as a runaway
    guard. *)

val run : t -> string -> Ir.value array -> Ir.value array
(** [run t fname args] calls function [fname] with [args] and returns its
    results.
    @raise Failure on a dynamic error (unknown function, step limit,
    type-mismatched operation, division by zero). *)

val steps : t -> int
(** Instructions executed so far across all [run] calls. *)
