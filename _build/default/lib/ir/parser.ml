type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse of int * string

let fail line fmt = Format.kasprintf (fun m -> raise (Parse (line, m))) fmt

(* --- lexical helpers --- *)

let strip s = String.trim s

let split_on_string ~sep s =
  let seplen = String.length sep in
  let rec go start acc =
    match
      let rec find i =
        if i + seplen > String.length s then None
        else if String.sub s i seplen = sep then Some i
        else find (i + 1)
      in
      find start
    with
    | Some i -> go (i + seplen) (String.sub s start (i - start) :: acc)
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
  in
  go 0 []

let split_commas s =
  if strip s = "" then []
  else List.map strip (String.split_on_char ',' s)

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let drop_prefix ~prefix s = String.sub s (String.length prefix) (String.length s - String.length prefix)

(* --- atoms --- *)

let parse_ty line = function
  | "i32" -> Ir.I32
  | "i64" -> Ir.I64
  | "f32" -> Ir.F32
  | "f64" -> Ir.F64
  | other -> fail line "unknown type %S" other

let parse_reg line s =
  let s = strip s in
  if String.length s >= 2 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some r -> r
    | None -> fail line "bad register %S" s
  else fail line "expected a register, got %S" s

let is_reg s =
  String.length s >= 2
  && s.[0] = 'r'
  && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub s 1 (String.length s - 1))

let parse_operand line s =
  let s = strip s in
  if is_reg s then Ir.Reg (parse_reg line s)
  else
    let lower = String.lowercase_ascii s in
    let looks_float =
      String.contains lower '.' || String.contains lower 'p'
      || lower = "nan" || lower = "inf" || lower = "-inf"
      || (String.contains lower 'x' && String.contains lower 'p')
    in
    if looks_float && String.contains lower 'x' || lower = "nan" || lower = "inf"
       || lower = "-inf" then
      match float_of_string_opt s with
      | Some f -> Ir.Imm (VF f)
      | None -> fail line "bad float immediate %S" s
    else
      match Int64.of_string_opt s with
      | Some v -> Ir.Imm (VI v)
      | None -> (
          (* decimal floats also acceptable *)
          match float_of_string_opt s with
          | Some f -> Ir.Imm (VF f)
          | None -> fail line "bad operand %S" s)

(* [base + off] or [base + -off] *)
let parse_addr line s =
  let s = strip s in
  if not (starts_with ~prefix:"[" s && String.length s > 1 && s.[String.length s - 1] = ']')
  then fail line "expected [base + offset], got %S" s;
  let inner = String.sub s 1 (String.length s - 2) in
  match split_on_string ~sep:" + " inner with
  | [ base; off ] -> (
      match int_of_string_opt (strip off) with
      | Some o -> (parse_operand line base, o)
      | None -> fail line "bad offset %S" off)
  | _ -> fail line "expected [base + offset], got %S" s

(* "lut=3" / "n=8" *)
let parse_kv line key s =
  let s = strip s in
  let prefix = key ^ "=" in
  if starts_with ~prefix s then
    match int_of_string_opt (drop_prefix ~prefix s) with
    | Some v -> v
    | None -> fail line "bad %s value in %S" key s
  else fail line "expected %s=<int>, got %S" key s

(* --- opcode tables (inverse of the printer's string functions) --- *)

let binops =
  [
    ("add", Ir.Add); ("sub", Ir.Sub); ("mul", Ir.Mul); ("div", Ir.Div); ("rem", Ir.Rem);
    ("and", Ir.And); ("or", Ir.Or); ("xor", Ir.Xor); ("shl", Ir.Shl); ("lshr", Ir.Lshr);
    ("ashr", Ir.Ashr);
  ]

let fbinops = [ ("fadd", Ir.Fadd); ("fsub", Ir.Fsub); ("fmul", Ir.Fmul); ("fdiv", Ir.Fdiv) ]

let funops =
  [
    ("fneg", Ir.Fneg); ("fabs", Ir.Fabs); ("fsqrt", Ir.Fsqrt); ("fsin", Ir.Fsin);
    ("fcos", Ir.Fcos); ("fexp", Ir.Fexp); ("flog", Ir.Flog); ("ffloor", Ir.Ffloor);
    ("fround", Ir.Fround);
  ]

let icmps =
  [ ("eq", Ir.Ieq); ("ne", Ir.Ine); ("lt", Ir.Ilt); ("le", Ir.Ile); ("gt", Ir.Igt);
    ("ge", Ir.Ige) ]

let fcmps =
  [ ("feq", Ir.Feq); ("fne", Ir.Fne); ("flt", Ir.Flt); ("fle", Ir.Fle); ("fgt", Ir.Fgt);
    ("fge", Ir.Fge) ]

let casts =
  [
    ("i2f", Ir.I_to_f); ("f2i", Ir.F_to_i); ("f32.of.f64", Ir.F32_of_f64);
    ("f64.of.f32", Ir.F64_of_f32); ("bits.of.f32", Ir.Bits_of_f32);
    ("f32.of.bits", Ir.F32_of_bits); ("bits.of.f64", Ir.Bits_of_f64);
    ("f64.of.bits", Ir.F64_of_bits); ("sext", Ir.Sext_32_64); ("trunc", Ir.Trunc_64_32);
  ]

(* --- instruction parsing --- *)

(* Split "mnemonic rest" at the first space. *)
let cut_mnemonic line s =
  match String.index_opt s ' ' with
  | Some i -> (String.sub s 0 i, strip (String.sub s (i + 1) (String.length s - i - 1)))
  | None -> (s, "")
  |> fun r -> ignore line; r

(* Parse the right-hand side of "rX = <rhs>". *)
let parse_rhs line dst rhs =
  let mnemonic, rest = cut_mnemonic line rhs in
  let with_ty name =
    match String.split_on_char '.' name with
    | [ op; ty ] -> Some (op, parse_ty line ty)
    | _ -> None
  in
  match mnemonic with
  | "mov" -> Ir.Mov { dst; src = parse_operand line rest }
  | "select" -> (
      match split_commas rest with
      | [ c; a; b ] ->
          Ir.Select
            {
              dst;
              cond = parse_operand line c;
              if_true = parse_operand line a;
              if_false = parse_operand line b;
            }
      | _ -> fail line "select expects 3 operands")
  | "lookup" -> Ir.Memo (Lookup { dst; lut = parse_kv line "lut" rest })
  | _ when List.mem_assoc mnemonic casts ->
      Ir.Cast { op = List.assoc mnemonic casts; dst; src = parse_operand line rest }
  | _ -> (
      (* typed mnemonics *)
      match with_ty mnemonic with
      | Some ("const", ty) ->
          let value =
            match parse_operand line rest with
            | Ir.Imm v -> v
            | Ir.Reg _ -> fail line "const expects an immediate"
          in
          Ir.Const { dst; ty; value }
      | Some ("load", ty) ->
          let base, offset = parse_addr line rest in
          Ir.Load { ty; dst; base; offset }
      | Some ("ld_crc", ty) -> (
          (* [addr + off], lut=N, n=M *)
          match split_on_string ~sep:", lut=" rest with
          | [ addr_part; tail ] -> (
              let base, offset = parse_addr line addr_part in
              match split_on_string ~sep:", n=" tail with
              | [ lut_s; n_s ] -> (
                  match (int_of_string_opt (strip lut_s), int_of_string_opt (strip n_s)) with
                  | Some lut, Some trunc ->
                      Ir.Memo (Ld_crc { dst; ty; base; offset; lut; trunc })
                  | _ -> fail line "bad ld_crc fields")
              | _ -> fail line "ld_crc expects , n=")
          | _ -> fail line "ld_crc expects , lut=")
      | Some (op, ty) when List.mem_assoc op binops -> (
          match split_commas rest with
          | [ a; b ] ->
              Ir.Binop
                {
                  op = List.assoc op binops;
                  ty;
                  dst;
                  a = parse_operand line a;
                  b = parse_operand line b;
                }
          | _ -> fail line "binary op expects 2 operands")
      | Some (op, ty) when List.mem_assoc op fbinops -> (
          match split_commas rest with
          | [ a; b ] ->
              Ir.Fbinop
                {
                  op = List.assoc op fbinops;
                  ty;
                  dst;
                  a = parse_operand line a;
                  b = parse_operand line b;
                }
          | _ -> fail line "fp binary op expects 2 operands")
      | Some (op, ty) when List.mem_assoc op funops ->
          Ir.Funop { op = List.assoc op funops; ty; dst; a = parse_operand line rest }
      | _ -> (
          (* icmp.<op>.<ty> / fcmp.<op>.<ty> *)
          match String.split_on_char '.' mnemonic with
          | [ "icmp"; op; ty ] -> (
              match split_commas rest with
              | [ a; b ] when List.mem_assoc op icmps ->
                  Ir.Icmp
                    {
                      op = List.assoc op icmps;
                      ty = parse_ty line ty;
                      dst;
                      a = parse_operand line a;
                      b = parse_operand line b;
                    }
              | _ -> fail line "bad icmp")
          | [ "fcmp"; op; ty ] -> (
              match split_commas rest with
              | [ a; b ] when List.mem_assoc op fcmps ->
                  Ir.Fcmp
                    {
                      op = List.assoc op fcmps;
                      ty = parse_ty line ty;
                      dst;
                      a = parse_operand line a;
                      b = parse_operand line b;
                    }
              | _ -> fail line "bad fcmp")
          | _ -> fail line "unknown instruction %S" rhs))

let parse_call line lhs rest =
  (* rest: "name(arg, arg)" *)
  match String.index_opt rest '(' with
  | None -> fail line "call expects arguments"
  | Some i ->
      let callee = strip (String.sub rest 0 i) in
      let args_s = String.sub rest (i + 1) (String.length rest - i - 2) in
      if rest.[String.length rest - 1] <> ')' then fail line "call missing )";
      let dsts =
        Array.of_list (List.map (parse_reg line) (split_commas lhs))
      in
      let args = Array.of_list (List.map (parse_operand line) (split_commas args_s)) in
      Ir.Call { callee; dsts; args }

(* One body line: instruction or terminator. *)
type parsed_line =
  | Instr of Ir.instr
  | Term of Ir.terminator

let parse_body_line line s =
  if starts_with ~prefix:"call " s then
    Instr (parse_call line "" (drop_prefix ~prefix:"call " s))
  else
  match split_on_string ~sep:" = " s with
  | [ lhs; rhs ] when strip rhs <> "" ->
      let rhs = strip rhs in
      if starts_with ~prefix:"call " rhs then
        Instr (parse_call line (strip lhs) (drop_prefix ~prefix:"call " rhs))
      else begin
        match split_commas lhs with
        | [ one ] -> Instr (parse_rhs line (parse_reg line one) rhs)
        | _ -> fail line "multiple destinations are only valid for call"
      end
  | _ -> (
      let mnemonic, rest = cut_mnemonic line s in
      match mnemonic with
      | "jmp" -> Term (Ir.Jmp (strip rest))
      | "br" -> (
          match split_commas rest with
          | [ c; l1; l2 ] -> Term (Ir.Br { cond = parse_operand line c; if_true = l1; if_false = l2 })
          | _ -> fail line "br expects cond, label, label")
      | "br_memo" -> (
          match split_commas rest with
          | [ l1; l2 ] -> Term (Ir.Br_memo { on_hit = l1; on_miss = l2 })
          | _ -> fail line "br_memo expects two labels")
      | "ret" ->
          Term (Ir.Ret (Array.of_list (List.map (parse_operand line) (split_commas rest))))
      | "store" -> fail line "store needs a type suffix"
      | "invalidate" -> Instr (Ir.Memo (Invalidate { lut = parse_kv line "lut" rest }))
      | "update" -> (
          match split_on_string ~sep:", lut=" rest with
          | [ src; lut_s ] -> (
              match int_of_string_opt (strip lut_s) with
              | Some lut -> Instr (Ir.Memo (Update { src = parse_operand line src; lut }))
              | None -> fail line "bad update lut")
          | _ -> fail line "update expects src, lut=N")
      | m when starts_with ~prefix:"store." m ->
          let ty = parse_ty line (drop_prefix ~prefix:"store." m) in
          (* rest: "src, [base + off]" *)
          (match split_on_string ~sep:", [" rest with
          | [ src; addr_tail ] ->
              let base, offset = parse_addr line ("[" ^ addr_tail) in
              Instr (Ir.Store { ty; src = parse_operand line src; base; offset })
          | _ -> fail line "store expects src, [base + off]")
      | m when starts_with ~prefix:"reg_crc." m -> (
          let ty = parse_ty line (drop_prefix ~prefix:"reg_crc." m) in
          match split_on_string ~sep:", lut=" rest with
          | [ src; tail ] -> (
              match split_on_string ~sep:", n=" tail with
              | [ lut_s; n_s ] -> (
                  match (int_of_string_opt (strip lut_s), int_of_string_opt (strip n_s)) with
                  | Some lut, Some trunc ->
                      Instr (Ir.Memo (Reg_crc { src = parse_operand line src; ty; lut; trunc }))
                  | _ -> fail line "bad reg_crc fields")
              | _ -> fail line "reg_crc expects , n=")
          | _ -> fail line "reg_crc expects , lut=")
      | _ -> fail line "cannot parse %S" s)

(* --- function / program structure --- *)

(* "pure func name(r0:f32) -> (f32) [regs=5]" *)
let parse_header line s =
  let pure, s =
    if starts_with ~prefix:"pure func " s then (true, drop_prefix ~prefix:"pure func " s)
    else if starts_with ~prefix:"func " s then (false, drop_prefix ~prefix:"func " s)
    else fail line "expected a function header, got %S" s
  in
  match String.index_opt s '(' with
  | None -> fail line "header missing ("
  | Some i -> (
      let fname = strip (String.sub s 0 i) in
      match String.index_opt s ')' with
      | None -> fail line "header missing )"
      | Some j ->
          let params_s = String.sub s (i + 1) (j - i - 1) in
          let params =
            split_commas params_s
            |> List.map (fun p ->
                   match String.split_on_char ':' p with
                   | [ r; ty ] -> (parse_reg line r, parse_ty line (strip ty))
                   | _ -> fail line "bad parameter %S" p)
            |> Array.of_list
          in
          let rest = strip (String.sub s (j + 1) (String.length s - j - 1)) in
          let rest =
            if starts_with ~prefix:"-> (" rest then drop_prefix ~prefix:"-> (" rest
            else fail line "header missing -> ("
          in
          (match String.index_opt rest ')' with
          | None -> fail line "header missing return )"
          | Some k ->
              let rets_s = String.sub rest 0 k in
              let ret_tys =
                Array.of_list (List.map (parse_ty line) (split_commas rets_s))
              in
              let tail = strip (String.sub rest (k + 1) (String.length rest - k - 1)) in
              let nregs =
                if starts_with ~prefix:"[regs=" tail && String.length tail > 7 then
                  match
                    int_of_string_opt (String.sub tail 6 (String.length tail - 7))
                  with
                  | Some n -> n
                  | None -> fail line "bad regs count"
                else fail line "header missing [regs=N]"
              in
              (pure, fname, params, ret_tys, nregs)))

type numbered = { num : int; text : string }

let parse_functions text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> { num = i + 1; text = l })
    |> List.filter (fun { text; _ } ->
           let t = strip text in
           t <> "" && not (starts_with ~prefix:"#" t))
  in
  let close_block num = function
    | None -> None
    | Some (label, instrs, Some term) ->
        Some { Ir.label; instrs = Array.of_list (List.rev instrs); term }
    | Some (label, _, None) -> fail num "block %s has no terminator" label
  in
  let rec funcs acc = function
    | [] -> List.rev acc
    | { num; text } :: rest ->
        let t = strip text in
        if starts_with ~prefix:"func " t || starts_with ~prefix:"pure func " t then begin
          let pure, fname, params, ret_tys, nregs = parse_header num t in
          let rec blocks blk_acc cur = function
            | { num; text } :: more
              when not
                     (starts_with ~prefix:"func " (strip text)
                     || starts_with ~prefix:"pure func " (strip text)) -> (
                let t = strip text in
                if String.length t > 1 && t.[String.length t - 1] = ':' then begin
                  (* a new block label closes the current block *)
                  let label = String.sub t 0 (String.length t - 1) in
                  let blk_acc =
                    match close_block num cur with
                    | Some b -> b :: blk_acc
                    | None -> blk_acc
                  in
                  blocks blk_acc (Some (label, [], None)) more
                end
                else begin
                  match cur with
                  | None -> fail num "instruction outside any block: %S" t
                  | Some (label, instrs, None) -> (
                      match parse_body_line num t with
                      | Instr i -> blocks blk_acc (Some (label, i :: instrs, None)) more
                      | Term term -> blocks blk_acc (Some (label, instrs, Some term)) more)
                  | Some (label, _, Some _) ->
                      fail num "unreachable code after terminator in block %s" label
                end)
            | remaining ->
                let last_num =
                  match remaining with { num; _ } :: _ -> num | [] -> num
                in
                let blk_acc =
                  match close_block last_num cur with
                  | Some b -> b :: blk_acc
                  | None -> blk_acc
                in
                (List.rev blk_acc, remaining)
          in
          let body, remaining = blocks [] None rest in
          let fn =
            {
              Ir.fname;
              params;
              ret_tys;
              blocks = Array.of_list body;
              nregs;
              pure;
            }
          in
          funcs (fn :: acc) remaining
        end
        else fail num "expected a function header, got %S" t
  in
  funcs [] lines

let parse_func text =
  match parse_functions text with
  | [ f ] -> Ok f
  | [] -> Error { line = 1; message = "no function found" }
  | _ -> Error { line = 1; message = "expected exactly one function" }
  | exception Parse (line, message) -> Error { line; message }

let parse_program text =
  match parse_functions text with
  | [] -> Error { line = 1; message = "empty program" }
  | funcs -> (
      let program = { Ir.funcs = Array.of_list funcs } in
      match Ir.validate program with
      | Ok () -> Ok program
      | Error errs ->
          Error { line = 0; message = "validation: " ^ String.concat "; " errs })
  | exception Parse (line, message) -> Error { line; message }

let roundtrip p = parse_program (Format.asprintf "%a" Ir.pp_program p)
