(** LUT payload encoding.

    A LUT entry's data field is 4 or 8 bytes (Section 3.3); kernels with two
    32-bit outputs pack both into one 8-byte entry ("pack as many outputs
    into the 8-byte LUT data field as possible"). This module is the single
    source of truth for that packing: the compiler emits IR that packs and
    unpacks accordingly, and the quality monitor decodes payloads to compute
    relative errors. *)

type kind =
  | Pf32  (** one binary32 value in the low 4 bytes *)
  | Pf64  (** one binary64 value *)
  | Pi32  (** one 32-bit integer *)
  | Pi64  (** one 64-bit integer *)
  | Pf32x2  (** two binary32 values, first in the low half *)
  | Pi32x2  (** two 32-bit integers, first in the low half *)

val width : kind -> int
(** Entry data width in bytes (4 or 8). *)

val arity : kind -> int
(** Number of logical output values. *)

val kind_of_rets : Ir.ty array -> kind
(** [kind_of_rets tys] chooses the packing for a kernel's return signature.
    @raise Invalid_argument if the signature does not fit one 8-byte entry. *)

val pack : kind -> Ir.value array -> int64
(** [pack k vs] encodes [arity k] values into a payload.
    @raise Invalid_argument on arity or kind mismatch. *)

val unpack : kind -> int64 -> Ir.value array
(** [unpack k payload] decodes the values back. [unpack k (pack k vs)]
    round-trips exactly. *)

val relative_errors : kind -> expected:int64 -> actual:int64 -> float array
(** Per-element relative error between two payloads, decoded as numbers;
    used by the quality monitor. *)
