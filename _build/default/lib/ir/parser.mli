(** Parser for the textual IR format.

    Round-trips with {!Ir.pp_program}: programs can be dumped with the
    pretty-printer (e.g. [axmemo_cli ir -b sobel]), edited or generated
    externally, and loaded back. The grammar is exactly the printer's
    output:

    {v
    pure func name(r0:f32, r1:i64) -> (f32) [regs=7]
    entry:
      r2 = fadd.f32 r0, 0x1p+0
      r3 = load.f32 [r1 + 8]
      r4, r5 = call helper(r2, r3)
      reg_crc.f32 r2, lut=0, n=8
      r6 = lookup lut=0
      br_memo hit_0, miss_0
    hit_0:
      ret r6
    ...
    v}

    Integer immediates are decimal; float immediates use OCaml's hexadecimal
    float literals ([%h]), which are exact. Comments start with [#] and run
    to end of line; blank lines are ignored. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_program : string -> (Ir.program, error) result
(** [parse_program text] parses a whole program (one or more functions). The
    result is structurally validated with {!Ir.validate}. *)

val parse_func : string -> (Ir.func, error) result
(** [parse_func text] parses a single function (validation is up to the
    caller, since calls may reference functions defined elsewhere). *)

val roundtrip : Ir.program -> (Ir.program, error) result
(** [roundtrip p] prints and re-parses [p] — used by tests to pin the
    printer/parser correspondence. *)
