(** Flat byte-addressable memory with a bump allocator.

    Workloads allocate their input/output arrays here before execution;
    loads and stores in the interpreter resolve against it. Addresses are
    plain integers (byte offsets), little-endian layout. *)

type t

val create : ?size_bytes:int -> unit -> t
(** [create ()] returns an empty memory; it grows on demand up to
    [size_bytes] (default 512 MiB — the software-LUT baselines allocate
    multi-MB tables). *)

val alloc : t -> bytes:int -> align:int -> int
(** [alloc t ~bytes ~align] reserves a fresh region and returns its base
    address, aligned to [align] (a power of two). *)

val load : t -> Ir.ty -> int -> Ir.value
(** [load t ty addr] reads a value of type [ty] at [addr]. I32 loads are
    sign-extended; F32 loads are widened to [float]. *)

val store : t -> Ir.ty -> int -> Ir.value -> unit
(** [store t ty addr v] writes [v] at [addr] with [ty] layout. Stores a [VF]
    for float types and a [VI] for integer types.
    @raise Invalid_argument on a value/type kind mismatch. *)

val load_f32 : t -> int -> float
val store_f32 : t -> int -> float -> unit
val load_f64 : t -> int -> float
val store_f64 : t -> int -> float -> unit
val load_i32 : t -> int -> int32
val store_i32 : t -> int -> int32 -> unit
val load_i64 : t -> int -> int64
val store_i64 : t -> int -> int64 -> unit

val used_bytes : t -> int
(** High-water mark of the allocator. *)
