type label = string

type proto_block = {
  plabel : label;
  mutable rev_instrs : Ir.instr list;
  mutable pterm : Ir.terminator option;
}

type t = {
  name : string;
  pure : bool;
  params : (Ir.reg * Ir.ty) array;
  rets : Ir.ty array;
  mutable next_reg : int;
  mutable next_label : int;
  mutable order : proto_block list;  (* reverse creation order *)
  blocks : (label, proto_block) Hashtbl.t;
  mutable current : proto_block;
}

let create ~name ?(pure = false) ~params ~rets () =
  let params = Array.of_list params in
  let param_regs = Array.mapi (fun i ty -> (i, ty)) params in
  let entry = { plabel = "entry"; rev_instrs = []; pterm = None } in
  let blocks = Hashtbl.create 16 in
  Hashtbl.replace blocks "entry" entry;
  {
    name;
    pure;
    params = param_regs;
    rets = Array.of_list rets;
    next_reg = Array.length params;
    next_label = 0;
    order = [ entry ];
    blocks;
    current = entry;
  }

let param t i =
  let r, _ = t.params.(i) in
  Ir.Reg r

let i32 v = Ir.Imm (VI (Int64.of_int v))
let i64 v = Ir.Imm (VI v)
let f32 v = Ir.Imm (VF (Int32.float_of_bits (Int32.bits_of_float v)))
let f64 v = Ir.Imm (VF v)

let fresh t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let rv r = Ir.Reg r

let emit t i = t.current.rev_instrs <- i :: t.current.rev_instrs

let mov t r v = emit t (Ir.Mov { dst = r; src = v })

let dst_op t mk =
  let dst = fresh t in
  emit t (mk dst);
  Ir.Reg dst

let binop t op ty a b = dst_op t (fun dst -> Ir.Binop { op; ty; dst; a; b })
let fbinop t op ty a b = dst_op t (fun dst -> Ir.Fbinop { op; ty; dst; a; b })
let funop t op ty a = dst_op t (fun dst -> Ir.Funop { op; ty; dst; a })
let icmp t op ty a b = dst_op t (fun dst -> Ir.Icmp { op; ty; dst; a; b })
let fcmp t op ty a b = dst_op t (fun dst -> Ir.Fcmp { op; ty; dst; a; b })

let select t cond if_true if_false =
  dst_op t (fun dst -> Ir.Select { dst; cond; if_true; if_false })

let cast t op src = dst_op t (fun dst -> Ir.Cast { op; dst; src })
let load t ty base offset = dst_op t (fun dst -> Ir.Load { ty; dst; base; offset })

let store t ty ~src ~base ~offset = emit t (Ir.Store { ty; src; base; offset })

let call t callee ~rets args =
  let dsts = Array.init rets (fun _ -> fresh t) in
  emit t (Ir.Call { callee; dsts; args = Array.of_list args });
  Array.to_list (Array.map (fun r -> Ir.Reg r) dsts)

let addi t a b = binop t Add I32 a b
let subi t a b = binop t Sub I32 a b
let muli t a b = binop t Mul I32 a b
let fadd t ty a b = fbinop t Fadd ty a b
let fsub t ty a b = fbinop t Fsub ty a b
let fmul t ty a b = fbinop t Fmul ty a b
let fdiv t ty a b = fbinop t Fdiv ty a b

let block t hint =
  let l = Printf.sprintf "%s_%d" hint t.next_label in
  t.next_label <- t.next_label + 1;
  let b = { plabel = l; rev_instrs = []; pterm = None } in
  Hashtbl.replace t.blocks l b;
  t.order <- b :: t.order;
  l

let switch_to t l = t.current <- Hashtbl.find t.blocks l

let set_term t term =
  match t.current.pterm with
  | Some _ -> failwith (Printf.sprintf "Builder: block %s already terminated" t.current.plabel)
  | None -> t.current.pterm <- Some term

let jmp t l = set_term t (Ir.Jmp l)
let br t cond if_true if_false = set_term t (Ir.Br { cond; if_true; if_false })
let ret t ops = set_term t (Ir.Ret (Array.of_list ops))

let for_loop t ~from ~below body =
  let i = fresh t in
  mov t i from;
  let head = block t "for_head" in
  let body_l = block t "for_body" in
  let exit_l = block t "for_exit" in
  jmp t head;
  switch_to t head;
  let c = icmp t Ilt I32 (rv i) below in
  br t c body_l exit_l;
  switch_to t body_l;
  body (rv i);
  mov t i (binop t Add I32 (rv i) (i32 1));
  jmp t head;
  switch_to t exit_l

let if_ t cond ~then_ ~else_ =
  let then_l = block t "if_then" in
  let else_l = block t "if_else" in
  let join_l = block t "if_join" in
  br t cond then_l else_l;
  switch_to t then_l;
  then_ ();
  jmp t join_l;
  switch_to t else_l;
  else_ ();
  jmp t join_l;
  switch_to t join_l

let while_loop t ~cond ~body =
  let head = block t "while_head" in
  let body_l = block t "while_body" in
  let exit_l = block t "while_exit" in
  jmp t head;
  switch_to t head;
  let c = cond () in
  br t c body_l exit_l;
  switch_to t body_l;
  body ();
  jmp t head;
  switch_to t exit_l

let finish t : Ir.func =
  let protos = List.rev t.order in
  let blocks =
    List.map
      (fun pb ->
        match pb.pterm with
        | None ->
            failwith
              (Printf.sprintf "Builder: %s/%s lacks a terminator" t.name pb.plabel)
        | Some term ->
            { Ir.label = pb.plabel; instrs = Array.of_list (List.rev pb.rev_instrs); term })
      protos
  in
  {
    Ir.fname = t.name;
    params = t.params;
    ret_tys = t.rets;
    blocks = Array.of_list blocks;
    nregs = t.next_reg;
    pure = t.pure;
  }
