lib/ir/memory.ml: Bytes Int32 Int64 Ir Printf
