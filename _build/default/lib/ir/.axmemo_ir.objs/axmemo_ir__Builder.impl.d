lib/ir/builder.ml: Array Hashtbl Int32 Int64 Ir List Printf
