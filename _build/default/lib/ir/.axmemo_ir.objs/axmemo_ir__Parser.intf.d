lib/ir/parser.mli: Format Ir
