lib/ir/payload.mli: Ir
