lib/ir/parser.ml: Array Format Int64 Ir List String
