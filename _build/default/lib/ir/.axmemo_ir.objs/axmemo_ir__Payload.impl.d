lib/ir/payload.ml: Array Float Int32 Int64 Ir
