lib/ir/memory.mli: Ir
