lib/ir/interp.ml: Array Float Hashtbl Int32 Int64 Ir Memory
