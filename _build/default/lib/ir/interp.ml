type memo_hooks = {
  send : lut:int -> ty:Ir.ty -> trunc:int -> Ir.value -> unit;
  lookup : lut:int -> int64 option;
  update : lut:int -> int64 -> unit;
  invalidate : lut:int -> unit;
}

type event =
  | Enter of { fname : string }
  | Leave of { fname : string }
  | Exec of { fname : string; bidx : int; iidx : int; instr : Ir.instr; addr : int }
  | Term of { fname : string; bidx : int; term : Ir.terminator }

type t = {
  program : Ir.program;
  mem : Memory.t;
  memo : memo_hooks option;
  hook : (event -> unit) option;
  max_steps : int;
  funcs : (string, Ir.func * (string, int) Hashtbl.t) Hashtbl.t;
  mutable memo_flag : bool;
  mutable nsteps : int;
}

let create ?memo ?hook ?(max_steps = 2_000_000_000) ~program ~mem () =
  let funcs = Hashtbl.create 16 in
  Array.iter
    (fun (f : Ir.func) ->
      let labels = Hashtbl.create 16 in
      Array.iteri (fun i (b : Ir.block) -> Hashtbl.replace labels b.label i) f.blocks;
      Hashtbl.replace funcs f.fname (f, labels))
    (program : Ir.program).funcs;
  { program; mem; memo; hook; max_steps; funcs; memo_flag = false; nsteps = 0 }

let steps t = t.nsteps

let sext32 v = Int64.shift_right (Int64.shift_left v 32) 32
let round_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let vi = function Ir.VI v -> v | Ir.VF _ -> failwith "Interp: expected integer value"
let vf = function Ir.VF v -> v | Ir.VI _ -> failwith "Interp: expected float value"

let eval_binop op ty a b =
  let a = vi a and b = vi b in
  let wide =
    match (op : Ir.binop) with
    | Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | Mul -> Int64.mul a b
    | Div -> if b = 0L then failwith "Interp: division by zero" else Int64.div a b
    | Rem -> if b = 0L then failwith "Interp: division by zero" else Int64.rem a b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
    | Shl ->
        let s = Int64.to_int b land if ty = Ir.I32 then 31 else 63 in
        Int64.shift_left a s
    | Lshr ->
        let s = Int64.to_int b land if ty = Ir.I32 then 31 else 63 in
        if ty = Ir.I32 then Int64.shift_right_logical (Int64.logand a 0xFFFFFFFFL) s
        else Int64.shift_right_logical a s
    | Ashr ->
        let s = Int64.to_int b land if ty = Ir.I32 then 31 else 63 in
        Int64.shift_right a s
  in
  Ir.VI (if ty = Ir.I32 then sext32 wide else wide)

let eval_fbinop op ty a b =
  let a = vf a and b = vf b in
  let r =
    match (op : Ir.fbinop) with
    | Fadd -> a +. b
    | Fsub -> a -. b
    | Fmul -> a *. b
    | Fdiv -> a /. b
  in
  Ir.VF (if ty = Ir.F32 then round_f32 r else r)

let eval_funop op ty a =
  let a = vf a in
  let r =
    match (op : Ir.funop) with
    | Fneg -> -.a
    | Fabs -> abs_float a
    | Fsqrt -> sqrt a
    | Fsin -> sin a
    | Fcos -> cos a
    | Fexp -> exp a
    | Flog -> log a
    | Ffloor -> floor a
    | Fround -> Float.round a
  in
  Ir.VF (if ty = Ir.F32 then round_f32 r else r)

let eval_icmp op a b =
  let a = vi a and b = vi b in
  let r =
    match (op : Ir.icmp) with
    | Ieq -> a = b
    | Ine -> a <> b
    | Ilt -> a < b
    | Ile -> a <= b
    | Igt -> a > b
    | Ige -> a >= b
  in
  Ir.VI (if r then 1L else 0L)

let eval_fcmp op a b =
  let a = vf a and b = vf b in
  let r =
    match (op : Ir.fcmp) with
    | Feq -> a = b
    | Fne -> a <> b
    | Flt -> a < b
    | Fle -> a <= b
    | Fgt -> a > b
    | Fge -> a >= b
  in
  Ir.VI (if r then 1L else 0L)

let eval_cast op v =
  match (op : Ir.cast) with
  | I_to_f -> Ir.VF (Int64.to_float (vi v))
  | F_to_i -> Ir.VI (Int64.of_float (vf v))
  | F32_of_f64 -> Ir.VF (round_f32 (vf v))
  | F64_of_f32 -> Ir.VF (vf v)
  | Bits_of_f32 -> Ir.VI (sext32 (Int64.of_int32 (Int32.bits_of_float (vf v))))
  | F32_of_bits -> Ir.VF (Int32.float_of_bits (Int64.to_int32 (vi v)))
  | Bits_of_f64 -> Ir.VI (Int64.bits_of_float (vf v))
  | F64_of_bits -> Ir.VF (Int64.float_of_bits (vi v))
  | Sext_32_64 -> Ir.VI (sext32 (vi v))
  | Trunc_64_32 -> Ir.VI (sext32 (vi v))

let rec exec_func t (fn : Ir.func) labels (args : Ir.value array) : Ir.value array =
  let regs = Array.make fn.nregs (Ir.VI 0L) in
  Array.iteri (fun i (r, _) -> regs.(r) <- args.(i)) fn.params;
  (match t.hook with Some h -> h (Enter { fname = fn.fname }) | None -> ());
  let operand = function Ir.Reg r -> regs.(r) | Ir.Imm v -> v in
  let rec run_block bidx =
    let block = fn.blocks.(bidx) in
    let instrs = block.instrs in
    let n = Array.length instrs in
    for iidx = 0 to n - 1 do
      let instr = instrs.(iidx) in
      t.nsteps <- t.nsteps + 1;
      if t.nsteps > t.max_steps then failwith "Interp: step limit exceeded";
      let addr = ref (-1) in
      (match instr with
      | Const { dst; value; _ } -> regs.(dst) <- value
      | Mov { dst; src } -> regs.(dst) <- operand src
      | Binop { op; ty; dst; a; b } -> regs.(dst) <- eval_binop op ty (operand a) (operand b)
      | Fbinop { op; ty; dst; a; b } ->
          regs.(dst) <- eval_fbinop op ty (operand a) (operand b)
      | Funop { op; ty; dst; a } -> regs.(dst) <- eval_funop op ty (operand a)
      | Icmp { op; dst; a; b; _ } -> regs.(dst) <- eval_icmp op (operand a) (operand b)
      | Fcmp { op; dst; a; b; _ } -> regs.(dst) <- eval_fcmp op (operand a) (operand b)
      | Select { dst; cond; if_true; if_false } ->
          regs.(dst) <- (if vi (operand cond) <> 0L then operand if_true else operand if_false)
      | Cast { op; dst; src } -> regs.(dst) <- eval_cast op (operand src)
      | Load { ty; dst; base; offset } ->
          let a = Int64.to_int (vi (operand base)) + offset in
          addr := a;
          regs.(dst) <- Memory.load t.mem ty a
      | Store { ty; src; base; offset } ->
          let a = Int64.to_int (vi (operand base)) + offset in
          addr := a;
          Memory.store t.mem ty a (operand src)
      | Call { callee; dsts; args } ->
          (* The call event fires before the callee runs so a timing consumer
             sees events in issue order. *)
          (match t.hook with
          | Some h -> h (Exec { fname = fn.fname; bidx; iidx; instr; addr = -1 })
          | None -> ());
          let g, glabels =
            match Hashtbl.find_opt t.funcs callee with
            | Some fg -> fg
            | None -> failwith ("Interp: unknown function " ^ callee)
          in
          let results = exec_func t g glabels (Array.map operand args) in
          Array.iteri (fun i dst -> regs.(dst) <- results.(i)) dsts
      | Memo m -> exec_memo t regs operand addr m);
      (match instr with
      | Call _ -> ()
      | _ -> (
          match t.hook with
          | Some h -> h (Exec { fname = fn.fname; bidx; iidx; instr; addr = !addr })
          | None -> ()))
    done;
    (match t.hook with
    | Some h -> h (Term { fname = fn.fname; bidx; term = block.term })
    | None -> ());
    match block.term with
    | Jmp l -> run_block (Hashtbl.find labels l)
    | Br { cond; if_true; if_false } ->
        if vi (operand cond) <> 0L then run_block (Hashtbl.find labels if_true)
        else run_block (Hashtbl.find labels if_false)
    | Br_memo { on_hit; on_miss } ->
        if t.memo_flag then run_block (Hashtbl.find labels on_hit)
        else run_block (Hashtbl.find labels on_miss)
    | Ret ops -> Array.map operand ops
  in
  let results = run_block 0 in
  (match t.hook with Some h -> h (Leave { fname = fn.fname }) | None -> ());
  results

and exec_memo t regs operand addr (m : Ir.memo_instr) =
  match m with
  | Ld_crc { dst; ty; base; offset; lut; trunc } ->
      let a = Int64.to_int (vi (operand base)) + offset in
      addr := a;
      let v = Memory.load t.mem ty a in
      regs.(dst) <- v;
      (match t.memo with Some mh -> mh.send ~lut ~ty ~trunc v | None -> ())
  | Reg_crc { src; ty; lut; trunc } -> (
      match t.memo with Some mh -> mh.send ~lut ~ty ~trunc (operand src) | None -> ())
  | Lookup { dst; lut } -> (
      match t.memo with
      | Some mh -> (
          match mh.lookup ~lut with
          | Some payload ->
              t.memo_flag <- true;
              regs.(dst) <- VI payload
          | None ->
              t.memo_flag <- false;
              regs.(dst) <- VI 0L)
      | None ->
          t.memo_flag <- false;
          regs.(dst) <- VI 0L)
  | Update { src; lut } -> (
      match t.memo with Some mh -> mh.update ~lut (vi (operand src)) | None -> ())
  | Invalidate { lut } -> (
      match t.memo with Some mh -> mh.invalidate ~lut | None -> ())

let run t fname args =
  match Hashtbl.find_opt t.funcs fname with
  | None -> failwith ("Interp: unknown function " ^ fname)
  | Some (fn, labels) ->
      if Array.length args <> Array.length fn.params then
        failwith ("Interp: bad argument count for " ^ fname);
      exec_func t fn labels args
