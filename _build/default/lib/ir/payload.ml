type kind = Pf32 | Pf64 | Pi32 | Pi64 | Pf32x2 | Pi32x2

let width = function Pf32 | Pi32 -> 4 | Pf64 | Pi64 | Pf32x2 | Pi32x2 -> 8

let arity = function Pf32 | Pf64 | Pi32 | Pi64 -> 1 | Pf32x2 | Pi32x2 -> 2

let kind_of_rets (tys : Ir.ty array) =
  match tys with
  | [| F32 |] -> Pf32
  | [| F64 |] -> Pf64
  | [| I32 |] -> Pi32
  | [| I64 |] -> Pi64
  | [| F32; F32 |] -> Pf32x2
  | [| I32; I32 |] -> Pi32x2
  | _ -> invalid_arg "Payload.kind_of_rets: signature does not fit one 8-byte LUT entry"

let low32 v = Int64.logand v 0xFFFFFFFFL
let sext32 v = Int64.shift_right (Int64.shift_left v 32) 32

let f32_bits_64 x = Int64.logand (Int64.of_int32 (Int32.bits_of_float x)) 0xFFFFFFFFL

let pack kind (vs : Ir.value array) : int64 =
  if Array.length vs <> arity kind then invalid_arg "Payload.pack: arity mismatch";
  match (kind, vs) with
  | Pf32, [| VF x |] -> f32_bits_64 x
  | Pf64, [| VF x |] -> Int64.bits_of_float x
  | Pi32, [| VI x |] -> low32 x
  | Pi64, [| VI x |] -> x
  | Pf32x2, [| VF a; VF b |] ->
      Int64.logor (f32_bits_64 a) (Int64.shift_left (f32_bits_64 b) 32)
  | Pi32x2, [| VI a; VI b |] -> Int64.logor (low32 a) (Int64.shift_left (low32 b) 32)
  | _ -> invalid_arg "Payload.pack: value kind mismatch"

let unpack kind payload : Ir.value array =
  let f32_of v = Ir.VF (Int32.float_of_bits (Int64.to_int32 v)) in
  match kind with
  | Pf32 -> [| f32_of (low32 payload) |]
  | Pf64 -> [| VF (Int64.float_of_bits payload) |]
  | Pi32 -> [| VI (sext32 payload) |]
  | Pi64 -> [| VI payload |]
  | Pf32x2 -> [| f32_of (low32 payload); f32_of (Int64.shift_right_logical payload 32) |]
  | Pi32x2 ->
      [| VI (sext32 payload); VI (sext32 (Int64.shift_right_logical payload 32)) |]

let to_float : Ir.value -> float = function
  | VF x -> x
  | VI x -> Int64.to_float x

let relative_errors kind ~expected ~actual =
  let es = unpack kind expected and actuals = unpack kind actual in
  Array.map2
    (fun e a ->
      let e = to_float e and a = to_float a in
      abs_float (a -. e) /. Float.max (abs_float e) 1e-12)
    es actuals
