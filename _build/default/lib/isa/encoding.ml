type opcode = Op_ld_crc | Op_reg_crc | Op_lookup | Op_update | Op_invalidate

type t = { opcode : opcode; lut_id : int; trunc : int; reg : int; imm12 : int }

(* Opcode values chosen in an unused region of the A64 map. *)
let opcode_bits = function
  | Op_ld_crc -> 0b110001
  | Op_reg_crc -> 0b110010
  | Op_lookup -> 0b110011
  | Op_update -> 0b110100
  | Op_invalidate -> 0b110101

let opcode_of_bits = function
  | 0b110001 -> Some Op_ld_crc
  | 0b110010 -> Some Op_reg_crc
  | 0b110011 -> Some Op_lookup
  | 0b110100 -> Some Op_update
  | 0b110101 -> Some Op_invalidate
  | _ -> None

let check name lo hi v =
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "Encoding.encode: %s=%d out of range [%d,%d]" name v lo hi)

let encode i =
  check "lut_id" 0 7 i.lut_id;
  check "trunc" 0 63 i.trunc;
  check "reg" 0 31 i.reg;
  check "imm12" (-2048) 2047 i.imm12;
  let imm = i.imm12 land 0xFFF in
  Int32.of_int
    ((opcode_bits i.opcode lsl 26)
    lor (i.lut_id lsl 23)
    lor (i.trunc lsl 17)
    lor (i.reg lsl 12)
    lor imm)

let decode w =
  let w = Int32.to_int (Int32.logand w 0xFFFFFFFFl) land 0xFFFFFFFF in
  match opcode_of_bits ((w lsr 26) land 0x3F) with
  | None -> None
  | Some opcode ->
      let imm = w land 0xFFF in
      let imm12 = if imm >= 2048 then imm - 4096 else imm in
      Some
        {
          opcode;
          lut_id = (w lsr 23) land 0x7;
          trunc = (w lsr 17) land 0x3F;
          reg = (w lsr 12) land 0x1F;
          imm12;
        }

let mnemonic i =
  match i.opcode with
  | Op_ld_crc ->
      Printf.sprintf "ld_crc x%d, [addr, #%d], LUT#%d, n=%d" i.reg i.imm12 i.lut_id i.trunc
  | Op_reg_crc -> Printf.sprintf "reg_crc x%d, LUT#%d, n=%d" i.reg i.lut_id i.trunc
  | Op_lookup -> Printf.sprintf "lookup x%d, LUT#%d" i.reg i.lut_id
  | Op_update -> Printf.sprintf "update x%d, LUT#%d" i.reg i.lut_id
  | Op_invalidate -> Printf.sprintf "invalidate LUT#%d" i.lut_id
