lib/isa/encoding.ml: Int32 Printf
