lib/isa/timing.mli:
