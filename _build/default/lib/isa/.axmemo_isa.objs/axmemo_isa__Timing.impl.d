lib/isa/timing.ml:
