lib/isa/encoding.mli:
