(** 32-bit encodings of the five AxMemo instructions (Section 4).

    The paper extends ARM-v8a; we model the extension as a fixed 32-bit
    format so the encoder/decoder pair documents that all five instructions
    fit existing instruction widths:

    {v
    | 31..26 opcode | 25..23 LUT_ID | 22..17 n | 16..12 reg | 11..0 imm12 |
    v}

    [reg] is the destination (ld_crc, lookup) or source (reg_crc, update)
    register; [imm12] is the signed address offset of [ld_crc]. *)

type opcode = Op_ld_crc | Op_reg_crc | Op_lookup | Op_update | Op_invalidate

type t = {
  opcode : opcode;
  lut_id : int;  (** 0..7 — up to 8 logical LUTs per thread (Section 3.2) *)
  trunc : int;  (** 0..63 — LSBs truncated before hashing *)
  reg : int;  (** 0..31 *)
  imm12 : int;  (** -2048..2047 *)
}

val encode : t -> int32
(** [encode i] packs the fields.
    @raise Invalid_argument if any field is out of range. *)

val decode : int32 -> t option
(** [decode w] unpacks a word; [None] if the opcode field is invalid. *)

val mnemonic : t -> string
(** Assembly-style rendering, e.g. ["lookup x5, LUT#3"]. *)
