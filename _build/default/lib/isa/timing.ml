let crc_cycles_per_byte = 1
let crc_bytes_per_cycle = 4
let crc_cycles ~bytes = max 1 ((bytes + crc_bytes_per_cycle - 1) / crc_bytes_per_cycle)
let input_queue_bytes = 32
let lookup_l1_cycles = 2
let lookup_l2_cycles = 13
let update_cycles = 2
let invalidate_cycles_per_way = 1
