lib/core/runner.ml: Array Axmemo_baselines Axmemo_cache Axmemo_compiler Axmemo_cpu Axmemo_energy Axmemo_ir Axmemo_isa Axmemo_memo Axmemo_workloads Hashtbl List Printf String
