lib/core/analysis.mli: Axmemo_ddg Axmemo_workloads
