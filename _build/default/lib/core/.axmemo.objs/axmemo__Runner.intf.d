lib/core/runner.mli: Axmemo_cpu Axmemo_energy Axmemo_memo Axmemo_workloads
