lib/core/analysis.ml: Axmemo_cpu Axmemo_ddg Axmemo_ir Axmemo_trace Axmemo_workloads List
