(** Compiler-analysis glue: runs a workload on its {e sample} dataset under
    the tracer and performs the DDDG candidate search — the flow of the
    paper's Figure 5, producing Table 1's columns. *)

type row = {
  name : string;
  total_dynamic_subgraphs : int;
  unique_subgraphs : int;
  ci_ratio : float;
  coverage : float;
  trace_truncated : bool;
}

val analyze :
  ?max_entries:int ->
  ?params:Axmemo_ddg.Ddg.params ->
  (Axmemo_workloads.Workload.variant -> Axmemo_workloads.Workload.instance) ->
  row
(** [analyze make] traces a sample-input run (default up to 30_000 entries —
    several outer iterations of every benchmark) and runs the candidate
    search. *)
