(* Image-processing pipeline: Sobel edge detection with approximate
   memoization, rendered as ASCII art so the quality trade-off is visible.

   Sobel streams nine pixels per window into the hash — the paper's
   motivating case for CRC tags instead of concatenated inputs. With 16 bits
   truncated per pixel, windows from the same smooth region share a LUT
   entry.

   Run with: dune exec examples/sobel_pipeline.exe *)

module W = Axmemo_workloads
module Runner = Axmemo.Runner

let width = 128

let render title out =
  Printf.printf "%s\n" title;
  let shades = " .:-=+*#%@" in
  (* Downsample to keep the ASCII view 64 columns wide. *)
  let step = 2 in
  for y = 0 to (width / step) - 1 do
    for x = 0 to (width / step) - 1 do
      let v = out.((y * step * width) + (x * step)) in
      let idx =
        min (String.length shades - 1)
          (int_of_float (v /. 64.0 *. float_of_int (String.length shades - 1)))
      in
      print_char shades.[idx]
    done;
    print_newline ()
  done

let floats = function
  | W.Workload.Floats f -> f
  | W.Workload.Bools _ -> failwith "expected floats"

let () =
  let base = Runner.run Baseline (W.Sobel.make W.Workload.Eval) in
  let memo = Runner.run Runner.l1_8k (W.Sobel.make W.Workload.Eval) in
  render "--- exact edge map (baseline) ---" (floats base.outputs);
  render "--- memoized edge map (AxMemo, 16-bit truncation) ---" (floats memo.outputs);
  Printf.printf "\nspeedup %.2fx  energy saving %.2fx  hit rate %.1f%%  Er %.2e\n"
    (Runner.speedup ~baseline:base memo)
    (Runner.energy_saving ~baseline:base memo)
    (100.0 *. memo.hit_rate)
    (W.Workload.quality_loss ~reference:base.outputs ~approx:memo.outputs)
