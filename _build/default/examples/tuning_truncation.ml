(* Profile-guided truncation selection (Section 5, "Code Generation").

   The compiler picks the number of truncated bits by profiling on a sample
   input set: sweep n, watch the output error, keep the largest n within the
   bound. This example runs that loop for inversek2j and shows the
   error/hit-rate trade-off the paper describes, then confirms the chosen
   level against Table 2's value (8 bits).

   Run with: dune exec examples/tuning_truncation.exe *)

module W = Axmemo_workloads
module Runner = Axmemo.Runner
module Tuning = Axmemo_compiler.Tuning
module Transform = Axmemo_compiler.Transform
module Table = Axmemo_util.Table

let run_with_bits bits =
  let instance = W.Inversek2j.make W.Workload.Sample in
  let instance =
    {
      instance with
      regions =
        List.map
          (fun (r : Transform.region) ->
            { r with truncs = Array.map (fun _ -> bits) r.truncs })
          instance.regions;
    }
  in
  Runner.run Runner.l1_8k_l2_512k instance

let () =
  let base = Runner.run Baseline (W.Inversek2j.make W.Workload.Sample) in
  let profile = Hashtbl.create 16 in
  let evaluate bits =
    match Hashtbl.find_opt profile bits with
    | Some (err, _) -> err
    | None ->
        let r = run_with_bits bits in
        let err = W.Workload.quality_loss ~reference:base.outputs ~approx:r.outputs in
        Hashtbl.replace profile bits (err, r.hit_rate);
        err
  in
  Printf.printf "Profiling inversek2j on its sample dataset:\n\n";
  let rows =
    List.map
      (fun bits ->
        let err = evaluate bits in
        let _, hit = Hashtbl.find profile bits in
        [
          string_of_int bits;
          Printf.sprintf "%.2e" err;
          Table.fmt_pct hit;
          (if err <= Tuning.default_error_bound then "ok" else "exceeds bound");
        ])
      [ 1; 2; 4; 6; 8; 10; 12; 14; 16 ]
  in
  Table.print
    ~align:[ Right; Right; Right; Left ]
    ~header:[ "truncated bits"; "output error"; "hit rate"; "0.1% bound" ]
    rows;
  let chosen =
    Tuning.select_truncation ~evaluate ~error_bound:Tuning.default_error_bound
      ~max_bits:16
  in
  Printf.printf "\nselected truncation: %d bits (Table 2 ships 8 for this benchmark)\n"
    chosen
