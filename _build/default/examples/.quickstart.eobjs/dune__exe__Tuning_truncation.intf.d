examples/tuning_truncation.mli:
