examples/quickstart.ml: Array Axmemo_cache Axmemo_compiler Axmemo_cpu Axmemo_ir Axmemo_memo Axmemo_util Axmemo_workloads Int64 Printf
