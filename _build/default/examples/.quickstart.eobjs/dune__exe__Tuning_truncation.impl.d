examples/tuning_truncation.ml: Array Axmemo Axmemo_compiler Axmemo_util Axmemo_workloads Hashtbl List Printf
