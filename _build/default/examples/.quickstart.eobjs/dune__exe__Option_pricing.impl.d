examples/option_pricing.ml: Axmemo Axmemo_util Axmemo_workloads List Printf
