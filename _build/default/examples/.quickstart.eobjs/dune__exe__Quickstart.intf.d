examples/quickstart.mli:
