examples/ir_files.ml: Array Axmemo_compiler Axmemo_ir Axmemo_memo Filename Format Printf Sys
