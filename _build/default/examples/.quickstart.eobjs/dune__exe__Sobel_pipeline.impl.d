examples/sobel_pipeline.ml: Array Axmemo Axmemo_workloads Printf String
