examples/ir_files.mli:
