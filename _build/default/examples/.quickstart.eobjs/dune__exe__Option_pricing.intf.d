examples/option_pricing.mli:
