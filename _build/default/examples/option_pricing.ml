(* Option pricing under AxMemo — the paper's headline scenario.

   Quantitative finance recomputes the same option tuples constantly
   (Moreno & Balch 2014); AxMemo turns the whole Black-Scholes kernel into
   one LUT access. This example sweeps the four hardware configurations and
   both software contenders over the blackscholes benchmark and reports the
   Figure 7/9-style row for it.

   Run with: dune exec examples/option_pricing.exe *)

module W = Axmemo_workloads
module Runner = Axmemo.Runner
module Table = Axmemo_util.Table

let () =
  let fresh () = W.Blackscholes.make W.Workload.Eval in
  let base = Runner.run Baseline (fresh ()) in
  Printf.printf "Pricing 20,000 European options on the simulated HPI core\n";
  Printf.printf "baseline: %d cycles (%.2f ms at 2 GHz)\n\n" base.cycles
    (1e3 *. base.seconds);
  let configs =
    [
      Runner.l1_4k;
      Runner.l1_8k;
      Runner.l1_8k_l2_256k;
      Runner.l1_8k_l2_512k;
      Runner.software_default;
      Runner.atm_default;
    ]
  in
  let rows =
    List.map
      (fun cfg ->
        let r = Runner.run cfg (fresh ()) in
        let loss =
          W.Workload.quality_loss ~reference:base.outputs ~approx:r.outputs
        in
        [
          r.label;
          Table.fmt_x (Runner.speedup ~baseline:base r);
          Table.fmt_x (Runner.energy_saving ~baseline:base r);
          Table.fmt_pct r.hit_rate;
          Printf.sprintf "%.3e" loss;
        ])
      configs
  in
  Table.print
    ~align:[ Left; Right; Right; Right; Right ]
    ~header:[ "configuration"; "speedup"; "energy saving"; "hit rate"; "price error" ]
    rows;
  print_newline ();
  Printf.printf
    "The pricing kernel (log, two CNDF evaluations, exp) collapses to one\n\
     24-byte hash + LUT probe; market tuples repeat, so even a 4 KB LUT pays.\n"
