type config = {
  l1_size : int;
  l1_ways : int;
  l1_latency : int;
  l2_size : int;
  l2_ways : int;
  l2_latency : int;
  line_bytes : int;
  dram_latency : int;
}

let hpi_default =
  {
    l1_size = 32 * 1024;
    l1_ways = 4;
    l1_latency = 1;
    l2_size = 1024 * 1024;
    l2_ways = 16;
    l2_latency = 13;
    line_bytes = 64;
    dram_latency = 160;
  }

let carve_l2 c ~lut_bytes =
  if lut_bytes = 0 then c
  else begin
    let way_bytes = c.l2_size / c.l2_ways in
    let ways_needed = (lut_bytes + way_bytes - 1) / way_bytes in
    if ways_needed > c.l2_ways / 2 then
      invalid_arg "Hierarchy.carve_l2: L2 LUT may use at most half the last-level cache";
    let remaining = c.l2_ways - ways_needed in
    { c with l2_ways = remaining; l2_size = remaining * way_bytes }
  end

module Registry = Axmemo_telemetry.Registry

(* Telemetry attachment: a live read-latency histogram (one bucket per
   service level) plus end-of-run mirrors of both caches' stats. Purely
   observational — latencies returned are bit-identical either way. *)
type level_counters = {
  accesses_c : Registry.counter;
  hits_c : Registry.counter;
  misses_c : Registry.counter;
  evictions_c : Registry.counter;
  writes_c : Registry.counter;
}

type telem = {
  read_lat : Registry.histogram;
  l1_c : level_counters;
  l2_c : level_counters;
}

let make_level_counters reg prefix =
  let counter suffix = Registry.counter reg (prefix ^ suffix) in
  {
    accesses_c = counter ".accesses";
    hits_c = counter ".hits";
    misses_c = counter ".misses";
    evictions_c = counter ".evictions";
    writes_c = counter ".writes";
  }

let flush_level (c : level_counters) (s : Sa_cache.stats) =
  Registry.set_count c.accesses_c s.accesses;
  Registry.set_count c.hits_c s.hits;
  Registry.set_count c.misses_c s.misses;
  Registry.set_count c.evictions_c s.evictions;
  Registry.set_count c.writes_c s.writes

type t = { cfg : config; l1 : Sa_cache.t; l2 : Sa_cache.t; telem : telem option }

let make_telem cfg reg =
  {
    read_lat =
      Registry.histogram reg "cache.read_latency"
        ~bounds:
          [|
            float_of_int cfg.l1_latency;
            float_of_int (cfg.l1_latency + cfg.l2_latency);
            float_of_int (cfg.l1_latency + cfg.l2_latency + cfg.dram_latency);
          |];
    l1_c = make_level_counters reg "cache.l1";
    l2_c = make_level_counters reg "cache.l2";
  }

let create ?metrics cfg =
  {
    cfg;
    l1 =
      Sa_cache.create ~name:"L1D" ~size_bytes:cfg.l1_size ~ways:cfg.l1_ways
        ~line_bytes:cfg.line_bytes;
    l2 =
      Sa_cache.create ~name:"L2" ~size_bytes:cfg.l2_size ~ways:cfg.l2_ways
        ~line_bytes:cfg.line_bytes;
    telem = Option.map (make_telem cfg) metrics;
  }

let config t = t.cfg

(* Degree-2 next-line prefetch, as the HPI's stride prefetcher would do for
   the streaming accesses these kernels make: fills happen off the critical
   path and are not charged latency. *)
let prefetch t addr =
  for k = 1 to 2 do
    let a = addr + (k * t.cfg.line_bytes) in
    if not (Sa_cache.probe t.l1 ~addr:a) then begin
      ignore (Sa_cache.access t.l1 ~addr:a ~write:false);
      ignore (Sa_cache.access t.l2 ~addr:a ~write:false)
    end
  done

let read t ~addr =
  let latency =
    match Sa_cache.access t.l1 ~addr ~write:false with
    | `Hit -> t.cfg.l1_latency
    | `Miss -> (
        match Sa_cache.access t.l2 ~addr ~write:false with
        | `Hit ->
            prefetch t addr;
            t.cfg.l1_latency + t.cfg.l2_latency
        | `Miss ->
            prefetch t addr;
            t.cfg.l1_latency + t.cfg.l2_latency + t.cfg.dram_latency)
  in
  (match t.telem with
  | Some tl -> Registry.observe tl.read_lat (float_of_int latency)
  | None -> ());
  latency

let write t ~addr =
  (* Write-allocate: bring the line in on a miss, but the core only sees the
     store-buffer cost; the fill happens off the critical path. *)
  (match Sa_cache.access t.l1 ~addr ~write:true with
  | `Hit -> ()
  | `Miss -> ignore (Sa_cache.access t.l2 ~addr ~write:true));
  1

let l1 t = t.l1
let l2 t = t.l2

let invalidate_all t =
  Sa_cache.invalidate_all t.l1;
  Sa_cache.invalidate_all t.l2

let reset_stats t =
  Sa_cache.reset_stats t.l1;
  Sa_cache.reset_stats t.l2

let flush_metrics t =
  match t.telem with
  | None -> ()
  | Some tl ->
      flush_level tl.l1_c (Sa_cache.stats t.l1);
      flush_level tl.l2_c (Sa_cache.stats t.l2)
