type stats = { accesses : int; hits : int; misses : int; evictions : int; writes : int }

type t = {
  cname : string;
  nsets : int;
  set_mask : int;  (* nsets - 1 when nsets is a power of two, else 0 *)
  nways : int;
  line : int;
  line_shift : int;
  tags : int array;  (* nsets * nways; -1 = invalid *)
  lru : int array;  (* nsets * nways; lower = older *)
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writes : int;
}

let log2_exact n =
  let rec go k v = if v = 1 then k else go (k + 1) (v lsr 1) in
  if n <= 0 || n land (n - 1) <> 0 then invalid_arg "Sa_cache: not a power of two"
  else go 0 n

let create ~name ~size_bytes ~ways ~line_bytes =
  if ways <= 0 || line_bytes <= 0 || size_bytes <= 0 then
    invalid_arg "Sa_cache.create: non-positive geometry";
  if size_bytes mod (ways * line_bytes) <> 0 then
    invalid_arg "Sa_cache.create: size not divisible by ways*line";
  let nsets = size_bytes / (ways * line_bytes) in
  {
    cname = name;
    nsets;
    set_mask = (if nsets land (nsets - 1) = 0 then nsets - 1 else 0);
    nways = ways;
    line = line_bytes;
    line_shift = log2_exact line_bytes;
    tags = Array.make (nsets * ways) (-1);
    lru = Array.make (nsets * ways) 0;
    clock = 0;
    accesses = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    writes = 0;
  }

let name t = t.cname
let sets t = t.nsets
let ways t = t.nways
let line_bytes t = t.line

(* The power-of-two mask dodges an integer division on the hottest path of
   the whole simulator (every modelled load and store lands here). *)
let[@inline] set_of t line_addr =
  if t.set_mask <> 0 then line_addr land t.set_mask else line_addr mod t.nsets

let touch t set w =
  t.clock <- t.clock + 1;
  t.lru.((set * t.nways) + w) <- t.clock

(* Lowest-indexed invalid way if any, else least recently used (ties to the
   lowest index). Single pass: this runs on every miss, and the wide L2 makes
   a multi-pass scan measurable on LUT-heavy workloads. *)
let victim_way t set =
  let base = set * t.nways in
  let rec scan w best =
    if w >= t.nways then best
    else if Array.unsafe_get t.tags (base + w) = -1 then w
    else
      scan (w + 1)
        (if Array.unsafe_get t.lru (base + w) < Array.unsafe_get t.lru (base + best)
         then w
         else best)
  in
  if Array.unsafe_get t.tags base = -1 then 0 else scan 1 0

(* Allocation-free way lookup for the access hot path: the way index, or -1
   when the tag is absent. *)
let find_way_idx t base tag =
  let w = ref 0 and found = ref (-1) in
  while !found < 0 && !w < t.nways do
    if Array.unsafe_get t.tags (base + !w) = tag then found := !w;
    incr w
  done;
  !found

let access t ~addr ~write =
  t.accesses <- t.accesses + 1;
  if write then t.writes <- t.writes + 1;
  let line_addr = addr lsr t.line_shift in
  let set = set_of t line_addr in
  let tag = line_addr in
  let base = set * t.nways in
  let w = find_way_idx t base tag in
  if w >= 0 then begin
    t.hits <- t.hits + 1;
    touch t set w;
    `Hit
  end
  else begin
    t.misses <- t.misses + 1;
    let w = victim_way t set in
    if t.tags.(base + w) <> -1 then t.evictions <- t.evictions + 1;
    t.tags.(base + w) <- tag;
    touch t set w;
    `Miss
  end

let probe t ~addr =
  let line_addr = addr lsr t.line_shift in
  let set = set_of t line_addr in
  find_way_idx t (set * t.nways) line_addr >= 0

let invalidate_all t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.lru 0 (Array.length t.lru) 0

let stats t =
  {
    accesses = t.accesses;
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    writes = t.writes;
  }

let reset_stats t =
  t.accesses <- 0;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  t.writes <- 0

let hit_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.hits /. float_of_int t.accesses
