(** Two-level data-cache hierarchy with DRAM behind it.

    Latencies follow the paper's Table 3 HPI configuration: 1-cycle L1 hit,
    13-cycle L2 hit, DDR3-1600 behind the L2. The L2's way count is reduced
    when ways are carved out for the L2 LUT. *)

type config = {
  l1_size : int;
  l1_ways : int;
  l1_latency : int;
  l2_size : int;  (** capacity available for {e data} (after any LUT carve-out) *)
  l2_ways : int;
  l2_latency : int;
  line_bytes : int;
  dram_latency : int;  (** cycles for an L2 miss to complete *)
}

val hpi_default : config
(** 32 KB 4-way L1D @1 cycle, 1 MB 16-way L2 @13 cycles, 64 B lines,
    160-cycle DRAM (80 ns at 2 GHz). The paper enables 1 MB of the 2 MB L2
    since a single core is used. *)

val carve_l2 : config -> lut_bytes:int -> config
(** [carve_l2 c ~lut_bytes] removes whole ways from the L2 to host an L2 LUT
    of at least [lut_bytes], returning the reduced data-side configuration.
    @raise Invalid_argument if more than half the L2 would be carved
    (the paper caps the L2 LUT at half the last-level cache). *)

type t

val create : ?metrics:Axmemo_telemetry.Registry.t -> config -> t
(** With [?metrics], registers instruments under [cache.*]: a live
    [cache.read_latency] histogram (one bucket per service level —
    L1 hit, L2 hit, DRAM) and end-of-run stat mirrors written by
    {!flush_metrics}. Latency results are bit-identical either way. *)

val config : t -> config

val read : t -> addr:int -> int
(** [read t ~addr] simulates a load: probes L1 then L2, allocates on the
    way back, returns total latency in cycles. *)

val write : t -> addr:int -> int
(** [write t ~addr] simulates a store (write-allocate, write-back); the
    returned latency is the store-buffer occupancy cost seen by the core. *)

val l1 : t -> Sa_cache.t
val l2 : t -> Sa_cache.t

val invalidate_all : t -> unit
val reset_stats : t -> unit

val flush_metrics : t -> unit
(** Mirror both caches' {!Sa_cache.stats} into the attached registry
    ([cache.l1.accesses], [cache.l1.hits], ... [cache.l2.writes]). Call
    once, when the run ends. No-op without an attached registry. *)
