module Json = Axmemo_util.Json

type tol = { rel : float; abs : float }

type tolerances = { default : tol; rules : (string * tol) list }
(* [rules] is kept sorted by descending pattern length so the first match
   is the most specific one. *)

let exact = { default = { rel = 0.0; abs = 0.0 }; rules = [] }

let parse_tol_value s =
  let parse_float x =
    match float_of_string_opt (String.trim x) with
    | Some f when f >= 0.0 -> Some f
    | _ -> None
  in
  match String.split_on_char ':' s with
  | [ r ] -> (
      match parse_float r with Some rel -> Some { rel; abs = 0.0 } | None -> None)
  | [ r; a ] -> (
      match (parse_float r, parse_float a) with
      | Some rel, Some abs -> Some { rel; abs }
      | _ -> None)
  | _ -> None

let parse_tolerances spec =
  let entries = String.split_on_char ',' spec in
  let rec go acc = function
    | [] ->
        let default =
          match List.assoc_opt "default" acc with
          | Some t -> t
          | None -> exact.default
        in
        let rules =
          List.filter (fun (name, _) -> name <> "default") acc
          |> List.stable_sort (fun (a, _) (b, _) ->
                 compare (String.length b) (String.length a))
        in
        Ok { default; rules }
    | e :: rest -> (
        let e = String.trim e in
        if e = "" then go acc rest
        else
          match String.index_opt e '=' with
          | None -> Error (Printf.sprintf "tolerance entry %S: expected name=rel[:abs]" e)
          | Some i -> (
              let name = String.trim (String.sub e 0 i) in
              let value = String.sub e (i + 1) (String.length e - i - 1) in
              if name = "" then Error (Printf.sprintf "tolerance entry %S: empty metric name" e)
              else
                match parse_tol_value value with
                | Some t -> go ((name, t) :: acc) rest
                | None ->
                    Error
                      (Printf.sprintf
                         "tolerance entry %S: bad value (want rel[:abs], non-negative)" e)))
  in
  go [] entries

(* '*' matches any substring (including empty); everything else is literal. *)
let glob_match pat s =
  let np = String.length pat and ns = String.length s in
  let rec go p i =
    if p = np then i = ns
    else if pat.[p] = '*' then
      let rec try_from j = j <= ns && (go (p + 1) j || try_from (j + 1)) in
      try_from i
    else i < ns && pat.[p] = s.[i] && go (p + 1) (i + 1)
  in
  go 0 0

let tol_for t name =
  match List.find_opt (fun (pat, _) -> glob_match pat name) t.rules with
  | Some (_, tol) -> tol
  | None -> t.default

type delta = {
  run_key : string;
  metric : string;
  a : float;
  b : float;
  abs_delta : float;
  rel_delta : float;
  tol : tol;
  violation : bool;
}

type report_diff = {
  deltas : delta list;
  changed : delta list;
  violations : delta list;
  missing_in_b : string list;
  missing_in_a : string list;
}

(* ------------------------------------------------------------------ *)
(* Flattening one run object to (metric name, value) pairs. Strings are
   hashed onto a comparison axis where only equality matters. *)

type scalar = Num of float | Text of string

let flatten_run run =
  let out = ref [] in
  let emit name v = out := (name, v) :: !out in
  let emit_json prefix (name, v) =
    match (v : Json.t) with
    | Int i -> emit (prefix ^ name) (Num (float_of_int i))
    | Float f -> emit (prefix ^ name) (Num f)
    | Bool b -> emit (prefix ^ name) (Num (if b then 1.0 else 0.0))
    | Str s -> emit (prefix ^ name) (Text s)
    | Null | Arr _ | Obj _ -> ()
  in
  (match Json.member "summary" run with
  | Some (Json.Obj kvs) -> List.iter (emit_json "summary.") kvs
  | _ -> ());
  (* The optional "service" section nests (latency percentiles per class),
     so it flattens recursively: every scalar leaf becomes a
     service.<path>.<leaf> metric and is gate-visible like the summary.
     Arrays are skipped, same as everywhere else in the differ. *)
  let rec emit_tree prefix (name, v) =
    match (v : Json.t) with
    | Obj kvs -> List.iter (emit_tree (prefix ^ name ^ ".")) kvs
    | _ -> emit_json prefix (name, v)
  in
  (match Json.member "service" run with
  | Some (Json.Obj kvs) -> List.iter (emit_tree "service.") kvs
  | _ -> ());
  (* The sharded-cluster section gates the same way: shard balance,
     directory traffic and replication shares all become cluster.<path>
     metrics. *)
  (match Json.member "cluster" run with
  | Some (Json.Obj kvs) -> List.iter (emit_tree "cluster.") kvs
  | _ -> ());
  (match Json.member "metrics" run with
  | Some metrics ->
      (match Json.member "counters" metrics with
      | Some (Json.Obj kvs) -> List.iter (emit_json "counters.") kvs
      | _ -> ());
      (match Json.member "gauges" metrics with
      | Some (Json.Obj kvs) -> List.iter (emit_json "gauges.") kvs
      | _ -> ());
      (match Json.member "histograms" metrics with
      | Some (Json.Obj kvs) ->
          List.iter
            (fun (name, h) ->
              let grab field =
                match Json.member field h with
                | Some v -> emit_json ("histograms." ^ name ^ ".") (field, v)
                | None -> ()
              in
              grab "total";
              grab "sum")
            kvs
      | _ -> ())
  | None -> ());
  List.rev !out

let run_key run =
  match (Json.member "benchmark" run, Json.member "config" run) with
  | Some (Json.Str b), Some (Json.Str c) -> Ok (b ^ "/" ^ c)
  | _ -> Error "run without string benchmark/config fields"

let runs_of report =
  match Json.member "runs" report with
  | Some (Json.Arr runs) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | r :: rest -> (
            match run_key r with
            | Ok k -> go ((k, r) :: acc) rest
            | Error e -> Error e)
      in
      go [] runs
  | _ -> Error "report has no \"runs\" array"

let compare_scalar ~run_key ~metric ~tol a b =
  match (a, b) with
  | Text sa, Text sb ->
      let same = String.equal sa sb in
      {
        run_key;
        metric;
        a = 0.0;
        b = (if same then 0.0 else 1.0);
        abs_delta = (if same then 0.0 else 1.0);
        rel_delta = (if same then 0.0 else Float.nan);
        tol;
        violation = not same;
      }
  | _ ->
      let num = function Num f -> f | Text _ -> Float.nan in
      let a = num a and b = num b in
      let abs_delta = b -. a in
      let rel_delta =
        if abs_delta = 0.0 then 0.0
        else if a = 0.0 then Float.nan
        else abs_delta /. a
      in
      let within =
        Float.abs abs_delta <= tol.abs
        || ((not (Float.is_nan rel_delta)) && Float.abs rel_delta <= tol.rel)
      in
      { run_key; metric; a; b; abs_delta; rel_delta; tol; violation = not within }

let diff ?(tol = exact) a b =
  match (runs_of a, runs_of b) with
  | Error e, _ -> Error ("report A: " ^ e)
  | _, Error e -> Error ("report B: " ^ e)
  | Ok runs_a, Ok runs_b ->
      let missing_in_b =
        List.filter_map
          (fun (k, _) -> if List.mem_assoc k runs_b then None else Some k)
          runs_a
      in
      let missing_in_a =
        List.filter_map
          (fun (k, _) -> if List.mem_assoc k runs_a then None else Some k)
          runs_b
      in
      let deltas =
        List.concat_map
          (fun (key, run_a) ->
            match List.assoc_opt key runs_b with
            | None -> []
            | Some run_b ->
                let fa = flatten_run run_a and fb = flatten_run run_b in
                let names =
                  List.sort_uniq String.compare
                    (List.map fst fa @ List.map fst fb)
                in
                List.map
                  (fun metric ->
                    let t = tol_for tol metric in
                    let va =
                      Option.value ~default:(Num Float.nan) (List.assoc_opt metric fa)
                    and vb =
                      Option.value ~default:(Num Float.nan) (List.assoc_opt metric fb)
                    in
                    match (List.assoc_opt metric fa, List.assoc_opt metric fb) with
                    | Some _, Some _ ->
                        compare_scalar ~run_key:key ~metric ~tol:t va vb
                    | _ ->
                        (* metric on one side only: always a violation *)
                        {
                          run_key = key;
                          metric;
                          a = (match va with Num f -> f | Text _ -> Float.nan);
                          b = (match vb with Num f -> f | Text _ -> Float.nan);
                          abs_delta = Float.nan;
                          rel_delta = Float.nan;
                          tol = t;
                          violation = true;
                        })
                  names)
          runs_a
      in
      Ok
        {
          deltas;
          changed =
            List.filter (fun d -> d.abs_delta <> 0.0 || Float.is_nan d.abs_delta) deltas;
          violations = List.filter (fun d -> d.violation) deltas;
          missing_in_b;
          missing_in_a;
        }

let diff_files ?tol path_a path_b =
  match Json.read_file path_a with
  | Error e -> Error (path_a ^ ": " ^ e)
  | Ok a -> (
      match Json.read_file path_b with
      | Error e -> Error (path_b ^ ": " ^ e)
      | Ok b -> diff ?tol a b)

let gate_ok d = d.violations = [] && d.missing_in_b = [] && d.missing_in_a = []

let render ?(show_all = false) d =
  let buf = Buffer.create 1024 in
  List.iter
    (fun k -> Printf.bprintf buf "MISSING in B: %s\n" k)
    d.missing_in_b;
  List.iter
    (fun k -> Printf.bprintf buf "MISSING in A: %s\n" k)
    d.missing_in_a;
  let show tag x =
    Printf.bprintf buf "%s %s %s: %g -> %g (delta %+g" tag x.run_key x.metric x.a x.b
      x.abs_delta;
    if (not (Float.is_nan x.rel_delta)) && x.a <> 0.0 then
      Printf.bprintf buf ", %+.3f%%" (100.0 *. x.rel_delta);
    Printf.bprintf buf "; tol rel=%g abs=%g)\n" x.tol.rel x.tol.abs
  in
  List.iter (show "FAIL") d.violations;
  if show_all then
    List.iter (fun x -> if not x.violation then show "ok  " x) d.changed;
  let nruns =
    List.sort_uniq String.compare (List.map (fun x -> x.run_key) d.deltas)
    |> List.length
  in
  Printf.bprintf buf
    "%d runs compared, %d metrics, %d changed, %d violations%s\n" nruns
    (List.length d.deltas) (List.length d.changed)
    (List.length d.violations)
    (if d.missing_in_a = [] && d.missing_in_b = [] then ""
     else
       Printf.sprintf ", %d unmatched runs"
         (List.length d.missing_in_a + List.length d.missing_in_b));
  Buffer.contents buf
