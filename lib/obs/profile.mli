(** The attribution profiler.

    Telemetry (PR 2) counts aggregate events; this collector explains them.
    Attached through the optional [?profile] ports of
    {!Axmemo_memo.Memo_unit}, {!Axmemo_cpu.Pipeline} and [Axmemo.Runner],
    it answers three questions per static memoization region:

    - {b where did the cycles (and picojoules) go?} Every wall-clock cycle
      of the pipeline is charged to one [(region, instruction class)] cell
      (see {!Axmemo_cpu.Pipeline.profile}); after {!close} the matrix sums
      exactly to the run's total cycles.
    - {b why did each lookup miss?} The collector replays LUT residency
      from the unit's insert/evict/invalidate events and classifies every
      miss: {!Cold} (first touch), {!Capacity} (the departed entry was
      displaced while the level was full), {!Conflict} (displaced from a
      non-full level — set conflict), {!Invalidated} (dropped by an
      [invalidate], an adaptive-truncation change, or a cross-core
      broadcast), {!Remote_invalidated} (dropped by a point-to-point
      invalidation arriving from another cluster node's directory),
      {!Monitor_forced} (quality-monitor sampling, adaptive
      profiling windows, or a tripped monitor), {!Collision_aliased} (the
      departed entry carried a different input fingerprint — the slot
      belonged to a colliding input, so this is an aliased first touch) and
      {!Other} (the shadow says the key was resident — only reachable under
      fault injection). The reason counts sum exactly to the unit's miss
      count.
    - {b who contributed the error?} Every shadow-exact comparison the
      quality monitor or the adaptive profiler performs is credited to the
      region, as are fingerprint collisions (hits that returned another
      input's payload).

    The collector is purely observational, and absent ([?profile] not
    passed) every hot path stays allocation-free and bit-identical. *)

type reason =
  | Cold
  | Capacity
  | Conflict
  | Invalidated
  | Remote_invalidated
  | Monitor_forced
  | Collision_aliased
  | Other

val all_reasons : reason list
(** In rendering order; index in this list = index into [reasons] arrays. *)

val reason_name : reason -> string

type t

val create : regions:(string * int) list -> t
(** [create ~regions] builds a collector for the given static regions, in
    order: element [i] is [(kernel function name, logical LUT id)] and gets
    region id [i]. Cycles retired outside any kernel belong to a synthetic
    {e (program)} region reported last. *)

val memo_hooks : t -> Axmemo_memo.Memo_unit.profile_hooks
(** The event port to pass as [Memo_unit.create ?profile]. *)

val pipeline_profile : t -> Axmemo_cpu.Pipeline.profile
(** The cycle collector to pass as [Pipeline.create ?profile]. The same
    value may be reattached to successive pipelines (a co-run core); call
    {!Axmemo_cpu.Pipeline.profile_close} after each run. *)

val shared_evict : t -> lut:int -> key:int64 -> full:bool -> unit
(** Residency event from an {e external} shared L2 level (the co-run
    cluster observes the shared LUT's evictions and broadcasts them to
    every core's collector). *)

val note_contention : t -> lut:int -> cycles:int -> unit
(** Charge [cycles] of shared-LUT arbitration stall to the region owning
    [lut] (from the arbiter's settlement). *)

val on_remote_invalidate : t -> lut:int -> unit
(** Residency drop delivered point-to-point from another cluster node's
    directory; subsequent misses on the dropped keys classify as
    {!Remote_invalidated} instead of {!Invalidated}. *)

(** {1 Snapshots} *)

type region_snap = {
  rid : int;  (** [-1] for the program row *)
  kernel : string;  (** ["(program)"] for the program row *)
  lut_id : int;  (** [-1] for the program row *)
  cycles : int;  (** wall cycles attributed to the region *)
  class_counts : int array;  (** [Pipeline.nclasses + 1] columns *)
  class_cycles : int array;
  energy_pj : float;
      (** attributed energy: per-instruction base + functional-unit energy
          from the counted mix, plus the leakage share of the attributed
          cycles. An estimate for ranking regions — the run's exact total
          stays with {!Axmemo_energy.Model.of_run}. *)
  lookups : int;
  l1_hits : int;
  l2_hits : int;
  l3_hits : int;  (** hits served by the DRAM LUT tier, when attached *)
  misses : int;
  reasons : int array;  (** indexed like {!all_reasons}; sums to [misses] *)
  collisions : int;
  evictions : int;
  invalidations : int;
  err_count : int;
  err_sum : float;
  err_max : float;
  contention_cycles : int;
}

type snapshot = {
  regions : region_snap list;  (** declaration order, program row last *)
  total_cycles : int;  (** sum of every region's [cycles] *)
}

val snapshot : t -> snapshot
(** Deterministic: a pure function of the event history. *)

val merge : snapshot list -> snapshot
(** Pointwise sum over snapshots with identical region declarations
    ([err_max] takes the max) — how per-core co-run profiles combine into
    one cluster profile. Deterministic for any evaluation order of the
    inputs since summation is per-cell.
    @raise Invalid_argument on an empty list or mismatched region lists. *)

(** {1 Rendering} *)

val render : ?top:int -> ?baseline:snapshot -> snapshot -> string
(** Sorted text profile (descending attributed cycles; [?top] limits the
    region rows). With [?baseline] (the same workload un-memoized), each
    region also shows the cycles it saved against the baseline's
    attribution. *)

val to_folded : ?app:string -> snapshot -> string
(** Folded flame-graph stacks, one line per non-empty
    [(region, class)] cell: [app;kernel;class <cycles>] — loadable by
    speedscope or FlameGraph's [flamegraph.pl]. *)

val to_json : snapshot -> Axmemo_util.Json.t
(** The run report's ["profile"] section (see
    {!Axmemo_telemetry.Report}): schema-stable object with [total_cycles]
    and one entry per region. *)
