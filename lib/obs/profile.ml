module Memo_unit = Axmemo_memo.Memo_unit
module Pipeline = Axmemo_cpu.Pipeline
module Model = Axmemo_energy.Model
module Synthesis = Axmemo_energy.Synthesis
module Json = Axmemo_util.Json

type reason =
  | Cold
  | Capacity
  | Conflict
  | Invalidated
  | Remote_invalidated
  | Monitor_forced
  | Collision_aliased
  | Other

let all_reasons =
  [
    Cold;
    Capacity;
    Conflict;
    Invalidated;
    Remote_invalidated;
    Monitor_forced;
    Collision_aliased;
    Other;
  ]

let nreasons = List.length all_reasons

let reason_index = function
  | Cold -> 0
  | Capacity -> 1
  | Conflict -> 2
  | Invalidated -> 3
  | Remote_invalidated -> 4
  | Monitor_forced -> 5
  | Collision_aliased -> 6
  | Other -> 7

let reason_name = function
  | Cold -> "cold"
  | Capacity -> "capacity"
  | Conflict -> "conflict"
  | Invalidated -> "invalidated"
  | Remote_invalidated -> "remote_invalidated"
  | Monitor_forced -> "monitor_forced"
  | Collision_aliased -> "collision_aliased"
  | Other -> "other"

(* Shadow residency of one (lut, key): which LUT levels hold it (bit 0 = L1,
   bit 1 = L2/shared), the fingerprint it was inserted with, and — once no
   level holds it — why it left. *)
type key_state = {
  mutable levels : int;
  mutable fp : int64;
  mutable has_fp : bool;
  mutable gone : reason;
}

type rstat = {
  mutable lookups : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable misses : int;
  reasons : int array;
  mutable collisions : int;
  mutable evictions : int;
  mutable invalidations : int;
  mutable err_count : int;
  mutable err_sum : float;
  mutable err_max : float;
  mutable contention : int;
}

let fresh_rstat () =
  {
    lookups = 0;
    l1_hits = 0;
    l2_hits = 0;
    l3_hits = 0;
    misses = 0;
    reasons = Array.make nreasons 0;
    collisions = 0;
    evictions = 0;
    invalidations = 0;
    err_count = 0;
    err_sum = 0.0;
    err_max = 0.0;
    contention = 0;
  }

let max_luts = 8  (* logical LUT ids are 3 bits *)

type t = {
  kernels : string array;
  lut_ids : int array;
  nregions : int;
  lut_to_rid : int array;  (* length [max_luts], -1 = unmapped *)
  shadow : (int64, key_state) Hashtbl.t array;  (* per logical LUT *)
  rstats : rstat array;  (* nregions + 1; last row = program/unknown *)
  pp : Pipeline.profile;
}

let create ~regions =
  let n = List.length regions in
  let kernels = Array.make n "" and lut_ids = Array.make n (-1) in
  let lut_to_rid = Array.make max_luts (-1) in
  let func_to_rid = Hashtbl.create 8 in
  List.iteri
    (fun i (kernel, lut_id) ->
      kernels.(i) <- kernel;
      lut_ids.(i) <- lut_id;
      if lut_id >= 0 && lut_id < max_luts then lut_to_rid.(lut_id) <- i;
      Hashtbl.replace func_to_rid kernel i)
    regions;
  {
    kernels;
    lut_ids;
    nregions = n;
    lut_to_rid;
    shadow = Array.init max_luts (fun _ -> Hashtbl.create 1024);
    rstats = Array.init (n + 1) (fun _ -> fresh_rstat ());
    pp =
      Pipeline.profile ~nregions:n
        ~region_of_func:(fun fname ->
          match Hashtbl.find_opt func_to_rid fname with Some r -> r | None -> -1)
        ~region_of_lut:(fun lut ->
          if lut >= 0 && lut < max_luts then lut_to_rid.(lut) else -1);
  }

let pipeline_profile t = t.pp

(* Unit events with a LUT id nobody declared land on the program row, so
   counts are conserved no matter what. *)
let rstat_of t lut =
  let rid =
    if lut >= 0 && lut < max_luts && t.lut_to_rid.(lut) >= 0 then t.lut_to_rid.(lut)
    else t.nregions
  in
  t.rstats.(rid)

let shadow_of t lut = t.shadow.(lut land (max_luts - 1))

let lev_bit = function `L1 -> 1 | `L2 -> 2

let on_insert t ~lev ~lut ~key ~fp =
  let tbl = shadow_of t lut in
  let st =
    match Hashtbl.find_opt tbl key with
    | Some st -> st
    | None ->
        let st = { levels = 0; fp = 0L; has_fp = false; gone = Cold } in
        Hashtbl.add tbl key st;
        st
  in
  st.levels <- st.levels lor lev_bit lev;
  match fp with
  | Some f ->
      st.fp <- f;
      st.has_fp <- true
  | None -> ()

let on_evict t ~lev ~lut ~key ~full =
  (rstat_of t lut).evictions <- (rstat_of t lut).evictions + 1;
  match Hashtbl.find_opt (shadow_of t lut) key with
  | None -> ()
  | Some st ->
      st.levels <- st.levels land lnot (lev_bit lev);
      if st.levels = 0 then st.gone <- (if full then Capacity else Conflict)

let shared_evict t ~lut ~key ~full = on_evict t ~lev:`L2 ~lut ~key ~full

let on_invalidate t ~lut =
  (rstat_of t lut).invalidations <- (rstat_of t lut).invalidations + 1;
  Hashtbl.iter
    (fun _ st ->
      st.levels <- 0;
      st.gone <- Invalidated)
    (shadow_of t lut)

(* Point-to-point invalidation delivered from another cluster node: same
   residency drop as a local invalidate, but subsequent misses classify as
   [Remote_invalidated] so directory traffic shows up in miss attribution. *)
let on_remote_invalidate t ~lut =
  (rstat_of t lut).invalidations <- (rstat_of t lut).invalidations + 1;
  Hashtbl.iter
    (fun _ st ->
      st.levels <- 0;
      st.gone <- Remote_invalidated)
    (shadow_of t lut)

let classify_miss t ~lut ~key ~fp ~forced =
  if forced then Monitor_forced
  else
    match Hashtbl.find_opt (shadow_of t lut) key with
    | None -> Cold
    | Some st ->
        if st.levels <> 0 then Other (* resident yet missed: fault-perturbed *)
        else if
          st.has_fp && match fp with Some f -> f <> st.fp | None -> false
        then Collision_aliased
        else st.gone

let on_lookup t ~lut ~key ~fp ~level ~forced =
  let rs = rstat_of t lut in
  rs.lookups <- rs.lookups + 1;
  match (level : Memo_unit.level) with
  | Hit_l1 -> rs.l1_hits <- rs.l1_hits + 1
  | Hit_l2 -> rs.l2_hits <- rs.l2_hits + 1
  | Hit_l3 -> rs.l3_hits <- rs.l3_hits + 1
  | Miss ->
      rs.misses <- rs.misses + 1;
      let r = classify_miss t ~lut ~key ~fp ~forced in
      rs.reasons.(reason_index r) <- rs.reasons.(reason_index r) + 1

let on_error t ~lut ~err =
  let rs = rstat_of t lut in
  rs.err_count <- rs.err_count + 1;
  rs.err_sum <- rs.err_sum +. err;
  if err > rs.err_max then rs.err_max <- err

let on_collision t ~lut =
  let rs = rstat_of t lut in
  rs.collisions <- rs.collisions + 1

let note_contention t ~lut ~cycles =
  let rs = rstat_of t lut in
  rs.contention <- rs.contention + cycles

let memo_hooks t : Memo_unit.profile_hooks =
  {
    pr_lookup = (fun ~lut ~key ~fp ~level ~forced -> on_lookup t ~lut ~key ~fp ~level ~forced);
    pr_insert = (fun ~lev ~lut ~key ~fp -> on_insert t ~lev ~lut ~key ~fp);
    pr_evict = (fun ~lev ~lut ~key ~full -> on_evict t ~lev ~lut ~key ~full);
    pr_invalidate = (fun ~lut -> on_invalidate t ~lut);
    pr_error = (fun ~lut ~err -> on_error t ~lut ~err);
    pr_collision = (fun ~lut -> on_collision t ~lut);
  }

(* ------------------------------------------------------------------ *)
(* Snapshots *)

type region_snap = {
  rid : int;
  kernel : string;
  lut_id : int;
  cycles : int;
  class_counts : int array;
  class_cycles : int array;
  energy_pj : float;
  lookups : int;
  l1_hits : int;
  l2_hits : int;
  l3_hits : int;
  misses : int;
  reasons : int array;
  collisions : int;
  evictions : int;
  invalidations : int;
  err_count : int;
  err_sum : float;
  err_max : float;
  contention_cycles : int;
}

type snapshot = { regions : region_snap list; total_cycles : int }

(* Attributed energy of one region: every counted instruction pays the base
   issue energy plus its functional unit's (Table 5 rows for the memo unit,
   Model constants otherwise), and the region absorbs the leakage of its
   attributed cycles. Loads/stores are charged one L1 data access each — an
   approximation (the exact hierarchy split lives in [Model.of_run]). *)
let class_fu_pj (k : Model.constants) i =
  let classes = Array.of_list Pipeline.all_classes in
  if i >= Array.length classes then 0.0 (* drain column: no instructions *)
  else
    match classes.(i) with
    | Pipeline.C_ialu -> k.ialu_pj
    | C_imul -> k.imul_pj
    | C_idiv -> k.idiv_pj
    | C_fp -> k.fp_pj
    | C_fdiv_sqrt -> k.fdiv_sqrt_pj
    | C_ftrig -> k.ftrig_pj
    | C_load | C_store -> k.l1_access_pj
    | C_branch | C_call_ret | C_memo_branch -> k.ialu_pj
    | C_memo_send -> Synthesis.hash_register.energy_pj
    | C_memo_lookup | C_memo_update -> Synthesis.lut_8kb.energy_pj
    | C_memo_invalidate -> k.ialu_pj

let region_energy ~counts ~cycles =
  let k = Model.default_constants in
  let fu = ref 0.0 in
  Array.iteri
    (fun i n ->
      if n > 0 then fu := !fu +. (float_of_int n *. (k.base_instr_pj +. class_fu_pj k i)))
    counts;
  !fu +. (float_of_int cycles *. k.leakage_pj_per_cycle)

let snapshot t =
  let counts = Pipeline.profile_counts t.pp in
  let cycles = Pipeline.profile_cycles t.pp in
  let row rid =
    let rs = t.rstats.(rid) in
    let c = Array.fold_left ( + ) 0 cycles.(rid) in
    let program = rid = t.nregions in
    {
      rid = (if program then -1 else rid);
      kernel = (if program then "(program)" else t.kernels.(rid));
      lut_id = (if program then -1 else t.lut_ids.(rid));
      cycles = c;
      class_counts = counts.(rid);
      class_cycles = cycles.(rid);
      energy_pj = region_energy ~counts:counts.(rid) ~cycles:c;
      lookups = rs.lookups;
      l1_hits = rs.l1_hits;
      l2_hits = rs.l2_hits;
      l3_hits = rs.l3_hits;
      misses = rs.misses;
      reasons = Array.copy rs.reasons;
      collisions = rs.collisions;
      evictions = rs.evictions;
      invalidations = rs.invalidations;
      err_count = rs.err_count;
      err_sum = rs.err_sum;
      err_max = rs.err_max;
      contention_cycles = rs.contention;
    }
  in
  let regions = List.init (t.nregions + 1) row in
  { regions; total_cycles = List.fold_left (fun acc r -> acc + r.cycles) 0 regions }

let merge snaps =
  match snaps with
  | [] -> invalid_arg "Profile.merge: empty snapshot list"
  | first :: rest ->
      let keys s = List.map (fun r -> (r.rid, r.kernel, r.lut_id)) s.regions in
      List.iter
        (fun s ->
          if keys s <> keys first then
            invalid_arg "Profile.merge: snapshots describe different region lists")
        rest;
      let add2 a b = Array.mapi (fun i x -> x + b.(i)) a in
      let merge_row a b =
        {
          a with
          cycles = a.cycles + b.cycles;
          class_counts = add2 a.class_counts b.class_counts;
          class_cycles = add2 a.class_cycles b.class_cycles;
          energy_pj = a.energy_pj +. b.energy_pj;
          lookups = a.lookups + b.lookups;
          l1_hits = a.l1_hits + b.l1_hits;
          l2_hits = a.l2_hits + b.l2_hits;
          l3_hits = a.l3_hits + b.l3_hits;
          misses = a.misses + b.misses;
          reasons = add2 a.reasons b.reasons;
          collisions = a.collisions + b.collisions;
          evictions = a.evictions + b.evictions;
          invalidations = a.invalidations + b.invalidations;
          err_count = a.err_count + b.err_count;
          err_sum = a.err_sum +. b.err_sum;
          err_max = Float.max a.err_max b.err_max;
          contention_cycles = a.contention_cycles + b.contention_cycles;
        }
      in
      let regions =
        List.fold_left
          (fun acc s -> List.map2 merge_row acc s.regions)
          first.regions rest
      in
      { regions; total_cycles = List.fold_left (fun n s -> n + s.total_cycles) 0 snaps }

(* ------------------------------------------------------------------ *)
(* Rendering *)

let hit_rate r =
  if r.lookups = 0 then 0.0
  else float_of_int (r.l1_hits + r.l2_hits + r.l3_hits) /. float_of_int r.lookups

let err_mean r = if r.err_count = 0 then 0.0 else r.err_sum /. float_of_int r.err_count

let render ?top ?baseline snap =
  let buf = Buffer.create 4096 in
  let total = max 1 snap.total_cycles in
  let base_of =
    match baseline with
    | None -> fun _ -> None
    | Some b ->
        fun (r : region_snap) ->
          List.find_opt (fun (x : region_snap) -> x.rid = r.rid && x.kernel = r.kernel) b.regions
  in
  Printf.bprintf buf "total %d cycles, %.0f pJ attributed%s\n" snap.total_cycles
    (List.fold_left (fun acc r -> acc +. r.energy_pj) 0.0 snap.regions)
    (match baseline with
    | Some b -> Printf.sprintf " (baseline %d cycles)" b.total_cycles
    | None -> "");
  Printf.bprintf buf "%-18s %4s %12s %6s %12s %10s %6s %10s" "region" "lut" "cycles"
    "cyc%" "energy_pj" "lookups" "hit%" "misses";
  (match baseline with
  | Some _ -> Printf.bprintf buf " %12s" "saved_cycles"
  | None -> ());
  Printf.bprintf buf "  %s\n" "miss reasons / quality";
  let sorted =
    List.stable_sort
      (fun (a : region_snap) b -> compare b.cycles a.cycles)
      snap.regions
  in
  let sorted = match top with None -> sorted | Some n -> List.filteri (fun i _ -> i < n) sorted in
  List.iter
    (fun (r : region_snap) ->
      Printf.bprintf buf "%-18s %4s %12d %5.1f%% %12.0f %10d %5.1f%% %10d" r.kernel
        (if r.lut_id < 0 then "-" else string_of_int r.lut_id)
        r.cycles
        (100.0 *. float_of_int r.cycles /. float_of_int total)
        r.energy_pj r.lookups
        (100.0 *. hit_rate r)
        r.misses;
      (match base_of r with
      | Some b -> Printf.bprintf buf " %12d" (b.cycles - r.cycles)
      | None -> if baseline <> None then Printf.bprintf buf " %12s" "-");
      let reasons =
        List.filter_map
          (fun reason ->
            let n = r.reasons.(reason_index reason) in
            if n = 0 then None else Some (Printf.sprintf "%s=%d" (reason_name reason) n))
          all_reasons
      in
      Printf.bprintf buf "  %s" (if reasons = [] then "-" else String.concat " " reasons);
      if r.collisions > 0 then Printf.bprintf buf " collisions=%d" r.collisions;
      if r.err_count > 0 then
        Printf.bprintf buf " err(mean=%.2e max=%.2e n=%d)" (err_mean r) r.err_max
          r.err_count;
      if r.contention_cycles > 0 then
        Printf.bprintf buf " contention=%d" r.contention_cycles;
      Buffer.add_char buf '\n')
    sorted;
  Buffer.contents buf

let class_label i =
  let classes = Array.of_list Pipeline.all_classes in
  if i < Array.length classes then Pipeline.class_name classes.(i) else "drain"

let to_folded ?(app = "axmemo") snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (r : region_snap) ->
      Array.iteri
        (fun i c ->
          if c > 0 then
            Printf.bprintf buf "%s;%s;%s %d\n" app r.kernel (class_label i) c)
        r.class_cycles)
    snap.regions;
  Buffer.contents buf

let to_json snap =
  let class_obj arr =
    Json.Obj
      (List.filter_map
         (fun i -> if arr.(i) = 0 then None else Some (class_label i, Json.Int arr.(i)))
         (List.init (Array.length arr) Fun.id))
  in
  let region_json (r : region_snap) =
    Json.Obj
      [
        ("region", Json.Str r.kernel);
        ("lut", Json.Int r.lut_id);
        ("cycles", Json.Int r.cycles);
        ("energy_pj", Json.Float r.energy_pj);
        ("class_cycles", class_obj r.class_cycles);
        ("class_counts", class_obj r.class_counts);
        ("lookups", Json.Int r.lookups);
        ("l1_hits", Json.Int r.l1_hits);
        ("l2_hits", Json.Int r.l2_hits);
        ("l3_hits", Json.Int r.l3_hits);
        ("misses", Json.Int r.misses);
        ( "miss_reasons",
          Json.Obj
            (List.filter_map
               (fun reason ->
                 let n = r.reasons.(reason_index reason) in
                 if n = 0 then None else Some (reason_name reason, Json.Int n))
               all_reasons) );
        ("collisions", Json.Int r.collisions);
        ("evictions", Json.Int r.evictions);
        ("invalidations", Json.Int r.invalidations);
        ( "error",
          Json.Obj
            [
              ("count", Json.Int r.err_count);
              ("mean", Json.Float (err_mean r));
              ("max", Json.Float r.err_max);
            ] );
        ("contention_cycles", Json.Int r.contention_cycles);
      ]
  in
  Json.Obj
    [
      ("total_cycles", Json.Int snap.total_cycles);
      ("regions", Json.Arr (List.map region_json snap.regions));
    ]
