(** Run-report diffing and the regression gate.

    Loads two schema-v1 run reports (see {!Axmemo_telemetry.Report}),
    aligns their runs by [(benchmark, config)], and compares every scalar
    metric: [summary.<key>], [counters.<name>], [gauges.<name>],
    [histograms.<name>.total]/[.sum], and — when a run carries the
    optional service-level section — every scalar leaf of it as
    [service.<path>] (nested objects dot-flattened, so a latency
    percentile gates as e.g. [service.total_latency.p999]) — and the same
    for the optional sharded-cluster section as [cluster.<path>]. Series
    carry
    a time axis and are skipped; non-numeric fields (strings) are
    compared for equality and reported as a violation when they differ.

    The simulator is deterministic, so the default tolerance is {e
    exact}: any numeric drift is a violation unless the tolerance spec
    loosens it. A run present in one report but absent from the other is
    always a violation. *)

type tol = { rel : float; abs : float }
(** A delta passes when [|b - a| <= abs] {b or} [|b - a| / |a| <= rel]
    (with [a = 0]: only [b = 0] passes the relative test). *)

type tolerances
(** Pattern table mapping metric names to {!tol}, with a default. *)

val exact : tolerances
(** The default: every metric must match bit-for-bit. *)

val parse_tolerances : string -> (tolerances, string) result
(** Parses a comma-separated spec of [name=rel] or [name=rel:abs]
    entries, e.g.
    ["default=0.01,counters.mem.*=0.05:2,summary.wall_s=1e9"].
    [name] may contain ['*'] wildcards (any substring); the most specific
    (longest) matching pattern wins, [default=] sets the fallback. *)

val tol_for : tolerances -> string -> tol

type delta = {
  run_key : string;  (** ["<benchmark>/<config>"] *)
  metric : string;  (** flattened name, e.g. ["counters.lut.l1.hit"] *)
  a : float;
  b : float;
  abs_delta : float;  (** [b -. a] *)
  rel_delta : float;  (** [(b -. a) /. a]; [nan] when [a = 0.] and [b <> 0.] *)
  tol : tol;
  violation : bool;
}

type report_diff = {
  deltas : delta list;  (** run order of report A, metric name order *)
  changed : delta list;  (** the subset with a non-zero delta *)
  violations : delta list;  (** the subset outside tolerance *)
  missing_in_b : string list;  (** run keys only report A has *)
  missing_in_a : string list;  (** run keys only report B has *)
}

val diff :
  ?tol:tolerances ->
  Axmemo_util.Json.t ->
  Axmemo_util.Json.t ->
  (report_diff, string) result
(** [diff a b] compares two parsed reports; [Error] only on malformed
    reports (no ["runs"] array, a run without [benchmark]/[config]). *)

val diff_files :
  ?tol:tolerances -> string -> string -> (report_diff, string) result
(** Convenience: {!Axmemo_util.Json.read_file} both paths, then {!diff}. *)

val gate_ok : report_diff -> bool
(** [true] iff there are no violations and no missing runs — the
    [axmemo diff --gate] exit condition. *)

val render : ?show_all:bool -> report_diff -> string
(** Human summary: missing runs, then each violation with both values and
    its tolerance, then a one-line verdict. [?show_all] also lists the
    in-tolerance changes. *)
