module Json = Axmemo_util.Json

type phase = Begin | End | Instant

type t = {
  clock : unit -> int;
  max_events : int;
  mutable names : string array;  (* parallel growable buffers *)
  mutable phases : phase array;
  mutable ts : int array;
  mutable tids : int array;
  mutable n : int;
  mutable dropped : int;
  opens : (int * string, int) Hashtbl.t;  (* per (tid, name) unclosed Begins *)
  mutable unmatched : int;
  thread_names : (int, string) Hashtbl.t;
}

let create ?(max_events = 1_000_000) ~clock () =
  if max_events <= 0 then invalid_arg "Tracer.create: non-positive max_events";
  let cap = min max_events 1024 in
  {
    clock;
    max_events;
    names = Array.make cap "";
    phases = Array.make cap Instant;
    ts = Array.make cap 0;
    tids = Array.make cap 0;
    n = 0;
    dropped = 0;
    opens = Hashtbl.create 64;
    unmatched = 0;
    thread_names = Hashtbl.create 8;
  }

let grow t =
  let cap = Array.length t.names in
  let cap' = min t.max_events (cap * 2) in
  let resize a fill =
    let b = Array.make cap' fill in
    Array.blit a 0 b 0 cap;
    b
  in
  t.names <- resize t.names "";
  t.phases <- resize t.phases Instant;
  t.ts <- resize t.ts 0;
  t.tids <- resize t.tids 0

(* Returns whether the event was stored — a Begin that fell to the buffer
   cap must not count as an open span, or its (also dropped) End would be
   treated as stray. *)
let record t ~tid name phase =
  if t.n >= t.max_events then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    if t.n = Array.length t.names then grow t;
    t.names.(t.n) <- name;
    t.phases.(t.n) <- phase;
    t.ts.(t.n) <- t.clock ();
    t.tids.(t.n) <- tid;
    t.n <- t.n + 1;
    true
  end

let opens_of t key = Option.value ~default:0 (Hashtbl.find_opt t.opens key)

let begin_span ?(tid = 0) t name =
  if record t ~tid name Begin then
    Hashtbl.replace t.opens (tid, name) (opens_of t (tid, name) + 1)

(* Close-most-recent: an "E" event closes the innermost stored Begin of the
   same (tid, name) (Chrome's own pairing rule — spans on different tids
   are independent timelines and never pair). An end with no stored open
   would instead steal the closing "E" of some enclosing span and corrupt
   the whole stream, so it is counted and discarded. *)
let end_span ?(tid = 0) t name =
  match opens_of t (tid, name) with
  | 0 -> t.unmatched <- t.unmatched + 1
  | n ->
      Hashtbl.replace t.opens (tid, name) (n - 1);
      ignore (record t ~tid name End)

let instant ?(tid = 0) t name = ignore (record t ~tid name Instant)

let name_thread t ~tid name = Hashtbl.replace t.thread_names tid name

let events t = t.n
let dropped t = t.dropped
let unmatched_ends t = t.unmatched

let to_json t =
  let meta =
    Json.Obj
      [
        ("name", Json.Str "process_name");
        ("ph", Json.Str "M");
        ("pid", Json.Int 0);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ ("name", Json.Str "axmemo simulation (1 cycle = 1 us)") ]);
      ]
  in
  let thread_meta =
    Hashtbl.fold (fun tid name acc -> (tid, name) :: acc) t.thread_names []
    |> List.sort compare
    |> List.map (fun (tid, name) ->
           Json.Obj
             [
               ("name", Json.Str "thread_name");
               ("ph", Json.Str "M");
               ("pid", Json.Int 0);
               ("tid", Json.Int tid);
               ("args", Json.Obj [ ("name", Json.Str name) ]);
             ])
  in
  let event i =
    let ph, extra =
      match t.phases.(i) with
      | Begin -> ("B", [])
      | End -> ("E", [])
      | Instant -> ("i", [ ("s", Json.Str "t") ])
    in
    Json.Obj
      ([
         ("name", Json.Str t.names.(i));
         ("ph", Json.Str ph);
         ("ts", Json.Int t.ts.(i));
         ("pid", Json.Int 0);
         ("tid", Json.Int t.tids.(i));
       ]
      @ extra)
  in
  let counter name key value =
    Json.Obj
      [
        ("name", Json.Str name);
        ("ph", Json.Str "C");
        ("ts", Json.Int (if t.n = 0 then 0 else t.ts.(t.n - 1)));
        ("pid", Json.Int 0);
        ("tid", Json.Int 0);
        ("args", Json.Obj [ (key, Json.Int value) ]);
      ]
  in
  let tail =
    (if t.dropped = 0 then []
     else [ counter "axmemo.dropped_events" "dropped" t.dropped ])
    @
    if t.unmatched = 0 then []
    else [ counter "axmemo.unmatched_ends" "unmatched" t.unmatched ]
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr ((meta :: thread_meta) @ List.init t.n event @ tail));
      ("displayTimeUnit", Json.Str "ms");
    ]

let write t path = Json.write_file path (to_json t)
