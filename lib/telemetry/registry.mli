(** Unified metrics registry.

    A registry holds named instruments created once at simulator-construction
    time; the hot path then mutates pre-allocated records (an [int]/[float]
    store, an array slot) and never allocates, searches, or formats.
    Components accept the registry as an {e option} at creation: with [None]
    the instrumentation sites reduce to a single pattern match on an
    immutable field, so an uninstrumented run does no telemetry work at all
    — and, because every instrument is purely observational, an instrumented
    run computes bit-identical simulation results.

    Four instrument kinds cover the paper's evaluation needs:

    - {b counters}: monotonically increasing integers (hits, misses, stalls);
    - {b gauges}: last-written floats (hit rate, energy, derived ratios);
    - {b histograms}: fixed buckets chosen at creation — values are counted
      into the first bucket whose upper bound is [>=] the value, with an
      implicit overflow bucket (truncation levels, set occupancy, memory
      latencies);
    - {b series}: windowed time-series samplers — every [every]-th
      observation is kept as an [(at, value)] pair, and when [cap] samples
      accumulate the series halves itself and doubles its stride, so memory
      stays bounded and the decimation is deterministic (CRC back-pressure
      over time, adaptive-truncation decisions).

    Instrument names are unique per registry and reports render them
    sorted, so a snapshot serializes identically no matter the creation or
    observation order. *)

type t
type counter
type gauge
type histogram
type series

val create : unit -> t

val counter : t -> string -> counter
(** [counter t name] registers a counter starting at 0.
    @raise Invalid_argument if [name] is already registered. *)

val gauge : t -> string -> gauge
(** Registers a gauge starting at 0. Same name discipline as {!counter}. *)

val histogram : t -> string -> bounds:float array -> histogram
(** [histogram t name ~bounds] registers a histogram with one bucket per
    upper bound plus an overflow bucket. [bounds] must be non-empty and
    strictly increasing.
    @raise Invalid_argument on a duplicate name or bad bounds. *)

val log_bounds : lo:float -> hi:float -> per_decade:int -> float array
(** [log_bounds ~lo ~hi ~per_decade] builds geometric histogram bounds
    from [lo] to [hi] (inclusive), [per_decade] per power of ten — the
    bucket ladder for latency distributions, where relative (not absolute)
    resolution matters and the p99.9 tail must stay readable. Adjacent
    bounds differ by a factor of 10^(1/per_decade), so percentiles
    interpolated from the histogram ({!Axmemo_util.Stats.percentile_of_histogram})
    are exact to within one bucket width at every rank.
    @raise Invalid_argument unless [0 < lo < hi] and [per_decade >= 1]. *)

val series : t -> string -> ?every:int -> ?cap:int -> unit -> series
(** [series t name ()] registers a sampler keeping every [every]-th (default
    1) observation, decimating 2x whenever [cap] (default 512) samples are
    held. @raise Invalid_argument on a duplicate name or non-positive
    [every]/[cap]. *)

(** {2 Hot-path operations — allocation-free} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set_count : counter -> int -> unit
(** Overwrite the count (used by end-of-run flushes that mirror an existing
    simulator counter into the registry). *)

val count : counter -> int

val set : gauge -> float -> unit
val value : gauge -> float

val observe : histogram -> float -> unit
val observe_n : histogram -> float -> int -> unit
(** [observe_n h v n] records [v] [n] times (one bucket increment). *)

val sample : series -> at:int -> float -> unit
(** [sample s ~at v] offers one observation with timestamp [at] (any
    monotonic integer: cycle, lookup index...). Whether it is kept depends
    only on the observation count, never on wall-clock. *)

(** {2 Snapshots} *)

type hist_data = { bounds : float array; counts : int array; total : int; sum : float }
(** [counts] has [Array.length bounds + 1] entries, the last being the
    overflow bucket. *)

type data =
  | Counter of int
  | Gauge of float
  | Histogram of hist_data
  | Series of { stride : int; samples : (int * float) array }

type snapshot = (string * data) list
(** Sorted by name. *)

val snapshot : t -> snapshot
(** An immutable copy of every instrument's current state. *)

val decimate : cap:int -> snapshot -> snapshot
(** [decimate ~cap snap] bounds every series in [snap] to at most [cap]
    samples by repeatedly applying the live sampler's own halving rule (keep
    every other sample, double the stride). Counters, gauges and histograms
    pass through untouched. Deterministic and idempotent — report emitters
    use it to keep checked-in JSON small without changing its schema.
    @raise Invalid_argument on a non-positive [cap]. *)

val merge : snapshot list -> snapshot
(** Deterministic cross-run aggregation, applied left to right: counters
    sum; histograms with identical bounds sum bucket-wise; gauges keep the
    {e last} value in argument order; series are dropped (a time axis does
    not aggregate across independent runs). The result is sorted by name.
    @raise Invalid_argument if one name maps to incompatible instruments
    (different kinds, or histograms with different bounds). *)

val to_json : snapshot -> Axmemo_util.Json.t
(** Render as the [metrics] object of the run-report schema (see
    {!Report}): [{"counters": {...}, "gauges": {...}, "histograms":
    {name: {"bounds": [...], "counts": [...], "total": n, "sum": x}},
    "series": {name: {"stride": k, "samples": [[at, v], ...]}}}]. *)
