(** Cycle-timeline tracer emitting the Chrome trace-event format.

    Collects begin/end spans (interpreter function activations, i.e.
    pipeline phases) and instant events (LUT hits/misses, updates,
    invalidates) stamped with a caller-supplied integer clock — the
    simulated cycle count, not wall time. [to_json] renders the standard
    [{"traceEvents": [...]}] JSON Array Format, which loads directly in
    [chrome://tracing] and Perfetto; one simulated cycle maps to one
    microsecond of timeline.

    The buffer is bounded: past [max_events] further events are counted as
    dropped rather than stored, so tracing a long run cannot exhaust
    memory. Event order is execution order, which for an in-order pipeline
    is also timestamp order. *)

type t

val create : ?max_events:int -> clock:(unit -> int) -> unit -> t
(** [create ~clock ()] builds a tracer reading timestamps from [clock]
    (typically [fun () -> Pipeline.cycles pipe]). [max_events] defaults to
    1_000_000. *)

val begin_span : ?tid:int -> t -> string -> unit
(** Open a duration slice named after the entered function/phase. [tid]
    (default 0) selects the timeline row the slice renders on — the serve
    model uses one tid per simulated core so concurrent request spans do
    not visually nest. *)

val end_span : ?tid:int -> t -> string -> unit
(** Close the {e most recent} open slice of that name {e on that tid}
    (trace-event "E" — Chrome pairs each "E" with the innermost unclosed
    "B" of the same name and thread, so interleaved same-name spans nest
    rather than cross and spans on different tids never pair). An end with
    no stored open of that (tid, name) is counted (see {!unmatched_ends})
    and discarded: a stray "E" in the stream would otherwise close some
    enclosing span and corrupt every slice above it. A Begin that fell to
    the [max_events] cap does not open a span, so its End is likewise
    suppressed and the emitted stream stays balanced. *)

val instant : ?tid:int -> t -> string -> unit
(** A zero-duration marker at the current clock. *)

val name_thread : t -> tid:int -> string -> unit
(** Label a tid's timeline row ("core 0", "admission") via a
    [thread_name] metadata event; re-labelling a tid replaces the name. *)

val events : t -> int
(** Events recorded (excluding dropped ones). *)

val dropped : t -> int
(** Events discarded because the buffer was full. *)

val unmatched_ends : t -> int
(** {!end_span} calls discarded because no open span of that name existed
    (also surfaced as an ["axmemo.unmatched_ends"] counter in the JSON). *)

val to_json : t -> Axmemo_util.Json.t
(** The Chrome trace-event JSON object. Includes process/thread metadata
    naming the timeline and, when [dropped t > 0], an
    ["axmemo.dropped_events"] counter event at the end. *)

val write : t -> string -> unit
(** [write t path] saves [to_json t] to [path]. *)
