(** Versioned, machine-readable run reports.

    One schema serves every producer — [axmemo run --metrics],
    [axmemo sweep --metrics], and [bench/main.exe --perf-smoke] — so runs
    are diffable across tools and PRs:

    {v
    {
      "schema_version": 1,
      "generator": "axmemo",
      "runs": [
        { "benchmark": "...", "config": "...",
          "summary": { <flat scalar facts of the run> },
          "metrics": { "counters": {...}, "gauges": {...},
                       "histograms": {...}, "series": {...} } },
        ...
      ],
      "aggregate": { <Registry.merge of all runs' metrics> },
      <optional extra top-level fields from the producer>
    }
    v}

    Runs appear in cell order (the order the caller supplies, which for
    [Runner.run_matrix] is the input order regardless of [--jobs]), and
    every map inside [metrics]/[aggregate] is name-sorted, so a report is
    byte-reproducible for a deterministic simulation. *)

val schema_version : int
(** Bump when a field is renamed, removed, or changes meaning; additions
    are backwards-compatible and do not bump it. *)

type run = {
  benchmark : string;
  config : string;
  summary : (string * Axmemo_util.Json.t) list;  (** flat scalars only *)
  metrics : Registry.snapshot;
  profile : Axmemo_util.Json.t option;
      (** attribution-profiler section ([Obs.Profile.to_json]); omitted
          from the JSON when [None], so profile-free reports are
          byte-identical to schema v1 before the field existed (additive —
          no version bump) *)
  service : Axmemo_util.Json.t option;
      (** service-level section ([Serve] run rows: arrival process, offered
          load, queue/shed accounting, latency percentiles, SLO rates);
          same additive omit-when-[None] contract as [profile]. Numeric
          leaves are flattened by [Obs.Diff] as [service.<path>] metrics,
          so the section is regression-gated like the summary. *)
  cluster : Axmemo_util.Json.t option;
      (** sharded-cluster section ([Cluster] run rows: shard balance,
          directory traffic, replication hit share, interconnect
          latency/energy); same additive omit-when-[None] contract as
          [profile]/[service]. *)
}

val make : ?extra:(string * Axmemo_util.Json.t) list -> run list -> Axmemo_util.Json.t
(** [make runs] builds the report object; [extra] fields are appended at
    the top level after the standard ones (the bench perf-smoke uses this
    for its wall-clock measurements).
    @raise Invalid_argument when two runs share a [(benchmark, config)]
    key — a duplicate would be unaddressable for any consumer that aligns
    runs (e.g. [axmemo diff]). *)

val write : ?extra:(string * Axmemo_util.Json.t) list -> string -> run list -> unit
(** [write path runs] saves [make runs] to [path], pretty-printed. *)

val to_csv : run list -> string
(** Long-format CSV matrix of every scalar metric: header
    [benchmark,config,metric,value], one row per summary field, counter and
    gauge, plus [<hist>.le_<bound>]/[<hist>.overflow]/[<hist>.total]/
    [<hist>.sum] rows per histogram. Series are omitted (they carry a time
    axis; use the JSON report). Fields are quoted/escaped per RFC 4180. *)

val write_csv : string -> run list -> unit
