module Json = Axmemo_util.Json

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  bounds : float array;
  counts : int array;  (* length bounds + 1; last = overflow *)
  mutable total : int;
  mutable sum : float;
}

type series = {
  mutable stride : int;  (* keep every stride-th observation *)
  cap : int;
  mutable seen : int;  (* observations offered since creation *)
  mutable n : int;  (* samples held *)
  ats : int array;  (* cap slots *)
  vs : float array;
}

type instrument =
  | I_counter of counter
  | I_gauge of gauge
  | I_histogram of histogram
  | I_series of series

type t = { instruments : (string, instrument) Hashtbl.t }

let create () = { instruments = Hashtbl.create 64 }

let register t name i =
  if Hashtbl.mem t.instruments name then
    invalid_arg (Printf.sprintf "Registry: duplicate metric %S" name);
  Hashtbl.replace t.instruments name i

let counter t name =
  let c = { c = 0 } in
  register t name (I_counter c);
  c

let gauge t name =
  let g = { g = 0.0 } in
  register t name (I_gauge g);
  g

let histogram t name ~bounds =
  let n = Array.length bounds in
  if n = 0 then invalid_arg "Registry.histogram: empty bounds";
  for i = 1 to n - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Registry.histogram: bounds must be strictly increasing"
  done;
  let h = { bounds = Array.copy bounds; counts = Array.make (n + 1) 0; total = 0; sum = 0.0 } in
  register t name (I_histogram h);
  h

(* Geometric bucket ladder for latency-style distributions: [per_decade]
   bounds per power of ten from [lo] up to (and including) [hi]. The ratio
   between adjacent bounds is 10^(1/per_decade), so a percentile read back
   from the histogram is exact to within that factor at ANY rank — which is
   what makes p99.9 trustworthy where a decimated series would have lost
   the tail samples. *)
let log_bounds ~lo ~hi ~per_decade =
  if lo <= 0.0 || hi <= lo then invalid_arg "Registry.log_bounds: need 0 < lo < hi";
  if per_decade < 1 then invalid_arg "Registry.log_bounds: non-positive per_decade";
  let ratio = 10.0 ** (1.0 /. float_of_int per_decade) in
  let rec go acc v =
    if v >= hi then List.rev (hi :: acc) else go (v :: acc) (v *. ratio)
  in
  Array.of_list (go [] lo)

let series t name ?(every = 1) ?(cap = 512) () =
  if every <= 0 || cap <= 0 then invalid_arg "Registry.series: non-positive every/cap";
  let s =
    { stride = every; cap; seen = 0; n = 0; ats = Array.make cap 0; vs = Array.make cap 0.0 }
  in
  register t name (I_series s);
  s

let incr c = c.c <- c.c + 1
let add c n = c.c <- c.c + n
let set_count c n = c.c <- n
let count c = c.c

let set g v = g.g <- v
let value g = g.g

(* First bucket whose upper bound is >= v; binary search keeps wide latency
   histograms cheap. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if bounds.(mid) >= v then hi := mid else lo := mid + 1
  done;
  !lo  (* = n when v exceeds every bound: the overflow bucket *)

let observe_n h v n =
  let b = bucket_index h.bounds v in
  h.counts.(b) <- h.counts.(b) + n;
  h.total <- h.total + n;
  h.sum <- h.sum +. (v *. float_of_int n)

let observe h v = observe_n h v 1

let sample s ~at v =
  s.seen <- s.seen + 1;
  if s.seen mod s.stride = 0 then begin
    if s.n = s.cap then begin
      (* Decimate: keep every other held sample, double the stride. Held
         sample i was offered at seen = stride*(i+1), so keeping the odd
         indices leaves exactly the multiples of the doubled stride. *)
      let m = s.cap / 2 in
      for i = 0 to m - 1 do
        s.ats.(i) <- s.ats.((2 * i) + 1);
        s.vs.(i) <- s.vs.((2 * i) + 1)
      done;
      s.n <- m;
      s.stride <- s.stride * 2
    end;
    if s.seen mod s.stride = 0 then begin
      s.ats.(s.n) <- at;
      s.vs.(s.n) <- v;
      s.n <- s.n + 1
    end
  end

type hist_data = { bounds : float array; counts : int array; total : int; sum : float }

type data =
  | Counter of int
  | Gauge of float
  | Histogram of hist_data
  | Series of { stride : int; samples : (int * float) array }

type snapshot = (string * data) list

let snapshot t =
  Hashtbl.fold
    (fun name i acc ->
      let data =
        match i with
        | I_counter c -> Counter c.c
        | I_gauge g -> Gauge g.g
        | I_histogram h ->
            Histogram
              {
                bounds = Array.copy h.bounds;
                counts = Array.copy h.counts;
                total = h.total;
                sum = h.sum;
              }
        | I_series s ->
            Series
              {
                stride = s.stride;
                samples = Array.init s.n (fun i -> (s.ats.(i), s.vs.(i)));
              }
      in
      (name, data) :: acc)
    t.instruments []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* Post-hoc series bounding for report emitters. Applies the exact halving
   rule the live sampler uses (keep odd indices, double the stride), so a
   decimated snapshot is indistinguishable from one taken with a smaller
   [cap] — and the operation is deterministic and idempotent. *)
let decimate ~cap snap =
  if cap <= 0 then invalid_arg "Registry.decimate: non-positive cap";
  List.map
    (fun (name, data) ->
      match data with
      | Series { stride; samples } when Array.length samples > cap ->
          let stride = ref stride and samples = ref samples in
          while Array.length !samples > cap do
            let m = Array.length !samples / 2 in
            samples := Array.init m (fun i -> !samples.((2 * i) + 1));
            stride := !stride * 2
          done;
          (name, Series { stride = !stride; samples = !samples })
      | _ -> (name, data))
    snap

let merge snaps =
  let acc : (string, data) Hashtbl.t = Hashtbl.create 64 in
  let combine name a b =
    match (a, b) with
    | Counter x, Counter y -> Some (Counter (x + y))
    | Gauge _, Gauge y -> Some (Gauge y)
    | Histogram x, Histogram y ->
        if x.bounds <> y.bounds then
          invalid_arg
            (Printf.sprintf "Registry.merge: histogram %S bounds differ" name);
        Some
          (Histogram
             {
               bounds = x.bounds;
               counts = Array.map2 ( + ) x.counts y.counts;
               total = x.total + y.total;
               sum = x.sum +. y.sum;
             })
    | Series _, Series _ -> None
    | _ -> invalid_arg (Printf.sprintf "Registry.merge: metric %S kind mismatch" name)
  in
  List.iter
    (fun snap ->
      List.iter
        (fun (name, data) ->
          match data with
          | Series _ -> ()
          | _ -> (
              match Hashtbl.find_opt acc name with
              | None -> Hashtbl.replace acc name data
              | Some prev -> (
                  match combine name prev data with
                  | Some merged -> Hashtbl.replace acc name merged
                  | None -> ())))
        snap)
    snaps;
  Hashtbl.fold (fun name data l -> (name, data) :: l) acc []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_json (snap : snapshot) =
  let pick f = List.filter_map f snap in
  let counters = pick (function n, Counter c -> Some (n, Json.Int c) | _ -> None) in
  let gauges = pick (function n, Gauge g -> Some (n, Json.Float g) | _ -> None) in
  let histograms =
    pick (function
      | n, Histogram h ->
          Some
            ( n,
              Json.Obj
                [
                  ("bounds", Json.Arr (Array.to_list (Array.map (fun b -> Json.Float b) h.bounds)));
                  ("counts", Json.Arr (Array.to_list (Array.map (fun c -> Json.Int c) h.counts)));
                  ("total", Json.Int h.total);
                  ("sum", Json.Float h.sum);
                ] )
      | _ -> None)
  in
  let series =
    pick (function
      | n, Series { stride; samples } ->
          Some
            ( n,
              Json.Obj
                [
                  ("stride", Json.Int stride);
                  ( "samples",
                    Json.Arr
                      (Array.to_list
                         (Array.map
                            (fun (at, v) -> Json.Arr [ Json.Int at; Json.Float v ])
                            samples)) );
                ] )
      | _ -> None)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
      ("series", Json.Obj series);
    ]
