module Json = Axmemo_util.Json

let schema_version = 1

type run = {
  benchmark : string;
  config : string;
  summary : (string * Json.t) list;
  metrics : Registry.snapshot;
  profile : Json.t option;
  service : Json.t option;
  cluster : Json.t option;
}

(* Optional sections render only when present, so reports without them are
   byte-identical to pre-section schema-v1 output — additive fields never
   bump the schema version. *)
let run_json r =
  Json.Obj
    ([
       ("benchmark", Json.Str r.benchmark);
       ("config", Json.Str r.config);
       ("summary", Json.Obj r.summary);
       ("metrics", Registry.to_json r.metrics);
     ]
    @ (match r.profile with None -> [] | Some p -> [ ("profile", p) ])
    @ (match r.service with None -> [] | Some s -> [ ("service", s) ])
    @ match r.cluster with None -> [] | Some c -> [ ("cluster", c) ])

(* Duplicate (benchmark, config) keys would make the report ambiguous for
   every aligning consumer (Obs.Diff, CSV pivots), so they are a caller
   bug, not a representable state. *)
let check_distinct runs =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key = (r.benchmark, r.config) in
      if Hashtbl.mem seen key then
        invalid_arg
          (Printf.sprintf "Report.make: duplicate run (%s, %s)" r.benchmark r.config);
      Hashtbl.replace seen key ())
    runs

let make ?(extra = []) runs =
  check_distinct runs;
  let aggregate = Registry.merge (List.map (fun r -> r.metrics) runs) in
  Json.Obj
    ([
       ("schema_version", Json.Int schema_version);
       ("generator", Json.Str "axmemo");
       ("runs", Json.Arr (List.map run_json runs));
       ("aggregate", Registry.to_json aggregate);
     ]
    @ extra)

let write ?extra path runs = Json.write_file path (make ?extra runs)

(* RFC 4180: quote when the field contains a comma, quote, or newline;
   quotes double inside. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_value = function
  | Json.Int i -> string_of_int i
  | Json.Float f ->
      if Float.is_nan f || Float.abs f = Float.infinity then ""
      else Json.to_string (Json.Float f)
  | Json.Bool b -> string_of_bool b
  | Json.Str s -> csv_field s
  | Json.Null -> ""
  | Json.Arr _ | Json.Obj _ -> ""

let float_str f = csv_value (Json.Float f)

let to_csv runs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "benchmark,config,metric,value\r\n";
  let row b c m v =
    Buffer.add_string buf
      (Printf.sprintf "%s,%s,%s,%s\r\n" (csv_field b) (csv_field c) (csv_field m) v)
  in
  List.iter
    (fun r ->
      List.iter (fun (k, v) -> row r.benchmark r.config k (csv_value v)) r.summary;
      List.iter
        (fun (name, data) ->
          match (data : Registry.data) with
          | Registry.Counter c -> row r.benchmark r.config name (string_of_int c)
          | Registry.Gauge g -> row r.benchmark r.config name (float_str g)
          | Registry.Histogram h ->
              Array.iteri
                (fun i b ->
                  row r.benchmark r.config
                    (Printf.sprintf "%s.le_%s" name (float_str b))
                    (string_of_int h.counts.(i)))
                h.bounds;
              row r.benchmark r.config (name ^ ".overflow")
                (string_of_int h.counts.(Array.length h.bounds));
              row r.benchmark r.config (name ^ ".total") (string_of_int h.total);
              row r.benchmark r.config (name ^ ".sum") (float_str h.sum)
          | Registry.Series _ -> ())
        r.metrics)
    runs;
  Buffer.contents buf

let write_csv path runs =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_csv runs))
