(** Timing parameters of the AxMemo ISA extensions (Table 4).

    All figures include the 1-cycle dummy-register overhead that enforces
    program order among [ld_crc], [reg_crc] and [lookup]. *)

val crc_cycles_per_byte : int
(** The base 8-bit-parallel unit consumes one byte per cycle (ld_crc /
    reg_crc rows of Table 4). *)

val crc_bytes_per_cycle : int
(** Effective throughput of the synthesized unit: the paper unrolls the
    32-bit CRC four times and pipelines it "to match the throughput of the
    most common case of a 4-byte input" (Section 6.1), i.e. 4 bytes per
    cycle. *)

val crc_cycles : bytes:int -> int
(** Cycles for the unrolled unit to absorb [bytes] (at least 1). *)

val input_queue_bytes : int
(** Capacity of the memoization unit's input queue; the CPU stalls on a send
    only when it is full. *)

val lookup_l1_cycles : int
(** Lookup serviced by (or missing in) the L1 LUT: 2 cycles. *)

val lookup_l2_cycles : int
(** Additional cycles when the probe continues into the L2 LUT: 13. *)

val update_cycles : int
(** Update: 2 cycles. *)

val invalidate_cycles_per_way : int
(** Invalidate: one cycle per way in a set (dedicated flash-clear logic). *)

val l3_row_hit_cycles : int
(** DRAM LUT tier: column access into the already-open row (pLUTo-style
    in-DRAM probe) — the amortised cost of every bulk-probe key after the
    first in its row. *)

val l3_activate_cycles : int
(** DRAM LUT tier: precharge + activate when a probe switches rows, paid on
    top of {!l3_row_hit_cycles}. *)
