let crc_cycles_per_byte = 1
let crc_bytes_per_cycle = 4
let crc_cycles ~bytes = max 1 ((bytes + crc_bytes_per_cycle - 1) / crc_bytes_per_cycle)
let input_queue_bytes = 32
let lookup_l1_cycles = 2
let lookup_l2_cycles = 13
let update_cycles = 2
let invalidate_cycles_per_way = 1

(* DRAM LUT tier (pLUTo-style in-DRAM lookup). A probe that lands in the
   currently open row pays only the column access; switching rows pays a
   precharge + activate on top. Bulk probes sorted by row amortise the
   activation across every key sharing the row. *)
let l3_row_hit_cycles = 30
let l3_activate_cycles = 120
