(** Warm-LUT snapshots: versioned, checksummed persistence of LUT contents.

    A snapshot is a list of named sections, one per LUT level ("l1.0",
    "l1.1", ..., "l2", "l3" by the cluster layer's convention). Capture
    enumerates a level deterministically and orders entries oldest-first by
    recency stamp, so restoring a section by replaying its entries in file
    order rebuilds the same LRU (SRAM tiers) or per-row FIFO (DRAM tier)
    ordering — a restored LUT answers every lookup bit-identically to the
    captured one.

    On disk: magic ["AXMEMOSN"], little-endian u32 version, section table,
    and a trailing CRC-32 over every preceding byte. {!load} returns a
    distinct one-line error for a missing file, bad magic, unsupported
    version, checksum mismatch, or truncation — never an exception — so the
    CLI can exit cleanly. *)

type entry = { lut_id : int; key : int64; payload : int64 }
type section = { name : string; entries : entry array }
type t = { sections : section list }

val version : int

val section : t -> string -> section option
val total_entries : t -> int

val capture_lut : name:string -> Axmemo_memo.Lut.t -> section
(** Entries ordered oldest-first by LRU stamp (ties by set, then way). *)

val restore_lut : section -> Axmemo_memo.Lut.t -> int
(** Replays entries in file order through {!Axmemo_memo.Lut.restore_entry};
    returns the number restored. *)

val capture_dram : name:string -> Dram_lut.t -> section
(** Entries ordered oldest-first by insertion tick (ties by row, then
    slot). *)

val restore_dram : section -> Dram_lut.t -> int
(** Pushes entries through {!Dram_lut.bulk_fill} (row-sorted batch,
    bit-identical final state to an in-order replay); returns the number
    restored. *)

val restore_dram_batched : section -> Dram_lut.t -> int * int * int
(** Like {!restore_dram} but also returns the activation accounting:
    [(restored, amortised, serial)] — row activations the row-sorted batch
    cost vs what an in-order replay would have cost. *)

val to_bytes : t -> string
val of_bytes : string -> (t, string) result

val save : t -> string -> unit
(** @raise Sys_error if the path cannot be written. *)

val load : string -> (t, string) result
(** Reads and validates a snapshot file; all failure modes (missing or
    unreadable file, bad magic, version mismatch, checksum failure,
    truncation) come back as [Error] with a one-line message. *)
