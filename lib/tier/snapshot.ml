module Lut = Axmemo_memo.Lut
module Engine = Axmemo_crc.Engine
module Poly = Axmemo_crc.Poly

(* Binary layout (all integers little-endian):

     magic    8 bytes   "AXMEMOSN"
     version  u32       1
     nsec     u32
     per section:
       nlen   u16, name bytes
       nent   u32
       per entry: lut_id u32, key u64, payload u64
     crc      u32       CRC-32 of every preceding byte

   Entries are written oldest-first (capture sorts by recency stamp), so a
   restore that replays them in file order rebuilds the same LRU/FIFO
   ordering the capture saw. *)

let magic = "AXMEMOSN"
let version = 1

type entry = { lut_id : int; key : int64; payload : int64 }
type section = { name : string; entries : entry array }
type t = { sections : section list }

let section t name = List.find_opt (fun s -> s.name = name) t.sections
let total_entries t =
  List.fold_left (fun acc s -> acc + Array.length s.entries) 0 t.sections

(* ---- capture / restore ------------------------------------------------ *)

let capture_lut ~name lut =
  let acc = ref [] in
  Lut.iter_entries lut (fun ~set ~way ~lut_id ~key ~payload ~lru ->
      acc := (lru, set, way, { lut_id; key; payload }) :: !acc);
  let l =
    List.sort
      (fun (a1, a2, a3, _) (b1, b2, b3, _) ->
        compare (a1, a2, a3) (b1, b2, b3))
      !acc
  in
  { name; entries = Array.of_list (List.map (fun (_, _, _, e) -> e) l) }

let restore_lut sec lut =
  Array.iter
    (fun e -> Lut.restore_entry lut ~lut_id:e.lut_id ~key:e.key ~payload:e.payload)
    sec.entries;
  Array.length sec.entries

let capture_dram ~name dram =
  let acc = ref [] in
  Dram_lut.iter_entries dram (fun ~row ~slot ~lut_id ~key ~payload ~stamp ->
      acc := (stamp, row, slot, { lut_id; key; payload }) :: !acc);
  let l =
    List.sort
      (fun (a1, a2, a3, _) (b1, b2, b3, _) ->
        compare (a1, a2, a3) (b1, b2, b3))
      !acc
  in
  { name; entries = Array.of_list (List.map (fun (_, _, _, e) -> e) l) }

(* DRAM sections restore through the row-sorted batch fill: same final tier
   state as an in-order replay (bulk_fill pre-assigns stamps in file order),
   but each touched row pays one activation — the counts report what the
   batch-warming policy saved. *)
let restore_dram_batched sec dram =
  let entries =
    Array.map (fun e -> (e.lut_id, e.key, e.payload)) sec.entries
  in
  let amortised, serial = Dram_lut.bulk_fill dram entries in
  (Array.length sec.entries, amortised, serial)

let restore_dram sec dram =
  let restored, _amortised, _serial = restore_dram_batched sec dram in
  restored

(* ---- serialisation ---------------------------------------------------- *)

let to_bytes t =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Buffer.add_int32_le b (Int32.of_int version);
  Buffer.add_int32_le b (Int32.of_int (List.length t.sections));
  List.iter
    (fun sec ->
      if String.length sec.name > 0xFFFF then
        invalid_arg "Snapshot.to_bytes: section name too long";
      Buffer.add_uint16_le b (String.length sec.name);
      Buffer.add_string b sec.name;
      Buffer.add_int32_le b (Int32.of_int (Array.length sec.entries));
      Array.iter
        (fun e ->
          Buffer.add_int32_le b (Int32.of_int e.lut_id);
          Buffer.add_int64_le b e.key;
          Buffer.add_int64_le b e.payload)
        sec.entries)
    t.sections;
  let body = Buffer.contents b in
  let crc = Engine.digest_string Poly.crc32 body in
  Buffer.add_int32_le b (Int64.to_int32 crc);
  Buffer.contents b

exception Truncated

let of_bytes s =
  let pos = ref 0 in
  let need n = if !pos + n > String.length s then raise Truncated in
  let u16 () = need 2; let v = String.get_uint16_le s !pos in pos := !pos + 2; v in
  let u32 () =
    need 4;
    let v = Int32.to_int (String.get_int32_le s !pos) land 0xFFFFFFFF in
    pos := !pos + 4;
    v
  in
  let u64 () = need 8; let v = String.get_int64_le s !pos in pos := !pos + 8; v in
  let str n = need n; let v = String.sub s !pos n in pos := !pos + n; v in
  try
    if String.length s < String.length magic + 4 then raise Truncated;
    if String.sub s 0 (String.length magic) <> magic then
      Error "not an axmemo snapshot (bad magic)"
    else begin
      pos := String.length magic;
      let v = u32 () in
      if v <> version then
        Error (Printf.sprintf "unsupported snapshot version %d (expected %d)" v version)
      else begin
        (* checksum covers everything up to the trailing u32 *)
        if String.length s < !pos + 4 + 4 then raise Truncated;
        let body = String.sub s 0 (String.length s - 4) in
        let stored =
          Int64.of_int32 (String.get_int32_le s (String.length s - 4))
        in
        let stored = Int64.logand stored 0xFFFFFFFFL in
        let crc = Int64.logand (Engine.digest_string Poly.crc32 body) 0xFFFFFFFFL in
        if crc <> stored then Error "snapshot checksum mismatch"
        else begin
          let nsec = u32 () in
          let sections = ref [] in
          for _ = 1 to nsec do
            let nlen = u16 () in
            let name = str nlen in
            let nent = u32 () in
            let entries =
              Array.init nent (fun _ ->
                  let lut_id = u32 () in
                  let key = u64 () in
                  let payload = u64 () in
                  { lut_id; key; payload })
            in
            sections := { name; entries } :: !sections
          done;
          if !pos <> String.length s - 4 then
            Error "snapshot has trailing garbage"
          else Ok { sections = List.rev !sections }
        end
      end
    end
  with Truncated -> Error "truncated snapshot file"

let save t path =
  let data = to_bytes t in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error "truncated snapshot file"
  | data -> of_bytes data
