(** DRAM-resident L3 LUT tier.

    Models a huge-capacity lookup table living in main memory, probed
    in-DRAM pLUTo-style (PAPERS.md, arXiv 2104.07699): a probe that lands in
    the currently open row pays only a column access, switching rows pays a
    precharge + activate on top, and {!bulk_lookup} sorts a batch of
    candidate keys by row so every key sharing a row rides one activation.
    Entries are 16 bytes (8-byte tag word, 8-byte payload word); a row holds
    [row_bytes / 16] of them and replacement is per-row FIFO with
    hole-filling.

    Payload cells are split by criticality (PAPERS.md, Akiyama, arXiv
    2004.01637): the high [exact_high_bits] are stored in
    nominally-refreshed cells, the low bits in relaxed cells whose retention
    failures are drawn through the {!Axmemo_faults.Injector} at read time
    (site {!Axmemo_faults.Fault_model.L3_payload}) and persist until the
    cell is rewritten. Tag, valid and FIFO state are always exact.

    Latency is exposed via {!last_probe_cycles} (the cluster layer charges
    it through the pipeline's lookup path); row activations and column
    accesses feed the energy model. With [?metrics], a [lut.l3.*] counter
    family is registered; inserts are posted writes — counted, never
    stalled on. *)

type config = {
  size_bytes : int;  (** total capacity; multiple of [row_bytes] *)
  row_bytes : int;  (** DRAM row size; multiple of 16 *)
  row_hit_cycles : int;  (** column access into the open row *)
  activate_cycles : int;  (** extra cost when a probe switches rows *)
  exact_high_bits : int;
      (** criticality split: top bits exact, low [64 - n] bits relaxed;
          [64] disables approximate storage entirely *)
}

val default : config
(** 16 MiB, 1 KiB rows, {!Axmemo_isa.Timing.l3_row_hit_cycles} /
    {!Axmemo_isa.Timing.l3_activate_cycles}, 48 exact high bits. *)

type stats = {
  probes : int;
  hits : int;
  misses : int;
  inserts : int;
  evictions : int;
  row_activations : int;
  row_hits : int;
  invalidations : int;
  corrupted_reads : int;  (** reads that exposed a decayed relaxed bit *)
}

val zero_stats : stats

type t

val create :
  ?metrics:Axmemo_telemetry.Registry.t ->
  ?injector:Axmemo_faults.Injector.t ->
  config ->
  t
(** Build an empty tier. [?injector] enables the approximate-payload draw —
    but only when its spec also lists [L3_payload] among the enabled sites;
    otherwise reads are exact and do not advance the fault RNG stream.
    @raise Invalid_argument on a geometry that does not fill whole rows. *)

val config : t -> config
val rows : t -> int
val slots_per_row : t -> int
val capacity_entries : t -> int
val occupancy : t -> int
val stats : t -> stats

val lookup : t -> lut_id:int -> key:int64 -> int64 option
(** Single probe through the row buffer; cost readable from
    {!last_probe_cycles} immediately after. A hit on a relaxed-bit
    criticality split may return (and persist) a decayed payload. *)

val last_probe_cycles : t -> int
(** Cycles charged by the most recent {!lookup}. *)

val bulk_lookup : t -> (int * int64) array -> int64 option array * int
(** [bulk_lookup t pairs] probes every [(lut_id, key)] pair, visiting them
    sorted by row so keys sharing a row share one activation. Results are
    returned in the original order together with the total cycle cost —
    the pLUTo amortisation, exposed for batch warming and prefetch
    experiments. *)

val insert : t -> lut_id:int -> key:int64 -> payload:int64 -> unit
(** Posted write (spill from the SRAM tiers): counted and charged as row
    traffic for energy, but never stalls the pipeline. Replaces per-row
    FIFO when the row is full; an existing [(lut_id, key)] entry is
    refreshed in place. *)

val invalidate_lut : t -> lut_id:int -> unit
val invalidate_all : t -> unit

val iter_entries :
  t ->
  (row:int -> slot:int -> lut_id:int -> key:int64 -> payload:int64 ->
   stamp:int -> unit) ->
  unit
(** Deterministic row-major, slot-minor enumeration of valid entries;
    [stamp] is the global insertion tick so a capture can order entries
    oldest-first. *)

val entries : t -> (int * int64 * int64) list

val restore_entry : t -> lut_id:int -> key:int64 -> payload:int64 -> unit
(** Snapshot replay: writes one entry without fault draws, telemetry, or
    row-buffer perturbation. Replaying a capture oldest-first reproduces
    the captured per-row fill order. *)

val bulk_fill : t -> (int * int64 * int64) array -> int * int
(** [bulk_fill t entries] writes every [(lut_id, key, payload)] triple
    row-sorted — the batch-warming policy for the {!bulk_lookup}
    amortisation: each touched row pays one activation instead of one per
    row switch. Recency stamps are pre-assigned in input order, so the
    final tier state is bit-identical to a serial {!restore_entry} replay
    of the same array. Returns [(amortised, serial)]: the row activations
    the sorted batch costs vs what an in-order replay would have cost from
    a precharged bank. Like {!restore_entry} the fill itself draws no
    faults, counts no telemetry, and leaves the row buffer unperturbed —
    callers bill the returned counts. *)
