module Injector = Axmemo_faults.Injector
module Fault_model = Axmemo_faults.Fault_model
module Registry = Axmemo_telemetry.Registry
module Timing = Axmemo_isa.Timing

(* A stored entry models an 8-byte tag word (valid bit + LUT_ID + full CRC
   key) plus an 8-byte payload word: 16 bytes, so one DRAM row holds
   [row_bytes / 16] entries. *)
let entry_bytes = 16

type config = {
  size_bytes : int;
  row_bytes : int;
  row_hit_cycles : int;
  activate_cycles : int;
  exact_high_bits : int;
}

let default =
  {
    size_bytes = 16 * 1024 * 1024;
    row_bytes = 1024;
    row_hit_cycles = Timing.l3_row_hit_cycles;
    activate_cycles = Timing.l3_activate_cycles;
    exact_high_bits = 48;
  }

type stats = {
  probes : int;
  hits : int;
  misses : int;
  inserts : int;
  evictions : int;
  row_activations : int;
  row_hits : int;
  invalidations : int;
  corrupted_reads : int;
}

let zero_stats =
  {
    probes = 0;
    hits = 0;
    misses = 0;
    inserts = 0;
    evictions = 0;
    row_activations = 0;
    row_hits = 0;
    invalidations = 0;
    corrupted_reads = 0;
  }

type counters = {
  c_probes : Registry.counter;
  c_hits : Registry.counter;
  c_misses : Registry.counter;
  c_spills : Registry.counter;
  c_evictions : Registry.counter;
  c_row_activations : Registry.counter;
  c_row_hits : Registry.counter;
  c_corrupted : Registry.counter;
}

type t = {
  cfg : config;
  nrows : int;
  slots : int;  (* entries per row *)
  valid : bool array;
  lut_ids : int array;
  keys : int64 array;
  payloads : int64 array;
  stamp : int array;  (* global insertion tick, for snapshot age order *)
  fifo : int array;  (* per-row FIFO eviction cursor *)
  mutable tick : int;
  mutable open_row : int;  (* -1 = all banks precharged *)
  mutable occupied : int;
  mutable last_probe_cycles : int;
  injector : Injector.t option;
  counters : counters option;
  mutable s : stats;
}

let create ?metrics ?injector cfg =
  if cfg.row_bytes <= 0 || cfg.row_bytes mod entry_bytes <> 0 then
    invalid_arg "Dram_lut.create: row_bytes must be a positive multiple of 16";
  if cfg.size_bytes <= 0 || cfg.size_bytes mod cfg.row_bytes <> 0 then
    invalid_arg "Dram_lut.create: size_bytes must be a positive multiple of row_bytes";
  if cfg.exact_high_bits < 0 || cfg.exact_high_bits > 64 then
    invalid_arg "Dram_lut.create: exact_high_bits must be within [0, 64]";
  if cfg.row_hit_cycles < 0 || cfg.activate_cycles < 0 then
    invalid_arg "Dram_lut.create: cycle costs must be non-negative";
  let nrows = cfg.size_bytes / cfg.row_bytes in
  let slots = cfg.row_bytes / entry_bytes in
  let n = nrows * slots in
  let counters =
    Option.map
      (fun m ->
        {
          c_probes = Registry.counter m "lut.l3.probes";
          c_hits = Registry.counter m "lut.l3.hits";
          c_misses = Registry.counter m "lut.l3.misses";
          c_spills = Registry.counter m "lut.l3.spills";
          c_evictions = Registry.counter m "lut.l3.evictions";
          c_row_activations = Registry.counter m "lut.l3.row_activations";
          c_row_hits = Registry.counter m "lut.l3.row_hits";
          c_corrupted = Registry.counter m "lut.l3.corrupted_reads";
        })
      metrics
  in
  {
    cfg;
    nrows;
    slots;
    valid = Array.make n false;
    lut_ids = Array.make n 0;
    keys = Array.make n 0L;
    payloads = Array.make n 0L;
    stamp = Array.make n 0;
    fifo = Array.make nrows 0;
    tick = 0;
    open_row = -1;
    occupied = 0;
    last_probe_cycles = 0;
    injector;
    counters;
    s = zero_stats;
  }

let config t = t.cfg
let rows t = t.nrows
let slots_per_row t = t.slots
let capacity_entries t = t.nrows * t.slots
let occupancy t = t.occupied
let stats t = t.s
let last_probe_cycles t = t.last_probe_cycles

let bump c f = match c with Some cs -> Registry.incr (f cs) | None -> ()

let row_of_key t key =
  Int64.to_int
    (Int64.rem (Int64.logand key 0x7FFFFFFFFFFFFFFFL) (Int64.of_int t.nrows))

(* Row-buffer model (pLUTo): touching the open row costs one column access;
   switching rows adds a precharge + activate. Writes go through the same
   row buffer (they dirty activation state and burn activation energy) but
   are posted — the pipeline never waits on them. *)
let touch_row t row =
  if t.open_row = row then begin
    t.s <- { t.s with row_hits = t.s.row_hits + 1 };
    bump t.counters (fun c -> c.c_row_hits);
    t.cfg.row_hit_cycles
  end
  else begin
    t.open_row <- row;
    t.s <- { t.s with row_activations = t.s.row_activations + 1 };
    bump t.counters (fun c -> c.c_row_activations);
    t.cfg.activate_cycles + t.cfg.row_hit_cycles
  end

let find_in_row t row ~lut_id ~key =
  let base = row * t.slots in
  let rec go s =
    if s >= t.slots then -1
    else
      let idx = base + s in
      if t.valid.(idx) && t.lut_ids.(idx) = lut_id && t.keys.(idx) = key then idx
      else go (s + 1)
  in
  go 0

(* Approximate payload memory (Akiyama-style criticality split): the high
   [exact_high_bits] live in nominally-refreshed cells, the low bits in
   relaxed cells that may have decayed since the last write. A decayed bit
   is exposed at read time and persists in the array — retention failures
   stay until the cell is rewritten. The [L3_payload] site must be listed
   in the injector's spec for any opportunity to be drawn; otherwise the
   read is exact and perturbs nothing (not even the fault RNG stream). *)
let read_payload t idx =
  let relaxed = 64 - t.cfg.exact_high_bits in
  match t.injector with
  | Some inj when relaxed > 0 ->
      let v = t.payloads.(idx) in
      let v' = Injector.corrupt inj Fault_model.L3_payload ~width:relaxed v in
      if v' <> v then begin
        t.payloads.(idx) <- v';
        t.s <- { t.s with corrupted_reads = t.s.corrupted_reads + 1 };
        bump t.counters (fun c -> c.c_corrupted);
        Injector.note_sdc inj
      end;
      v'
  | _ -> t.payloads.(idx)

let probe t ~lut_id ~key =
  t.s <- { t.s with probes = t.s.probes + 1 };
  bump t.counters (fun c -> c.c_probes);
  let row = row_of_key t key in
  let idx = find_in_row t row ~lut_id ~key in
  if idx >= 0 then begin
    t.s <- { t.s with hits = t.s.hits + 1 };
    bump t.counters (fun c -> c.c_hits);
    Some (read_payload t idx)
  end
  else begin
    t.s <- { t.s with misses = t.s.misses + 1 };
    bump t.counters (fun c -> c.c_misses);
    None
  end

let lookup t ~lut_id ~key =
  let row = row_of_key t key in
  t.last_probe_cycles <- touch_row t row;
  probe t ~lut_id ~key

let bulk_lookup t pairs =
  let n = Array.length pairs in
  let order = Array.init n (fun i -> i) in
  (* Stable sort by row so every key sharing a row rides one activation —
     the pLUTo bulk-probe amortisation. *)
  let row_of i =
    let _, key = pairs.(i) in
    row_of_key t key
  in
  Array.sort
    (fun a b ->
      let c = compare (row_of a) (row_of b) in
      if c <> 0 then c else compare a b)
    order;
  let results = Array.make n None in
  let total = ref 0 in
  Array.iter
    (fun i ->
      let lut_id, key = pairs.(i) in
      total := !total + touch_row t (row_of_key t key);
      results.(i) <- probe t ~lut_id ~key)
    order;
  (results, !total)

let write_entry t idx ~lut_id ~key ~payload =
  if not t.valid.(idx) then t.occupied <- t.occupied + 1;
  t.valid.(idx) <- true;
  t.lut_ids.(idx) <- lut_id;
  t.keys.(idx) <- key;
  t.payloads.(idx) <- payload;
  t.tick <- t.tick + 1;
  t.stamp.(idx) <- t.tick

(* Victim slot for a row: first invalid slot, else the FIFO cursor (rows are
   huge, so plain FIFO replacement loses almost nothing over LRU and needs
   no per-access recency writes in DRAM). *)
let victim_slot t row =
  let base = row * t.slots in
  let rec hole s = if s >= t.slots then -1 else if not t.valid.(base + s) then s else hole (s + 1) in
  match hole 0 with
  | -1 ->
      let s = t.fifo.(row) in
      t.fifo.(row) <- (s + 1) mod t.slots;
      (s, true)
  | s -> (s, false)

let insert t ~lut_id ~key ~payload =
  t.s <- { t.s with inserts = t.s.inserts + 1 };
  bump t.counters (fun c -> c.c_spills);
  let row = row_of_key t key in
  ignore (touch_row t row : int);
  let idx = find_in_row t row ~lut_id ~key in
  if idx >= 0 then write_entry t idx ~lut_id ~key ~payload
  else begin
    let slot, evicted = victim_slot t row in
    if evicted then begin
      t.s <- { t.s with evictions = t.s.evictions + 1 };
      bump t.counters (fun c -> c.c_evictions)
    end;
    write_entry t (row * t.slots + slot) ~lut_id ~key ~payload
  end

let invalidate_lut t ~lut_id =
  t.s <- { t.s with invalidations = t.s.invalidations + 1 };
  for i = 0 to Array.length t.valid - 1 do
    if t.valid.(i) && t.lut_ids.(i) = lut_id then begin
      t.valid.(i) <- false;
      t.occupied <- t.occupied - 1
    end
  done

let invalidate_all t =
  Array.fill t.valid 0 (Array.length t.valid) false;
  t.occupied <- 0

let iter_entries t f =
  for row = 0 to t.nrows - 1 do
    let base = row * t.slots in
    for s = 0 to t.slots - 1 do
      let idx = base + s in
      if t.valid.(idx) then
        f ~row ~slot:s ~lut_id:t.lut_ids.(idx) ~key:t.keys.(idx)
          ~payload:t.payloads.(idx) ~stamp:t.stamp.(idx)
    done
  done

let entries t =
  let acc = ref [] in
  iter_entries t (fun ~row:_ ~slot:_ ~lut_id ~key ~payload ~stamp:_ ->
      acc := (lut_id, key, payload) :: !acc);
  List.rev !acc

(* Restore port: a snapshot replay is a bulk DMA fill, not a probe stream —
   no fault opportunities, no telemetry, no row-buffer perturbation. Replayed
   oldest-first it reproduces the captured per-row FIFO order. *)
let restore_entry t ~lut_id ~key ~payload =
  let row = row_of_key t key in
  let idx = find_in_row t row ~lut_id ~key in
  if idx >= 0 then write_entry t idx ~lut_id ~key ~payload
  else begin
    let slot, _evicted = victim_slot t row in
    write_entry t (row * t.slots + slot) ~lut_id ~key ~payload
  end

(* Row-sorted bulk fill — the batch-warming policy driving the pLUTo
   amortisation [bulk_lookup] models: entries land row-major so each touched
   row pays one activation, while recency stamps are pre-assigned in input
   order so the final array state is bit-identical to a serial
   [restore_entry] replay of the same array (per-row FIFO cursors only see
   their own row's entries, and a stable sort keeps within-row order).
   Returns [(amortised, serial)] row-activation counts: what the sorted
   batch costs vs what the same entries replayed in input order would have
   cost from a precharged bank. Like [restore_entry] the fill itself is a
   DMA-style transfer — no fault opportunities, no telemetry, no row-buffer
   perturbation; callers decide how to bill the returned counts. *)
let bulk_fill t entries =
  let n = Array.length entries in
  let rows =
    Array.map (fun (_, key, _) -> row_of_key t key) entries
  in
  let serial = ref 0 in
  let prev = ref (-1) in
  Array.iter
    (fun r ->
      if r <> !prev then begin
        incr serial;
        prev := r
      end)
    rows;
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare rows.(a) rows.(b) in
      if c <> 0 then c else compare a b)
    order;
  let amortised = ref 0 in
  let prev = ref (-1) in
  let base_tick = t.tick in
  Array.iter
    (fun i ->
      let lut_id, key, payload = entries.(i) in
      let row = rows.(i) in
      if row <> !prev then begin
        incr amortised;
        prev := row
      end;
      let idx = find_in_row t row ~lut_id ~key in
      let idx =
        if idx >= 0 then idx
        else
          let slot, _evicted = victim_slot t row in
          (row * t.slots) + slot
      in
      if not t.valid.(idx) then t.occupied <- t.occupied + 1;
      t.valid.(idx) <- true;
      t.lut_ids.(idx) <- lut_id;
      t.keys.(idx) <- key;
      t.payloads.(idx) <- payload;
      t.stamp.(idx) <- base_tick + i + 1)
    order;
  t.tick <- base_tick + n;
  (!amortised, !serial)
