(* Open-loop service model over the co-run cluster.

   One run: calibrate the mean per-request service time on a throwaway
   1-core cluster, convert the offered load into an arrival rate, generate
   the seeded arrival stream, and drive a fresh cluster through
   Schedule.dispatch_open request by request — Corun.exec_request keeps the
   LUTs warm across requests exactly as the closed co-run does. Everything
   downstream (latency histograms, SLO accounting, the Chrome trace, the
   "service" report section) is observational: per-request cycle results
   are bit-identical to what the same dispatch order produces without any
   of it. *)

module Schedule = Axmemo_multicore.Schedule
module Corun = Axmemo_multicore.Corun
module Shared_lut = Axmemo_multicore.Shared_lut
module Arbiter = Axmemo_multicore.Arbiter
module Cluster = Axmemo_cluster.Cluster
module Registry = Axmemo_telemetry.Registry
module Report = Axmemo_telemetry.Report
module Tracer = Axmemo_telemetry.Tracer
module Machine = Axmemo_cpu.Machine
module Runner = Axmemo.Runner
module Stats = Axmemo_util.Stats
module Json = Axmemo_util.Json
module Pool = Axmemo_util.Pool
module Rng = Axmemo_util.Rng

type config = {
  cluster : Corun.config;
  nodes : int;
      (* service nodes; 1 drives a plain Corun cluster (the pre-cluster
         code path, byte-identical reports), > 1 drives the sharded
         multi-node cluster with cfg.cluster as the per-node shape *)
  arrival : Arrival.kind;
  load : float;
      (* offered load as a fraction of cluster capacity: the arrival rate is
         load * nodes * ncores / mean_service_cycles *)
  queue_capacity : int;
  shed : Schedule.shed_policy;
  slo_cycles : int;  (* 0 = auto: slo_auto_factor x calibrated mean *)
  warm_start : string option;  (* snapshot file restored before dispatch *)
}

let slo_auto_factor = 4.0

let default =
  {
    cluster = Corun.default;
    nodes = 1;
    arrival = Arrival.Poisson;
    load = 0.8;
    queue_capacity = 16;
    shed = Schedule.Drop_tail;
    slo_cycles = 0;
    warm_start = None;
  }

(* [base_label] deliberately ignores [warm_start]: it keys the arrival
   stream's seed, so a warm-started run faces exactly the arrival sequence
   its cold twin does — the only difference between them is LUT state. The
   nodes suffix appears only for multi-node runs, keeping single-node
   labels (and the arrival streams they key) unchanged. *)
let base_label cfg =
  Printf.sprintf "serve(%s,load=%g,%dcore,%s,q=%d,%s%s)"
    (Arrival.kind_name cfg.arrival)
    cfg.load cfg.cluster.Corun.ncores
    (Shared_lut.partition_name cfg.cluster.Corun.partition)
    cfg.queue_capacity
    (Schedule.shed_policy_name cfg.shed)
    (if cfg.nodes > 1 then Printf.sprintf ",nodes=%d" cfg.nodes else "")

let label cfg =
  match cfg.warm_start with
  | None -> base_label cfg
  | Some _ -> base_label cfg ^ "+warm"

let machine = Machine.hpi
let cycles_per_second = machine.Machine.freq_ghz *. 1e9

(* ---- calibration ------------------------------------------------------ *)

(* Mean cold service cycles over the distinct workloads of the mix, from a
   throwaway fault-free 1-core cluster. This anchors the load -> rate
   conversion, so "load 1.0" means one core-mean-service-time of work
   arriving per core per unit time. *)
let calibrate cfg =
  let c1 = { cfg.cluster with Corun.ncores = 1; faults = None } in
  let cluster = Corun.create_cluster c1 in
  let distinct = List.sort_uniq compare cfg.cluster.Corun.workloads in
  let cycles =
    List.map
      (fun w ->
        float_of_int
          (Corun.exec_request cluster ~workload:w ~core:0 ~start:0).Runner.cycles)
      distinct
  in
  Float.max 1.0 (Stats.mean (Array.of_list cycles))

(* The arrival stream's seed: position-independent (a cell draws the same
   stream whether it runs alone or inside a matrix) and re-keyed by the
   root seed via derive_stream. *)
let arrival_seed cfg =
  Rng.derive_stream
    (Int64.of_int
       (Hashtbl.hash ("serve-arrivals", base_label cfg, cfg.cluster.Corun.requests)))

(* ---- per-request records ---------------------------------------------- *)

type request_record = {
  rid : int;
  workload : string;
  core : int;
  arrival : int;
  start : int;
  finish : int;
  queue_wait : int;  (* start - arrival *)
  service : int;  (* finish - start *)
  total : int;  (* finish - arrival *)
  cold : bool;  (* first execution of its workload in this run *)
  slo_ok : bool;
  result : Runner.result;
}

type latency = { p50 : float; p99 : float; p999 : float; mean : float; max : float }

type outcome = {
  cfg : config;
  rate : float;  (* arrivals per cycle; 0 for closed *)
  mean_service_cycles : float;  (* the calibration anchor *)
  slo_cycles : int;  (* resolved (auto or explicit) *)
  requests : request_record list;  (* served, dispatch order *)
  shed : Schedule.arrival list;  (* shed order *)
  arrived : int;
  served : int;
  shed_count : int;
  shed_rate : float;
  slo_violations : int;
  slo_violation_rate : float;
  goodput_rate : float;
  queue_wait : latency;
  service : latency;
  total : latency;
  makespan_cycles : int;
  throughput_rps : float;
  offered_rps : float;
  cold_hit_rate : float;
  warm_hit_rate : float;
  aggregate_hit_rate : float;
  restored_entries : int;  (* LUT entries replayed from --warm-start; 0 cold *)
  contention_cycles : int;
  shared_accesses : int;
  contended_accesses : int;
  trace_unmatched_ends : int;
  cluster_section : Json.t option;
      (* the sharded-cluster report section; None on single-node runs so
         their report rows stay byte-identical *)
  snapshots : (string * Registry.snapshot) list;
  tracer : Tracer.t;
  sim_wall_seconds : float;
}

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

(* Histogram-interpolated percentiles (exact to one bucket width, and they
   survive series decimation since histograms are never decimated); mean
   from the histogram's exact running sum; max from the raw records. *)
let latency_of (h : Registry.hist_data) raw_max =
  let pct p = Stats.percentile_of_histogram ~bounds:h.bounds ~counts:h.counts p in
  {
    p50 = pct 50.0;
    p99 = pct 99.0;
    p999 = pct 99.9;
    mean = (if h.total = 0 then 0.0 else h.sum /. float_of_int h.total);
    max = raw_max;
  }

let hist_of snap name =
  match List.assoc name snap with
  | Registry.Histogram h -> h
  | _ | (exception Not_found) ->
      invalid_arg (Printf.sprintf "Serve: no histogram %S in snapshot" name)

(* ---- the execution engine ----------------------------------------------

   What a run dispatches onto: the single-node co-run cluster, or the
   sharded multi-node cluster when nodes > 1. Both expose the same
   per-request step plus the post-hoc settlement/flush/snapshot sequence;
   the single-node path is the pre-cluster machinery verbatim, so
   cluster-less runs (and their committed baselines) stay byte-identical. *)

type engine = {
  eng_exec : workload:string -> core:int -> start:int -> Runner.result;
  eng_settle : unit -> int array * int * int;
      (* per-core settled stall cycles (bank arbitration, plus NIC
         contention and synchronous remote-probe latency on the cluster),
         shared accesses, contended accesses *)
  eng_flush : unit -> unit;
  eng_snapshots : unit -> (string * Registry.snapshot) list;
  eng_restore : Axmemo_tier.Snapshot.t -> int;
  eng_section : unit -> Json.t option;
      (* the "cluster" report section; meaningful only after eng_settle *)
}

let corun_engine (cfg : config) =
  let cluster = Corun.create_cluster ~metrics:true cfg.cluster in
  {
    eng_exec =
      (fun ~workload ~core ~start -> Corun.exec_request cluster ~workload ~core ~start);
    eng_settle =
      (fun () ->
        let s = Corun.settle_arbiter cluster in
        (s.Arbiter.stall_cycles, s.Arbiter.accesses, s.Arbiter.contended));
    eng_flush = (fun () -> Corun.flush_metrics cluster);
    eng_snapshots = (fun () -> Corun.cluster_snapshots cluster);
    eng_restore = Corun.restore_snapshot cluster;
    eng_section = (fun () -> None);
  }

let cluster_engine (cfg : config) =
  let t =
    Cluster.create ~metrics:true
      { Cluster.default with Cluster.nodes = cfg.nodes; node = cfg.cluster }
  in
  let settled = ref None in
  {
    eng_exec =
      (fun ~workload ~core ~start -> Cluster.exec_request t ~workload ~gcore:core ~start);
    eng_settle =
      (fun () ->
        let s = Cluster.settle t in
        settled := Some s;
        (s.Cluster.stalls, s.Cluster.shared_accesses, s.Cluster.contended_accesses));
    eng_flush = (fun () -> Cluster.flush_metrics t);
    eng_snapshots = (fun () -> Cluster.snapshots t);
    eng_restore = Cluster.restore_snapshot t;
    eng_section =
      (fun () -> Option.map (fun s -> Cluster.section t ~settled:s) !settled);
  }

(* ---- the run ----------------------------------------------------------- *)

let run (cfg : config) =
  let wall0 = Unix.gettimeofday () in
  (match cfg.arrival with
  | Arrival.Closed -> ()
  | _ ->
      if not (cfg.load > 0.0 && Float.is_finite cfg.load) then
        invalid_arg "Serve.run: open-loop arrivals need a positive load");
  if cfg.slo_cycles < 0 then invalid_arg "Serve.run: negative slo_cycles";
  if cfg.nodes < 1 then invalid_arg "Serve.run: need at least one node";
  let ncores = cfg.cluster.Corun.ncores * cfg.nodes in
  let mean_service = calibrate cfg in
  let rate =
    match cfg.arrival with
    | Arrival.Closed -> 0.0
    | _ -> cfg.load *. float_of_int ncores /. mean_service
  in
  let arrivals =
    Arrival.generate cfg.arrival ~seed:(arrival_seed cfg) ~rate
      ~workloads:cfg.cluster.Corun.workloads ~requests:cfg.cluster.Corun.requests
  in
  let slo =
    if cfg.slo_cycles > 0 then cfg.slo_cycles
    else int_of_float (slo_auto_factor *. mean_service)
  in
  let engine = if cfg.nodes > 1 then cluster_engine cfg else corun_engine cfg in
  (* Warm restart: replay a saved snapshot into the fresh cluster before the
     first request. Snapshot problems surface as Invalid_argument so the CLI
     turns them into a one-line error and exit 1. *)
  let restored_entries =
    match cfg.warm_start with
    | None -> 0
    | Some path -> (
        match Axmemo_tier.Snapshot.load path with
        | Ok snap -> engine.eng_restore snap
        | Error msg ->
            invalid_arg (Printf.sprintf "Serve.run: warm-start %s: %s" path msg))
  in
  let placements, shed, busy =
    Schedule.dispatch_open ~ncores ~queue_capacity:cfg.queue_capacity
      ~shed:cfg.shed
      ~run:(fun r ~core ~start ->
        let res = engine.eng_exec ~workload:r.Schedule.workload ~core ~start in
        (res.Runner.cycles, res))
      arrivals
  in
  let stalls, shared_accesses, contended_accesses = engine.eng_settle () in
  engine.eng_flush ();
  (* Classify warm vs cold in dispatch order: the first execution of each
     workload is the cold one; everything after it probes warm LUTs. *)
  let seen = Hashtbl.create 8 in
  let records =
    List.map
      (fun (p : Runner.result Schedule.open_placement) ->
        let cold = not (Hashtbl.mem seen p.Schedule.request.Schedule.workload) in
        if cold then Hashtbl.add seen p.Schedule.request.Schedule.workload ();
        let total = p.Schedule.finish - p.Schedule.arrival in
        {
          rid = p.Schedule.request.Schedule.rid;
          workload = p.Schedule.request.Schedule.workload;
          core = p.Schedule.core;
          arrival = p.Schedule.arrival;
          start = p.Schedule.start;
          finish = p.Schedule.finish;
          queue_wait = p.Schedule.start - p.Schedule.arrival;
          service = p.Schedule.finish - p.Schedule.start;
          total;
          cold;
          slo_ok = total <= slo;
          result = p.Schedule.payload;
        })
      placements
  in
  (* The serve registry: request-lifecycle counters, log-spaced latency
     histograms, and the queue-depth series. All fed post-hoc in dispatch
     order, so the snapshot is a pure function of the schedule. *)
  let reg = Registry.create () in
  let bounds = Registry.log_bounds ~lo:1.0 ~hi:1e8 ~per_decade:8 in
  let c_arrived = Registry.counter reg "serve.arrived" in
  let c_admitted = Registry.counter reg "serve.admitted" in
  let c_served = Registry.counter reg "serve.served" in
  let c_shed = Registry.counter reg "serve.shed" in
  let c_slo = Registry.counter reg "serve.slo_violations" in
  let c_unmatched = Registry.counter reg "serve.trace.unmatched_ends" in
  let h_wait = Registry.histogram reg "serve.queue_wait_cycles" ~bounds in
  let h_service = Registry.histogram reg "serve.service_cycles" ~bounds in
  let h_total = Registry.histogram reg "serve.total_latency_cycles" ~bounds in
  let s_depth = Registry.series reg "serve.queue_depth" () in
  let arrived = List.length arrivals in
  let served = List.length records in
  let shed_count = List.length shed in
  Registry.set_count c_arrived arrived;
  Registry.set_count c_admitted (arrived - shed_count);
  Registry.set_count c_served served;
  Registry.set_count c_shed shed_count;
  List.iter
    (fun (r : request_record) ->
      Registry.observe h_wait (float_of_int r.queue_wait);
      Registry.observe h_service (float_of_int r.service);
      Registry.observe h_total (float_of_int r.total);
      (* admitted-but-not-yet-started at this dispatch instant *)
      let depth =
        List.fold_left
          (fun n q -> if q.arrival <= r.start && q.start > r.start then n + 1 else n)
          0 records
      in
      Registry.sample s_depth ~at:r.start (float_of_int depth))
    records;
  let slo_violations = List.length (List.filter (fun r -> not r.slo_ok) records) in
  Registry.set_count c_slo slo_violations;
  (* The request timeline: arrivals and sheds as instants on the admission
     row (tid 0), each served request as a span on its core's row. Events
     are emitted in (time, kind, rid) order with ends before begins at equal
     cycles, so back-to-back spans on one core close cleanly; a zero-cycle
     span orders its end after its own begin. *)
  let clock = ref 0 in
  let tr =
    Tracer.create ~max_events:((4 * arrived) + 64) ~clock:(fun () -> !clock) ()
  in
  Tracer.name_thread tr ~tid:0 "admission";
  for c = 0 to ncores - 1 do
    Tracer.name_thread tr ~tid:(c + 1)
      (if cfg.nodes > 1 then
         Printf.sprintf "n%d core %d"
           (c / cfg.cluster.Corun.ncores)
           (c mod cfg.cluster.Corun.ncores)
       else Printf.sprintf "core %d" c)
  done;
  let span_name rid workload = Printf.sprintf "r%d:%s" rid workload in
  let events =
    List.concat
      [
        List.map
          (fun (a : Schedule.arrival) ->
            ( (a.Schedule.at, 1, a.Schedule.request.Schedule.rid),
              fun () ->
                Tracer.instant ~tid:0 tr
                  (Printf.sprintf "arrive r%d:%s" a.Schedule.request.Schedule.rid
                     a.Schedule.request.Schedule.workload) ))
          arrivals;
        List.map
          (fun (a : Schedule.arrival) ->
            ( (a.Schedule.at, 2, a.Schedule.request.Schedule.rid),
              fun () ->
                Tracer.instant ~tid:0 tr
                  (Printf.sprintf "shed r%d:%s" a.Schedule.request.Schedule.rid
                     a.Schedule.request.Schedule.workload) ))
          shed;
        List.concat_map
          (fun r ->
            let name = span_name r.rid r.workload in
            [
              ( (r.start, 3, r.rid),
                fun () -> Tracer.begin_span ~tid:(r.core + 1) tr name );
              ( (r.finish, (if r.finish = r.start then 4 else 0), r.rid),
                fun () -> Tracer.end_span ~tid:(r.core + 1) tr name );
            ])
          records;
      ]
  in
  let events = List.sort (fun (k1, _) (k2, _) -> compare k1 k2) events in
  List.iter
    (fun (((t, _, _) : int * int * int), emit) ->
      clock := t;
      emit ())
    events;
  let trace_unmatched_ends = Tracer.unmatched_ends tr in
  Registry.set_count c_unmatched trace_unmatched_ends;
  let snapshots = ("serve", Registry.snapshot reg) :: engine.eng_snapshots () in
  let serve_snap = List.assoc "serve" snapshots in
  let max_of f =
    List.fold_left (fun m r -> Float.max m (float_of_int (f r))) 0.0 records
  in
  let lookups_of p = List.fold_left (fun n r -> if p r then n + r.result.Runner.lookups else n) 0 records in
  let hits_of p = List.fold_left (fun n r -> if p r then n + r.result.Runner.hits else n) 0 records in
  (* Arbitration stalls are charged at settlement, after the dispatch loop:
     fold each core's settled stall cycles into its busy time so the
     makespan matches Corun.run's accounting (the Closed degenerate case is
     bit-identical end to end, makespan included). *)
  let makespan =
    Array.fold_left max 0 (Array.mapi (fun i b -> b + stalls.(i)) busy)
  in
  let sim_seconds = float_of_int makespan /. cycles_per_second in
  {
    cfg;
    rate;
    mean_service_cycles = mean_service;
    slo_cycles = slo;
    requests = records;
    shed;
    arrived;
    served;
    shed_count;
    shed_rate = ratio shed_count arrived;
    slo_violations;
    slo_violation_rate = ratio slo_violations served;
    goodput_rate = ratio (served - slo_violations) arrived;
    queue_wait = latency_of (hist_of serve_snap "serve.queue_wait_cycles") (max_of (fun r -> r.queue_wait));
    service = latency_of (hist_of serve_snap "serve.service_cycles") (max_of (fun r -> r.service));
    total = latency_of (hist_of serve_snap "serve.total_latency_cycles") (max_of (fun r -> r.total));
    makespan_cycles = makespan;
    throughput_rps = (if makespan = 0 then 0.0 else float_of_int served /. sim_seconds);
    offered_rps = rate *. cycles_per_second;
    cold_hit_rate = ratio (hits_of (fun r -> r.cold)) (lookups_of (fun r -> r.cold));
    warm_hit_rate = ratio (hits_of (fun r -> not r.cold)) (lookups_of (fun r -> not r.cold));
    aggregate_hit_rate = ratio (hits_of (fun _ -> true)) (lookups_of (fun _ -> true));
    restored_entries;
    contention_cycles = Array.fold_left ( + ) 0 stalls;
    shared_accesses;
    contended_accesses;
    trace_unmatched_ends;
    cluster_section = engine.eng_section ();
    snapshots;
    tracer = tr;
    sim_wall_seconds = Unix.gettimeofday () -. wall0;
  }

let run_matrix ?jobs cfgs = Pool.run ?jobs run cfgs

(* ---- saturation sweep -------------------------------------------------- *)

type saturation_point = {
  sat_ncores : int;
  sat_partition : string;
  sat_arrival : string;
  sat_load : float;  (* 0 when every swept load sheds more than the threshold *)
  sat_throughput_rps : float;
  peak_throughput_rps : float;
}

let sweep_loads = [ 0.25; 0.5; 0.75; 1.0; 1.25; 1.5; 2.0 ]

let saturation ?(shed_threshold = 0.01) outcomes =
  let keys =
    List.fold_left
      (fun acc o ->
        let k =
          ( o.cfg.nodes * o.cfg.cluster.Corun.ncores,
            Shared_lut.partition_name o.cfg.cluster.Corun.partition,
            Arrival.kind_name o.cfg.arrival )
        in
        if List.mem k acc then acc else acc @ [ k ])
      [] outcomes
  in
  List.map
    (fun ((nc, part, arr) as k) ->
      let group =
        List.filter
          (fun o ->
            ( o.cfg.nodes * o.cfg.cluster.Corun.ncores,
              Shared_lut.partition_name o.cfg.cluster.Corun.partition,
              Arrival.kind_name o.cfg.arrival )
            = k)
          outcomes
      in
      let ok = List.filter (fun o -> o.shed_rate <= shed_threshold) group in
      let best =
        List.fold_left
          (fun acc o ->
            match acc with
            | Some b when b.cfg.load >= o.cfg.load -> acc
            | _ -> Some o)
          None ok
      in
      let peak = List.fold_left (fun m o -> Float.max m o.throughput_rps) 0.0 group in
      {
        sat_ncores = nc;
        sat_partition = part;
        sat_arrival = arr;
        sat_load = (match best with Some o -> o.cfg.load | None -> 0.0);
        sat_throughput_rps = (match best with Some o -> o.throughput_rps | None -> 0.0);
        peak_throughput_rps = peak;
      })
    keys

let saturation_json pts =
  Json.Arr
    (List.map
       (fun p ->
         Json.Obj
           [
             ("ncores", Json.Int p.sat_ncores);
             ("partition", Json.Str p.sat_partition);
             ("arrival", Json.Str p.sat_arrival);
             ("saturation_load", Json.Float p.sat_load);
             ("saturation_throughput_rps", Json.Float p.sat_throughput_rps);
             ("peak_throughput_rps", Json.Float p.peak_throughput_rps);
           ])
       pts)

(* ---- reports ----------------------------------------------------------- *)

let latency_json l =
  Json.Obj
    [
      ("p50", Json.Float l.p50);
      ("p99", Json.Float l.p99);
      ("p999", Json.Float l.p999);
      ("mean", Json.Float l.mean);
      ("max", Json.Float l.max);
    ]

let service_json o =
  (* Warm-start fields appear only for warm-started runs, so every
     pre-existing report stays byte-identical to its committed baseline. *)
  let warm_fields =
    match o.cfg.warm_start with
    | None -> []
    | Some path ->
        [
          ("warm_start", Json.Str (Filename.basename path));
          ("restored_entries", Json.Int o.restored_entries);
        ]
  in
  Json.Obj
    ([
      ("arrival", Json.Str (Arrival.kind_name o.cfg.arrival));
      ("offered_load", Json.Float o.cfg.load);
      ("rate_per_mcycle", Json.Float (o.rate *. 1e6));
      ("queue_capacity", Json.Int o.cfg.queue_capacity);
      ("shed_policy", Json.Str (Schedule.shed_policy_name o.cfg.shed));
      ("arrived", Json.Int o.arrived);
      ("served", Json.Int o.served);
      ("shed", Json.Int o.shed_count);
      ("shed_rate", Json.Float o.shed_rate);
      ("slo_cycles", Json.Int o.slo_cycles);
      ("slo_violations", Json.Int o.slo_violations);
      ("slo_violation_rate", Json.Float o.slo_violation_rate);
      ("goodput_rate", Json.Float o.goodput_rate);
      ("mean_service_cycles", Json.Float o.mean_service_cycles);
      ("queue_wait_cycles", latency_json o.queue_wait);
      ("service_cycles", latency_json o.service);
      ("total_latency_cycles", latency_json o.total);
      ("cold_hit_rate", Json.Float o.cold_hit_rate);
      ("warm_hit_rate", Json.Float o.warm_hit_rate);
      ("aggregate_hit_rate", Json.Float o.aggregate_hit_rate);
      ("makespan_cycles", Json.Int o.makespan_cycles);
      ("throughput_rps", Json.Float o.throughput_rps);
      ("offered_rps", Json.Float o.offered_rps);
      ("contention_cycles", Json.Int o.contention_cycles);
      ("shared_accesses", Json.Int o.shared_accesses);
      ("contended_accesses", Json.Int o.contended_accesses);
      ("trace_unmatched_ends", Json.Int o.trace_unmatched_ends);
    ]
    @ warm_fields)

let default_series_cap = Corun.default_series_cap

(* One report row per outcome: the serve registry concatenated with the
   cluster registry (names are disjoint and the union re-sorted, keeping
   series — Registry.merge would drop them). sim_wall_seconds enters the
   summary only on request, so default reports stay byte-identical across
   machines and --jobs settings while the smoke artifact can still gate
   simulator throughput with a loose tolerance. *)
let report_runs ?(series_cap = default_series_cap) ?(wall = false) outcomes =
  List.map
    (fun o ->
      let serve_snap = List.assoc "serve" o.snapshots in
      (* Shared-level registries ride on the row: the single ["cluster"]
         registry as-is, and on multi-node runs each node's ["n<j>.cluster"]
         registry with its metric names under the same n<j>. prefix (names
         stay disjoint, so the re-sorted union keeps every series). *)
      let cluster_snap =
        List.concat_map
          (fun (who, snap) ->
            if who = "cluster" then snap
            else
              match String.index_opt who '.' with
              | Some i
                when String.length who > 1
                     && who.[0] = 'n'
                     && String.sub who (i + 1) (String.length who - i - 1)
                        = "cluster" ->
                  let prefix = String.sub who 0 (i + 1) in
                  List.map (fun (k, v) -> (prefix ^ k, v)) snap
              | _ -> [])
          o.snapshots
      in
      let metrics =
        List.sort (fun (a, _) (b, _) -> compare a b) (serve_snap @ cluster_snap)
      in
      {
        Report.benchmark = String.concat "+" o.cfg.cluster.Corun.workloads;
        config = label o.cfg;
        summary =
          [
            ("makespan_cycles", Json.Int o.makespan_cycles);
            ("throughput_rps", Json.Float o.throughput_rps);
            ("shed_rate", Json.Float o.shed_rate);
            ("slo_violation_rate", Json.Float o.slo_violation_rate);
            ("aggregate_hit_rate", Json.Float o.aggregate_hit_rate);
          ]
          @ (if wall then [ ("sim_wall_seconds", Json.Float o.sim_wall_seconds) ] else []);
        metrics = Registry.decimate ~cap:series_cap metrics;
        profile = None;
        service = Some (service_json o);
        cluster = o.cluster_section;
      })
    outcomes

let report ?series_cap ?wall outcomes =
  let runs = report_runs ?series_cap ?wall outcomes in
  let extra =
    [
      ("root_seed", Json.Str (Int64.to_string (Rng.root_seed ())));
      ("saturation", saturation_json (saturation outcomes));
    ]
  in
  Report.make ~extra runs

let write_report ?series_cap ?wall path outcomes =
  Json.write_file ~indent:2 path (report ?series_cap ?wall outcomes)

let write_trace o path = Tracer.write o.tracer path
