(** Seeded open-loop arrival processes for the service model.

    Every process is a pure function of [(kind, seed, rate, workloads,
    requests)] drawing from one splitmix64 stream, so the same
    configuration always yields the same request stream — the first half of
    the service model's byte-identical-across-[--jobs] contract.

    The Poisson stream accumulates unit-rate exponential gaps and scales by
    [1/rate] at the end, so for a fixed seed the whole timeline compresses
    {e exactly} as the offered load rises: shed rates are monotone in load
    because a higher load replays the very same arrival pattern, faster. *)

type kind =
  | Closed  (** every request available at cycle 0 — the co-run degenerate *)
  | Poisson  (** memoryless at the mean rate *)
  | Bursty of { duty : float }
      (** Markov-modulated on-off: Poisson at peak rate [rate/duty] inside
          exponentially-long ON windows, silent in OFF windows; long-run
          mean rate is [rate] *)
  | Diurnal of { amplitude : float; periods : float }
      (** sinusoidal rate modulation via Lewis-Shedler thinning:
          [rate(t) = rate * (1 + amplitude*sin)], sweeping [periods] full
          periods over the stream's expected span *)

val default_bursty : kind
(** [Bursty { duty = 0.25 }]. *)

val default_diurnal : kind
(** [Diurnal { amplitude = 0.8; periods = 4.0 }]. *)

val kind_name : kind -> string

val parse_kind : string -> kind option
(** ["closed"], ["poisson"], ["bursty"], ["diurnal"] (defaults above). *)

val kind_names : string list
(** The accepted [parse_kind] spellings, for CLI help. *)

val generate :
  kind ->
  seed:int64 ->
  rate:float ->
  workloads:string list ->
  requests:int ->
  Axmemo_multicore.Schedule.arrival list
(** [generate kind ~seed ~rate ~workloads ~requests] builds the arrival
    stream: [requests] entries, nondecreasing in [at], workloads
    round-robined by [rid] (matching {!Axmemo_multicore.Schedule.stream}).
    [rate] is in arrivals per cycle and is ignored for [Closed].
    @raise Invalid_argument on a negative count, an empty workload list, a
    non-positive rate for an open-loop kind, or out-of-range shape
    parameters (bursty duty outside (0, 1], diurnal amplitude outside
    [0, 1) or non-positive periods). *)
