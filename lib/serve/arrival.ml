(* Seeded open-loop arrival processes. Every process is a pure function of
   (kind, seed, rate, workloads, requests): the generator draws from one
   splitmix64 stream created from [seed], so the same configuration always
   produces the same request stream — which is what keeps service reports
   byte-identical across --jobs settings.

   The Poisson stream is built by accumulating UNIT-rate exponential gaps
   and dividing the running sum by [rate] once per arrival: for a fixed
   seed the whole timeline scales exactly as 1/rate, so raising the offered
   load compresses the very same arrival pattern rather than re-rolling it.
   That exact scaling is what makes shed rates monotone in offered load for
   a fixed seed (pinned by test_serve). *)

module Rng = Axmemo_util.Rng
module Schedule = Axmemo_multicore.Schedule

type kind =
  | Closed
  | Poisson
  | Bursty of { duty : float }
  | Diurnal of { amplitude : float; periods : float }

let default_bursty = Bursty { duty = 0.25 }
let default_diurnal = Diurnal { amplitude = 0.8; periods = 4.0 }

let kind_name = function
  | Closed -> "closed"
  | Poisson -> "poisson"
  | Bursty { duty } -> Printf.sprintf "bursty(duty=%g)" duty
  | Diurnal { amplitude; periods } ->
      Printf.sprintf "diurnal(amp=%g,periods=%g)" amplitude periods

let parse_kind = function
  | "closed" -> Some Closed
  | "poisson" -> Some Poisson
  | "bursty" -> Some default_bursty
  | "diurnal" -> Some default_diurnal
  | _ -> None

let kind_names = [ "closed"; "poisson"; "bursty"; "diurnal" ]

(* Unit-mean exponential draw; 1 -. u is in (0, 1] so log never sees 0. *)
let exp_draw rng = -.log (1.0 -. Rng.float rng 1.0)

(* Expected arrivals per ON+OFF burst cycle of the on-off modulated
   process — fixes the burst timescale relative to the arrival rate. *)
let burst_cycle_arrivals = 16.0

let validate ~kind ~rate ~requests =
  if requests < 0 then invalid_arg "Arrival.generate: negative request count";
  (match kind with
  | Closed -> ()
  | _ ->
      if not (rate > 0.0 && Float.is_finite rate) then
        invalid_arg "Arrival.generate: open-loop kinds need a positive rate");
  match kind with
  | Bursty { duty } ->
      if not (duty > 0.0 && duty <= 1.0) then
        invalid_arg "Arrival.generate: bursty duty must be in (0, 1]"
  | Diurnal { amplitude; periods } ->
      if not (amplitude >= 0.0 && amplitude < 1.0) then
        invalid_arg "Arrival.generate: diurnal amplitude must be in [0, 1)";
      if not (periods > 0.0) then
        invalid_arg "Arrival.generate: diurnal periods must be positive"
  | Closed | Poisson -> ()

(* Arrival instants in cycles, nondecreasing, [requests] entries long. *)
let times kind ~seed ~rate ~requests =
  let rng = Rng.create seed in
  match kind with
  | Closed -> List.init requests (fun _ -> 0)
  | Poisson ->
      (* Cumulative unit-rate exponentials, scaled by 1/rate at the end. *)
      let cum = ref 0.0 in
      List.init requests (fun _ ->
          cum := !cum +. exp_draw rng;
          int_of_float (!cum /. rate))
  | Bursty { duty } ->
      (* Markov-modulated on-off: arrivals are Poisson at peak rate
         [rate/duty] during exponentially-long ON windows and silent during
         OFF windows, so the long-run mean rate is [rate]. The gap to the
         next arrival is drawn in ON-time and walked across however many
         OFF windows it straddles. *)
      let peak = rate /. duty in
      let mean_cycle = burst_cycle_arrivals /. rate in
      let mean_on = duty *. mean_cycle in
      let mean_off = (1.0 -. duty) *. mean_cycle in
      let t = ref 0.0 in
      let on_end = ref (mean_on *. exp_draw rng) in
      List.init requests (fun _ ->
          let gap = ref (exp_draw rng /. peak) in
          while !t +. !gap > !on_end do
            gap := !gap -. (!on_end -. !t);
            t := !on_end +. (mean_off *. exp_draw rng);
            on_end := !t +. (mean_on *. exp_draw rng)
          done;
          t := !t +. !gap;
          int_of_float !t)
  | Diurnal { amplitude; periods } ->
      (* Lewis-Shedler thinning at the peak rate: candidates arrive at
         rate*(1+amplitude) and are kept with probability rate(t)/peak,
         where rate(t) sweeps [periods] full sine periods over the stream's
         expected span. *)
      let peak = rate *. (1.0 +. amplitude) in
      let span = float_of_int requests /. rate in
      let period = span /. periods in
      let rate_at t =
        rate *. (1.0 +. (amplitude *. sin (2.0 *. Float.pi *. t /. period)))
      in
      let t = ref 0.0 in
      List.init requests (fun _ ->
          let accepted = ref false in
          while not !accepted do
            t := !t +. (exp_draw rng /. peak);
            if Rng.float rng 1.0 <= rate_at !t /. peak then accepted := true
          done;
          int_of_float !t)

let generate kind ~seed ~rate ~workloads ~requests =
  validate ~kind ~rate ~requests;
  (match workloads with
  | [] -> invalid_arg "Arrival.generate: no workloads"
  | _ -> ());
  let arr = Array.of_list workloads in
  let ts = times kind ~seed ~rate ~requests in
  List.mapi
    (fun rid at ->
      {
        Schedule.request = { Schedule.rid; workload = arr.(rid mod Array.length arr) };
        at;
      })
    ts
