(** Open-loop service model over the co-run cluster: seeded arrivals, a
    bounded FIFO admission queue with load shedding, per-request latency
    observability, SLO accounting, and saturation sweeps.

    One run calibrates the mean per-request service time on a throwaway
    1-core cluster, converts [load] into an arrival rate
    ([load * ncores / mean_service_cycles]), generates the seeded arrival
    stream ({!Arrival}), and drives a fresh {!Axmemo_multicore.Corun}
    cluster through {!Axmemo_multicore.Schedule.dispatch_open} — LUT and
    cache state stay warm across requests exactly as in the closed co-run.
    Latency histograms, SLO rates, the Chrome request timeline and the
    ["service"] report section are purely observational: per-request cycle
    results are bit-identical with or without them.

    Determinism contract: with a fixed root seed, {!run} and {!run_matrix}
    are pure functions of their configuration (the only exception being
    [sim_wall_seconds], which is off the reports by default) — reports are
    byte-identical for any [--jobs] setting, and a [Closed] arrival run
    with a large enough queue reproduces {!Axmemo_multicore.Corun.run}'s
    per-request results bit for bit. *)

type config = {
  cluster : Axmemo_multicore.Corun.config;
      (** cores, LUT sizes, partition policy, mix and request count (the
          per-node shape when [nodes > 1]) *)
  nodes : int;
      (** service nodes. 1 (the default) drives a plain
          {!Axmemo_multicore.Corun} cluster — the pre-cluster code path,
          byte-identical reports. [> 1] drives the sharded multi-node
          cluster ({!Axmemo_cluster.Cluster}) with directory invalidation
          and the modeled interconnect; the report row gains the
          ["cluster"] section and per-node [n<j>.]-prefixed metrics. *)
  arrival : Arrival.kind;
  load : float;
      (** offered load as a fraction of cluster capacity; 1.0 = one mean
          service time of work per core per unit time, across all
          [nodes * ncores] cores *)
  queue_capacity : int;  (** waiting requests beyond the cores *)
  shed : Axmemo_multicore.Schedule.shed_policy;
  slo_cycles : int;
      (** total-latency SLO; 0 = auto ({!slo_auto_factor} x the calibrated
          mean service time) *)
  warm_start : string option;
      (** snapshot file ({!Axmemo_tier.Snapshot}) replayed into the fresh
          cluster before the first request — warm restart. The arrival
          stream's seed ignores this field, so a warm run faces exactly the
          arrivals its cold twin does; the only difference is LUT state. *)
}

val slo_auto_factor : float
(** 4.0 — the auto-SLO multiple of the calibrated mean service time. *)

val default : config
(** Poisson arrivals at load 0.8 over {!Axmemo_multicore.Corun.default},
    queue of 16, drop-tail, auto SLO, no warm start. *)

val label : config -> string
(** Appends ["+warm"] when [warm_start] is set; cold labels unchanged. *)

val calibrate : config -> float
(** Mean cold service cycles over the mix's distinct workloads, measured on
    a throwaway fault-free 1-core cluster — the anchor that converts
    [load] into an arrival rate and sets the auto SLO. Always [>= 1]. *)

(** {1 Outcomes} *)

type request_record = {
  rid : int;
  workload : string;
  core : int;
  arrival : int;
  start : int;
  finish : int;
  queue_wait : int;  (** [start - arrival] *)
  service : int;  (** [finish - start] *)
  total : int;  (** [finish - arrival] *)
  cold : bool;  (** first execution of its workload in this run *)
  slo_ok : bool;
  result : Axmemo.Runner.result;
}

type latency = {
  p50 : float;
  p99 : float;
  p999 : float;
  mean : float;
  max : float;
}
(** Percentiles are interpolated from the log-spaced registry histogram
    ({!Axmemo_util.Stats.percentile_of_histogram} — exact to one bucket
    width); [mean] uses the histogram's exact running sum; [max] is exact
    from the raw records. *)

type outcome = {
  cfg : config;
  rate : float;  (** arrivals per cycle; 0 for [Closed] *)
  mean_service_cycles : float;
  slo_cycles : int;  (** resolved (explicit or auto) *)
  requests : request_record list;  (** served, dispatch order *)
  shed : Axmemo_multicore.Schedule.arrival list;  (** shed order *)
  arrived : int;
  served : int;
  shed_count : int;
  shed_rate : float;  (** shed over arrived *)
  slo_violations : int;
  slo_violation_rate : float;  (** violations over served *)
  goodput_rate : float;  (** served-within-SLO over arrived *)
  queue_wait : latency;
  service : latency;
  total : latency;
  makespan_cycles : int;
  throughput_rps : float;  (** served requests per simulated second *)
  offered_rps : float;
  cold_hit_rate : float;
      (** LUT hit rate of first-per-workload requests — the first window a
          warm restart is meant to rescue *)
  warm_hit_rate : float;  (** hit rate of every later request *)
  aggregate_hit_rate : float;
  restored_entries : int;
      (** LUT entries replayed from the [warm_start] snapshot; 0 cold *)
  contention_cycles : int;  (** arbitration stalls, settled post-hoc *)
  shared_accesses : int;
  contended_accesses : int;
  trace_unmatched_ends : int;
      (** {!Axmemo_telemetry.Tracer.unmatched_ends} of the request
          timeline — nonzero means the span bookkeeping went unbalanced;
          surfaced as the [serve.trace.unmatched_ends] counter and in the
          ["service"] section so the diff gate pins it at 0 *)
  cluster_section : Axmemo_util.Json.t option;
      (** the sharded-cluster report section (shard balance, directory
          traffic, replication, interconnect accounting), attached to the
          report row and regression-gated as [cluster.<path>]; [None] on
          single-node runs so their rows stay byte-identical *)
  snapshots : (string * Axmemo_telemetry.Registry.snapshot) list;
      (** ["serve"] (lifecycle counters, latency histograms, queue-depth
          series) plus the cluster registries *)
  tracer : Axmemo_telemetry.Tracer.t;
      (** the request timeline: arrivals/sheds as instants on the
          "admission" row (tid 0), each served request as a span on its
          core's row (tid [core+1]) *)
  sim_wall_seconds : float;  (** host wall clock; outside the bit-identity
          contract and off the reports unless [~wall:true] *)
}

val run : config -> outcome
(** Simulates one service run.
    @raise Invalid_argument on a non-positive load with open-loop
    arrivals, a negative SLO, a non-positive node count, an
    unreadable/invalid [warm_start] snapshot, or anything
    {!Axmemo_multicore.Corun}, {!Axmemo_cluster.Cluster} or
    {!Axmemo_multicore.Schedule.dispatch_open} rejects. *)

val run_matrix : ?jobs:int -> config list -> outcome list
(** Each configuration as one independent cell fanned over a domain pool;
    results in input order and byte-identical to a serial run. *)

(** {1 Saturation} *)

type saturation_point = {
  sat_ncores : int;
  sat_partition : string;
  sat_arrival : string;
  sat_load : float;
      (** highest swept load whose shed rate stayed within the threshold;
          0 when every load shed more *)
  sat_throughput_rps : float;  (** throughput at [sat_load] *)
  peak_throughput_rps : float;  (** best throughput anywhere in the group *)
}

val sweep_loads : float list
(** The default offered-load ramp of [--sweep-load]:
    0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0. *)

val saturation : ?shed_threshold:float -> outcome list -> saturation_point list
(** Groups outcomes by (cores, partition, arrival kind), in first-appearance
    order, and reports each group's saturation point — the highest offered
    load still served with [shed_rate <= shed_threshold] (default 0.01). *)

val saturation_json : saturation_point list -> Axmemo_util.Json.t

(** {1 Reports} *)

val service_json : outcome -> Axmemo_util.Json.t
(** The ["service"] report section: arrival process, offered load,
    queue/shed accounting, latency percentiles, SLO rates, warm/cold hit
    rates, contention, and [trace_unmatched_ends]. Numeric leaves are
    flattened by [Obs.Diff] as [service.<path>] metrics, so everything here
    is regression-gated. *)

val default_series_cap : int

val report_runs :
  ?series_cap:int -> ?wall:bool -> outcome list -> Axmemo_telemetry.Report.run list
(** One report row per outcome: the serve registry concatenated with the
    cluster registry (disjoint names re-sorted; series survive, unlike
    under [Registry.merge]) and the ["service"] section attached.
    [~wall:true] adds [sim_wall_seconds] to the summary — leave it off
    (default) wherever byte-identical reports matter. *)

val report : ?series_cap:int -> ?wall:bool -> outcome list -> Axmemo_util.Json.t
(** {!Axmemo_telemetry.Report.make} over {!report_runs}, with the root seed
    and the {!saturation} table as extra top-level fields. *)

val write_report : ?series_cap:int -> ?wall:bool -> string -> outcome list -> unit

val write_trace : outcome -> string -> unit
(** Save the outcome's request timeline as Chrome trace-event JSON. *)
