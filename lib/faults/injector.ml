module Rng = Axmemo_util.Rng

let site_index : Fault_model.site -> int = function
  | L1_tag -> 0
  | L1_payload -> 1
  | L1_valid -> 2
  | L1_lru -> 3
  | L2_tag -> 4
  | L2_payload -> 5
  | L2_valid -> 6
  | L2_lru -> 7
  | Hvr -> 8
  | Crc_datapath -> 9
  | L3_payload -> 10

(* [all_sites] stops at the SRAM-era sites; the DRAM-tier site still needs a
   slot in the per-site arrays. *)
let nsites =
  List.length Fault_model.all_sites + List.length Fault_model.l3_sites_list

type t = {
  spec : Fault_model.spec;
  rng : Rng.t;
  enabled : bool array;  (* indexed by site_index *)
  injected : int array;
  mutable clock : (unit -> int) option;
  mutable last_cycle : int;
  mutable on_fault : (Fault_model.site -> unit) option;
  mutable parity_detected : int;
  mutable secded_corrected : int;
  mutable secded_detected : int;
  mutable sdc_hits : int;
  mutable tag_aliases : int;
}

let create (spec : Fault_model.spec) =
  Fault_model.validate spec;
  let enabled = Array.make nsites false in
  List.iter (fun s -> enabled.(site_index s) <- true) spec.sites;
  {
    spec;
    rng = Rng.create spec.seed;
    enabled;
    injected = Array.make nsites 0;
    clock = None;
    last_cycle = 0;
    on_fault = None;
    parity_detected = 0;
    secded_corrected = 0;
    secded_detected = 0;
    sdc_hits = 0;
    tag_aliases = 0;
  }

let spec t = t.spec
let protection t = t.spec.protection
let set_clock t f = t.clock <- Some f
let set_on_fault t f = t.on_fault <- Some f

(* One Bernoulli opportunity. Per-cycle rates integrate the elapsed
   simulated time since the previous draw: P(>=1 upset in d cycles) =
   1 - (1 - r)^d. The elapsed-cycle counter is global to the injector, so
   the total exposure equals the run's cycle count no matter how accesses
   interleave across sites. *)
let fires t =
  let p =
    match t.spec.basis with
    | Fault_model.Per_access -> t.spec.rate
    | Fault_model.Per_cycle -> (
        match t.clock with
        | None -> t.spec.rate
        | Some clk ->
            let now = clk () in
            let d = max 0 (now - t.last_cycle) in
            t.last_cycle <- now;
            if d = 0 then 0.0
            else if t.spec.rate >= 1.0 then 1.0
            else 1.0 -. ((1.0 -. t.spec.rate) ** float_of_int d))
  in
  p > 0.0 && Rng.float t.rng 1.0 < p

let record t site =
  t.injected.(site_index site) <- t.injected.(site_index site) + 1;
  match t.on_fault with Some f -> f site | None -> ()

let corrupt t site ~width v =
  if not t.enabled.(site_index site) then v
  else if not (fires t) then v
  else begin
    let bit = Int64.shift_left 1L (Rng.int t.rng width) in
    let v' =
      match t.spec.kind with
      | Fault_model.Transient -> Int64.logxor v bit
      | Fault_model.Stuck_at_0 -> Int64.logand v (Int64.lognot bit)
      | Fault_model.Stuck_at_1 -> Int64.logor v bit
    in
    if v' <> v then record t site;
    v'
  end

let crc_hook t =
  if not t.enabled.(site_index Fault_model.Crc_datapath) then None
  else
    Some
      (fun width ->
        if fires t then begin
          let mask = Int64.shift_left 1L (Rng.int t.rng width) in
          record t Fault_model.Crc_datapath;
          mask
        end
        else 0L)

let note_parity_detected t = t.parity_detected <- t.parity_detected + 1
let note_secded_corrected t = t.secded_corrected <- t.secded_corrected + 1
let note_secded_detected t = t.secded_detected <- t.secded_detected + 1
let note_sdc t = t.sdc_hits <- t.sdc_hits + 1
let note_alias t = t.tag_aliases <- t.tag_aliases + 1

type stats = {
  injected_total : int;
  injected_by_site : (Fault_model.site * int) list;
  parity_detected : int;
  secded_corrected : int;
  secded_detected : int;
  sdc_hits : int;
  tag_aliases : int;
}

let injected_at t site = t.injected.(site_index site)

let stats t =
  {
    injected_total = Array.fold_left ( + ) 0 t.injected;
    injected_by_site =
      List.filter_map
        (fun s ->
          let n = injected_at t s in
          if n > 0 then Some (s, n) else None)
        (Fault_model.all_sites @ Fault_model.l3_sites_list);
    parity_detected = t.parity_detected;
    secded_corrected = t.secded_corrected;
    secded_detected = t.secded_detected;
    sdc_hits = t.sdc_hits;
    tag_aliases = t.tag_aliases;
  }
