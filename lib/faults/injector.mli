(** Runtime fault injection.

    One injector owns one fault stream (splitmix64, seeded by the spec) and
    the campaign counters. It is wired into the simulator the way PR 2's
    [?metrics] registries are: components receive it as an option at
    creation, the hot path pays a single pattern match when it is absent,
    and an absent injector changes nothing — runs without [?faults] are
    bit-identical to a build without this subsystem.

    Determinism contract: every {!corrupt} call consumes exactly one draw
    from the stream when the site is enabled (plus one more only when the
    fault fires), and zero when disabled. The simulator is deterministic,
    so a fixed spec replays the exact same fault sequence, regardless of
    [--jobs]: each experiment cell owns its injector. *)

type t

val create : Fault_model.spec -> t
(** Validates the spec ({!Fault_model.validate}) and seeds the stream. *)

val spec : t -> Fault_model.spec
val protection : t -> Protection.kind

val set_clock : t -> (unit -> int) -> unit
(** Install the simulated-cycle clock ([fun () -> Pipeline.cycles pipe]).
    Only read under [Per_cycle] rates; without a clock, [Per_cycle] degrades
    to per-access draws. *)

val set_on_fault : t -> (Fault_model.site -> unit) -> unit
(** Observer invoked at every injected (state-changing) fault — the tracer
    hooks this to emit Chrome-trace instants. *)

val corrupt : t -> Fault_model.site -> width:int -> int64 -> int64
(** [corrupt t site ~width v] draws one fault opportunity at [site] against
    the [width]-bit word [v] (width 1..64). If no event fires — the site is
    disabled, or the rate draw misses — [v] is returned unchanged. If an
    event fires, one uniformly chosen bit is flipped (Transient) or forced
    (Stuck_at); a stuck-at strike on an already-stuck bit changes nothing
    and is {e not} counted. State-changing events are counted per site and
    reported through {!set_on_fault}. *)

val crc_hook : t -> (int -> int64) option
(** [Some f] when the [Crc_datapath] site is enabled: [f width] draws one
    fault opportunity per CRC byte step and returns an XOR mask over the
    low [width] bits (0L = no fault). Datapath upsets are combinational, so
    the spec's stuck-at kinds are treated as transient here. [None] when
    the site is disabled — the engine then skips the hook entirely. *)

(** {2 Protection accounting} (called by the LUT on access) *)

val note_parity_detected : t -> unit
val note_secded_corrected : t -> unit
val note_secded_detected : t -> unit

val note_sdc : t -> unit
(** A hit returned corrupted state to the program (silent data
    corruption). *)

val note_alias : t -> unit
(** A corrupted tag matched a probe key it should not have. *)

(** {2 Results} *)

type stats = {
  injected_total : int;
  injected_by_site : (Fault_model.site * int) list;  (** nonzero sites only *)
  parity_detected : int;
  secded_corrected : int;
  secded_detected : int;
  sdc_hits : int;
  tag_aliases : int;
}

val stats : t -> stats

val injected_at : t -> Fault_model.site -> int
(** Per-site injection count (0 for never-struck sites). *)
