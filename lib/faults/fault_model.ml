type site =
  | L1_tag
  | L1_payload
  | L1_valid
  | L1_lru
  | L2_tag
  | L2_payload
  | L2_valid
  | L2_lru
  | Hvr
  | Crc_datapath
  | L3_payload

(* [all_sites] deliberately excludes [L3_payload]: campaign site sweeps and
   per-site fault telemetry iterate this list, and the DRAM tier's relaxed
   payload cells are a *memory technology* error source (retention failures
   at lowered refresh), not an SEU target of the default sweep — keeping the
   list fixed also keeps every pre-L3 fault report byte-identical. *)
let all_sites =
  [ L1_tag; L1_payload; L1_valid; L1_lru; L2_tag; L2_payload; L2_valid; L2_lru;
    Hvr; Crc_datapath ]

let l3_sites_list = [ L3_payload ]

let site_name = function
  | L1_tag -> "l1.tag"
  | L1_payload -> "l1.payload"
  | L1_valid -> "l1.valid"
  | L1_lru -> "l1.lru"
  | L2_tag -> "l2.tag"
  | L2_payload -> "l2.payload"
  | L2_valid -> "l2.valid"
  | L2_lru -> "l2.lru"
  | Hvr -> "hvr"
  | Crc_datapath -> "crc"
  | L3_payload -> "l3.payload"

let site_of_string s =
  List.find_opt (fun x -> site_name x = s) (all_sites @ l3_sites_list)

type kind = Transient | Stuck_at_0 | Stuck_at_1

let kind_name = function
  | Transient -> "transient"
  | Stuck_at_0 -> "stuck-at-0"
  | Stuck_at_1 -> "stuck-at-1"

let kind_of_string = function
  | "transient" | "seu" -> Some Transient
  | "stuck-at-0" | "sa0" -> Some Stuck_at_0
  | "stuck-at-1" | "sa1" -> Some Stuck_at_1
  | _ -> None

type basis = Per_access | Per_cycle

let basis_name = function Per_access -> "access" | Per_cycle -> "cycle"

let basis_of_string = function
  | "access" -> Some Per_access
  | "cycle" -> Some Per_cycle
  | _ -> None

type spec = {
  seed : int64;
  kind : kind;
  basis : basis;
  rate : float;
  sites : site list;
  protection : Protection.kind;
}

let default =
  {
    seed = 1L;
    kind = Transient;
    basis = Per_access;
    rate = 0.0;
    sites = all_sites;
    protection = Protection.Unprotected;
  }

let validate spec =
  if not (spec.rate >= 0.0 && spec.rate <= 1.0) then
    invalid_arg "Fault_model.validate: rate must be within [0, 1]";
  if spec.sites = [] then invalid_arg "Fault_model.validate: no fault sites";
  if spec.seed = 0L then invalid_arg "Fault_model.validate: seed must be nonzero"

type lut_sites = { tag : site; payload : site; valid : site; lru : site }

let l1_sites = { tag = L1_tag; payload = L1_payload; valid = L1_valid; lru = L1_lru }
let l2_sites = { tag = L2_tag; payload = L2_payload; valid = L2_valid; lru = L2_lru }
