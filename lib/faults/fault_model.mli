(** Declarative fault specifications.

    A {!spec} is a pure value: it names {e where} single-event upsets may
    strike (the {!site} list), {e how} (transient flip or stuck-at), {e how
    often} (a rate per LUT access or per simulated cycle), which modeled
    {!Protection.kind} guards the LUT arrays, and the splitmix64 seed of the
    fault stream. Because the simulator is deterministic, a spec fully
    determines every fault of a run: campaigns replay bit-identically, and
    serial and parallel sweeps agree byte-for-byte.

    Sites follow the hardware state of Sections 3.2–3.3: the L1/L2 LUT tag,
    payload, valid and LRU arrays, the hash value registers (in-flight CRC
    state), and the CRC datapath itself. Protection covers only the LUT
    entry (tag + payload + valid); HVR and CRC-datapath upsets are
    architecturally unprotected — they corrupt a key {e before} it is
    stored, which memoization absorbs as a miss or a one-off polluted
    entry. *)

type site =
  | L1_tag
  | L1_payload
  | L1_valid
  | L1_lru
  | L2_tag
  | L2_payload
  | L2_valid
  | L2_lru
  | Hvr  (** in-flight hash value register, read at lookup time *)
  | Crc_datapath  (** combinational upset during one CRC byte step *)
  | L3_payload
      (** relaxed DRAM cells holding the L3 LUT tier's low payload bits —
          retention failures under lowered refresh, not SEUs *)

val all_sites : site list
(** The ten SRAM-era sites. Excludes {!L3_payload}: campaign site sweeps
    and per-site telemetry iterate this list, and the approximate-DRAM site
    is a different error mechanism opted into by the L3 tier's criticality
    split. *)

val l3_sites_list : site list
(** Just [L3_payload] — the sites the DRAM LUT tier draws. *)

val site_name : site -> string
(** Stable dotted identifier (["l1.tag"], ["hvr"], ...) used in metric
    names, reports, and CLI arguments. *)

val site_of_string : string -> site option

type kind =
  | Transient  (** one bit flips (SEU) *)
  | Stuck_at_0  (** the struck bit reads 0 until the entry is rewritten *)
  | Stuck_at_1

val kind_name : kind -> string
val kind_of_string : string -> kind option

type basis =
  | Per_access  (** [rate] = probability of one fault per drawn access *)
  | Per_cycle
      (** [rate] = probability per simulated cycle; each access draws over
          the cycles elapsed since the previous draw, so slow phases absorb
          proportionally more upsets *)

val basis_name : basis -> string
val basis_of_string : string -> basis option

type spec = {
  seed : int64;  (** root of the fault stream (splitmix64) *)
  kind : kind;
  basis : basis;
  rate : float;  (** in [0, 1]; 0 attaches the injector but never fires *)
  sites : site list;  (** enabled sites; order-insensitive *)
  protection : Protection.kind;  (** guards LUT tag + payload + valid *)
}

val default : spec
(** Transient, per-access, rate 0, every site enabled, unprotected,
    seed [1L]. *)

val validate : spec -> unit
(** @raise Invalid_argument on a rate outside [0, 1], an empty site list, or
    a zero seed (the splitmix increment makes 0 a degenerate stream). *)

type lut_sites = { tag : site; payload : site; valid : site; lru : site }
(** The four per-level array sites, bundled so a {!Axmemo_memo.Lut} port
    knows which names to draw. *)

val l1_sites : lut_sites
val l2_sites : lut_sites
