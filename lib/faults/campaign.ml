module Fault_model = Axmemo_faults.Fault_model
module Protection = Axmemo_faults.Protection
module Rng = Axmemo_util.Rng
module Json = Axmemo_util.Json
module Runner = Axmemo.Runner
module Memo_unit = Axmemo_memo.Memo_unit
module Workload = Axmemo_workloads.Workload
module Report = Axmemo_telemetry.Report
module Tracer = Axmemo_telemetry.Tracer

type config = {
  seed : int64;
  kind : Fault_model.kind;
  basis : Fault_model.basis;
  rates : float list;
  site_groups : (string * Fault_model.site list) list;
  protections : Protection.kind list;
  l1_bytes : int;
  l2_bytes : int option;
}

let default () =
  {
    (* Salted through the root seed so [--seed] re-keys the campaign along
       with the datasets; with no root set this is a fixed default. *)
    seed = Rng.derive_stream 0x5EEDFA17C0DEC1A5L;
    kind = Fault_model.Transient;
    basis = Fault_model.Per_access;
    rates = [ 1e-4; 1e-3; 1e-2 ];
    site_groups =
      [
        ("lut", [ Fault_model.L1_tag; L1_payload; L1_valid; L1_lru ]);
        ("hash", [ Fault_model.Hvr; Crc_datapath ]);
      ];
    protections = Protection.all_kinds;
    l1_bytes = 8 * 1024;
    l2_bytes = None;
  }

type measurement = {
  benchmark : string;
  site_group : string;
  rate : float;
  protection : Protection.kind;
  label : string;
  injected : int;
  injected_by_site : (Fault_model.site * int) list;
  sdc_hits : int;
  sdc_rate : float;
  detected : int;
  detection_rate : float;
  corrected : int;
  aliases : int;
  lookups : int;
  hits : int;
  quality_loss : float;
  quality_degradation : float;
  monitor_tripped : bool;
  trip_lookup : int option;
  crashed : string option;
  speedup_retained : float;
  energy_overhead : float;
}

type outcome = {
  config : config;
  measurements : measurement list;
  runs : Report.run list;
}

(* Per-cell fault seed: a position-independent digest of the cell's identity
   mixed with the campaign seed, so a single traced cell replays the exact
   stream the campaign drew no matter how many benchmarks ran beside it. *)
let fold_string acc s =
  String.fold_left
    (fun a c -> Int64.add (Int64.mul a 1099511628211L) (Int64.of_int (Char.code c)))
    acc s

let cell_seed cfg ~bench ~group ~rate ~protection =
  let acc = cfg.seed in
  let acc = fold_string acc bench in
  let acc = fold_string acc group in
  let acc = fold_string acc (Printf.sprintf "%h" rate) in
  let acc = fold_string acc (Protection.kind_name protection) in
  let v = Rng.int64 (Rng.create acc) in
  if v = 0L then 1L else v

let faulty_label ~group ~rate ~protection =
  Printf.sprintf "faults(%s,%g,%s)" group rate (Protection.kind_name protection)

let memo_config cfg ?faults ~label () =
  Runner.Hw_custom
    {
      label;
      unit_cfg =
        {
          Memo_unit.default_config with
          l1_bytes = cfg.l1_bytes;
          l2_bytes = cfg.l2_bytes;
          faults;
        };
      approximate = true;
      crc_bytes_per_cycle = Axmemo_isa.Timing.crc_bytes_per_cycle;
    }

let faulty_config cfg ~bench ~group ~sites ~rate ~protection =
  let spec =
    {
      Fault_model.seed = cell_seed cfg ~bench ~group ~rate ~protection;
      kind = cfg.kind;
      basis = cfg.basis;
      rate;
      sites;
      protection;
    }
  in
  memo_config cfg ~faults:spec ~label:(faulty_label ~group ~rate ~protection) ()

(* The faulty combinations in sweep order: group-major, then rate, then
   protection. *)
let combos cfg =
  List.concat_map
    (fun (group, sites) ->
      List.concat_map
        (fun rate ->
          List.map (fun protection -> (group, sites, rate, protection)) cfg.protections)
        cfg.rates)
    cfg.site_groups

let run ?jobs cfg benchmarks ~variant =
  let combos = combos cfg in
  (* Per benchmark: exact baseline, fault-free memoized reference, then one
     faulty cell per combination — all fresh instances, all one matrix. *)
  let cells =
    List.concat_map
      (fun ((meta : Workload.meta), make) ->
        (Runner.Baseline, make variant)
        :: (memo_config cfg ~label:"memo-faultfree" (), make variant)
        :: List.map
             (fun (group, sites, rate, protection) ->
               ( faulty_config cfg ~bench:meta.name ~group ~sites ~rate ~protection,
                 make variant ))
             combos)
      benchmarks
  in
  let pairs = Runner.run_matrix_telemetry ?jobs cells in
  let per_bench = 2 + List.length combos in
  let chunk i =
    List.filteri (fun j _ -> j >= i * per_bench && j < (i + 1) * per_bench) pairs
  in
  let measurements = ref [] and runs = ref [] in
  List.iteri
    (fun i ((meta : Workload.meta), _) ->
      match chunk i with
      | (base, base_snap) :: (free, free_snap) :: faulty ->
          let summary ?(extra = []) (r : Runner.result) =
            [
              ("cycles", Json.Int r.cycles);
              ("energy_pj", Json.Float r.energy.total_pj);
              ("lookups", Json.Int r.lookups);
              ("hits", Json.Int r.hits);
              ("hit_rate", Json.Float r.hit_rate);
              ("memo_disabled", Json.Bool r.memo_disabled);
              ( "quality_loss",
                Json.Float
                  (Workload.quality_loss ~reference:base.outputs ~approx:r.outputs) );
            ]
            @ extra
          in
          let mk_run snap (r : Runner.result) extra =
            {
              Report.benchmark = meta.name;
              config = r.label;
              summary = summary ~extra r;
              metrics = snap;
              profile = None;
              service = None;
              cluster = None;
            }
          in
          runs := mk_run base_snap base [] :: !runs;
          runs := mk_run free_snap free [] :: !runs;
          List.iter2
            (fun (group, _sites, rate, protection) ((r : Runner.result), snap) ->
              let s =
                match r.faults with
                | Some s -> s
                | None -> assert false (* faulty cells always carry an injector *)
              in
              let detected = s.parity_detected + s.secded_detected in
              let m =
                {
                  benchmark = meta.name;
                  site_group = group;
                  rate;
                  protection;
                  label = r.label;
                  injected = s.injected_total;
                  injected_by_site = s.injected_by_site;
                  sdc_hits = s.sdc_hits;
                  sdc_rate =
                    (if r.hits = 0 then 0.0
                     else float_of_int s.sdc_hits /. float_of_int r.hits);
                  detected;
                  detection_rate =
                    (if s.injected_total = 0 then 0.0
                     else float_of_int detected /. float_of_int s.injected_total);
                  corrected = s.secded_corrected;
                  aliases = s.tag_aliases;
                  lookups = r.lookups;
                  hits = r.hits;
                  quality_loss =
                    Workload.quality_loss ~reference:base.outputs ~approx:r.outputs;
                  quality_degradation =
                    Workload.quality_loss ~reference:free.outputs ~approx:r.outputs;
                  monitor_tripped = r.memo_disabled;
                  trip_lookup = r.trip_lookup;
                  crashed = r.crashed;
                  speedup_retained =
                    float_of_int free.cycles /. float_of_int (max 1 r.cycles);
                  energy_overhead = (r.energy.total_pj /. free.energy.total_pj) -. 1.0;
                }
              in
              measurements := m :: !measurements;
              let extra =
                [
                  ("fault_site_group", Json.Str group);
                  ("fault_rate", Json.Float rate);
                  ("fault_protection", Json.Str (Protection.kind_name protection));
                  ("fault_injected", Json.Int s.injected_total);
                  ("fault_sdc_hits", Json.Int s.sdc_hits);
                  ("fault_detected", Json.Int detected);
                  ("fault_corrected", Json.Int s.secded_corrected);
                  ("fault_aliases", Json.Int s.tag_aliases);
                  ("quality_degradation", Json.Float m.quality_degradation);
                  ("speedup_retained", Json.Float m.speedup_retained);
                  ("energy_overhead", Json.Float m.energy_overhead);
                  ( "trip_lookup",
                    match r.trip_lookup with Some n -> Json.Int n | None -> Json.Null
                  );
                  ( "fault_crashed",
                    match r.crashed with Some e -> Json.Str e | None -> Json.Null );
                ]
              in
              runs := mk_run snap r extra :: !runs)
            combos faulty
      | _ -> invalid_arg "Campaign.run: matrix came back short")
    benchmarks;
  { config = cfg; measurements = List.rev !measurements; runs = List.rev !runs }

let measurement_json (m : measurement) =
  Json.Obj
    [
      ("benchmark", Json.Str m.benchmark);
      ("site_group", Json.Str m.site_group);
      ("rate", Json.Float m.rate);
      ("protection", Json.Str (Protection.kind_name m.protection));
      ("label", Json.Str m.label);
      ("injected", Json.Int m.injected);
      ( "injected_by_site",
        Json.Obj
          (List.map
             (fun (site, n) -> (Fault_model.site_name site, Json.Int n))
             m.injected_by_site) );
      ("sdc_hits", Json.Int m.sdc_hits);
      ("sdc_rate", Json.Float m.sdc_rate);
      ("detected", Json.Int m.detected);
      ("detection_rate", Json.Float m.detection_rate);
      ("corrected", Json.Int m.corrected);
      ("aliases", Json.Int m.aliases);
      ("lookups", Json.Int m.lookups);
      ("hits", Json.Int m.hits);
      ("quality_loss", Json.Float m.quality_loss);
      ("quality_degradation", Json.Float m.quality_degradation);
      ("monitor_tripped", Json.Bool m.monitor_tripped);
      ("trip_lookup", match m.trip_lookup with Some n -> Json.Int n | None -> Json.Null);
      ("crashed", match m.crashed with Some e -> Json.Str e | None -> Json.Null);
      ("speedup_retained", Json.Float m.speedup_retained);
      ("energy_overhead", Json.Float m.energy_overhead);
    ]

let report outcome =
  let cfg = outcome.config in
  let extra =
    [
      ( "fault_campaign",
        Json.Obj
          [
            ("seed", Json.Str (Int64.to_string cfg.seed));
            ("root_seed", Json.Str (Int64.to_string (Rng.root_seed ())));
            ("kind", Json.Str (Fault_model.kind_name cfg.kind));
            ("basis", Json.Str (Fault_model.basis_name cfg.basis));
            ("rates", Json.Arr (List.map (fun r -> Json.Float r) cfg.rates));
            ( "site_groups",
              Json.Obj
                (List.map
                   (fun (name, sites) ->
                     ( name,
                       Json.Arr
                         (List.map (fun s -> Json.Str (Fault_model.site_name s)) sites)
                     ))
                   cfg.site_groups) );
            ( "protections",
              Json.Arr
                (List.map (fun p -> Json.Str (Protection.kind_name p)) cfg.protections)
            );
            ("l1_bytes", Json.Int cfg.l1_bytes);
            ("l2_bytes", match cfg.l2_bytes with Some b -> Json.Int b | None -> Json.Null);
          ] );
      ("resilience", Json.Arr (List.map measurement_json outcome.measurements));
    ]
  in
  Report.make ~extra outcome.runs

let write_report outcome path = Json.write_file ~indent:2 path (report outcome)

let trace_cell cfg ~benchmark:((meta : Workload.meta), make) ~variant ~path =
  match (cfg.site_groups, cfg.protections) with
  | [], _ | _, [] -> invalid_arg "Campaign.trace_cell: empty campaign"
  | (group, sites) :: _, protection :: _ ->
      let rate = List.fold_left Float.max 0.0 cfg.rates in
      let config = faulty_config cfg ~bench:meta.name ~group ~sites ~rate ~protection in
      let _, _, tracer = Runner.run_telemetry ~trace:true config (make variant) in
      (match tracer with Some tr -> Tracer.write tr path | None -> ())
