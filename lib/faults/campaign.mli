(** SEU campaign driver: sweep fault site groups × rates × protections over
    workloads and measure the resilience of memoized execution.

    A campaign runs, per benchmark: one exact {!Axmemo.Runner.Baseline} cell
    (the quality reference), one fault-free memoized cell (the performance
    and energy reference), and one faulty memoized cell per (site group,
    rate, protection) combination. All cells fan out together over
    {!Axmemo.Runner.run_matrix_telemetry}, so a fixed {!config.seed} gives a
    byte-identical campaign no matter [?jobs]: per-cell fault seeds are
    drawn sequentially from the campaign seed {e before} the fan-out, and
    every cell owns all of its mutable state.

    The campaign quantifies, per faulty cell:
    - {b SDC rate}: hits that returned corrupted state, over all hits;
    - {b quality degradation}: output quality loss versus the fault-free
      memoized run (and absolute loss versus the exact baseline);
    - {b detection}: parity/SECDED detections over injected faults, plus
      whether (and after how many lookups) the quality monitor tripped;
    - {b speedup retained}: faulty cycles versus fault-free cycles;
    - {b protection energy overhead}: total pJ versus the fault-free run. *)

module Fault_model = Axmemo_faults.Fault_model
module Protection = Axmemo_faults.Protection

type config = {
  seed : int64;  (** campaign root; every cell's fault stream derives from it *)
  kind : Fault_model.kind;
  basis : Fault_model.basis;
  rates : float list;  (** swept fault rates (see {!Fault_model.basis}) *)
  site_groups : (string * Fault_model.site list) list;
      (** named site sets swept independently, e.g. [("lut", ...)] *)
  protections : Protection.kind list;
  l1_bytes : int;
  l2_bytes : int option;  (** memoized-cell LUT geometry *)
}

val default : unit -> config
(** Transient per-access faults at rates 1e-4/1e-3/1e-2 over two groups —
    ["lut"] (L1 tag/payload/valid/LRU) and ["hash"] (HVR + CRC datapath) —
    under all three protections, on an 8 KB single-level LUT. The seed is
    salted through {!Axmemo_util.Rng.derive_stream} {e at call time}, so a
    global [--seed] installed first re-keys the campaign with the
    datasets. *)

type measurement = {
  benchmark : string;
  site_group : string;
  rate : float;
  protection : Protection.kind;
  label : string;  (** runner config label of the faulty cell *)
  injected : int;
  injected_by_site : (Fault_model.site * int) list;
  sdc_hits : int;
  sdc_rate : float;
  detected : int;  (** parity + SECDED detections *)
  detection_rate : float;  (** detected / injected (0 when nothing injected) *)
  corrected : int;  (** SECDED single-flip corrections *)
  aliases : int;
  lookups : int;
  hits : int;
  quality_loss : float;  (** vs the exact baseline outputs *)
  quality_degradation : float;
      (** [quality_loss] of the faulty outputs measured against the
          fault-free memoized outputs — what the faults alone cost *)
  monitor_tripped : bool;
  trip_lookup : int option;
  crashed : string option;
      (** the simulated program failed mid-run (DUE) — see
          {!Axmemo.Runner.result.crashed}; statistics cover the prefix *)
  speedup_retained : float;  (** fault-free cycles / faulty cycles *)
  energy_overhead : float;  (** faulty total pJ / fault-free total pJ - 1 *)
}

type outcome = {
  config : config;
  measurements : measurement list;
      (** benchmark-major, then site group, rate, protection — the cell
          construction order *)
  runs : Axmemo_telemetry.Report.run list;
      (** every cell (references included) in the same order, ready for
          {!Axmemo_telemetry.Report.write} *)
}

val run :
  ?jobs:int ->
  config ->
  (Axmemo_workloads.Workload.meta
  * (Axmemo_workloads.Workload.variant -> Axmemo_workloads.Workload.instance))
  list ->
  variant:Axmemo_workloads.Workload.variant ->
  outcome
(** [run config benchmarks ~variant] executes the campaign matrix. *)

val report : outcome -> Axmemo_util.Json.t
(** Schema-versioned resilience report: {!Axmemo_telemetry.Report.make} over
    all cells, with top-level [fault_campaign] parameters (seed, kind,
    basis, rates, site groups, protections) and a [resilience] array holding
    each {!measurement} as a flat object. *)

val write_report : outcome -> string -> unit

val trace_cell :
  config ->
  benchmark:(Axmemo_workloads.Workload.meta
            * (Axmemo_workloads.Workload.variant -> Axmemo_workloads.Workload.instance)) ->
  variant:Axmemo_workloads.Workload.variant ->
  path:string ->
  unit
(** Re-run the campaign's {e first} faulty cell of [benchmark] (first site
    group, highest rate, first protection) with the cycle tracer attached
    and write the Chrome trace — fault instants ([fault_l1.tag], ...) land
    on the same clock as the LUT hit/miss events. Deterministic: the cell
    replays the exact faults the campaign measured. *)
