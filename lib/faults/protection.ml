type kind = Unprotected | Parity | Secded

let kind_name = function
  | Unprotected -> "none"
  | Parity -> "parity"
  | Secded -> "secded"

let kind_of_string = function
  | "none" | "unprotected" -> Some Unprotected
  | "parity" -> Some Parity
  | "secded" | "ecc" -> Some Secded
  | _ -> None

let all_kinds = [ Unprotected; Parity; Secded ]

(* A parity tree over ~100 bits is a handful of XOR levels; SECDED adds the
   syndrome decode. Both are small next to the 8 KB LUT read itself
   (Synthesis.lut_8k reads at ~5 pJ), which is the right order: ECC on a
   small SRAM costs a few percent of the access. *)
let parity_check_pj = 0.12
let parity_encode_pj = 0.12
let secded_check_pj = 0.45
let secded_encode_pj = 0.55
let secded_correct_pj = 0.30

let storage_overhead_bits kind ~entry_bits =
  match kind with
  | Unprotected -> 0
  | Parity -> 1
  | Secded ->
      (* Hamming SECDED: r check bits cover 2^r - r - 1 data bits; +1 for
         the overall parity (double-error detection). *)
      let rec r k = if (1 lsl k) - k - 1 >= entry_bits then k else r (k + 1) in
      r 1 + 1

let energy_pj kind ~lookups ~updates ~corrections =
  match kind with
  | Unprotected -> 0.0
  | Parity ->
      (float_of_int (lookups + updates) *. parity_check_pj)
      +. (float_of_int updates *. parity_encode_pj)
  | Secded ->
      (float_of_int (lookups + updates) *. secded_check_pj)
      +. (float_of_int updates *. secded_encode_pj)
      +. (float_of_int corrections *. secded_correct_pj)
