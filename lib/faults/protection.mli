(** Modeled memory-protection schemes for LUT state.

    AxMemo's LUT is plain SRAM; the paper never protects it because stale or
    aliased entries only degrade output quality. This module prices the two
    standard mitigations so the resilience campaign can trade energy against
    silent-data-corruption rate:

    - {b per-entry parity}: one bit over the entry's tag + payload + valid
      bit. An odd number of flipped bits is detected on access; the entry is
      then treated as a miss and invalidated (a memoization table can always
      recompute). Even-weight corruption escapes.
    - {b SECDED}: a Hamming single-error-correct / double-error-detect code
      per entry. One flipped bit is corrected in place, two are detected
      (entry invalidated), three or more may be silently miscorrected.

    The energy constants are representative 32 nm figures in the same unit
    system as {!Axmemo_energy.Synthesis} (picojoules per access); only
    relative cost matters. Checks are charged per LUT access (lookup and
    update), corrections on top. *)

type kind = Unprotected | Parity | Secded

val kind_name : kind -> string
(** ["none"], ["parity"], ["secded"] — stable identifiers used in reports,
    CLI arguments, and configuration labels. *)

val kind_of_string : string -> kind option

val all_kinds : kind list
(** [[Unprotected; Parity; Secded]], the default campaign sweep. *)

val parity_check_pj : float
(** Energy of one parity recompute-and-compare on access. *)

val parity_encode_pj : float
(** Energy of computing the parity bit on a write. *)

val secded_check_pj : float
(** Energy of one syndrome computation on access. *)

val secded_encode_pj : float
(** Energy of computing the check bits on a write. *)

val secded_correct_pj : float
(** Extra energy of one single-bit correction (syndrome decode + flip). *)

val storage_overhead_bits : kind -> entry_bits:int -> int
(** Extra storage bits per entry: 0, 1 (parity), or the SECDED check-bit
    count [ceil(log2 entry_bits) + 2]. Reported in the resilience report;
    not charged to energy directly (leakage is proportional to time, not
    capacity, in {!Axmemo_energy.Model}). *)

val energy_pj : kind -> lookups:int -> updates:int -> corrections:int -> float
(** [energy_pj kind ~lookups ~updates ~corrections] is the total modeled
    protection energy of a run: a check per lookup, an encode (plus check)
    per update, and the correction surcharge. [Unprotected] costs nothing. *)
