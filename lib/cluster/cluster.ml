(* The sharded multi-node memoization cluster.

   M nodes, each a full Corun cluster (N cores, one shared L2 LUT, a bank
   arbiter, optionally a DRAM L3 tier), joined by a modeled point-to-point
   interconnect. Every LUT entry has one home node — the high bits of its
   CRC tag pick the shard — and all shared-level traffic for that entry
   lands there: a core whose key homes elsewhere probes the remote node's
   shared LUT over the network, and inserts are posted to the home the same
   way. Invalidations go through a directory (per-LUT sharer-node sets)
   instead of a broadcast, and hot remote entries can be replicated into
   the local shared level, with the directory dropping stale replicas when
   the home copy is rewritten.

   Determinism contract, inherited from Corun: requests execute one at a
   time in dispatch order, so every table, counter and message below is a
   pure function of the configuration. Network contention reuses the
   arbiter's post-hoc settlement (banks = destination NICs, window = one
   message's service time); synchronous remote probes additionally charge
   2 x hops x net_msg_cycles per probe, accumulated per core and folded
   into finish times at settlement exactly like arbitration stalls — so
   per-request cycle results stay bit-identical to the node-local model,
   and a 1-node cluster reproduces Corun.run outcome for outcome. *)

module Corun = Axmemo_multicore.Corun
module Shared_lut = Axmemo_multicore.Shared_lut
module Arbiter = Axmemo_multicore.Arbiter
module Schedule = Axmemo_multicore.Schedule
module Memo_unit = Axmemo_memo.Memo_unit
module Model = Axmemo_energy.Model
module Workloads = Axmemo_workloads.Registry
module Registry = Axmemo_telemetry.Registry
module Report = Axmemo_telemetry.Report
module Tracer = Axmemo_telemetry.Tracer
module Machine = Axmemo_cpu.Machine
module Dram_lut = Axmemo_tier.Dram_lut
module Snapshot = Axmemo_tier.Snapshot
module Profile = Axmemo_obs.Profile
module Runner = Axmemo.Runner
module Json = Axmemo_util.Json
module Pool = Axmemo_util.Pool
module Rng = Axmemo_util.Rng

type config = {
  nodes : int;
  node : Corun.config;
      (* per-node shape (cores, LUT sizes, partition, mix); [node.requests]
         is the TOTAL stream length across the cluster, so scale-out sweeps
         compare fixed work over growing node counts *)
  replicate_threshold : int;  (* remote hits before replicating; 0 = off *)
  net_msg_cycles : int;  (* per-hop service latency of one message *)
  net_hop_pj : float;  (* per-hop link energy *)
  net_ports : int;  (* simultaneous messages a destination NIC accepts *)
  directory : bool;
      (* true: point-to-point invalidations to registered sharers only;
         false: send to every other node (the broadcast-equivalent baseline,
         same final LUT contents by construction) *)
}

let default =
  {
    nodes = 2;
    node = Corun.default;
    replicate_threshold = 0;
    net_msg_cycles = Model.default_constants.Model.net_msg_cycles;
    net_hop_pj = Model.default_constants.Model.net_hop_pj;
    net_ports = 1;
    directory = true;
  }

(* Replication and broadcast-mode suffixes appear only when configured, so
   sweep labels stay minimal (and distinct per cell, which Report.make
   requires). *)
let label (cfg : config) =
  Printf.sprintf "cluster(%dnode,%s%s%s)" cfg.nodes (Corun.label cfg.node)
    (if cfg.replicate_threshold > 0 then
       Printf.sprintf ",rep=%d" cfg.replicate_threshold
     else "")
    (if cfg.directory then "" else ",bcast")

let machine = Machine.hpi

(* ---- shard routing ----------------------------------------------------- *)

(* Keys are CRC-32 tags zero-extended to 64 bits, and the shared LUT's set
   index comes from the low bits — so the home shard uses the top byte of
   the CRC word (folded with bits 56..63 for 64-bit-key safety), keeping
   routing independent of set placement within a node. *)
let shard_of_key ~nodes key =
  if nodes <= 1 then 0
  else
    let hi = Int64.to_int (Int64.shift_right_logical key 24) land 0xFF in
    let up = Int64.to_int (Int64.shift_right_logical key 56) land 0xFF in
    (hi lxor up) mod nodes

(* Bidirectional ring: the usual chiplet baseline, and the shortest-path
   distance keeps per-message cost a pure function of (src, dst). *)
let ring_hops ~nodes a b =
  let d = abs (a - b) in
  min d (nodes - d)

(* ---- the cluster ------------------------------------------------------- *)

type msg_kind = Probe | Insert | Inv_lut | Inv_replica

let msg_kind_name = function
  | Probe -> "probe"
  | Insert -> "insert"
  | Inv_lut -> "inv"
  | Inv_replica -> "inv-rep"

type msg = { seq : int; at : int; src : int; dst : int; hops : int; kind : msg_kind }

type stats = {
  shard_accesses : int array;  (* shared-level accesses homed per node *)
  mutable remote_probes : int;  (* lookups that crossed the interconnect *)
  mutable remote_hits : int;
  mutable remote_inserts : int;
  mutable replica_installs : int;
  mutable replica_hits : int;  (* remote-homed lookups served by a local replica *)
  mutable replica_invalidations : int;  (* stale replicas dropped on a write *)
  mutable inv_events : int;  (* retired invalidate instructions *)
  mutable inv_sent : int;  (* point-to-point LUT invalidations delivered *)
  mutable inv_filtered : int;  (* skipped: destination not a registered sharer *)
  mutable net_messages : int;
  mutable net_hops : int;  (* link traversals, responses included *)
  net_latency : int array;  (* per global core, synchronous round-trip cycles *)
  mutable restore_entries : int;
  mutable restore_amortised : int;  (* DRAM row activations, batched restore *)
  mutable restore_serial : int;  (* what an entry-at-a-time replay would cost *)
  mutable replica_batch_amortised : int;  (* same accounting for replica L3 copies *)
  mutable replica_batch_serial : int;
}

type t = {
  cfg : config;
  npc : int;  (* cores per node *)
  gcores : int;  (* nodes * npc *)
  nodes : Corun.cluster array;
  net_arb : Arbiter.t;  (* banks = destination NICs, window = one message *)
  sharers : (int, int) Hashtbl.t;  (* lut -> node bitmask (directory) *)
  replicas : (int * int64, int) Hashtbl.t;  (* (lut, key) -> replica-holder mask *)
  hot : (int * int * int64, int) Hashtbl.t;  (* (node, lut, key) -> remote hits *)
  l3_pending : (int * int64 * int64) list ref array;  (* per-node replica L3 copies *)
  st : stats;
  mutable msgs : msg list;  (* newest first; reversed for the trace *)
  mutable mseq : int;
}

let node_bit n = 1 lsl n

let register_sharer t ~lut ~node =
  let m = Option.value ~default:0 (Hashtbl.find_opt t.sharers lut) in
  let m' = m lor node_bit node in
  if m' <> m then Hashtbl.replace t.sharers lut m'

let send_msg t ~gcore ~kind ~src ~dst ~lut ~at ~sync =
  let hops = ring_hops ~nodes:t.cfg.nodes src dst in
  let legs = if sync then 2 * hops else hops in
  t.st.net_messages <- t.st.net_messages + 1;
  t.st.net_hops <- t.st.net_hops + legs;
  Arbiter.record ~tag:lut t.net_arb ~core:gcore ~set:dst ~at;
  if sync then
    t.st.net_latency.(gcore) <-
      t.st.net_latency.(gcore) + (legs * t.cfg.net_msg_cycles);
  t.mseq <- t.mseq + 1;
  t.msgs <- { seq = t.mseq; at; src; dst; hops; kind } :: t.msgs

(* A write makes every replica of (lut, key) stale. The home node's
   directory row names the holders, so the drops are point-to-point; the
   replica entry disappears from each holder's shared level (stale L1
   copies are left to the paper's no-coherence tolerance, measured by the
   divergence check like every other private-level copy). *)
let invalidate_replicas t ~gcore ~home ~lut_id ~key ~at =
  match Hashtbl.find_opt t.replicas (lut_id, key) with
  | None -> ()
  | Some mask ->
      Hashtbl.remove t.replicas (lut_id, key);
      for d = 0 to t.cfg.nodes - 1 do
        if mask land node_bit d <> 0 then begin
          t.st.replica_invalidations <- t.st.replica_invalidations + 1;
          send_msg t ~gcore ~kind:Inv_replica ~src:home ~dst:d ~lut:lut_id ~at
            ~sync:false;
          ignore
            (Shared_lut.invalidate_entry (Corun.shared_lut t.nodes.(d)) ~lut_id ~key)
        end
      done

(* Threshold-crossing remote hits replicate into the requester's local
   shared level (the payload already rode back on the probe reply, so the
   install itself is node-local) and, when the node carries a DRAM tier,
   queue an L3 copy for the per-request batched fill. *)
let maybe_replicate t ~nid ~local ~lut_id ~key ~payload =
  if t.cfg.replicate_threshold > 0 then begin
    let hk = (nid, lut_id, key) in
    let n = 1 + Option.value ~default:0 (Hashtbl.find_opt t.hot hk) in
    if n >= t.cfg.replicate_threshold then begin
      Hashtbl.remove t.hot hk;
      local.Memo_unit.sl_insert ~lut_id ~key ~payload;
      let m = Option.value ~default:0 (Hashtbl.find_opt t.replicas (lut_id, key)) in
      Hashtbl.replace t.replicas (lut_id, key) (m lor node_bit nid);
      register_sharer t ~lut:lut_id ~node:nid;
      t.st.replica_installs <- t.st.replica_installs + 1;
      if Option.is_some (Corun.dram_lut t.nodes.(nid)) then
        t.l3_pending.(nid) := (lut_id, key, payload) :: !(t.l3_pending.(nid))
    end
    else Hashtbl.replace t.hot hk n
  end

(* The per-core shared-L2 port of node [nid]: traffic whose key homes here
   falls through to the node-local port (bank arbitration included);
   everything else crosses the interconnect. Remote probes bypass the home
   node's bank arbiter — NIC service occupancy covers their serialization —
   and use the requester's local core index for the home structure's shadow
   accounting. *)
let make_port t nid ~core ~now ~local =
  let gcore = (nid * t.npc) + core in
  let replica_bit lut_id key =
    match Hashtbl.find_opt t.replicas (lut_id, key) with
    | Some m -> m land node_bit nid <> 0
    | None -> false
  in
  {
    Memo_unit.sl_lookup =
      (fun ~lut_id ~key ->
        let home = shard_of_key ~nodes:t.cfg.nodes key in
        t.st.shard_accesses.(home) <- t.st.shard_accesses.(home) + 1;
        if home = nid then begin
          let r = local.Memo_unit.sl_lookup ~lut_id ~key in
          (match r with
          | Some _ -> register_sharer t ~lut:lut_id ~node:nid
          | None -> ());
          r
        end
        else begin
          let served =
            if t.cfg.replicate_threshold > 0 && replica_bit lut_id key then begin
              match local.Memo_unit.sl_lookup ~lut_id ~key with
              | Some v ->
                  t.st.replica_hits <- t.st.replica_hits + 1;
                  register_sharer t ~lut:lut_id ~node:nid;
                  Some v
              | None ->
                  (* the replica was evicted locally: deregister so the
                     directory stops invalidating a copy that is gone *)
                  (match Hashtbl.find_opt t.replicas (lut_id, key) with
                  | Some m ->
                      Hashtbl.replace t.replicas (lut_id, key)
                        (m land lnot (node_bit nid))
                  | None -> ());
                  None
            end
            else None
          in
          match served with
          | Some v -> Some v
          | None ->
              t.st.remote_probes <- t.st.remote_probes + 1;
              send_msg t ~gcore ~kind:Probe ~src:nid ~dst:home ~lut:lut_id
                ~at:(now ()) ~sync:true;
              let r =
                Shared_lut.lookup (Corun.shared_lut t.nodes.(home)) ~core ~lut_id
                  ~key
              in
              (match r with
              | Some payload ->
                  t.st.remote_hits <- t.st.remote_hits + 1;
                  (* the inclusive L1 fill makes this node a sharer *)
                  register_sharer t ~lut:lut_id ~node:nid;
                  maybe_replicate t ~nid ~local ~lut_id ~key ~payload
              | None -> ());
              r
        end);
    sl_insert =
      (fun ~lut_id ~key ~payload ->
        let home = shard_of_key ~nodes:t.cfg.nodes key in
        t.st.shard_accesses.(home) <- t.st.shard_accesses.(home) + 1;
        (* the updating unit's L1 holds the entry either way *)
        register_sharer t ~lut:lut_id ~node:nid;
        (if home = nid then local.Memo_unit.sl_insert ~lut_id ~key ~payload
         else begin
           t.st.remote_inserts <- t.st.remote_inserts + 1;
           send_msg t ~gcore ~kind:Insert ~src:nid ~dst:home ~lut:lut_id
             ~at:(now ()) ~sync:false;
           Shared_lut.insert (Corun.shared_lut t.nodes.(home)) ~core ~lut_id ~key
             ~payload;
           register_sharer t ~lut:lut_id ~node:home
         end);
        if t.cfg.replicate_threshold > 0 then
          invalidate_replicas t ~gcore ~home ~lut_id ~key ~at:(now ()));
    sl_invalidate = (fun ~lut_id -> local.Memo_unit.sl_invalidate ~lut_id);
  }

(* Deliver one cross-node LUT invalidation: the destination drops the LUT
   from its shared level, its DRAM tier and every core's private L1; its
   collectors attribute the lost residency to the remote-invalidate
   reason. *)
let deliver_lut_invalidate t ~dst ~lut =
  let nd = t.nodes.(dst) in
  Shared_lut.invalidate_lut (Corun.shared_lut nd) ~lut_id:lut;
  (match Corun.dram_lut nd with
  | Some d -> Dram_lut.invalidate_lut d ~lut_id:lut
  | None -> ());
  for c = 0 to t.npc - 1 do
    Memo_unit.invalidate_remote (Corun.core_unit nd ~core:c) ~lut
  done;
  match Corun.collectors nd with
  | Some ps -> Array.iter (fun p -> Profile.on_remote_invalidate p ~lut) ps
  | None -> ()

(* Directory-side purge after a LUT-wide invalidate: every replica row and
   hot counter of that LUT is void. Hashtbl iteration order only decides
   removal order, never an observable count. *)
let purge_lut t ~lut =
  let reps =
    Hashtbl.fold (fun (l, k) _ acc -> if l = lut then (l, k) :: acc else acc)
      t.replicas []
  in
  List.iter (Hashtbl.remove t.replicas) reps;
  let hots =
    Hashtbl.fold (fun (n, l, k) _ acc -> if l = lut then (n, l, k) :: acc else acc)
      t.hot []
  in
  List.iter (Hashtbl.remove t.hot) hots

(* The cross-node half of a retired [invalidate]: the issuing node already
   dropped everything it can see (its unit, its peers' L1s, its shared
   level and tier). With the directory on, only registered sharers get a
   message; the filtered count is exactly what the broadcast baseline would
   have wasted. *)
let on_invalidate t nid ~core ~lut ~at =
  let gcore = (nid * t.npc) + core in
  t.st.inv_events <- t.st.inv_events + 1;
  let mask = Option.value ~default:0 (Hashtbl.find_opt t.sharers lut) in
  for d = 0 to t.cfg.nodes - 1 do
    if d <> nid then
      if t.cfg.directory && mask land node_bit d = 0 then
        t.st.inv_filtered <- t.st.inv_filtered + 1
      else begin
        t.st.inv_sent <- t.st.inv_sent + 1;
        send_msg t ~gcore ~kind:Inv_lut ~src:nid ~dst:d ~lut ~at ~sync:false;
        deliver_lut_invalidate t ~dst:d ~lut
      end
  done;
  Hashtbl.replace t.sharers lut 0;
  purge_lut t ~lut

let validate (cfg : config) =
  if cfg.nodes < 1 then invalid_arg "Cluster: need at least one node";
  if cfg.nodes > 62 then invalid_arg "Cluster: node bitmasks cap the count at 62";
  if cfg.replicate_threshold < 0 then
    invalid_arg "Cluster: negative replicate_threshold";
  if cfg.net_msg_cycles < 1 then invalid_arg "Cluster: net_msg_cycles must be positive";
  if cfg.net_ports < 1 then invalid_arg "Cluster: net_ports must be positive";
  if not (Float.is_finite cfg.net_hop_pj && cfg.net_hop_pj >= 0.0) then
    invalid_arg "Cluster: net_hop_pj must be finite and non-negative"

let create ?(metrics = false) ?(profile = false) (cfg : config) =
  validate cfg;
  let npc = cfg.node.Corun.ncores in
  let gcores = cfg.nodes * npc in
  (* The per-core ports close over the cluster record, which closes over
     the node array — tied with a forward reference. The port maker runs
     eagerly inside create_cluster (before the record exists), so the
     routed port is forced lazily on first access; no request can run
     before wiring completes. A 1-node cluster takes neither hook, so it
     is the Corun model verbatim. *)
  let tref = ref None in
  let the () =
    match !tref with Some t -> t | None -> failwith "Cluster: port used before wiring"
  in
  let nodes =
    Array.init cfg.nodes (fun nid ->
        if cfg.nodes = 1 then Corun.create_cluster ~metrics ~profile cfg.node
        else
          Corun.create_cluster ~metrics ~profile
            ~l2_port:(fun ~core ~now ~local ->
              let port = lazy (make_port (the ()) nid ~core ~now ~local) in
              {
                Memo_unit.sl_lookup =
                  (fun ~lut_id ~key ->
                    (Lazy.force port).Memo_unit.sl_lookup ~lut_id ~key);
                sl_insert =
                  (fun ~lut_id ~key ~payload ->
                    (Lazy.force port).Memo_unit.sl_insert ~lut_id ~key ~payload);
                sl_invalidate =
                  (fun ~lut_id ->
                    (Lazy.force port).Memo_unit.sl_invalidate ~lut_id);
              })
            ~on_invalidate:(fun ~core ~lut ~at -> on_invalidate (the ()) nid ~core ~lut ~at)
            cfg.node)
  in
  let t =
    {
      cfg;
      npc;
      gcores;
      nodes;
      net_arb =
        Arbiter.create ~banks:cfg.nodes ~ports:cfg.net_ports
          ~window:cfg.net_msg_cycles ();
      sharers = Hashtbl.create 16;
      replicas = Hashtbl.create 256;
      hot = Hashtbl.create 256;
      l3_pending = Array.init cfg.nodes (fun _ -> ref []);
      st =
        {
          shard_accesses = Array.make cfg.nodes 0;
          remote_probes = 0;
          remote_hits = 0;
          remote_inserts = 0;
          replica_installs = 0;
          replica_hits = 0;
          replica_invalidations = 0;
          inv_events = 0;
          inv_sent = 0;
          inv_filtered = 0;
          net_messages = 0;
          net_hops = 0;
          net_latency = Array.make gcores 0;
          restore_entries = 0;
          restore_amortised = 0;
          restore_serial = 0;
          replica_batch_amortised = 0;
          replica_batch_serial = 0;
        };
      msgs = [];
      mseq = 0;
    }
  in
  tref := Some t;
  t

let nodes t = t.cfg.nodes
let cores_per_node t = t.npc
let global_cores t = t.gcores
let node_cluster t ~node = t.nodes.(node)

(* ---- per-request execution --------------------------------------------- *)

(* Replica payloads queued for a node's DRAM tier land in one row-sorted
   bulk fill per request (pLUTo-style activation amortisation), mirroring
   the batched snapshot restore. Entries queue newest-first, so the reverse
   is install order — which bulk_fill's stamp pre-assignment needs. *)
let flush_l3_pending t =
  Array.iteri
    (fun nid pending ->
      match !pending with
      | [] -> ()
      | entries -> (
          pending := [];
          match Corun.dram_lut t.nodes.(nid) with
          | None -> ()
          | Some d ->
              let a, s = Dram_lut.bulk_fill d (Array.of_list (List.rev entries)) in
              t.st.replica_batch_amortised <- t.st.replica_batch_amortised + a;
              t.st.replica_batch_serial <- t.st.replica_batch_serial + s))
    t.l3_pending

let exec_request t ~workload ~gcore ~start =
  let nid = gcore / t.npc and core = gcore mod t.npc in
  let res = Corun.exec_request t.nodes.(nid) ~workload ~core ~start in
  flush_l3_pending t;
  res

(* ---- settlement --------------------------------------------------------- *)

type settlement = {
  bank : Arbiter.settlement array;  (* per node, local-core indexed *)
  net : Arbiter.settlement;  (* global-core indexed *)
  stalls : int array;
      (* per global core: bank stalls + NIC stalls + synchronous net
         round-trip latency — everything settlement adds to busy time *)
  shared_accesses : int;
  contended_accesses : int;
}

let settle t =
  let bank = Array.map Corun.settle_arbiter t.nodes in
  let net = Arbiter.settle t.net_arb ~ncores:t.gcores in
  let stalls =
    Array.init t.gcores (fun g ->
        let nid = g / t.npc and core = g mod t.npc in
        bank.(nid).Arbiter.stall_cycles.(core)
        + net.Arbiter.stall_cycles.(g)
        + t.st.net_latency.(g))
  in
  (* Settled stalls flow back to (core, region) on the collectors, exactly
     as Corun.run does for its single arbiter. *)
  Array.iteri
    (fun nid s ->
      match Corun.collectors t.nodes.(nid) with
      | Some ps ->
          List.iter
            (fun (c, tag, cycles) ->
              if tag >= 0 then Profile.note_contention ps.(c) ~lut:tag ~cycles)
            s.Arbiter.tag_stalls
      | None -> ())
    bank;
  List.iter
    (fun (g, tag, cycles) ->
      if tag >= 0 then
        match Corun.collectors t.nodes.(g / t.npc) with
        | Some ps -> Profile.note_contention ps.(g mod t.npc) ~lut:tag ~cycles
        | None -> ())
    net.Arbiter.tag_stalls;
  {
    bank;
    net;
    stalls;
    shared_accesses =
      Array.fold_left (fun a s -> a + s.Arbiter.accesses) 0 bank;
    contended_accesses =
      Array.fold_left (fun a s -> a + s.Arbiter.contended) 0 bank
      + net.Arbiter.contended;
  }

let flush_metrics t = Array.iter Corun.flush_metrics t.nodes

(* Registry rows named n<j>.core<i> / n<j>.cluster; a 1-node cluster keeps
   the prefix so cluster reports address nodes uniformly. *)
let snapshots t =
  List.concat
    (Array.to_list
       (Array.mapi
          (fun j nd ->
            List.map
              (fun (who, snap) -> (Printf.sprintf "n%d.%s" j who, snap))
              (Corun.cluster_snapshots nd))
          t.nodes))

(* ---- warm-LUT snapshots -------------------------------------------------

   Cluster capture prefixes each node's sections with "n<j>.". Restore
   accepts both that format (sections land on their node directly) and a
   plain single-node snapshot, whose "l2"/"l3" entries are shard-routed to
   their home nodes — each node's DRAM share through one bulk fill — and
   whose "l1.<c>" sections map global core c onto (node c/npc, core
   c mod npc). Every restored entry registers its node in the directory. *)

let register_section t ~node (sec : Snapshot.section) =
  Array.iter
    (fun (e : Snapshot.entry) -> register_sharer t ~lut:e.lut_id ~node)
    sec.Snapshot.entries

let capture_snapshot t =
  let sections =
    Array.to_list
      (Array.mapi
         (fun j nd ->
           List.map
             (fun (s : Snapshot.section) ->
               { s with Snapshot.name = Printf.sprintf "n%d.%s" j s.Snapshot.name })
             (Corun.capture_snapshot nd).Snapshot.sections)
         t.nodes)
  in
  { Snapshot.sections = List.concat sections }

let strip_prefix ~prefix s =
  let pl = String.length prefix in
  if String.length s > pl && String.sub s 0 pl = prefix then
    Some (String.sub s pl (String.length s - pl))
  else None

let restore_snapshot t (snap : Snapshot.t) =
  let restored = ref 0 in
  let prefixed = ref false in
  (* Node-prefixed sections: hand each node its own sub-snapshot. *)
  Array.iteri
    (fun j nd ->
      let prefix = Printf.sprintf "n%d." j in
      let mine =
        List.filter_map
          (fun (s : Snapshot.section) ->
            match strip_prefix ~prefix s.Snapshot.name with
            | Some name ->
                prefixed := true;
                register_section t ~node:j s;
                Some { s with Snapshot.name }
            | None -> None)
          snap.Snapshot.sections
      in
      if mine <> [] then begin
        let n, a, s = Corun.restore_snapshot_stats nd { Snapshot.sections = mine } in
        restored := !restored + n;
        t.st.restore_amortised <- t.st.restore_amortised + a;
        t.st.restore_serial <- t.st.restore_serial + s
      end)
    t.nodes;
  (* Plain single-node sections, shard-routed. *)
  if not !prefixed then begin
    let route_split (sec : Snapshot.section) =
      let per_node = Array.make t.cfg.nodes [] in
      Array.iter
        (fun (e : Snapshot.entry) ->
          let home = shard_of_key ~nodes:t.cfg.nodes e.Snapshot.key in
          per_node.(home) <- e :: per_node.(home))
        sec.Snapshot.entries;
      Array.map (fun l -> Array.of_list (List.rev l)) per_node
    in
    List.iter
      (fun (sec : Snapshot.section) ->
        let name = sec.Snapshot.name in
        if name = "l2" then
          Array.iteri
            (fun j entries ->
              let s = { Snapshot.name = "l2"; entries } in
              register_section t ~node:j s;
              restored :=
                !restored
                + Snapshot.restore_lut s (Shared_lut.lut (Corun.shared_lut t.nodes.(j))))
            (route_split sec)
        else if name = "l3" then
          Array.iteri
            (fun j entries ->
              match Corun.dram_lut t.nodes.(j) with
              | None -> ()
              | Some d ->
                  let s = { Snapshot.name = "l3"; entries } in
                  register_section t ~node:j s;
                  let n, a, sr = Snapshot.restore_dram_batched s d in
                  restored := !restored + n;
                  t.st.restore_amortised <- t.st.restore_amortised + a;
                  t.st.restore_serial <- t.st.restore_serial + sr)
            (route_split sec)
        else
          match strip_prefix ~prefix:"l1." name with
          | Some idx -> (
              match int_of_string_opt idx with
              | Some g when g >= 0 && g < t.gcores ->
                  let nd = t.nodes.(g / t.npc) in
                  register_section t ~node:(g / t.npc) sec;
                  restored :=
                    !restored
                    + Snapshot.restore_lut sec
                        (Memo_unit.l1_lut (Corun.core_unit nd ~core:(g mod t.npc)))
              | _ -> ())
          | None -> ())
      snap.Snapshot.sections
  end;
  t.st.restore_entries <- t.st.restore_entries + !restored;
  !restored

(* ---- the cluster co-run ------------------------------------------------- *)

type request_run = {
  rid : int;
  workload : string;
  gcore : int;
  start : int;
  finish : int;
  result : Runner.result;
}

type core_summary = {
  gcore : int;
  node : int;
  core : int;
  served : int;
  busy_cycles : int;
  bank_stall_cycles : int;  (* local shared-LUT arbitration *)
  net_stall_cycles : int;  (* NIC contention, settled post hoc *)
  net_latency_cycles : int;  (* synchronous remote-probe round trips *)
  finish_cycles : int;  (* busy + every settled addition *)
  lookups : int;
  hits : int;
  hit_rate : float;
  baseline_cycles : int;
  speedup : float;
}

type outcome = {
  cfg : config;
  requests : request_run list;
  cores : core_summary array;
  makespan_cycles : int;
  throughput_rps : float;
  speedup : float;
  aggregate_hit_rate : float;
  fairness : float;  (* Jain over per-core finish cycles *)
  shard_accesses : int array;
  shard_balance : float;  (* Jain over per-node homed accesses *)
  remote_probes : int;
  remote_hits : int;
  remote_inserts : int;
  replica_installs : int;
  replica_hits : int;
  replica_invalidations : int;
  replication_hit_share : float;  (* replica hits over all remote-homed hits *)
  inv_events : int;
  inv_sent : int;
  inv_filtered : int;
  inv_broadcast_equivalent : int;  (* events * (nodes - 1) *)
  net_messages : int;
  net_hops : int;
  net_pj : float;  (* hops * net_hop_pj; reported beside, never inside, total_pj *)
  net_latency_cycles : int;
  net_contended : int;
  net_stall_cycles : int;
  bank_stall_cycles : int;
  coherence_keys : int;
  coherence_divergent : int;
  restore_entries : int;
  restore_amortised : int;
  restore_serial : int;
  replica_batch_amortised : int;
  replica_batch_serial : int;
  snapshots : (string * Registry.snapshot) list;
  profiles : Profile.snapshot array option;  (* per global core *)
  messages : msg list;  (* send order, for the trace *)
}

let ratio num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

(* The paper's no-coherence argument, measured across the whole cluster:
   (lut, key) pairs simultaneously valid in several SRAM structures, and
   how many of those hold diverging payloads (replicas gone stale between
   a home write and their directory drop land here too). DRAM tiers are
   excluded — their relaxed cells are approximate by contract. *)
let coherence_check t =
  let tbl : (int * int64, int64 list) Hashtbl.t = Hashtbl.create 1024 in
  let add entries =
    List.iter
      (fun (lut_id, key, payload) ->
        let k = (lut_id, key) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
        Hashtbl.replace tbl k (payload :: prev))
      entries
  in
  Array.iter
    (fun nd ->
      for c = 0 to t.npc - 1 do
        add (Memo_unit.lut_entries (Corun.core_unit nd ~core:c))
      done;
      add (Shared_lut.entries (Corun.shared_lut nd)))
    t.nodes;
  Hashtbl.fold
    (fun _k payloads (keys, divergent) ->
      match payloads with
      | [] | [ _ ] -> (keys, divergent)
      | p :: rest ->
          ( keys + 1,
            if List.for_all (fun q -> q = p) rest then divergent else divergent + 1 ))
    tbl (0, 0)

let run_keep ?(metrics = false) ?(profile = false) (cfg : config) =
  let t = create ~metrics ~profile cfg in
  let stream =
    Schedule.stream ~workloads:cfg.node.Corun.workloads
      ~requests:cfg.node.Corun.requests
  in
  let baselines = Hashtbl.create 8 in
  let baseline_of name =
    match Hashtbl.find_opt baselines name with
    | Some c -> c
    | None ->
        let c =
          match Workloads.find name with
          | Some (_meta, make) ->
              (Runner.run Runner.Baseline (make cfg.node.Corun.variant)).Runner.cycles
          | None -> invalid_arg (Printf.sprintf "Cluster: unknown benchmark %S" name)
        in
        Hashtbl.replace baselines name c;
        c
  in
  let placements, busy =
    Schedule.dispatch ~ncores:t.gcores
      ~run:(fun (r : Schedule.request) ~core ~start ->
        let result = exec_request t ~workload:r.Schedule.workload ~gcore:core ~start in
        (result.Runner.cycles, result))
      stream
  in
  let settlement = settle t in
  let requests =
    List.map
      (fun (p : Runner.result Schedule.placement) ->
        {
          rid = p.Schedule.request.Schedule.rid;
          workload = p.Schedule.request.Schedule.workload;
          gcore = p.Schedule.core;
          start = p.Schedule.start;
          finish = p.Schedule.finish;
          result = p.Schedule.payload;
        })
      placements
  in
  let cores =
    Array.init t.gcores (fun g ->
        let nid = g / t.npc and core = g mod t.npc in
        let mine = List.filter (fun (r : request_run) -> r.gcore = g) requests in
        let served = List.length mine in
        let lookups = List.fold_left (fun a r -> a + r.result.Runner.lookups) 0 mine in
        let hits = List.fold_left (fun a r -> a + r.result.Runner.hits) 0 mine in
        let baseline_cycles =
          List.fold_left (fun a r -> a + baseline_of r.workload) 0 mine
        in
        let busy_cycles = busy.(g) in
        let finish_cycles = busy_cycles + settlement.stalls.(g) in
        {
          gcore = g;
          node = nid;
          core;
          served;
          busy_cycles;
          bank_stall_cycles = settlement.bank.(nid).Arbiter.stall_cycles.(core);
          net_stall_cycles = settlement.net.Arbiter.stall_cycles.(g);
          net_latency_cycles = t.st.net_latency.(g);
          finish_cycles;
          lookups;
          hits;
          hit_rate = ratio hits lookups;
          baseline_cycles;
          speedup =
            (if baseline_cycles = 0 && finish_cycles = 0 then 1.0
             else float_of_int baseline_cycles /. float_of_int (max 1 finish_cycles));
        })
  in
  let makespan_cycles = Array.fold_left (fun a c -> max a c.finish_cycles) 0 cores in
  let total_lookups = Array.fold_left (fun a c -> a + c.lookups) 0 cores in
  let total_hits = Array.fold_left (fun a c -> a + c.hits) 0 cores in
  let total_baseline = Array.fold_left (fun a c -> a + c.baseline_cycles) 0 cores in
  let keys, divergent = coherence_check t in
  flush_metrics t;
  ( {
      cfg;
      requests;
      cores;
      makespan_cycles;
      throughput_rps =
        (if makespan_cycles = 0 then 0.0
         else
           float_of_int cfg.node.Corun.requests
           /. (float_of_int makespan_cycles /. (machine.Machine.freq_ghz *. 1e9)));
      speedup =
        (if total_baseline = 0 && makespan_cycles = 0 then 1.0
         else float_of_int total_baseline /. float_of_int (max 1 makespan_cycles));
      aggregate_hit_rate = ratio total_hits total_lookups;
      fairness =
        Schedule.jain_fairness
          (Array.map (fun c -> float_of_int c.finish_cycles) cores);
      shard_accesses = Array.copy t.st.shard_accesses;
      shard_balance =
        Schedule.jain_fairness (Array.map float_of_int t.st.shard_accesses);
      remote_probes = t.st.remote_probes;
      remote_hits = t.st.remote_hits;
      remote_inserts = t.st.remote_inserts;
      replica_installs = t.st.replica_installs;
      replica_hits = t.st.replica_hits;
      replica_invalidations = t.st.replica_invalidations;
      replication_hit_share = ratio t.st.replica_hits (t.st.replica_hits + t.st.remote_hits);
      inv_events = t.st.inv_events;
      inv_sent = t.st.inv_sent;
      inv_filtered = t.st.inv_filtered;
      inv_broadcast_equivalent = t.st.inv_events * ((cfg.nodes * t.npc) - 1);
      net_messages = t.st.net_messages;
      net_hops = t.st.net_hops;
      net_pj = float_of_int t.st.net_hops *. cfg.net_hop_pj;
      net_latency_cycles = Array.fold_left ( + ) 0 t.st.net_latency;
      net_contended = settlement.net.Arbiter.contended;
      net_stall_cycles = Array.fold_left ( + ) 0 settlement.net.Arbiter.stall_cycles;
      bank_stall_cycles =
        Array.fold_left
          (fun a s -> a + Array.fold_left ( + ) 0 s.Arbiter.stall_cycles)
          0 settlement.bank;
      coherence_keys = keys;
      coherence_divergent = divergent;
      restore_entries = t.st.restore_entries;
      restore_amortised = t.st.restore_amortised;
      restore_serial = t.st.restore_serial;
      replica_batch_amortised = t.st.replica_batch_amortised;
      replica_batch_serial = t.st.replica_batch_serial;
      snapshots = snapshots t;
      profiles =
        (if profile then
           Some
             (Array.init t.gcores (fun g ->
                  match Corun.collectors t.nodes.(g / t.npc) with
                  | Some ps -> Profile.snapshot ps.(g mod t.npc)
                  | None -> Profile.snapshot (Profile.create ~regions:[])))
         else None);
      messages = List.rev t.msgs;
    },
    t )

let run ?metrics ?profile cfg = fst (run_keep ?metrics ?profile cfg)

let run_matrix ?jobs ?(profile = false) cfgs =
  Pool.run ?jobs (fun cfg -> run ~metrics:true ~profile cfg) cfgs

(* ---- the "cluster" report section --------------------------------------- *)

(* Shared between run reports and the serve layer: everything here comes
   from the live stats plus a settlement, so serve can attach the section
   without building a full outcome. *)
let section_fields ~(cfg : config) ~(st : stats) ~(net : Arbiter.settlement) =
  [
    ("nodes", Json.Int cfg.nodes);
    ("cores_per_node", Json.Int cfg.node.Corun.ncores);
    ( "shard_accesses",
      Json.Arr (Array.to_list (Array.map (fun n -> Json.Int n) st.shard_accesses)) );
    ( "shard_balance_jain",
      Json.Float (Schedule.jain_fairness (Array.map float_of_int st.shard_accesses)) );
    ("remote_probes", Json.Int st.remote_probes);
    ("remote_hits", Json.Int st.remote_hits);
    ("remote_inserts", Json.Int st.remote_inserts);
    ( "replication",
      Json.Obj
        [
          ("threshold", Json.Int cfg.replicate_threshold);
          ("installs", Json.Int st.replica_installs);
          ("hits", Json.Int st.replica_hits);
          ("invalidations", Json.Int st.replica_invalidations);
          ( "hit_share",
            Json.Float (ratio st.replica_hits (st.replica_hits + st.remote_hits)) );
          ("l3_batch_amortised_activations", Json.Int st.replica_batch_amortised);
          ("l3_batch_serial_activations", Json.Int st.replica_batch_serial);
        ] );
    ( "directory",
      Json.Obj
        [
          ("enabled", Json.Bool cfg.directory);
          ("events", Json.Int st.inv_events);
          ("sent", Json.Int st.inv_sent);
          ("filtered", Json.Int st.inv_filtered);
          (* the satellite-measured baseline to beat: a flat M x N-core
             machine broadcasts every event to all other cores (the
             corun.invalidate.* per-core counters), while the directory
             coalesces to one message per sharer node *)
          ( "broadcast_equivalent",
            Json.Int (st.inv_events * ((cfg.nodes * cfg.node.Corun.ncores) - 1)) );
          ( "node_broadcast_equivalent",
            Json.Int (st.inv_events * (cfg.nodes - 1)) );
        ] );
    ( "net",
      Json.Obj
        [
          ("messages", Json.Int st.net_messages);
          ("hops", Json.Int st.net_hops);
          ("msg_cycles", Json.Int cfg.net_msg_cycles);
          ("ports", Json.Int cfg.net_ports);
          ("hop_pj", Json.Float cfg.net_hop_pj);
          ("net_pj", Json.Float (float_of_int st.net_hops *. cfg.net_hop_pj));
          ("latency_cycles", Json.Int (Array.fold_left ( + ) 0 st.net_latency));
          ("contended", Json.Int net.Arbiter.contended);
          ( "stall_cycles",
            Json.Int (Array.fold_left ( + ) 0 net.Arbiter.stall_cycles) );
        ] );
  ]
  @
  (* Restore accounting rides along only for warm-started runs, so cold
     sections are not padded with zeros that mean "no restore happened". *)
  if st.restore_entries = 0 then []
  else
    [
      ( "restore",
        Json.Obj
          [
            ("entries", Json.Int st.restore_entries);
            ("amortised_activations", Json.Int st.restore_amortised);
            ("serial_activations", Json.Int st.restore_serial);
          ] );
    ]

let section (t : t) ~settled = Json.Obj (section_fields ~cfg:t.cfg ~st:t.st ~net:settled.net)

let outcome_section o =
  let st =
    {
      shard_accesses = o.shard_accesses;
      remote_probes = o.remote_probes;
      remote_hits = o.remote_hits;
      remote_inserts = o.remote_inserts;
      replica_installs = o.replica_installs;
      replica_hits = o.replica_hits;
      replica_invalidations = o.replica_invalidations;
      inv_events = o.inv_events;
      inv_sent = o.inv_sent;
      inv_filtered = o.inv_filtered;
      net_messages = o.net_messages;
      net_hops = o.net_hops;
      net_latency = [| o.net_latency_cycles |];
      restore_entries = o.restore_entries;
      restore_amortised = o.restore_amortised;
      restore_serial = o.restore_serial;
      replica_batch_amortised = o.replica_batch_amortised;
      replica_batch_serial = o.replica_batch_serial;
    }
  in
  let net =
    {
      Arbiter.accesses = o.net_messages;
      contended = o.net_contended;
      stall_cycles = [| o.net_stall_cycles |];
      retried = [| o.net_contended |];
      tag_stalls = [];
    }
  in
  Json.Obj (section_fields ~cfg:o.cfg ~st ~net)

(* ---- reports ------------------------------------------------------------ *)

let core_summary_json c =
  Json.Obj
    [
      ("gcore", Json.Int c.gcore);
      ("node", Json.Int c.node);
      ("core", Json.Int c.core);
      ("served", Json.Int c.served);
      ("busy_cycles", Json.Int c.busy_cycles);
      ("bank_stall_cycles", Json.Int c.bank_stall_cycles);
      ("net_stall_cycles", Json.Int c.net_stall_cycles);
      ("net_latency_cycles", Json.Int c.net_latency_cycles);
      ("finish_cycles", Json.Int c.finish_cycles);
      ("lookups", Json.Int c.lookups);
      ("hits", Json.Int c.hits);
      ("hit_rate", Json.Float c.hit_rate);
      ("baseline_cycles", Json.Int c.baseline_cycles);
      ("speedup", Json.Float c.speedup);
    ]

let schedule_head_rows = 24

let outcome_json o =
  let head = List.filteri (fun i _ -> i < schedule_head_rows) o.requests in
  Json.Obj
    [
      ("label", Json.Str (label o.cfg));
      ("nodes", Json.Int o.cfg.nodes);
      ("cores_per_node", Json.Int o.cfg.node.Corun.ncores);
      ( "workloads",
        Json.Arr (List.map (fun w -> Json.Str w) o.cfg.node.Corun.workloads) );
      ("requests", Json.Int o.cfg.node.Corun.requests);
      ("makespan_cycles", Json.Int o.makespan_cycles);
      ("throughput_rps", Json.Float o.throughput_rps);
      ("speedup", Json.Float o.speedup);
      ("aggregate_hit_rate", Json.Float o.aggregate_hit_rate);
      ("fairness", Json.Float o.fairness);
      ("coherence_keys", Json.Int o.coherence_keys);
      ("coherence_divergent", Json.Int o.coherence_divergent);
      ("bank_stall_cycles", Json.Int o.bank_stall_cycles);
      ("cluster", outcome_section o);
      ("cores", Json.Arr (Array.to_list (Array.map core_summary_json o.cores)));
      ( "schedule_head",
        Json.Arr
          (List.map
             (fun r ->
               Json.Str
                 (Printf.sprintf "r%d %s g%d [%d..%d] hit=%.3f" r.rid r.workload
                    r.gcore r.start r.finish r.result.Runner.hit_rate))
             head) );
      ( "schedule_rows_omitted",
        Json.Int (max 0 (List.length o.requests - schedule_head_rows)) );
    ]

let default_series_cap = Corun.default_series_cap

(* One report row per outcome: per-node registries are merged into the row
   with an n<j>. name prefix (names stay disjoint, so the re-sorted union
   keeps every series), the "cluster" section carries the shard/directory/
   net story, and the profile is the merge of every core's collector. *)
let report_runs ?(series_cap = default_series_cap) outcomes =
  List.map
    (fun o ->
      let metrics =
        List.sort
          (fun (a, _) (b, _) -> compare a b)
          (List.concat_map
             (fun (who, snap) ->
               List.map (fun (k, v) -> (who ^ "." ^ k, v)) snap)
             o.snapshots)
      in
      {
        Report.benchmark = String.concat "+" o.cfg.node.Corun.workloads;
        config = label o.cfg;
        summary =
          [
            ("makespan_cycles", Json.Int o.makespan_cycles);
            ("throughput_rps", Json.Float o.throughput_rps);
            ("speedup", Json.Float o.speedup);
            ("aggregate_hit_rate", Json.Float o.aggregate_hit_rate);
            ("fairness", Json.Float o.fairness);
            ("shard_balance_jain", Json.Float o.shard_balance);
          ];
        metrics = Registry.decimate ~cap:series_cap metrics;
        profile =
          Option.map
            (fun ps -> Profile.to_json (Profile.merge (Array.to_list ps)))
            o.profiles;
        service = None;
        cluster = Some (outcome_section o);
      })
    outcomes

let report ?series_cap outcomes =
  let runs = report_runs ?series_cap outcomes in
  let extra =
    [
      ("root_seed", Json.Str (Int64.to_string (Rng.root_seed ())));
      ("cluster", Json.Arr (List.map outcome_json outcomes));
    ]
  in
  Report.make ~extra runs

let write_report ?series_cap path outcomes =
  Json.write_file ~indent:2 path (report ?series_cap outcomes)

(* ---- the message trace --------------------------------------------------

   One Chrome-trace row per node's NIC; each message is a span from its
   issue cycle to issue + legs x msg_cycles (both legs for synchronous
   probes). Spans are emitted in (cycle, seq) order post hoc, so the trace
   is byte-identical for any --jobs setting. *)

let trace o =
  let clock = ref 0 in
  let tr =
    Tracer.create
      ~max_events:((2 * List.length o.messages) + (2 * o.cfg.nodes) + 64)
      ~clock:(fun () -> !clock)
      ()
  in
  for n = 0 to o.cfg.nodes - 1 do
    Tracer.name_thread tr ~tid:n (Printf.sprintf "node %d net" n)
  done;
  let events =
    List.concat_map
      (fun m ->
        let name =
          Printf.sprintf "m%d:%s n%d->n%d" m.seq (msg_kind_name m.kind) m.src m.dst
        in
        let legs = if m.kind = Probe then 2 * m.hops else m.hops in
        let dur = max 1 (legs * o.cfg.net_msg_cycles) in
        [
          ((m.at, 0, m.seq), fun () -> Tracer.begin_span ~tid:m.src tr name);
          ((m.at + dur, 1, m.seq), fun () -> Tracer.end_span ~tid:m.src tr name);
        ])
      o.messages
  in
  let events = List.sort (fun (k1, _) (k2, _) -> compare k1 k2) events in
  List.iter
    (fun (((at, _, _) : int * int * int), emit) ->
      clock := at;
      emit ())
    events;
  tr

let write_trace o path = Tracer.write (trace o) path
