(** The sharded multi-node memoization cluster.

    Generalizes the co-run model from N cores sharing one LUT to M nodes
    of N cores each: every LUT entry has a {e home shard} chosen by the
    high bits of its CRC tag ({!shard_of_key}), remote shared-level
    lookups and inserts cross a modeled interconnect (bidirectional ring,
    {!config.net_msg_cycles} per hop, {!config.net_hop_pj} per link
    traversal), and the co-run's cross-core invalidate broadcast becomes a
    {e directory}: per-LUT sharer-node sets, point-to-point invalidations
    to registered sharers only. Hot remote entries can optionally be
    replicated into the requester's local shared level
    ({!config.replicate_threshold}); the directory tracks replica holders
    and drops stale replicas when the home copy is rewritten.

    Interconnect contention reuses the arbiter's post-hoc settlement
    (banks = destination NICs, window = one message's service time), and
    synchronous remote probes additionally charge round-trip latency into
    the issuing core's finish time at settlement — so request execution
    stays serial and deterministic, reports are byte-identical for any
    [--jobs] setting, and a 1-node cluster is the {!Corun} model verbatim
    (neither hook is installed). Network energy is reported beside, never
    inside, [total_pj], mirroring the DRAM-tier convention. *)

module Corun = Axmemo_multicore.Corun

type config = {
  nodes : int;  (** 1..62 (sharer sets are int bitmasks) *)
  node : Corun.config;
      (** per-node shape (cores, LUT sizes, partition, mix);
          [node.requests] is the {e total} stream length across the
          cluster, so scale-out sweeps compare fixed work over growing
          node counts *)
  replicate_threshold : int;
      (** remote hits on one (lut, key) before it is replicated into the
          requester's local shared level; [0] disables replication *)
  net_msg_cycles : int;  (** per-hop service latency of one message *)
  net_hop_pj : float;  (** per-hop link energy *)
  net_ports : int;  (** simultaneous messages a destination NIC accepts *)
  directory : bool;
      (** [true]: point-to-point invalidations to registered sharers only;
          [false]: send to every other node — the broadcast-equivalent
          baseline, reaching the same final LUT contents by construction *)
}

val default : config
(** 2 nodes of {!Corun.default}, no replication, directory on, net
    constants from {!Axmemo_energy.Model.default_constants}. *)

val label : config -> string
(** [cluster(<M>node,<node label>)], with [",rep=<t>"] only when
    replication is on and [",bcast"] only in broadcast mode. *)

val validate : config -> unit
(** @raise Invalid_argument on a non-positive node count / message
    latency / port count, more than 62 nodes, a negative replication
    threshold, or a non-finite or negative hop energy. *)

val shard_of_key : nodes:int -> int64 -> int
(** The home node of a LUT key: the top byte of the 32-bit CRC word
    (bits 24..31, folded with bits 56..63) mod [nodes] — disjoint from the
    low bits that pick the set within a node, so routing and placement
    stay independent. Total: every key of every int64 maps to [0..nodes-1]
    (and to [0] when [nodes <= 1]). *)

val ring_hops : nodes:int -> int -> int -> int
(** Shortest-path distance between two nodes on a bidirectional ring. *)

(** {1 The live cluster}

    Exposed for the serve layer and tests; {!run} composes exactly these. *)

type t

val create : ?metrics:bool -> ?profile:bool -> config -> t
(** Builds the M nodes ({!Corun.create_cluster} each, with the shard-
    routing L2 port and the directory invalidate hook installed when
    [nodes > 1]) plus the interconnect arbiter and directory state.
    @raise Invalid_argument as {!validate}. *)

val nodes : t -> int
val cores_per_node : t -> int
val global_cores : t -> int

val node_cluster : t -> node:int -> Corun.cluster
(** The underlying per-node co-run cluster (tests poke core units and
    shared LUTs through it). *)

val exec_request :
  t -> workload:string -> gcore:int -> start:int -> Axmemo.Runner.result
(** One invocation on global core [gcore] (node [gcore / cores_per_node],
    local core [gcore mod cores_per_node]); afterwards, replica payloads
    queued for DRAM tiers are flushed through one row-sorted
    {!Axmemo_tier.Dram_lut.bulk_fill} per node. Callers must issue
    requests in their dispatcher's canonical order. *)

type settlement = {
  bank : Axmemo_multicore.Arbiter.settlement array;
      (** per node, local-core indexed *)
  net : Axmemo_multicore.Arbiter.settlement;  (** global-core indexed *)
  stalls : int array;
      (** per global core: bank stalls + NIC stalls + synchronous remote
          round-trip latency — everything settlement adds to busy time *)
  shared_accesses : int;
  contended_accesses : int;
}

val settle : t -> settlement
(** Settles each node's bank arbiter and the interconnect; call once,
    after the last request. Settled stalls flow back to (core, region) on
    the profile collectors when profiling is on. *)

val flush_metrics : t -> unit

val snapshots : t -> (string * Axmemo_telemetry.Registry.snapshot) list
(** Per-node registry snapshots, names prefixed ["n<j>."] (e.g.
    ["n0.core1"], ["n1.cluster"]); empty unless created with
    [~metrics:true]. Requires {!flush_metrics} first. *)

val section : t -> settled:settlement -> Axmemo_util.Json.t
(** The additive ["cluster"] report section from the live stats: shard
    balance, remote traffic, replication, directory accounting (sent /
    filtered vs broadcast-equivalent), interconnect latency / contention /
    energy, and — after a warm restore — the batched-activation counts. *)

(** {1 Warm-LUT snapshots} *)

val capture_snapshot : t -> Axmemo_tier.Snapshot.t
(** Every node's sections, names prefixed ["n<j>."]. *)

val restore_snapshot : t -> Axmemo_tier.Snapshot.t -> int
(** Restores a cluster snapshot (prefixed sections land on their node) or
    a plain single-node snapshot, whose ["l2"]/["l3"] entries are
    shard-routed to their homes — each node's DRAM share through one
    batched fill — and whose ["l1.<c>"] sections map global core [c] onto
    (node, local core). Every restored entry registers its node as a
    sharer in the directory. Returns the entry count restored. *)

(** {1 Running} *)

type request_run = {
  rid : int;
  workload : string;
  gcore : int;
  start : int;
  finish : int;
  result : Axmemo.Runner.result;
}

type core_summary = {
  gcore : int;
  node : int;
  core : int;
  served : int;
  busy_cycles : int;
  bank_stall_cycles : int;  (** local shared-LUT arbitration *)
  net_stall_cycles : int;  (** NIC contention, settled post hoc *)
  net_latency_cycles : int;  (** synchronous remote-probe round trips *)
  finish_cycles : int;  (** busy + every settled addition *)
  lookups : int;
  hits : int;
  hit_rate : float;
  baseline_cycles : int;
  speedup : float;
}

type outcome = {
  cfg : config;
  requests : request_run list;
  cores : core_summary array;
  makespan_cycles : int;
  throughput_rps : float;
  speedup : float;
  aggregate_hit_rate : float;
  fairness : float;  (** Jain over per-core finish cycles *)
  shard_accesses : int array;  (** shared-level accesses homed per node *)
  shard_balance : float;  (** Jain over [shard_accesses] *)
  remote_probes : int;
  remote_hits : int;
  remote_inserts : int;
  replica_installs : int;
  replica_hits : int;
  replica_invalidations : int;
  replication_hit_share : float;
      (** replica hits over all remote-homed hits (replica + probe) *)
  inv_events : int;  (** retired invalidate instructions *)
  inv_sent : int;  (** point-to-point node messages delivered *)
  inv_filtered : int;  (** skipped: destination not a registered sharer *)
  inv_broadcast_equivalent : int;
      (** [inv_events * (nodes * cores_per_node - 1)] — the per-core
          fan-out a flat broadcast machine would deliver (the measured
          [corun.invalidate.*] baseline); the directory coalesces to one
          message per sharer node and filters non-sharers on top *)
  net_messages : int;
  net_hops : int;  (** link traversals, probe responses included *)
  net_pj : float;  (** [net_hops * net_hop_pj]; beside, not in, total_pj *)
  net_latency_cycles : int;
  net_contended : int;
  net_stall_cycles : int;
  bank_stall_cycles : int;
  coherence_keys : int;
      (** (lut, key) pairs simultaneously valid in several SRAM structures
          cluster-wide (DRAM tiers excluded: approximate by contract) *)
  coherence_divergent : int;  (** the subset holding diverging payloads *)
  restore_entries : int;
  restore_amortised : int;  (** DRAM row activations, batched restore *)
  restore_serial : int;  (** an entry-at-a-time replay's cost *)
  replica_batch_amortised : int;  (** same accounting, replica L3 copies *)
  replica_batch_serial : int;
  snapshots : (string * Axmemo_telemetry.Registry.snapshot) list;
  profiles : Axmemo_obs.Profile.snapshot array option;  (** per global core *)
  messages : msg list;  (** send order, for the trace *)
}

and msg = {
  seq : int;
  at : int;
  src : int;
  dst : int;
  hops : int;
  kind : msg_kind;
}

and msg_kind = Probe | Insert | Inv_lut | Inv_replica

val run_keep : ?metrics:bool -> ?profile:bool -> config -> outcome * t
val run : ?metrics:bool -> ?profile:bool -> config -> outcome

val run_matrix : ?jobs:int -> ?profile:bool -> config list -> outcome list
(** Each cell with [~metrics:true]; byte-identical for any [?jobs]. *)

(** {1 Reports and traces} *)

val default_series_cap : int

val report_runs :
  ?series_cap:int -> outcome list -> Axmemo_telemetry.Report.run list
(** One run row per outcome: per-node registries merged under ["n<j>."]
    name prefixes, the ["cluster"] section attached (regression-gated as
    [cluster.<path>] by [Obs.Diff]), profiles merged across all cores. *)

val report : ?series_cap:int -> outcome list -> Axmemo_util.Json.t
(** Schema-v1 report; extra fields: [root_seed] and the full per-outcome
    ["cluster"] array (cores, schedule head, message accounting). *)

val write_report : ?series_cap:int -> string -> outcome list -> unit

val trace : outcome -> Axmemo_telemetry.Tracer.t
(** Chrome-trace with one row per node's NIC: each message is a span from
    its issue cycle to issue + legs x [net_msg_cycles] (both legs for
    synchronous probes), emitted post hoc in deterministic order. *)

val write_trace : outcome -> string -> unit
