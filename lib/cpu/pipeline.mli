(** In-order dual-issue timing model.

    Consumes {!Axmemo_ir.Interp.event}s in execution order and charges cycles
    according to the HPI-like {!Machine} configuration: issue-width-limited
    in-order issue, scoreboarded operand readiness, functional-unit
    contention (non-pipelined dividers/sqrt), loads and stores through an
    {!Axmemo_cache.Hierarchy}, and the Table 4 latencies for the five AxMemo
    instructions, including the CRC input queue that can back-pressure the
    core.

    Branch prediction is assumed perfect (the evaluated kernels are
    loop-dominated); this is noted in DESIGN.md. *)

type instr_class =
  | C_ialu
  | C_imul
  | C_idiv
  | C_fp
  | C_fdiv_sqrt
  | C_ftrig
  | C_load
  | C_store
  | C_branch
  | C_call_ret
  | C_memo_send  (** reg_crc (ld_crc is counted as [C_load]) *)
  | C_memo_lookup
  | C_memo_update
  | C_memo_invalidate
  | C_memo_branch  (** the branch consuming the lookup condition code *)

type stats = {
  cycles : int;
  dyn_normal : int;
      (** dynamic count of ordinary instructions (ld_crc included, as in the
          paper's Figure 8 accounting) *)
  dyn_memo : int;  (** reg_crc + lookup + update + invalidate + memo branches *)
  per_class : (instr_class * int) list;
  crc_stall_cycles : int;  (** cycles the core waited on the CRC input queue *)
}

val class_name : instr_class -> string
(** Stable lowercase name ([ialu], [memo_lookup], ...) used in metric and
    report keys. *)

val all_classes : instr_class list
(** Every class, in {!class_index} order (index [i] of this list is the
    class whose per-region matrix column is [i]). *)

val class_index : instr_class -> int

val nclasses : int
(** [List.length all_classes]; per-region matrices carry one extra column
    ({!drain_class}) for end-of-run pipeline drain. *)

val drain_class : int

(** {1 Region attribution (the profiler's collector)} *)

type profile
(** Accumulates wall-clock cycles and instruction counts per
    [(static region, instruction class)] cell. A collector outlives any one
    pipeline — a co-run core reattaches it to each request's fresh pipeline
    and the matrices keep accumulating — so it is created standalone and
    passed to {!create}.

    Attribution rule: after each retired instruction/terminator the advance
    of the pipeline clock since the previous charge lands in one cell. The
    region is the LUT's region for memo instructions ([region_of_lut]),
    otherwise the region of the innermost frame whose function
    [region_of_func] recognised (entry code and helpers inherit their
    caller's region; the outermost frames belong to the synthetic {e
    program} region [nregions]). Both callbacks return [-1] for "no
    opinion". After {!profile_close}, the cycle matrix sums exactly to
    {!cycles} of every pipeline the collector was attached to. *)

val profile :
  nregions:int ->
  region_of_func:(string -> int) ->
  region_of_lut:(int -> int) ->
  profile

val profile_counts : profile -> int array array
(** Copy of the [(nregions+1) x (nclasses+1)] instruction-count matrix. *)

val profile_cycles : profile -> int array array
(** Copy of the cycle matrix (same shape). *)

type t

val create :
  ?metrics:Axmemo_telemetry.Registry.t ->
  ?profile:profile ->
  ?machine:Machine.t ->
  ?lookup_level:(unit -> [ `L1 | `L2 | `L3 | `Miss ]) ->
  ?l2_lut_present:bool ->
  ?l3_lookup_cycles:(unit -> int) ->
  ?l1_lut_ways:int ->
  ?crc_bytes_per_cycle:int ->
  program:Axmemo_ir.Ir.program ->
  hierarchy:Axmemo_cache.Hierarchy.t ->
  unit ->
  t
(** [create ~program ~hierarchy ()] builds a timing consumer. [lookup_level]
    reports the level serviced by the most recent LUT lookup (wired to
    {!Axmemo_memo}); without it lookups are charged as L1-LUT misses.
    [l3_lookup_cycles] reads the DRAM cost of the most recent lookup's L3
    probe (row-buffer dependent); it is added on [`L3] hits and on misses
    that fell through an attached DRAM tier, and defaults to a constant 0 —
    with no tier attached the charge is bit-identical to the two-level
    model.
    [crc_bytes_per_cycle] defaults to the unrolled unit's 4 (Table 4 /
    Section 6.1); pass 1 to model the plain serial-per-byte unit.
    With [?metrics], the model registers its instruments under [pipeline.*]
    and samples CRC back-pressure stalls live ([pipeline.crc_stall], a
    cycle-indexed series); cycle results are bit-identical either way. *)

val hooks : t -> Axmemo_ir.Interp.hooks
(** Allocation-free attachment; pass as the interpreter's [hooks]. This is
    the hot-path form: no event record is built per dynamic instruction.
    With a [?profile] collector attached the callbacks also attribute every
    instruction to its static region; without one they are exactly the
    unprofiled closures. *)

val hook : t -> Axmemo_ir.Interp.event -> unit
(** Feed one event; pass as the interpreter's [hook]. Convenience/legacy
    form of {!hooks} — each event costs an allocation upstream and it does
    {e not} feed the region profiler. *)

val profile_close : t -> unit
(** Charge the cycles between the last retired instruction and the final
    pipeline drain to the program region's {!drain_class} column, restoring
    the matrix-sums-to-{!cycles} invariant. Call once per pipeline, after
    the run; no-op without a collector. *)

val stats : t -> stats

val cycles : t -> int
(** Cycles elapsed so far. *)

val seconds : t -> float
(** [cycles] over the configured core frequency. *)

val flush_metrics : t -> unit
(** Mirror the cumulative counters into the attached registry:
    per-class [pipeline.class.<name>.count] and [.cycles] (occupancy-cycle
    attribution), [pipeline.cycles], [pipeline.crc_stall_cycles],
    [pipeline.dyn_normal]/[pipeline.dyn_memo]. Call once, when the run
    ends. No-op without an attached registry. *)
