module Ir = Axmemo_ir.Ir
module Interp = Axmemo_ir.Interp
module Hierarchy = Axmemo_cache.Hierarchy
module Timing = Axmemo_isa.Timing
module Registry = Axmemo_telemetry.Registry

type instr_class =
  | C_ialu
  | C_imul
  | C_idiv
  | C_fp
  | C_fdiv_sqrt
  | C_ftrig
  | C_load
  | C_store
  | C_branch
  | C_call_ret
  | C_memo_send
  | C_memo_lookup
  | C_memo_update
  | C_memo_invalidate
  | C_memo_branch

type stats = {
  cycles : int;
  dyn_normal : int;
  dyn_memo : int;
  per_class : (instr_class * int) list;
  crc_stall_cycles : int;
}

type frame = {
  ready : int array;  (* per-register ready cycle *)
  call_binding : (int array * int array) option;
      (* (dst registers, caller's ready array) to fill at Leave *)
}

(* Telemetry attachment: live CRC back-pressure samples plus per-class
   occupancy-cycle attribution, mirrored into counters by [flush_metrics].
   Purely observational — timing results are bit-identical either way. *)
type telem = {
  class_cycles : int array;  (* occupancy cycles charged per class *)
  count_c : Registry.counter array;  (* pipeline.class.<name>.count *)
  cycles_c : Registry.counter array;  (* pipeline.class.<name>.cycles *)
  total_cycles_c : Registry.counter;
  crc_stall_c : Registry.counter;
  dyn_normal_c : Registry.counter;
  dyn_memo_c : Registry.counter;
  crc_stall_s : Registry.series;  (* stall magnitude over issue cycles *)
}

(* Attribution-profiler attachment (lib/obs): wall-clock cycle deltas and
   instruction counts charged to (static region, instruction class). The
   collector outlives any one pipeline — a co-run reuses it across the
   per-request pipelines — so it is created standalone ({!profile}) and
   handed to [create]. Purely observational. *)
type profile = {
  p_nregions : int;  (* region ids are 0..n-1; index n is the program body *)
  p_region_of_func : string -> int;  (* kernel name -> region id, -1 = inherit *)
  p_region_of_lut : int -> int;  (* logical LUT id -> region id, -1 = current *)
  mutable p_stack : int list;  (* region of each live frame, innermost first *)
  mutable p_last : int;  (* pipeline clock at the previous charge *)
  p_counts : int array array;  (* (nregions+1) x (nclasses+1) instructions *)
  p_cycles : int array array;  (* (nregions+1) x (nclasses+1) wall cycles *)
}

let nclasses = 15
let drain_class = nclasses  (* synthetic column: end-of-run pipeline drain *)

let profile ~nregions ~region_of_func ~region_of_lut =
  {
    p_nregions = nregions;
    p_region_of_func = region_of_func;
    p_region_of_lut = region_of_lut;
    p_stack = [];
    p_last = 0;
    p_counts = Array.make_matrix (nregions + 1) (nclasses + 1) 0;
    p_cycles = Array.make_matrix (nregions + 1) (nclasses + 1) 0;
  }

let profile_counts p = Array.map Array.copy p.p_counts
let profile_cycles p = Array.map Array.copy p.p_cycles

type t = {
  machine : Machine.t;
  hier : Hierarchy.t;
  lookup_level : unit -> [ `L1 | `L2 | `L3 | `Miss ];
  l2_lut_present : bool;
  (* DRAM cost of the most recent lookup's L3 probe (0 when no DRAM tier is
     attached or no probe was issued) — row-buffer dependent, so a closure
     read per lookup rather than a constant. *)
  l3_lookup_cycles : unit -> int;
  l1_lut_ways : int;
  crc_bytes_per_cycle : int;
  nregs_of : (string, int) Hashtbl.t;
  mutable slot_cycle : int;
  mutable slot_used : int;
  mutable horizon : int;  (* latest completion seen *)
  alu : int array;
  mul : int array;
  div : int array;
  fpu : int array;
  lsu : int array;
  mutable frames : frame list;
  mutable pending_call : (int array * int array) option;
  mutable pending_args_ready : int;
  mutable last_ret_ready : int;
  mutable crc_done : int;
  mutable memo_port_free : int;
  mutable crc_stalls : int;
  counts : int array;  (* indexed by class *)
  mutable dyn_normal : int;
  mutable dyn_memo : int;
  telem : telem option;
  profile : profile option;
}

let class_index = function
  | C_ialu -> 0
  | C_imul -> 1
  | C_idiv -> 2
  | C_fp -> 3
  | C_fdiv_sqrt -> 4
  | C_ftrig -> 5
  | C_load -> 6
  | C_store -> 7
  | C_branch -> 8
  | C_call_ret -> 9
  | C_memo_send -> 10
  | C_memo_lookup -> 11
  | C_memo_update -> 12
  | C_memo_invalidate -> 13
  | C_memo_branch -> 14

let all_classes =
  [
    C_ialu; C_imul; C_idiv; C_fp; C_fdiv_sqrt; C_ftrig; C_load; C_store; C_branch;
    C_call_ret; C_memo_send; C_memo_lookup; C_memo_update; C_memo_invalidate;
    C_memo_branch;
  ]

let class_name = function
  | C_ialu -> "ialu"
  | C_imul -> "imul"
  | C_idiv -> "idiv"
  | C_fp -> "fp"
  | C_fdiv_sqrt -> "fdiv_sqrt"
  | C_ftrig -> "ftrig"
  | C_load -> "load"
  | C_store -> "store"
  | C_branch -> "branch"
  | C_call_ret -> "call_ret"
  | C_memo_send -> "memo_send"
  | C_memo_lookup -> "memo_lookup"
  | C_memo_update -> "memo_update"
  | C_memo_invalidate -> "memo_invalidate"
  | C_memo_branch -> "memo_branch"

let make_telem reg =
  (* [all_classes] lists classes in [class_index] order, so these arrays
     index the same way as [counts]. *)
  let classes = Array.of_list all_classes in
  let counter = Registry.counter reg in
  {
    class_cycles = Array.make (Array.length classes) 0;
    count_c =
      Array.map (fun c -> counter ("pipeline.class." ^ class_name c ^ ".count")) classes;
    cycles_c =
      Array.map (fun c -> counter ("pipeline.class." ^ class_name c ^ ".cycles")) classes;
    total_cycles_c = counter "pipeline.cycles";
    crc_stall_c = counter "pipeline.crc_stall_cycles";
    dyn_normal_c = counter "pipeline.dyn_normal";
    dyn_memo_c = counter "pipeline.dyn_memo";
    crc_stall_s = Registry.series reg "pipeline.crc_stall" ();
  }

let create ?metrics ?profile:prof ?(machine = Machine.hpi) ?lookup_level
    ?(l2_lut_present = false) ?(l3_lookup_cycles = fun () -> 0) ?(l1_lut_ways = 4)
    ?(crc_bytes_per_cycle = Timing.crc_bytes_per_cycle) ~program ~hierarchy () =
  let nregs_of = Hashtbl.create 16 in
  Array.iter
    (fun (f : Ir.func) -> Hashtbl.replace nregs_of f.fname f.nregs)
    (program : Ir.program).funcs;
  (* A reattached collector keeps its accumulated matrices but restarts its
     clock and frame stack with this pipeline. *)
  (match prof with
  | Some p ->
      p.p_last <- 0;
      p.p_stack <- []
  | None -> ());
  {
    machine;
    hier = hierarchy;
    lookup_level = (match lookup_level with Some f -> f | None -> fun () -> `Miss);
    l2_lut_present;
    l3_lookup_cycles;
    l1_lut_ways;
    crc_bytes_per_cycle;
    nregs_of;
    slot_cycle = 0;
    slot_used = 0;
    horizon = 0;
    alu = Array.make machine.n_alu 0;
    mul = Array.make machine.n_mul 0;
    div = Array.make machine.n_div 0;
    fpu = Array.make machine.n_fpu 0;
    lsu = Array.make machine.n_lsu 0;
    frames = [];
    pending_call = None;
    pending_args_ready = 0;
    last_ret_ready = 0;
    crc_done = 0;
    memo_port_free = 0;
    crc_stalls = 0;
    counts = Array.make 15 0;
    dyn_normal = 0;
    dyn_memo = 0;
    telem = Option.map make_telem metrics;
    profile = prof;
  }

(* Attribute [cyc] occupancy cycles to [cls]. Only meaningful with telemetry
   attached; without it the site costs one pattern match. *)
let attr t cls cyc =
  match t.telem with
  | Some tl ->
      let i = class_index cls in
      tl.class_cycles.(i) <- tl.class_cycles.(i) + cyc
  | None -> ()

let count t cls =
  t.counts.(class_index cls) <- t.counts.(class_index cls) + 1;
  match cls with
  | C_memo_send | C_memo_lookup | C_memo_update | C_memo_invalidate | C_memo_branch ->
      t.dyn_memo <- t.dyn_memo + 1
  | C_ialu | C_imul | C_idiv | C_fp | C_fdiv_sqrt | C_ftrig | C_load | C_store
  | C_branch | C_call_ret ->
      t.dyn_normal <- t.dyn_normal + 1

(* Issue one instruction no earlier than [ready]; returns the issue cycle,
   respecting in-order dual-issue. *)
let[@inline] issue t ready =
  let c = max ready t.slot_cycle in
  if c > t.slot_cycle then begin
    t.slot_cycle <- c;
    t.slot_used <- 1;
    c
  end
  else if t.slot_used < t.machine.issue_width then begin
    t.slot_used <- t.slot_used + 1;
    c
  end
  else begin
    t.slot_cycle <- c + 1;
    t.slot_used <- 1;
    c + 1
  end

(* Earliest-available unit in a pool; returns its index. *)
let pool_min pool =
  let best = ref 0 in
  for i = 1 to Array.length pool - 1 do
    if pool.(i) < pool.(!best) then best := i
  done;
  !best

let current_frame t =
  match t.frames with
  | f :: _ -> f
  | [] -> failwith "Pipeline: event outside any frame"

let op_ready frame = function Ir.Reg r -> frame.ready.(r) | Ir.Imm _ -> 0

let srcs_ready t instr =
  let frame = current_frame t in
  List.fold_left (fun acc r -> max acc frame.ready.(r)) 0 (Ir.instr_srcs instr)

let complete t frame dsts at =
  List.iter (fun r -> frame.ready.(r) <- at) dsts;
  if at > t.horizon then t.horizon <- at

(* Issue through a functional-unit pool. [busy] is the occupancy (1 for
   pipelined units, [latency] for non-pipelined ones). *)
let exec_fu t instr pool ~latency ~busy cls =
  let frame = current_frame t in
  let ready = srcs_ready t instr in
  let u = pool_min pool in
  let c = issue t (max ready pool.(u)) in
  pool.(u) <- c + busy;
  complete t frame (Ir.instr_dst instr) (c + latency);
  count t cls;
  attr t cls latency

(* Sends to the CRC unit: the queue drains one byte per cycle; the core
   stalls only when the queue is full (Table 4). [avail] is when the bytes
   become available to the queue relative to the issue cycle. *)
let crc_send t ~issue_cycle ~bytes ~avail_delay =
  let start = max t.crc_done (issue_cycle + avail_delay) in
  let cycles = max 1 ((bytes + t.crc_bytes_per_cycle - 1) / t.crc_bytes_per_cycle) in
  t.crc_done <- start + cycles

let crc_queue_constraint t ~bytes =
  (* Issue must wait until the projected backlog fits the queue. *)
  t.crc_done + bytes - Timing.input_queue_bytes

let m t = t.machine

let rec exec_instr t (instr : Ir.instr) addr =
  match instr with
  | Const _ | Mov _ | Select _ -> exec_fu t instr t.alu ~latency:(m t).lat_alu ~busy:1 C_ialu
  | Binop { op; _ } -> (
      match op with
      | Mul -> exec_fu t instr t.mul ~latency:(m t).lat_mul ~busy:1 C_imul
      | Div | Rem ->
          exec_fu t instr t.div ~latency:(m t).lat_div ~busy:(m t).lat_div C_idiv
      | Add | Sub | And | Or | Xor | Shl | Lshr | Ashr ->
          exec_fu t instr t.alu ~latency:(m t).lat_alu ~busy:1 C_ialu)
  | Fbinop { op; _ } -> (
      match op with
      | Fdiv -> exec_fu t instr t.fpu ~latency:(m t).lat_fdiv ~busy:(m t).lat_fdiv C_fdiv_sqrt
      | Fadd | Fsub | Fmul -> exec_fu t instr t.fpu ~latency:(m t).lat_fp ~busy:1 C_fp)
  | Funop { op; _ } -> (
      match op with
      | Fsqrt ->
          exec_fu t instr t.fpu ~latency:(m t).lat_fsqrt ~busy:(m t).lat_fsqrt C_fdiv_sqrt
      | Fsin | Fcos | Fexp | Flog ->
          exec_fu t instr t.fpu ~latency:(m t).lat_ftrig ~busy:(m t).lat_ftrig C_ftrig
      | Fneg | Fabs | Ffloor | Fround ->
          exec_fu t instr t.fpu ~latency:(m t).lat_fp ~busy:1 C_fp)
  | Icmp _ -> exec_fu t instr t.alu ~latency:(m t).lat_alu ~busy:1 C_ialu
  | Fcmp _ -> exec_fu t instr t.fpu ~latency:(m t).lat_fp ~busy:1 C_fp
  | Cast { op; _ } -> (
      match op with
      | I_to_f | F_to_i | F32_of_f64 | F64_of_f32 ->
          exec_fu t instr t.fpu ~latency:(m t).lat_fp ~busy:1 C_fp
      | Bits_of_f32 | F32_of_bits | Bits_of_f64 | F64_of_bits | Sext_32_64 | Trunc_64_32
        ->
          exec_fu t instr t.alu ~latency:(m t).lat_alu ~busy:1 C_ialu)
  | Load _ ->
      let frame = current_frame t in
      let ready = srcs_ready t instr in
      let u = pool_min t.lsu in
      let c = issue t (max ready t.lsu.(u)) in
      t.lsu.(u) <- c + 1;
      let latency = Hierarchy.read t.hier ~addr in
      complete t frame (Ir.instr_dst instr) (c + latency);
      count t C_load;
      attr t C_load latency
  | Store _ ->
      let ready = srcs_ready t instr in
      let u = pool_min t.lsu in
      let c = issue t (max ready t.lsu.(u)) in
      let latency = Hierarchy.write t.hier ~addr in
      t.lsu.(u) <- c + latency;
      if c + latency > t.horizon then t.horizon <- c + latency;
      count t C_store;
      attr t C_store latency
  | Call { args; dsts; _ } ->
      (* The bl instruction: a branch-class issue slot. *)
      let frame = current_frame t in
      let ready =
        Array.fold_left
          (fun acc a -> max acc (op_ready frame a))
          0 args
      in
      let c = issue t ready in
      t.pending_args_ready <- max ready c;
      t.pending_call <- Some (Array.copy dsts, frame.ready);
      count t C_call_ret;
      attr t C_call_ret 1
  | Memo mi -> exec_memo t mi addr

and exec_memo t (mi : Ir.memo_instr) addr =
  match mi with
  | Ld_crc { ty; _ } ->
      let instr = Ir.Memo mi in
      let frame = current_frame t in
      let bytes = Ir.ty_size ty in
      let ready = srcs_ready t instr in
      let u = pool_min t.lsu in
      let queue_ok = crc_queue_constraint t ~bytes in
      let unconstrained = max ready t.lsu.(u) in
      let c = issue t (max unconstrained queue_ok) in
      if queue_ok > unconstrained then begin
        let stall = queue_ok - unconstrained in
        t.crc_stalls <- t.crc_stalls + stall;
        match t.telem with
        | Some tl -> Registry.sample tl.crc_stall_s ~at:c (float_of_int stall)
        | None -> ()
      end;
      t.lsu.(u) <- c + 1;
      let latency = Hierarchy.read t.hier ~addr in
      complete t frame (Ir.instr_dst instr) (c + latency);
      crc_send t ~issue_cycle:c ~bytes ~avail_delay:latency;
      count t C_load;
      attr t C_load latency
  | Reg_crc { ty; _ } ->
      let instr = Ir.Memo mi in
      let bytes = Ir.ty_size ty in
      let ready = srcs_ready t instr in
      let queue_ok = crc_queue_constraint t ~bytes in
      let c = issue t (max ready queue_ok) in
      if queue_ok > ready then begin
        let stall = max 0 (queue_ok - ready) in
        t.crc_stalls <- t.crc_stalls + stall;
        match t.telem with
        | Some tl -> Registry.sample tl.crc_stall_s ~at:c (float_of_int stall)
        | None -> ()
      end;
      crc_send t ~issue_cycle:c ~bytes ~avail_delay:1;
      count t C_memo_send;
      attr t C_memo_send 1
  | Lookup _ ->
      let instr = Ir.Memo mi in
      let frame = current_frame t in
      let ready = max (srcs_ready t instr) (max t.crc_done t.memo_port_free) in
      let c = issue t ready in
      let latency =
        match t.lookup_level () with
        | `L1 -> Timing.lookup_l1_cycles
        | `L2 -> Timing.lookup_l1_cycles + Timing.lookup_l2_cycles
        | `L3 ->
            Timing.lookup_l1_cycles + Timing.lookup_l2_cycles
            + t.l3_lookup_cycles ()
        | `Miss ->
            (if t.l2_lut_present then Timing.lookup_l1_cycles + Timing.lookup_l2_cycles
             else Timing.lookup_l1_cycles)
            + t.l3_lookup_cycles ()
      in
      t.memo_port_free <- c + latency;
      complete t frame (Ir.instr_dst instr) (c + latency);
      count t C_memo_lookup;
      attr t C_memo_lookup latency
  | Update _ ->
      let instr = Ir.Memo mi in
      let ready = max (srcs_ready t instr) t.memo_port_free in
      let c = issue t ready in
      t.memo_port_free <- c + Timing.update_cycles;
      if c + Timing.update_cycles > t.horizon then t.horizon <- c + Timing.update_cycles;
      count t C_memo_update;
      attr t C_memo_update Timing.update_cycles
  | Invalidate _ ->
      let c = issue t t.memo_port_free in
      let penalty = t.l1_lut_ways * Timing.invalidate_cycles_per_way in
      t.memo_port_free <- c + penalty;
      t.slot_cycle <- c + penalty;
      t.slot_used <- 0;
      count t C_memo_invalidate;
      attr t C_memo_invalidate penalty

let exec_term t (term : Ir.terminator) =
  match term with
  | Jmp _ ->
      let _c = issue t t.slot_cycle in
      count t C_branch;
      attr t C_branch 1
  | Br { cond; _ } ->
      let frame = current_frame t in
      let c = issue t (op_ready frame cond) in
      ignore c;
      count t C_branch;
      attr t C_branch 1
  | Br_memo _ ->
      (* Consumes the lookup's condition code; readiness is already folded
         into [memo_port_free]. *)
      let c = issue t t.memo_port_free in
      ignore c;
      count t C_memo_branch;
      attr t C_memo_branch 1
  | Ret ops ->
      let frame = current_frame t in
      let ready = Array.fold_left (fun acc o -> max acc (op_ready frame o)) 0 ops in
      let c = issue t ready in
      t.last_ret_ready <- max ready c;
      count t C_call_ret;
      attr t C_call_ret 1

let on_enter t fname =
  let nregs = try Hashtbl.find t.nregs_of fname with Not_found -> 64 in
  let binding = t.pending_call in
  t.pending_call <- None;
  let ready = Array.make nregs (max t.pending_args_ready t.slot_cycle) in
  t.frames <- { ready; call_binding = binding } :: t.frames

let on_leave t _fname =
  match t.frames with
  | [] -> ()
  | frame :: rest ->
      t.frames <- rest;
      (match frame.call_binding with
      | Some (dsts, caller_ready) ->
          Array.iter (fun r -> caller_ready.(r) <- t.last_ret_ready) dsts
      | None -> ())

let cycles t = max t.slot_cycle t.horizon

(* ------------------------------------------------------------------ *)
(* Site compilers for the compiled execution backend: everything static
   about an instruction — source/destination register sets, class index,
   functional-unit pool, latency, occupancy — is resolved once per static
   site, so the per-execution closure touches no lists and matches no
   constructors. Each closure must stay observationally identical to the
   corresponding [exec_instr]/[exec_term] arm. *)

let is_memo_class = function
  | C_memo_send | C_memo_lookup | C_memo_update | C_memo_invalidate | C_memo_branch ->
      true
  | C_ialu | C_imul | C_idiv | C_fp | C_fdiv_sqrt | C_ftrig | C_load | C_store
  | C_branch | C_call_ret ->
      false

let[@inline] count_k t k memo =
  t.counts.(k) <- t.counts.(k) + 1;
  if memo then t.dyn_memo <- t.dyn_memo + 1 else t.dyn_normal <- t.dyn_normal + 1

let[@inline] attr_k t k cyc =
  match t.telem with
  | Some tl -> tl.class_cycles.(k) <- tl.class_cycles.(k) + cyc
  | None -> ()

(* max-fold over a precomputed register array — the compiled twin of
   [srcs_ready]'s list fold *)
let[@inline] ready_of (frame : frame) (rs : int array) =
  let r = ref 0 in
  for i = 0 to Array.length rs - 1 do
    let v = frame.ready.(Array.unsafe_get rs i) in
    if v > !r then r := v
  done;
  !r

let[@inline] complete_arr t (frame : frame) (dsts : int array) at =
  for i = 0 to Array.length dsts - 1 do
    frame.ready.(Array.unsafe_get dsts i) <- at
  done;
  if at > t.horizon then t.horizon <- at

let srcs_arr instr = Array.of_list (Ir.instr_srcs instr)
let dsts_arr instr = Array.of_list (Ir.instr_dst instr)

let reg_operands ops =
  Array.of_list
    (List.filter_map
       (function Ir.Reg r -> Some r | Ir.Imm _ -> None)
       (Array.to_list ops))

let site_fu t instr pool ~latency ~busy cls =
  let srcs = srcs_arr instr in
  let dsts = dsts_arr instr in
  let k = class_index cls in
  let memo = is_memo_class cls in
  (* Telemetry attachment is fixed at pipeline creation, so sites compiled
     without it drop the attribution branch from the per-execution path. *)
  if t.telem = None then
    fun (_addr : int) ->
      let frame = current_frame t in
      let ready = ready_of frame srcs in
      let u = pool_min pool in
      let c = issue t (max ready pool.(u)) in
      pool.(u) <- c + busy;
      complete_arr t frame dsts (c + latency);
      count_k t k memo
  else
    fun (_addr : int) ->
      let frame = current_frame t in
      let ready = ready_of frame srcs in
      let u = pool_min pool in
      let c = issue t (max ready pool.(u)) in
      pool.(u) <- c + busy;
      complete_arr t frame dsts (c + latency);
      count_k t k memo;
      attr_k t k latency

let exec_site t (_fname : string) (_bidx : int) (_iidx : int) (instr : Ir.instr) :
    int -> unit =
  match instr with
  | Const _ | Mov _ | Select _ ->
      site_fu t instr t.alu ~latency:(m t).lat_alu ~busy:1 C_ialu
  | Binop { op; _ } -> (
      match op with
      | Mul -> site_fu t instr t.mul ~latency:(m t).lat_mul ~busy:1 C_imul
      | Div | Rem ->
          site_fu t instr t.div ~latency:(m t).lat_div ~busy:(m t).lat_div C_idiv
      | Add | Sub | And | Or | Xor | Shl | Lshr | Ashr ->
          site_fu t instr t.alu ~latency:(m t).lat_alu ~busy:1 C_ialu)
  | Fbinop { op; _ } -> (
      match op with
      | Fdiv ->
          site_fu t instr t.fpu ~latency:(m t).lat_fdiv ~busy:(m t).lat_fdiv
            C_fdiv_sqrt
      | Fadd | Fsub | Fmul -> site_fu t instr t.fpu ~latency:(m t).lat_fp ~busy:1 C_fp)
  | Funop { op; _ } -> (
      match op with
      | Fsqrt ->
          site_fu t instr t.fpu ~latency:(m t).lat_fsqrt ~busy:(m t).lat_fsqrt
            C_fdiv_sqrt
      | Fsin | Fcos | Fexp | Flog ->
          site_fu t instr t.fpu ~latency:(m t).lat_ftrig ~busy:(m t).lat_ftrig C_ftrig
      | Fneg | Fabs | Ffloor | Fround ->
          site_fu t instr t.fpu ~latency:(m t).lat_fp ~busy:1 C_fp)
  | Icmp _ -> site_fu t instr t.alu ~latency:(m t).lat_alu ~busy:1 C_ialu
  | Fcmp _ -> site_fu t instr t.fpu ~latency:(m t).lat_fp ~busy:1 C_fp
  | Cast { op; _ } -> (
      match op with
      | I_to_f | F_to_i | F32_of_f64 | F64_of_f32 ->
          site_fu t instr t.fpu ~latency:(m t).lat_fp ~busy:1 C_fp
      | Bits_of_f32 | F32_of_bits | Bits_of_f64 | F64_of_bits | Sext_32_64 | Trunc_64_32
        ->
          site_fu t instr t.alu ~latency:(m t).lat_alu ~busy:1 C_ialu)
  | Load _ ->
      let srcs = srcs_arr instr in
      let dsts = dsts_arr instr in
      let k = class_index C_load in
      fun addr ->
        let frame = current_frame t in
        let ready = ready_of frame srcs in
        let u = pool_min t.lsu in
        let c = issue t (max ready t.lsu.(u)) in
        t.lsu.(u) <- c + 1;
        let latency = Hierarchy.read t.hier ~addr in
        complete_arr t frame dsts (c + latency);
        count_k t k false;
        attr_k t k latency
  | Store _ ->
      let srcs = srcs_arr instr in
      let k = class_index C_store in
      fun addr ->
        let frame = current_frame t in
        let ready = ready_of frame srcs in
        let u = pool_min t.lsu in
        let c = issue t (max ready t.lsu.(u)) in
        let latency = Hierarchy.write t.hier ~addr in
        t.lsu.(u) <- c + latency;
        if c + latency > t.horizon then t.horizon <- c + latency;
        count_k t k false;
        attr_k t k latency
  | Call { args; dsts; _ } ->
      let arg_regs = reg_operands args in
      let k = class_index C_call_ret in
      fun _addr ->
        let frame = current_frame t in
        let ready = ready_of frame arg_regs in
        let c = issue t ready in
        t.pending_args_ready <- max ready c;
        t.pending_call <- Some (Array.copy dsts, frame.ready);
        count_k t k false;
        attr_k t k 1
  | Memo mi -> (
      match mi with
      | Ld_crc { ty; _ } ->
          let srcs = srcs_arr instr in
          let dsts = dsts_arr instr in
          let bytes = Ir.ty_size ty in
          let k = class_index C_load in
          fun addr ->
            let frame = current_frame t in
            let ready = ready_of frame srcs in
            let u = pool_min t.lsu in
            let queue_ok = crc_queue_constraint t ~bytes in
            let unconstrained = max ready t.lsu.(u) in
            let c = issue t (max unconstrained queue_ok) in
            if queue_ok > unconstrained then begin
              let stall = queue_ok - unconstrained in
              t.crc_stalls <- t.crc_stalls + stall;
              match t.telem with
              | Some tl -> Registry.sample tl.crc_stall_s ~at:c (float_of_int stall)
              | None -> ()
            end;
            t.lsu.(u) <- c + 1;
            let latency = Hierarchy.read t.hier ~addr in
            complete_arr t frame dsts (c + latency);
            crc_send t ~issue_cycle:c ~bytes ~avail_delay:latency;
            count_k t k false;
            attr_k t k latency
      | Reg_crc { ty; _ } ->
          let srcs = srcs_arr instr in
          let bytes = Ir.ty_size ty in
          let k = class_index C_memo_send in
          fun _addr ->
            let frame = current_frame t in
            let ready = ready_of frame srcs in
            let queue_ok = crc_queue_constraint t ~bytes in
            let c = issue t (max ready queue_ok) in
            if queue_ok > ready then begin
              let stall = max 0 (queue_ok - ready) in
              t.crc_stalls <- t.crc_stalls + stall;
              match t.telem with
              | Some tl -> Registry.sample tl.crc_stall_s ~at:c (float_of_int stall)
              | None -> ()
            end;
            crc_send t ~issue_cycle:c ~bytes ~avail_delay:1;
            count_k t k true;
            attr_k t k 1
      | Lookup _ ->
          let srcs = srcs_arr instr in
          let dsts = dsts_arr instr in
          let k = class_index C_memo_lookup in
          fun _addr ->
            let frame = current_frame t in
            let ready = max (ready_of frame srcs) (max t.crc_done t.memo_port_free) in
            let c = issue t ready in
            let latency =
              match t.lookup_level () with
              | `L1 -> Timing.lookup_l1_cycles
              | `L2 -> Timing.lookup_l1_cycles + Timing.lookup_l2_cycles
              | `L3 ->
                  Timing.lookup_l1_cycles + Timing.lookup_l2_cycles
                  + t.l3_lookup_cycles ()
              | `Miss ->
                  (if t.l2_lut_present then
                     Timing.lookup_l1_cycles + Timing.lookup_l2_cycles
                   else Timing.lookup_l1_cycles)
                  + t.l3_lookup_cycles ()
            in
            t.memo_port_free <- c + latency;
            complete_arr t frame dsts (c + latency);
            count_k t k true;
            attr_k t k latency
      | Update _ ->
          let srcs = srcs_arr instr in
          let k = class_index C_memo_update in
          fun _addr ->
            let frame = current_frame t in
            let ready = max (ready_of frame srcs) t.memo_port_free in
            let c = issue t ready in
            t.memo_port_free <- c + Timing.update_cycles;
            if c + Timing.update_cycles > t.horizon then
              t.horizon <- c + Timing.update_cycles;
            count_k t k true;
            attr_k t k Timing.update_cycles
      | Invalidate _ ->
          let k = class_index C_memo_invalidate in
          let penalty = t.l1_lut_ways * Timing.invalidate_cycles_per_way in
          fun _addr ->
            let c = issue t t.memo_port_free in
            t.memo_port_free <- c + penalty;
            t.slot_cycle <- c + penalty;
            t.slot_used <- 0;
            count_k t k true;
            attr_k t k penalty)

let term_site t (_fname : string) (_bidx : int) (term : Ir.terminator) : unit -> unit
    =
  match term with
  | Jmp _ ->
      let k = class_index C_branch in
      fun () ->
        let _c = issue t t.slot_cycle in
        count_k t k false;
        attr_k t k 1
  | Br { cond; _ } -> (
      let k = class_index C_branch in
      match cond with
      | Ir.Reg r ->
          fun () ->
            let frame = current_frame t in
            ignore (issue t frame.ready.(r));
            count_k t k false;
            attr_k t k 1
      | Ir.Imm _ ->
          fun () ->
            ignore (issue t 0);
            count_k t k false;
            attr_k t k 1)
  | Br_memo _ ->
      let k = class_index C_memo_branch in
      fun () ->
        ignore (issue t t.memo_port_free);
        count_k t k true;
        attr_k t k 1
  | Ret ops ->
      let regs = reg_operands ops in
      let k = class_index C_call_ret in
      fun () ->
        let frame = current_frame t in
        let ready = ready_of frame regs in
        let c = issue t ready in
        t.last_ret_ready <- max ready c;
        count_k t k false;
        attr_k t k 1

(* Static classification, mirroring the class each [exec_instr] /
   [exec_term] arm charges — used by the profiler to label work without
   touching the timing paths. *)
let classify_instr : Ir.instr -> instr_class = function
  | Const _ | Mov _ | Select _ | Icmp _ -> C_ialu
  | Binop { op; _ } -> (
      match op with
      | Mul -> C_imul
      | Div | Rem -> C_idiv
      | Add | Sub | And | Or | Xor | Shl | Lshr | Ashr -> C_ialu)
  | Fbinop { op; _ } -> (
      match op with Fdiv -> C_fdiv_sqrt | Fadd | Fsub | Fmul -> C_fp)
  | Funop { op; _ } -> (
      match op with
      | Fsqrt -> C_fdiv_sqrt
      | Fsin | Fcos | Fexp | Flog -> C_ftrig
      | Fneg | Fabs | Ffloor | Fround -> C_fp)
  | Fcmp _ -> C_fp
  | Cast { op; _ } -> (
      match op with
      | I_to_f | F_to_i | F32_of_f64 | F64_of_f32 -> C_fp
      | Bits_of_f32 | F32_of_bits | Bits_of_f64 | F64_of_bits | Sext_32_64
      | Trunc_64_32 ->
          C_ialu)
  | Load _ -> C_load
  | Store _ -> C_store
  | Call _ -> C_call_ret
  | Memo (Ld_crc _) -> C_load
  | Memo (Reg_crc _) -> C_memo_send
  | Memo (Lookup _) -> C_memo_lookup
  | Memo (Update _) -> C_memo_update
  | Memo (Invalidate _) -> C_memo_invalidate

let classify_term : Ir.terminator -> instr_class = function
  | Jmp _ | Br _ -> C_branch
  | Br_memo _ -> C_memo_branch
  | Ret _ -> C_call_ret

let memo_lut_of : Ir.memo_instr -> int = function
  | Ld_crc { lut; _ } | Reg_crc { lut; _ } | Lookup { lut; _ } | Update { lut; _ }
  | Invalidate { lut } ->
      lut

let p_current p = match p.p_stack with r :: _ -> r | [] -> p.p_nregions

(* Charge the wall-cycle delta since the previous charge to (region, class).
   Every advance of the pipeline clock lands in exactly one cell, so the
   matrix total equals [cycles t] at all times. *)
let p_charge t p r k =
  let c = cycles t in
  if c > p.p_last then begin
    p.p_cycles.(r).(k) <- p.p_cycles.(r).(k) + (c - p.p_last);
    p.p_last <- c
  end

let profiled_hooks t p : Interp.hooks =
  {
    Interp.on_enter =
      (fun fname ->
        on_enter t fname;
        let r = p.p_region_of_func fname in
        let r = if r < 0 then p_current p else r in
        p.p_stack <- r :: p.p_stack);
    on_leave =
      (fun fname ->
        on_leave t fname;
        match p.p_stack with [] -> () | _ :: rest -> p.p_stack <- rest);
    on_exec =
      (fun _fname _bidx _iidx instr addr ->
        exec_instr t instr addr;
        let r =
          match instr with
          | Ir.Memo mi ->
              let r = p.p_region_of_lut (memo_lut_of mi) in
              if r < 0 then p_current p else r
          | _ -> p_current p
        in
        let k = class_index (classify_instr instr) in
        p.p_counts.(r).(k) <- p.p_counts.(r).(k) + 1;
        p_charge t p r k);
    on_term =
      (fun _fname _bidx term ->
        exec_term t term;
        let r = p_current p in
        let k = class_index (classify_term term) in
        p.p_counts.(r).(k) <- p.p_counts.(r).(k) + 1;
        p_charge t p r k);
    (* no site compilers: profiled runs keep the generic flat callbacks, so
       the compiled backend falls back to [on_exec]/[on_term] and profile
       attribution stays on one code path for both backends *)
    exec_site = None;
    term_site = None;
  }

(* Allocation-free attachment: flat callbacks, no event record per
   instruction. Preferred on the simulation hot path. With a profiler
   attached the callbacks additionally attribute each instruction to its
   static region; without one they are exactly the unprofiled closures. *)
let hooks t : Interp.hooks =
  match t.profile with
  | Some p -> profiled_hooks t p
  | None ->
      {
        Interp.on_enter = on_enter t;
        on_leave = on_leave t;
        on_exec = (fun _fname _bidx _iidx instr addr -> exec_instr t instr addr);
        on_term = (fun _fname _bidx term -> exec_term t term);
        exec_site = Some (exec_site t);
        term_site = Some (term_site t);
      }

let profile_close t =
  match t.profile with
  | None -> ()
  | Some p ->
      (* Whatever the clock advanced past the last retired instruction is
         in-flight completion (the drain): charge it to the program body so
         the matrix still sums to [cycles t]. *)
      let c = cycles t in
      if c > p.p_last then begin
        p.p_cycles.(p.p_nregions).(drain_class) <-
          p.p_cycles.(p.p_nregions).(drain_class) + (c - p.p_last);
        p.p_last <- c
      end

(* Event-based convenience form, kept for observers that want a reified
   event stream; allocates one event per callback upstream. *)
let hook t (ev : Interp.event) =
  match ev with
  | Enter { fname } -> on_enter t fname
  | Leave { fname } -> on_leave t fname
  | Exec { instr; addr; _ } -> exec_instr t instr addr
  | Term { term; _ } -> exec_term t term

let stats t =
  {
    cycles = cycles t;
    dyn_normal = t.dyn_normal;
    dyn_memo = t.dyn_memo;
    per_class = List.map (fun c -> (c, t.counts.(class_index c))) all_classes;
    crc_stall_cycles = t.crc_stalls;
  }

let seconds t = float_of_int (cycles t) /. (t.machine.freq_ghz *. 1e9)

let flush_metrics t =
  match t.telem with
  | None -> ()
  | Some tl ->
      Array.iteri (fun i n -> Registry.set_count tl.count_c.(i) n) t.counts;
      Array.iteri (fun i n -> Registry.set_count tl.cycles_c.(i) n) tl.class_cycles;
      Registry.set_count tl.total_cycles_c (cycles t);
      Registry.set_count tl.crc_stall_c t.crc_stalls;
      Registry.set_count tl.dyn_normal_c t.dyn_normal;
      Registry.set_count tl.dyn_memo_c t.dyn_memo
