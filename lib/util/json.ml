type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 || Char.code c = 0x7F ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  escape_to buf s;
  Buffer.contents buf

(* Shortest decimal representation that round-trips, so equal floats always
   render to equal (and reasonably short) bytes. *)
let float_repr x =
  if Float.is_integer x && Float.abs x < 1e16 then Printf.sprintf "%.1f" x
  else
    let try_prec p =
      let s = Printf.sprintf "%.*g" p x in
      if float_of_string s = x then Some s else None
    in
    match try_prec 15 with
    | Some s -> s
    | None -> ( match try_prec 16 with Some s -> s | None -> Printf.sprintf "%.17g" x)

let rec render buf ~indent ~level v =
  let pad n = match indent with
    | None -> ()
    | Some w ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (w * n) ' ')
  in
  let sep () = match indent with None -> "" | Some _ -> " " in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr x)
  | Str s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          render buf ~indent ~level:(level + 1) x)
        xs;
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_string buf "\":";
          Buffer.add_string buf (sep ());
          render buf ~indent ~level:(level + 1) x)
        fields;
      pad level;
      Buffer.add_char buf '}'

let to_string ?indent v =
  let buf = Buffer.create 1024 in
  render buf ~indent ~level:0 v;
  Buffer.contents buf

let to_channel ?indent oc v =
  output_string oc (to_string ?indent v);
  if indent <> None then output_char oc '\n'

let write_file ?(indent = 2) path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel ~indent oc v)
