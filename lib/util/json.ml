type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 || Char.code c = 0x7F ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  escape_to buf s;
  Buffer.contents buf

(* Shortest decimal representation that round-trips, so equal floats always
   render to equal (and reasonably short) bytes. *)
let float_repr x =
  if Float.is_integer x && Float.abs x < 1e16 then Printf.sprintf "%.1f" x
  else
    let try_prec p =
      let s = Printf.sprintf "%.*g" p x in
      if float_of_string s = x then Some s else None
    in
    match try_prec 15 with
    | Some s -> s
    | None -> ( match try_prec 16 with Some s -> s | None -> Printf.sprintf "%.17g" x)

let rec render buf ~indent ~level v =
  let pad n = match indent with
    | None -> ()
    | Some w ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (w * n) ' ')
  in
  let sep () = match indent with None -> "" | Some _ -> " " in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if Float.is_nan x || x = Float.infinity || x = Float.neg_infinity then
        Buffer.add_string buf "null"
      else Buffer.add_string buf (float_repr x)
  | Str s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          render buf ~indent ~level:(level + 1) x)
        xs;
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_string buf "\":";
          Buffer.add_string buf (sep ());
          render buf ~indent ~level:(level + 1) x)
        fields;
      pad level;
      Buffer.add_char buf '}'

let to_string ?indent v =
  let buf = Buffer.create 1024 in
  render buf ~indent ~level:0 v;
  Buffer.contents buf

let to_channel ?indent oc v =
  output_string oc (to_string ?indent v);
  if indent <> None then output_char oc '\n'

let write_file ?(indent = 2) path v =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel ~indent oc v)

(* ------------------------------------------------------------------ *)
(* Parser: strict recursive descent over the subset this module emits. *)

exception Parse_error of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> error (Printf.sprintf "expected '%c', found '%c'" c c')
    | None -> error (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word v =
    let w = String.length word in
    if !pos + w <= n && String.sub s !pos w = word then begin
      pos := !pos + w;
      v
    end
    else error (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then error "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        match c with
        | '"' -> Buffer.contents buf
        | '\\' -> (
            if !pos >= n then error "unterminated escape";
            let e = s.[!pos] in
            advance ();
            match e with
            | '"' | '\\' | '/' -> Buffer.add_char buf e; loop ()
            | 'n' -> Buffer.add_char buf '\n'; loop ()
            | 'r' -> Buffer.add_char buf '\r'; loop ()
            | 't' -> Buffer.add_char buf '\t'; loop ()
            | 'b' -> Buffer.add_char buf '\b'; loop ()
            | 'f' -> Buffer.add_char buf '\012'; loop ()
            | 'u' ->
                if !pos + 4 > n then error "truncated \\u escape";
                let hex = String.sub s !pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> error "bad \\u escape"
                in
                pos := !pos + 4;
                (* Our emitter only writes \u00XX for control bytes; decode
                   the general case as UTF-8 so foreign files survive. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                loop ()
            | c -> error (Printf.sprintf "bad escape '\\%c'" c))
        | c -> Buffer.add_char buf c; loop ()
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    let is_float =
      String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok
    in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error (Printf.sprintf "bad number '%s'" tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          (* Integer syntax too wide for an OCaml int: keep the value. *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> error (Printf.sprintf "bad number '%s'" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else
          let rec elems acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elems (v :: acc)
            | Some ']' -> advance (); Arr (List.rev (v :: acc))
            | _ -> error "expected ',' or ']'"
          in
          elems []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields (kv :: acc)
            | Some '}' -> advance (); Obj (List.rev (kv :: acc))
            | _ -> error "expected ',' or '}'"
          in
          fields []
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> error (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos < n then error "trailing input";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
      Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let read_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | contents -> parse contents
  | exception Sys_error msg -> Error msg
  | exception End_of_file -> Error (path ^ ": truncated read")

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Bool b -> Some (if b then 1.0 else 0.0)
  | Null | Str _ | Arr _ | Obj _ -> None
