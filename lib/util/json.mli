(** Minimal JSON emitter.

    Just enough for the machine-readable artifacts this repo writes — the
    telemetry run reports, the Chrome trace timelines, and the bench
    perf-smoke file — with the two properties those need and the previous
    hand-rolled [Printf] writers lacked:

    - {b escaping correctness}: any OCaml string becomes a valid JSON string
      (quotes, backslashes, control characters, DEL); the bytes are passed
      through otherwise, so UTF-8 survives unchanged;
    - {b determinism}: a value always renders to the same bytes. Floats use
      the shortest [%g]-style representation that round-trips through
      [float_of_string]; non-finite floats render as [null] (JSON has no
      NaN/infinity). Object fields are emitted in the order given.

    The parser ({!parse}) exists for one consumer — the report differ —
    and accepts exactly the JSON this module emits (plus arbitrary
    whitespace and [\uXXXX] escapes): it is a strict recursive-descent
    reader, not a lenient one. A numeric token without [.], [e] or [E]
    that fits in an OCaml [int] parses as [Int]; everything else numeric
    parses as [Float], so [parse (to_string v) = Ok v] for any [v] free
    of non-finite floats. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** [escape s] is the JSON string-literal body for [s] (no surrounding
    quotes): ["\""], ["\\"], control characters U+0000..U+001F and U+007F
    escaped; everything else verbatim. *)

val to_string : ?indent:int -> t -> string
(** [to_string v] renders [v]. With [indent] (spaces per level, e.g. 2) the
    output is pretty-printed with one field/element per line; without it the
    output is compact. Either way the rendering is deterministic. *)

val to_channel : ?indent:int -> out_channel -> t -> unit
(** [to_channel oc v] writes [to_string v] (plus a trailing newline when
    [indent] is given) to [oc]. *)

val write_file : ?indent:int -> string -> t -> unit
(** [write_file path v] creates/truncates [path] with the rendering of [v]
    and a trailing newline. *)

val parse : string -> (t, string) result
(** [parse s] reads one JSON value (surrounded by optional whitespace) from
    [s]. Errors carry a byte offset and a short description; trailing
    non-whitespace input is an error. Duplicate object keys are kept as
    given (first occurrence wins for [member]). *)

val read_file : string -> (t, string) result
(** [read_file path] is [parse] over the file's contents; I/O failures are
    reported as [Error] rather than raised. *)

val member : string -> t -> t option
(** [member k v] is the field [k] of object [v], if both exist. *)

val to_float : t -> float option
(** Numeric coercion: [Int]/[Float] as the obvious float, [Bool] as 0/1
    (so boolean summary fields can be diffed numerically), else [None]. *)
