(** Minimal JSON emitter.

    Just enough for the machine-readable artifacts this repo writes — the
    telemetry run reports, the Chrome trace timelines, and the bench
    perf-smoke file — with the two properties those need and the previous
    hand-rolled [Printf] writers lacked:

    - {b escaping correctness}: any OCaml string becomes a valid JSON string
      (quotes, backslashes, control characters, DEL); the bytes are passed
      through otherwise, so UTF-8 survives unchanged;
    - {b determinism}: a value always renders to the same bytes. Floats use
      the shortest [%g]-style representation that round-trips through
      [float_of_string]; non-finite floats render as [null] (JSON has no
      NaN/infinity). Object fields are emitted in the order given.

    There is deliberately no parser: the repo only produces JSON. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape : string -> string
(** [escape s] is the JSON string-literal body for [s] (no surrounding
    quotes): ["\""], ["\\"], control characters U+0000..U+001F and U+007F
    escaped; everything else verbatim. *)

val to_string : ?indent:int -> t -> string
(** [to_string v] renders [v]. With [indent] (spaces per level, e.g. 2) the
    output is pretty-printed with one field/element per line; without it the
    output is compact. Either way the rendering is deterministic. *)

val to_channel : ?indent:int -> out_channel -> t -> unit
(** [to_channel oc v] writes [to_string v] (plus a trailing newline when
    [indent] is given) to [oc]. *)

val write_file : ?indent:int -> string -> t -> unit
(** [write_file path v] creates/truncates [path] with the rendering of [v]
    and a trailing newline. *)
