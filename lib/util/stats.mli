(** Small statistics toolkit used by the quality metrics, the quality monitor
    and the benchmark reports. *)

val mean : float array -> float
(** [mean a] is the arithmetic mean; 0 on an empty array. *)

val geomean : float array -> float
(** [geomean a] is the geometric mean of strictly positive values; 0 if any
    value is non-positive or the array is empty. *)

val stddev : float array -> float
(** [stddev a] is the population standard deviation. *)

val percentile : float array -> float -> float
(** [percentile a p] returns the [p]-th percentile (0-100) by linear
    interpolation over the sorted copy of [a]; 0 on an empty array.

    Empty-input contract (uniform across this module): every summary
    function ({!mean}, {!geomean}, {!stddev}, [percentile]) returns [0.0]
    on an empty array, and {!cdf} returns [[]] — none of them raise. *)

val percentile_of_histogram :
  bounds:float array -> counts:int array -> float -> float
(** [percentile_of_histogram ~bounds ~counts p] estimates the [p]-th
    percentile (0-100) from a bucketed histogram ([counts] has one entry per
    upper bound plus a final overflow bucket, the layout of
    [Axmemo_telemetry.Registry] snapshots): the target rank's bucket is
    found on the cumulative counts and the value interpolated linearly
    between the bucket's lower and upper bound (bucket 0 starts at 0).
    The estimate is therefore exact to within one bucket width — which is
    what lets tail percentiles (p99.9) survive series decimation, since
    histograms are never decimated. Ranks landing in the overflow bucket
    clamp to the last bound. Returns 0.0 on an empty histogram.
    @raise Invalid_argument unless [Array.length counts = Array.length bounds + 1]. *)

val cdf : float array -> points:int -> (float * float) list
(** [cdf a ~points] returns [points] evenly spaced (value, cumulative fraction)
    pairs describing the empirical CDF of [a], for Figure 10b-style plots.
    Empty input (or [points <= 0]) yields [[]]. *)

val output_error : reference:float array -> approx:float array -> float
(** [output_error ~reference ~approx] is the paper's Equation 2:
    [sum_i (x̂_i - x_i)^2 / sum_i x_i^2]. Arrays must have equal length. *)

val misclassification_rate : reference:bool array -> approx:bool array -> float
(** [misclassification_rate ~reference ~approx] is the fraction of indices
    where the two boolean arrays disagree (the Jmeint quality metric). *)

val relative_errors : reference:float array -> approx:float array -> float array
(** [relative_errors ~reference ~approx] computes |x̂-x| / max(|x|, eps) per
    element, for the element-wise error CDF. *)
