type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next_state t =
  t.state <- Int64.add t.state golden;
  t.state

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 t = mix (next_state t)

let split t = create (int64 t)

let copy t = { state = t.state }

let bits32 t = Int64.to_int32 (Int64.shift_right_logical (int64 t) 32)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible at 62 bits.
     Shifting by 2 keeps the value below 2^62, hence non-negative as a
     63-bit OCaml int. *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  v /. 9007199254740992.0 *. bound

let uniform t lo hi = lo +. float t (hi -. lo)

let gaussian t ~mean ~stddev =
  let rec draw () =
    let u1 = float t 1.0 in
    if u1 <= 1e-300 then draw ()
    else
      let u2 = float t 1.0 in
      mean +. (stddev *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))
  in
  draw ()

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

(* Root seed: one process-wide knob from which every stochastic stream in
   the repository (dataset generators, the Random replacement policy, fault
   streams) derives its own seed. 0 means "unset": [derive_stream] is then
   the identity, so default runs keep their historical fixed seeds and stay
   bit-identical across PRs. Set once at CLI startup, before any worker
   domain spawns; domains share the heap, so all workers observe it. *)
let root = ref 0L

let set_root_seed s = root := s
let root_seed () = !root

let derive_stream salt =
  if !root = 0L then salt
  else
    let s = mix (Int64.add (mix !root) salt) in
    (* Never hand out 0: some consumers (xorshift state) treat it as an
       absorbing state. *)
    if s = 0L then salt else s
