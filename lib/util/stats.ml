let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let geomean a =
  let n = Array.length a in
  if n = 0 then 0.0
  else if Array.exists (fun x -> x <= 0.0) a then 0.0
  else exp (Array.fold_left (fun acc x -> acc +. log x) 0.0 a /. float_of_int n)

let stddev a =
  let m = mean a in
  let n = Array.length a in
  if n = 0 then 0.0
  else
    sqrt (Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a /. float_of_int n)

let percentile a p =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. w)) +. (sorted.(hi) *. w)
  end

(* Percentile over a histogram snapshot: walk the cumulative counts to the
   bucket holding the target rank, then interpolate linearly inside it
   (bucket i spans (bounds[i-1], bounds[i]]; bucket 0 starts at 0). The
   overflow bucket has no upper bound, so ranks landing there clamp to the
   last bound — the histogram's resolution limit, by construction. *)
let percentile_of_histogram ~bounds ~counts p =
  let nb = Array.length bounds in
  if Array.length counts <> nb + 1 then
    invalid_arg "Stats.percentile_of_histogram: counts must be bounds+1 long";
  let total = Array.fold_left ( + ) 0 counts in
  if total = 0 then 0.0
  else begin
    let target = Float.max 1.0 (p /. 100.0 *. float_of_int total) in
    let rec walk i cum =
      let cum' = cum +. float_of_int counts.(i) in
      if cum' >= target then
        if i = nb then bounds.(nb - 1) (* overflow: clamp to the last bound *)
        else begin
          let lo = if i = 0 then 0.0 else bounds.(i - 1) in
          let hi = bounds.(i) in
          let frac = (target -. cum) /. float_of_int counts.(i) in
          lo +. (Float.max 0.0 (Float.min 1.0 frac) *. (hi -. lo))
        end
      else if i = nb then bounds.(nb - 1)
      else walk (i + 1) cum'
    in
    walk 0 0.0
  end

let cdf a ~points =
  let n = Array.length a in
  if n = 0 || points <= 0 then []
  else begin
    let sorted = Array.copy a in
    Array.sort compare sorted;
    let sample i =
      let frac = float_of_int i /. float_of_int (points - 1) in
      let idx = int_of_float (frac *. float_of_int (n - 1)) in
      (sorted.(idx), float_of_int (idx + 1) /. float_of_int n)
    in
    if points = 1 then [ sample 0 ]
    else List.init points sample
  end

let output_error ~reference ~approx =
  let n = Array.length reference in
  if n <> Array.length approx then invalid_arg "Stats.output_error: length mismatch";
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to n - 1 do
    let d = approx.(i) -. reference.(i) in
    num := !num +. (d *. d);
    den := !den +. (reference.(i) *. reference.(i))
  done;
  if !den = 0.0 then if !num = 0.0 then 0.0 else infinity else !num /. !den

let misclassification_rate ~reference ~approx =
  let n = Array.length reference in
  if n <> Array.length approx then
    invalid_arg "Stats.misclassification_rate: length mismatch";
  if n = 0 then 0.0
  else begin
    let wrong = ref 0 in
    for i = 0 to n - 1 do
      if reference.(i) <> approx.(i) then incr wrong
    done;
    float_of_int !wrong /. float_of_int n
  end

let relative_errors ~reference ~approx =
  let n = Array.length reference in
  if n <> Array.length approx then invalid_arg "Stats.relative_errors: length mismatch";
  let eps = 1e-12 in
  Array.init n (fun i ->
      abs_float (approx.(i) -. reference.(i)) /. Float.max (abs_float reference.(i)) eps)
