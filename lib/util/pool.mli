(** Fixed pool of worker domains (OCaml 5 [Domain]) with a shared job queue.

    Built for the embarrassingly parallel experiment matrix: every
    (benchmark, configuration) simulation is independent, so the runner fans
    cells out over a small, fixed set of domains. The pool is deliberately
    minimal — a mutex-protected FIFO drained by [jobs] workers — because
    simulation jobs run for milliseconds to minutes; queue overhead is
    irrelevant.

    Domain-safety contract for submitted jobs: a job must only touch state
    it owns (each simulation owns its [Memory.t], [Hierarchy.t],
    [Memo_unit.t], ...). Shared read-only data (programs, configuration
    records) is fine. The only library-level shared mutable state, the CRC
    step-table cache, is internally mutex-guarded. *)

type t

val default_jobs : unit -> int
(** The host's recommended domain count ({!Domain.recommended_domain_count}). *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs] worker domains (default
    {!default_jobs}, clamped to at least 1) that block until work is
    submitted. Call {!shutdown} when done; a leaked pool keeps its domains
    alive. *)

val jobs : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue a job. Exceptions escaping a bare submitted job terminate the
    worker's current job silently only through {!map}'s capture; prefer
    {!map}/{!run} which propagate them.
    @raise Invalid_argument if the pool was shut down. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] applies [f] to every element on the pool's workers and
    blocks until all are done. Results keep the input order. If any
    application raised, the first captured exception is re-raised (with its
    backtrace) after all jobs finish. *)

val shutdown : t -> unit
(** Drain remaining jobs, stop the workers, and join their domains.
    Idempotent. *)

val run : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [run ~jobs f xs] is {!map} on a transient pool of
    [min jobs (length xs)] workers, shut down before returning. [jobs <= 1]
    (or a single-element list) degenerates to [List.map f xs] on the calling
    domain — bit-identical results, no domains spawned. *)
