type t = {
  njobs : int;
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t array;
  mutable joined : bool;
}

let default_jobs () = Domain.recommended_domain_count ()

(* Workers drain the queue even after [stop] is raised, so a shutdown never
   drops submitted work. *)
let worker t () =
  let rec next () =
    Mutex.lock t.mutex;
    let rec await () =
      match Queue.take_opt t.queue with
      | Some job ->
          Mutex.unlock t.mutex;
          Some job
      | None ->
          if t.stop then begin
            Mutex.unlock t.mutex;
            None
          end
          else begin
            Condition.wait t.work_available t.mutex;
            await ()
          end
    in
    match await () with
    | None -> ()
    | Some job ->
        job ();
        next ()
  in
  next ()

let create ?jobs () =
  let njobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  let t =
    {
      njobs;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [||];
      joined = false;
    }
  in
  t.domains <- Array.init njobs (fun _ -> Domain.spawn (worker t));
  t

let jobs t = t.njobs

let submit t job =
  Mutex.lock t.mutex;
  if t.stop then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add job t.queue;
  Condition.signal t.work_available;
  Mutex.unlock t.mutex

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  if not t.joined then begin
    t.joined <- true;
    Array.iter Domain.join t.domains
  end

let map t f xs =
  match xs with
  | [] -> []
  | _ ->
      let arr = Array.of_list xs in
      let n = Array.length arr in
      let results = Array.make n None in
      let error = Atomic.make None in
      let remaining = Atomic.make n in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      let task i () =
        (try results.(i) <- Some (f arr.(i))
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set error None (Some (e, bt))));
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock done_mutex;
          Condition.broadcast done_cond;
          Mutex.unlock done_mutex
        end
      in
      for i = 0 to n - 1 do
        submit t (task i)
      done;
      Mutex.lock done_mutex;
      while Atomic.get remaining > 0 do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex;
      (match Atomic.get error with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list
        (Array.map (function Some r -> r | None -> assert false) results)

let run ?jobs f xs =
  let njobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | _ when njobs = 1 -> List.map f xs
  | _ ->
      let t = create ~jobs:(min njobs (List.length xs)) () in
      Fun.protect ~finally:(fun () -> shutdown t) (fun () -> map t f xs)
