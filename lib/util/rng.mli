(** Deterministic pseudo-random number generation.

    All stochastic behaviour in the repository (dataset synthesis, shuffles)
    flows through this module so that experiments are bit-reproducible. The
    generator is splitmix64, which has a 64-bit state, passes BigCrush, and is
    trivially splittable. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator seeded with [seed]. Two generators
    created with the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val int64 : t -> int64
(** [int64 t] returns the next raw 64-bit output. *)

val bits32 : t -> int32
(** [bits32 t] returns 32 uniformly random bits. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in \[0, bound). [bound] must be
    positive. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in \[0, bound). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] returns a uniform float in \[lo, hi). *)

val gaussian : t -> mean:float -> stddev:float -> float
(** [gaussian t ~mean ~stddev] draws from a normal distribution using the
    Box-Muller transform. *)

val bool : t -> bool
(** [bool t] returns a fair coin flip. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)

val choose : t -> 'a array -> 'a
(** [choose t a] picks a uniform element of the non-empty array [a]. *)

(** {2 Root seed}

    Every stochastic stream in the repository derives its seed through
    {!derive_stream}, so one recorded root seed re-keys datasets, the Random
    replacement policy, and fault-injection streams together ([--seed] on
    the CLI). *)

val set_root_seed : int64 -> unit
(** [set_root_seed s] installs the process-wide root seed. Call once at
    startup, before worker domains spawn. [0L] restores the default
    (historical fixed seeds). *)

val root_seed : unit -> int64
(** The current root seed; [0L] when unset. *)

val derive_stream : int64 -> int64
(** [derive_stream salt] mixes [salt] with the root seed into an
    independent stream seed. With the root unset it returns [salt]
    unchanged, keeping default runs bit-identical. Never returns [0L] when
    the root is set. *)
