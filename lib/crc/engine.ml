let reflect ~bits v =
  let r = ref 0L in
  for i = 0 to bits - 1 do
    if Int64.logand (Int64.shift_right_logical v i) 1L = 1L then
      r := Int64.logor !r (Int64.shift_left 1L (bits - 1 - i))
  done;
  !r

(* Step tables are memoized per parameterisation: building one models loading
   the constants RAM of the parallel hardware unit. The cache is per-domain
   (Domain.DLS), so Axmemo_util.Pool workers starting engines concurrently
   never serialize on a shared lock — each domain rebuilds the 256-entry
   table at most once per parameterisation, which is far cheaper than
   contending for a process-wide mutex on every [start]. *)
let table_cache_key : (string, int64 array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let build_table (p : Poly.t) =
  let mask = Poly.mask p in
  let table = Array.make 256 0L in
  if p.refin then begin
    let poly_r = reflect ~bits:p.width p.poly in
    for i = 0 to 255 do
      let t = ref (Int64.of_int i) in
      for _ = 0 to 7 do
        if Int64.logand !t 1L = 1L then
          t := Int64.logxor (Int64.shift_right_logical !t 1) poly_r
        else t := Int64.shift_right_logical !t 1
      done;
      table.(i) <- Int64.logand !t mask
    done
  end
  else
    for i = 0 to 255 do
      let t = ref (Int64.shift_left (Int64.of_int i) (p.width - 8)) in
      for _ = 0 to 7 do
        let top = Int64.logand (Int64.shift_right_logical !t (p.width - 1)) 1L in
        t := Int64.logand (Int64.shift_left !t 1) mask;
        if top = 1L then t := Int64.logxor !t p.poly
      done;
      table.(i) <- Int64.logand !t mask
    done;
  table

let table (p : Poly.t) =
  let cache = Domain.DLS.get table_cache_key in
  match Hashtbl.find_opt cache p.name with
  | Some t -> t
  | None ->
      let t = build_table p in
      Hashtbl.add cache p.name t;
      t

type t = {
  poly : Poly.t;
  step_table : int64 array;
  mutable reg : int64;  (* reflected domain iff poly.refin *)
  mutable fed : int;
  fault : (int -> int64) option;
      (* datapath upset hook: called once per byte step with the register
         width, returns an XOR mask (0L = clean step) *)
}

let start ?fault (p : Poly.t) =
  (* The internal register lives in the reflected domain when the
     parameterisation reflects its input, so the initial value must be
     carried into that domain too. *)
  let init = if p.refin then reflect ~bits:p.width p.init else p.init in
  { poly = p; step_table = table p; reg = init; fed = 0; fault }

let copy t = { t with reg = t.reg }

let feed_byte t b =
  let b = b land 0xFF in
  t.fed <- t.fed + 1;
  let p = t.poly in
  (if p.refin then
     let idx = Int64.to_int (Int64.logand (Int64.logxor t.reg (Int64.of_int b)) 0xFFL) in
     t.reg <- Int64.logxor (Int64.shift_right_logical t.reg 8) t.step_table.(idx)
   else
     let idx =
       Int64.to_int
         (Int64.logand
            (Int64.logxor (Int64.shift_right_logical t.reg (p.width - 8)) (Int64.of_int b))
            0xFFL)
     in
     t.reg <-
       Int64.logand
         (Int64.logxor (Int64.shift_left t.reg 8) t.step_table.(idx))
         (Poly.mask p));
  match t.fault with
  | None -> ()
  | Some f ->
      let mask = f p.width in
      if mask <> 0L then t.reg <- Int64.logand (Int64.logxor t.reg mask) (Poly.mask p)

let feed_string t s = String.iter (fun c -> feed_byte t (Char.code c)) s

let feed_int64 t ~width v =
  for i = 0 to width - 1 do
    feed_byte t (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL))
  done

let value t =
  let p = t.poly in
  let r = if p.refout = p.refin then t.reg else reflect ~bits:p.width t.reg in
  Int64.logand (Int64.logxor r p.xorout) (Poly.mask p)

let bytes_fed t = t.fed

let digest_string p s =
  let t = start p in
  feed_string t s;
  value t

(* Bit-serial engine (the LFSR structure of Figure 3): the register lives in
   the normal domain; input bytes are fed MSB-first, or LSB-first when the
   parameterisation reflects its input. *)
let digest_serial (p : Poly.t) s =
  let mask = Poly.mask p in
  let reg = ref p.init in
  let feed_bit b =
    let top = Int64.logand (Int64.shift_right_logical !reg (p.width - 1)) 1L in
    reg := Int64.logand (Int64.shift_left !reg 1) mask;
    if Int64.logxor top (Int64.of_int b) = 1L then reg := Int64.logxor !reg p.poly
  in
  String.iter
    (fun c ->
      let byte = Char.code c in
      for i = 0 to 7 do
        let bit = if p.refin then (byte lsr i) land 1 else (byte lsr (7 - i)) land 1 in
        feed_bit bit
      done)
    s;
  let r = if p.refout then reflect ~bits:p.width !reg else !reg in
  Int64.logand (Int64.logxor r p.xorout) mask

let self_test p =
  let msg = "123456789" in
  digest_string p msg = p.check && digest_serial p msg = p.check
