let reflect ~bits v =
  let r = ref 0L in
  for i = 0 to bits - 1 do
    if Int64.logand (Int64.shift_right_logical v i) 1L = 1L then
      r := Int64.logor !r (Int64.shift_left 1L (bits - 1 - i))
  done;
  !r

(* Step tables are memoized per parameterisation: building one models loading
   the constants RAM of the parallel hardware unit. The cache is per-domain
   (Domain.DLS), so Axmemo_util.Pool workers starting engines concurrently
   never serialize on a shared lock — each domain rebuilds the 256-entry
   table at most once per parameterisation, which is far cheaper than
   contending for a process-wide mutex on every [start]. *)
let table_cache_key : (string, int64 array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let build_table (p : Poly.t) =
  let mask = Poly.mask p in
  let table = Array.make 256 0L in
  if p.refin then begin
    let poly_r = reflect ~bits:p.width p.poly in
    for i = 0 to 255 do
      let t = ref (Int64.of_int i) in
      for _ = 0 to 7 do
        if Int64.logand !t 1L = 1L then
          t := Int64.logxor (Int64.shift_right_logical !t 1) poly_r
        else t := Int64.shift_right_logical !t 1
      done;
      table.(i) <- Int64.logand !t mask
    done
  end
  else
    for i = 0 to 255 do
      let t = ref (Int64.shift_left (Int64.of_int i) (p.width - 8)) in
      for _ = 0 to 7 do
        let top = Int64.logand (Int64.shift_right_logical !t (p.width - 1)) 1L in
        t := Int64.logand (Int64.shift_left !t 1) mask;
        if top = 1L then t := Int64.logxor !t p.poly
      done;
      table.(i) <- Int64.logand !t mask
    done;
  table

let table (p : Poly.t) =
  let cache = Domain.DLS.get table_cache_key in
  match Hashtbl.find_opt cache p.name with
  | Some t -> t
  | None ->
      let t = build_table p in
      Hashtbl.add cache p.name t;
      t

(* Slice-by-8 tables: a flat [8 * 256] array where slot [k*256 + i] is the
   register contribution of byte value [i] fed [k] zero-byte steps ago.
   T0 is the ordinary step table; T_{k+1}[i] is one zero-input step applied
   to T_k[i]. Eight bytes then fold into the register with eight lookups
   and no per-byte shift chain. *)
let slice_cache_key : (string, int64 array) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let build_slices (p : Poly.t) t0 =
  let mask = Poly.mask p in
  let slices = Array.make (8 * 256) 0L in
  Array.blit t0 0 slices 0 256;
  for k = 1 to 7 do
    for i = 0 to 255 do
      let prev = slices.(((k - 1) * 256) + i) in
      let next =
        if p.refin then
          Int64.logxor
            (Int64.shift_right_logical prev 8)
            t0.(Int64.to_int (Int64.logand prev 0xFFL))
        else
          Int64.logand
            (Int64.logxor
               (Int64.shift_left prev 8)
               t0.(Int64.to_int
                     (Int64.logand (Int64.shift_right_logical prev (p.width - 8)) 0xFFL)))
            mask
      in
      slices.((k * 256) + i) <- next
    done
  done;
  slices

let slices (p : Poly.t) =
  let cache = Domain.DLS.get slice_cache_key in
  match Hashtbl.find_opt cache p.name with
  | Some t -> t
  | None ->
      let t = build_slices p (table p) in
      Hashtbl.add cache p.name t;
      t

type t = {
  poly : Poly.t;
  step_table : int64 array;
  slice_table : int64 array;
  sliceable : bool;
      (* the multi-byte fold requires a whole number of register bytes on
         the MSB-first path, and the fault hook is a per-byte contract *)
  mutable reg : int64;  (* reflected domain iff poly.refin *)
  mutable fed : int;
  fault : (int -> int64) option;
      (* datapath upset hook: called once per byte step with the register
         width, returns an XOR mask (0L = clean step) *)
}

let start ?fault (p : Poly.t) =
  (* The internal register lives in the reflected domain when the
     parameterisation reflects its input, so the initial value must be
     carried into that domain too. *)
  let init = if p.refin then reflect ~bits:p.width p.init else p.init in
  let sliceable = fault = None && (p.refin || (p.width >= 8 && p.width mod 8 = 0)) in
  {
    poly = p;
    step_table = table p;
    slice_table = slices p;
    sliceable;
    reg = init;
    fed = 0;
    fault;
  }

let copy t = { t with reg = t.reg }

let feed_byte t b =
  let b = b land 0xFF in
  t.fed <- t.fed + 1;
  let p = t.poly in
  (if p.refin then
     let idx = Int64.to_int (Int64.logand (Int64.logxor t.reg (Int64.of_int b)) 0xFFL) in
     t.reg <- Int64.logxor (Int64.shift_right_logical t.reg 8) t.step_table.(idx)
   else
     let idx =
       Int64.to_int
         (Int64.logand
            (Int64.logxor (Int64.shift_right_logical t.reg (p.width - 8)) (Int64.of_int b))
            0xFFL)
     in
     t.reg <-
       Int64.logand
         (Int64.logxor (Int64.shift_left t.reg 8) t.step_table.(idx))
         (Poly.mask p));
  match t.fault with
  | None -> ()
  | Some f ->
      let mask = f p.width in
      if mask <> 0L then t.reg <- Int64.logand (Int64.logxor t.reg mask) (Poly.mask p)

(* Fold the low [m] bytes of [v] (little-endian) into the register in one
   step: each byte k is combined with the register byte it would have met on
   the per-byte path and looked up in the table that accounts for the
   [m-1-k] zero-byte steps still to come; the register bits that survive all
   [m] shifts contribute the residual term. Requires [t.sliceable] and
   [1 <= m <= 8]. *)
let feed_chunk_le t v m =
  let p = t.poly in
  let sl = t.slice_table in
  let r = t.reg in
  let acc = ref 0L in
  if p.refin then begin
    for k = 0 to m - 1 do
      let rb = Int64.shift_right_logical r (8 * k) in
      let b = Int64.shift_right_logical v (8 * k) in
      let idx = Int64.to_int (Int64.logand (Int64.logxor rb b) 0xFFL) in
      acc := Int64.logxor !acc sl.(((m - 1 - k) * 256) + idx)
    done;
    (* shifting an int64 by >= 64 is unspecified, so the full-width case
       must produce the zero residual explicitly *)
    let residual = if 8 * m >= 64 then 0L else Int64.shift_right_logical r (8 * m) in
    t.reg <- Int64.logxor residual !acc
  end
  else begin
    let w = p.width in
    for k = 0 to m - 1 do
      let rb =
        if 8 * (k + 1) <= w then Int64.shift_right_logical r (w - (8 * (k + 1))) else 0L
      in
      let b = Int64.shift_right_logical v (8 * k) in
      let idx = Int64.to_int (Int64.logand (Int64.logxor rb b) 0xFFL) in
      acc := Int64.logxor !acc sl.(((m - 1 - k) * 256) + idx)
    done;
    let residual =
      if 8 * m >= w then 0L
      else Int64.logand (Int64.shift_left r (8 * m)) (Poly.mask p)
    in
    t.reg <- Int64.logand (Int64.logxor residual !acc) (Poly.mask p)
  end;
  t.fed <- t.fed + m

let feed_string t s =
  if not t.sliceable then String.iter (fun c -> feed_byte t (Char.code c)) s
  else begin
    let n = String.length s in
    let i = ref 0 in
    while n - !i >= 8 do
      let j = !i in
      let v = ref (Int64.of_int (Char.code (String.unsafe_get s (j + 7)))) in
      for k = 6 downto 0 do
        v :=
          Int64.logor (Int64.shift_left !v 8)
            (Int64.of_int (Char.code (String.unsafe_get s (j + k))))
      done;
      feed_chunk_le t !v 8;
      i := j + 8
    done;
    while !i < n do
      feed_byte t (Char.code (String.unsafe_get s !i));
      incr i
    done
  end

let feed_int64 t ~width v =
  if t.sliceable && width >= 1 && width <= 8 then feed_chunk_le t v width
  else
    for i = 0 to width - 1 do
      feed_byte t (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL))
    done

let value t =
  let p = t.poly in
  let r = if p.refout = p.refin then t.reg else reflect ~bits:p.width t.reg in
  Int64.logand (Int64.logxor r p.xorout) (Poly.mask p)

let bytes_fed t = t.fed

let digest_string p s =
  let t = start p in
  feed_string t s;
  value t

(* Bit-serial engine (the LFSR structure of Figure 3): the register lives in
   the normal domain; input bytes are fed MSB-first, or LSB-first when the
   parameterisation reflects its input. *)
let digest_serial (p : Poly.t) s =
  let mask = Poly.mask p in
  let reg = ref p.init in
  let feed_bit b =
    let top = Int64.logand (Int64.shift_right_logical !reg (p.width - 1)) 1L in
    reg := Int64.logand (Int64.shift_left !reg 1) mask;
    if Int64.logxor top (Int64.of_int b) = 1L then reg := Int64.logxor !reg p.poly
  in
  String.iter
    (fun c ->
      let byte = Char.code c in
      for i = 0 to 7 do
        let bit = if p.refin then (byte lsr i) land 1 else (byte lsr (7 - i)) land 1 in
        feed_bit bit
      done)
    s;
  let r = if p.refout then reflect ~bits:p.width !reg else !reg in
  Int64.logand (Int64.logxor r p.xorout) mask

let self_test p =
  let msg = "123456789" in
  (* a string long enough to exercise the slice-by-8 fold plus a ragged
     tail, cross-checked against the bit-serial reference *)
  let long = String.init 67 (fun i -> Char.chr ((i * 37 + 11) land 0xFF)) in
  let int64_feeds_match =
    let sliced = start p in
    feed_int64 sliced ~width:8 0x0123456789ABCDEFL;
    feed_int64 sliced ~width:4 0xCAFEBABEL;
    feed_int64 sliced ~width:1 0x5AL;
    let byte_at_a_time = start p in
    List.iter
      (fun (width, v) ->
        for i = 0 to width - 1 do
          feed_byte byte_at_a_time
            (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL))
        done)
      [ (8, 0x0123456789ABCDEFL); (4, 0xCAFEBABEL); (1, 0x5AL) ];
    value sliced = value byte_at_a_time && bytes_fed sliced = bytes_fed byte_at_a_time
  in
  digest_string p msg = p.check
  && digest_serial p msg = p.check
  && digest_string p long = digest_serial p long
  && int64_feeds_match
