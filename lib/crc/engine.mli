(** CRC computation engines.

    Two implementations mirror the paper's Figure 3:
    - a {e serial} engine that shifts one bit per step (the LFSR-with-input-XOR
      structure), the reference for correctness; and
    - a {e parallel} table-driven engine that consumes 8 bits per step using a
      precomputed 256-entry table — the "n-bit parallel implementation" whose
      constants live in a small RAM in hardware.

    Both expose incremental state: the hardware accumulates input words as
    they arrive (hiding hash latency behind the original computation), so the
    software model must too. *)

type t
(** An in-flight CRC computation (the contents of one Hash Value Register). *)

val start : ?fault:(int -> int64) -> Poly.t -> t
(** [start p] begins a computation under parameterisation [p].

    [?fault] models single-event upsets in the CRC datapath: when present it
    is called once per byte step with the register width and must return an
    XOR mask folded into the shift register ([0L] leaves the step clean).
    The hook is how {!Axmemo_faults.Injector} reaches the engine without the
    CRC library depending on the fault subsystem. Absent, the engine is
    exactly the fault-free datapath. *)

val copy : t -> t
(** [copy t] snapshots the in-flight state. *)

val feed_byte : t -> int -> unit
(** [feed_byte t b] accumulates one input byte [b] (0-255) using the parallel
    (table-driven) step. *)

val feed_string : t -> string -> unit
(** [feed_string t s] accumulates every byte of [s] in order. Fault-free
    engines consume 8 bytes per step off the slice-by-8 tables; the result
    is identical to folding {!feed_byte} over [s]. *)

val feed_int64 : t -> width:int -> int64 -> unit
(** [feed_int64 t ~width v] accumulates the low [width] bytes of [v] in
    little-endian order — how the memoization unit consumes register inputs.
    Fault-free engines fold all [width] bytes in a single sliced step. *)

val value : t -> int64
(** [value t] finalizes (reflection + xorout) without disturbing the in-flight
    state, returning the CRC of everything fed so far. *)

val bytes_fed : t -> int
(** [bytes_fed t] counts bytes accumulated since [start]. *)

val digest_string : Poly.t -> string -> int64
(** [digest_string p s] is the one-shot CRC of [s]. *)

val digest_serial : Poly.t -> string -> int64
(** [digest_serial p s] computes the same CRC with the bit-serial engine.
    Used to cross-check the table-driven implementation. *)

val table : Poly.t -> int64 array
(** [table p] exposes the 256-entry step table (the contents of the small
    constants RAM in the hardware implementation). *)

val self_test : Poly.t -> bool
(** [self_test p] verifies both engines produce [p.check] on "123456789",
    that the slice-by-8 string path agrees with {!digest_serial} on a longer
    message, and that sliced {!feed_int64} steps match byte-at-a-time
    feeding. *)
