(** Dynamic IR trace with on-the-fly dataflow resolution.

    Stand-in for the paper's LLVM-Tracer step: executing a program with this
    hook attached yields one entry per dynamic instruction, with operand
    producers already resolved to earlier entries (registers are renamed
    through call boundaries, and load values are linked to in-trace stores
    to the same address). The result feeds {!Axmemo_ddg} directly.

    Producer ids:
    - [>= 0]: index of the producing trace entry;
    - [< 0]: a distinct {e external} input (function parameter of the
      outermost traced frame, or a load from memory never written in-trace);
    - absent: constant operand. *)

type entry = {
  static_id : int;  (** unique id of the static instruction *)
  weight : int;  (** estimated latency (vertex weight in the DDDG) *)
  srcs : int array;  (** producer ids, see above *)
  is_load : bool;
  is_store : bool;
}

type t

val create :
  ?max_entries:int ->
  machine:Axmemo_cpu.Machine.t ->
  program:Axmemo_ir.Ir.program ->
  unit ->
  t
(** [create ~machine ~program ()] prepares an empty trace; recording stops
    silently after [max_entries] (default 400_000) to bound analysis cost.
    [program] provides parameter registers for cross-call renaming. *)

val hooks : t -> Axmemo_ir.Interp.hooks
(** Allocation-free attachment; pass as the interpreter's [hooks] during a
    {e sample-input} run. *)

val hook : t -> Axmemo_ir.Interp.event -> unit
(** Attach as the interpreter hook during a {e sample-input} run
    (event-based convenience form of {!hooks}). *)

val entries : t -> entry array
(** Recorded entries in execution order. *)

val truncated : t -> bool
(** True if the entry limit was reached. *)

val static_instances : t -> (int, int) Hashtbl.t
(** Map from static instruction id to its dynamic execution count. *)

val weight_of_instr : Axmemo_cpu.Machine.t -> Axmemo_ir.Ir.instr -> int
(** The latency estimate used as vertex weight. *)
