module Ir = Axmemo_ir.Ir
module Interp = Axmemo_ir.Interp
module Machine = Axmemo_cpu.Machine

type entry = {
  static_id : int;
  weight : int;
  srcs : int array;
  is_load : bool;
  is_store : bool;
}

type frame = {
  vals : (int, int) Hashtbl.t;  (* register -> producer id *)
  call_dsts : Ir.reg array option;  (* caller registers to bind at Leave *)
  caller_vals : (int, int) Hashtbl.t option;
}

type t = {
  machine : Machine.t;
  max_entries : int;
  params_of : (string, Ir.reg array) Hashtbl.t;
  mutable buf : entry array;
  mutable count : int;
  mutable full : bool;
  statics : (string * int * int, int) Hashtbl.t;
  mutable next_static : int;
  mutable frames : frame list;
  mem_writer : (int, int) Hashtbl.t;
  mutable next_ext : int;
  mutable pending_args : int array;
  mutable pending_dsts : Ir.reg array option;
  mutable last_ret : int array;
}

let create ?(max_entries = 400_000) ~machine ~program () =
  let params_of = Hashtbl.create 16 in
  Array.iter
    (fun (f : Ir.func) ->
      Hashtbl.replace params_of f.fname (Array.map fst f.params))
    (program : Ir.program).funcs;
  {
    machine;
    max_entries;
    params_of;
    buf = Array.make 4096 { static_id = 0; weight = 0; srcs = [||]; is_load = false; is_store = false };
    count = 0;
    full = false;
    statics = Hashtbl.create 256;
    next_static = 0;
    frames = [];
    mem_writer = Hashtbl.create 4096;
    next_ext = -2;
    pending_args = [||];
    pending_dsts = None;
    last_ret = [||];
  }

let weight_of_instr (machine : Machine.t) (instr : Ir.instr) =
  match instr with
  | Const _ | Mov _ | Select _ | Icmp _ -> machine.lat_alu
  | Binop { op; _ } -> (
      match op with
      | Mul -> machine.lat_mul
      | Div | Rem -> machine.lat_div
      | Add | Sub | And | Or | Xor | Shl | Lshr | Ashr -> machine.lat_alu)
  | Fbinop { op; _ } -> (
      match op with Fdiv -> machine.lat_fdiv | Fadd | Fsub | Fmul -> machine.lat_fp)
  | Funop { op; _ } -> (
      match op with
      | Fsqrt -> machine.lat_fsqrt
      | Fsin | Fcos | Fexp | Flog -> machine.lat_ftrig
      | Fneg | Fabs | Ffloor | Fround -> machine.lat_fp)
  | Fcmp _ -> machine.lat_fp
  | Cast { op; _ } -> (
      match op with
      | I_to_f | F_to_i | F32_of_f64 | F64_of_f32 -> machine.lat_fp
      | Bits_of_f32 | F32_of_bits | Bits_of_f64 | F64_of_bits | Sext_32_64 | Trunc_64_32
        ->
          machine.lat_alu)
  | Load _ -> machine.lat_alu + 1  (* optimistic L1 hit *)
  | Store _ -> machine.lat_store
  | Call _ -> machine.lat_branch
  | Memo _ -> 1

let static_id t fname bidx iidx =
  let key = (fname, bidx, iidx) in
  match Hashtbl.find_opt t.statics key with
  | Some id -> id
  | None ->
      let id = t.next_static in
      t.next_static <- id + 1;
      Hashtbl.replace t.statics key id;
      id

let fresh_ext t =
  let e = t.next_ext in
  t.next_ext <- e - 1;
  e

let current t =
  match t.frames with
  | f :: _ -> f
  | [] -> failwith "Trace: event outside any frame"

let producer_of_reg t r =
  let f = current t in
  match Hashtbl.find_opt f.vals r with
  | Some id -> id
  | None ->
      let e = fresh_ext t in
      Hashtbl.replace f.vals r e;
      e

let producer_of_operand t = function
  | Ir.Reg r -> Some (producer_of_reg t r)
  | Ir.Imm _ -> None

let push_entry t e =
  if t.count >= t.max_entries then t.full <- true
  else begin
    if t.count >= Array.length t.buf then begin
      let fresh = Array.make (2 * Array.length t.buf) e in
      Array.blit t.buf 0 fresh 0 t.count;
      t.buf <- fresh
    end;
    t.buf.(t.count) <- e;
    t.count <- t.count + 1
  end

let define t r id = Hashtbl.replace (current t).vals r id

let record t fname bidx iidx (instr : Ir.instr) addr =
  if t.full then ()
  else begin
    let sid = static_id t fname bidx iidx in
    let weight = weight_of_instr t.machine instr in
    let src_ids =
      List.filter_map (fun o -> producer_of_operand t o)
        (List.map (fun r -> Ir.Reg r) (Ir.instr_srcs instr))
    in
    let srcs, is_load, is_store =
      match instr with
      | Load _ | Memo (Ld_crc _) ->
          let mem_src =
            match Hashtbl.find_opt t.mem_writer addr with
            | Some id -> id
            | None ->
                let e = fresh_ext t in
                Hashtbl.replace t.mem_writer addr e;
                e
          in
          (Array.of_list (mem_src :: src_ids), true, false)
      | Store _ -> (Array.of_list src_ids, false, true)
      | _ -> (Array.of_list src_ids, false, false)
    in
    let id = t.count in
    push_entry t { static_id = sid; weight; srcs; is_load; is_store };
    if not t.full then begin
      (match instr with
      | Store _ -> Hashtbl.replace t.mem_writer addr id
      | _ -> ());
      List.iter (fun r -> define t r id) (Ir.instr_dst instr)
    end
  end

let on_enter t fname =
  let params =
    match Hashtbl.find_opt t.params_of fname with Some p -> p | None -> [||]
  in
  let vals = Hashtbl.create 64 in
  (match t.pending_dsts with
  | Some _ ->
      Array.iteri
        (fun i r ->
          if i < Array.length t.pending_args then
            Hashtbl.replace vals r t.pending_args.(i))
        params
  | None -> ());
  let caller_vals =
    match t.frames with f :: _ -> Some f.vals | [] -> None
  in
  t.frames <-
    { vals; call_dsts = t.pending_dsts; caller_vals = (match t.pending_dsts with Some _ -> caller_vals | None -> None) }
    :: t.frames;
  t.pending_dsts <- None;
  t.pending_args <- [||]

let on_leave t _fname =
  match t.frames with
  | [] -> ()
  | frame :: rest ->
      t.frames <- rest;
      (match (frame.call_dsts, frame.caller_vals) with
      | Some dsts, Some cvals ->
          Array.iteri
            (fun i r ->
              if i < Array.length t.last_ret then Hashtbl.replace cvals r t.last_ret.(i))
            dsts
      | _ -> ())

let on_exec t fname bidx iidx (instr : Ir.instr) addr =
  match instr with
  | Call { dsts; args; _ } ->
      (* No vertex: the call is inlined into the trace; remember the
         argument producers for parameter binding at Enter. *)
      t.pending_args <-
        Array.map
          (fun o ->
            match producer_of_operand t o with Some id -> id | None -> fresh_ext t)
          args;
      t.pending_dsts <- Some dsts
  | _ -> record t fname bidx iidx instr addr

let on_term t _fname _bidx (term : Ir.terminator) =
  match term with
  | Ret ops ->
      t.last_ret <-
        Array.map
          (fun o -> match producer_of_operand t o with Some id -> id | None -> fresh_ext t)
          ops
  | Jmp _ | Br _ | Br_memo _ -> ()

let hooks t : Interp.hooks =
  {
    Interp.on_enter = on_enter t;
    on_leave = on_leave t;
    on_exec = on_exec t;
    on_term = on_term t;
    (* the tracer resolves producers dynamically; nothing to precompute *)
    exec_site = None;
    term_site = None;
  }

let hook t (ev : Interp.event) =
  match ev with
  | Enter { fname } -> on_enter t fname
  | Leave { fname } -> on_leave t fname
  | Exec { fname; bidx; iidx; instr; addr } -> on_exec t fname bidx iidx instr addr
  | Term { fname; bidx; term } -> on_term t fname bidx term

let entries t = Array.sub t.buf 0 t.count

let truncated t = t.full

let static_instances t =
  let tbl = Hashtbl.create 256 in
  for i = 0 to t.count - 1 do
    let sid = t.buf.(i).static_id in
    Hashtbl.replace tbl sid (1 + Option.value ~default:0 (Hashtbl.find_opt tbl sid))
  done;
  tbl
