(** FFT: radix-2 Cooley-Tukey over 4096 points (AxBench).

    The memoized block is the twiddle-factor computation: one 4-byte angle
    in, (cos, sin) packed out, no truncation (Table 2). In the textbook
    loop nest the same m/2 distinct angles are recomputed n/m times per
    stage, so the LUT hit rate is naturally very high — the paper reports
    >90% and the largest dynamic-instruction reduction on this benchmark. *)

module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder
module Memory = Axmemo_ir.Memory
module Rng = Axmemo_util.Rng
module Transform = Axmemo_compiler.Transform

let meta : Workload.meta =
  {
    name = "fft";
    domain = "Signal Processing";
    description = "Radix-2 Cooley-Tukey FFT";
    dataset = "4096 floating-point data points";
    input_bytes = "4";
    trunc_bits = "0";
    error_bound = Axmemo_compiler.Tuning.default_error_bound;
  }

let kernel_name = "fft_twiddle"

let f = B.f32

let build_kernel () =
  let b = B.create ~name:kernel_name ~pure:true ~params:[ F32 ] ~rets:[ F32; F32 ] () in
  let theta = B.param b 0 in
  let c = match B.call b Mathlib.cos_name ~rets:1 [ theta ] with [ v ] -> v | _ -> assert false in
  let s = match B.call b Mathlib.sin_name ~rets:1 [ theta ] with [ v ] -> v | _ -> assert false in
  B.ret b [ c; s ];
  B.finish b

(* In-place iterative FFT over split re/im arrays. *)
let build_main ~n ~log2n =
  let b = B.create ~name:Workload.entry_name ~params:[ I64; I64 ] ~rets:[] () in
  let re_base = B.param b 0 and im_base = B.param b 1 in
  let addr_of base idx = B.binop b Add I64 base (B.cast b Sext_32_64 (B.muli b idx (B.i32 4))) in
  ignore log2n;
  (* Bit-reversal permutation (incremental reversed counter: amortized O(1)
     per element, as real FFT codes do). *)
  let j = B.fresh b in
  B.mov b j (B.i32 0);
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 (n - 1)) (fun i ->
      let swap = B.icmp b Ilt I32 i (B.rv j) in
      B.if_ b swap
        ~then_:(fun () ->
          let ai = addr_of re_base i and aj = addr_of re_base (B.rv j) in
          let ri = B.load b F32 ai 0 and rj = B.load b F32 aj 0 in
          B.store b F32 ~src:rj ~base:ai ~offset:0;
          B.store b F32 ~src:ri ~base:aj ~offset:0;
          let bi = addr_of im_base i and bj = addr_of im_base (B.rv j) in
          let ii = B.load b F32 bi 0 and ij = B.load b F32 bj 0 in
          B.store b F32 ~src:ij ~base:bi ~offset:0;
          B.store b F32 ~src:ii ~base:bj ~offset:0)
        ~else_:(fun () -> ());
      let bit = B.fresh b in
      B.mov b bit (B.i32 (n / 2));
      B.while_loop b
        ~cond:(fun () ->
          B.icmp b Ine I32 (B.binop b And I32 (B.rv j) (B.rv bit)) (B.i32 0))
        ~body:(fun () ->
          B.mov b j (B.binop b Xor I32 (B.rv j) (B.rv bit));
          B.mov b bit (B.binop b Lshr I32 (B.rv bit) (B.i32 1)));
      B.mov b j (B.binop b Or I32 (B.rv j) (B.rv bit)));
  (* Butterfly stages. *)
  B.for_loop b ~from:(B.i32 1) ~below:(B.i32 (log2n + 1)) (fun s ->
      let m = B.binop b Shl I32 (B.i32 1) s in
      let half = B.binop b Lshr I32 m (B.i32 1) in
      let nblocks = B.binop b Div I32 (B.i32 n) m in
      let neg_two_pi_over_m =
        B.fdiv b F32 (f (-6.283185307179586)) (B.cast b I_to_f m)
      in
      B.for_loop b ~from:(B.i32 0) ~below:nblocks (fun kb ->
          let k = B.muli b kb m in
          B.for_loop b ~from:(B.i32 0) ~below:half (fun j ->
              let theta = B.fmul b F32 (B.cast b I_to_f j) neg_two_pi_over_m in
              let wr, wi =
                match B.call b kernel_name ~rets:2 [ theta ] with
                | [ a; b' ] -> (a, b')
                | _ -> assert false
              in
              let lo = B.addi b k j in
              let hi = B.addi b lo half in
              let a_lo_re = addr_of re_base lo and a_hi_re = addr_of re_base hi in
              let a_lo_im = addr_of im_base lo and a_hi_im = addr_of im_base hi in
              let xr = B.load b F32 a_hi_re 0 and xi = B.load b F32 a_hi_im 0 in
              let tr = B.fsub b F32 (B.fmul b F32 wr xr) (B.fmul b F32 wi xi) in
              let ti = B.fadd b F32 (B.fmul b F32 wr xi) (B.fmul b F32 wi xr) in
              let yr = B.load b F32 a_lo_re 0 and yi = B.load b F32 a_lo_im 0 in
              B.store b F32 ~src:(B.fsub b F32 yr tr) ~base:a_hi_re ~offset:0;
              B.store b F32 ~src:(B.fsub b F32 yi ti) ~base:a_hi_im ~offset:0;
              B.store b F32 ~src:(B.fadd b F32 yr tr) ~base:a_lo_re ~offset:0;
              B.store b F32 ~src:(B.fadd b F32 yi ti) ~base:a_lo_im ~offset:0)));
  B.ret b [];
  B.finish b

let make (variant : Workload.variant) : Workload.instance =
  let seed, log2n = match variant with Sample -> (3L, 10) | Eval -> (29L, 12) in
  let n = 1 lsl log2n in
  let rng = Rng.create (Rng.derive_stream seed) in
  (* A multi-tone signal with additive noise. *)
  let re =
    Array.init n (fun i ->
        let t = float_of_int i in
        sin (t /. 7.0) +. (0.5 *. sin (t /. 23.0)) +. Rng.gaussian rng ~mean:0.0 ~stddev:0.1)
  in
  let im = Array.make n 0.0 in
  let mem = Memory.create () in
  let re_base = Workload.alloc_f32s mem re in
  let im_base = Workload.alloc_f32s mem im in
  let program = Workload.program_with_math [ build_main ~n ~log2n; build_kernel () ] in
  {
    meta;
    program;
    mem;
    entry = Workload.entry_name;
    args = [| VI (Int64.of_int re_base); VI (Int64.of_int im_base) |];
    regions = [ { Transform.kernel = kernel_name; lut_id = 0; truncs = [| 0 |] } ];
    barrier = None;
    read_outputs =
      (fun () ->
        let r = Workload.read_f32s mem ~base:re_base ~count:n in
        let i = Workload.read_f32s mem ~base:im_base ~count:n in
        Floats (Array.append r i));
  }
