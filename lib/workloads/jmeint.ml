(** Jmeint: triangle-triangle intersection (AxBench, 3D gaming).

    The memoized block is the whole intersection test over the two
    triangles' vertices, truncated by 6 bits (Table 2). The paper notes the
    input size as 36 bytes (half-precision vertex data); our vertices are
    binary32, so the streamed block input is 72 bytes — the widest of all
    benchmarks either way. Random triangle pairs essentially never repeat,
    so the LUT hit rate is ~0 and AxMemo shows no speedup — the paper's
    negative result, reproduced.

    The kernel follows Möller's test: both plane-rejection stages exactly,
    then an interval-overlap decision along the plane-intersection line.
    The quality metric is the misclassification rate against the baseline
    run of the same kernel, so only memoization-induced flips count. *)

module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder
module Memory = Axmemo_ir.Memory
module Rng = Axmemo_util.Rng
module Transform = Axmemo_compiler.Transform

let meta : Workload.meta =
  {
    name = "jmeint";
    domain = "3D Gaming";
    description = "Detects the intersection of two triangles";
    dataset = "10K random triangle pairs";
    input_bytes = "72 (paper: 36 at fp16)";
    trunc_bits = "6";
    error_bound = Axmemo_compiler.Tuning.default_error_bound;
  }

let kernel_name = "jm_trisect"

let f = B.f32

(* Vector helpers over operand triples. *)
let vsub b (ax, ay, az) (bx, by, bz) =
  (B.fsub b F32 ax bx, B.fsub b F32 ay by, B.fsub b F32 az bz)

let cross b (ax, ay, az) (bx, by, bz) =
  ( B.fsub b F32 (B.fmul b F32 ay bz) (B.fmul b F32 az by),
    B.fsub b F32 (B.fmul b F32 az bx) (B.fmul b F32 ax bz),
    B.fsub b F32 (B.fmul b F32 ax by) (B.fmul b F32 ay bx) )

let dot b (ax, ay, az) (bx, by, bz) =
  B.fadd b F32 (B.fmul b F32 ax bx) (B.fadd b F32 (B.fmul b F32 ay by) (B.fmul b F32 az bz))

let min3 b a c d =
  let m = B.select b (B.fcmp b Flt F32 a c) a c in
  B.select b (B.fcmp b Flt F32 m d) m d

let max3 b a c d =
  let m = B.select b (B.fcmp b Fgt F32 a c) a c in
  B.select b (B.fcmp b Fgt F32 m d) m d

let build_kernel () =
  let b =
    B.create ~name:kernel_name ~pure:true
      ~params:(List.init 18 (fun _ : Ir.ty -> F32))
      ~rets:[ I32 ] ()
  in
  let v i = (B.param b (3 * i), B.param b ((3 * i) + 1), B.param b ((3 * i) + 2)) in
  let v0 = v 0 and v1 = v 1 and v2 = v 2 in
  let u0 = v 3 and u1 = v 4 and u2 = v 5 in
  let early_reject cond =
    let rej = B.block b "reject" in
    let cont = B.block b "cont" in
    B.br b cond rej cont;
    B.switch_to b rej;
    B.ret b [ B.i32 0 ];
    B.switch_to b cont
  in
  (* Plane of triangle V against vertices of U. *)
  let n1 = cross b (vsub b v1 v0) (vsub b v2 v0) in
  let d1 = B.funop b Fneg F32 (dot b n1 v0) in
  let du0 = B.fadd b F32 (dot b n1 u0) d1 in
  let du1 = B.fadd b F32 (dot b n1 u1) d1 in
  let du2 = B.fadd b F32 (dot b n1 u2) d1 in
  let same_side =
    B.binop b And I32
      (B.fcmp b Fgt F32 (B.fmul b F32 du0 du1) (f 0.0))
      (B.fcmp b Fgt F32 (B.fmul b F32 du0 du2) (f 0.0))
  in
  early_reject same_side;
  (* Plane of triangle U against vertices of V. *)
  let n2 = cross b (vsub b u1 u0) (vsub b u2 u0) in
  let d2 = B.funop b Fneg F32 (dot b n2 u0) in
  let dv0 = B.fadd b F32 (dot b n2 v0) d2 in
  let dv1 = B.fadd b F32 (dot b n2 v1) d2 in
  let dv2 = B.fadd b F32 (dot b n2 v2) d2 in
  let same_side2 =
    B.binop b And I32
      (B.fcmp b Fgt F32 (B.fmul b F32 dv0 dv1) (f 0.0))
      (B.fcmp b Fgt F32 (B.fmul b F32 dv0 dv2) (f 0.0))
  in
  early_reject same_side2;
  (* Intersection-line direction; compare projection intervals. *)
  let d = cross b n1 n2 in
  let pv0 = dot b d v0 and pv1 = dot b d v1 and pv2 = dot b d v2 in
  let pu0 = dot b d u0 and pu1 = dot b d u1 and pu2 = dot b d u2 in
  let v_min = min3 b pv0 pv1 pv2 and v_max = max3 b pv0 pv1 pv2 in
  let u_min = min3 b pu0 pu1 pu2 and u_max = max3 b pu0 pu1 pu2 in
  let overlap =
    B.binop b And I32
      (B.fcmp b Fle F32 v_min u_max)
      (B.fcmp b Fle F32 u_min v_max)
  in
  B.ret b [ overlap ];
  B.finish b

let build_main n =
  let b = B.create ~name:Workload.entry_name ~params:[ I64; I64 ] ~rets:[] () in
  let in_base = B.param b 0 and out_base = B.param b 1 in
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 n) (fun i ->
      let rec_addr =
        B.binop b Add I64 in_base (B.cast b Sext_32_64 (B.muli b i (B.i32 72)))
      in
      let args = List.init 18 (fun k -> B.load b F32 rec_addr (4 * k)) in
      let hit =
        match B.call b kernel_name ~rets:1 args with [ v ] -> v | _ -> assert false
      in
      let out = B.binop b Add I64 out_base (B.cast b Sext_32_64 (B.muli b i (B.i32 4))) in
      B.store b I32 ~src:hit ~base:out ~offset:0);
  B.ret b [];
  B.finish b

let generate_pairs rng n =
  Array.init (n * 18) (fun _ -> Rng.uniform rng (-1.0) 1.0)

let make (variant : Workload.variant) : Workload.instance =
  let seed, total = match variant with Sample -> (61L, 2_000) | Eval -> (67L, 10_000) in
  let rng = Rng.create (Rng.derive_stream seed) in
  let coords = generate_pairs rng total in
  let mem = Memory.create () in
  let in_base = Workload.alloc_f32s mem coords in
  let out_base = Workload.alloc_f32_zeros mem total in
  let program = Workload.program_with_math [ build_main total; build_kernel () ] in
  {
    meta;
    program;
    mem;
    entry = Workload.entry_name;
    args = [| VI (Int64.of_int in_base); VI (Int64.of_int out_base) |];
    regions =
      [ { Transform.kernel = kernel_name; lut_id = 0; truncs = Array.make 18 6 } ];
    barrier = None;
    read_outputs =
      (fun () ->
        let raw = Workload.read_i32s mem ~base:out_base ~count:total in
        Bools (Array.map (fun v -> v <> 0) raw));
  }
