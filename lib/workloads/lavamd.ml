(** LavaMD: particle interactions within a cut-off radius (Rodinia).

    The memoized block is the pairwise interaction coefficient: a distance
    vector (dx, dy, dz) — 12 bytes, no truncation (Table 2) — mapped to the
    exponential kernel exp(-2 a^2 r^2). The paper's dataset has particles at
    random {e initial} positions; reuse stems from repeated displacement
    vectors. Our substitute places particles on a perturbation-free crystal
    lattice (as in solid-state MD), which yields the same kind of repeated
    displacement vectors without truncation. *)

module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder
module Memory = Axmemo_ir.Memory
module Rng = Axmemo_util.Rng
module Transform = Axmemo_compiler.Transform

let meta : Workload.meta =
  {
    name = "lavamd";
    domain = "Molecular Dynamics";
    description = "Simulates particle interactions with charge";
    dataset = "8 boxes x 24 lattice particles";
    input_bytes = "12";
    trunc_bits = "0";
    error_bound = Axmemo_compiler.Tuning.default_error_bound;
  }

let kernel_name = "md_coef"

let f = B.f32

let alpha2 = 0.5

(* vij = exp(-2 a^2 r^2) — the LavaMD potential's radial factor. *)
let build_kernel () =
  let b = B.create ~name:kernel_name ~pure:true ~params:[ F32; F32; F32 ] ~rets:[ F32 ] () in
  let dx = B.param b 0 and dy = B.param b 1 and dz = B.param b 2 in
  let r2 =
    B.fadd b F32 (B.fmul b F32 dx dx) (B.fadd b F32 (B.fmul b F32 dy dy) (B.fmul b F32 dz dz))
  in
  let arg = B.fmul b F32 (f (-2.0 *. alpha2)) r2 in
  let v = match B.call b Mathlib.exp_name ~rets:1 [ arg ] with [ v ] -> v | _ -> assert false in
  B.ret b [ v ];
  B.finish b

(* For every particle, accumulate forces from all particles of all boxes
   (the box grid is small enough that every box neighbours every other). *)
let build_main ~n_particles =
  let b = B.create ~name:Workload.entry_name ~params:[ I64; I64; I64 ] ~rets:[] () in
  let pos_base = B.param b 0 and q_base = B.param b 1 and force_base = B.param b 2 in
  let vec_addr base i = B.binop b Add I64 base (B.cast b Sext_32_64 (B.muli b i (B.i32 12))) in
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 n_particles) (fun i ->
      let ai = vec_addr pos_base i in
      let xi = B.load b F32 ai 0 and yi = B.load b F32 ai 4 and zi = B.load b F32 ai 8 in
      let fx = B.fresh b and fy = B.fresh b and fz = B.fresh b in
      B.mov b fx (f 0.0);
      B.mov b fy (f 0.0);
      B.mov b fz (f 0.0);
      B.for_loop b ~from:(B.i32 0) ~below:(B.i32 n_particles) (fun j ->
          let aj = vec_addr pos_base j in
          let xj = B.load b F32 aj 0 and yj = B.load b F32 aj 4 and zj = B.load b F32 aj 8 in
          let dx = B.fsub b F32 xi xj in
          let dy = B.fsub b F32 yi yj in
          let dz = B.fsub b F32 zi zj in
          let v =
            match B.call b kernel_name ~rets:1 [ dx; dy; dz ] with
            | [ v ] -> v
            | _ -> assert false
          in
          let qj =
            B.load b F32 (B.binop b Add I64 q_base (B.cast b Sext_32_64 (B.muli b j (B.i32 4)))) 0
          in
          let s = B.fmul b F32 qj v in
          B.mov b fx (B.fadd b F32 (B.rv fx) (B.fmul b F32 s dx));
          B.mov b fy (B.fadd b F32 (B.rv fy) (B.fmul b F32 s dy));
          B.mov b fz (B.fadd b F32 (B.rv fz) (B.fmul b F32 s dz)));
      let fa = vec_addr force_base i in
      B.store b F32 ~src:(B.rv fx) ~base:fa ~offset:0;
      B.store b F32 ~src:(B.rv fy) ~base:fa ~offset:4;
      B.store b F32 ~src:(B.rv fz) ~base:fa ~offset:8);
  B.ret b [];
  B.finish b

(* Crystal lattice: positions are integer multiples of the lattice constant,
   so displacement vectors repeat across particle pairs exactly. *)
let generate_particles rng ~boxes_per_side ~per_box =
  let lattice = 0.25 in
  let pts = ref [] in
  for bx = 0 to boxes_per_side - 1 do
    for by = 0 to boxes_per_side - 1 do
      for bz = 0 to boxes_per_side - 1 do
        for _ = 1 to per_box do
          let cell () = float_of_int (Rng.int rng 4) *. lattice in
          let x = (float_of_int bx) +. cell () in
          let y = (float_of_int by) +. cell () in
          let z = (float_of_int bz) +. cell () in
          let q = float_of_int (1 + Rng.int rng 3) *. 0.5 in
          pts := (x, y, z, q) :: !pts
        done
      done
    done
  done;
  Array.of_list (List.rev !pts)

let make (variant : Workload.variant) : Workload.instance =
  let seed, boxes_per_side, per_box =
    match variant with Sample -> (41L, 2, 10) | Eval -> (43L, 2, 24)
  in
  let rng = Rng.create (Rng.derive_stream seed) in
  let particles = generate_particles rng ~boxes_per_side ~per_box in
  let n = Array.length particles in
  let mem = Memory.create () in
  let pos =
    Array.concat (Array.to_list (Array.map (fun (x, y, z, _) -> [| x; y; z |]) particles))
  in
  let qs = Array.map (fun (_, _, _, q) -> q) particles in
  let pos_base = Workload.alloc_f32s mem pos in
  let q_base = Workload.alloc_f32s mem qs in
  let force_base = Workload.alloc_f32_zeros mem (3 * n) in
  let program = Workload.program_with_math [ build_main ~n_particles:n; build_kernel () ] in
  {
    meta;
    program;
    mem;
    entry = Workload.entry_name;
    args = [| VI (Int64.of_int pos_base); VI (Int64.of_int q_base); VI (Int64.of_int force_base) |];
    regions = [ { Transform.kernel = kernel_name; lut_id = 0; truncs = [| 0; 0; 0 |] } ];
    barrier = None;
    read_outputs = (fun () -> Floats (Workload.read_f32s mem ~base:force_base ~count:(3 * n)));
  }
