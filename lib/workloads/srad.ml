(** SRAD: speckle-reducing anisotropic diffusion (Rodinia, medical imaging).

    The memoized block is the per-pixel diffusion-coefficient computation:
    the four directional derivatives, the centre intensity, and the global
    speckle statistic q0² — 24 bytes, truncated by 18 bits (Table 2). q0²
    is a kernel {e input}, so its per-iteration change flows into the hash
    and no explicit invalidation is needed. Ultrasound-like images are
    locally smooth, so heavily truncated derivative tuples repeat. *)

module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder
module Memory = Axmemo_ir.Memory
module Rng = Axmemo_util.Rng
module Transform = Axmemo_compiler.Transform

let meta : Workload.meta =
  {
    name = "srad";
    domain = "Medical Imaging";
    description = "Image denoising by anisotropic diffusion";
    dataset = "96x96 synthetic speckle image, 4 iterations";
    input_bytes = "24";
    trunc_bits = "18";
    error_bound = Axmemo_compiler.Tuning.image_error_bound;
  }

let kernel_name = "srad_coef"

let f = B.f32

(* Diffusion coefficient (Yu & Acton):
   G2 = (dN^2+dS^2+dW^2+dE^2)/Jc^2;  L = (dN+dS+dW+dE)/Jc
   num = G2/2 - L^2/16;  den = (1 + L/4)^2;  qsqr = num/den
   c = 1 / (1 + (qsqr - q0sqr) / (q0sqr (1 + q0sqr))), clamped to [0,1]. *)
let build_kernel () =
  let b =
    B.create ~name:kernel_name ~pure:true
      ~params:[ F32; F32; F32; F32; F32; F32 ]
      ~rets:[ F32 ] ()
  in
  let dn = B.param b 0 and ds = B.param b 1 and dw = B.param b 2 and de = B.param b 3 in
  let jc = B.param b 4 and q0sqr = B.param b 5 in
  let sq v = B.fmul b F32 v v in
  let g2 =
    B.fdiv b F32
      (B.fadd b F32 (sq dn) (B.fadd b F32 (sq ds) (B.fadd b F32 (sq dw) (sq de))))
      (sq jc)
  in
  let l = B.fdiv b F32 (B.fadd b F32 dn (B.fadd b F32 ds (B.fadd b F32 dw de))) jc in
  let num = B.fsub b F32 (B.fmul b F32 (f 0.5) g2) (B.fmul b F32 (f 0.0625) (sq l)) in
  let den = sq (B.fadd b F32 (f 1.0) (B.fmul b F32 (f 0.25) l)) in
  let qsqr = B.fdiv b F32 num den in
  let den2 =
    B.fdiv b F32 (B.fsub b F32 qsqr q0sqr)
      (B.fmul b F32 q0sqr (B.fadd b F32 (f 1.0) q0sqr))
  in
  let c = B.fdiv b F32 (f 1.0) (B.fadd b F32 (f 1.0) den2) in
  let c = B.select b (B.fcmp b Flt F32 c (f 0.0)) (f 0.0) c in
  let c = B.select b (B.fcmp b Fgt F32 c (f 1.0)) (f 1.0) c in
  B.ret b [ c ];
  B.finish b

let build_main ~side ~iters ~stats_base =
  let b = B.create ~name:Workload.entry_name ~params:[ I64; I64 ] ~rets:[] () in
  let j_base = B.param b 0 and c_base = B.param b 1 in
  let row = 4 * side in
  let n = side * side in
  let sbase = B.i64 (Int64.of_int stats_base) in
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 iters) (fun _it ->
      (* Global speckle statistic over the whole field. *)
      let sum = B.fresh b and sum2 = B.fresh b in
      B.mov b sum (f 0.0);
      B.mov b sum2 (f 0.0);
      B.for_loop b ~from:(B.i32 0) ~below:(B.i32 n) (fun i ->
          let a = B.binop b Add I64 j_base (B.cast b Sext_32_64 (B.muli b i (B.i32 4))) in
          let v = B.load b F32 a 0 in
          B.mov b sum (B.fadd b F32 (B.rv sum) v);
          B.mov b sum2 (B.fadd b F32 (B.rv sum2) (B.fmul b F32 v v)));
      let nf = f (float_of_int n) in
      let mean = B.fdiv b F32 (B.rv sum) nf in
      let var =
        B.fsub b F32 (B.fdiv b F32 (B.rv sum2) nf) (B.fmul b F32 mean mean)
      in
      let q0sqr = B.fdiv b F32 var (B.fmul b F32 mean mean) in
      B.store b F32 ~src:q0sqr ~base:sbase ~offset:0;
      (* Pass 1: diffusion coefficients. *)
      B.for_loop b ~from:(B.i32 1) ~below:(B.i32 (side - 1)) (fun y ->
          B.for_loop b ~from:(B.i32 1) ~below:(B.i32 (side - 1)) (fun x ->
              let idx = B.addi b (B.muli b y (B.i32 side)) x in
              let off = B.cast b Sext_32_64 (B.muli b idx (B.i32 4)) in
              let ja = B.binop b Add I64 j_base off in
              let jc = B.load b F32 ja 0 in
              let dn = B.fsub b F32 (B.load b F32 ja (-row)) jc in
              let ds = B.fsub b F32 (B.load b F32 ja row) jc in
              let dw = B.fsub b F32 (B.load b F32 ja (-4)) jc in
              let de = B.fsub b F32 (B.load b F32 ja 4) jc in
              let q0 = B.load b F32 sbase 0 in
              let c =
                match B.call b kernel_name ~rets:1 [ dn; ds; dw; de; jc; q0 ] with
                | [ v ] -> v
                | _ -> assert false
              in
              B.store b F32 ~src:c ~base:(B.binop b Add I64 c_base off) ~offset:0));
      (* Pass 2: divergence update using southern/eastern coefficients. *)
      B.for_loop b ~from:(B.i32 1) ~below:(B.i32 (side - 1)) (fun y ->
          B.for_loop b ~from:(B.i32 1) ~below:(B.i32 (side - 1)) (fun x ->
              let idx = B.addi b (B.muli b y (B.i32 side)) x in
              let off = B.cast b Sext_32_64 (B.muli b idx (B.i32 4)) in
              let ja = B.binop b Add I64 j_base off in
              let ca = B.binop b Add I64 c_base off in
              let jc = B.load b F32 ja 0 in
              let cc = B.load b F32 ca 0 in
              let cs = B.load b F32 ca row and ce = B.load b F32 ca 4 in
              let dn = B.fsub b F32 (B.load b F32 ja (-row)) jc in
              let ds = B.fsub b F32 (B.load b F32 ja row) jc in
              let dw = B.fsub b F32 (B.load b F32 ja (-4)) jc in
              let de = B.fsub b F32 (B.load b F32 ja 4) jc in
              let div =
                B.fadd b F32
                  (B.fadd b F32 (B.fmul b F32 cc dn) (B.fmul b F32 cs ds))
                  (B.fadd b F32 (B.fmul b F32 cc dw) (B.fmul b F32 ce de))
              in
              let j' = B.fadd b F32 jc (B.fmul b F32 (f 0.125) div) in
              B.store b F32 ~src:j' ~base:ja ~offset:0)));
  B.ret b [];
  B.finish b

let make (variant : Workload.variant) : Workload.instance =
  let seed, side, iters = match variant with Sample -> (53L, 48, 3) | Eval -> (59L, 96, 4) in
  let rng = Rng.create (Rng.derive_stream seed) in
  (* Ultrasound-like: gently-sloped tissue regions plus sparse speckle; the
     intensity floor keeps Jc away from zero. *)
  let img =
    Workload.synth_image rng ~width:side ~height:side ~tones:6 ~slope:1.0
      ~speckle_fraction:0.03 ~speckle_sigma:5.0 ()
    |> Array.map (fun v -> Float.max 8.0 v)
  in
  let mem = Memory.create () in
  let j_base = Workload.alloc_f32s mem img in
  let c_base = Workload.alloc_f32_zeros mem (side * side) in
  let stats_base = Workload.alloc_f32_zeros mem 4 in
  let program =
    Workload.program_with_math [ build_main ~side ~iters ~stats_base; build_kernel () ]
  in
  {
    meta;
    program;
    mem;
    entry = Workload.entry_name;
    args = [| VI (Int64.of_int j_base); VI (Int64.of_int c_base) |];
    regions =
      [ { Transform.kernel = kernel_name; lut_id = 0; truncs = [| 18; 18; 18; 18; 18; 18 |] } ];
    barrier = None;
    read_outputs =
      (fun () -> Floats (Workload.read_f32s mem ~base:j_base ~count:(side * side)));
  }
