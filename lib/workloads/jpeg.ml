(** JPEG: 8x8 DCT + quantization (AxBench compression).

    Table 2 lists two logical LUTs of 16-byte inputs with truncation levels
    (2, 7). As in libjpeg, the DCT is fixed-point: pixel data and
    coefficients are integers, so the truncation is the paper's "absolute
    precision" integer mode — 2 bits merges ±2 intensity levels into one
    entry, 7 bits merges ±64. We memoize the {e even half} of the 8-point
    1D DCT: with s_i = x_i + x_{7-i}, one kernel produces (X0, X4) and a
    second (X2, X6), each from the same four 4-byte integer sums — two
    LUTs, 16 bytes each. The odd coefficients are computed directly, which
    is why JPEG has the lowest memoization coverage of the suite (Table 1)
    and only modest gains. *)

module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder
module Memory = Axmemo_ir.Memory
module Rng = Axmemo_util.Rng
module Transform = Axmemo_compiler.Transform

let meta : Workload.meta =
  {
    name = "jpeg";
    domain = "Compression";
    description = "Compresses an image using the JPEG pipeline";
    dataset = "128x128 synthetic image, 8x8 blocks";
    input_bytes = "(16, 16)";
    trunc_bits = "(2, 7)";
    error_bound = Axmemo_compiler.Tuning.image_error_bound;
  }

let kernel_a_name = "jpeg_dct_even_a" (* (X0, X4) *)
let kernel_b_name = "jpeg_dct_even_b" (* (X2, X6) *)

let f = B.f32

(* Fixed-point even-half DCT: integer sums in, rounded integer coefficients
   out (scaled by 8 to keep fractional precision through the second pass,
   as libjpeg's scaled integer DCT does). *)
let fixed_point_scale = 8.0

let round_to_i32 b v = B.cast b F_to_i (B.funop b Fround F32 v)

let build_kernel_a () =
  let b =
    B.create ~name:kernel_a_name ~pure:true ~params:[ I32; I32; I32; I32 ]
      ~rets:[ I32; I32 ] ()
  in
  let p i = B.cast b I_to_f (B.param b i) in
  let s0 = p 0 and s1 = p 1 and s2 = p 2 and s3 = p 3 in
  let x0 =
    B.fmul b F32 (f (0.35355339 *. fixed_point_scale))
      (B.fadd b F32 (B.fadd b F32 s0 s1) (B.fadd b F32 s2 s3))
  in
  let x4 =
    B.fmul b F32 (f (0.35355339 *. fixed_point_scale))
      (B.fadd b F32 (B.fsub b F32 s0 s1) (B.fsub b F32 s3 s2))
  in
  B.ret b [ round_to_i32 b x0; round_to_i32 b x4 ];
  B.finish b

let build_kernel_b () =
  let b =
    B.create ~name:kernel_b_name ~pure:true ~params:[ I32; I32; I32; I32 ]
      ~rets:[ I32; I32 ] ()
  in
  let p i = B.cast b I_to_f (B.param b i) in
  let s0 = p 0 and s1 = p 1 and s2 = p 2 and s3 = p 3 in
  let d03 = B.fsub b F32 s0 s3 and d12 = B.fsub b F32 s1 s2 in
  let x2 =
    B.fadd b F32
      (B.fmul b F32 (f (0.46193977 *. fixed_point_scale)) d03)
      (B.fmul b F32 (f (0.19134172 *. fixed_point_scale)) d12)
  in
  let x6 =
    B.fsub b F32
      (B.fmul b F32 (f (0.19134172 *. fixed_point_scale)) d03)
      (B.fmul b F32 (f (0.46193977 *. fixed_point_scale)) d12)
  in
  B.ret b [ round_to_i32 b x2; round_to_i32 b x6 ];
  B.finish b

(* Luminance quantization table (JPEG Annex K), flattened row-major. *)
let qtable =
  [|
    16; 11; 10; 16; 24; 40; 51; 61;
    12; 12; 14; 19; 26; 58; 60; 55;
    14; 13; 16; 24; 40; 57; 69; 56;
    14; 17; 22; 29; 51; 87; 80; 62;
    18; 22; 37; 56; 68; 109; 103; 77;
    24; 35; 55; 64; 81; 104; 113; 92;
    49; 64; 78; 87; 103; 121; 120; 101;
    72; 92; 95; 98; 112; 100; 103; 99;
  |]

(* One 1D 8-point fixed-point DCT: [load] yields integer lane i, [store]
   receives integer coefficient k. The even half goes through the two
   memoized kernels; the odd half is computed directly in float and
   rounded. *)
let emit_dct1d b ~load ~store =
  let x = Array.init 8 (fun i -> load i) in
  let s = Array.init 4 (fun i -> B.addi b x.(i) x.(7 - i)) in
  let d = Array.init 4 (fun i -> B.cast b I_to_f (B.subi b x.(i) x.(7 - i))) in
  let x0, x4 =
    match B.call b kernel_a_name ~rets:2 [ s.(0); s.(1); s.(2); s.(3) ] with
    | [ a; c ] -> (a, c)
    | _ -> assert false
  in
  let x2, x6 =
    match B.call b kernel_b_name ~rets:2 [ s.(0); s.(1); s.(2); s.(3) ] with
    | [ a; c ] -> (a, c)
    | _ -> assert false
  in
  let odd c0 c1 c2 c3 =
    let v =
      B.fadd b F32
        (B.fadd b F32
           (B.fmul b F32 (f (c0 *. fixed_point_scale)) d.(0))
           (B.fmul b F32 (f (c1 *. fixed_point_scale)) d.(1)))
        (B.fadd b F32
           (B.fmul b F32 (f (c2 *. fixed_point_scale)) d.(2))
           (B.fmul b F32 (f (c3 *. fixed_point_scale)) d.(3)))
    in
    round_to_i32 b v
  in
  let x1 = odd 0.49039264 0.41573481 0.27778512 0.09754516 in
  let x3 = odd 0.41573481 (-0.09754516) (-0.49039264) (-0.27778512) in
  let x5 = odd 0.27778512 (-0.49039264) 0.09754516 0.41573481 in
  let x7 = odd 0.09754516 (-0.27778512) 0.41573481 (-0.49039264) in
  List.iteri (fun k v -> store k v) [ x0; x1; x2; x3; x4; x5; x6; x7 ]

let build_main ~side ~tmp_base ~qtable_base =
  let b = B.create ~name:Workload.entry_name ~params:[ I64; I64 ] ~rets:[] () in
  let img_base = B.param b 0 and out_base = B.param b 1 in
  let blocks = side / 8 in
  let tb = B.i64 (Int64.of_int tmp_base) in
  let qb = B.i64 (Int64.of_int qtable_base) in
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 blocks) (fun by ->
      B.for_loop b ~from:(B.i32 0) ~below:(B.i32 blocks) (fun bx ->
          (* Row pass: image block rows -> tmp (scaled integers). *)
          B.for_loop b ~from:(B.i32 0) ~below:(B.i32 8) (fun r ->
              let row_idx = B.addi b (B.muli b by (B.i32 8)) r in
              let row_start =
                B.addi b (B.muli b row_idx (B.i32 side)) (B.muli b bx (B.i32 8))
              in
              let src =
                B.binop b Add I64 img_base (B.cast b Sext_32_64 (B.muli b row_start (B.i32 4)))
              in
              let dst = B.binop b Add I64 tb (B.cast b Sext_32_64 (B.muli b r (B.i32 32))) in
              emit_dct1d b
                ~load:(fun i -> B.load b I32 src (4 * i))
                ~store:(fun k v -> B.store b I32 ~src:v ~base:dst ~offset:(4 * k)));
          (* Column pass: tmp columns -> quantized output. *)
          B.for_loop b ~from:(B.i32 0) ~below:(B.i32 8) (fun c ->
              let col_base = B.binop b Add I64 tb (B.cast b Sext_32_64 (B.muli b c (B.i32 4))) in
              emit_dct1d b
                ~load:(fun i -> B.load b I32 col_base (32 * i))
                ~store:(fun k v ->
                  (* Undo the two fixed-point scalings and quantize:
                     round(X / (scale^2 q[k][c])). *)
                  let qidx = B.addi b (B.i32 (8 * k)) c in
                  let qa =
                    B.binop b Add I64 qb (B.cast b Sext_32_64 (B.muli b qidx (B.i32 4)))
                  in
                  let q = B.load b F32 qa 0 in
                  let denom = B.fmul b F32 q (f (fixed_point_scale *. fixed_point_scale)) in
                  let quant =
                    round_to_i32 b (B.fdiv b F32 (B.cast b I_to_f v) denom)
                  in
                  let gy = B.addi b (B.muli b by (B.i32 8)) (B.i32 k) in
                  let gx = B.addi b (B.muli b bx (B.i32 8)) c in
                  let out_idx = B.addi b (B.muli b gy (B.i32 side)) gx in
                  let oa =
                    B.binop b Add I64 out_base
                      (B.cast b Sext_32_64 (B.muli b out_idx (B.i32 4)))
                  in
                  B.store b I32 ~src:quant ~base:oa ~offset:0))));
  B.ret b [];
  B.finish b

(* Synthetic photographic image: smooth luminance plus mild texture,
   quantized to 8-bit levels as any decoded image would be. *)
let generate_image rng ~side =
  Array.init (side * side) (fun i ->
      let x = i mod side and y = i / side in
      let base =
        128.0
        +. (50.0 *. sin (float_of_int x /. 21.0))
        +. (40.0 *. cos (float_of_int y /. 17.0))
      in
      let texture = 8.0 *. Rng.gaussian rng ~mean:0.0 ~stddev:0.3 in
      int_of_float (Float.max 0.0 (Float.min 255.0 (base +. texture))))

let make (variant : Workload.variant) : Workload.instance =
  let seed, side = match variant with Sample -> (71L, 64) | Eval -> (73L, 128) in
  let rng = Rng.create (Rng.derive_stream seed) in
  let img = generate_image rng ~side in
  let mem = Memory.create () in
  let img_base = Workload.alloc_i32s mem img in
  let out_base = Workload.alloc_f32_zeros mem (side * side) in
  let tmp_base = Workload.alloc_f32_zeros mem 64 in
  let qtable_base = Workload.alloc_f32s mem (Array.map float_of_int qtable) in
  let program =
    Workload.program_with_math
      [ build_main ~side ~tmp_base ~qtable_base; build_kernel_a (); build_kernel_b () ]
  in
  {
    meta;
    program;
    mem;
    entry = Workload.entry_name;
    args = [| VI (Int64.of_int img_base); VI (Int64.of_int out_base) |];
    regions =
      [
        { Transform.kernel = kernel_a_name; lut_id = 0; truncs = Array.make 4 2 };
        { Transform.kernel = kernel_b_name; lut_id = 1; truncs = Array.make 4 7 };
      ];
    barrier = None;
    read_outputs =
      (fun () ->
        let raw = Workload.read_i32s mem ~base:out_base ~count:(side * side) in
        Floats (Array.map float_of_int raw));
  }
