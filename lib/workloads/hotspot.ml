(** Hotspot: on-chip thermal simulation (Rodinia).

    The memoized block is the per-cell temperature update: centre
    temperature, north+south sum, east+west sum and dissipated power — 16
    bytes, truncated by 8 bits (Table 2). Power maps are block-structured
    (functional units dissipate at a few discrete levels) and temperature
    fields are smooth, so truncated input tuples repeat across the die and
    across time steps. *)

module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder
module Memory = Axmemo_ir.Memory
module Rng = Axmemo_util.Rng
module Transform = Axmemo_compiler.Transform

let meta : Workload.meta =
  {
    name = "hotspot";
    domain = "Physics Simulation";
    description = "Simulates the temperature of an IC chip";
    dataset = "64x64 power/temperature maps, 20 steps";
    input_bytes = "16";
    trunc_bits = "8";
    error_bound = Axmemo_compiler.Tuning.default_error_bound;
  }

let kernel_name = "hs_update"

let f = B.f32

(* Explicit-Euler update with folded RC constants:
   t' = t + k ((sum_ns - 2t)/ry + (sum_ew - 2t)/rx + p + (amb - t)/rz) *)
let build_kernel () =
  let b =
    B.create ~name:kernel_name ~pure:true ~params:[ F32; F32; F32; F32 ] ~rets:[ F32 ] ()
  in
  let t = B.param b 0 and sum_ns = B.param b 1 and sum_ew = B.param b 2 and p = B.param b 3 in
  let two_t = B.fmul b F32 (f 2.0) t in
  let dns = B.fdiv b F32 (B.fsub b F32 sum_ns two_t) (f 1.2) in
  let dew = B.fdiv b F32 (B.fsub b F32 sum_ew two_t) (f 1.2) in
  let damb = B.fdiv b F32 (B.fsub b F32 (f 80.0) t) (f 4.75) in
  let delta =
    B.fmul b F32 (f 0.05) (B.fadd b F32 dns (B.fadd b F32 dew (B.fadd b F32 p damb)))
  in
  B.ret b [ B.fadd b F32 t delta ];
  B.finish b

let build_main ~side ~iters =
  let b = B.create ~name:Workload.entry_name ~params:[ I64; I64; I64 ] ~rets:[] () in
  let t_a = B.param b 0 and t_b = B.param b 1 and p_base = B.param b 2 in
  let row = 4 * side in
  let cur = B.fresh b and nxt = B.fresh b in
  B.mov b cur t_a;
  B.mov b nxt t_b;
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 iters) (fun _it ->
      B.for_loop b ~from:(B.i32 1) ~below:(B.i32 (side - 1)) (fun y ->
          B.for_loop b ~from:(B.i32 1) ~below:(B.i32 (side - 1)) (fun x ->
              let idx = B.addi b (B.muli b y (B.i32 side)) x in
              let off = B.cast b Sext_32_64 (B.muli b idx (B.i32 4)) in
              let ta = B.binop b Add I64 (B.rv cur) off in
              let t = B.load b F32 ta 0 in
              let tn = B.load b F32 ta (-row) and ts = B.load b F32 ta row in
              let te = B.load b F32 ta 4 and tw = B.load b F32 ta (-4) in
              let sum_ns = B.fadd b F32 tn ts in
              let sum_ew = B.fadd b F32 te tw in
              let pw = B.load b F32 (B.binop b Add I64 p_base off) 0 in
              let t' =
                match B.call b kernel_name ~rets:1 [ t; sum_ns; sum_ew; pw ] with
                | [ v ] -> v
                | _ -> assert false
              in
              B.store b F32 ~src:t' ~base:(B.binop b Add I64 (B.rv nxt) off) ~offset:0));
      (* Swap the ping-pong buffers. *)
      let tmp = B.fresh b in
      B.mov b tmp (B.rv cur);
      B.mov b cur (B.rv nxt);
      B.mov b nxt (B.rv tmp));
  B.ret b [];
  B.finish b

(* Block-structured power map: a few rectangular units at discrete levels. *)
let generate_power rng ~side =
  let p = Array.make (side * side) 0.5 in
  let levels = [| 0.0; 1.0; 2.5; 4.0 |] in
  for _ = 0 to 9 do
    let x0 = Rng.int rng (side - 8) and y0 = Rng.int rng (side - 8) in
    let w = 4 + Rng.int rng 12 and h = 4 + Rng.int rng 12 in
    let lvl = Rng.choose rng levels in
    for y = y0 to min (side - 1) (y0 + h) do
      for x = x0 to min (side - 1) (x0 + w) do
        p.((y * side) + x) <- lvl
      done
    done
  done;
  p

let make (variant : Workload.variant) : Workload.instance =
  let seed, side, iters = match variant with Sample -> (17L, 32, 10) | Eval -> (37L, 64, 20) in
  let rng = Rng.create (Rng.derive_stream seed) in
  let n = side * side in
  let power = generate_power rng ~side in
  let temp = Array.init n (fun i -> 65.0 +. (10.0 *. power.(i))) in
  let mem = Memory.create () in
  let t_a = Workload.alloc_f32s mem temp in
  let t_b = Workload.alloc_f32s mem temp in
  let p_base = Workload.alloc_f32s mem power in
  let program = Workload.program_with_math [ build_main ~side ~iters; build_kernel () ] in
  (* After an even number of swaps the final field is back in buffer A; read
     whichever buffer holds the last write. *)
  let final_base = if iters mod 2 = 0 then t_a else t_b in
  {
    meta;
    program;
    mem;
    entry = Workload.entry_name;
    args = [| VI (Int64.of_int t_a); VI (Int64.of_int t_b); VI (Int64.of_int p_base) |];
    regions =
      [ { Transform.kernel = kernel_name; lut_id = 0; truncs = [| 8; 8; 8; 8 |] } ];
    barrier = None;
    read_outputs = (fun () -> Floats (Workload.read_f32s mem ~base:final_base ~count:n));
  }
