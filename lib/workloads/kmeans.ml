(** K-means: colour clustering of an image (AxBench).

    The memoized block is the per-pixel assignment kernel: (r, g, b) — 12
    bytes, truncated by 16 bits (Table 2) — to the nearest of four
    centroids. The centroids live in memory and are {e read} by the pure
    kernel; because they change every iteration, the driver calls the phase
    barrier after each centroid update and the compiler turns it into LUT
    [invalidate]s — the paper's stated use of that instruction. *)

module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder
module Memory = Axmemo_ir.Memory
module Rng = Axmemo_util.Rng
module Transform = Axmemo_compiler.Transform

let meta : Workload.meta =
  {
    name = "kmeans";
    domain = "Machine Learning";
    description = "K-means clustering on an image";
    dataset = "96x96 synthetic image, 4 clusters, 6 iterations";
    input_bytes = "12";
    trunc_bits = "16";
    error_bound = Axmemo_compiler.Tuning.image_error_bound;
  }

let kernel_name = "km_assign"
let k_clusters = 4

let f = B.f32

(* Nearest centroid by squared distance; centroid_base is baked in at build
   time (static data segment address). *)
let build_kernel ~centroid_base =
  let b = B.create ~name:kernel_name ~pure:true ~params:[ F32; F32; F32 ] ~rets:[ I32 ] () in
  let r = B.param b 0 and g = B.param b 1 and bl = B.param b 2 in
  let base = B.i64 (Int64.of_int centroid_base) in
  let best = B.fresh b and best_d = B.fresh b in
  B.mov b best (B.i32 0);
  B.mov b best_d (f 1e30);
  for c = 0 to k_clusters - 1 do
    let off = 12 * c in
    let cr = B.load b F32 base off in
    let cg = B.load b F32 base (off + 4) in
    let cb = B.load b F32 base (off + 8) in
    let dr = B.fsub b F32 r cr and dg = B.fsub b F32 g cg and db = B.fsub b F32 bl cb in
    let d =
      B.fadd b F32 (B.fmul b F32 dr dr) (B.fadd b F32 (B.fmul b F32 dg dg) (B.fmul b F32 db db))
    in
    let better = B.fcmp b Flt F32 d (B.rv best_d) in
    B.mov b best_d (B.select b better d (B.rv best_d));
    B.mov b best (B.select b better (B.i32 c) (B.rv best))
  done;
  B.ret b [ B.rv best ];
  B.finish b

(* Driver: [iters] rounds of assignment + centroid update, then a final pass
   writing the clustered image (each pixel replaced by its centroid). *)
let build_main ~n ~iters ~centroid_base ~sums_base ~counts_base =
  let b = B.create ~name:Workload.entry_name ~params:[ I64; I64; I64 ] ~rets:[] () in
  let img_base = B.param b 0 and assign_base = B.param b 1 and out_base = B.param b 2 in
  let cbase = B.i64 (Int64.of_int centroid_base) in
  let sbase = B.i64 (Int64.of_int sums_base) in
  let nbase = B.i64 (Int64.of_int counts_base) in
  let px_addr base i = B.binop b Add I64 base (B.cast b Sext_32_64 (B.muli b i (B.i32 12))) in
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 iters) (fun _it ->
      (* Clear accumulators. *)
      for c = 0 to k_clusters - 1 do
        B.store b F32 ~src:(f 0.0) ~base:sbase ~offset:(12 * c);
        B.store b F32 ~src:(f 0.0) ~base:sbase ~offset:((12 * c) + 4);
        B.store b F32 ~src:(f 0.0) ~base:sbase ~offset:((12 * c) + 8);
        B.store b I32 ~src:(B.i32 0) ~base:nbase ~offset:(4 * c)
      done;
      (* Assignment pass. *)
      B.for_loop b ~from:(B.i32 0) ~below:(B.i32 n) (fun i ->
          let a = px_addr img_base i in
          let r = B.load b F32 a 0 and g = B.load b F32 a 4 and bl = B.load b F32 a 8 in
          let idx =
            match B.call b kernel_name ~rets:1 [ r; g; bl ] with
            | [ v ] -> v
            | _ -> assert false
          in
          let ia = B.binop b Add I64 assign_base (B.cast b Sext_32_64 (B.muli b i (B.i32 4))) in
          B.store b I32 ~src:idx ~base:ia ~offset:0;
          (* Accumulate into sums[idx]. *)
          let soff = B.cast b Sext_32_64 (B.muli b idx (B.i32 12)) in
          let sa = B.binop b Add I64 sbase soff in
          B.store b F32 ~src:(B.fadd b F32 (B.load b F32 sa 0) r) ~base:sa ~offset:0;
          B.store b F32 ~src:(B.fadd b F32 (B.load b F32 sa 4) g) ~base:sa ~offset:4;
          B.store b F32 ~src:(B.fadd b F32 (B.load b F32 sa 8) bl) ~base:sa ~offset:8;
          let na = B.binop b Add I64 nbase (B.cast b Sext_32_64 (B.muli b idx (B.i32 4))) in
          B.store b I32 ~src:(B.addi b (B.load b I32 na 0) (B.i32 1)) ~base:na ~offset:0);
      (* Centroid update. *)
      for c = 0 to k_clusters - 1 do
        let cnt = B.load b I32 nbase (4 * c) in
        let nonzero = B.icmp b Igt I32 cnt (B.i32 0) in
        let cntf = B.cast b I_to_f (B.select b nonzero cnt (B.i32 1)) in
        let upd off =
          let s = B.load b F32 sbase ((12 * c) + off) in
          let old = B.load b F32 cbase ((12 * c) + off) in
          let fresh = B.fdiv b F32 s cntf in
          B.store b F32 ~src:(B.select b nonzero fresh old) ~base:cbase ~offset:((12 * c) + off)
        in
        upd 0;
        upd 4;
        upd 8
      done;
      (* Centroids changed: retire all memoized assignments. *)
      ignore (B.call b Workload.barrier_name ~rets:0 []));
  (* Output pass: paint each pixel with its final centroid. *)
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 n) (fun i ->
      let ia = B.binop b Add I64 assign_base (B.cast b Sext_32_64 (B.muli b i (B.i32 4))) in
      let idx = B.load b I32 ia 0 in
      let coff = B.cast b Sext_32_64 (B.muli b idx (B.i32 12)) in
      let ca = B.binop b Add I64 cbase coff in
      let oa = px_addr out_base i in
      B.store b F32 ~src:(B.load b F32 ca 0) ~base:oa ~offset:0;
      B.store b F32 ~src:(B.load b F32 ca 4) ~base:oa ~offset:4;
      B.store b F32 ~src:(B.load b F32 ca 8) ~base:oa ~offset:8);
  B.ret b [];
  B.finish b

(* Colour image built from one gently-sloped luminance field modulating a
   handful of region colours: pixels of a region share a truncation cell per
   channel, as flat areas of photographs do. *)
let generate_pixels rng ~side =
  let luma = Workload.synth_image rng ~width:side ~height:side ~tones:10 ~slope:0.04 () in
  let tones =
    [| (0.9, 0.25, 0.2); (0.25, 0.8, 0.3); (0.2, 0.3, 0.9); (0.85, 0.8, 0.25) |]
  in
  Array.map
    (fun l ->
      let r, g, b = tones.(int_of_float (l /. 48.0) mod Array.length tones) in
      (l *. r, l *. g, l *. b))
    luma

let make (variant : Workload.variant) : Workload.instance =
  let seed, side, iters = match variant with Sample -> (13L, 48, 4) | Eval -> (31L, 96, 6) in
  let n = side * side in
  let rng = Rng.create (Rng.derive_stream seed) in
  let pixels = generate_pixels rng ~side in
  let mem = Memory.create () in
  let flat =
    Array.concat (Array.to_list (Array.map (fun (r, g, b) -> [| r; g; b |]) pixels))
  in
  let img_base = Workload.alloc_f32s mem flat in
  let init_centroids =
    [| 30.0; 30.0; 30.0; 200.0; 40.0; 40.0; 40.0; 200.0; 40.0; 40.0; 40.0; 200.0 |]
  in
  let centroid_base = Workload.alloc_f32s mem init_centroids in
  let sums_base = Workload.alloc_f32_zeros mem (3 * k_clusters) in
  let counts_base = Workload.alloc_f32_zeros mem k_clusters in
  let assign_base = Workload.alloc_f32_zeros mem n in
  let out_base = Workload.alloc_f32_zeros mem (3 * n) in
  let program =
    Workload.program_with_math
      [
        build_main ~n ~iters ~centroid_base ~sums_base ~counts_base;
        build_kernel ~centroid_base;
      ]
  in
  {
    meta;
    program;
    mem;
    entry = Workload.entry_name;
    args =
      [| VI (Int64.of_int img_base); VI (Int64.of_int assign_base); VI (Int64.of_int out_base) |];
    regions = [ { Transform.kernel = kernel_name; lut_id = 0; truncs = [| 16; 16; 16 |] } ];
    barrier = Some Workload.barrier_name;
    read_outputs =
      (fun () -> Floats (Workload.read_f32s mem ~base:out_base ~count:(3 * n)));
  }
