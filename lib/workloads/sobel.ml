(** Sobel: 3x3 edge-detection filter (AxBench).

    The memoized block takes the nine neighbouring pixels — 36 bytes, the
    paper's motivating example for CRC tags — truncated by 16 bits each
    (Table 2). All nine loads fuse into [ld_crc]. The synthetic image is
    piecewise-smooth (soft gradients with a few shapes), giving the local
    3x3 windows the redundancy natural images exhibit once truncated. *)

module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder
module Memory = Axmemo_ir.Memory
module Rng = Axmemo_util.Rng
module Transform = Axmemo_compiler.Transform

let meta : Workload.meta =
  {
    name = "sobel";
    domain = "Image Processing";
    description = "Applies Sobel filter on an image";
    dataset = "128x128 synthetic piecewise-smooth image";
    input_bytes = "36";
    trunc_bits = "16";
    error_bound = Axmemo_compiler.Tuning.image_error_bound;
  }

let kernel_name = "sobel_kernel"

let f = B.f32

(* Gradient magnitude of the 3x3 window:
   gx = (p2 + 2 p5 + p8) - (p0 + 2 p3 + p6)
   gy = (p6 + 2 p7 + p8) - (p0 + 2 p1 + p2) *)
let build_kernel () =
  let b =
    B.create ~name:kernel_name ~pure:true
      ~params:[ F32; F32; F32; F32; F32; F32; F32; F32; F32 ]
      ~rets:[ F32 ] ()
  in
  let p i = B.param b i in
  let two = f 2.0 in
  let gx =
    B.fsub b F32
      (B.fadd b F32 (p 2) (B.fadd b F32 (B.fmul b F32 two (p 5)) (p 8)))
      (B.fadd b F32 (p 0) (B.fadd b F32 (B.fmul b F32 two (p 3)) (p 6)))
  in
  let gy =
    B.fsub b F32
      (B.fadd b F32 (p 6) (B.fadd b F32 (B.fmul b F32 two (p 7)) (p 8)))
      (B.fadd b F32 (p 0) (B.fadd b F32 (B.fmul b F32 two (p 1)) (p 2)))
  in
  let mag = B.funop b Fsqrt F32 (B.fadd b F32 (B.fmul b F32 gx gx) (B.fmul b F32 gy gy)) in
  (* Clamp to the displayable range as the AxBench kernel does. *)
  let clamped = B.select b (B.fcmp b Fgt F32 mag (f 255.0)) (f 255.0) mag in
  B.ret b [ clamped ];
  B.finish b

let build_main ~width ~height =
  let b = B.create ~name:Workload.entry_name ~params:[ I64; I64 ] ~rets:[] () in
  let in_base = B.param b 0 and out_base = B.param b 1 in
  let row_bytes = 4 * width in
  B.for_loop b ~from:(B.i32 1) ~below:(B.i32 (height - 1)) (fun y ->
      B.for_loop b ~from:(B.i32 1) ~below:(B.i32 (width - 1)) (fun x ->
          let idx = B.addi b (B.muli b y (B.i32 width)) x in
          let center =
            B.binop b Add I64 in_base (B.cast b Sext_32_64 (B.muli b idx (B.i32 4)))
          in
          let ld off = B.load b F32 center off in
          let p0 = ld (-row_bytes - 4)
          and p1 = ld (-row_bytes)
          and p2 = ld (-row_bytes + 4)
          and p3 = ld (-4)
          and p4 = ld 0
          and p5 = ld 4
          and p6 = ld (row_bytes - 4)
          and p7 = ld row_bytes
          and p8 = ld (row_bytes + 4) in
          let mag =
            match
              B.call b kernel_name ~rets:1 [ p0; p1; p2; p3; p4; p5; p6; p7; p8 ]
            with
            | [ v ] -> v
            | _ -> assert false
          in
          let out_addr =
            B.binop b Add I64 out_base (B.cast b Sext_32_64 (B.muli b idx (B.i32 4)))
          in
          B.store b F32 ~src:mag ~base:out_addr ~offset:0));
  B.ret b [];
  B.finish b

let make (variant : Workload.variant) : Workload.instance =
  let seed, width, height =
    match variant with Sample -> (7L, 64, 64) | Eval -> (19L, 128, 128)
  in
  let rng = Rng.create (Rng.derive_stream seed) in
  let img = Workload.synth_image rng ~width ~height ~tones:14 ~slope:0.05 () in
  let mem = Memory.create () in
  let in_base = Workload.alloc_f32s mem img in
  let out_base = Workload.alloc_f32_zeros mem (width * height) in
  let program = Workload.program_with_math [ build_main ~width ~height; build_kernel () ] in
  {
    meta;
    program;
    mem;
    entry = Workload.entry_name;
    args = [| VI (Int64.of_int in_base); VI (Int64.of_int out_base) |];
    regions =
      [ { Transform.kernel = kernel_name; lut_id = 0; truncs = Array.make 9 16 } ];
    barrier = None;
    read_outputs =
      (fun () -> Floats (Workload.read_f32s mem ~base:out_base ~count:(width * height)));
  }
