(** Blackscholes: European option pricing (AxBench / PARSEC).

    The memoized block is the whole pricing kernel: six 4-byte inputs (spot,
    strike, rate, volatility, time, option type) — 24 bytes, no truncation
    (Table 2). Financial data is quantized by market conventions (ticks,
    standard maturities), so option parameter tuples repeat heavily; the
    synthetic dataset draws options from a small grid of distinct tuples to
    reproduce that redundancy. *)

module Ir = Axmemo_ir.Ir
module B = Axmemo_ir.Builder
module Memory = Axmemo_ir.Memory
module Rng = Axmemo_util.Rng
module Transform = Axmemo_compiler.Transform

let meta : Workload.meta =
  {
    name = "blackscholes";
    domain = "Financial Analysis";
    description = "Calculates the price of European-style options";
    dataset = "20K options drawn from 200 distinct market tuples";
    input_bytes = "24";
    trunc_bits = "0";
    error_bound = Axmemo_compiler.Tuning.default_error_bound;
  }

let cndf_name = "bs_cndf"
let kernel_name = "bs_kernel"

let f = B.f32

(* Cumulative normal distribution, Abramowitz & Stegun 26.2.17. *)
let build_cndf () =
  let b = B.create ~name:cndf_name ~pure:true ~params:[ F32 ] ~rets:[ F32 ] () in
  let x = B.param b 0 in
  let ax = B.funop b Fabs F32 x in
  let k = B.fdiv b F32 (f 1.0) (B.fadd b F32 (f 1.0) (B.fmul b F32 (f 0.2316419) ax)) in
  let poly =
    let acc = f 1.330274429 in
    let acc = B.fadd b F32 (f (-1.821255978)) (B.fmul b F32 k acc) in
    let acc = B.fadd b F32 (f 1.781477937) (B.fmul b F32 k acc) in
    let acc = B.fadd b F32 (f (-0.356563782)) (B.fmul b F32 k acc) in
    let acc = B.fadd b F32 (f 0.319381530) (B.fmul b F32 k acc) in
    B.fmul b F32 k acc
  in
  let half_sq = B.fmul b F32 (f (-0.5)) (B.fmul b F32 ax ax) in
  let e = B.call b Mathlib.exp_name ~rets:1 [ half_sq ] in
  let pdf =
    match e with
    | [ e ] -> B.fmul b F32 (f 0.3989422804) e
    | _ -> assert false
  in
  let tail = B.fmul b F32 pdf poly in
  let pos = B.fsub b F32 (f 1.0) tail in
  let res = B.select b (B.fcmp b Flt F32 x (f 0.0)) tail pos in
  B.ret b [ res ];
  B.finish b

let build_kernel () =
  let b =
    B.create ~name:kernel_name ~pure:true
      ~params:[ F32; F32; F32; F32; F32; F32 ]
      ~rets:[ F32 ] ()
  in
  let s = B.param b 0
  and strike = B.param b 1
  and rate = B.param b 2
  and vol = B.param b 3
  and time = B.param b 4
  and otype = B.param b 5 in
  let sqrt_t = B.funop b Fsqrt F32 time in
  let log_sk =
    match B.call b Mathlib.log_name ~rets:1 [ B.fdiv b F32 s strike ] with
    | [ v ] -> v
    | _ -> assert false
  in
  let vol_sq_half = B.fmul b F32 (f 0.5) (B.fmul b F32 vol vol) in
  let num = B.fadd b F32 log_sk (B.fmul b F32 (B.fadd b F32 rate vol_sq_half) time) in
  let den = B.fmul b F32 vol sqrt_t in
  let d1 = B.fdiv b F32 num den in
  let d2 = B.fsub b F32 d1 den in
  let nd1 = match B.call b cndf_name ~rets:1 [ d1 ] with [ v ] -> v | _ -> assert false in
  let nd2 = match B.call b cndf_name ~rets:1 [ d2 ] with [ v ] -> v | _ -> assert false in
  let neg_rt = B.fmul b F32 (B.funop b Fneg F32 rate) time in
  let disc =
    match B.call b Mathlib.exp_name ~rets:1 [ neg_rt ] with
    | [ v ] -> B.fmul b F32 strike v
    | _ -> assert false
  in
  let call_price = B.fsub b F32 (B.fmul b F32 s nd1) (B.fmul b F32 disc nd2) in
  (* put = K e^{-rt} (1 - N(d2)) - S (1 - N(d1)) *)
  let put_price =
    B.fsub b F32
      (B.fmul b F32 disc (B.fsub b F32 (f 1.0) nd2))
      (B.fmul b F32 s (B.fsub b F32 (f 1.0) nd1))
  in
  let is_put = B.fcmp b Fgt F32 otype (f 0.5) in
  B.ret b [ B.select b is_put put_price call_price ];
  B.finish b

(* Driver: for each option, load the six packed fields, price, store. *)
let build_main n =
  let b = B.create ~name:Workload.entry_name ~params:[ I64; I64 ] ~rets:[] () in
  let in_base = B.param b 0 and out_base = B.param b 1 in
  B.for_loop b ~from:(B.i32 0) ~below:(B.i32 n) (fun i ->
      let rec_addr =
        B.binop b Add I64 in_base (B.cast b Sext_32_64 (B.muli b i (B.i32 24)))
      in
      let ld off = B.load b F32 rec_addr off in
      let p0 = ld 0 and p1 = ld 4 and p2 = ld 8 and p3 = ld 12 and p4 = ld 16 and p5 = ld 20 in
      let price =
        match B.call b kernel_name ~rets:1 [ p0; p1; p2; p3; p4; p5 ] with
        | [ v ] -> v
        | _ -> assert false
      in
      let out_addr =
        B.binop b Add I64 out_base (B.cast b Sext_32_64 (B.muli b i (B.i32 4)))
      in
      B.store b F32 ~src:price ~base:out_addr ~offset:0);
  B.ret b [];
  B.finish b

let round_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let generate_options rng ~distinct ~total =
  let tuple _ =
    let s = 20.0 +. (5.0 *. float_of_int (Rng.int rng 17)) in
    let moneyness = [| 0.8; 0.9; 0.95; 1.0; 1.05; 1.1; 1.25 |] in
    let strike = s *. Rng.choose rng moneyness in
    let rate = 0.01 *. float_of_int (1 + Rng.int rng 8) in
    let vol = 0.05 *. float_of_int (2 + Rng.int rng 10) in
    let time = 0.25 *. float_of_int (1 + Rng.int rng 12) in
    let otype = if Rng.bool rng then 1.0 else 0.0 in
    [| round_f32 s; round_f32 strike; round_f32 rate; round_f32 vol; round_f32 time; otype |]
  in
  let pool = Array.init distinct tuple in
  Array.init total (fun _ -> Rng.choose rng pool)

let make (variant : Workload.variant) : Workload.instance =
  let seed, distinct, total =
    match variant with
    | Sample -> (11L, 150, 4_000)
    | Eval -> (42L, 200, 20_000)
  in
  let rng = Rng.create (Rng.derive_stream seed) in
  let options = generate_options rng ~distinct ~total in
  let mem = Memory.create () in
  let flat = Array.concat (Array.to_list options) in
  let in_base = Workload.alloc_f32s mem flat in
  let out_base = Workload.alloc_f32_zeros mem total in
  let program =
    Workload.program_with_math [ build_main total; build_kernel (); build_cndf () ]
  in
  {
    meta;
    program;
    mem;
    entry = Workload.entry_name;
    args = [| VI (Int64.of_int in_base); VI (Int64.of_int out_base) |];
    regions = [ { Transform.kernel = kernel_name; lut_id = 0; truncs = Array.make 6 0 } ];
    barrier = None;
    read_outputs = (fun () -> Floats (Workload.read_f32s mem ~base:out_base ~count:total));
  }
