(** End-to-end experiment runner.

    Executes a workload instance under one of the evaluated systems — the
    plain HPI baseline, AxMemo with a given LUT configuration, the software
    CRC-LUT implementation, or ATM — on the cycle-approximate CPU model, and
    gathers every statistic the paper's figures need. Callers create a fresh
    {!Axmemo_workloads.Workload.instance} per run (datasets are
    deterministic, so runs are comparable). *)

type config =
  | Baseline  (** unmodified program, no memoization hardware *)
  | Hw_memo of {
      l1_bytes : int;
      l2_bytes : int option;  (** carved out of the L2 cache *)
      approximate : bool;  (** false forces all truncation to 0 (Figure 11) *)
      monitor : bool;
      total_l2 : int option;
          (** override the total L2 cache size (Section 6.2's L2-size
              sensitivity study); [None] = the HPI default of 1 MB *)
      adaptive : bool;
          (** use the unit's runtime-adaptive truncation (Section 3.1's
              dynamic alternative) on top of the static levels *)
    }
  | Hw_custom of {
      label : string;
      unit_cfg : Axmemo_memo.Memo_unit.config;
      approximate : bool;
      crc_bytes_per_cycle : int;
    }
      (** Fully custom memoization hardware for ablation studies: any
          {!Axmemo_memo.Memo_unit.config} (CRC width, payload width,
          replacement policy, adaptive truncation...) plus a CRC unit
          throughput. [label] doubles as the display/cache key. *)
  | Software of { table_log2 : int }
      (** software CRC + tagless in-memory LUT of [2^table_log2] entries *)
  | Atm of { table_log2 : int }
      (** Approximate Task Memoization (Brumar et al.): sampling hash +
          software task LUT with per-task runtime overhead *)

val config_label : config -> string

val l1_4k : config
val l1_8k : config
val l1_8k_l2_256k : config
val l1_8k_l2_512k : config
(** The four AxMemo configurations evaluated throughout Section 6. *)

val software_default : config
(** Software LUT sized per the paper's plateau study (scaled to the
    simulated footprint; see DESIGN.md). *)

val atm_default : config

type result = {
  label : string;
  cycles : int;
  seconds : float;
  sim_wall_seconds : float;
      (** host wall-clock seconds the simulation of this cell took (model
          assembly + execution + metric flushes). The only field excluded
          from the bit-identity contract: it varies run to run and machine
          to machine, and exists so reports can gate on simulator
          throughput. *)
  dyn_normal : int;
  dyn_memo : int;
  pipeline : Axmemo_cpu.Pipeline.stats;
  energy : Axmemo_energy.Model.breakdown;
  lookups : int;
  hits : int;
  hit_rate : float;
  collisions : int;
  memo_disabled : bool;
  trip_lookup : int option;
      (** lookup count at which the quality monitor tripped, when it did *)
  faults : Axmemo_faults.Injector.stats option;
      (** injection/protection counters when the memo unit ran with
          [config.faults] set; [None] on fault-free runs *)
  crashed : string option;
      (** [Some exn] when an injected fault drove the simulated program into
          failure (a DUE outcome, e.g. a corrupted payload used as an
          address); statistics and outputs cover the prefix up to the crash.
          Always [None] on fault-free runs — without an injector attached a
          simulation exception propagates as the harness error it is. *)
  outputs : Axmemo_workloads.Workload.outputs;
}

val run :
  ?profile:Axmemo_obs.Profile.t ->
  ?backend:Axmemo_ir.Interp.backend ->
  config ->
  Axmemo_workloads.Workload.instance ->
  result
(** [run config instance] transforms (if needed), simulates, and collects.
    The instance's memory is mutated by the run. With [?profile], the
    collector's hooks are attached to the pipeline (every config) and the
    memo unit (hardware configs), and the pipeline is profile-closed when
    the run ends; the [result] is bit-identical either way. [backend]
    selects the execution strategy (default [`Compiled]); both backends are
    pinned bit-identical on every field except [sim_wall_seconds]. *)

val profile_regions : Axmemo_workloads.Workload.instance -> (string * int) list
(** The instance's static regions as [(kernel, lut_id)] pairs, in the
    declaration order {!Axmemo_obs.Profile.create} expects. *)

val run_telemetry :
  ?trace:bool ->
  ?profile:Axmemo_obs.Profile.t ->
  ?backend:Axmemo_ir.Interp.backend ->
  config ->
  Axmemo_workloads.Workload.instance ->
  result * Axmemo_telemetry.Registry.snapshot * Axmemo_telemetry.Tracer.t option
(** [run_telemetry config instance] is {!run} with a metrics registry
    attached to the memo unit, pipeline, and cache hierarchy; the snapshot
    is taken after the end-of-run flushes. With [~trace:true] a cycle-clock
    {!Axmemo_telemetry.Tracer} also records function-activation spans and
    LUT hit/miss instants. Telemetry is observational only: the [result] is
    bit-identical to {!run} on a fresh instance. *)

val run_matrix :
  ?jobs:int ->
  ?backend:Axmemo_ir.Interp.backend ->
  (config * Axmemo_workloads.Workload.instance) list ->
  result list
(** [run_matrix ~jobs cells] simulates every (configuration, instance) cell,
    fanning out over [jobs] worker domains ({!Axmemo_util.Pool}; default:
    the host's recommended domain count, [1] runs serially on the calling
    domain). Results keep the input order and are bit-identical to the
    serial path: each cell owns all of its mutable state, so scheduling
    cannot affect outcomes.

    Domain-safety contract: every cell must have its own
    {!Axmemo_workloads.Workload.instance} — instances embed the simulated
    memory and are mutated by the run, so sharing one across cells is a
    race (and wrong even serially). *)

val run_matrix_telemetry :
  ?jobs:int ->
  ?backend:Axmemo_ir.Interp.backend ->
  (config * Axmemo_workloads.Workload.instance) list ->
  (result * Axmemo_telemetry.Registry.snapshot) list
(** {!run_matrix} with a per-cell metrics registry. Each worker domain owns
    the registries of the cells it runs (no instrument is shared across
    domains), and snapshots return in input order, so merging them — and
    any report built from them — is byte-identical between serial and
    parallel execution. *)

val run_matrix_profiled :
  ?jobs:int ->
  ?backend:Axmemo_ir.Interp.backend ->
  (config * Axmemo_workloads.Workload.instance) list ->
  (result * Axmemo_telemetry.Registry.snapshot * Axmemo_obs.Profile.snapshot) list
(** {!run_matrix_telemetry} with a per-cell attribution profiler (regions
    from {!profile_regions}). Same determinism contract: snapshots are
    byte-identical for any [jobs]. *)

val speedup : baseline:result -> result -> float
(** Cycle ratio baseline/other. Always finite: if both runs report zero
    cycles the ratio is 1.0, and a lone zero denominator is clamped to one
    cycle — a report can never contain [nan] or [inf] from this helper. *)

val energy_saving : baseline:result -> result -> float
(** Energy ratio baseline/other (the paper's E_baseline / E_AxMemo). Guarded
    like {!speedup}: 1.0 when both are zero, denominator clamped to 1 pJ
    otherwise. *)
