module Ir = Axmemo_ir.Ir
module Interp = Axmemo_ir.Interp
module Hierarchy = Axmemo_cache.Hierarchy
module Pipeline = Axmemo_cpu.Pipeline
module Memo_unit = Axmemo_memo.Memo_unit
module Model = Axmemo_energy.Model
module Transform = Axmemo_compiler.Transform
module Workload = Axmemo_workloads.Workload
module Registry = Axmemo_telemetry.Registry
module Tracer = Axmemo_telemetry.Tracer
module Fault_model = Axmemo_faults.Fault_model
module Injector = Axmemo_faults.Injector
module Protection = Axmemo_faults.Protection
module Profile = Axmemo_obs.Profile

type config =
  | Baseline
  | Hw_memo of {
      l1_bytes : int;
      l2_bytes : int option;
      approximate : bool;
      monitor : bool;
      total_l2 : int option;
      adaptive : bool;
    }
  | Hw_custom of {
      label : string;
      unit_cfg : Memo_unit.config;
      approximate : bool;
      crc_bytes_per_cycle : int;
    }
  | Software of { table_log2 : int }
  | Atm of { table_log2 : int }

let kb n = n * 1024

let l1_4k =
  Hw_memo
    { l1_bytes = kb 4; l2_bytes = None; approximate = true; monitor = true; total_l2 = None; adaptive = false }

let l1_8k =
  Hw_memo
    { l1_bytes = kb 8; l2_bytes = None; approximate = true; monitor = true; total_l2 = None; adaptive = false }

let l1_8k_l2_256k =
  Hw_memo
    {
      l1_bytes = kb 8;
      l2_bytes = Some (kb 256);
      approximate = true;
      monitor = true;
      total_l2 = None;
      adaptive = false;
    }

let l1_8k_l2_512k =
  Hw_memo
    {
      l1_bytes = kb 8;
      l2_bytes = Some (kb 512);
      approximate = true;
      monitor = true;
      total_l2 = None;
      adaptive = false;
    }

let software_default = Software { table_log2 = 22 }
let atm_default = Atm { table_log2 = 22 }

let config_label = function
  | Baseline -> "baseline"
  | Hw_memo { l1_bytes; l2_bytes; approximate; total_l2; adaptive; _ } ->
      let base =
        match l2_bytes with
        | None -> Printf.sprintf "L1(%dKB)" (l1_bytes / 1024)
        | Some l2 -> Printf.sprintf "L1(%dKB)+L2(%dKB)" (l1_bytes / 1024) (l2 / 1024)
      in
      let base =
        match total_l2 with
        | None -> base
        | Some b -> Printf.sprintf "%s@L2cache=%dKB" base (b / 1024)
      in
      let base = if adaptive then base ^ "-adaptive" else base in
      if approximate then base else base ^ "-noapprox"
  | Hw_custom { label; _ } -> label
  | Software _ -> "Software LUT"
  | Atm _ -> "ATM"

type result = {
  label : string;
  cycles : int;
  seconds : float;
  sim_wall_seconds : float;
  dyn_normal : int;
  dyn_memo : int;
  pipeline : Pipeline.stats;
  energy : Model.breakdown;
  lookups : int;
  hits : int;
  hit_rate : float;
  collisions : int;
  memo_disabled : bool;
  trip_lookup : int option;
  faults : Injector.stats option;
  crashed : string option;
  outputs : Workload.outputs;
}

(* Both ratio helpers are total: reports must stay nan/inf-free even for
   degenerate cells (an empty program, a crashed faulty run with nothing
   charged). Two zeroes compare equal — ratio 1 — and a lone zero
   denominator is clamped to one cycle / one picojoule. *)
let guarded_ratio num den =
  if num = 0.0 && den = 0.0 then 1.0 else num /. Float.max den 1.0

let speedup ~baseline other =
  guarded_ratio (float_of_int baseline.cycles) (float_of_int other.cycles)

let energy_saving ~baseline other =
  guarded_ratio baseline.energy.Model.total_pj other.energy.Model.total_pj

(* Block-label based hit counting for the software schemes. Returns a flat
   [fname bidx iidx] callback for composition into an [Interp.hooks]
   observer. *)
let sw_hit_counter program =
  let hit_sites = Hashtbl.create 64 and miss_sites = Hashtbl.create 64 in
  Array.iter
    (fun (f : Ir.func) ->
      Array.iteri
        (fun bidx (b : Ir.block) ->
          if String.starts_with ~prefix:Axmemo_baselines.Sw_engine.hit_prefix b.label
          then Hashtbl.replace hit_sites (f.fname, bidx) ()
          else if
            String.starts_with ~prefix:Axmemo_baselines.Sw_engine.miss_prefix b.label
          then Hashtbl.replace miss_sites (f.fname, bidx) ())
        f.blocks)
    (program : Ir.program).funcs;
  let hits = ref 0 and misses = ref 0 in
  let on_exec fname bidx iidx =
    if iidx = 0 then
      if Hashtbl.mem hit_sites (fname, bidx) then incr hits
      else if Hashtbl.mem miss_sites (fname, bidx) then incr misses
  in
  (on_exec, hits, misses)

let finish ?(protection_pj = 0.0) ?trip_lookup ?faults ?crashed ~label ~pipeline_stats
    ~hierarchy ~memo_stats ~l1_lut_bytes ~lookups ~hits ~collisions ~memo_disabled
    ~outputs ~machine () =
  let energy =
    Model.of_run ~protection_pj ~pipeline:pipeline_stats ~hierarchy ~memo:memo_stats
      ~l1_lut_bytes ()
  in
  {
    label;
    cycles = pipeline_stats.Pipeline.cycles;
    seconds =
      float_of_int pipeline_stats.Pipeline.cycles
      /. (machine.Axmemo_cpu.Machine.freq_ghz *. 1e9);
    (* host wall time is stamped by [run_impl] around the whole simulation *)
    sim_wall_seconds = 0.0;
    dyn_normal = pipeline_stats.Pipeline.dyn_normal;
    dyn_memo = pipeline_stats.Pipeline.dyn_memo;
    pipeline = pipeline_stats;
    energy;
    lookups;
    hits;
    hit_rate = (if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups);
    collisions;
    memo_disabled;
    trip_lookup;
    faults;
    crashed;
    outputs;
  }

let machine = Axmemo_cpu.Machine.hpi

(* Function-activation spans plus optional per-exec instants, fanned out
   after the pipeline's own hooks so the tracer clock reads post-charge
   cycle counts. *)
let trace_hooks tr ~instant_of_exec : Interp.hooks =
  {
    Interp.on_enter = (fun fname -> Tracer.begin_span tr fname);
    on_leave = (fun fname -> Tracer.end_span tr fname);
    on_exec = instant_of_exec;
    on_term = (fun _ _ _ -> ());
    exec_site = None;
    term_site = None;
  }

let no_instants _fname _bidx _iidx _instr _addr = ()

(* Shared hardware-memoization path: Hw_memo and Hw_custom differ only in how
   the unit configuration is assembled. *)
let run_hw ?metrics ?profile ?(trace = false) ?backend ~label
    ~(unit_cfg : Memo_unit.config) ~approximate ~total_l2 ~crc_bytes_per_cycle
    (instance : Workload.instance) =
  let regions =
    if approximate then instance.regions
    else List.map Transform.zero_truncs instance.regions
  in
  let program =
    Transform.memoize ?barrier:instance.barrier ~entry:instance.entry instance.program
      regions
  in
  let hier_base =
    match total_l2 with
    | None -> Hierarchy.hpi_default
    | Some b ->
        (* Scale the way count with capacity to keep 64 KB ways. *)
        { Hierarchy.hpi_default with l2_size = b; l2_ways = b / (64 * 1024) }
  in
  let hier_cfg =
    match unit_cfg.l2_bytes with
    | None -> hier_base
    | Some lut -> Hierarchy.carve_l2 hier_base ~lut_bytes:lut
  in
  let hierarchy = Hierarchy.create ?metrics hier_cfg in
  let unit =
    Memo_unit.create ?metrics
      ?profile:(Option.map Profile.memo_hooks profile)
      unit_cfg
      (Transform.lut_decls instance.program regions)
  in
  let lookup_level () =
    match Memo_unit.last_lookup_level unit with
    | Memo_unit.Hit_l1 -> `L1
    | Memo_unit.Hit_l2 -> `L2
    | Memo_unit.Hit_l3 -> `L3
    | Memo_unit.Miss -> `Miss
  in
  let pipe =
    Pipeline.create ?metrics
      ?profile:(Option.map Profile.pipeline_profile profile)
      ~machine ~lookup_level ~l2_lut_present:(unit_cfg.l2_bytes <> None)
      ~l1_lut_ways:(Memo_unit.l1_ways unit) ~crc_bytes_per_cycle ~program ~hierarchy ()
  in
  (* Per-cycle fault rates integrate over the pipeline's simulated clock. *)
  (match Memo_unit.injector unit with
  | Some inj -> Injector.set_clock inj (fun () -> Pipeline.cycles pipe)
  | None -> ());
  let tracer =
    if trace then Some (Tracer.create ~clock:(fun () -> Pipeline.cycles pipe) ())
    else None
  in
  (match (tracer, Memo_unit.injector unit) with
  | Some tr, Some inj ->
      (* Fault instants land on the same cycle clock as the LUT events, so
         a trace view correlates upsets with the misses they cause. *)
      Injector.set_on_fault inj (fun site ->
          Tracer.instant tr ("fault_" ^ Fault_model.site_name site))
  | _ -> ());
  let hooks =
    match tracer with
    | None -> Pipeline.hooks pipe
    | Some tr ->
        (* The lookup's memo hook has already run when [on_exec] fires, so
           [last_lookup_level] names the level that serviced it. *)
        let lut_instant _fname _bidx _iidx (instr : Ir.instr) _addr =
          match instr with
          | Ir.Memo (Ir.Lookup _) -> (
              match Memo_unit.last_lookup_level unit with
              | Memo_unit.Hit_l1 -> Tracer.instant tr "lut_hit_l1"
              | Memo_unit.Hit_l2 -> Tracer.instant tr "lut_hit_l2"
              | Memo_unit.Hit_l3 -> Tracer.instant tr "lut_hit_l3"
              | Memo_unit.Miss -> Tracer.instant tr "lut_miss")
          | Ir.Memo (Ir.Invalidate _) -> Tracer.instant tr "lut_invalidate"
          | _ -> ()
        in
        Interp.combine_hooks (Pipeline.hooks pipe)
          (trace_hooks tr ~instant_of_exec:lut_instant)
  in
  let interp =
    Interp.create ~memo:(Memo_unit.hooks unit) ~hooks ?backend ~program
      ~mem:instance.mem ()
  in
  let crashed =
    match Memo_unit.injector unit with
    | None ->
        ignore (Interp.run interp instance.entry instance.args);
        None
    | Some _ -> (
        (* An injected fault can steer the simulated program into failure —
           e.g. a corrupted payload used in address arithmetic exhausts the
           memory model. In SEU terms that is a crash (DUE) outcome of the
           campaign, not a harness error: record it and keep every statistic
           gathered up to the crash. Outputs read back whatever was written
           before the failure (the buffers are pre-allocated). *)
        try
          ignore (Interp.run interp instance.entry instance.args);
          None
        with e -> Some (Printexc.to_string e))
  in
  Pipeline.profile_close pipe;
  Memo_unit.flush_metrics unit;
  Pipeline.flush_metrics pipe;
  Hierarchy.flush_metrics hierarchy;
  let ms = Memo_unit.stats unit in
  let fstats = Option.map Injector.stats (Memo_unit.injector unit) in
  let protection_pj =
    match (Memo_unit.injector unit, fstats) with
    | Some inj, Some (s : Injector.stats) ->
        Protection.energy_pj (Injector.protection inj) ~lookups:ms.lookups
          ~updates:ms.updates ~corrections:s.secded_corrected
    | _ -> 0.0
  in
  ( finish ~protection_pj ?trip_lookup:(Memo_unit.trip_lookup unit) ?faults:fstats
      ?crashed ~label
      ~pipeline_stats:(Pipeline.stats pipe) ~hierarchy ~memo_stats:(Some ms)
      ~l1_lut_bytes:unit_cfg.l1_bytes ~lookups:ms.lookups ~hits:(ms.l1_hits + ms.l2_hits)
      ~collisions:ms.collisions ~memo_disabled:(Memo_unit.disabled unit)
      ~outputs:(instance.read_outputs ()) ~machine (),
    tracer )

let run_impl_untimed ?metrics ?profile ?(trace = false) ?backend config
    (instance : Workload.instance) =
  let label = config_label config in
  match config with
  | Baseline ->
      let hierarchy = Hierarchy.create ?metrics Hierarchy.hpi_default in
      let pipe =
        Pipeline.create ?metrics
          ?profile:(Option.map Profile.pipeline_profile profile)
          ~machine ~program:instance.program ~hierarchy ()
      in
      let tracer =
        if trace then Some (Tracer.create ~clock:(fun () -> Pipeline.cycles pipe) ())
        else None
      in
      let hooks =
        match tracer with
        | None -> Pipeline.hooks pipe
        | Some tr ->
            Interp.combine_hooks (Pipeline.hooks pipe)
              (trace_hooks tr ~instant_of_exec:no_instants)
      in
      let interp =
        Interp.create ~hooks ?backend ~program:instance.program ~mem:instance.mem ()
      in
      ignore (Interp.run interp instance.entry instance.args);
      Pipeline.profile_close pipe;
      Pipeline.flush_metrics pipe;
      Hierarchy.flush_metrics hierarchy;
      ( finish ~label ~pipeline_stats:(Pipeline.stats pipe) ~hierarchy ~memo_stats:None
          ~l1_lut_bytes:(kb 8) ~lookups:0 ~hits:0 ~collisions:0 ~memo_disabled:false
          ~outputs:(instance.read_outputs ()) ~machine (),
        tracer )
  | Hw_memo { l1_bytes; l2_bytes; approximate; monitor; total_l2; adaptive } ->
      let unit_cfg =
        {
          Memo_unit.default_config with
          l1_bytes;
          l2_bytes;
          monitor;
          adaptive = (if adaptive then Some Memo_unit.default_adaptive else None);
        }
      in
      run_hw ?metrics ?profile ~trace ?backend ~label ~unit_cfg ~approximate ~total_l2
        ~crc_bytes_per_cycle:Axmemo_isa.Timing.crc_bytes_per_cycle instance
  | Hw_custom { label; unit_cfg; approximate; crc_bytes_per_cycle } ->
      run_hw ?metrics ?profile ~trace ?backend ~label ~unit_cfg ~approximate
        ~total_l2:None ~crc_bytes_per_cycle instance
  | Software { table_log2 } | Atm { table_log2 } ->
      let sw_memoize =
        match config with
        | Atm _ -> Axmemo_baselines.Atm.memoize ?seed:None
        | Baseline | Hw_memo _ | Hw_custom _ | Software _ ->
            Axmemo_baselines.Software_memo.memoize
      in
      let program =
        sw_memoize ~mem:instance.mem ~table_log2 ~entry:instance.entry
          ?barrier:instance.barrier instance.program instance.regions
      in
      let hierarchy = Hierarchy.create ?metrics Hierarchy.hpi_default in
      let pipe =
        Pipeline.create ?metrics
          ?profile:(Option.map Profile.pipeline_profile profile)
          ~machine ~program ~hierarchy ()
      in
      let tracer =
        if trace then Some (Tracer.create ~clock:(fun () -> Pipeline.cycles pipe) ())
        else None
      in
      let count_exec, hits, misses = sw_hit_counter program in
      let ph = Pipeline.hooks pipe in
      let hooks =
        {
          ph with
          Interp.on_exec =
            (fun fname bidx iidx instr addr ->
              ph.Interp.on_exec fname bidx iidx instr addr;
              count_exec fname bidx iidx);
          (* the record update keeps the pipeline's compiled sites, which
             would bypass the hit counter under the compiled backend — wrap
             the site compiler the same way as the flat callback *)
          exec_site =
            (match ph.Interp.exec_site with
            | None -> None
            | Some site ->
                Some
                  (fun fname bidx iidx instr ->
                    let f = site fname bidx iidx instr in
                    fun addr ->
                      f addr;
                      count_exec fname bidx iidx));
        }
      in
      let hooks =
        match tracer with
        | None -> hooks
        | Some tr -> Interp.combine_hooks hooks (trace_hooks tr ~instant_of_exec:no_instants)
      in
      let interp = Interp.create ~hooks ?backend ~program ~mem:instance.mem () in
      ignore (Interp.run interp instance.entry instance.args);
      Pipeline.profile_close pipe;
      Pipeline.flush_metrics pipe;
      Hierarchy.flush_metrics hierarchy;
      let lookups = !hits + !misses in
      ( finish ~label ~pipeline_stats:(Pipeline.stats pipe) ~hierarchy ~memo_stats:None
          ~l1_lut_bytes:(kb 8) ~lookups ~hits:!hits ~collisions:0 ~memo_disabled:false
          ~outputs:(instance.read_outputs ()) ~machine (),
        tracer )

(* Wall time covers the full simulation of the cell (model assembly,
   interpretation/compiled execution, metric flushes) — the throughput
   number the perf gate watches. It is the one field excluded from the
   bit-identity contract. *)
let run_impl ?metrics ?profile ?trace ?backend config instance =
  let t0 = Unix.gettimeofday () in
  let result, tracer = run_impl_untimed ?metrics ?profile ?trace ?backend config instance in
  ({ result with sim_wall_seconds = Unix.gettimeofday () -. t0 }, tracer)

let run ?profile ?backend config instance =
  fst (run_impl ?profile ?backend config instance)

let profile_regions (instance : Workload.instance) =
  List.map (fun (r : Transform.region) -> (r.kernel, r.lut_id)) instance.regions

let run_telemetry ?(trace = false) ?profile ?backend config instance =
  let reg = Registry.create () in
  let result, tracer = run_impl ~metrics:reg ?profile ~trace ?backend config instance in
  (result, Registry.snapshot reg, tracer)

(* Parallel experiment matrix. Every (config, instance) cell is an
   independent simulation: each owns its Memory.t (inside the instance),
   Hierarchy.t, Pipeline.t and Memo_unit.t, so cells fan out over a
   Axmemo_util.Pool of domains with no shared mutable state. Results keep
   the input order and are bit-identical to a serial [List.map (run ...)]
   because the simulator is deterministic and cells never interact. *)
let run_matrix ?jobs ?backend cells =
  Axmemo_util.Pool.run ?jobs (fun (config, instance) -> run ?backend config instance) cells

(* Telemetry composes with the pool because each worker builds the cell's
   registry on its own domain — no instrument is ever shared. Snapshots
   come back in input (cell) order, so any downstream [Registry.merge] is
   deterministic and independent of [jobs]. *)
let run_matrix_telemetry ?jobs ?backend cells =
  Axmemo_util.Pool.run ?jobs
    (fun (config, instance) ->
      let reg = Registry.create () in
      let result, _ = run_impl ~metrics:reg ?backend config instance in
      (result, Registry.snapshot reg))
    cells

(* Each worker builds the cell's collector on its own domain, and snapshots
   come back in cell order, so profile reports are byte-identical between
   serial and parallel execution — pinned by test_obs. *)
let run_matrix_profiled ?jobs ?backend cells =
  Axmemo_util.Pool.run ?jobs
    (fun (config, instance) ->
      let reg = Registry.create () in
      let profile = Profile.create ~regions:(profile_regions instance) in
      let result, _ = run_impl ~metrics:reg ~profile ?backend config instance in
      (result, Registry.snapshot reg, Profile.snapshot profile))
    cells
