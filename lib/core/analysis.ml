module Trace = Axmemo_trace.Trace
module Ddg = Axmemo_ddg.Ddg
module Interp = Axmemo_ir.Interp
module Workload = Axmemo_workloads.Workload

type row = {
  name : string;
  total_dynamic_subgraphs : int;
  unique_subgraphs : int;
  ci_ratio : float;
  coverage : float;
  trace_truncated : bool;
}

let analyze ?(max_entries = 30_000) ?(params = { Axmemo_ddg.Ddg.default_params with max_vertices = 128 }) make =
  let (instance : Workload.instance) = make Workload.Sample in
  let trace =
    Trace.create ~max_entries ~machine:Axmemo_cpu.Machine.hpi ~program:instance.program ()
  in
  let interp =
    Interp.create ~hooks:(Trace.hooks trace) ~program:instance.program ~mem:instance.mem ()
  in
  ignore (Interp.run interp instance.entry instance.args);
  let analysis = Ddg.analyze ~params (Trace.entries trace) in
  {
    name = instance.meta.name;
    total_dynamic_subgraphs = analysis.total_dynamic;
    unique_subgraphs = List.length analysis.unique;
    ci_ratio = analysis.avg_ci_ratio;
    coverage = analysis.coverage;
    trace_truncated = Trace.truncated trace;
  }
