type memo_hooks = {
  send : lut:int -> ty:Ir.ty -> trunc:int -> Ir.value -> unit;
  lookup : lut:int -> int64 option;
  update : lut:int -> int64 -> unit;
  invalidate : lut:int -> unit;
}

type event =
  | Enter of { fname : string }
  | Leave of { fname : string }
  | Exec of { fname : string; bidx : int; iidx : int; instr : Ir.instr; addr : int }
  | Term of { fname : string; bidx : int; term : Ir.terminator }

type hooks = {
  on_enter : string -> unit;
  on_leave : string -> unit;
  on_exec : string -> int -> int -> Ir.instr -> int -> unit;
  on_term : string -> int -> Ir.terminator -> unit;
}

let hooks_of_event_fn f =
  {
    on_enter = (fun fname -> f (Enter { fname }));
    on_leave = (fun fname -> f (Leave { fname }));
    on_exec =
      (fun fname bidx iidx instr addr -> f (Exec { fname; bidx; iidx; instr; addr }));
    on_term = (fun fname bidx term -> f (Term { fname; bidx; term }));
  }

let combine_hooks a b =
  {
    on_enter =
      (fun fname ->
        a.on_enter fname;
        b.on_enter fname);
    on_leave =
      (fun fname ->
        a.on_leave fname;
        b.on_leave fname);
    on_exec =
      (fun fname bidx iidx instr addr ->
        a.on_exec fname bidx iidx instr addr;
        b.on_exec fname bidx iidx instr addr);
    on_term =
      (fun fname bidx term ->
        a.on_term fname bidx term;
        b.on_term fname bidx term);
  }

(* Terminators with block labels pre-resolved to indices: the inner loop
   follows a branch with an array access instead of a Hashtbl.find on the
   label string. *)
type rterm =
  | Rjmp of int
  | Rbr of { cond : Ir.operand; if_true : int; if_false : int }
  | Rbr_memo of { on_hit : int; on_miss : int }
  | Rret of Ir.operand array

type cblock = {
  instrs : Ir.instr array;
  rterm : rterm;
  term : Ir.terminator;  (* original form, handed to the hook *)
}

type cfunc = { fn : Ir.func; cblocks : cblock array }

type t = {
  program : Ir.program;
  mem : Memory.t;
  memo : memo_hooks option;
  hooks : hooks option;
  max_steps : int;
  funcs : (string, cfunc) Hashtbl.t;
  mutable memo_flag : bool;
  mutable nsteps : int;
}

let compile_func (f : Ir.func) =
  let labels = Hashtbl.create 16 in
  Array.iteri (fun i (b : Ir.block) -> Hashtbl.replace labels b.label i) f.blocks;
  let resolve l =
    match Hashtbl.find_opt labels l with
    | Some i -> i
    | None -> failwith (Printf.sprintf "Interp: unknown label %s in %s" l f.fname)
  in
  let cblocks =
    Array.map
      (fun (b : Ir.block) ->
        let rterm =
          match b.term with
          | Ir.Jmp l -> Rjmp (resolve l)
          | Ir.Br { cond; if_true; if_false } ->
              Rbr { cond; if_true = resolve if_true; if_false = resolve if_false }
          | Ir.Br_memo { on_hit; on_miss } ->
              Rbr_memo { on_hit = resolve on_hit; on_miss = resolve on_miss }
          | Ir.Ret ops -> Rret ops
        in
        { instrs = b.instrs; rterm; term = b.term })
      f.blocks
  in
  { fn = f; cblocks }

let create ?memo ?hook ?hooks ?(max_steps = 2_000_000_000) ~program ~mem () =
  let hooks =
    match (hook, hooks) with
    | None, None -> None
    | Some f, None -> Some (hooks_of_event_fn f)
    | None, Some h -> Some h
    | Some f, Some h -> Some (combine_hooks (hooks_of_event_fn f) h)
  in
  let funcs = Hashtbl.create 16 in
  Array.iter
    (fun (f : Ir.func) -> Hashtbl.replace funcs f.fname (compile_func f))
    (program : Ir.program).funcs;
  { program; mem; memo; hooks; max_steps; funcs; memo_flag = false; nsteps = 0 }

let steps t = t.nsteps

let sext32 v = Int64.shift_right (Int64.shift_left v 32) 32
let round_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let vi = function Ir.VI v -> v | Ir.VF _ -> failwith "Interp: expected integer value"
let vf = function Ir.VF v -> v | Ir.VI _ -> failwith "Interp: expected float value"

let eval_binop op ty a b =
  let a = vi a and b = vi b in
  let wide =
    match (op : Ir.binop) with
    | Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | Mul -> Int64.mul a b
    | Div -> if b = 0L then failwith "Interp: division by zero" else Int64.div a b
    | Rem -> if b = 0L then failwith "Interp: division by zero" else Int64.rem a b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
    | Shl ->
        let s = Int64.to_int b land if ty = Ir.I32 then 31 else 63 in
        Int64.shift_left a s
    | Lshr ->
        let s = Int64.to_int b land if ty = Ir.I32 then 31 else 63 in
        if ty = Ir.I32 then Int64.shift_right_logical (Int64.logand a 0xFFFFFFFFL) s
        else Int64.shift_right_logical a s
    | Ashr ->
        let s = Int64.to_int b land if ty = Ir.I32 then 31 else 63 in
        Int64.shift_right a s
  in
  Ir.VI (if ty = Ir.I32 then sext32 wide else wide)

let eval_fbinop op ty a b =
  let a = vf a and b = vf b in
  let r =
    match (op : Ir.fbinop) with
    | Fadd -> a +. b
    | Fsub -> a -. b
    | Fmul -> a *. b
    | Fdiv -> a /. b
  in
  Ir.VF (if ty = Ir.F32 then round_f32 r else r)

let eval_funop op ty a =
  let a = vf a in
  let r =
    match (op : Ir.funop) with
    | Fneg -> -.a
    | Fabs -> abs_float a
    | Fsqrt -> sqrt a
    | Fsin -> sin a
    | Fcos -> cos a
    | Fexp -> exp a
    | Flog -> log a
    | Ffloor -> floor a
    | Fround -> Float.round a
  in
  Ir.VF (if ty = Ir.F32 then round_f32 r else r)

let eval_icmp op a b =
  let a = vi a and b = vi b in
  let r =
    match (op : Ir.icmp) with
    | Ieq -> a = b
    | Ine -> a <> b
    | Ilt -> a < b
    | Ile -> a <= b
    | Igt -> a > b
    | Ige -> a >= b
  in
  Ir.VI (if r then 1L else 0L)

let eval_fcmp op a b =
  let a = vf a and b = vf b in
  let r =
    match (op : Ir.fcmp) with
    | Feq -> a = b
    | Fne -> a <> b
    | Flt -> a < b
    | Fle -> a <= b
    | Fgt -> a > b
    | Fge -> a >= b
  in
  Ir.VI (if r then 1L else 0L)

let eval_cast op v =
  match (op : Ir.cast) with
  | I_to_f -> Ir.VF (Int64.to_float (vi v))
  | F_to_i -> Ir.VI (Int64.of_float (vf v))
  | F32_of_f64 -> Ir.VF (round_f32 (vf v))
  | F64_of_f32 -> Ir.VF (vf v)
  | Bits_of_f32 -> Ir.VI (sext32 (Int64.of_int32 (Int32.bits_of_float (vf v))))
  | F32_of_bits -> Ir.VF (Int32.float_of_bits (Int64.to_int32 (vi v)))
  | Bits_of_f64 -> Ir.VI (Int64.bits_of_float (vf v))
  | F64_of_bits -> Ir.VF (Int64.float_of_bits (vi v))
  | Sext_32_64 -> Ir.VI (sext32 (vi v))
  | Trunc_64_32 -> Ir.VI (sext32 (vi v))

let[@inline] operand regs = function Ir.Reg r -> regs.(r) | Ir.Imm v -> v

let callee_func t callee =
  match Hashtbl.find_opt t.funcs callee with
  | Some cf -> cf
  | None -> failwith ("Interp: unknown function " ^ callee)

let exec_memo t regs (m : Ir.memo_instr) : int =
  match m with
  | Ld_crc { dst; ty; base; offset; lut; trunc } ->
      let a = Int64.to_int (vi (operand regs base)) + offset in
      let v = Memory.load t.mem ty a in
      regs.(dst) <- v;
      (match t.memo with Some mh -> mh.send ~lut ~ty ~trunc v | None -> ());
      a
  | Reg_crc { src; ty; lut; trunc } ->
      (match t.memo with
      | Some mh -> mh.send ~lut ~ty ~trunc (operand regs src)
      | None -> ());
      -1
  | Lookup { dst; lut } ->
      (match t.memo with
      | Some mh -> (
          match mh.lookup ~lut with
          | Some payload ->
              t.memo_flag <- true;
              regs.(dst) <- VI payload
          | None ->
              t.memo_flag <- false;
              regs.(dst) <- VI 0L)
      | None ->
          t.memo_flag <- false;
          regs.(dst) <- VI 0L);
      -1
  | Update { src; lut } ->
      (match t.memo with
      | Some mh -> mh.update ~lut (vi (operand regs src))
      | None -> ());
      -1
  | Invalidate { lut } ->
      (match t.memo with Some mh -> mh.invalidate ~lut | None -> ());
      -1

(* Executes one non-call instruction; returns the effective address for
   memory instructions, -1 otherwise. No event record is allocated: flat
   arguments carry what the hook needs. [Call] is handled by the block
   drivers because it recurses and fires its hook before the callee runs. *)
let exec_simple t regs (instr : Ir.instr) : int =
  match instr with
  | Const { dst; value; _ } ->
      regs.(dst) <- value;
      -1
  | Mov { dst; src } ->
      regs.(dst) <- operand regs src;
      -1
  | Binop { op; ty; dst; a; b } ->
      regs.(dst) <- eval_binop op ty (operand regs a) (operand regs b);
      -1
  | Fbinop { op; ty; dst; a; b } ->
      regs.(dst) <- eval_fbinop op ty (operand regs a) (operand regs b);
      -1
  | Funop { op; ty; dst; a } ->
      regs.(dst) <- eval_funop op ty (operand regs a);
      -1
  | Icmp { op; dst; a; b; _ } ->
      regs.(dst) <- eval_icmp op (operand regs a) (operand regs b);
      -1
  | Fcmp { op; dst; a; b; _ } ->
      regs.(dst) <- eval_fcmp op (operand regs a) (operand regs b);
      -1
  | Select { dst; cond; if_true; if_false } ->
      regs.(dst) <-
        (if vi (operand regs cond) <> 0L then operand regs if_true
         else operand regs if_false);
      -1
  | Cast { op; dst; src } ->
      regs.(dst) <- eval_cast op (operand regs src);
      -1
  | Load { ty; dst; base; offset } ->
      let a = Int64.to_int (vi (operand regs base)) + offset in
      regs.(dst) <- Memory.load t.mem ty a;
      a
  | Store { ty; src; base; offset } ->
      let a = Int64.to_int (vi (operand regs base)) + offset in
      Memory.store t.mem ty a (operand regs src);
      a
  | Memo m -> exec_memo t regs m
  | Call _ -> assert false

(* The block drivers are specialized on hook presence: the hooked variant
   pays the per-instruction hook calls, the plain variant's loop contains no
   option match and no hook dispatch at all. Dispatch happens once per
   function call in [exec_func]. *)
let rec exec_func t (cf : cfunc) (args : Ir.value array) : Ir.value array =
  let fn = cf.fn in
  let regs = Array.make fn.nregs (Ir.VI 0L) in
  Array.iteri (fun i (r, _) -> regs.(r) <- args.(i)) fn.params;
  match t.hooks with
  | None -> run_plain t cf regs 0
  | Some h ->
      h.on_enter fn.fname;
      let results = run_hooked t h cf regs 0 in
      h.on_leave fn.fname;
      results

and run_plain t cf regs bidx : Ir.value array =
  let block = cf.cblocks.(bidx) in
  let instrs = block.instrs in
  let n = Array.length instrs in
  for iidx = 0 to n - 1 do
    let instr = instrs.(iidx) in
    t.nsteps <- t.nsteps + 1;
    if t.nsteps > t.max_steps then failwith "Interp: step limit exceeded";
    match instr with
    | Call { callee; dsts; args } ->
        let g = callee_func t callee in
        let results = exec_func t g (Array.map (operand regs) args) in
        Array.iteri (fun i dst -> regs.(dst) <- results.(i)) dsts
    | _ -> ignore (exec_simple t regs instr)
  done;
  match block.rterm with
  | Rjmp b -> run_plain t cf regs b
  | Rbr { cond; if_true; if_false } ->
      run_plain t cf regs (if vi (operand regs cond) <> 0L then if_true else if_false)
  | Rbr_memo { on_hit; on_miss } ->
      run_plain t cf regs (if t.memo_flag then on_hit else on_miss)
  | Rret ops -> Array.map (operand regs) ops

and run_hooked t h cf regs bidx : Ir.value array =
  let fname = cf.fn.fname in
  let block = cf.cblocks.(bidx) in
  let instrs = block.instrs in
  let n = Array.length instrs in
  for iidx = 0 to n - 1 do
    let instr = instrs.(iidx) in
    t.nsteps <- t.nsteps + 1;
    if t.nsteps > t.max_steps then failwith "Interp: step limit exceeded";
    match instr with
    | Call { callee; dsts; args } ->
        (* The call event fires before the callee runs so a timing consumer
           sees events in issue order. *)
        h.on_exec fname bidx iidx instr (-1);
        let g = callee_func t callee in
        let results = exec_func t g (Array.map (operand regs) args) in
        Array.iteri (fun i dst -> regs.(dst) <- results.(i)) dsts
    | _ ->
        let addr = exec_simple t regs instr in
        h.on_exec fname bidx iidx instr addr
  done;
  h.on_term fname bidx block.term;
  match block.rterm with
  | Rjmp b -> run_hooked t h cf regs b
  | Rbr { cond; if_true; if_false } ->
      run_hooked t h cf regs
        (if vi (operand regs cond) <> 0L then if_true else if_false)
  | Rbr_memo { on_hit; on_miss } ->
      run_hooked t h cf regs (if t.memo_flag then on_hit else on_miss)
  | Rret ops -> Array.map (operand regs) ops

let run t fname args =
  match Hashtbl.find_opt t.funcs fname with
  | None -> failwith ("Interp: unknown function " ^ fname)
  | Some cf ->
      if Array.length args <> Array.length cf.fn.params then
        failwith ("Interp: bad argument count for " ^ fname);
      exec_func t cf args
