type memo_hooks = {
  send : lut:int -> ty:Ir.ty -> trunc:int -> Ir.value -> unit;
  lookup : lut:int -> int64 option;
  update : lut:int -> int64 -> unit;
  invalidate : lut:int -> unit;
}

type event =
  | Enter of { fname : string }
  | Leave of { fname : string }
  | Exec of { fname : string; bidx : int; iidx : int; instr : Ir.instr; addr : int }
  | Term of { fname : string; bidx : int; term : Ir.terminator }

type hooks = {
  on_enter : string -> unit;
  on_leave : string -> unit;
  on_exec : string -> int -> int -> Ir.instr -> int -> unit;
  on_term : string -> int -> Ir.terminator -> unit;
  exec_site : (string -> int -> int -> Ir.instr -> int -> unit) option;
      (* site compiler: called at most once per static instruction (at
         [create] under the compiled backend); the returned closure is then
         invoked once per execution with the effective address, INSTEAD of
         [on_exec]. Must be observationally identical to [on_exec]. *)
  term_site : (string -> int -> Ir.terminator -> unit -> unit) option;
      (* site compiler for terminators, replacing [on_term] per execution *)
}

let hooks_of_event_fn f =
  {
    on_enter = (fun fname -> f (Enter { fname }));
    on_leave = (fun fname -> f (Leave { fname }));
    on_exec =
      (fun fname bidx iidx instr addr -> f (Exec { fname; bidx; iidx; instr; addr }));
    on_term = (fun fname bidx term -> f (Term { fname; bidx; term }));
    exec_site = None;
    term_site = None;
  }

let no_hooks =
  {
    on_enter = ignore;
    on_leave = ignore;
    on_exec = (fun _ _ _ _ _ -> ());
    on_term = (fun _ _ _ -> ());
    exec_site = None;
    term_site = None;
  }

(* Resolve a hook side to its per-site closure: the compiled site when the
   observer provides one, otherwise a wrapper over the flat callback. *)
let exec_site_of h fname bidx iidx instr =
  match h.exec_site with
  | Some site -> site fname bidx iidx instr
  | None -> fun addr -> h.on_exec fname bidx iidx instr addr

let term_site_of h fname bidx term =
  match h.term_site with
  | Some site -> site fname bidx term
  | None -> fun () -> h.on_term fname bidx term

let combine_hooks a b =
  (* Attaching a single real consumer must not pay fan-out closures, so the
     canonical no-op record short-circuits (physical equality: a custom
     record of no-ops still composes). *)
  if a == no_hooks then b
  else if b == no_hooks then a
  else
    {
      on_enter =
        (fun fname ->
          a.on_enter fname;
          b.on_enter fname);
      on_leave =
        (fun fname ->
          a.on_leave fname;
          b.on_leave fname);
      on_exec =
        (fun fname bidx iidx instr addr ->
          a.on_exec fname bidx iidx instr addr;
          b.on_exec fname bidx iidx instr addr);
      on_term =
        (fun fname bidx term ->
          a.on_term fname bidx term;
          b.on_term fname bidx term);
      exec_site =
        (match (a.exec_site, b.exec_site) with
        | None, None -> None
        | _ ->
            Some
              (fun fname bidx iidx instr ->
                let fa = exec_site_of a fname bidx iidx instr in
                let fb = exec_site_of b fname bidx iidx instr in
                fun addr ->
                  fa addr;
                  fb addr));
      term_site =
        (match (a.term_site, b.term_site) with
        | None, None -> None
        | _ ->
            Some
              (fun fname bidx term ->
                let fa = term_site_of a fname bidx term in
                let fb = term_site_of b fname bidx term in
                fun () ->
                  fa ();
                  fb ()));
    }

(* Terminators with block labels pre-resolved to indices: the inner loop
   follows a branch with an array access instead of a Hashtbl.find on the
   label string. *)
type rterm =
  | Rjmp of int
  | Rbr of { cond : Ir.operand; if_true : int; if_false : int }
  | Rbr_memo of { on_hit : int; on_miss : int }
  | Rret of Ir.operand array

type cblock = {
  instrs : Ir.instr array;
  rterm : rterm;
  term : Ir.terminator;  (* original form, handed to the hook *)
}

type cfunc = { fn : Ir.func; cblocks : cblock array }

type backend = [ `Interp | `Compiled ]

(* A function lowered to closure chains: [k_body.(b)] executes block [b]
   (instructions, hook sites, terminator) and returns the next block index,
   or -1 on return, leaving the results in [k_ret]. Register frames come
   from a depth-indexed arena so steady-state execution allocates nothing. *)
type ker = {
  k_fn : Ir.func;
  k_body : (Ir.value array -> int) array;
  k_ret : Ir.value array;
  mutable k_pool : Ir.value array array;
  mutable k_pool_len : int;  (* valid prefix of [k_pool] *)
  mutable k_depth : int;
}

type t = {
  program : Ir.program;
  mem : Memory.t;
  memo : memo_hooks option;
  hooks : hooks option;
  max_steps : int;
  funcs : (string, cfunc) Hashtbl.t;
  mutable memo_flag : bool;
  mutable nsteps : int;
  mutable kers : (string, ker) Hashtbl.t option;
      (* [Some] iff the backend is [`Compiled]; mutable only to break the
         create/compile cycle *)
}

let compile_func (f : Ir.func) =
  let labels = Hashtbl.create 16 in
  Array.iteri (fun i (b : Ir.block) -> Hashtbl.replace labels b.label i) f.blocks;
  let resolve l =
    match Hashtbl.find_opt labels l with
    | Some i -> i
    | None -> failwith (Printf.sprintf "Interp: unknown label %s in %s" l f.fname)
  in
  let cblocks =
    Array.map
      (fun (b : Ir.block) ->
        let rterm =
          match b.term with
          | Ir.Jmp l -> Rjmp (resolve l)
          | Ir.Br { cond; if_true; if_false } ->
              Rbr { cond; if_true = resolve if_true; if_false = resolve if_false }
          | Ir.Br_memo { on_hit; on_miss } ->
              Rbr_memo { on_hit = resolve on_hit; on_miss = resolve on_miss }
          | Ir.Ret ops -> Rret ops
        in
        { instrs = b.instrs; rterm; term = b.term })
      f.blocks
  in
  { fn = f; cblocks }

let steps t = t.nsteps

let sext32 v = Int64.shift_right (Int64.shift_left v 32) 32
let round_f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let vi = function Ir.VI v -> v | Ir.VF _ -> failwith "Interp: expected integer value"
let vf = function Ir.VF v -> v | Ir.VI _ -> failwith "Interp: expected float value"

let eval_binop op ty a b =
  let a = vi a and b = vi b in
  let wide =
    match (op : Ir.binop) with
    | Add -> Int64.add a b
    | Sub -> Int64.sub a b
    | Mul -> Int64.mul a b
    | Div -> if b = 0L then failwith "Interp: division by zero" else Int64.div a b
    | Rem -> if b = 0L then failwith "Interp: division by zero" else Int64.rem a b
    | And -> Int64.logand a b
    | Or -> Int64.logor a b
    | Xor -> Int64.logxor a b
    | Shl ->
        let s = Int64.to_int b land if ty = Ir.I32 then 31 else 63 in
        Int64.shift_left a s
    | Lshr ->
        let s = Int64.to_int b land if ty = Ir.I32 then 31 else 63 in
        if ty = Ir.I32 then Int64.shift_right_logical (Int64.logand a 0xFFFFFFFFL) s
        else Int64.shift_right_logical a s
    | Ashr ->
        let s = Int64.to_int b land if ty = Ir.I32 then 31 else 63 in
        Int64.shift_right a s
  in
  Ir.VI (if ty = Ir.I32 then sext32 wide else wide)

let eval_fbinop op ty a b =
  let a = vf a and b = vf b in
  let r =
    match (op : Ir.fbinop) with
    | Fadd -> a +. b
    | Fsub -> a -. b
    | Fmul -> a *. b
    | Fdiv -> a /. b
  in
  Ir.VF (if ty = Ir.F32 then round_f32 r else r)

let eval_funop op ty a =
  let a = vf a in
  let r =
    match (op : Ir.funop) with
    | Fneg -> -.a
    | Fabs -> abs_float a
    | Fsqrt -> sqrt a
    | Fsin -> sin a
    | Fcos -> cos a
    | Fexp -> exp a
    | Flog -> log a
    | Ffloor -> floor a
    | Fround -> Float.round a
  in
  Ir.VF (if ty = Ir.F32 then round_f32 r else r)

let eval_icmp op a b =
  let a = vi a and b = vi b in
  let r =
    match (op : Ir.icmp) with
    | Ieq -> a = b
    | Ine -> a <> b
    | Ilt -> a < b
    | Ile -> a <= b
    | Igt -> a > b
    | Ige -> a >= b
  in
  Ir.VI (if r then 1L else 0L)

let eval_fcmp op a b =
  let a = vf a and b = vf b in
  let r =
    match (op : Ir.fcmp) with
    | Feq -> a = b
    | Fne -> a <> b
    | Flt -> a < b
    | Fle -> a <= b
    | Fgt -> a > b
    | Fge -> a >= b
  in
  Ir.VI (if r then 1L else 0L)

let eval_cast op v =
  match (op : Ir.cast) with
  | I_to_f -> Ir.VF (Int64.to_float (vi v))
  | F_to_i -> Ir.VI (Int64.of_float (vf v))
  | F32_of_f64 -> Ir.VF (round_f32 (vf v))
  | F64_of_f32 -> Ir.VF (vf v)
  | Bits_of_f32 -> Ir.VI (sext32 (Int64.of_int32 (Int32.bits_of_float (vf v))))
  | F32_of_bits -> Ir.VF (Int32.float_of_bits (Int64.to_int32 (vi v)))
  | Bits_of_f64 -> Ir.VI (Int64.bits_of_float (vf v))
  | F64_of_bits -> Ir.VF (Int64.float_of_bits (vi v))
  | Sext_32_64 -> Ir.VI (sext32 (vi v))
  | Trunc_64_32 -> Ir.VI (sext32 (vi v))

let[@inline] operand regs = function Ir.Reg r -> regs.(r) | Ir.Imm v -> v

let callee_func t callee =
  match Hashtbl.find_opt t.funcs callee with
  | Some cf -> cf
  | None -> failwith ("Interp: unknown function " ^ callee)

let exec_memo t regs (m : Ir.memo_instr) : int =
  match m with
  | Ld_crc { dst; ty; base; offset; lut; trunc } ->
      let a = Int64.to_int (vi (operand regs base)) + offset in
      let v = Memory.load t.mem ty a in
      regs.(dst) <- v;
      (match t.memo with Some mh -> mh.send ~lut ~ty ~trunc v | None -> ());
      a
  | Reg_crc { src; ty; lut; trunc } ->
      (match t.memo with
      | Some mh -> mh.send ~lut ~ty ~trunc (operand regs src)
      | None -> ());
      -1
  | Lookup { dst; lut } ->
      (match t.memo with
      | Some mh -> (
          match mh.lookup ~lut with
          | Some payload ->
              t.memo_flag <- true;
              regs.(dst) <- VI payload
          | None ->
              t.memo_flag <- false;
              regs.(dst) <- VI 0L)
      | None ->
          t.memo_flag <- false;
          regs.(dst) <- VI 0L);
      -1
  | Update { src; lut } ->
      (match t.memo with
      | Some mh -> mh.update ~lut (vi (operand regs src))
      | None -> ());
      -1
  | Invalidate { lut } ->
      (match t.memo with Some mh -> mh.invalidate ~lut | None -> ());
      -1

(* Executes one non-call instruction; returns the effective address for
   memory instructions, -1 otherwise. No event record is allocated: flat
   arguments carry what the hook needs. [Call] is handled by the block
   drivers because it recurses and fires its hook before the callee runs. *)
let exec_simple t regs (instr : Ir.instr) : int =
  match instr with
  | Const { dst; value; _ } ->
      regs.(dst) <- value;
      -1
  | Mov { dst; src } ->
      regs.(dst) <- operand regs src;
      -1
  | Binop { op; ty; dst; a; b } ->
      regs.(dst) <- eval_binop op ty (operand regs a) (operand regs b);
      -1
  | Fbinop { op; ty; dst; a; b } ->
      regs.(dst) <- eval_fbinop op ty (operand regs a) (operand regs b);
      -1
  | Funop { op; ty; dst; a } ->
      regs.(dst) <- eval_funop op ty (operand regs a);
      -1
  | Icmp { op; dst; a; b; _ } ->
      regs.(dst) <- eval_icmp op (operand regs a) (operand regs b);
      -1
  | Fcmp { op; dst; a; b; _ } ->
      regs.(dst) <- eval_fcmp op (operand regs a) (operand regs b);
      -1
  | Select { dst; cond; if_true; if_false } ->
      regs.(dst) <-
        (if vi (operand regs cond) <> 0L then operand regs if_true
         else operand regs if_false);
      -1
  | Cast { op; dst; src } ->
      regs.(dst) <- eval_cast op (operand regs src);
      -1
  | Load { ty; dst; base; offset } ->
      let a = Int64.to_int (vi (operand regs base)) + offset in
      regs.(dst) <- Memory.load t.mem ty a;
      a
  | Store { ty; src; base; offset } ->
      let a = Int64.to_int (vi (operand regs base)) + offset in
      Memory.store t.mem ty a (operand regs src);
      a
  | Memo m -> exec_memo t regs m
  | Call _ -> assert false

(* ------------------------------------------------------------------ *)
(* Compiled backend: each basic block becomes a chain of closures built at
   [create]. Operands are resolved to array slots, callees and branch
   targets to compiled-block references, and hook sites are specialized per
   static instruction — the same specialization the interpreter loop does on
   hook presence, pushed from run time to compile time. Dispatch is one
   indirect call per block instead of a match per instruction. *)

let vzero = Ir.VI 0L

let getter = function
  | Ir.Reg r -> fun (regs : Ir.value array) -> regs.(r)
  | Ir.Imm v -> fun _ -> v

(* Compile-time specialization of the scalar evaluators: the opcode match
   and the width test move from every execution to [create]. Every arm must
   stay bit-identical to its [eval_*] twin, including operand evaluation
   order and failure messages. *)

let compile_binop (op : Ir.binop) (ty : Ir.ty) : Ir.value -> Ir.value -> Ir.value =
  let is32 = match ty with Ir.I32 -> true | Ir.I64 | Ir.F32 | Ir.F64 -> false in
  let[@inline] fin w = Ir.VI (if is32 then sext32 w else w) in
  let smask = if is32 then 31 else 63 in
  match op with
  | Add -> fun a b -> fin (Int64.add (vi a) (vi b))
  | Sub -> fun a b -> fin (Int64.sub (vi a) (vi b))
  | Mul -> fun a b -> fin (Int64.mul (vi a) (vi b))
  | Div ->
      fun a b ->
        let a = vi a in
        let b = vi b in
        if b = 0L then failwith "Interp: division by zero" else fin (Int64.div a b)
  | Rem ->
      fun a b ->
        let a = vi a in
        let b = vi b in
        if b = 0L then failwith "Interp: division by zero" else fin (Int64.rem a b)
  | And -> fun a b -> fin (Int64.logand (vi a) (vi b))
  | Or -> fun a b -> fin (Int64.logor (vi a) (vi b))
  | Xor -> fun a b -> fin (Int64.logxor (vi a) (vi b))
  | Shl ->
      fun a b ->
        let a = vi a in
        fin (Int64.shift_left a (Int64.to_int (vi b) land smask))
  | Lshr ->
      if is32 then fun a b ->
        let a = vi a in
        fin
          (Int64.shift_right_logical (Int64.logand a 0xFFFFFFFFL)
             (Int64.to_int (vi b) land 31))
      else fun a b ->
        let a = vi a in
        fin (Int64.shift_right_logical a (Int64.to_int (vi b) land 63))
  | Ashr ->
      fun a b ->
        let a = vi a in
        fin (Int64.shift_right a (Int64.to_int (vi b) land smask))

let compile_fbinop (op : Ir.fbinop) (ty : Ir.ty) : Ir.value -> Ir.value -> Ir.value =
  let is32 = match ty with Ir.F32 -> true | Ir.I32 | Ir.I64 | Ir.F64 -> false in
  let[@inline] fin r = Ir.VF (if is32 then round_f32 r else r) in
  match op with
  | Fadd -> fun a b -> fin (vf a +. vf b)
  | Fsub -> fun a b -> fin (vf a -. vf b)
  | Fmul -> fun a b -> fin (vf a *. vf b)
  | Fdiv -> fun a b -> fin (vf a /. vf b)

let compile_funop (op : Ir.funop) (ty : Ir.ty) : Ir.value -> Ir.value =
  let is32 = match ty with Ir.F32 -> true | Ir.I32 | Ir.I64 | Ir.F64 -> false in
  let[@inline] fin r = Ir.VF (if is32 then round_f32 r else r) in
  match op with
  | Fneg -> fun a -> fin (-.vf a)
  | Fabs -> fun a -> fin (abs_float (vf a))
  | Fsqrt -> fun a -> fin (sqrt (vf a))
  | Fsin -> fun a -> fin (sin (vf a))
  | Fcos -> fun a -> fin (cos (vf a))
  | Fexp -> fun a -> fin (exp (vf a))
  | Flog -> fun a -> fin (log (vf a))
  | Ffloor -> fun a -> fin (floor (vf a))
  | Fround -> fun a -> fin (Float.round (vf a))

(* Shared result cells: structurally identical to the fresh boxes the
   interpreter allocates, so sharing is invisible to every comparison. *)
let vtrue = Ir.VI 1L
let vfalse = Ir.VI 0L

let compile_icmp (op : Ir.icmp) : Ir.value -> Ir.value -> Ir.value =
  match op with
  | Ieq -> fun a b -> if vi a = vi b then vtrue else vfalse
  | Ine -> fun a b -> if vi a <> vi b then vtrue else vfalse
  | Ilt -> fun a b -> if vi a < vi b then vtrue else vfalse
  | Ile -> fun a b -> if vi a <= vi b then vtrue else vfalse
  | Igt -> fun a b -> if vi a > vi b then vtrue else vfalse
  | Ige -> fun a b -> if vi a >= vi b then vtrue else vfalse

let compile_fcmp (op : Ir.fcmp) : Ir.value -> Ir.value -> Ir.value =
  match op with
  | Feq -> fun a b -> if vf a = vf b then vtrue else vfalse
  | Fne -> fun a b -> if vf a <> vf b then vtrue else vfalse
  | Flt -> fun a b -> if vf a < vf b then vtrue else vfalse
  | Fle -> fun a b -> if vf a <= vf b then vtrue else vfalse
  | Fgt -> fun a b -> if vf a > vf b then vtrue else vfalse
  | Fge -> fun a b -> if vf a >= vf b then vtrue else vfalse

let compile_cast (op : Ir.cast) : Ir.value -> Ir.value =
  match op with
  | I_to_f -> fun v -> Ir.VF (Int64.to_float (vi v))
  | F_to_i -> fun v -> Ir.VI (Int64.of_float (vf v))
  | F32_of_f64 -> fun v -> Ir.VF (round_f32 (vf v))
  | F64_of_f32 -> fun v -> Ir.VF (vf v)
  | Bits_of_f32 ->
      fun v -> Ir.VI (sext32 (Int64.of_int32 (Int32.bits_of_float (vf v))))
  | F32_of_bits -> fun v -> Ir.VF (Int32.float_of_bits (Int64.to_int32 (vi v)))
  | Bits_of_f64 -> fun v -> Ir.VI (Int64.bits_of_float (vf v))
  | F64_of_bits -> fun v -> Ir.VF (Int64.float_of_bits (vi v))
  | Sext_32_64 -> fun v -> Ir.VI (sext32 (vi v))
  | Trunc_64_32 -> fun v -> Ir.VI (sext32 (vi v))

let[@inline] bump t =
  t.nsteps <- t.nsteps + 1;
  if t.nsteps > t.max_steps then failwith "Interp: step limit exceeded"

let find_ker t callee =
  match t.kers with
  | None -> assert false
  | Some kers -> (
      match Hashtbl.find_opt kers callee with
      | Some k -> k
      | None -> failwith ("Interp: unknown function " ^ callee))

let acquire_regs (k : ker) =
  let d = k.k_depth in
  k.k_depth <- d + 1;
  if d < k.k_pool_len then begin
    let regs = k.k_pool.(d) in
    Array.fill regs 0 (Array.length regs) vzero;
    regs
  end
  else begin
    (* recursion depth grows one frame at a time, so [d = k_pool_len] *)
    let regs = Array.make k.k_fn.nregs vzero in
    if d >= Array.length k.k_pool then begin
      let grown = Array.make (max 4 (2 * (d + 1))) [||] in
      Array.blit k.k_pool 0 grown 0 (Array.length k.k_pool);
      k.k_pool <- grown
    end;
    k.k_pool.(d) <- regs;
    k.k_pool_len <- d + 1;
    regs
  end

let exec_ker t (k : ker) (args : Ir.value array) =
  let regs = acquire_regs k in
  Array.iteri (fun i (r, _) -> regs.(r) <- args.(i)) k.k_fn.params;
  let body = k.k_body in
  (match t.hooks with
  | None ->
      let b = ref 0 in
      while !b >= 0 do
        b := body.(!b) regs
      done
  | Some h ->
      h.on_enter k.k_fn.fname;
      let b = ref 0 in
      while !b >= 0 do
        b := body.(!b) regs
      done;
      h.on_leave k.k_fn.fname);
  k.k_depth <- k.k_depth - 1

(* Memoization hook presence is resolved at compile time: a memo-less
   context compiles [Reg_crc]/[Update]/[Invalidate] down to a step-count
   bump. Semantics mirror [exec_memo] arm for arm. *)
let compile_memo t (m : Ir.memo_instr) : Ir.value array -> int =
  match m with
  | Ld_crc { dst; ty; base; offset; lut; trunc } -> (
      let gb = getter base in
      match t.memo with
      | Some mh ->
          fun regs ->
            let a = Int64.to_int (vi (gb regs)) + offset in
            let v = Memory.load t.mem ty a in
            regs.(dst) <- v;
            mh.send ~lut ~ty ~trunc v;
            a
      | None ->
          fun regs ->
            let a = Int64.to_int (vi (gb regs)) + offset in
            regs.(dst) <- Memory.load t.mem ty a;
            a)
  | Reg_crc { src; ty; lut; trunc } -> (
      match t.memo with
      | Some mh ->
          let g = getter src in
          fun regs ->
            mh.send ~lut ~ty ~trunc (g regs);
            -1
      | None -> fun _ -> -1)
  | Lookup { dst; lut } -> (
      match t.memo with
      | Some mh ->
          fun regs ->
            (match mh.lookup ~lut with
            | Some payload ->
                t.memo_flag <- true;
                regs.(dst) <- VI payload
            | None ->
                t.memo_flag <- false;
                regs.(dst) <- VI 0L);
            -1
      | None ->
          fun regs ->
            t.memo_flag <- false;
            regs.(dst) <- VI 0L;
            -1)
  | Update { src; lut } -> (
      match t.memo with
      | Some mh ->
          let g = getter src in
          fun regs ->
            mh.update ~lut (vi (g regs));
            -1
      | None -> fun _ -> -1)
  | Invalidate { lut } -> (
      match t.memo with
      | Some mh ->
          fun _ ->
            mh.invalidate ~lut;
            -1
      | None -> fun _ -> -1)

(* Compile one non-call instruction to a closure returning the effective
   address (-1 when not a memory access) — the compiled twin of
   [exec_simple], with operands and opcodes resolved once. *)
let compile_ex t (instr : Ir.instr) : Ir.value array -> int =
  match instr with
  | Const { dst; value; _ } ->
      fun regs ->
        regs.(dst) <- value;
        -1
  | Mov { dst; src } ->
      let g = getter src in
      fun regs ->
        regs.(dst) <- g regs;
        -1
  | Binop { op; ty; dst; a; b } ->
      let ga = getter a and gb = getter b in
      let f = compile_binop op ty in
      fun regs ->
        regs.(dst) <- f (ga regs) (gb regs);
        -1
  | Fbinop { op; ty; dst; a; b } ->
      let ga = getter a and gb = getter b in
      let f = compile_fbinop op ty in
      fun regs ->
        regs.(dst) <- f (ga regs) (gb regs);
        -1
  | Funop { op; ty; dst; a } ->
      let ga = getter a in
      let f = compile_funop op ty in
      fun regs ->
        regs.(dst) <- f (ga regs);
        -1
  | Icmp { op; dst; a; b; _ } ->
      let ga = getter a and gb = getter b in
      let f = compile_icmp op in
      fun regs ->
        regs.(dst) <- f (ga regs) (gb regs);
        -1
  | Fcmp { op; dst; a; b; _ } ->
      let ga = getter a and gb = getter b in
      let f = compile_fcmp op in
      fun regs ->
        regs.(dst) <- f (ga regs) (gb regs);
        -1
  | Select { dst; cond; if_true; if_false } ->
      let gc = getter cond and gt = getter if_true and gf = getter if_false in
      fun regs ->
        regs.(dst) <- (if vi (gc regs) <> 0L then gt regs else gf regs);
        -1
  | Cast { op; dst; src } ->
      let g = getter src in
      let f = compile_cast op in
      fun regs ->
        regs.(dst) <- f (g regs);
        -1
  | Load { ty; dst; base; offset } ->
      let gb = getter base in
      fun regs ->
        let a = Int64.to_int (vi (gb regs)) + offset in
        regs.(dst) <- Memory.load t.mem ty a;
        a
  | Store { ty; src; base; offset } ->
      let gb = getter base and gs = getter src in
      fun regs ->
        let a = Int64.to_int (vi (gb regs)) + offset in
        Memory.store t.mem ty a (gs regs);
        a
  | Memo m -> compile_memo t m
  | Call _ -> assert false

(* [hk] is the pre-compiled hook site for this static instruction, or None
   on hook-free contexts. Calls fire their hook before the callee runs
   (issue order), like the interpreter loop. *)
let compile_instr t (hk : (int -> unit) option) (instr : Ir.instr) :
    Ir.value array -> unit =
  match instr with
  | Ir.Call { callee; dsts; args } ->
      let gargs = Array.map getter args in
      let nargs = Array.length gargs in
      (* per-site argument buffer: safe under recursion because [exec_ker]
         copies the arguments into the callee frame before executing *)
      let args_buf = Array.make nargs vzero in
      let kref = ref None in
      let do_call regs =
        let k =
          match !kref with
          | Some k -> k
          | None ->
              let k = find_ker t callee in
              kref := Some k;
              k
        in
        for i = 0 to nargs - 1 do
          args_buf.(i) <- (Array.unsafe_get gargs i) regs
        done;
        exec_ker t k args_buf;
        let ret = k.k_ret in
        Array.iteri (fun i dst -> regs.(dst) <- ret.(i)) dsts
      in
      (match hk with
      | None ->
          fun regs ->
            bump t;
            do_call regs
      | Some h ->
          fun regs ->
            bump t;
            h (-1);
            do_call regs)
  | _ -> (
      let ex = compile_ex t instr in
      match hk with
      | None ->
          fun regs ->
            bump t;
            ignore (ex regs : int)
      | Some h ->
          fun regs ->
            bump t;
            let a = ex regs in
            h a)

let compile_block t (k : ker) fname bidx (cb : cblock) : Ir.value array -> int =
  let steps =
    Array.mapi
      (fun iidx instr ->
        let hk =
          match t.hooks with
          | None -> None
          | Some h -> Some (exec_site_of h fname bidx iidx instr)
        in
        compile_instr t hk instr)
      cb.instrs
  in
  let next : Ir.value array -> int =
    match cb.rterm with
    | Rjmp b -> fun _ -> b
    | Rbr { cond; if_true; if_false } ->
        let g = getter cond in
        fun regs -> if vi (g regs) <> 0L then if_true else if_false
    | Rbr_memo { on_hit; on_miss } ->
        fun _ -> if t.memo_flag then on_hit else on_miss
    | Rret ops ->
        let gs = Array.map getter ops in
        let nret = Array.length gs in
        let ret = k.k_ret in
        fun regs ->
          for i = 0 to nret - 1 do
            ret.(i) <- (Array.unsafe_get gs i) regs
          done;
          -1
  in
  (* Chain the block into one closure: each step tail-calls the rest, so
     executing a block is a single indirect call with no loop counter and
     no per-instruction array load. *)
  let tail : Ir.value array -> int =
    match t.hooks with
    | None -> next
    | Some h ->
        let ts = term_site_of h fname bidx cb.term in
        fun regs ->
          ts ();
          next regs
  in
  Array.fold_right
    (fun step rest ->
      fun regs ->
        step regs;
        rest regs)
    steps tail

let compile_all t =
  let kers = Hashtbl.create 16 in
  Hashtbl.iter
    (fun name (cf : cfunc) ->
      Hashtbl.replace kers name
        {
          k_fn = cf.fn;
          k_body = Array.make (Array.length cf.cblocks) (fun _ -> -1);
          k_ret = Array.make (Array.length cf.fn.ret_tys) vzero;
          k_pool = [||];
          k_pool_len = 0;
          k_depth = 0;
        })
    t.funcs;
  t.kers <- Some kers;
  (* bodies are filled once every ker exists, so call sites resolve callees
     regardless of program order *)
  Hashtbl.iter
    (fun name (cf : cfunc) ->
      let k = Hashtbl.find kers name in
      Array.iteri
        (fun bidx cb -> k.k_body.(bidx) <- compile_block t k cf.fn.fname bidx cb)
        cf.cblocks)
    t.funcs

(* ------------------------------------------------------------------ *)
(* The block drivers are specialized on hook presence: the hooked variant
   pays the per-instruction hook calls, the plain variant's loop contains no
   option match and no hook dispatch at all. Dispatch happens once per
   function call in [exec_func]. *)
let rec exec_func t (cf : cfunc) (args : Ir.value array) : Ir.value array =
  let fn = cf.fn in
  let regs = Array.make fn.nregs (Ir.VI 0L) in
  Array.iteri (fun i (r, _) -> regs.(r) <- args.(i)) fn.params;
  match t.hooks with
  | None -> run_plain t cf regs 0
  | Some h ->
      h.on_enter fn.fname;
      let results = run_hooked t h cf regs 0 in
      h.on_leave fn.fname;
      results

and run_plain t cf regs bidx : Ir.value array =
  let block = cf.cblocks.(bidx) in
  let instrs = block.instrs in
  let n = Array.length instrs in
  for iidx = 0 to n - 1 do
    let instr = instrs.(iidx) in
    t.nsteps <- t.nsteps + 1;
    if t.nsteps > t.max_steps then failwith "Interp: step limit exceeded";
    match instr with
    | Call { callee; dsts; args } ->
        let g = callee_func t callee in
        let results = exec_func t g (Array.map (operand regs) args) in
        Array.iteri (fun i dst -> regs.(dst) <- results.(i)) dsts
    | _ -> ignore (exec_simple t regs instr)
  done;
  match block.rterm with
  | Rjmp b -> run_plain t cf regs b
  | Rbr { cond; if_true; if_false } ->
      run_plain t cf regs (if vi (operand regs cond) <> 0L then if_true else if_false)
  | Rbr_memo { on_hit; on_miss } ->
      run_plain t cf regs (if t.memo_flag then on_hit else on_miss)
  | Rret ops -> Array.map (operand regs) ops

and run_hooked t h cf regs bidx : Ir.value array =
  let fname = cf.fn.fname in
  let block = cf.cblocks.(bidx) in
  let instrs = block.instrs in
  let n = Array.length instrs in
  for iidx = 0 to n - 1 do
    let instr = instrs.(iidx) in
    t.nsteps <- t.nsteps + 1;
    if t.nsteps > t.max_steps then failwith "Interp: step limit exceeded";
    match instr with
    | Call { callee; dsts; args } ->
        (* The call event fires before the callee runs so a timing consumer
           sees events in issue order. *)
        h.on_exec fname bidx iidx instr (-1);
        let g = callee_func t callee in
        let results = exec_func t g (Array.map (operand regs) args) in
        Array.iteri (fun i dst -> regs.(dst) <- results.(i)) dsts
    | _ ->
        let addr = exec_simple t regs instr in
        h.on_exec fname bidx iidx instr addr
  done;
  h.on_term fname bidx block.term;
  match block.rterm with
  | Rjmp b -> run_hooked t h cf regs b
  | Rbr { cond; if_true; if_false } ->
      run_hooked t h cf regs
        (if vi (operand regs cond) <> 0L then if_true else if_false)
  | Rbr_memo { on_hit; on_miss } ->
      run_hooked t h cf regs (if t.memo_flag then on_hit else on_miss)
  | Rret ops -> Array.map (operand regs) ops

let run t fname args =
  match t.kers with
  | None -> (
      match Hashtbl.find_opt t.funcs fname with
      | None -> failwith ("Interp: unknown function " ^ fname)
      | Some cf ->
          if Array.length args <> Array.length cf.fn.params then
            failwith ("Interp: bad argument count for " ^ fname);
          exec_func t cf args)
  | Some kers -> (
      match Hashtbl.find_opt kers fname with
      | None -> failwith ("Interp: unknown function " ^ fname)
      | Some k ->
          if Array.length args <> Array.length k.k_fn.params then
            failwith ("Interp: bad argument count for " ^ fname);
          (* an aborted previous run (step limit, crash injection) may have
             left arena depths dirty *)
          Hashtbl.iter (fun _ k -> k.k_depth <- 0) kers;
          exec_ker t k args;
          Array.copy k.k_ret)

let create ?memo ?hook ?hooks ?(max_steps = 2_000_000_000) ?(backend = `Compiled)
    ~program ~mem () =
  let hooks =
    match (hook, hooks) with
    | None, None -> None
    | Some f, None -> Some (hooks_of_event_fn f)
    | None, Some h -> Some h
    | Some f, Some h -> Some (combine_hooks (hooks_of_event_fn f) h)
  in
  let funcs = Hashtbl.create 16 in
  Array.iter
    (fun (f : Ir.func) -> Hashtbl.replace funcs f.fname (compile_func f))
    (program : Ir.program).funcs;
  let t =
    {
      program;
      mem;
      memo;
      hooks;
      max_steps;
      funcs;
      memo_flag = false;
      nsteps = 0;
      kers = None;
    }
  in
  (match (backend : backend) with `Compiled -> compile_all t | `Interp -> ());
  t
