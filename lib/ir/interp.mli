(** IR interpreter.

    Executes a program functionally and, through optional hooks, drives the
    tracer (for DDDG construction) and the CPU timing model. The memoization
    unit is attached as a record of callbacks so this library stays
    independent of the hardware model.

    Performance notes (the hot path of every simulation):
    - block labels are resolved to integer indices once at {!create}, so
      taking a branch is an array access, not a [Hashtbl.find];
    - the observer interface is the flat-argument {!hooks} record — no event
      record is allocated per dynamic instruction (the variant-based
      {!event}/[?hook] form remains as a convenience adapter and does pay
      one allocation per event);
    - the interpreter loop is specialized on hook presence at function-call
      granularity, so a hook-free run has no per-instruction hook dispatch. *)

type memo_hooks = {
  send : lut:int -> ty:Ir.ty -> trunc:int -> Ir.value -> unit;
      (** A [reg_crc]/[ld_crc] streamed one input value; the unit truncates
          [trunc] LSBs and feeds the bytes to the hash register of [lut]. *)
  lookup : lut:int -> int64 option;
      (** Finalize the hash and probe; [Some payload] on hit. *)
  update : lut:int -> int64 -> unit;
      (** Insert a payload under the key of the last lookup on [lut]. *)
  invalidate : lut:int -> unit;
}

type event =
  | Enter of { fname : string }
  | Leave of { fname : string }
  | Exec of { fname : string; bidx : int; iidx : int; instr : Ir.instr; addr : int }
      (** One instruction executed. [addr] is the resolved effective address
          for memory instructions, [-1] otherwise. *)
  | Term of { fname : string; bidx : int; term : Ir.terminator }
      (** A terminator executed (control-flow edge taken). *)

type hooks = {
  on_enter : string -> unit;  (** function entered *)
  on_leave : string -> unit;  (** function left *)
  on_exec : string -> int -> int -> Ir.instr -> int -> unit;
      (** [on_exec fname bidx iidx instr addr]: one instruction executed;
          the arguments mirror the [Exec] event fields. For a [Call] the
          hook fires before the callee runs (issue order), with [addr = -1]. *)
  on_term : string -> int -> Ir.terminator -> unit;
      (** [on_term fname bidx term]: a terminator executed. *)
}
(** Allocation-free observer calling convention: each callback receives flat
    arguments instead of a freshly allocated {!event}. *)

val hooks_of_event_fn : (event -> unit) -> hooks
(** Adapt an event-consuming closure to the flat interface (allocates one
    event per callback — the legacy cost). *)

val combine_hooks : hooks -> hooks -> hooks
(** Fan one execution out to two observers, first-before-second. *)

type t

val create :
  ?memo:memo_hooks ->
  ?hook:(event -> unit) ->
  ?hooks:hooks ->
  ?max_steps:int ->
  program:Ir.program ->
  mem:Memory.t ->
  unit ->
  t
(** [create ~program ~mem ()] prepares an execution context, pre-resolving
    every terminator label to a block index. [max_steps] (default
    [2_000_000_000]) bounds total executed instructions as a runaway guard.
    [hooks] is the allocation-free observer; [hook] is the event-based
    convenience form (adapted internally). If both are given, [hook] fires
    first.
    @raise Failure if a terminator references an unknown label. *)

val run : t -> string -> Ir.value array -> Ir.value array
(** [run t fname args] calls function [fname] with [args] and returns its
    results.
    @raise Failure on a dynamic error (unknown function, step limit,
    type-mismatched operation, division by zero). *)

val steps : t -> int
(** Instructions executed so far across all [run] calls. *)
