(** IR interpreter.

    Executes a program functionally and, through optional hooks, drives the
    tracer (for DDDG construction) and the CPU timing model. The memoization
    unit is attached as a record of callbacks so this library stays
    independent of the hardware model.

    Performance notes (the hot path of every simulation):
    - block labels are resolved to integer indices once at {!create}, so
      taking a branch is an array access, not a [Hashtbl.find];
    - the observer interface is the flat-argument {!hooks} record — no event
      record is allocated per dynamic instruction (the variant-based
      {!event}/[?hook] form remains as a convenience adapter and does pay
      one allocation per event);
    - the interpreter loop is specialized on hook presence at function-call
      granularity, so a hook-free run has no per-instruction hook dispatch. *)

type memo_hooks = {
  send : lut:int -> ty:Ir.ty -> trunc:int -> Ir.value -> unit;
      (** A [reg_crc]/[ld_crc] streamed one input value; the unit truncates
          [trunc] LSBs and feeds the bytes to the hash register of [lut]. *)
  lookup : lut:int -> int64 option;
      (** Finalize the hash and probe; [Some payload] on hit. *)
  update : lut:int -> int64 -> unit;
      (** Insert a payload under the key of the last lookup on [lut]. *)
  invalidate : lut:int -> unit;
}

type event =
  | Enter of { fname : string }
  | Leave of { fname : string }
  | Exec of { fname : string; bidx : int; iidx : int; instr : Ir.instr; addr : int }
      (** One instruction executed. [addr] is the resolved effective address
          for memory instructions, [-1] otherwise. *)
  | Term of { fname : string; bidx : int; term : Ir.terminator }
      (** A terminator executed (control-flow edge taken). *)

type hooks = {
  on_enter : string -> unit;  (** function entered *)
  on_leave : string -> unit;  (** function left *)
  on_exec : string -> int -> int -> Ir.instr -> int -> unit;
      (** [on_exec fname bidx iidx instr addr]: one instruction executed;
          the arguments mirror the [Exec] event fields. For a [Call] the
          hook fires before the callee runs (issue order), with [addr = -1]. *)
  on_term : string -> int -> Ir.terminator -> unit;
      (** [on_term fname bidx term]: a terminator executed. *)
  exec_site : (string -> int -> int -> Ir.instr -> int -> unit) option;
      (** Optional site compiler. When present, the [`Compiled] backend
          calls [site fname bidx iidx instr] at most once per {e static}
          instruction (at {!create}) and invokes the returned closure with
          the effective address once per execution, {e instead of}
          [on_exec]. The closure must be observationally identical to the
          corresponding [on_exec] call; observers that cannot precompute
          anything leave this [None] and keep the flat callback. The
          [`Interp] backend ignores it. *)
  term_site : (string -> int -> Ir.terminator -> unit -> unit) option;
      (** Site compiler for terminators, replacing [on_term] per execution
          under the [`Compiled] backend. *)
}
(** Allocation-free observer calling convention: each callback receives flat
    arguments instead of a freshly allocated {!event}. *)

val no_hooks : hooks
(** The canonical no-op observer. {!combine_hooks} recognises it physically
    and short-circuits, so [combine_hooks no_hooks h] is [h] itself — no
    fan-out closures. *)

val hooks_of_event_fn : (event -> unit) -> hooks
(** Adapt an event-consuming closure to the flat interface (allocates one
    event per callback — the legacy cost). *)

val combine_hooks : hooks -> hooks -> hooks
(** Fan one execution out to two observers, first-before-second. When either
    side is {!no_hooks} the other is returned unchanged. Site compilers
    compose: if at least one side provides one, the combined record does
    too, wrapping the siteless side's flat callback. *)

type t

type backend = [ `Interp | `Compiled ]
(** Execution strategy. [`Interp] walks the IR per instruction; [`Compiled]
    pre-compiles every basic block into a chain of closures at {!create}
    (operands resolved to array slots, branch targets to compiled-block
    references, hook sites specialized per static instruction) and
    dispatches once per block. Both are pinned bit-identical: same results,
    same {!steps}, same hook/event sequence. *)

val create :
  ?memo:memo_hooks ->
  ?hook:(event -> unit) ->
  ?hooks:hooks ->
  ?max_steps:int ->
  ?backend:backend ->
  program:Ir.program ->
  mem:Memory.t ->
  unit ->
  t
(** [create ~program ~mem ()] prepares an execution context, pre-resolving
    every terminator label to a block index. [max_steps] (default
    [2_000_000_000]) bounds total executed instructions as a runaway guard.
    [hooks] is the allocation-free observer; [hook] is the event-based
    convenience form (adapted internally). If both are given, [hook] fires
    first. [backend] (default [`Compiled]) selects the execution strategy.
    @raise Failure if a terminator references an unknown label. *)

val run : t -> string -> Ir.value array -> Ir.value array
(** [run t fname args] calls function [fname] with [args] and returns its
    results.
    @raise Failure on a dynamic error (unknown function, step limit,
    type-mismatched operation, division by zero). *)

val steps : t -> int
(** Instructions executed so far across all [run] calls. *)
