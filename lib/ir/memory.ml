type t = { mutable data : Bytes.t; mutable brk : int; limit : int }

let create ?(size_bytes = 512 * 1024 * 1024) () =
  { data = Bytes.make 4096 '\000'; brk = 0; limit = size_bytes }

let ensure t upto =
  if upto > Bytes.length t.data then begin
    if upto > t.limit then
      invalid_arg
        (Printf.sprintf "Memory: out of memory (%d bytes requested, limit %d)" upto
           t.limit);
    (* Double for amortized growth, but never overshoot a large request:
       a single huge allocation (e.g. a software-LUT table) should cost one
       right-sized buffer, not the next power of two beyond it. *)
    let old = Bytes.length t.data in
    let n = min (max (old * 2) ((upto + 0xFFFF) land lnot 0xFFFF)) t.limit in
    (* [Bytes.create] skips the memset; the old prefix is blitted over and
       only the fresh tail needs explicit zeroing. *)
    let fresh = Bytes.create n in
    Bytes.blit t.data 0 fresh 0 old;
    Bytes.fill fresh old (n - old) '\000';
    t.data <- fresh
  end

let alloc t ~bytes ~align =
  if align <= 0 || align land (align - 1) <> 0 then invalid_arg "Memory.alloc: align";
  let base = (t.brk + align - 1) land lnot (align - 1) in
  t.brk <- base + bytes;
  ensure t t.brk;
  base

let load_i32 t addr =
  ensure t (addr + 4);
  Bytes.get_int32_le t.data addr

let store_i32 t addr v =
  ensure t (addr + 4);
  Bytes.set_int32_le t.data addr v

let load_i64 t addr =
  ensure t (addr + 8);
  Bytes.get_int64_le t.data addr

let store_i64 t addr v =
  ensure t (addr + 8);
  Bytes.set_int64_le t.data addr v

let load_f32 t addr = Int32.float_of_bits (load_i32 t addr)
let store_f32 t addr v = store_i32 t addr (Int32.bits_of_float v)
let load_f64 t addr = Int64.float_of_bits (load_i64 t addr)
let store_f64 t addr v = store_i64 t addr (Int64.bits_of_float v)

let load t (ty : Ir.ty) addr : Ir.value =
  match ty with
  | I32 -> VI (Int64.of_int32 (load_i32 t addr))
  | I64 -> VI (load_i64 t addr)
  | F32 -> VF (load_f32 t addr)
  | F64 -> VF (load_f64 t addr)

let store t (ty : Ir.ty) addr (v : Ir.value) =
  match (ty, v) with
  | I32, VI x -> store_i32 t addr (Int64.to_int32 x)
  | I64, VI x -> store_i64 t addr x
  | F32, VF x -> store_f32 t addr x
  | F64, VF x -> store_f64 t addr x
  | (I32 | I64), VF _ | (F32 | F64), VI _ ->
      invalid_arg "Memory.store: value kind does not match type"

let used_bytes t = t.brk
