(** Lookup-table storage (Section 3.3).

    Organised like a set-associative cache: a set occupies exactly one
    64-byte last-level-cache line and is configured as either 8 ways of
    4-byte tag + 4-byte data, or 4 ways of 4-byte tag + 8-byte data (half the
    tag slots unused). Tags combine a valid bit, the 3-bit LUT_ID, and the
    upper CRC bits; low CRC bits index the set. Replacement is LRU. LUT
    entries are never written back to memory — evictions either invalidate or
    spill to the next LUT level via [evict_hook]. *)

type t

type policy = Lru | Fifo | Random
(** Replacement policy. The paper uses LRU; the alternatives exist for the
    ablation study (Fifo replaces the oldest insertion; Random uses a
    deterministic xorshift stream). Only [Lru] maintains the recency clock:
    [Fifo] records insertion order only and [Random] never reads it. *)

val create :
  ?payload_bytes:int ->
  ?policy:policy ->
  ?faults:Axmemo_faults.Injector.t * Axmemo_faults.Fault_model.lut_sites ->
  size_bytes:int ->
  unit ->
  t
(** [create ~size_bytes ()] builds an empty LUT of [size_bytes] total storage
    (tags + data). [payload_bytes] is 4 or 8 (default 8, the 4-way
    configuration); [policy] defaults to [Lru].

    [?faults] attaches a fault injector and names which
    {!Axmemo_faults.Fault_model.site}s this level draws
    ({!Axmemo_faults.Fault_model.l1_sites} or [l2_sites]). Every probed set
    then exposes each way's tag, payload, valid bit, and LRU counter to one
    fault opportunity per access; the injector's
    {!Axmemo_faults.Protection.kind} decides whether corrupted entries are
    detected (parity — treated as a miss), corrected (SECDED single flips),
    or silently returned. Absent, behaviour is bit-identical to a LUT built
    without the fault subsystem.
    @raise Invalid_argument on a geometry that does not fill whole sets. *)

val sets : t -> int
val ways : t -> int
val payload_bytes : t -> int
val capacity_entries : t -> int

val lookup : t -> lut_id:int -> key:int64 -> int64 option
(** [lookup t ~lut_id ~key] probes the set selected by [key]'s low bits for
    tag {v {valid, lut_id, key-high} v}; LRU is refreshed on hit. *)

val insert :
  ?ways:int * int ->
  t -> lut_id:int -> key:int64 -> payload:int64 ->
  (lut_id:int -> key:int64 -> payload:int64 -> unit) option ->
  unit
(** [insert t ~lut_id ~key ~payload evict_hook] writes an entry, replacing
    LRU on a full set. If a valid victim is displaced and [evict_hook] is
    [Some f], [f] receives the victim (used to spill L1 LUT victims into the
    L2 LUT). Inserting an existing key refreshes its payload in place.

    [?ways:(lo, hi)] confines allocation to the inclusive way range
    [lo..hi] — the mechanism behind shared-LUT way partitioning. Like
    Intel CAT, only victim selection is restricted: lookups and in-place
    refreshes still match an entry in any way. Omitting it (or passing the
    full range) reproduces the unrestricted scan exactly.
    @raise Invalid_argument if the range falls outside [0..ways-1]. *)

val set_of_key : t -> int64 -> int
(** Set index selected by a key's low bits — exposed so bank arbitration
    can map concurrent probes onto banks the way the hardware decoder
    would, and so tests can construct same-set key conflicts. *)

val invalidate_lut : t -> lut_id:int -> unit
(** Drop all entries of one logical LUT (the [invalidate] instruction). *)

val invalidate_entry : t -> lut_id:int -> key:int64 -> bool
(** Drop one [(lut_id, key)] entry if present (a cluster directory
    invalidating a stale replica after a remote write); [true] if an entry
    was dropped. Reads the true stored bits and draws no fault
    opportunities. *)

val holds_lut : t -> lut_id:int -> bool
(** Whether any valid entry belongs to [lut_id] — lets an invalidate
    broadcast classify receivers as delivered (held entries) vs filtered
    (held nothing). O(capacity) scan; invalidations are rare. *)

val invalidate_all : t -> unit

val occupancy : t -> int
(** Number of valid entries (by the stored valid bits; a faulted valid
    line does not change the count until the cell is rewritten). O(1) —
    maintained incrementally so eviction observers can ask "was the level
    full?" on every spill without a scan. *)

val set_occupancies : t -> int array
(** Valid-entry count per set, indexed by set number — the telemetry layer
    histograms this to show conflict pressure across the key space. *)

val iter_entries :
  t ->
  (set:int -> way:int -> lut_id:int -> key:int64 -> payload:int64 ->
   lru:int -> unit) ->
  unit
(** Deterministic enumeration of every valid entry in set-major, way-minor
    order — the snapshot capture port. Reads the true stored bits (never the
    fault-shadowed view), draws no fault opportunities, and allocates
    nothing; [lru] is the raw recency stamp so a capture can order entries
    oldest-first before serialising. *)

val restore_entry : t -> lut_id:int -> key:int64 -> payload:int64 -> unit
(** Snapshot restore port. Writes one entry without drawing fault
    opportunities and without firing any evict hook (a restore is not a
    spill). Each call advances the recency clock, so replaying a capture
    oldest-first reproduces the captured LRU order exactly. A full set
    silently drops its least-recent way; an existing [(lut_id, key)] match
    is refreshed in place. Unused, the simulator's behaviour is
    bit-identical to a build without this port. *)

val entries : t -> (int * int64 * int64) list
(** [(lut_id, key, payload)] for every valid entry — a measurement aid used
    to check the paper's no-coherence argument (Section 3.4): across cores,
    equal tags must hold equal data. *)
