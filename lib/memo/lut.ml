module Injector = Axmemo_faults.Injector
module Fault_model = Axmemo_faults.Fault_model
module Protection = Axmemo_faults.Protection
module Bits = Axmemo_util.Bits
module Rng = Axmemo_util.Rng

(* One set always occupies one 64-byte line: 8 ways with 4-byte payloads or
   4 ways with 8-byte payloads (Section 3.3). *)
let set_bytes = 64

type policy = Lru | Fifo | Random

(* Shadow fault state. The true arrays in [t] keep what the simulator wrote;
   faults accumulate as XOR deltas against them, so what the "hardware" reads
   is [stored lxor err]. Rewriting an entry rewrites the cell and clears its
   delta. Keeping the deltas beside the truth is what lets modeled SECDED
   undo a flip exactly and lets the campaign count silent corruptions. *)
type fault_port = {
  inj : Injector.t;
  sites : Fault_model.lut_sites;
  key_err : int64 array;
  payload_err : int64 array;
  valid_err : bool array;
}

type t = {
  policy : policy;
  mutable rand_state : int64;
  nsets : int;
  nways : int;
  payload_bytes : int;
  valid : bool array;
  lut_ids : int array;
  keys : int64 array;  (* full CRC key; hardware stores only the upper bits *)
  payloads : int64 array;
  lru : int array;
  mutable clock : int;
  (* live count of set [valid] bits, so [occupancy] is O(1) — eviction
     observers (telemetry, the attribution profiler) read it per spill *)
  mutable occupied : int;
  faults : fault_port option;
}

let create ?(payload_bytes = 8) ?(policy = Lru) ?faults ~size_bytes () =
  let nways =
    match payload_bytes with
    | 4 -> 8
    | 8 -> 4
    | _ -> invalid_arg "Lut.create: payload_bytes must be 4 or 8"
  in
  if size_bytes <= 0 || size_bytes mod set_bytes <> 0 then
    invalid_arg "Lut.create: size must be a positive multiple of 64 bytes";
  let nsets = size_bytes / set_bytes in
  let n = nsets * nways in
  {
    policy;
    rand_state = Rng.derive_stream 0x9E3779B97F4A7C15L;
    nsets;
    nways;
    payload_bytes;
    valid = Array.make n false;
    lut_ids = Array.make n 0;
    keys = Array.make n 0L;
    payloads = Array.make n 0L;
    lru = Array.make n 0;
    clock = 0;
    occupied = 0;
    faults =
      Option.map
        (fun (inj, sites) ->
          {
            inj;
            sites;
            key_err = Array.make n 0L;
            payload_err = Array.make n 0L;
            valid_err = Array.make n false;
          })
        faults;
  }

let sets t = t.nsets
let ways t = t.nways
let payload_bytes t = t.payload_bytes
let capacity_entries t = t.nsets * t.nways

let set_of_key t key = Int64.to_int (Int64.rem (Int64.logand key 0x7FFFFFFFFFFFFFFFL) (Int64.of_int t.nsets))

let touch t idx =
  t.clock <- t.clock + 1;
  t.lru.(idx) <- t.clock

(* Only LRU tracks recency: FIFO keeps insertion order (refreshes on hit are
   skipped) and Random never reads the clock at all. *)
let touch_on_hit t idx = match t.policy with Lru -> touch t idx | Fifo | Random -> ()

let next_rand t =
  let x = t.rand_state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rand_state <- x;
  Int64.to_int (Int64.logand x 0x3FFFFFFFL)

(* ---- fault plumbing -------------------------------------------------- *)

(* Tag faults strike the stored 4-byte tag field, so flips stay in the low
   32 bits of the key delta; LRU counters are modeled as 16-bit fields. *)
let tag_width = 32
let lru_width = 16

let clear_err fp idx =
  fp.key_err.(idx) <- 0L;
  fp.payload_err.(idx) <- 0L;
  fp.valid_err.(idx) <- false

let eff_valid_fp fp t idx = t.valid.(idx) <> fp.valid_err.(idx)
let eff_key_fp fp t idx = Int64.logxor t.keys.(idx) fp.key_err.(idx)
let eff_payload_fp fp t idx = Int64.logxor t.payloads.(idx) fp.payload_err.(idx)

(* Draw one fault opportunity per site per way of the probed set — what one
   set read exposes to upsets. Ordering (tag, payload, valid, lru per way,
   ways ascending) is fixed so a seeded stream replays bit-identically. *)
let inject_set fp t set =
  let base = set * t.nways in
  for w = 0 to t.nways - 1 do
    let idx = base + w in
    let eff = eff_key_fp fp t idx in
    let eff' = Injector.corrupt fp.inj fp.sites.tag ~width:tag_width eff in
    if eff' <> eff then fp.key_err.(idx) <- Int64.logxor eff' t.keys.(idx);
    let eff = eff_payload_fp fp t idx in
    let eff' =
      Injector.corrupt fp.inj fp.sites.payload ~width:(8 * t.payload_bytes) eff
    in
    if eff' <> eff then fp.payload_err.(idx) <- Int64.logxor eff' t.payloads.(idx);
    let eff = if eff_valid_fp fp t idx then 1L else 0L in
    let eff' = Injector.corrupt fp.inj fp.sites.valid ~width:1 eff in
    if eff' <> eff then fp.valid_err.(idx) <- not fp.valid_err.(idx);
    let eff = Int64.of_int t.lru.(idx) in
    let eff' = Injector.corrupt fp.inj fp.sites.lru ~width:lru_width eff in
    if eff' <> eff then t.lru.(idx) <- Int64.to_int eff'
  done

let inject_probe t key =
  match t.faults with
  | None -> ()
  | Some fp -> inject_set fp t (set_of_key t key)

let error_bits fp idx =
  Bits.popcount64 fp.key_err.(idx)
  + Bits.popcount64 fp.payload_err.(idx)
  + if fp.valid_err.(idx) then 1 else 0

let invalidate_entry fp t idx =
  if t.valid.(idx) then t.occupied <- t.occupied - 1;
  t.valid.(idx) <- false;
  clear_err fp idx

(* A way matched the probe; decide what the protected read returns. Parity
   catches odd-weight errors and turns them into a miss; SECDED corrects a
   single flip (a corrected tag or valid bit un-matches the probe, so those
   corrections surface as misses), detects doubles, and silently miscorrects
   triples and worse. Anything corrupted that reaches the program is counted
   as an SDC hit. *)
let faulty_hit fp t idx =
  let n = error_bits fp idx in
  if fp.key_err.(idx) <> 0L then Injector.note_alias fp.inj;
  let corrupted_hit () =
    if n > 0 then Injector.note_sdc fp.inj;
    let payload = eff_payload_fp fp t idx in
    touch_on_hit t idx;
    Some payload
  in
  match Injector.protection fp.inj with
  | Protection.Unprotected -> corrupted_hit ()
  | Protection.Parity ->
      if n = 0 then corrupted_hit ()
      else if n land 1 = 1 then begin
        Injector.note_parity_detected fp.inj;
        invalidate_entry fp t idx;
        None
      end
      else corrupted_hit ()
  | Protection.Secded ->
      if n = 0 then corrupted_hit ()
      else if n = 1 then begin
        Injector.note_secded_corrected fp.inj;
        if fp.key_err.(idx) <> 0L || fp.valid_err.(idx) then begin
          (* restoring the true tag / valid bit un-matches the probe *)
          clear_err fp idx;
          None
        end
        else begin
          fp.payload_err.(idx) <- 0L;
          touch_on_hit t idx;
          Some t.payloads.(idx)
        end
      end
      else if n = 2 then begin
        Injector.note_secded_detected fp.inj;
        invalidate_entry fp t idx;
        None
      end
      else corrupted_hit ()

(* ---------------------------------------------------------------------- *)

let find t ~lut_id ~key =
  let set = set_of_key t key in
  let base = set * t.nways in
  match t.faults with
  | None ->
      let rec go w =
        if w >= t.nways then None
        else
          let idx = base + w in
          if t.valid.(idx) && t.lut_ids.(idx) = lut_id && t.keys.(idx) = key then Some idx
          else go (w + 1)
      in
      go 0
  | Some fp ->
      (* the hardware comparators see the (possibly corrupted) stored bits *)
      let rec go w =
        if w >= t.nways then None
        else
          let idx = base + w in
          if eff_valid_fp fp t idx && t.lut_ids.(idx) = lut_id && eff_key_fp fp t idx = key
          then Some idx
          else go (w + 1)
      in
      go 0

let lookup t ~lut_id ~key =
  inject_probe t key;
  match find t ~lut_id ~key with
  | Some idx -> (
      match t.faults with
      | None ->
          touch_on_hit t idx;
          Some t.payloads.(idx)
      | Some fp -> faulty_hit fp t idx)
  | None -> None

let insert ?ways t ~lut_id ~key ~payload evict_hook =
  inject_probe t key;
  (* Allocation may be confined to a way range (shared-LUT partitioning, CAT
     style): hits and in-place refreshes still match any way, but the victim
     for a new entry comes only from [lo..hi]. The full range reproduces the
     unrestricted scan exactly. *)
  let lo, hi =
    match ways with
    | None -> (0, t.nways - 1)
    | Some (lo, hi) ->
        if lo < 0 || hi >= t.nways || lo > hi then
          invalid_arg "Lut.insert: way range out of bounds";
        (lo, hi)
  in
  match find t ~lut_id ~key with
  | Some idx ->
      t.payloads.(idx) <- payload;
      (match t.faults with
      | Some fp -> fp.payload_err.(idx) <- 0L  (* the cell was rewritten *)
      | None -> ());
      touch_on_hit t idx
  | None ->
      let set = set_of_key t key in
      let base = set * t.nways in
      let is_valid idx =
        match t.faults with None -> t.valid.(idx) | Some fp -> eff_valid_fp fp t idx
      in
      let victim = ref (base + lo) in
      (try
         for w = lo to hi do
           if not (is_valid (base + w)) then begin
             victim := base + w;
             raise Exit
           end
         done;
         match t.policy with
         | Lru | Fifo ->
             for w = lo + 1 to hi do
               if t.lru.(base + w) < t.lru.(!victim) then victim := base + w
             done
         | Random -> victim := base + lo + (next_rand t mod (hi - lo + 1))
       with Exit -> ());
      let idx = !victim in
      if is_valid idx then begin
        match evict_hook with
        | Some f -> (
            match t.faults with
            | None -> f ~lut_id:t.lut_ids.(idx) ~key:t.keys.(idx) ~payload:t.payloads.(idx)
            | Some fp ->
                (* the spill reads the same bits the comparators saw *)
                f ~lut_id:t.lut_ids.(idx) ~key:(eff_key_fp fp t idx)
                  ~payload:(eff_payload_fp fp t idx))
        | None -> ()
      end;
      if not t.valid.(idx) then t.occupied <- t.occupied + 1;
      t.valid.(idx) <- true;
      t.lut_ids.(idx) <- lut_id;
      t.keys.(idx) <- key;
      t.payloads.(idx) <- payload;
      (match t.faults with Some fp -> clear_err fp idx | None -> ());
      (match t.policy with Lru | Fifo -> touch t idx | Random -> ())

let invalidate_lut t ~lut_id =
  for i = 0 to Array.length t.valid - 1 do
    if t.valid.(i) && t.lut_ids.(i) = lut_id then begin
      t.valid.(i) <- false;
      t.occupied <- t.occupied - 1;
      match t.faults with
      | Some fp -> fp.valid_err.(i) <- false  (* the valid bit was rewritten *)
      | None -> ()
    end
  done

(* Directory-driven drop of one entry (a remote write invalidating a stale
   replica): clears every way holding (lut_id, key) in the entry's set,
   reading the true stored bits like [invalidate_lut]. *)
let invalidate_entry t ~lut_id ~key =
  let set = set_of_key t key in
  let base = set * t.nways in
  let dropped = ref false in
  for w = 0 to t.nways - 1 do
    let idx = base + w in
    if t.valid.(idx) && t.lut_ids.(idx) = lut_id && t.keys.(idx) = key then begin
      t.valid.(idx) <- false;
      t.occupied <- t.occupied - 1;
      (match t.faults with
      | Some fp -> fp.valid_err.(idx) <- false
      | None -> ());
      dropped := true
    end
  done;
  !dropped

let holds_lut t ~lut_id =
  let n = Array.length t.valid in
  let rec go i =
    if i >= n then false
    else (t.valid.(i) && t.lut_ids.(i) = lut_id) || go (i + 1)
  in
  go 0

let invalidate_all t =
  Array.fill t.valid 0 (Array.length t.valid) false;
  t.occupied <- 0;
  match t.faults with
  | Some fp -> Array.fill fp.valid_err 0 (Array.length fp.valid_err) false
  | None -> ()

let entries t =
  let acc = ref [] in
  for i = 0 to Array.length t.valid - 1 do
    if t.valid.(i) then acc := (t.lut_ids.(i), t.keys.(i), t.payloads.(i)) :: !acc
  done;
  !acc

(* Deterministic enumeration for snapshots: set-major, way-minor, valid
   entries only. Reads the true stored bits (not the fault-shadowed view) —
   a snapshot records what the simulator wrote, and draws no fault
   opportunities. Allocation-free: plain nested loops over the flat arrays. *)
let iter_entries t f =
  for set = 0 to t.nsets - 1 do
    let base = set * t.nways in
    for w = 0 to t.nways - 1 do
      let idx = base + w in
      if t.valid.(idx) then
        f ~set ~way:w ~lut_id:t.lut_ids.(idx) ~key:t.keys.(idx)
          ~payload:t.payloads.(idx) ~lru:t.lru.(idx)
    done
  done

(* Snapshot restore port. Deliberately NOT [insert]: it must not draw fault
   opportunities ([inject_probe]), must not fire the evict hook (a restore is
   not a spill), and must rebuild recency deterministically — each call
   advances the clock, so replaying entries oldest-first reproduces the
   captured LRU order. A full set silently evicts its min-recency way
   (regardless of policy; the scan never perturbs the Random stream). *)
let restore_entry t ~lut_id ~key ~payload =
  let set = set_of_key t key in
  let base = set * t.nways in
  let idx =
    match find t ~lut_id ~key with
    | Some idx -> idx
    | None ->
        let victim = ref (-1) in
        (try
           for w = 0 to t.nways - 1 do
             if not (t.valid.(base + w)) then begin
               victim := base + w;
               raise Exit
             end
           done;
           victim := base;
           for w = 1 to t.nways - 1 do
             if t.lru.(base + w) < t.lru.(!victim) then victim := base + w
           done
         with Exit -> ());
        !victim
  in
  if not t.valid.(idx) then t.occupied <- t.occupied + 1;
  t.valid.(idx) <- true;
  t.lut_ids.(idx) <- lut_id;
  t.keys.(idx) <- key;
  t.payloads.(idx) <- payload;
  (match t.faults with Some fp -> clear_err fp idx | None -> ());
  touch t idx

let occupancy t = t.occupied

let set_occupancies t =
  Array.init t.nsets (fun set ->
      let base = set * t.nways in
      let n = ref 0 in
      for w = 0 to t.nways - 1 do
        if t.valid.(base + w) then incr n
      done;
      !n)
