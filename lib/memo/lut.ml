(* One set always occupies one 64-byte line: 8 ways with 4-byte payloads or
   4 ways with 8-byte payloads (Section 3.3). *)
let set_bytes = 64

type policy = Lru | Fifo | Random

type t = {
  policy : policy;
  mutable rand_state : int64;
  nsets : int;
  nways : int;
  payload_bytes : int;
  valid : bool array;
  lut_ids : int array;
  keys : int64 array;  (* full CRC key; hardware stores only the upper bits *)
  payloads : int64 array;
  lru : int array;
  mutable clock : int;
}

let create ?(payload_bytes = 8) ?(policy = Lru) ~size_bytes () =
  let nways =
    match payload_bytes with
    | 4 -> 8
    | 8 -> 4
    | _ -> invalid_arg "Lut.create: payload_bytes must be 4 or 8"
  in
  if size_bytes <= 0 || size_bytes mod set_bytes <> 0 then
    invalid_arg "Lut.create: size must be a positive multiple of 64 bytes";
  let nsets = size_bytes / set_bytes in
  let n = nsets * nways in
  {
    policy;
    rand_state = 0x9E3779B97F4A7C15L;
    nsets;
    nways;
    payload_bytes;
    valid = Array.make n false;
    lut_ids = Array.make n 0;
    keys = Array.make n 0L;
    payloads = Array.make n 0L;
    lru = Array.make n 0;
    clock = 0;
  }

let sets t = t.nsets
let ways t = t.nways
let payload_bytes t = t.payload_bytes
let capacity_entries t = t.nsets * t.nways

let set_of_key t key = Int64.to_int (Int64.rem (Int64.logand key 0x7FFFFFFFFFFFFFFFL) (Int64.of_int t.nsets))

let touch t idx =
  t.clock <- t.clock + 1;
  t.lru.(idx) <- t.clock

(* FIFO keeps insertion order only: refreshes on hit are skipped. *)
let touch_on_hit t idx = match t.policy with Lru | Random -> touch t idx | Fifo -> ()

let next_rand t =
  let x = t.rand_state in
  let x = Int64.logxor x (Int64.shift_left x 13) in
  let x = Int64.logxor x (Int64.shift_right_logical x 7) in
  let x = Int64.logxor x (Int64.shift_left x 17) in
  t.rand_state <- x;
  Int64.to_int (Int64.logand x 0x3FFFFFFFL)

let find t ~lut_id ~key =
  let set = set_of_key t key in
  let base = set * t.nways in
  let rec go w =
    if w >= t.nways then None
    else
      let idx = base + w in
      if t.valid.(idx) && t.lut_ids.(idx) = lut_id && t.keys.(idx) = key then Some idx
      else go (w + 1)
  in
  go 0

let lookup t ~lut_id ~key =
  match find t ~lut_id ~key with
  | Some idx ->
      touch_on_hit t idx;
      Some t.payloads.(idx)
  | None -> None

let insert t ~lut_id ~key ~payload evict_hook =
  match find t ~lut_id ~key with
  | Some idx ->
      t.payloads.(idx) <- payload;
      touch t idx
  | None ->
      let set = set_of_key t key in
      let base = set * t.nways in
      let victim = ref base in
      (try
         for w = 0 to t.nways - 1 do
           if not t.valid.(base + w) then begin
             victim := base + w;
             raise Exit
           end
         done;
         match t.policy with
         | Lru | Fifo ->
             for w = 1 to t.nways - 1 do
               if t.lru.(base + w) < t.lru.(!victim) then victim := base + w
             done
         | Random -> victim := base + (next_rand t mod t.nways)
       with Exit -> ());
      let idx = !victim in
      if t.valid.(idx) then begin
        match evict_hook with
        | Some f -> f ~lut_id:t.lut_ids.(idx) ~key:t.keys.(idx) ~payload:t.payloads.(idx)
        | None -> ()
      end;
      t.valid.(idx) <- true;
      t.lut_ids.(idx) <- lut_id;
      t.keys.(idx) <- key;
      t.payloads.(idx) <- payload;
      touch t idx

let invalidate_lut t ~lut_id =
  for i = 0 to Array.length t.valid - 1 do
    if t.valid.(i) && t.lut_ids.(i) = lut_id then t.valid.(i) <- false
  done

let invalidate_all t = Array.fill t.valid 0 (Array.length t.valid) false

let entries t =
  let acc = ref [] in
  for i = 0 to Array.length t.valid - 1 do
    if t.valid.(i) then acc := (t.lut_ids.(i), t.keys.(i), t.payloads.(i)) :: !acc
  done;
  !acc

let occupancy t =
  Array.fold_left (fun acc v -> if v then acc + 1 else acc) 0 t.valid

let set_occupancies t =
  Array.init t.nsets (fun set ->
      let base = set * t.nways in
      let n = ref 0 in
      for w = 0 to t.nways - 1 do
        if t.valid.(base + w) then incr n
      done;
      !n)
