(** The per-core memoization unit (Section 3).

    Contains the hash value registers (one in-flight CRC per logical LUT;
    single hardware thread — the paper evaluates one core), the L1 LUT, the
    optional inclusive L2 LUT carved from last-level-cache ways, and the
    quality-monitoring unit of Section 6.

    The unit plugs into the interpreter through {!hooks} and reports the
    latency class of the most recent lookup so the CPU timing model can
    charge Table 4 latencies. *)

type rounding = Truncate | Nearest
(** How the approximation maps an input into its cell before hashing:
    [Truncate] clears the LSBs (the paper's evaluated mechanism); [Nearest]
    rounds to the nearest cell — the "more sophisticated approach" the paper
    notes is possible "since the approximation does not affect [the] hashing
    unit" (Section 3.1). *)

type adaptive_config = {
  profile_period : int;
      (** lookups between profiling windows (the paper: "a certain
          percentage of the execution time") *)
  profile_length : int;  (** window length, in lookups *)
  target_error : float;  (** per-sample relative error the window tolerates *)
  bad_fraction : float;  (** fraction of bad samples that triggers back-off *)
  max_extra_bits : int;  (** upper bound on the added truncation *)
}

val default_adaptive : adaptive_config
(** Profile 100 of every 1000 lookups, 1% error target, 5% bad fraction,
    up to 20 extra bits. *)

type config = {
  l1_bytes : int;  (** dedicated SRAM, ≤ 16 KB *)
  l2_bytes : int option;  (** carved from the LLC; [None] = single level *)
  payload_bytes : int;  (** 4 or 8; fixes set geometry (8- or 4-way) *)
  crc : Axmemo_crc.Poly.t;  (** tag hash; CRC-32 by default *)
  monitor : bool;  (** enable the quality-monitoring unit *)
  collision_tracking : bool;
      (** maintain shadow 64-bit input fingerprints to measure hash-collision
          frequency (a measurement aid, not hardware state) *)
  policy : Lut.policy;  (** LUT replacement policy (LRU in the paper) *)
  rounding : rounding;  (** input-cell mapping before hashing *)
  adaptive : adaptive_config option;
      (** Section 3.1's "dynamic approach": instead of compile-time-profiled
          truncation levels, the unit periodically forces a profiling window
          in which every lookup misses, compares recomputed results against
          LUT contents, and raises or lowers a per-LUT {e extra} truncation
          applied on top of the instructions' static level. *)
  faults : Axmemo_faults.Fault_model.spec option;
      (** Attach a fault injector: SEUs strike the named sites at the spec's
          rate, and the spec's protection kind guards the LUT entries. [None]
          (the default) leaves every run bit-identical to a unit built
          without the fault subsystem. *)
}

val default_config : config
(** 8 KB L1, no L2, 8-byte payloads, CRC-32, monitor on, collision tracking
    on, no adaptive truncation, no fault injection. *)

type lut_decl = { lut_id : int; payload : Axmemo_ir.Payload.kind }
(** Static declaration of one logical LUT: its id and how its 8-byte data
    field is interpreted (needed by the quality monitor to compute relative
    errors). *)

type level = Hit_l1 | Hit_l2 | Hit_l3 | Miss

type stats = {
  sends : int;
  bytes_hashed : int;
  lookups : int;
  l1_hits : int;
  l2_hits : int;
  l3_hits : int;  (** hits served by an attached DRAM tier ({!attach_l3}) *)
  misses : int;  (** includes monitor-forced misses *)
  forced_misses : int;
  updates : int;
  invalidations : int;
  collisions : int;  (** lookups whose tag matched but whose full-input fingerprint differed *)
  monitor_comparisons : int;
}

type shared_l2 = {
  sl_lookup : lut_id:int -> key:int64 -> int64 option;
  sl_insert : lut_id:int -> key:int64 -> payload:int64 -> unit;
  sl_invalidate : lut_id:int -> unit;
}
(** Externally owned next-level LUT, used when several cores share one
    inclusive L2 LUT (the multi-core co-run model). The unit drives it
    exactly like a private L2 — [sl_lookup] on an L1 miss (an inclusive hit
    fills the L1), [sl_insert] on update, [sl_invalidate] on the
    [invalidate] instruction and on adaptive-truncation changes — while the
    caller owns storage, partitioning and arbitration. *)

type l3_port = {
  t3_lookup : lut_id:int -> key:int64 -> int64 option;
  t3_cycles : unit -> int;
  t3_spill : lut_id:int -> key:int64 -> payload:int64 -> unit;
  t3_invalidate : lut_id:int -> unit;
}
(** Externally owned DRAM LUT tier ([Axmemo_tier.Dram_lut], typically
    cluster-shared). Probed after the last SRAM level misses; a hit refills
    the inclusive SRAM hierarchy. [t3_cycles] reads the DRAM cost of the
    probe just issued (row-buffer dependent), [t3_spill] receives SRAM
    victims, [t3_invalidate] drops a logical LUT. Another neutral closure
    record, so this library does not depend on the tier layer. *)

type profile_hooks = {
  pr_lookup :
    lut:int -> key:int64 -> fp:int64 option -> level:level -> forced:bool -> unit;
  pr_insert : lev:[ `L1 | `L2 ] -> lut:int -> key:int64 -> fp:int64 option -> unit;
  pr_evict : lev:[ `L1 | `L2 ] -> lut:int -> key:int64 -> full:bool -> unit;
  pr_invalidate : lut:int -> unit;
  pr_error : lut:int -> err:float -> unit;
  pr_collision : lut:int -> unit;
}
(** Event port for the attribution profiler ([Axmemo_obs.Profile]). Like
    {!shared_l2}, a neutral closure record so this library stays independent
    of the observability layer. The unit reports, per logical LUT:

    - [pr_lookup]: the final outcome of every lookup (after monitor and
      adaptive overrides), with the probe key and — when collision tracking
      is on — the full-input fingerprint. Forced misses (quality monitor
      sampling, adaptive profiling windows, a tripped monitor) come with
      [forced:true]; a tripped unit reports [key:0L] since no hash is
      computed.
    - [pr_insert] / [pr_evict]: residency changes per LUT level. Inclusive
      L1 fills on an L2 hit pass [fp:None] (the entry's fingerprint is
      unchanged); [pr_evict]'s [full] says whether the whole level was at
      capacity when the victim was displaced, distinguishing capacity from
      set-conflict evictions. The external shared level reports its own
      evictions through the cluster, not here.
    - [pr_invalidate]: the LUT was dropped at every level this core can
      see (the [invalidate] instruction, an adaptive-truncation change, or
      a cross-core broadcast received by {!invalidate_external}).
    - [pr_error]: one shadow-exact comparison — the worst relative error
      between a LUT payload and the freshly recomputed value (monitor
      sampling and adaptive windows).
    - [pr_collision]: a tag hit whose stored fingerprint differed.

    All events are purely observational. *)

type t

val create :
  ?metrics:Axmemo_telemetry.Registry.t ->
  ?shared_l2:shared_l2 ->
  ?profile:profile_hooks ->
  config ->
  lut_decl list ->
  t
(** [create config decls] builds a unit serving the declared logical LUTs.
    With [?metrics], the unit registers its instruments (all names under
    [memo.*]) and records live events — per-send truncation levels, LUT
    evictions/spills, adaptive and monitor window outcomes — as it runs.
    Telemetry is purely observational: results are bit-identical with or
    without it. With [?shared_l2], L1 misses fall through to the given
    external level instead of a private L2. With [?profile], the unit
    feeds the attribution profiler's event port ({!profile_hooks}); absent,
    the hot path pays one pattern match per site and allocates nothing.
    @raise Invalid_argument on duplicate or out-of-range (0..7) LUT ids, or
    if both [config.l2_bytes] and [?shared_l2] are set. *)

val hooks : ?tid:int -> t -> Axmemo_ir.Interp.memo_hooks
(** Adapter for {!Axmemo_ir.Interp.create}, bound to one hardware thread
    (default 0). Under SMT, each thread's instruction stream carries its own
    TID: hash value registers and latched keys are addressed by
    {v {LUT_ID, TID} v} (Section 3.2) while the LUT storage itself is shared
    by the core's threads. *)

val send : ?tid:int -> t -> lut:int -> ty:Axmemo_ir.Ir.ty -> trunc:int -> Axmemo_ir.Ir.value -> unit
(** TID-explicit variants of the hook operations, for SMT models and tests. *)

val lookup : ?tid:int -> t -> lut:int -> int64 option
val update : ?tid:int -> t -> lut:int -> int64 -> unit
val invalidate : t -> lut:int -> unit

val invalidate_external : t -> lut:int -> unit
(** Receiver side of the cross-core invalidate broadcast: drop this core's
    private L1 entries for [lut] because {e another} core retired an
    [invalidate]. Does not touch hash registers, the shared level, or this
    core's invalidation count — those belong to the issuing core. *)

val invalidate_remote : t -> lut:int -> unit
(** Receiver side of a cross-{e node} point-to-point invalidation: the same
    private-L1 drop as {!invalidate_external}, but without the profile
    event — the cluster layer attributes the drop to the remote reason on
    its own collectors. *)

val l1_holds : t -> lut:int -> bool
(** Whether this core's private L1 holds any entry of [lut] — lets the
    invalidate broadcast count delivered vs filtered receivers. *)

val l1_invalidate_entry : t -> lut:int -> key:int64 -> bool
(** Drop one [(lut, key)] entry from the private L1 if present (a cluster
    directory invalidating a stale replica); [true] if dropped. *)

val attach_l3 : t -> l3_port -> unit
(** Attach the DRAM tier. Extends the last {e private} SRAM level's evict
    hook with [t3_spill] (a unit backed by a cluster-shared L2 spills at the
    cluster layer instead), and registers the [memo.l3.hits] counter when a
    registry is attached — so an L3-less unit's metrics snapshot and
    behaviour stay byte-identical to a build without this tier.
    @raise Invalid_argument if a tier is already attached. *)

val last_lookup_level : t -> level
(** Latency class of the most recent lookup ([Miss] before any lookup). *)

val last_l3_cycles : t -> int
(** DRAM cycles charged by the most recent lookup's L3 probe — 0 when no
    probe was issued (L1/L2 hit, no tier attached, or tripped monitor). The
    pipeline adds this to its lookup latency. *)

val disabled : t -> bool
(** True once the quality monitor has shut memoization off. *)

val trip_lookup : t -> int option
(** The lookup count at which the monitor first tripped ([None] if it never
    did) — the campaign's latency-to-trip measure. *)

val injector : t -> Axmemo_faults.Injector.t option
(** The attached fault injector, when [config.faults] was set. The runner
    uses it to install the cycle clock and tracer observer, and to read
    {!Axmemo_faults.Injector.stats} at the end of the run. *)

val stats : t -> stats

val hit_rate : t -> float
(** Total (L1 + L2 + L3) hits over lookups; 0 when no lookups were made. *)

val l1_ways : t -> int
(** Associativity of the L1 LUT (for [invalidate] timing). *)

val l1_lut : t -> Lut.t
(** The private L1 LUT — the snapshot layer's capture/restore handle. *)

val l2_lut : t -> Lut.t option
(** The private L2 LUT, when configured. *)

val extra_truncation : t -> lut_id:int -> int
(** Current adaptive extra-truncation level for one LUT (0 when the unit is
    not adaptive or has not raised it yet). *)

val lut_entries : t -> (int * int64 * int64) list
(** Valid [(lut_id, key, payload)] entries across both LUT levels (L1 first);
    measurement aid for the multi-core no-coherence check. *)

val flush_metrics : t -> unit
(** Mirror the cumulative {!stats} into the attached registry (counters
    [memo.sends], [memo.lookups], [memo.l1.hits], ...), histogram the
    current per-set LUT occupancies, and set the [memo.hit_rate] and
    [memo.monitor.tripped] gauges. Call once, when the run ends. No-op
    without an attached registry. *)

val reset : t -> unit
(** Invalidate all storage, clear hash registers, stats and monitor state. *)
