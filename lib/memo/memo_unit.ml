module Bits = Axmemo_util.Bits
module Crc = Axmemo_crc
module Payload = Axmemo_ir.Payload
module Interp = Axmemo_ir.Interp
module Registry = Axmemo_telemetry.Registry
module Fault_model = Axmemo_faults.Fault_model
module Injector = Axmemo_faults.Injector

type adaptive_config = {
  profile_period : int;
  profile_length : int;
  target_error : float;
  bad_fraction : float;
  max_extra_bits : int;
}

let default_adaptive =
  {
    profile_period = 1500;
    profile_length = 100;
    target_error = 0.01;
    bad_fraction = 0.05;
    max_extra_bits = 20;
  }

type rounding = Truncate | Nearest

type config = {
  l1_bytes : int;
  l2_bytes : int option;
  payload_bytes : int;
  crc : Crc.Poly.t;
  monitor : bool;
  collision_tracking : bool;
  policy : Lut.policy;
  rounding : rounding;
  adaptive : adaptive_config option;
  faults : Fault_model.spec option;
}

let default_config =
  {
    l1_bytes = 8 * 1024;
    l2_bytes = None;
    payload_bytes = 8;
    crc = Crc.Poly.crc32;
    monitor = true;
    collision_tracking = true;
    policy = Lut.Lru;
    rounding = Truncate;
    adaptive = None;
    faults = None;
  }

type lut_decl = { lut_id : int; payload : Payload.kind }

(* External next-level LUT (the multi-core shared L2). The unit treats it
   exactly like its private L2 — probe on an L1 miss, fill on update, drop a
   logical LUT on invalidate — but the storage, partitioning and arbitration
   all live with the caller. *)
type shared_l2 = {
  sl_lookup : lut_id:int -> key:int64 -> int64 option;
  sl_insert : lut_id:int -> key:int64 -> payload:int64 -> unit;
  sl_invalidate : lut_id:int -> unit;
}

type level = Hit_l1 | Hit_l2 | Hit_l3 | Miss

(* External DRAM LUT tier (lib/tier's Dram_lut, owned by the cluster).
   Another neutral closure record, like [shared_l2]: probed after the last
   SRAM level misses, filled by the spill chain, never written by [update]
   directly. [t3_cycles] reads the cost of the probe just issued so the
   pipeline can charge DRAM latency on the lookup path. *)
type l3_port = {
  t3_lookup : lut_id:int -> key:int64 -> int64 option;
  t3_cycles : unit -> int;
  t3_spill : lut_id:int -> key:int64 -> payload:int64 -> unit;
  t3_invalidate : lut_id:int -> unit;
}

(* Profiling attachment (the attribution profiler in lib/obs). Like
   [shared_l2] this is a neutral closure record so the unit does not depend
   on the observability layer: the collector classifies misses by replaying
   residency from these events. Purely observational. *)
type profile_hooks = {
  pr_lookup :
    lut:int -> key:int64 -> fp:int64 option -> level:level -> forced:bool -> unit;
      (* every lookup outcome, after all monitor/adaptive overrides *)
  pr_insert : lev:[ `L1 | `L2 ] -> lut:int -> key:int64 -> fp:int64 option -> unit;
      (* a level gained [key]; [fp] only on a real update (fills pass None) *)
  pr_evict : lev:[ `L1 | `L2 ] -> lut:int -> key:int64 -> full:bool -> unit;
      (* a level displaced [key]; [full] = the whole level was at capacity,
         separating capacity evictions from set-conflict evictions *)
  pr_invalidate : lut:int -> unit;  (* a logical LUT was dropped everywhere *)
  pr_error : lut:int -> err:float -> unit;
      (* one shadow-exact comparison (monitor or adaptive window): worst
         relative error between the LUT payload and the recomputed value *)
  pr_collision : lut:int -> unit;  (* fingerprint mismatch on a tag hit *)
}

type stats = {
  sends : int;
  bytes_hashed : int;
  lookups : int;
  l1_hits : int;
  l2_hits : int;
  l3_hits : int;
  misses : int;
  forced_misses : int;
  updates : int;
  invalidations : int;
  collisions : int;
  monitor_comparisons : int;
}

(* Quality monitor (Section 6): 1 in [sample_interval] hits is forced to miss;
   the recomputed value is compared against the LUT payload. Per
   [window] comparisons, if more than [fraction_threshold] of the relative
   errors exceed [error_threshold], memoization is disabled. *)
let sample_interval = 100
let window = 100
let error_threshold = 0.10
let fraction_threshold = 0.10

(* Adaptive-truncation state (Section 3.1's dynamic approach). *)
type adapt_state = {
  mutable countdown : int;  (* lookups until the phase flips *)
  mutable profiling : bool;
  mutable norm_lookups : int;  (* activity during the normal phase *)
  mutable norm_hits : int;
  deltas : (int, int) Hashtbl.t;  (* per-LUT extra truncation *)
  pending_cmp : (int, int64 * int64) Hashtbl.t;  (* lut -> key, lut payload *)
  samples : (int, float list ref) Hashtbl.t;  (* per-LUT window errors *)
}

type monitor_state = {
  mutable hits_seen : int;
  mutable pending : (int * int64 * int64) option;  (* lut_id, key, lut payload *)
  mutable window_count : int;
  mutable window_bad : int;
  mutable comparisons : int;
  mutable tripped : bool;
  mutable trip_at : int option;  (* lookup count at which the monitor tripped *)
}

(* Telemetry attachment. All instruments are created once at [create]; the
   hot path only mutates them behind a single [match] on [telem], so an
   unattached unit pays one pattern match per site and an attached unit
   never allocates. Observation cannot change simulation results. *)
type telem = {
  reg : Registry.t;
  trunc_hist : Registry.histogram;  (* effective truncation per send *)
  l1_occ : Registry.histogram;  (* per-set valid entries, at flush *)
  l2_occ : Registry.histogram option;
  l1_evictions : Registry.counter;
  l2_evictions : Registry.counter;
  l1_spills : Registry.counter;
      (* L1 victims displaced while an inclusive L2 LUT holds them *)
  l1_evict_opt : (lut_id:int -> key:int64 -> payload:int64 -> unit) option;
  l2_evict_opt : (lut_id:int -> key:int64 -> payload:int64 -> unit) option;
      (* pre-wrapped [Some hook] so insert sites pass them without allocating *)
  adapt_delta : Registry.series;  (* extra-truncation decisions, at = lookups *)
  adapt_windows : Registry.counter;
  mon_windows : Registry.counter;
  mon_bad : Registry.counter;
  hit_rate_g : Registry.gauge;
  tripped_g : Registry.gauge;
  (* End-of-run mirrors of the simulator's own stats, written by
     [flush_metrics]. *)
  sends_c : Registry.counter;
  bytes_hashed_c : Registry.counter;
  lookups_c : Registry.counter;
  l1_hits_c : Registry.counter;
  l2_hits_c : Registry.counter;
  misses_c : Registry.counter;
  forced_misses_c : Registry.counter;
  updates_c : Registry.counter;
  invalidations_c : Registry.counter;
  collisions_c : Registry.counter;
  mon_comparisons_c : Registry.counter;
}

(* Fault instruments are registered only when BOTH a registry and an injector
   are attached, so the metrics snapshot of a fault-free run stays
   byte-identical to one taken before this subsystem existed. *)
type fault_telem = {
  injected_c : Registry.counter;
  by_site : (Fault_model.site * Registry.counter) list;
  parity_detected_c : Registry.counter;
  secded_corrected_c : Registry.counter;
  secded_detected_c : Registry.counter;
  sdc_hits_c : Registry.counter;
  tag_aliases_c : Registry.counter;
  trip_lookup_g : Registry.gauge;
}

type t = {
  cfg : config;
  decls : (int, lut_decl) Hashtbl.t;
  l1 : Lut.t;
  l2 : Lut.t option;
  shared_l2 : shared_l2 option;
  (* Hash value registers: in-flight CRC state per logical LUT. The optional
     second engine computes a 64-bit fingerprint of the same byte stream for
     collision measurement. *)
  hvr : (int * int, Crc.Engine.t * Crc.Engine.t option) Hashtbl.t;
      (* addressed by {LUT_ID, TID} (Section 3.2) *)
  latched_key : (int * int, int64) Hashtbl.t;  (* key of the last lookup, used by update *)
  latched_fp : (int * int, int64) Hashtbl.t;
  fingerprints : (int * int64, int64) Hashtbl.t;
  monitor : monitor_state;
  adapt : adapt_state option;
  (* DRAM tier attachment ([attach_l3]); [last_l3_cycles] is the DRAM cost
     of the most recent lookup's L3 probe (0 when no probe was issued), read
     by the pipeline's latency charge. *)
  mutable l3 : l3_port option;
  mutable last_l3_cycles : int;
  mutable l3_hits_c : Registry.counter option;
  mutable last_level : level;
  mutable sends : int;
  mutable bytes_hashed : int;
  mutable lookups : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable l3_hits : int;
  mutable misses : int;
  mutable forced_misses : int;
  mutable updates : int;
  mutable invalidations : int;
  mutable collisions : int;
  mutable telem : telem option;
  profile : profile_hooks option;
  (* scratch for the profiler: was the in-flight miss forced by the adaptive
     profiling window? (plain field, so the unprofiled path stays
     allocation-free) *)
  mutable pr_forced : bool;
  (* evict observers, pre-combined (telemetry counters + profiler) at
     [create] so insert sites pass one option without allocating; mutable
     only so [attach_l3] can extend the last SRAM level's hook with the
     spill into the DRAM tier *)
  mutable l1_evict_opt : (lut_id:int -> key:int64 -> payload:int64 -> unit) option;
  mutable l2_evict_opt : (lut_id:int -> key:int64 -> payload:int64 -> unit) option;
  injector : Injector.t option;
  crc_fault : (int -> int64) option;
      (* the injector's datapath hook, resolved once so [engines] can pass it
         straight to [Crc.Engine.start] *)
  fault_telem : fault_telem option;
}

let make_telem reg ~has_l2 ~private_l2 =
  let occ_bounds nways = Array.init (nways + 1) float_of_int in
  let counter = Registry.counter reg in
  let l1_evictions = counter "memo.l1.evictions" in
  let l2_evictions = counter "memo.l2.evictions" in
  let l1_spills = counter "memo.l1.spills" in
  let l1_evict_hook ~lut_id:_ ~key:_ ~payload:_ =
    Registry.incr l1_evictions;
    if has_l2 then Registry.incr l1_spills
  in
  let l2_evict_hook ~lut_id:_ ~key:_ ~payload:_ = Registry.incr l2_evictions in
  {
    reg;
    trunc_hist =
      Registry.histogram reg "memo.trunc_bits" ~bounds:(Array.init 33 float_of_int);
    l1_occ = Registry.histogram reg "memo.l1.set_occupancy" ~bounds:(occ_bounds 8);
    (* A shared next level keeps its own occupancy instruments on the cluster
       registry; only a private L2 histograms here. *)
    l2_occ =
      (if private_l2 then
         Some (Registry.histogram reg "memo.l2.set_occupancy" ~bounds:(occ_bounds 8))
       else None);
    l1_evictions;
    l2_evictions;
    l1_spills;
    l1_evict_opt = Some l1_evict_hook;
    l2_evict_opt = Some l2_evict_hook;
    adapt_delta = Registry.series reg "memo.adaptive.delta" ();
    adapt_windows = counter "memo.adaptive.windows";
    mon_windows = counter "memo.monitor.windows";
    mon_bad = counter "memo.monitor.bad_samples";
    hit_rate_g = Registry.gauge reg "memo.hit_rate";
    tripped_g = Registry.gauge reg "memo.monitor.tripped";
    sends_c = counter "memo.sends";
    bytes_hashed_c = counter "memo.bytes_hashed";
    lookups_c = counter "memo.lookups";
    l1_hits_c = counter "memo.l1.hits";
    l2_hits_c = counter "memo.l2.hits";
    misses_c = counter "memo.misses";
    forced_misses_c = counter "memo.forced_misses";
    updates_c = counter "memo.updates";
    invalidations_c = counter "memo.invalidations";
    collisions_c = counter "memo.collisions";
    mon_comparisons_c = counter "memo.monitor.comparisons";
  }

let create ?metrics ?shared_l2 ?profile cfg decls =
  (match (cfg.l2_bytes, shared_l2) with
  | Some _, Some _ ->
      invalid_arg "Memo_unit.create: a unit cannot have both a private and a shared L2 LUT"
  | _ -> ());
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun d ->
      if d.lut_id < 0 || d.lut_id > 7 then invalid_arg "Memo_unit.create: LUT id must be 0..7";
      if Hashtbl.mem tbl d.lut_id then invalid_arg "Memo_unit.create: duplicate LUT id";
      if Payload.width d.payload > cfg.payload_bytes then
        invalid_arg
          (Printf.sprintf
             "Memo_unit.create: LUT %d needs %d-byte entries but the unit is configured for %d"
             d.lut_id (Payload.width d.payload) cfg.payload_bytes);
      Hashtbl.replace tbl d.lut_id d)
    decls;
  let injector = Option.map Injector.create cfg.faults in
  let lut_faults sites = Option.map (fun inj -> (inj, sites)) injector in
  let l1 =
    Lut.create ~payload_bytes:cfg.payload_bytes ~policy:cfg.policy
      ?faults:(lut_faults Fault_model.l1_sites) ~size_bytes:cfg.l1_bytes ()
  in
  let l2 =
    Option.map
      (fun b ->
        Lut.create ~payload_bytes:cfg.payload_bytes ~policy:cfg.policy
          ?faults:(lut_faults Fault_model.l2_sites) ~size_bytes:b ())
      cfg.l2_bytes
  in
  let telem =
    Option.map
      (fun reg ->
        make_telem reg
          ~has_l2:(cfg.l2_bytes <> None || Option.is_some shared_l2)
          ~private_l2:(cfg.l2_bytes <> None))
      metrics
  in
  (* Pre-combine the eviction observers: telemetry counters and the
     profiler's residency events share one closure per level, chosen once
     here so the hot insert sites stay a single option pass. *)
  let combine_evict lut lev telem_hook =
    match (telem_hook, profile) with
    | None, None -> None
    | Some f, None -> Some f
    | _ ->
        Some
          (fun ~lut_id ~key ~payload ->
            (match telem_hook with Some f -> f ~lut_id ~key ~payload | None -> ());
            match profile with
            | Some pr ->
                pr.pr_evict ~lev ~lut:lut_id ~key
                  ~full:(Lut.occupancy lut = Lut.capacity_entries lut)
            | None -> ())
  in
  let l1_evict_opt =
    combine_evict l1 `L1 (match telem with Some tl -> tl.l1_evict_opt | None -> None)
  in
  let l2_evict_opt =
    match l2 with
    | None -> None
    | Some l2lut ->
        combine_evict l2lut `L2
          (match telem with Some tl -> tl.l2_evict_opt | None -> None)
  in
  {
    cfg;
    decls = tbl;
    l1;
    l2;
    shared_l2;
    hvr = Hashtbl.create 8;
    latched_key = Hashtbl.create 8;
    latched_fp = Hashtbl.create 8;
    fingerprints = Hashtbl.create 4096;
    monitor =
      {
        hits_seen = 0;
        pending = None;
        window_count = 0;
        window_bad = 0;
        comparisons = 0;
        tripped = false;
        trip_at = None;
      };
    adapt =
      Option.map
        (fun (a : adaptive_config) ->
          {
            countdown = a.profile_period;
            profiling = false;
            norm_lookups = 0;
            norm_hits = 0;
            deltas = Hashtbl.create 8;
            pending_cmp = Hashtbl.create 8;
            samples = Hashtbl.create 8;
          })
        cfg.adaptive;
    l3 = None;
    last_l3_cycles = 0;
    l3_hits_c = None;
    last_level = Miss;
    sends = 0;
    bytes_hashed = 0;
    lookups = 0;
    l1_hits = 0;
    l2_hits = 0;
    l3_hits = 0;
    misses = 0;
    forced_misses = 0;
    updates = 0;
    invalidations = 0;
    collisions = 0;
    telem;
    profile;
    pr_forced = false;
    l1_evict_opt;
    l2_evict_opt;
    injector;
    crc_fault = (match injector with Some inj -> Injector.crc_hook inj | None -> None);
    fault_telem =
      (match (metrics, injector, cfg.faults) with
      | Some reg, Some _, Some spec ->
          Some
            {
              injected_c = Registry.counter reg "faults.injected";
              by_site =
                List.map
                  (fun site ->
                    ( site,
                      Registry.counter reg
                        ("faults.injected." ^ Fault_model.site_name site) ))
                  (List.filter (fun s -> List.mem s spec.sites) Fault_model.all_sites);
              parity_detected_c = Registry.counter reg "faults.parity_detected";
              secded_corrected_c = Registry.counter reg "faults.secded_corrected";
              secded_detected_c = Registry.counter reg "faults.secded_detected";
              sdc_hits_c = Registry.counter reg "faults.sdc_hits";
              tag_aliases_c = Registry.counter reg "faults.tag_aliases";
              trip_lookup_g = Registry.gauge reg "faults.monitor.trip_lookup";
            }
      | _ -> None);
  }

let disabled t = t.monitor.tripped
let trip_lookup t = t.monitor.trip_at
let injector t = t.injector

(* Attach the DRAM tier. The spill chain extends the *last SRAM level*: a
   private L2's victims (or, with neither an L2 nor a shared one, the L1's)
   flow into [t3_spill]. Units backed by a cluster-shared L2 spill at the
   cluster layer instead (the shared LUT's eviction hook), so nothing is
   wrapped here. The [memo.l3.hits] counter is registered only now — an
   L3-less unit's metrics snapshot stays byte-identical to one taken before
   this tier existed. *)
let attach_l3 t port =
  if t.l3 <> None then invalid_arg "Memo_unit.attach_l3: already attached";
  t.l3 <- Some port;
  (match t.telem with
  | Some tl -> t.l3_hits_c <- Some (Registry.counter tl.reg "memo.l3.hits")
  | None -> ());
  let wrap prev =
    Some
      (fun ~lut_id ~key ~payload ->
        (match prev with Some f -> f ~lut_id ~key ~payload | None -> ());
        port.t3_spill ~lut_id ~key ~payload)
  in
  match (t.l2, t.shared_l2) with
  | Some _, _ -> t.l2_evict_opt <- wrap t.l2_evict_opt
  | None, Some _ -> ()
  | None, None -> t.l1_evict_opt <- wrap t.l1_evict_opt

let last_l3_cycles t = t.last_l3_cycles

let engines t ~tid lut =
  match Hashtbl.find_opt t.hvr (lut, tid) with
  | Some e -> e
  | None ->
      let e =
        (* Only the tag hash is real hardware; the fingerprint engine is a
           measurement aid and stays fault-free. *)
        ( Crc.Engine.start ?fault:t.crc_fault t.cfg.crc,
          if t.cfg.collision_tracking then Some (Crc.Engine.start Crc.Poly.crc64_xz)
          else None )
      in
      Hashtbl.replace t.hvr (lut, tid) e;
      e

let truncated_bits ~rounding ~ty ~trunc (v : Axmemo_ir.Ir.value) =
  let tr_f32, tr_f64, tr_i64 =
    match rounding with
    | Truncate -> (Bits.truncate_f32, Bits.truncate_f64, Bits.truncate_int64)
    | Nearest -> (Bits.round_f32, Bits.round_f64, Bits.round_int64)
  in
  match (ty : Axmemo_ir.Ir.ty), v with
  | F32, VF x ->
      (Int64.logand (Int64.of_int32 (Bits.f32_bits (tr_f32 ~bits:trunc x))) 0xFFFFFFFFL, 4)
  | F64, VF x -> (Bits.f64_bits (tr_f64 ~bits:trunc x), 8)
  | I32, VI x -> (Int64.logand (tr_i64 ~bits:trunc x) 0xFFFFFFFFL, 4)
  | I64, VI x -> (tr_i64 ~bits:trunc x, 8)
  | (F32 | F64), VI _ | (I32 | I64), VF _ ->
      invalid_arg "Memo_unit.send: value kind does not match declared type"

let extra_truncation t ~lut_id =
  match t.adapt with
  | None -> 0
  | Some a -> Option.value ~default:0 (Hashtbl.find_opt a.deltas lut_id)

let l1_evict_hook t = t.l1_evict_opt
let l2_evict_hook t = t.l2_evict_opt

let send ?(tid = 0) t ~lut ~ty ~trunc v =
  if not t.monitor.tripped then begin
    let trunc = trunc + extra_truncation t ~lut_id:lut in
    let bits, width = truncated_bits ~rounding:t.cfg.rounding ~ty ~trunc v in
    let crc, fp = engines t ~tid lut in
    Crc.Engine.feed_int64 crc ~width bits;
    Option.iter (fun e -> Crc.Engine.feed_int64 e ~width bits) fp;
    t.sends <- t.sends + 1;
    t.bytes_hashed <- t.bytes_hashed + width;
    match t.telem with
    | Some tl -> Registry.observe tl.trunc_hist (float_of_int trunc)
    | None -> ()
  end

(* Phase machine for the adaptive mode: normal -> profiling -> adjust. *)
let adapt_tick t =
  match (t.adapt, t.cfg.adaptive) with
  | Some a, Some cfg ->
      a.countdown <- a.countdown - 1;
      if a.countdown <= 0 then
        if a.profiling then begin
          (* Window over: adjust every declared LUT's extra truncation. The
             rule has hysteresis so the level settles instead of oscillating
             (every change invalidates the LUT): back off on errors, explore
             upward only while hits are scarce, otherwise hold. *)
          let norm_hit_rate =
            if a.norm_lookups = 0 then 0.0
            else float_of_int a.norm_hits /. float_of_int a.norm_lookups
          in
          Hashtbl.iter
            (fun lut _decl ->
              let samples =
                match Hashtbl.find_opt a.samples lut with Some r -> !r | None -> []
              in
              let delta = Option.value ~default:0 (Hashtbl.find_opt a.deltas lut) in
              let errors_bad =
                match samples with
                | [] -> false
                | s ->
                    let bad = List.length (List.filter (fun e -> e > cfg.target_error) s) in
                    float_of_int bad > cfg.bad_fraction *. float_of_int (List.length s)
              in
              let fresh =
                if errors_bad then max 0 (delta - 2)
                else if norm_hit_rate < 0.4 then min cfg.max_extra_bits (delta + 3)
                else delta
              in
              if fresh <> delta then begin
                Hashtbl.replace a.deltas lut fresh;
                (* A different truncation changes every hash: drop the now
                   unreachable entries. *)
                Lut.invalidate_lut t.l1 ~lut_id:lut;
                Option.iter (fun l2 -> Lut.invalidate_lut l2 ~lut_id:lut) t.l2;
                (match t.shared_l2 with
                | Some s -> s.sl_invalidate ~lut_id:lut
                | None -> ());
                match t.profile with
                | Some pr -> pr.pr_invalidate ~lut
                | None -> ()
              end;
              match t.telem with
              | Some tl ->
                  Registry.sample tl.adapt_delta ~at:t.lookups (float_of_int fresh)
              | None -> ())
            t.decls;
          (match t.telem with
          | Some tl -> Registry.incr tl.adapt_windows
          | None -> ());
          a.profiling <- false;
          a.countdown <- cfg.profile_period;
          a.norm_lookups <- 0;
          a.norm_hits <- 0
        end
        else begin
          Hashtbl.reset a.samples;
          Hashtbl.reset a.pending_cmp;
          a.profiling <- true;
          a.countdown <- cfg.profile_length
        end
  | _ -> ()

let monitor_should_force t =
  t.cfg.monitor
  && t.monitor.hits_seen mod sample_interval = 0

let record_hit_fingerprint t ~lut ~key ~fp =
  match fp with
  | None -> ()
  | Some fp_val -> (
      match Hashtbl.find_opt t.fingerprints (lut, key) with
      | Some stored when stored <> fp_val -> (
          t.collisions <- t.collisions + 1;
          match t.profile with Some pr -> pr.pr_collision ~lut | None -> ())
      | Some _ -> ()
      | None -> ())

(* The SRAM tiers all missed: probe the DRAM tier (when attached). A hit
   refills the inclusive SRAM hierarchy on the way up, exactly like an
   L2 hit refills the L1; either way the probe's DRAM cost is latched for
   the pipeline's latency charge. *)
let probe_l3 t ~lut ~key =
  match t.l3 with
  | None ->
      t.last_level <- Miss;
      None
  | Some p -> (
      match p.t3_lookup ~lut_id:lut ~key with
      | Some payload ->
          t.last_l3_cycles <- p.t3_cycles ();
          t.last_level <- Hit_l3;
          Lut.insert t.l1 ~lut_id:lut ~key ~payload (l1_evict_hook t);
          (match t.profile with
          | Some pr -> pr.pr_insert ~lev:`L1 ~lut ~key ~fp:None
          | None -> ());
          (match t.l2 with
          | Some l2 ->
              Lut.insert l2 ~lut_id:lut ~key ~payload (l2_evict_hook t);
              (match t.profile with
              | Some pr -> pr.pr_insert ~lev:`L2 ~lut ~key ~fp:None
              | None -> ())
          | None -> (
              match t.shared_l2 with
              | Some s ->
                  s.sl_insert ~lut_id:lut ~key ~payload;
                  (match t.profile with
                  | Some pr -> pr.pr_insert ~lev:`L2 ~lut ~key ~fp:None
                  | None -> ())
              | None -> ()));
          Some payload
      | None ->
          t.last_l3_cycles <- p.t3_cycles ();
          t.last_level <- Miss;
          None)

let lookup ?(tid = 0) t ~lut =
  t.lookups <- t.lookups + 1;
  t.last_l3_cycles <- 0;
  adapt_tick t;
  if t.monitor.tripped then begin
    t.last_level <- Miss;
    t.misses <- t.misses + 1;
    (* Tripped units never compute a key; the profiler sees a forced miss. *)
    (match t.profile with
    | Some pr -> pr.pr_lookup ~lut ~key:0L ~fp:None ~level:Miss ~forced:true
    | None -> ());
    None
  end
  else begin
    t.pr_forced <- false;
    let crc, fp_engine = engines t ~tid lut in
    let key = Crc.Engine.value crc in
    (* The HVR holds the in-flight hash; an upset there corrupts the key the
       probe and a subsequent update both use. *)
    let key =
      match t.injector with
      | None -> key
      | Some inj -> Injector.corrupt inj Fault_model.Hvr ~width:t.cfg.crc.Crc.Poly.width key
    in
    let fp = Option.map Crc.Engine.value fp_engine in
    (* The hash register is consumed: the next send starts a fresh hash. *)
    Hashtbl.remove t.hvr (lut, tid);
    Hashtbl.replace t.latched_key (lut, tid) key;
    (match fp with
    | Some f -> Hashtbl.replace t.latched_fp (lut, tid) f
    | None -> Hashtbl.remove t.latched_fp (lut, tid));
    let result =
      match Lut.lookup t.l1 ~lut_id:lut ~key with
      | Some payload ->
          t.last_level <- Hit_l1;
          Some payload
      | None -> (
          match t.l2 with
          | None -> (
              match t.shared_l2 with
              | None -> probe_l3 t ~lut ~key
              | Some s -> (
                  match s.sl_lookup ~lut_id:lut ~key with
                  | Some payload ->
                      t.last_level <- Hit_l2;
                      (* The shared level is inclusive too: fill the L1 LUT. *)
                      Lut.insert t.l1 ~lut_id:lut ~key ~payload (l1_evict_hook t);
                      (match t.profile with
                      | Some pr -> pr.pr_insert ~lev:`L1 ~lut ~key ~fp:None
                      | None -> ());
                      Some payload
                  | None -> probe_l3 t ~lut ~key))
          | Some l2 -> (
              match Lut.lookup l2 ~lut_id:lut ~key with
              | Some payload ->
                  t.last_level <- Hit_l2;
                  (* Fill the L1 LUT on an L2 hit (inclusive hierarchy). *)
                  Lut.insert t.l1 ~lut_id:lut ~key ~payload (l1_evict_hook t);
                  (match t.profile with
                  | Some pr -> pr.pr_insert ~lev:`L1 ~lut ~key ~fp:None
                  | None -> ());
                  Some payload
              | None -> probe_l3 t ~lut ~key))
    in
    let result =
      match (t.adapt, result) with
      | Some a, Some payload when a.profiling ->
          Hashtbl.replace a.pending_cmp lut (key, payload);
          t.forced_misses <- t.forced_misses + 1;
          t.last_level <- Miss;
          t.pr_forced <- true;
          None
      | Some a, r ->
          a.norm_lookups <- a.norm_lookups + 1;
          if r <> None then a.norm_hits <- a.norm_hits + 1;
          r
      | None, r -> r
    in
    match result with
    | None ->
        t.misses <- t.misses + 1;
        (match t.profile with
        | Some pr -> pr.pr_lookup ~lut ~key ~fp ~level:Miss ~forced:t.pr_forced
        | None -> ());
        None
    | Some payload ->
        t.monitor.hits_seen <- t.monitor.hits_seen + 1;
        record_hit_fingerprint t ~lut ~key ~fp;
        if monitor_should_force t then begin
          (* Forced miss: the program recomputes; [update] will compare. *)
          t.monitor.pending <- Some (lut, key, payload);
          t.forced_misses <- t.forced_misses + 1;
          t.misses <- t.misses + 1;
          t.last_level <- Miss;
          (match t.profile with
          | Some pr -> pr.pr_lookup ~lut ~key ~fp ~level:Miss ~forced:true
          | None -> ());
          None
        end
        else begin
          (match t.last_level with
          | Hit_l1 -> t.l1_hits <- t.l1_hits + 1
          | Hit_l2 -> t.l2_hits <- t.l2_hits + 1
          | Hit_l3 -> t.l3_hits <- t.l3_hits + 1
          | Miss -> ());
          (match t.profile with
          | Some pr -> pr.pr_lookup ~lut ~key ~fp ~level:t.last_level ~forced:false
          | None -> ());
          Some payload
        end
  end

let monitor_compare t ~lut ~expected_payload ~actual_payload =
  let m = t.monitor in
  m.comparisons <- m.comparisons + 1;
  let kind =
    match Hashtbl.find_opt t.decls lut with
    | Some d -> d.payload
    | None -> Payload.Pi64
  in
  let errs =
    Payload.relative_errors kind ~expected:actual_payload ~actual:expected_payload
  in
  let bad = Array.exists (fun e -> e > error_threshold) errs in
  (match t.profile with
  | Some pr -> pr.pr_error ~lut ~err:(Array.fold_left Float.max 0.0 errs)
  | None -> ());
  m.window_count <- m.window_count + 1;
  if bad then m.window_bad <- m.window_bad + 1;
  if m.window_count >= window then begin
    if float_of_int m.window_bad > fraction_threshold *. float_of_int m.window_count
    then begin
      if not m.tripped then m.trip_at <- Some t.lookups;
      m.tripped <- true
    end;
    (match t.telem with
    | Some tl ->
        Registry.incr tl.mon_windows;
        Registry.add tl.mon_bad m.window_bad
    | None -> ());
    m.window_count <- 0;
    m.window_bad <- 0
  end

let update ?(tid = 0) t ~lut payload =
  if not t.monitor.tripped then begin
    t.updates <- t.updates + 1;
    (match t.adapt with
    | Some a -> (
        match Hashtbl.find_opt a.pending_cmp lut with
        | Some (pkey, lut_payload)
          when Hashtbl.find_opt t.latched_key (lut, tid) = Some pkey ->
            let kind =
              match Hashtbl.find_opt t.decls lut with
              | Some d -> d.payload
              | None -> Payload.Pi64
            in
            let errs = Payload.relative_errors kind ~expected:payload ~actual:lut_payload in
            let worst = Array.fold_left Float.max 0.0 errs in
            let bucket =
              match Hashtbl.find_opt a.samples lut with
              | Some r -> r
              | None ->
                  let r = ref [] in
                  Hashtbl.add a.samples lut r;
                  r
            in
            bucket := worst :: !bucket;
            (match t.profile with
            | Some pr -> pr.pr_error ~lut ~err:worst
            | None -> ());
            Hashtbl.remove a.pending_cmp lut
        | Some _ | None -> ())
    | None -> ());
    (match t.monitor.pending with
    | Some (plut, pkey, lut_payload)
      when plut = lut && Hashtbl.find_opt t.latched_key (lut, tid) = Some pkey ->
        monitor_compare t ~lut ~expected_payload:lut_payload ~actual_payload:payload;
        t.monitor.pending <- None
    | Some _ | None -> ());
    match Hashtbl.find_opt t.latched_key (lut, tid) with
    | None -> ()  (* update without a preceding lookup: drop, as hardware would *)
    | Some key ->
        Lut.insert t.l1 ~lut_id:lut ~key ~payload (l1_evict_hook t);
        (match t.l2 with
        | Some l2 -> Lut.insert l2 ~lut_id:lut ~key ~payload (l2_evict_hook t)
        | None -> (
            match t.shared_l2 with
            | Some s -> s.sl_insert ~lut_id:lut ~key ~payload
            | None -> ()));
        (match t.profile with
        | Some pr ->
            let fp = Hashtbl.find_opt t.latched_fp (lut, tid) in
            pr.pr_insert ~lev:`L1 ~lut ~key ~fp;
            if Option.is_some t.l2 || Option.is_some t.shared_l2 then
              pr.pr_insert ~lev:`L2 ~lut ~key ~fp
        | None -> ());
        if t.cfg.collision_tracking then
          Option.iter
            (fun fp -> Hashtbl.replace t.fingerprints (lut, key) fp)
            (Hashtbl.find_opt t.latched_fp (lut, tid))
  end

let invalidate t ~lut =
  t.invalidations <- t.invalidations + 1;
  Lut.invalidate_lut t.l1 ~lut_id:lut;
  Option.iter (fun l2 -> Lut.invalidate_lut l2 ~lut_id:lut) t.l2;
  (match t.shared_l2 with Some s -> s.sl_invalidate ~lut_id:lut | None -> ());
  (match t.l3 with Some p -> p.t3_invalidate ~lut_id:lut | None -> ());
  (match t.profile with Some pr -> pr.pr_invalidate ~lut | None -> ());
  Hashtbl.iter
    (fun (l, tid) _ -> if l = lut then Hashtbl.remove t.hvr (l, tid))
    (Hashtbl.copy t.hvr)

(* Receiver side of the cross-core invalidate broadcast: another core retired
   an [invalidate] for [lut], so this core's private L1 copies are stale. Only
   the storage is dropped — in-flight hashes, latched keys and the local
   invalidation count belong to this core's own instruction stream. *)
let invalidate_external t ~lut =
  Lut.invalidate_lut t.l1 ~lut_id:lut;
  match t.profile with Some pr -> pr.pr_invalidate ~lut | None -> ()

(* Receiver side of a cross-NODE point-to-point invalidation: the same L1
   drop as [invalidate_external], but miss-reason attribution stays with the
   caller — the cluster layer marks its collectors with the remote reason so
   directory traffic is distinguishable in miss attribution. *)
let invalidate_remote t ~lut = Lut.invalidate_lut t.l1 ~lut_id:lut

let l1_holds t ~lut = Lut.holds_lut t.l1 ~lut_id:lut

let l1_invalidate_entry t ~lut ~key = Lut.invalidate_entry t.l1 ~lut_id:lut ~key

let hooks ?(tid = 0) t : Interp.memo_hooks =
  {
    send = (fun ~lut ~ty ~trunc v -> send ~tid t ~lut ~ty ~trunc v);
    lookup = (fun ~lut -> lookup ~tid t ~lut);
    update = (fun ~lut payload -> update ~tid t ~lut payload);
    invalidate = (fun ~lut -> invalidate t ~lut);
  }

let last_lookup_level t = t.last_level

let stats t =
  {
    sends = t.sends;
    bytes_hashed = t.bytes_hashed;
    lookups = t.lookups;
    l1_hits = t.l1_hits;
    l2_hits = t.l2_hits;
    l3_hits = t.l3_hits;
    misses = t.misses;
    forced_misses = t.forced_misses;
    updates = t.updates;
    invalidations = t.invalidations;
    collisions = t.collisions;
    monitor_comparisons = t.monitor.comparisons;
  }

let hit_rate t =
  if t.lookups = 0 then 0.0
  else float_of_int (t.l1_hits + t.l2_hits + t.l3_hits) /. float_of_int t.lookups

let flush_metrics t =
  match t.telem with
  | None -> ()
  | Some tl ->
      Registry.set_count tl.sends_c t.sends;
      Registry.set_count tl.bytes_hashed_c t.bytes_hashed;
      Registry.set_count tl.lookups_c t.lookups;
      Registry.set_count tl.l1_hits_c t.l1_hits;
      Registry.set_count tl.l2_hits_c t.l2_hits;
      (match t.l3_hits_c with
      | Some c -> Registry.set_count c t.l3_hits
      | None -> ());
      Registry.set_count tl.misses_c t.misses;
      Registry.set_count tl.forced_misses_c t.forced_misses;
      Registry.set_count tl.updates_c t.updates;
      Registry.set_count tl.invalidations_c t.invalidations;
      Registry.set_count tl.collisions_c t.collisions;
      Registry.set_count tl.mon_comparisons_c t.monitor.comparisons;
      Array.iter
        (fun n -> Registry.observe tl.l1_occ (float_of_int n))
        (Lut.set_occupancies t.l1);
      (match (tl.l2_occ, t.l2) with
      | Some h, Some l2 ->
          Array.iter (fun n -> Registry.observe h (float_of_int n)) (Lut.set_occupancies l2)
      | _ -> ());
      Registry.set tl.hit_rate_g (hit_rate t);
      Registry.set tl.tripped_g (if t.monitor.tripped then 1.0 else 0.0);
      match (t.fault_telem, t.injector) with
      | Some ft, Some inj ->
          let s = Injector.stats inj in
          Registry.set_count ft.injected_c s.injected_total;
          List.iter
            (fun (site, c) -> Registry.set_count c (Injector.injected_at inj site))
            ft.by_site;
          Registry.set_count ft.parity_detected_c s.parity_detected;
          Registry.set_count ft.secded_corrected_c s.secded_corrected;
          Registry.set_count ft.secded_detected_c s.secded_detected;
          Registry.set_count ft.sdc_hits_c s.sdc_hits;
          Registry.set_count ft.tag_aliases_c s.tag_aliases;
          Registry.set ft.trip_lookup_g
            (match t.monitor.trip_at with Some n -> float_of_int n | None -> -1.0)
      | _ -> ()

let l1_ways t = Lut.ways t.l1
let l1_lut t = t.l1
let l2_lut t = t.l2

let lut_entries t =
  Lut.entries t.l1 @ (match t.l2 with Some l2 -> Lut.entries l2 | None -> [])

let reset t =
  Lut.invalidate_all t.l1;
  Option.iter Lut.invalidate_all t.l2;
  Hashtbl.reset t.hvr;
  Hashtbl.reset t.latched_key;
  Hashtbl.reset t.latched_fp;
  Hashtbl.reset t.fingerprints;
  t.monitor.hits_seen <- 0;
  t.monitor.pending <- None;
  t.monitor.window_count <- 0;
  t.monitor.window_bad <- 0;
  t.monitor.comparisons <- 0;
  t.monitor.tripped <- false;
  t.monitor.trip_at <- None;
  (match (t.adapt, t.cfg.adaptive) with
  | Some a, Some cfg ->
      a.countdown <- cfg.profile_period;
      a.profiling <- false;
      a.norm_lookups <- 0;
      a.norm_hits <- 0;
      Hashtbl.reset a.deltas;
      Hashtbl.reset a.pending_cmp;
      Hashtbl.reset a.samples
  | _ -> ());
  t.last_level <- Miss;
  t.last_l3_cycles <- 0;
  t.sends <- 0;
  t.bytes_hashed <- 0;
  t.lookups <- 0;
  t.l1_hits <- 0;
  t.l2_hits <- 0;
  t.l3_hits <- 0;
  t.misses <- 0;
  t.forced_misses <- 0;
  t.updates <- 0;
  t.invalidations <- 0;
  t.collisions <- 0
