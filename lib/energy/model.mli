(** Event-based energy model (McPAT/CACTI stand-in).

    Total energy = dynamic pipeline energy (per-instruction front-end cost
    plus a functional-unit cost per class) + cache and DRAM access energy +
    memoization-unit energy (Table 5 constants) + leakage proportional to
    run time. Only {e relative} energy matters for the reproduction; the
    constants are representative 32 nm figures. *)

type constants = {
  base_instr_pj : float;  (** fetch/decode/issue/commit per instruction *)
  ialu_pj : float;
  imul_pj : float;
  idiv_pj : float;
  fp_pj : float;
  fdiv_sqrt_pj : float;
  ftrig_pj : float;
  l1_access_pj : float;
  l2_access_pj : float;
  dram_access_pj : float;
  l3_cas_pj : float;  (** column access into an open DRAM-LUT row *)
  l3_activate_pj : float;  (** DRAM-LUT row activation (precharge+activate) *)
  leakage_pj_per_cycle : float;
  net_hop_pj : float;  (** one interconnect message leg traversing one hop *)
  net_msg_cycles : int;  (** per-hop link latency for one LUT message *)
}

val default_constants : constants

type breakdown = {
  pipeline_pj : float;  (** front-end + FU dynamic energy *)
  cache_pj : float;
  dram_pj : float;
      (** reported, but {e not} part of [total_pj]: the paper's McPAT totals
          are processor energy only *)
  l3_pj : float;
      (** DRAM-LUT tier traffic (pLUTo column accesses + row activations);
          like [dram_pj], reported but excluded from [total_pj] *)
  memo_pj : float;
  protection_pj : float;
      (** modeled ECC checks/encodes on the LUT arrays
          ({!Axmemo_faults.Protection}); 0 for unprotected runs *)
  leakage_pj : float;
  net_pj : float;
      (** sharded-cluster interconnect traffic ([net_hops] message-leg hops
          at [net_hop_pj] each); like [dram_pj], reported but excluded from
          [total_pj] *)
  total_pj : float;
}

val of_run :
  ?constants:constants ->
  ?protection_pj:float ->
  ?l3_row_hits:int ->
  ?l3_activations:int ->
  ?net_hops:int ->
  pipeline:Axmemo_cpu.Pipeline.stats ->
  hierarchy:Axmemo_cache.Hierarchy.t ->
  memo:Axmemo_memo.Memo_unit.stats option ->
  l1_lut_bytes:int ->
  unit ->
  breakdown
(** [of_run ~pipeline ~hierarchy ~memo ~l1_lut_bytes ()] aggregates one
    run's events. [memo = None] models the baseline core (no memoization
    hardware active). [?protection_pj] (default 0) adds the LUT protection
    charge computed by {!Axmemo_faults.Protection.energy_pj} into the
    total. [?l3_row_hits]/[?l3_activations] (default 0) bill DRAM-LUT tier
    traffic into [l3_pj]; with no tier attached the breakdown is
    bit-identical to the two-level model. [?net_hops] (default 0) bills
    cluster interconnect message-leg hops into [net_pj]; single-node runs
    leave it 0. *)
