module Pipeline = Axmemo_cpu.Pipeline
module Hierarchy = Axmemo_cache.Hierarchy
module Sa_cache = Axmemo_cache.Sa_cache
module Memo_unit = Axmemo_memo.Memo_unit

type constants = {
  base_instr_pj : float;
  ialu_pj : float;
  imul_pj : float;
  idiv_pj : float;
  fp_pj : float;
  fdiv_sqrt_pj : float;
  ftrig_pj : float;
  l1_access_pj : float;
  l2_access_pj : float;
  dram_access_pj : float;
  l3_cas_pj : float;
  l3_activate_pj : float;
  leakage_pj_per_cycle : float;
  net_hop_pj : float;
  net_msg_cycles : int;
}

let default_constants =
  {
    base_instr_pj = 30.0;
    ialu_pj = 3.0;
    imul_pj = 10.0;
    idiv_pj = 40.0;
    fp_pj = 12.0;
    fdiv_sqrt_pj = 50.0;
    ftrig_pj = 80.0;
    l1_access_pj = 20.0;
    l2_access_pj = 120.0;
    dram_access_pj = 15_000.0;
    l3_cas_pj = 100.0;
    l3_activate_pj = 2_000.0;
    leakage_pj_per_cycle = 20.0;
    (* Chiplet-scale serial link: one 16-byte memoization message costs one
       SerDes traversal per hop. Kept near L3 latencies so remote LUT probes
       stay profitable against re-execution. *)
    net_hop_pj = 500.0;
    net_msg_cycles = 64;
  }

type breakdown = {
  pipeline_pj : float;
  cache_pj : float;
  dram_pj : float;
  l3_pj : float;
  memo_pj : float;
  protection_pj : float;
  leakage_pj : float;
  net_pj : float;
  total_pj : float;
}

let class_count (stats : Pipeline.stats) cls =
  match List.assoc_opt cls stats.per_class with Some n -> n | None -> 0

let of_run ?(constants = default_constants) ?(protection_pj = 0.0) ?(l3_row_hits = 0)
    ?(l3_activations = 0) ?(net_hops = 0) ~pipeline ~hierarchy ~memo ~l1_lut_bytes () =
  let k = constants in
  let c cls = float_of_int (class_count pipeline cls) in
  let fu_pj =
    (c C_ialu *. k.ialu_pj)
    +. (c C_imul *. k.imul_pj)
    +. (c C_idiv *. k.idiv_pj)
    +. ((c C_branch +. c C_call_ret +. c C_memo_branch) *. k.ialu_pj)
    +. (c C_fp *. k.fp_pj)
    +. (c C_fdiv_sqrt *. k.fdiv_sqrt_pj)
    +. (c C_ftrig *. k.ftrig_pj)
  in
  let total_instrs = float_of_int (pipeline.dyn_normal + pipeline.dyn_memo) in
  let pipeline_pj = (total_instrs *. k.base_instr_pj) +. fu_pj in
  let l1 = Sa_cache.stats (Hierarchy.l1 hierarchy) in
  let l2 = Sa_cache.stats (Hierarchy.l2 hierarchy) in
  let cache_pj =
    (float_of_int l1.accesses *. k.l1_access_pj)
    +. (float_of_int l2.accesses *. k.l2_access_pj)
  in
  let dram_pj = float_of_int l2.misses *. k.dram_access_pj in
  (* pLUTo-style L3 LUT traffic: a column access per probe landing in the
     open row, an activation charge when the probe switched rows. *)
  let l3_pj =
    (float_of_int l3_row_hits *. k.l3_cas_pj)
    +. (float_of_int l3_activations *. k.l3_activate_pj)
  in
  let memo_pj =
    match memo with
    | None -> 0.0
    | Some (m : Memo_unit.stats) ->
        let lut = Synthesis.lut_row_for ~bytes:l1_lut_bytes in
        (* CRC energy is published per 4-byte operation. *)
        (float_of_int m.bytes_hashed /. 4.0 *. Synthesis.crc32_unit.energy_pj)
        +. (float_of_int (m.sends + m.lookups + m.updates)
           *. Synthesis.hash_register.energy_pj)
        +. (float_of_int (m.lookups + m.updates) *. lut.energy_pj)
        (* L2 LUT probes cost a last-level-cache access. *)
        +. (float_of_int (m.l2_hits + m.updates) *. k.l2_access_pj)
  in
  let leakage_pj = float_of_int pipeline.cycles *. k.leakage_pj_per_cycle in
  (* Interconnect traffic in a sharded cluster: per-hop SerDes energy for
     each message leg (probe round trips count both legs). *)
  let net_pj = float_of_int net_hops *. k.net_hop_pj in
  (* The paper estimates application energy with McPAT, i.e. processor energy
     only; DRAM energy — both demand misses and L3 LUT traffic — and
     interconnect energy are reported in the breakdown but excluded from the
     total, matching that methodology. *)
  let total_pj = pipeline_pj +. cache_pj +. memo_pj +. protection_pj +. leakage_pj in
  { pipeline_pj; cache_pj; dram_pj; l3_pj; memo_pj; protection_pj; leakage_pj; net_pj; total_pj }
