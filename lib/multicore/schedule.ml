(* The request-stream scheduler: a deterministic round-robin stream of
   workload invocations, dispatched greedily to whichever core frees up
   first. Ties always break toward the lowest core index, so the placement
   — and therefore every downstream number — is a pure function of the
   stream and the per-request cycle counts. *)

type request = { rid : int; workload : string }

let stream ~workloads ~requests =
  (match workloads with [] -> invalid_arg "Schedule.stream: no workloads" | _ -> ());
  if requests < 0 then invalid_arg "Schedule.stream: negative request count";
  let arr = Array.of_list workloads in
  List.init requests (fun rid -> { rid; workload = arr.(rid mod Array.length arr) })

type 'a placement = {
  request : request;
  core : int;
  start : int;  (* core-local cycle at which the core picked the request up *)
  finish : int;
  payload : 'a;
}

let dispatch ~ncores ~run requests =
  if ncores < 1 then invalid_arg "Schedule.dispatch: need at least one core";
  let busy = Array.make ncores 0 in
  let place r =
    let core = ref 0 in
    for c = 1 to ncores - 1 do
      if busy.(c) < busy.(!core) then core := c
    done;
    let core = !core in
    let start = busy.(core) in
    let cycles, payload = run r ~core ~start in
    if cycles < 0 then invalid_arg "Schedule.dispatch: negative request cycles";
    busy.(core) <- start + cycles;
    { request = r; core; start; finish = start + cycles; payload }
  in
  let placements = List.map place requests in
  (placements, busy)

(* ---- open-loop dispatch ------------------------------------------------

   The closed [dispatch] above consumes a pre-materialized stream: every
   request is conceptually present at cycle 0 and runs in stream order
   (FIFO). The open-loop variant generalizes that to timed arrivals with a
   bounded admission queue: requests arrive over simulated time, wait in
   FIFO order when every core is busy, and are shed when the queue is full.
   The same two deterministic rules place the work — earliest-free core
   first (ties to the lowest index), and at equal cycles completions are
   processed before arrivals (lowest finish, then lowest core) — so the
   whole schedule is still a pure function of the arrival list and the
   per-request cycle counts. With every arrival at cycle 0 and a queue
   large enough to hold the stream, [dispatch_open] reproduces [dispatch]'s
   placements exactly; that degenerate case is pinned by test_serve. *)

type shed_policy = Drop_tail | Drop_head

let shed_policy_name = function
  | Drop_tail -> "drop-tail"
  | Drop_head -> "drop-head"

let parse_shed_policy = function
  | "drop-tail" | "tail" -> Some Drop_tail
  | "drop-head" | "head" -> Some Drop_head
  | _ -> None

type arrival = { request : request; at : int }

type 'a open_placement = {
  request : request;
  arrival : int;
  core : int;
  start : int;  (* dispatch cycle; [start - arrival] is the queue wait *)
  finish : int;
  payload : 'a;
}

let dispatch_open ~ncores ~queue_capacity ~shed ~run arrivals =
  if ncores < 1 then invalid_arg "Schedule.dispatch_open: need at least one core";
  if queue_capacity < 0 then
    invalid_arg "Schedule.dispatch_open: negative queue capacity";
  (match arrivals with
  | [] -> ()
  | first :: rest ->
      if first.at < 0 then invalid_arg "Schedule.dispatch_open: negative arrival";
      ignore
        (List.fold_left
           (fun prev a ->
             if a.at < prev then
               invalid_arg "Schedule.dispatch_open: arrivals must be nondecreasing";
             a.at)
           first.at rest));
  let busy = Array.make ncores 0 in
  (* Which cores hold an in-flight request: an idle core's [busy] entry is
     the cycle it went idle, not a pending completion. *)
  let running = Array.make ncores false in
  let queue : arrival Queue.t = Queue.create () in
  let placements = ref [] in
  let shed_list = ref [] in
  let exec (a : arrival) ~core ~start =
    let cycles, payload = run a.request ~core ~start in
    if cycles < 0 then invalid_arg "Schedule.dispatch_open: negative request cycles";
    busy.(core) <- start + cycles;
    running.(core) <- true;
    placements :=
      { request = a.request; arrival = a.at; core; start; finish = start + cycles;
        payload }
      :: !placements
  in
  (* The earliest-free rule of the closed dispatcher, restricted to idle
     cores: longest-idle first, ties to the lowest index. *)
  let idle_core ~now =
    let best = ref (-1) in
    for c = ncores - 1 downto 0 do
      if (not running.(c)) && busy.(c) <= now then
        if !best = -1 || busy.(c) <= busy.(!best) then best := c
    done;
    if !best = -1 then None else Some !best
  in
  (* Completions strictly before — or tying — cycle [t] retire first
     (lowest finish, then lowest core), each handing its core straight to
     the queue head. *)
  let rec drain_until t =
    let next = ref (-1) in
    for c = ncores - 1 downto 0 do
      if running.(c) && busy.(c) <= t then
        if !next = -1 || busy.(c) <= busy.(!next) then next := c
    done;
    if !next >= 0 then begin
      let c = !next in
      running.(c) <- false;
      if not (Queue.is_empty queue) then exec (Queue.pop queue) ~core:c ~start:busy.(c);
      drain_until t
    end
  in
  List.iter
    (fun (a : arrival) ->
      drain_until a.at;
      match idle_core ~now:a.at with
      | Some core -> exec a ~core ~start:a.at
      | None ->
          if Queue.length queue < queue_capacity then Queue.push a queue
          else if queue_capacity = 0 then shed_list := a :: !shed_list
          else begin
            match shed with
            | Drop_tail -> shed_list := a :: !shed_list
            | Drop_head ->
                shed_list := Queue.pop queue :: !shed_list;
                Queue.push a queue
          end)
    arrivals;
  drain_until max_int;
  (List.rev !placements, List.rev !shed_list, busy)

(* Jain's fairness index over per-core service: (sum x)^2 / (n * sum x^2),
   1.0 when perfectly balanced, 1/n when one core does everything. Defined
   as 1.0 for degenerate inputs (no cores, or no work at all). *)
let jain_fairness xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let sq = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
    if sq = 0.0 then 1.0 else sum *. sum /. (float_of_int n *. sq)
  end
