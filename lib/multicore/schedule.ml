(* The request-stream scheduler: a deterministic round-robin stream of
   workload invocations, dispatched greedily to whichever core frees up
   first. Ties always break toward the lowest core index, so the placement
   — and therefore every downstream number — is a pure function of the
   stream and the per-request cycle counts. *)

type request = { rid : int; workload : string }

let stream ~workloads ~requests =
  (match workloads with [] -> invalid_arg "Schedule.stream: no workloads" | _ -> ());
  if requests < 0 then invalid_arg "Schedule.stream: negative request count";
  let arr = Array.of_list workloads in
  List.init requests (fun rid -> { rid; workload = arr.(rid mod Array.length arr) })

type 'a placement = {
  request : request;
  core : int;
  start : int;  (* core-local cycle at which the core picked the request up *)
  finish : int;
  payload : 'a;
}

let dispatch ~ncores ~run requests =
  if ncores < 1 then invalid_arg "Schedule.dispatch: need at least one core";
  let busy = Array.make ncores 0 in
  let place r =
    let core = ref 0 in
    for c = 1 to ncores - 1 do
      if busy.(c) < busy.(!core) then core := c
    done;
    let core = !core in
    let start = busy.(core) in
    let cycles, payload = run r ~core ~start in
    if cycles < 0 then invalid_arg "Schedule.dispatch: negative request cycles";
    busy.(core) <- start + cycles;
    { request = r; core; start; finish = start + cycles; payload }
  in
  let placements = List.map place requests in
  (placements, busy)

(* Jain's fairness index over per-core service: (sum x)^2 / (n * sum x^2),
   1.0 when perfectly balanced, 1/n when one core does everything. Defined
   as 1.0 for degenerate inputs (no cores, or no work at all). *)
let jain_fairness xs =
  let n = Array.length xs in
  if n = 0 then 1.0
  else begin
    let sum = Array.fold_left ( +. ) 0.0 xs in
    let sq = Array.fold_left (fun a x -> a +. (x *. x)) 0.0 xs in
    if sq = 0.0 then 1.0 else sum *. sum /. (float_of_int n *. sq)
  end
