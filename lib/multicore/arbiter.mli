(** Bank/port arbitration for the shared L2 LUT.

    Cores run one after another (determinism demands a canonical order over
    the one shared mutable LUT), so contention is {e settled post hoc}:
    every shared-LUT access is recorded with its absolute issue cycle, then
    {!settle} bins the log by (bank, service window) — the bank is the set
    index modulo [banks], the window is [window] cycles wide — and charges
    every access beyond [ports] per bin one full window of stall cycles to
    its issuing core. Ties inside a bin resolve by (cycle, core, log order),
    making the settlement a pure function of the recorded stream. *)

type t

val create : ?banks:int -> ?ports:int -> window:int -> unit -> t
(** Defaults: 8 banks, 1 port per bank. [window] is the service latency of
    one probe (the L2 LUT lookup latency in the co-run model).
    @raise Invalid_argument on non-positive parameters. *)

val record : ?tag:int -> t -> core:int -> set:int -> at:int -> unit
(** Log one access to the bank holding [set], issued by [core] at absolute
    cycle [at]. [?tag] (default [-1] = untagged) rides along unchanged —
    the co-run passes the logical LUT id so settled stalls can be
    attributed back to a memoization region; it never affects arbitration
    (ties break on cycle, core, log order before the tag is reachable). *)

type settlement = {
  accesses : int;  (** everything recorded *)
  contended : int;  (** accesses that lost arbitration *)
  stall_cycles : int array;  (** per-core contention cycles *)
  retried : int array;  (** per-core lost-arbitration counts *)
  tag_stalls : (int * int * int) list;
      (** per-[(core, tag)] stall cycles, sorted by [(core, tag)];
          row sums over a core equal [stall_cycles.(core)] *)
}

val settle : t -> ncores:int -> settlement
(** Deterministic, order-independent settlement of the whole log. *)

val banks : t -> int
val ports : t -> int
val window : t -> int
