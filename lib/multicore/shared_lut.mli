(** The shared inclusive L2 LUT of the multi-core co-run model.

    One set-associative LUT ({!Axmemo_memo.Lut}) carved from the shared
    last-level cache and probed by every core's memoization unit. The
    interesting question a shared structure raises is {e allocation}: who may
    evict whom. Three policies are modeled:

    - {b free-for-all}: any core's insert may victimize any way — maximum
      capacity sharing, zero isolation;
    - {b static}: the ways of every set are split into contiguous,
      near-equal per-core ranges fixed at creation (Intel-CAT style: lookups
      still hit in any way, but a core's inserts only victimize its own
      range, so one core can never evict another's entries);
    - {b utility}: the static split re-balanced periodically from shadow hit
      counters — every [period] lookups the ways are redistributed in
      proportion to each core's hits over the elapsed window
      (largest-remainder, at least one way per core, ties to the lower core
      index), so the policy is a pure function of the observed stream.

    All bookkeeping is deterministic; the structure carries no clock of its
    own. Bank/port timing lives in {!Arbiter}. *)

type partition = Free_for_all | Static | Utility of { period : int }

val partition_name : partition -> string

val parse_partition : string -> partition option
(** Accepts ["free-for-all"]/["ffa"], ["static"], ["utility"] (period 2048). *)

type t

val create :
  ?metrics:Axmemo_telemetry.Registry.t ->
  ?faults:Axmemo_faults.Injector.t * Axmemo_faults.Fault_model.lut_sites ->
  ?payload_bytes:int ->
  ?policy:Axmemo_memo.Lut.policy ->
  ncores:int ->
  size_bytes:int ->
  partition:partition ->
  unit ->
  t
(** [create ~ncores ~size_bytes ~partition ()] builds the shared level.
    [?metrics] registers [sharedlut.*] instruments (lookups, hits, inserts,
    evictions, invalidations, repartitions, occupancy); [?faults] exposes
    the storage to an injector exactly like a private LUT level would be.
    @raise Invalid_argument if a partitioned policy is asked to split fewer
    ways than cores, or on a non-positive utility period. *)

val lookup : t -> core:int -> lut_id:int -> key:int64 -> int64 option
(** Probe on behalf of [core]. Hits match any way regardless of partition;
    shadow per-core hit/lookup counters feed the utility policy. *)

val insert : t -> core:int -> lut_id:int -> key:int64 -> payload:int64 -> unit
(** Insert on behalf of [core]; victim selection is confined to the core's
    current way range. Refreshing an existing key never crosses the
    partition (it rewrites in place). *)

val invalidate_lut : t -> lut_id:int -> unit
(** Drop one logical LUT everywhere — the shared half of the cross-core
    invalidate broadcast. *)

val invalidate_entry : t -> lut_id:int -> key:int64 -> bool
(** Drop one [(lut_id, key)] entry if present (a cluster directory
    invalidating a stale replica after a remote write); [true] if dropped.
    Counts a [lut.l2.invalidations] telemetry event only when something was
    dropped. *)

val holds_lut : t -> lut_id:int -> bool
(** Whether the shared level holds any entry of [lut_id]. *)

val set_evict_observer :
  t -> (lut_id:int -> key:int64 -> full:bool -> unit) -> unit
(** Install an eviction observer (the attribution profiler's residency
    feed) on top of the telemetry hook. [full] is whether the LUT was at
    entry capacity when the victim was displaced — capacity vs. set
    conflict, measured while the victim is still counted. Call at most
    once, before the first insert. *)

val set_spill :
  t -> (lut_id:int -> key:int64 -> payload:int64 -> unit) -> unit
(** Install a payload-carrying spill hook on top of whatever eviction hook
    is already installed (telemetry and/or the profiler's observer) — the
    DRAM L3 tier absorbs shared-level victims through it. Call at most
    once, before the first insert. *)

val lut : t -> Axmemo_memo.Lut.t
(** The underlying storage, exposed for snapshot capture/restore only —
    mutating it directly bypasses partition bookkeeping. *)

val invalidate_all : t -> unit

val way_range : t -> core:int -> int * int
(** The core's current allocation window (inclusive way indices). *)

val ways : t -> int
val set_of_key : t -> int64 -> int

val repartitions : t -> int
(** Times the utility policy has re-balanced (0 for the other policies). *)

val shadow_hits : t -> int array
(** Cumulative per-core shared-level hits (a copy). *)

val shadow_lookups : t -> int array
val occupancy : t -> int
val set_occupancies : t -> int array
val entries : t -> (int * int64 * int64) list

val flush_metrics : t -> unit
(** Mirror end-of-run state (occupancy gauge) into the attached registry. *)
