(* Bank/port arbitration for the shared LUT, settled after the fact.

   Cores in a co-run are simulated one request at a time (the shared LUT is
   one mutable structure, so a canonical execution order is what makes runs
   reproducible), which means contention cannot be charged while a core
   runs — the colliding accesses of its neighbours have not happened yet.
   Instead every shared-LUT access is logged with its absolute issue cycle
   (the core's request start plus its pipeline-local clock), and once all
   cores are done the log is settled: accesses are binned by (bank, service
   window), each window serves [ports] accesses per bank, and every access
   beyond that charges its core one full window of stall cycles.

   The model is deliberately coarse — it does not re-time a core's later
   accesses after a stall — but it is deterministic, order-independent
   (per-core charges are sums over independent bins), and monotone: more
   overlap means more charged cycles. *)

type t = {
  banks : int;
  ports : int;
  window : int;
  bins : (int * int, (int * int * int * int) list ref) Hashtbl.t;
      (* (bank, slot) -> (at, core, seq, tag) accesses, newest first *)
  mutable seq : int;  (* global log order, the final tie-breaker *)
}

let create ?(banks = 8) ?(ports = 1) ~window () =
  if banks < 1 || ports < 1 || window < 1 then
    invalid_arg "Arbiter.create: banks, ports and window must be positive";
  { banks; ports; window; bins = Hashtbl.create 256; seq = 0 }

let banks t = t.banks
let ports t = t.ports
let window t = t.window

let record ?(tag = -1) t ~core ~set ~at =
  let bank = set mod t.banks in
  let slot = at / t.window in
  let key = (bank, slot) in
  let cell =
    match Hashtbl.find_opt t.bins key with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.bins key r;
        r
  in
  cell := (at, core, t.seq, tag) :: !cell;
  t.seq <- t.seq + 1

type settlement = {
  accesses : int;
  contended : int;  (* accesses that lost arbitration somewhere *)
  stall_cycles : int array;  (* per core *)
  retried : int array;  (* per core *)
  tag_stalls : (int * int * int) list;  (* (core, tag, cycles), sorted *)
}

let settle t ~ncores =
  let stall = Array.make ncores 0 and retried = Array.make ncores 0 in
  let contended = ref 0 in
  let by_tag : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  (* Bins are independent, so per-core sums do not depend on the hash
     iteration order; the per-(core, tag) table is extracted sorted for the
     same reason. *)
  Hashtbl.iter
    (fun _key cell ->
      let n = List.length !cell in
      if n > t.ports then begin
        let sorted = List.sort compare !cell in
        List.iteri
          (fun rank (_at, core, _seq, tag) ->
            if rank >= t.ports then begin
              (* Losing arbitration costs a full re-issued probe window. *)
              stall.(core) <- stall.(core) + t.window;
              retried.(core) <- retried.(core) + 1;
              let k = (core, tag) in
              Hashtbl.replace by_tag k
                (Option.value ~default:0 (Hashtbl.find_opt by_tag k) + t.window);
              incr contended
            end)
          sorted
      end)
    t.bins;
  let tag_stalls =
    Hashtbl.fold (fun (core, tag) c acc -> (core, tag, c) :: acc) by_tag []
    |> List.sort compare
  in
  { accesses = t.seq; contended = !contended; stall_cycles = stall; retried; tag_stalls }
