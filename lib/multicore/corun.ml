module Interp = Axmemo_ir.Interp
module Hierarchy = Axmemo_cache.Hierarchy
module Pipeline = Axmemo_cpu.Pipeline
module Machine = Axmemo_cpu.Machine
module Memo_unit = Axmemo_memo.Memo_unit
module Model = Axmemo_energy.Model
module Transform = Axmemo_compiler.Transform
module Workload = Axmemo_workloads.Workload
module Workloads = Axmemo_workloads.Registry
module Registry = Axmemo_telemetry.Registry
module Report = Axmemo_telemetry.Report
module Timing = Axmemo_isa.Timing
module Fault_model = Axmemo_faults.Fault_model
module Injector = Axmemo_faults.Injector
module Runner = Axmemo.Runner
module Profile = Axmemo_obs.Profile
module Dram_lut = Axmemo_tier.Dram_lut
module Snapshot = Axmemo_tier.Snapshot
module Json = Axmemo_util.Json
module Pool = Axmemo_util.Pool
module Rng = Axmemo_util.Rng

type config = {
  ncores : int;
  l1_bytes : int;
  shared_l2_bytes : int;
  partition : Shared_lut.partition;
  banks : int;
  ports : int;
  workloads : string list;
  requests : int;
  variant : Workload.variant;
  retain_luts : bool;
  faults : Fault_model.spec option;  (* strikes the shared LUT's storage *)
  l3 : Dram_lut.config option;  (* DRAM LUT tier behind the shared level *)
}

let default =
  {
    ncores = 2;
    l1_bytes = 8 * 1024;
    shared_l2_bytes = 512 * 1024;
    partition = Shared_lut.Free_for_all;
    banks = 8;
    ports = 1;
    workloads = [ "blackscholes" ];
    requests = 8;
    variant = Workload.Sample;
    retain_luts = true;
    faults = None;
    l3 = None;
  }

(* The l3 suffix appears only when the tier is configured, so every
   pre-existing label — and everything keyed off it (baselines, arrival
   seeds) — is untouched by tier-less runs. *)
let label cfg =
  Printf.sprintf "corun(%dcore,%s,%s%s)" cfg.ncores
    (Shared_lut.partition_name cfg.partition)
    (String.concat "+" cfg.workloads)
    (match cfg.l3 with
    | None -> ""
    | Some c -> Printf.sprintf ",l3=%dKB" (c.Dram_lut.size_bytes / 1024))

let machine = Machine.hpi

(* ---- workload mix ----------------------------------------------------- *)

(* One co-run mixes programs that each number their logical LUTs from zero,
   while the per-core unit and the shared level serve a single LUT_ID
   namespace. Each workload therefore gets its regions renumbered onto a
   disjoint id range (in mix order, region order preserved), which leaves a
   single-workload mix — and hence the 1-core Runner.run equivalence —
   untouched, since every benchmark already numbers its regions 0..n-1. *)
type mix_entry = {
  wname : string;
  make : Workload.variant -> Workload.instance;
  offset : int;
  nregions : int;
}

let resolve_mix cfg =
  (match cfg.workloads with
  | [] -> invalid_arg "Corun: empty workload mix"
  | _ -> ());
  let next = ref 0 in
  let mix =
    List.map
      (fun name ->
        match Workloads.find name with
        | None -> invalid_arg (Printf.sprintf "Corun: unknown benchmark %S" name)
        | Some (_meta, make) ->
            let probe = make cfg.variant in
            let n = List.length probe.Workload.regions in
            let e = { wname = name; make; offset = !next; nregions = n } in
            next := !next + n;
            e)
      cfg.workloads
  in
  if !next > 8 then
    invalid_arg
      (Printf.sprintf
         "Corun: the workload mix needs %d logical LUTs but LUT_ID is 3 bits (max 8)"
         !next);
  mix

let remap_regions ~offset regions =
  if offset = 0 then regions
  else
    List.mapi
      (fun i (r : Transform.region) ->
        ignore i;
        { r with Transform.lut_id = r.Transform.lut_id + offset })
      regions

(* The union of every workload's (renumbered) LUT declarations — what each
   core's unit is built to serve. *)
let mix_decls cfg mix =
  List.concat_map
    (fun e ->
      let probe = e.make cfg.variant in
      Transform.lut_decls probe.Workload.program
        (remap_regions ~offset:e.offset probe.Workload.regions))
    mix

(* ---- cluster ---------------------------------------------------------- *)

type core_timing = { mutable base : int; mutable clock : unit -> int }

type core = {
  id : int;
  timing : core_timing;
  unit_ : Memo_unit.t;
  hierarchy : Hierarchy.t;
  metrics : Registry.t option;
}

type cluster = {
  cfg : config;
  mix : mix_entry list;
  shared : Shared_lut.t;
  l3 : Dram_lut.t option;  (* DRAM tier absorbing shared-level spills *)
  arbiter : Arbiter.t;
  cores : core array;
  cluster_metrics : Registry.t option;
  injector : Injector.t option;
  active : core_timing ref;
  profiles : Profile.t array option;  (* one collector per core *)
  on_invalidate : (core:int -> lut:int -> at:int -> unit) option;
      (* cross-node directory hook, fired after the local broadcast *)
  inv_counters : (string, Registry.counter) Hashtbl.t;
      (* lazily-created corun.invalidate.* family (see [memo_hooks]) *)
}

type l2_port_maker =
  core:int -> now:(unit -> int) -> local:Memo_unit.shared_l2 -> Memo_unit.shared_l2

(* Every core serves the whole mix's LUT namespace, so every collector is
   declared over the same remapped region list — which is what lets the
   per-core snapshots merge into one cluster profile. *)
let mix_regions cfg mix =
  List.concat_map
    (fun e ->
      let probe = e.make cfg.variant in
      List.map
        (fun (r : Transform.region) -> (r.Transform.kernel, r.Transform.lut_id + e.offset))
        probe.Workload.regions)
    mix

let create_cluster ?(metrics = false) ?(profile = false) ?l2_port ?on_invalidate cfg =
  if cfg.ncores < 1 then invalid_arg "Corun: need at least one core";
  let mix = resolve_mix cfg in
  let decls = mix_decls cfg mix in
  let profiles =
    if profile then
      let regions = mix_regions cfg mix in
      Some (Array.init cfg.ncores (fun _ -> Profile.create ~regions))
    else None
  in
  let injector = Option.map Injector.create cfg.faults in
  let cluster_metrics = if metrics then Some (Registry.create ()) else None in
  let shared =
    Shared_lut.create ?metrics:cluster_metrics
      ?faults:(Option.map (fun inj -> (inj, Fault_model.l2_sites)) injector)
      ~payload_bytes:Memo_unit.default_config.Memo_unit.payload_bytes
      ~policy:Memo_unit.default_config.Memo_unit.policy ~ncores:cfg.ncores
      ~size_bytes:cfg.shared_l2_bytes ~partition:cfg.partition ()
  in
  let arbiter =
    Arbiter.create ~banks:cfg.banks ~ports:cfg.ports ~window:Timing.lookup_l2_cycles ()
  in
  (* A shared-level eviction drops the key for every core at once, so the
     residency event is broadcast to each collector. *)
  (match profiles with
  | Some ps ->
      Shared_lut.set_evict_observer shared (fun ~lut_id ~key ~full ->
          Array.iter (fun p -> Profile.shared_evict p ~lut:lut_id ~key ~full) ps)
  | None -> ());
  (* The DRAM tier sits behind the shared level: its only fill path is the
     shared LUT's victim stream (an exclusive-ish spill chain), installed on
     top of the telemetry/profiler eviction hooks. *)
  let l3 = Option.map (fun c -> Dram_lut.create ?metrics:cluster_metrics ?injector c) cfg.l3 in
  (match l3 with
  | Some d ->
      Shared_lut.set_spill shared (fun ~lut_id ~key ~payload ->
          Dram_lut.insert d ~lut_id ~key ~payload)
  | None -> ());
  let active = ref { base = 0; clock = (fun () -> 0) } in
  (* Per-cycle fault bases integrate over the clock of whichever core is
     currently executing (requests run one at a time). *)
  (match injector with
  | Some inj ->
      Injector.set_clock inj (fun () ->
          let t = !active in
          t.base + t.clock ())
  | None -> ());
  let mk_core id =
    let timing = { base = 0; clock = (fun () -> 0) } in
    let shared_l2 =
      {
        Memo_unit.sl_lookup =
          (fun ~lut_id ~key ->
            Arbiter.record ~tag:lut_id arbiter ~core:id
              ~set:(Shared_lut.set_of_key shared key)
              ~at:(timing.base + timing.clock ());
            Shared_lut.lookup shared ~core:id ~lut_id ~key);
        sl_insert =
          (fun ~lut_id ~key ~payload ->
            Arbiter.record ~tag:lut_id arbiter ~core:id
              ~set:(Shared_lut.set_of_key shared key)
              ~at:(timing.base + timing.clock ());
            Shared_lut.insert shared ~core:id ~lut_id ~key ~payload);
        sl_invalidate = (fun ~lut_id -> Shared_lut.invalidate_lut shared ~lut_id);
      }
    in
    (* The cluster layer interposes shard routing here: probes and inserts
       whose key homes on another node are redirected over the modeled
       interconnect, everything else falls through to [local]. Absent, the
       unit talks to the node-local shared level exactly as before. *)
    let shared_l2 =
      match l2_port with
      | None -> shared_l2
      | Some make ->
          make ~core:id
            ~now:(fun () -> timing.base + timing.clock ())
            ~local:shared_l2
    in
    let core_metrics = if metrics then Some (Registry.create ()) else None in
    let unit_ =
      Memo_unit.create ?metrics:core_metrics
        ?profile:(Option.map (fun ps -> Profile.memo_hooks ps.(id)) profiles)
        ~shared_l2
        { Memo_unit.default_config with l1_bytes = cfg.l1_bytes }
        decls
    in
    let hierarchy =
      Hierarchy.create (Hierarchy.carve_l2 Hierarchy.hpi_default ~lut_bytes:cfg.shared_l2_bytes)
    in
    { id; timing; unit_; hierarchy; metrics = core_metrics }
  in
  let cores = Array.init cfg.ncores mk_core in
  (* Each unit probes the same DRAM tier on an SRAM miss; the port closures
     close over the cluster's single [Dram_lut.t], so the refill/invalidate
     traffic of every core lands in one structure. *)
  (match l3 with
  | Some d ->
      Array.iter
        (fun c ->
          Memo_unit.attach_l3 c.unit_
            {
              Memo_unit.t3_lookup =
                (fun ~lut_id ~key -> Dram_lut.lookup d ~lut_id ~key);
              t3_cycles = (fun () -> Dram_lut.last_probe_cycles d);
              t3_spill =
                (fun ~lut_id ~key ~payload -> Dram_lut.insert d ~lut_id ~key ~payload);
              t3_invalidate = (fun ~lut_id -> Dram_lut.invalidate_lut d ~lut_id);
            })
        cores
  | None -> ());
  {
    cfg;
    mix;
    shared;
    l3;
    arbiter;
    cores;
    cluster_metrics;
    injector;
    active;
    profiles;
    on_invalidate;
    inv_counters = Hashtbl.create 8;
  }

let core_unit cluster ~core = cluster.cores.(core).unit_
let shared_lut cluster = cluster.shared
let dram_lut cluster = cluster.l3
let collectors cluster = cluster.profiles

(* The corun.invalidate.* counter family is created on first use, so a run
   that never retires an [invalidate] (most mixes under [retain_luts]) keeps
   its metrics snapshot byte-identical to pre-counter reports. *)
let bump_inv cluster name =
  match cluster.cluster_metrics with
  | None -> ()
  | Some reg ->
      let c =
        match Hashtbl.find_opt cluster.inv_counters name with
        | Some c -> c
        | None ->
            let c = Registry.counter reg name in
            Hashtbl.add cluster.inv_counters name c;
            c
      in
      Registry.incr c

(* A core's memo hooks, wrapped so a retired [invalidate] broadcasts to
   every other core's private L1 (Section 3.4's cross-core visibility: the
   shared level is dropped by the issuing unit itself, the peers' stale L1
   copies are dropped here). Every peer receives the broadcast, but only
   peers actually holding the LUT do any work — the delivered/filtered
   split is the measured baseline a cluster directory has to beat. *)
let memo_hooks cluster ~core =
  let own = Memo_unit.hooks cluster.cores.(core).unit_ in
  {
    own with
    Interp.invalidate =
      (fun ~lut ->
        own.Interp.invalidate ~lut;
        bump_inv cluster "corun.invalidate.broadcasts";
        Array.iter
          (fun o ->
            if o.id <> core then begin
              let held = Memo_unit.l1_holds o.unit_ ~lut in
              bump_inv cluster
                (Printf.sprintf "corun.invalidate.%s.core%d"
                   (if held then "delivered" else "filtered")
                   o.id);
              Memo_unit.invalidate_external o.unit_ ~lut
            end)
          cluster.cores;
        match cluster.on_invalidate with
        | Some f ->
            let t = cluster.cores.(core).timing in
            f ~core ~lut ~at:(t.base + t.clock ())
        | None -> ());
  }

(* ---- per-request execution -------------------------------------------- *)

module Ir = Axmemo_ir.Ir

(* [Transform.memoize] ends the entry function with one [Invalidate] per
   region — right for a standalone run, but it would wipe the LUTs after
   every request and nothing could stay warm across the stream. Under
   [retain_luts] those trailing drops are stripped (mid-program invalidates,
   e.g. kmeans' phase barrier, are untouched); with it off, requests keep
   the standalone epilogue and a 1-core co-run replays [Runner.run] bit for
   bit. *)
let strip_trailing_invalidates ~entry (program : Ir.program) =
  let strip_block (b : Ir.block) =
    match b.term with
    | Ir.Ret _ ->
        let rec drop = function
          | Ir.Memo (Ir.Invalidate _) :: rest -> drop rest
          | l -> l
        in
        {
          b with
          Ir.instrs =
            Array.of_list (List.rev (drop (List.rev (Array.to_list b.instrs))));
        }
    | Ir.Jmp _ | Ir.Br _ | Ir.Br_memo _ -> b
  in
  {
    Ir.funcs =
      Array.map
        (fun (fn : Ir.func) ->
          if fn.Ir.fname <> entry then fn
          else { fn with Ir.blocks = Array.map strip_block fn.Ir.blocks })
        program.Ir.funcs;
  }

let stats_delta (a : Memo_unit.stats) (b : Memo_unit.stats) : Memo_unit.stats =
  {
    sends = b.sends - a.sends;
    bytes_hashed = b.bytes_hashed - a.bytes_hashed;
    lookups = b.lookups - a.lookups;
    l1_hits = b.l1_hits - a.l1_hits;
    l2_hits = b.l2_hits - a.l2_hits;
    l3_hits = b.l3_hits - a.l3_hits;
    misses = b.misses - a.misses;
    forced_misses = b.forced_misses - a.forced_misses;
    updates = b.updates - a.updates;
    invalidations = b.invalidations - a.invalidations;
    collisions = b.collisions - a.collisions;
    monitor_comparisons = b.monitor_comparisons - a.monitor_comparisons;
  }

let run_request cluster ~core ~start (entry : mix_entry) =
  let wall_start = Unix.gettimeofday () in
  let cfg = cluster.cfg in
  let c = cluster.cores.(core) in
  let instance = entry.make cfg.variant in
  let regions = remap_regions ~offset:entry.offset instance.Workload.regions in
  let program =
    Transform.memoize ?barrier:instance.Workload.barrier ~entry:instance.Workload.entry
      instance.Workload.program regions
  in
  let program =
    if cfg.retain_luts then
      strip_trailing_invalidates ~entry:instance.Workload.entry program
    else program
  in
  (* The data caches stay warm across requests (they model the core's own
     hierarchy), but their counters restart so the request's energy bill
     covers only its own accesses. *)
  Hierarchy.reset_stats c.hierarchy;
  c.timing.base <- start;
  let lookup_level () =
    match Memo_unit.last_lookup_level c.unit_ with
    | Memo_unit.Hit_l1 -> `L1
    | Memo_unit.Hit_l2 -> `L2
    | Memo_unit.Hit_l3 -> `L3
    | Memo_unit.Miss -> `Miss
  in
  let pipe =
    Pipeline.create
      ?profile:
        (Option.map
           (fun ps -> Profile.pipeline_profile ps.(core))
           cluster.profiles)
      ~machine ~lookup_level ~l2_lut_present:true
      ~l3_lookup_cycles:(fun () -> Memo_unit.last_l3_cycles c.unit_)
      ~l1_lut_ways:(Memo_unit.l1_ways c.unit_)
      ~crc_bytes_per_cycle:Timing.crc_bytes_per_cycle ~program ~hierarchy:c.hierarchy ()
  in
  c.timing.clock <- (fun () -> Pipeline.cycles pipe);
  cluster.active := c.timing;
  let before = Memo_unit.stats c.unit_ in
  let l3_before = Option.map Dram_lut.stats cluster.l3 in
  let interp =
    Interp.create ~memo:(memo_hooks cluster ~core) ~hooks:(Pipeline.hooks pipe) ~program
      ~mem:instance.Workload.mem ()
  in
  let crashed =
    match cluster.injector with
    | None ->
        ignore (Interp.run interp instance.Workload.entry instance.Workload.args);
        None
    | Some _ -> (
        (* Same DUE semantics as Runner.run_hw: an injected upset may crash
           the simulated program; keep what was computed up to the crash. *)
        try
          ignore (Interp.run interp instance.Workload.entry instance.Workload.args);
          None
        with e -> Some (Printexc.to_string e))
  in
  Pipeline.profile_close pipe;
  let ms = stats_delta before (Memo_unit.stats c.unit_) in
  let pipeline_stats = Pipeline.stats pipe in
  (* This request's share of the DRAM tier's row traffic (the tier is a
     cluster-wide structure; requests run one at a time, so the delta is
     exactly this request's). *)
  let l3_row_hits, l3_activations =
    match (l3_before, cluster.l3) with
    | Some b, Some d ->
        let s = Dram_lut.stats d in
        ( s.Dram_lut.row_hits - b.Dram_lut.row_hits,
          s.Dram_lut.row_activations - b.Dram_lut.row_activations )
    | _ -> (0, 0)
  in
  let energy =
    Model.of_run ~l3_row_hits ~l3_activations ~pipeline:pipeline_stats
      ~hierarchy:c.hierarchy ~memo:(Some ms) ~l1_lut_bytes:cfg.l1_bytes ()
  in
  let cycles = pipeline_stats.Pipeline.cycles in
  {
    Runner.label = label cfg;
    cycles;
    seconds = float_of_int cycles /. (machine.Machine.freq_ghz *. 1e9);
    sim_wall_seconds = Unix.gettimeofday () -. wall_start;
    dyn_normal = pipeline_stats.Pipeline.dyn_normal;
    dyn_memo = pipeline_stats.Pipeline.dyn_memo;
    pipeline = pipeline_stats;
    energy;
    lookups = ms.lookups;
    hits = ms.l1_hits + ms.l2_hits + ms.l3_hits;
    hit_rate =
      (if ms.lookups = 0 then 0.0
       else
         float_of_int (ms.l1_hits + ms.l2_hits + ms.l3_hits)
         /. float_of_int ms.lookups);
    collisions = ms.collisions;
    memo_disabled = Memo_unit.disabled c.unit_;
    trip_lookup = Memo_unit.trip_lookup c.unit_;
    faults = None;
    crashed;
    outputs = instance.Workload.read_outputs ();
  }

(* ---- serve-layer access ------------------------------------------------

   The open-loop service model (lib/serve) drives a cluster request by
   request through its own dispatcher instead of [run]'s closed stream, so
   the per-request execution, the post-hoc arbitration settlement and the
   metric flush/snapshot step are exposed individually. *)

let exec_request cluster ~workload ~core ~start =
  match List.find_opt (fun e -> e.wname = workload) cluster.mix with
  | Some entry -> run_request cluster ~core ~start entry
  | None ->
      invalid_arg
        (Printf.sprintf "Corun.exec_request: %S is not in the cluster's mix" workload)

let settle_arbiter cluster = Arbiter.settle cluster.arbiter ~ncores:cluster.cfg.ncores

(* Flush before snapshotting: per-core registries mirror the unit's
   cumulative stats, the cluster registry the shared structure's. *)
let flush_metrics cluster =
  Array.iter (fun c -> Memo_unit.flush_metrics c.unit_) cluster.cores;
  Shared_lut.flush_metrics cluster.shared

let cluster_snapshots cluster =
  List.concat
    (Array.to_list
       (Array.map
          (fun c ->
            match c.metrics with
            | Some reg -> [ (Printf.sprintf "core%d" c.id, Registry.snapshot reg) ]
            | None -> [])
          cluster.cores))
  @
  match cluster.cluster_metrics with
  | Some reg -> [ ("cluster", Registry.snapshot reg) ]
  | None -> []

(* ---- the co-run ------------------------------------------------------- *)

type request_run = {
  rid : int;
  workload : string;
  core : int;
  start : int;
  finish : int;
  result : Runner.result;
}

type core_summary = {
  core : int;
  served : int;
  busy_cycles : int;  (* execution only *)
  contention_cycles : int;  (* arbitration stalls charged at settlement *)
  retried : int;
  finish_cycles : int;  (* busy + contention *)
  lookups : int;
  hits : int;
  hit_rate : float;
  baseline_cycles : int;  (* un-memoized single-core cost of its requests *)
  speedup : float;
  way_range : int * int;  (* final shared-LUT allocation *)
  shadow_hits : int;
}

(* End-of-run DRAM tier aggregate; present only when the config asked for
   the tier, so tier-less outcome JSON is byte-identical to before. *)
type l3_summary = {
  l3_probes : int;
  l3_tier_hits : int;
  l3_misses : int;
  l3_spills : int;
  l3_evictions : int;
  l3_row_activations : int;
  l3_row_hits : int;
  l3_corrupted_reads : int;
  l3_occupancy : int;
  l3_capacity : int;
}

type outcome = {
  cfg : config;
  requests : request_run list;
  cores : core_summary array;
  makespan_cycles : int;
  throughput_rps : float;
  speedup : float;  (* aggregate: sum of baselines over the makespan *)
  aggregate_hit_rate : float;
  fairness : float;
  shared_accesses : int;
  contended_accesses : int;
  contention_cycles : int;
  contention_pj : float;
  repartitions : int;
  shared_occupancy : int;
  coherence_keys : int;  (* (lut, key) pairs present in several structures *)
  coherence_divergent : int;  (* of those, tags equal but data unequal *)
  l3 : l3_summary option;
  faults : Injector.stats option;
  snapshots : (string * Registry.snapshot) list;
  profiles : Profile.snapshot array option;  (* per core, core order *)
}

(* The paper's no-coherence argument, measured: collect every structure's
   valid entries and count (lut_id, key) pairs that appear in more than one
   of them — and how many of those hold diverging payloads. The DRAM tier is
   deliberately excluded: its relaxed payload cells are approximate by
   contract, so an entry that decayed there is not a coherence violation. *)
let coherence_check (cluster : cluster) =
  let tbl : (int * int64, int64 list) Hashtbl.t = Hashtbl.create 1024 in
  let add entries =
    List.iter
      (fun (lut_id, key, payload) ->
        let k = (lut_id, key) in
        let prev = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
        Hashtbl.replace tbl k (payload :: prev))
      entries
  in
  Array.iter (fun c -> add (Memo_unit.lut_entries c.unit_)) cluster.cores;
  add (Shared_lut.entries cluster.shared);
  Hashtbl.fold
    (fun _k payloads (keys, divergent) ->
      match payloads with
      | [] | [ _ ] -> (keys, divergent)
      | p :: rest ->
          (keys + 1, if List.for_all (fun q -> q = p) rest then divergent else divergent + 1))
    tbl (0, 0)

let run_keep ?(metrics = false) ?(profile = false) cfg =
  let cluster = create_cluster ~metrics ~profile cfg in
  let stream = Schedule.stream ~workloads:cfg.workloads ~requests:cfg.requests in
  let mix_of =
    let tbl = Hashtbl.create 8 in
    List.iter (fun e -> Hashtbl.replace tbl e.wname e) cluster.mix;
    fun name -> Hashtbl.find tbl name
  in
  (* Un-memoized single-core reference per workload, for per-core speedup. *)
  let baselines = Hashtbl.create 8 in
  let baseline_of name =
    match Hashtbl.find_opt baselines name with
    | Some c -> c
    | None ->
        let e = mix_of name in
        let r = Runner.run Runner.Baseline (e.make cfg.variant) in
        Hashtbl.replace baselines name r.Runner.cycles;
        r.Runner.cycles
  in
  let placements, busy =
    Schedule.dispatch ~ncores:cfg.ncores
      ~run:(fun (r : Schedule.request) ~core ~start ->
        let result = run_request cluster ~core ~start (mix_of r.Schedule.workload) in
        (result.Runner.cycles, result))
      stream
  in
  let settlement = Arbiter.settle cluster.arbiter ~ncores:cfg.ncores in
  (* The settled stalls flow back to (core, region) through the tag each
     shared-LUT access was recorded with. *)
  (match cluster.profiles with
  | Some ps ->
      List.iter
        (fun (core, tag, cycles) ->
          if tag >= 0 then Profile.note_contention ps.(core) ~lut:tag ~cycles)
        settlement.Arbiter.tag_stalls
  | None -> ());
  let requests =
    List.map
      (fun (p : Runner.result Schedule.placement) ->
        {
          rid = p.Schedule.request.Schedule.rid;
          workload = p.Schedule.request.Schedule.workload;
          core = p.Schedule.core;
          start = p.Schedule.start;
          finish = p.Schedule.finish;
          result = p.Schedule.payload;
        })
      placements
  in
  let cores =
    Array.init cfg.ncores (fun i ->
        let mine = List.filter (fun (r : request_run) -> r.core = i) requests in
        let served = List.length mine in
        let lookups = List.fold_left (fun a r -> a + r.result.Runner.lookups) 0 mine in
        let hits = List.fold_left (fun a r -> a + r.result.Runner.hits) 0 mine in
        let baseline_cycles =
          List.fold_left (fun a r -> a + baseline_of r.workload) 0 mine
        in
        let busy_cycles = busy.(i) in
        let contention_cycles = settlement.Arbiter.stall_cycles.(i) in
        let finish_cycles = busy_cycles + contention_cycles in
        {
          core = i;
          served;
          busy_cycles;
          contention_cycles;
          retried = settlement.Arbiter.retried.(i);
          finish_cycles;
          lookups;
          hits;
          hit_rate = (if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups);
          baseline_cycles;
          speedup =
            (if baseline_cycles = 0 && finish_cycles = 0 then 1.0
             else float_of_int baseline_cycles /. float_of_int (max 1 finish_cycles));
          way_range = Shared_lut.way_range cluster.shared ~core:i;
          shadow_hits = (Shared_lut.shadow_hits cluster.shared).(i);
        })
  in
  let makespan_cycles = Array.fold_left (fun a c -> max a c.finish_cycles) 0 cores in
  let total_lookups = Array.fold_left (fun a c -> a + c.lookups) 0 cores in
  let total_hits = Array.fold_left (fun a c -> a + c.hits) 0 cores in
  let total_baseline = Array.fold_left (fun a c -> a + c.baseline_cycles) 0 cores in
  let contention_cycles = Array.fold_left ( + ) 0 settlement.Arbiter.stall_cycles in
  let keys, divergent = coherence_check cluster in
  flush_metrics cluster;
  let snapshots = cluster_snapshots cluster in
  let l3 =
    Option.map
      (fun d ->
        let s = Dram_lut.stats d in
        {
          l3_probes = s.Dram_lut.probes;
          l3_tier_hits = s.Dram_lut.hits;
          l3_misses = s.Dram_lut.misses;
          l3_spills = s.Dram_lut.inserts;
          l3_evictions = s.Dram_lut.evictions;
          l3_row_activations = s.Dram_lut.row_activations;
          l3_row_hits = s.Dram_lut.row_hits;
          l3_corrupted_reads = s.Dram_lut.corrupted_reads;
          l3_occupancy = Dram_lut.occupancy d;
          l3_capacity = Dram_lut.capacity_entries d;
        })
      cluster.l3
  in
  ( {
    cfg;
    requests;
    cores;
    makespan_cycles;
    throughput_rps =
      (if makespan_cycles = 0 then 0.0
       else
         float_of_int cfg.requests
         /. (float_of_int makespan_cycles /. (machine.Machine.freq_ghz *. 1e9)));
    speedup =
      (if total_baseline = 0 && makespan_cycles = 0 then 1.0
       else float_of_int total_baseline /. float_of_int (max 1 makespan_cycles));
    aggregate_hit_rate =
      (if total_lookups = 0 then 0.0
       else float_of_int total_hits /. float_of_int total_lookups);
    fairness =
      Schedule.jain_fairness
        (Array.map (fun c -> float_of_int c.finish_cycles) cores);
    shared_accesses = settlement.Arbiter.accesses;
    contended_accesses = settlement.Arbiter.contended;
    contention_cycles;
    contention_pj =
      float_of_int settlement.Arbiter.contended *. Model.default_constants.Model.l2_access_pj;
    repartitions = Shared_lut.repartitions cluster.shared;
    shared_occupancy = Shared_lut.occupancy cluster.shared;
    coherence_keys = keys;
    coherence_divergent = divergent;
    l3;
    faults = Option.map Injector.stats cluster.injector;
    snapshots;
    profiles = Option.map (Array.map Profile.snapshot) cluster.profiles;
  },
    cluster )

let run ?metrics ?profile cfg = fst (run_keep ?metrics ?profile cfg)

(* ---- warm-LUT snapshots ------------------------------------------------

   Section naming: "l1.<core>" per private level, "l2" the shared level,
   "l3" the DRAM tier. Restore replays whatever sections match the target
   cluster's shape and reports how many entries landed, so a snapshot from
   a wider configuration degrades gracefully instead of failing. *)

let capture_snapshot (cluster : cluster) =
  let l1s =
    Array.to_list
      (Array.mapi
         (fun i c ->
           Snapshot.capture_lut
             ~name:(Printf.sprintf "l1.%d" i)
             (Memo_unit.l1_lut c.unit_))
         cluster.cores)
  in
  let l2 = Snapshot.capture_lut ~name:"l2" (Shared_lut.lut cluster.shared) in
  let l3 =
    match cluster.l3 with
    | Some d -> [ Snapshot.capture_dram ~name:"l3" d ]
    | None -> []
  in
  { Snapshot.sections = l1s @ (l2 :: l3) }

let restore_snapshot_stats (cluster : cluster) (snap : Snapshot.t) =
  let restored = ref 0 in
  Array.iteri
    (fun i c ->
      match Snapshot.section snap (Printf.sprintf "l1.%d" i) with
      | Some s -> restored := !restored + Snapshot.restore_lut s (Memo_unit.l1_lut c.unit_)
      | None -> ())
    cluster.cores;
  (match Snapshot.section snap "l2" with
  | Some s -> restored := !restored + Snapshot.restore_lut s (Shared_lut.lut cluster.shared)
  | None -> ());
  let amortised = ref 0 and serial = ref 0 in
  (match (Snapshot.section snap "l3", cluster.l3) with
  | Some s, Some d ->
      let n, a, sr = Snapshot.restore_dram_batched s d in
      restored := !restored + n;
      amortised := a;
      serial := sr
  | _ -> ());
  (!restored, !amortised, !serial)

let restore_snapshot (cluster : cluster) (snap : Snapshot.t) =
  let restored, _amortised, _serial = restore_snapshot_stats cluster snap in
  restored

let run_matrix ?jobs ?(profile = false) cfgs =
  Pool.run ?jobs (fun cfg -> run ~metrics:true ~profile cfg) cfgs

(* ---- report ----------------------------------------------------------- *)

let core_summary_json c =
  let lo, hi = c.way_range in
  Json.Obj
    [
      ("core", Json.Int c.core);
      ("served", Json.Int c.served);
      ("busy_cycles", Json.Int c.busy_cycles);
      ("contention_cycles", Json.Int c.contention_cycles);
      ("retried", Json.Int c.retried);
      ("finish_cycles", Json.Int c.finish_cycles);
      ("lookups", Json.Int c.lookups);
      ("hits", Json.Int c.hits);
      ("hit_rate", Json.Float c.hit_rate);
      ("baseline_cycles", Json.Int c.baseline_cycles);
      ("speedup", Json.Float c.speedup);
      ("way_lo", Json.Int lo);
      ("way_hi", Json.Int hi);
      ("shadow_hits", Json.Int c.shadow_hits);
    ]

(* Keep checked-in reports small: only the head of the schedule is listed
   row by row; everything else is already aggregated per core. *)
let schedule_head_rows = 24

let outcome_json o =
  let cfg = o.cfg in
  let head = List.filteri (fun i _ -> i < schedule_head_rows) o.requests in
  (* The "l3" block appears only for tier-configured runs so tier-less
     reports stay byte-identical to their committed baselines. *)
  let l3_fields =
    match o.l3 with
    | None -> []
    | Some t ->
        [
          ( "l3",
            Json.Obj
              [
                ("probes", Json.Int t.l3_probes);
                ("hits", Json.Int t.l3_tier_hits);
                ("misses", Json.Int t.l3_misses);
                ("spills", Json.Int t.l3_spills);
                ("evictions", Json.Int t.l3_evictions);
                ("row_activations", Json.Int t.l3_row_activations);
                ("row_hits", Json.Int t.l3_row_hits);
                ("corrupted_reads", Json.Int t.l3_corrupted_reads);
                ("occupancy", Json.Int t.l3_occupancy);
                ("capacity", Json.Int t.l3_capacity);
              ] );
        ]
  in
  Json.Obj
    ([
      ("label", Json.Str (label cfg));
      ("ncores", Json.Int cfg.ncores);
      ("partition", Json.Str (Shared_lut.partition_name cfg.partition));
      ("l1_bytes", Json.Int cfg.l1_bytes);
      ("shared_l2_bytes", Json.Int cfg.shared_l2_bytes);
      ("banks", Json.Int cfg.banks);
      ("ports", Json.Int cfg.ports);
      ("workloads", Json.Arr (List.map (fun w -> Json.Str w) cfg.workloads));
      ("requests", Json.Int cfg.requests);
      ("makespan_cycles", Json.Int o.makespan_cycles);
      ("throughput_rps", Json.Float o.throughput_rps);
      ("speedup", Json.Float o.speedup);
      ("aggregate_hit_rate", Json.Float o.aggregate_hit_rate);
      ("fairness", Json.Float o.fairness);
      ("shared_accesses", Json.Int o.shared_accesses);
      ("contended_accesses", Json.Int o.contended_accesses);
      ("contention_cycles", Json.Int o.contention_cycles);
      ("contention_pj", Json.Float o.contention_pj);
      ("repartitions", Json.Int o.repartitions);
      ("shared_occupancy", Json.Int o.shared_occupancy);
      ("coherence_keys", Json.Int o.coherence_keys);
      ("coherence_divergent", Json.Int o.coherence_divergent);
      ("cores", Json.Arr (Array.to_list (Array.map core_summary_json o.cores)));
      ( "schedule_head",
        Json.Arr
          (List.map
             (fun r ->
               Json.Str
                 (Printf.sprintf "r%d %s core%d [%d..%d] hit=%.3f" r.rid r.workload
                    r.core r.start r.finish r.result.Runner.hit_rate))
             head) );
      ("schedule_rows_omitted", Json.Int (max 0 (List.length o.requests - schedule_head_rows)));
      ( "faults",
        match o.faults with
        | None -> Json.Null
        | Some s ->
            Json.Obj
              [
                ("injected", Json.Int s.Injector.injected_total);
                ("sdc_hits", Json.Int s.Injector.sdc_hits);
                ("parity_detected", Json.Int s.Injector.parity_detected);
                ("secded_corrected", Json.Int s.Injector.secded_corrected);
                ("secded_detected", Json.Int s.Injector.secded_detected);
                ("tag_aliases", Json.Int s.Injector.tag_aliases);
              ] );
    ]
    @ l3_fields)

let default_series_cap = 32

(* The "cluster" run carries the merged (all-cores) profile; each "core<i>"
   run carries its own. Merging per-core snapshots in core order is a
   pointwise sum, so the report is byte-identical for any [--jobs]. *)
let profile_json_for o who =
  match o.profiles with
  | None -> None
  | Some ps ->
      if who = "cluster" then
        Some (Profile.to_json (Profile.merge (Array.to_list ps)))
      else if String.length who > 4 && String.sub who 0 4 = "core" then
        match int_of_string_opt (String.sub who 4 (String.length who - 4)) with
        | Some i when i >= 0 && i < Array.length ps -> Some (Profile.to_json ps.(i))
        | _ -> None
      else None

let report_runs ?(series_cap = default_series_cap) ?(per_core = true) outcomes =
  List.concat_map
      (fun o ->
        let snaps =
          if per_core then o.snapshots
          else List.filter (fun (who, _) -> who = "cluster") o.snapshots
        in
        List.map
          (fun (who, snap) ->
            {
              Report.benchmark = String.concat "+" o.cfg.workloads;
              config = Printf.sprintf "%s:%s" (label o.cfg) who;
              summary =
                [
                  ("makespan_cycles", Json.Int o.makespan_cycles);
                  ("throughput_rps", Json.Float o.throughput_rps);
                  ("aggregate_hit_rate", Json.Float o.aggregate_hit_rate);
                  ("fairness", Json.Float o.fairness);
                ];
              metrics = Registry.decimate ~cap:series_cap snap;
              profile = profile_json_for o who;
              service = None;
              cluster = None;
            })
          snaps)
    outcomes

let report ?series_cap ?per_core outcomes =
  let runs = report_runs ?series_cap ?per_core outcomes in
  let extra =
    [
      ("root_seed", Json.Str (Int64.to_string (Rng.root_seed ())));
      ("corun", Json.Arr (List.map outcome_json outcomes));
    ]
  in
  Report.make ~extra runs

let write_report ?series_cap ?per_core path outcomes =
  Json.write_file ~indent:2 path (report ?series_cap ?per_core outcomes)
