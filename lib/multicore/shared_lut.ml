module Lut = Axmemo_memo.Lut
module Registry = Axmemo_telemetry.Registry
module Injector = Axmemo_faults.Injector
module Fault_model = Axmemo_faults.Fault_model

type partition =
  | Free_for_all
  | Static
  | Utility of { period : int }

let partition_name = function
  | Free_for_all -> "free-for-all"
  | Static -> "static"
  | Utility _ -> "utility"

let parse_partition = function
  | "free-for-all" | "ffa" -> Some Free_for_all
  | "static" -> Some Static
  | "utility" -> Some (Utility { period = 2048 })
  | _ -> None

type telem = {
  lookups_c : Registry.counter;
  hits_c : Registry.counter;
  inserts_c : Registry.counter;
  evictions_c : Registry.counter;
  invalidations_c : Registry.counter;
  repartitions_c : Registry.counter;
  occupancy_g : Registry.gauge;
}

type t = {
  lut : Lut.t;
  ncores : int;
  partition : partition;
  (* Current allocation window per core, inclusive way range. Lookups hit in
     any way (CAT semantics); only victim selection is confined. *)
  ranges : (int * int) array;
  window_hits : int array;  (* shadow hit counters since the last repartition *)
  window_lookups : int array;
  shadow_hits : int array;  (* cumulative, for the report *)
  shadow_lookups : int array;
  mutable accesses : int;  (* lookups since the last repartition *)
  mutable repartitions : int;
  mutable evict_opt : (lut_id:int -> key:int64 -> payload:int64 -> unit) option;
  telem : telem option;
}

(* The static split: contiguous, near-equal way ranges in core order —
   core i owns ways [i*W/N .. (i+1)*W/N - 1]. *)
let static_ranges ~ncores ~nways =
  Array.init ncores (fun i ->
      let lo = i * nways / ncores and hi = ((i + 1) * nways / ncores) - 1 in
      (lo, hi))

let full_ranges ~ncores ~nways = Array.make ncores (0, nways - 1)

let create ?metrics ?faults ?(payload_bytes = 8) ?(policy = Lut.Lru) ~ncores ~size_bytes
    ~partition () =
  if ncores < 1 then invalid_arg "Shared_lut.create: need at least one core";
  let lut = Lut.create ~payload_bytes ~policy ?faults ~size_bytes () in
  let nways = Lut.ways lut in
  (match partition with
  | Free_for_all -> ()
  | Static | Utility _ ->
      if ncores > nways then
        invalid_arg
          (Printf.sprintf
             "Shared_lut.create: %d cores cannot each own a way of a %d-way LUT" ncores
             nways));
  (match partition with
  | Utility { period } ->
      if period < 1 then invalid_arg "Shared_lut.create: utility period must be positive"
  | Free_for_all | Static -> ());
  let ranges =
    match partition with
    | Free_for_all -> full_ranges ~ncores ~nways
    | Static | Utility _ -> static_ranges ~ncores ~nways
  in
  let telem =
    Option.map
      (fun reg ->
        let counter = Registry.counter reg in
        {
          lookups_c = counter "sharedlut.lookups";
          hits_c = counter "sharedlut.hits";
          inserts_c = counter "sharedlut.inserts";
          evictions_c = counter "sharedlut.evictions";
          invalidations_c = counter "sharedlut.invalidations";
          repartitions_c = counter "sharedlut.repartitions";
          occupancy_g = Registry.gauge reg "sharedlut.occupancy";
        })
      metrics
  in
  let evict_opt =
    Option.map (fun tl ~lut_id:_ ~key:_ ~payload:_ -> Registry.incr tl.evictions_c) telem
  in
  {
    lut;
    ncores;
    partition;
    ranges;
    window_hits = Array.make ncores 0;
    window_lookups = Array.make ncores 0;
    shadow_hits = Array.make ncores 0;
    shadow_lookups = Array.make ncores 0;
    accesses = 0;
    repartitions = 0;
    evict_opt;
    telem;
  }

(* The profiler's residency feed. The combined hook replaces [evict_opt]
   wholesale, so the telemetry counter keeps firing and the hot path still
   pays a single option match per eviction. [full] is computed while the
   victim is still counted, mirroring the private levels' convention. *)
let set_evict_observer t f =
  let base = t.evict_opt in
  t.evict_opt <-
    Some
      (fun ~lut_id ~key ~payload ->
        (match base with Some g -> g ~lut_id ~key ~payload | None -> ());
        f ~lut_id ~key ~full:(Lut.occupancy t.lut = Lut.capacity_entries t.lut))

(* The DRAM tier's spill feed. Same wholesale-replacement discipline as
   [set_evict_observer]: the previous hook (telemetry, profiler) keeps
   firing, and the victim's payload rides along so the L3 can absorb it. *)
let set_spill t f =
  let base = t.evict_opt in
  t.evict_opt <-
    Some
      (fun ~lut_id ~key ~payload ->
        (match base with Some g -> g ~lut_id ~key ~payload | None -> ());
        f ~lut_id ~key ~payload)

let lut t = t.lut
let way_range t ~core = t.ranges.(core)
let ways t = Lut.ways t.lut
let set_of_key t key = Lut.set_of_key t.lut key
let repartitions t = t.repartitions
let shadow_hits t = Array.copy t.shadow_hits
let shadow_lookups t = Array.copy t.shadow_lookups
let occupancy t = Lut.occupancy t.lut
let set_occupancies t = Lut.set_occupancies t.lut
let entries t = Lut.entries t.lut
let invalidate_all t = Lut.invalidate_all t.lut

(* Utility-based repartition (the shadow-counter scheme): every [period]
   shared-LUT lookups, redistribute the ways in proportion to each core's
   hits in the elapsed window. Every core keeps at least one way; the
   remainder is shared out by largest-remainder with ties broken by core
   index, so the outcome is a pure function of the counters. Entries are
   never moved or flushed — like CAT, a shrunk allocation only steers
   future victim choices. *)
let repartition t =
  let nways = Lut.ways t.lut in
  let spare = nways - t.ncores in
  let total = Array.fold_left ( + ) 0 t.window_hits in
  let quota = Array.make t.ncores 1 in
  if total = 0 then begin
    (* No evidence this window: fall back to the static split. *)
    let st = static_ranges ~ncores:t.ncores ~nways in
    Array.iteri (fun i (lo, hi) -> quota.(i) <- hi - lo + 1) st
  end
  else begin
    let exact =
      Array.map (fun h -> float_of_int (spare * h) /. float_of_int total) t.window_hits
    in
    let floors = Array.map int_of_float exact in
    Array.iteri (fun i f -> quota.(i) <- 1 + f) floors;
    let assigned = Array.fold_left ( + ) 0 quota in
    let rest = nways - assigned in
    (* Largest fractional remainder first; ties go to the lower core index. *)
    let order = Array.init t.ncores (fun i -> i) in
    Array.sort
      (fun a b ->
        let fa = exact.(a) -. float_of_int floors.(a)
        and fb = exact.(b) -. float_of_int floors.(b) in
        if fa = fb then compare a b else compare fb fa)
      order;
    for k = 0 to rest - 1 do
      let i = order.(k mod t.ncores) in
      quota.(i) <- quota.(i) + 1
    done
  end;
  let lo = ref 0 in
  Array.iteri
    (fun i q ->
      t.ranges.(i) <- (!lo, !lo + q - 1);
      lo := !lo + q)
    quota;
  Array.fill t.window_hits 0 t.ncores 0;
  Array.fill t.window_lookups 0 t.ncores 0;
  t.repartitions <- t.repartitions + 1;
  match t.telem with Some tl -> Registry.incr tl.repartitions_c | None -> ()

let lookup t ~core ~lut_id ~key =
  t.shadow_lookups.(core) <- t.shadow_lookups.(core) + 1;
  t.window_lookups.(core) <- t.window_lookups.(core) + 1;
  (match t.telem with Some tl -> Registry.incr tl.lookups_c | None -> ());
  let r = Lut.lookup t.lut ~lut_id ~key in
  (match r with
  | Some _ ->
      t.shadow_hits.(core) <- t.shadow_hits.(core) + 1;
      t.window_hits.(core) <- t.window_hits.(core) + 1;
      (match t.telem with Some tl -> Registry.incr tl.hits_c | None -> ())
  | None -> ());
  (match t.partition with
  | Utility { period } ->
      t.accesses <- t.accesses + 1;
      if t.accesses mod period = 0 then repartition t
  | Free_for_all | Static -> ());
  r

let insert t ~core ~lut_id ~key ~payload =
  (match t.telem with Some tl -> Registry.incr tl.inserts_c | None -> ());
  Lut.insert ~ways:t.ranges.(core) t.lut ~lut_id ~key ~payload t.evict_opt

let invalidate_lut t ~lut_id =
  (match t.telem with Some tl -> Registry.incr tl.invalidations_c | None -> ());
  Lut.invalidate_lut t.lut ~lut_id

(* Directory-driven drop of one stale replica after a remote write; counted
   as an invalidation only when an entry was actually dropped, so idle
   directories leave the telemetry untouched. *)
let invalidate_entry t ~lut_id ~key =
  let dropped = Lut.invalidate_entry t.lut ~lut_id ~key in
  (if dropped then
     match t.telem with Some tl -> Registry.incr tl.invalidations_c | None -> ());
  dropped

let holds_lut t ~lut_id = Lut.holds_lut t.lut ~lut_id

let flush_metrics t =
  match t.telem with
  | None -> ()
  | Some tl -> Registry.set tl.occupancy_g (float_of_int (Lut.occupancy t.lut))
