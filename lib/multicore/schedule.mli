(** Deterministic request-stream scheduling for the co-run model.

    A stream is a fixed round-robin interleaving of workload invocations; a
    dispatch places each request, in stream order, on the core that frees up
    first (ties to the lowest index). Because both rules are pure functions
    of their inputs, any two runs of the same configuration place every
    request identically — which is what lets co-run reports stay
    byte-identical across [--jobs] settings. *)

type request = { rid : int; workload : string }

val stream : workloads:string list -> requests:int -> request list
(** Round-robin over [workloads], [requests] entries long.
    @raise Invalid_argument on an empty workload list or a negative count. *)

type 'a placement = {
  request : request;
  core : int;
  start : int;  (** cycle at which the core picked the request up *)
  finish : int;
  payload : 'a;
}

val dispatch :
  ncores:int ->
  run:(request -> core:int -> start:int -> int * 'a) ->
  request list ->
  'a placement list * int array
(** [dispatch ~ncores ~run requests] executes each request on its chosen
    core via [run] (which returns the request's cycle cost plus an arbitrary
    payload) and returns the placements in stream order together with the
    final per-core busy times. [run] is called sequentially, in stream
    order — concurrency exists only in the cycle accounting.

    {b FIFO constraint.} Requests are placed strictly in stream order:
    request [i+1] is not considered until request [i] has been placed,
    even when a shorter later request could have started earlier on a core
    that is about to go idle. This is deliberate — admission order is the
    determinism anchor (LUT state evolves in the order [run] is called),
    and reordering would make placements depend on cycle counts that are
    themselves functions of placement. {!dispatch_open} keeps the same
    admission-order invariant for timed arrivals via its FIFO queue.
    @raise Invalid_argument on [ncores < 1] or a negative cycle cost. *)

(** {1 Open-loop dispatch}

    Timed arrivals over a bounded FIFO admission queue — the service model.
    All rules are deterministic: earliest-free core (ties to the lowest
    index), completions retire before arrivals at equal cycles (lowest
    finish, then lowest core), the queue is strictly FIFO, so served
    requests start in admission order. With every arrival at cycle 0 and
    [queue_capacity >= List.length arrivals - ncores], the placements
    reproduce {!dispatch} exactly. *)

type shed_policy =
  | Drop_tail  (** a full queue sheds the {e arriving} request *)
  | Drop_head
      (** a full queue sheds its {e oldest waiting} request and admits the
          arrival — bounds queue wait instead of favouring old work *)

val shed_policy_name : shed_policy -> string
val parse_shed_policy : string -> shed_policy option

type arrival = { request : request; at : int }

type 'a open_placement = {
  request : request;
  arrival : int;
  core : int;
  start : int;  (** dispatch cycle; [start - arrival] is the queue wait *)
  finish : int;
  payload : 'a;
}

val dispatch_open :
  ncores:int ->
  queue_capacity:int ->
  shed:shed_policy ->
  run:(request -> core:int -> start:int -> int * 'a) ->
  arrival list ->
  'a open_placement list * arrival list * int array
(** [dispatch_open ~ncores ~queue_capacity ~shed ~run arrivals] simulates
    the open-loop schedule over [arrivals] (which must be nondecreasing in
    [at]): an arrival finding an idle core starts immediately on the
    longest-idle one; otherwise it waits in the FIFO queue (at most
    [queue_capacity] waiting — with capacity 0 every such arrival is shed
    regardless of policy); a completing core immediately picks up the queue
    head at its finish cycle. [run] is called once per {e served} request,
    in dispatch order (chronological, which for the FIFO queue is also
    admission order), so warm-LUT state evolves deterministically. Returns
    the served placements in dispatch order, the shed arrivals in shed
    order, and the final per-core busy times.
    @raise Invalid_argument on [ncores < 1], a negative [queue_capacity],
    unsorted or negative arrivals, or a negative cycle cost. *)

val jain_fairness : float array -> float
(** Jain's index: 1.0 = perfectly balanced, 1/n = maximally skewed; 1.0 on
    degenerate (empty or all-zero) input. *)
