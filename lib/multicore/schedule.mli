(** Deterministic request-stream scheduling for the co-run model.

    A stream is a fixed round-robin interleaving of workload invocations; a
    dispatch places each request, in stream order, on the core that frees up
    first (ties to the lowest index). Because both rules are pure functions
    of their inputs, any two runs of the same configuration place every
    request identically — which is what lets co-run reports stay
    byte-identical across [--jobs] settings. *)

type request = { rid : int; workload : string }

val stream : workloads:string list -> requests:int -> request list
(** Round-robin over [workloads], [requests] entries long.
    @raise Invalid_argument on an empty workload list or a negative count. *)

type 'a placement = {
  request : request;
  core : int;
  start : int;  (** cycle at which the core picked the request up *)
  finish : int;
  payload : 'a;
}

val dispatch :
  ncores:int ->
  run:(request -> core:int -> start:int -> int * 'a) ->
  request list ->
  'a placement list * int array
(** [dispatch ~ncores ~run requests] executes each request on its chosen
    core via [run] (which returns the request's cycle cost plus an arbitrary
    payload) and returns the placements in stream order together with the
    final per-core busy times. [run] is called sequentially, in stream
    order — concurrency exists only in the cycle accounting.
    @raise Invalid_argument on [ncores < 1] or a negative cycle cost. *)

val jain_fairness : float array -> float
(** Jain's index: 1.0 = perfectly balanced, 1/n = maximally skewed; 1.0 on
    degenerate (empty or all-zero) input. *)
