(** The N-core co-run simulator.

    Each core owns a private pipeline, data-cache hierarchy, hash/value
    registers and L1 LUT (all reused from the single-core model); every
    core's L2-level memoization traffic goes to one {!Shared_lut} carved
    from the shared LLC, with bank/port contention charged by an
    {!Arbiter} and requests placed by {!Schedule}. A fixed request stream
    keeps the LUTs warm across requests, which is where the co-run
    throughput of the paper's Section 6 comes from.

    Determinism contract: with a fixed root seed, [run] and [run_matrix]
    are pure functions of their configuration — reports are byte-identical
    for any [--jobs] setting, and a 1-core free-for-all co-run of a single
    workload reproduces [Runner.run (Hw_memo ...)] bit for bit. *)

type config = {
  ncores : int;
  l1_bytes : int;  (** per-core private L1 LUT *)
  shared_l2_bytes : int;  (** the shared LUT carved from the LLC *)
  partition : Shared_lut.partition;
  banks : int;
  ports : int;  (** ports per bank of the shared LUT *)
  workloads : string list;  (** the mix, round-robined into the stream *)
  requests : int;
  variant : Axmemo_workloads.Workload.variant;
  retain_luts : bool;
      (** keep LUT contents warm across requests by stripping the trailing
          per-region [Invalidate]s the compiler emits for standalone runs
          (mid-program invalidates are untouched); off, every request keeps
          the standalone epilogue and a 1-core co-run replays [Runner.run]
          bit for bit *)
  faults : Axmemo_faults.Fault_model.spec option;
      (** when set, upsets strike the shared LUT's storage *)
  l3 : Axmemo_tier.Dram_lut.config option;
      (** when set, a DRAM-resident LUT tier sits behind the shared level:
          shared-LUT victims spill into it, every core's SRAM miss probes
          it (row-buffer-priced through the pipeline's lookup charge), and
          its relaxed payload cells decay through the fault injector when
          the spec enables site [l3.payload] *)
}

val default : config
(** 2 cores, 8 KiB L1 / 512 KiB shared, free-for-all, 8 banks x 1 port,
    8 blackscholes requests, warm LUTs, no faults, no L3 tier. *)

val label : config -> string
(** Appends [",l3=<n>KB"] only when the tier is configured, so tier-less
    labels (and everything keyed off them) are unchanged. *)

(** {1 The cluster}

    Exposed mainly for tests that need to poke a core's memoization hooks
    directly. *)

type cluster

type l2_port_maker =
  core:int -> now:(unit -> int) -> local:Axmemo_memo.Memo_unit.shared_l2 ->
  Axmemo_memo.Memo_unit.shared_l2
(** How a multi-node layer interposes on a core's shared-L2 traffic: called
    once per core at cluster creation with the core id, the core's absolute
    cycle clock, and the node-local port (which already records bank
    arbitration); the returned port is what the unit talks to. *)

val create_cluster :
  ?metrics:bool ->
  ?profile:bool ->
  ?l2_port:l2_port_maker ->
  ?on_invalidate:(core:int -> lut:int -> at:int -> unit) ->
  config ->
  cluster
(** Builds the cores, the shared LUT and the arbiter. Every workload's
    logical LUT ids are renumbered onto a disjoint range (mix order), so a
    mixed stream never aliases; single-workload mixes keep their original
    ids. [metrics] attaches one registry per core (the unit's instruments)
    plus a cluster registry (the shared LUT's). [profile] attaches one
    {!Axmemo_obs.Profile} collector per core over the mix's remapped
    regions, with shared-LUT evictions broadcast to every collector.
    [?l2_port] lets the sharded-cluster layer redirect shared-level traffic
    (absent, units talk to the node-local level exactly as before);
    [?on_invalidate] fires after each local invalidate broadcast — with the
    issuing core, the LUT id, and the absolute issue cycle — so a directory
    can issue cross-node invalidations. Neither default changes any
    behaviour.
    @raise Invalid_argument on an unknown benchmark, an empty mix, fewer
    than one core, or a mix needing more than 8 logical LUTs. *)

val memo_hooks : cluster -> core:int -> Axmemo_ir.Interp.memo_hooks
(** The core's own hooks with [invalidate] wrapped to broadcast: the
    issuing unit drops its L1 and the shared level, the wrapper drops every
    {e other} core's private L1 so no stale private copy survives. With a
    metrics registry attached, the broadcast counts one
    [corun.invalidate.broadcasts] event plus, per peer core,
    [corun.invalidate.delivered.core<i>] (the peer held the LUT) or
    [corun.invalidate.filtered.core<i>] (it held nothing — the message was
    pure overhead). The family is created lazily on the first event, so
    invalidate-free runs keep byte-identical metrics snapshots. *)

val collectors : cluster -> Axmemo_obs.Profile.t array option
(** The live per-core profile collectors (creation order), when the cluster
    was built with [~profile:true] — the cluster layer marks remote
    invalidations on them. *)

val core_unit : cluster -> core:int -> Axmemo_memo.Memo_unit.t
val shared_lut : cluster -> Shared_lut.t

val dram_lut : cluster -> Axmemo_tier.Dram_lut.t option
(** The cluster's DRAM tier, when the config asked for one. *)

val capture_snapshot : cluster -> Axmemo_tier.Snapshot.t
(** Serialize every LUT level's warm contents: sections ["l1.<core>"] per
    private L1, ["l2"] the shared level, ["l3"] the DRAM tier (when
    attached), each ordered oldest-first so a restore reproduces recency
    state. Deterministic for a deterministic run. *)

val restore_snapshot : cluster -> Axmemo_tier.Snapshot.t -> int
(** Replay a snapshot's sections into a freshly created cluster (before any
    request runs); returns the number of entries restored. Sections that
    do not match the cluster's shape (extra cores, an [l3] section with no
    tier attached) are skipped, so a snapshot from a wider configuration
    degrades gracefully. Restoring draws no fault events and leaves
    telemetry counters untouched. DRAM-tier sections go through
    {!Axmemo_tier.Dram_lut.bulk_fill} (row-sorted batch warming; identical
    final state). *)

val restore_snapshot_stats : cluster -> Axmemo_tier.Snapshot.t -> int * int * int
(** Like {!restore_snapshot} but also returns the DRAM tier's batch-warming
    accounting: [(restored, amortised, serial)] row activations — what the
    row-sorted fill cost vs an entry-at-a-time replay. Both are 0 when the
    snapshot has no [l3] section or no tier is attached. *)

(** {2 Serve-layer access}

    The open-loop service model ({!Axmemo_serve.Serve}) drives a cluster
    request by request through its own dispatcher, so per-request
    execution, arbitration settlement and the metric flush/snapshot step
    are exposed individually. [run] below composes exactly these. *)

val exec_request :
  cluster -> workload:string -> core:int -> start:int -> Axmemo.Runner.result
(** Execute one invocation of [workload] on [core] with the core's cycle
    base set to [start] — the per-request step of [run], exposed for
    open-loop dispatchers. LUT/cache warm state carries over between calls
    exactly as inside [run]; callers must issue requests in their
    dispatcher's canonical order for results to stay deterministic.
    @raise Invalid_argument when [workload] is not in the cluster's mix. *)

val settle_arbiter : cluster -> Arbiter.settlement
(** Post-hoc settlement of every shared-LUT access recorded so far (see
    {!Arbiter.settle}); call once, after the last request. *)

val flush_metrics : cluster -> unit
(** Mirror each core unit's and the shared LUT's cumulative stats into
    their registries — required before {!cluster_snapshots}. *)

val cluster_snapshots : cluster -> (string * Axmemo_telemetry.Registry.snapshot) list
(** The ["core<i>"] and ["cluster"] registry snapshots (empty list unless
    the cluster was created with [~metrics:true]). *)

(** {1 Running} *)

type request_run = {
  rid : int;
  workload : string;
  core : int;
  start : int;
  finish : int;
  result : Axmemo.Runner.result;
}

type core_summary = {
  core : int;
  served : int;
  busy_cycles : int;  (** execution only *)
  contention_cycles : int;  (** arbitration stalls charged at settlement *)
  retried : int;
  finish_cycles : int;  (** busy + contention *)
  lookups : int;
  hits : int;
  hit_rate : float;
  baseline_cycles : int;  (** un-memoized single-core cost of its requests *)
  speedup : float;  (** baseline over (busy + contention); always finite *)
  way_range : int * int;  (** final shared-LUT allocation *)
  shadow_hits : int;
}

type l3_summary = {
  l3_probes : int;
  l3_tier_hits : int;
  l3_misses : int;
  l3_spills : int;  (** shared-level victims absorbed (posted writes) *)
  l3_evictions : int;
  l3_row_activations : int;
  l3_row_hits : int;
  l3_corrupted_reads : int;  (** reads that exposed a decayed relaxed bit *)
  l3_occupancy : int;
  l3_capacity : int;
}

type outcome = {
  cfg : config;
  requests : request_run list;
  cores : core_summary array;
  makespan_cycles : int;
  throughput_rps : float;  (** requests per simulated second *)
  speedup : float;  (** sum of baselines over the makespan; always finite *)
  aggregate_hit_rate : float;
  fairness : float;  (** Jain's index over per-core finish cycles *)
  shared_accesses : int;
  contended_accesses : int;
  contention_cycles : int;
  contention_pj : float;  (** re-issued probes at the L2 access energy *)
  repartitions : int;
  shared_occupancy : int;
  coherence_keys : int;
      (** (lut, key) pairs simultaneously present in several structures *)
  coherence_divergent : int;  (** of those, how many hold unequal payloads *)
  l3 : l3_summary option;
      (** DRAM tier aggregate; [None] unless the config asked for the tier.
          The coherence counts above deliberately exclude the tier — its
          relaxed payload cells are approximate by contract. *)
  faults : Axmemo_faults.Injector.stats option;
  snapshots : (string * Axmemo_telemetry.Registry.snapshot) list;
      (** ["core<i>"] per-core registries, ["cluster"] the shared LUT's;
          empty unless [run ~metrics:true] *)
  profiles : Axmemo_obs.Profile.snapshot array option;
      (** per-core attribution profiles (core order), with shared-LUT
          arbitration stalls already charged back to each core's regions;
          [None] unless [run ~profile:true]. Merge with
          {!Axmemo_obs.Profile.merge} for the cluster view. *)
}

val run_keep : ?metrics:bool -> ?profile:bool -> config -> outcome * cluster
(** [run], but also hands back the cluster with its warm end-of-run LUT
    state — the closed-stream warmer behind [axmemo snapshot save]
    ({!capture_snapshot} the returned cluster). *)

val run : ?metrics:bool -> ?profile:bool -> config -> outcome
(** Simulates one co-run: streams the requests, dispatches them with
    {!Schedule.dispatch}, settles arbitration, and measures coherence
    divergence across all LUT levels. Baseline cycles come from a fresh
    un-memoized [Runner.run Baseline] per workload. With [~profile:true]
    each core carries an {!Axmemo_obs.Profile} collector over the mix's
    remapped region list; all scheduling and cycle results are
    bit-identical either way. *)

val run_matrix : ?jobs:int -> ?profile:bool -> config list -> outcome list
(** Runs each configuration as one independent cell (with metrics) fanned
    over a domain pool; results are in input order and byte-identical to a
    serial run. *)

(** {1 Reports} *)

val default_series_cap : int

val report_runs :
  ?series_cap:int ->
  ?per_core:bool ->
  outcome list ->
  Axmemo_telemetry.Report.run list
(** The per-registry report rows ([core<i>] and [cluster] per outcome),
    series decimated to [series_cap]; what {!report} embeds and what CSV
    export flattens. [~per_core:false] keeps only the cluster registries —
    per-core aggregates stay available in the outcome block, so a big
    matrix can ship a small report. When the outcome carries profiles,
    each [core<i>] row embeds that core's ["profile"] section and the
    [cluster] row the {!Axmemo_obs.Profile.merge} of all of them. *)

val report :
  ?series_cap:int -> ?per_core:bool -> outcome list -> Axmemo_util.Json.t
(** Bounded report: telemetry series are decimated to [series_cap] samples
    ({!Axmemo_telemetry.Registry.decimate}) and only the head of each
    schedule is listed row by row, so the file stays small no matter how
    long the streams were. *)

val write_report :
  ?series_cap:int -> ?per_core:bool -> string -> outcome list -> unit
