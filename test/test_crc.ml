(* Tests for the CRC engines: published check values, serial/parallel
   agreement, incremental streaming. *)

module Poly = Axmemo_crc.Poly
module Engine = Axmemo_crc.Engine
module Cost = Axmemo_crc.Cost

let hex = Alcotest.testable (fun ppf v -> Format.fprintf ppf "0x%LX" v) Int64.equal

let test_self_tests () =
  List.iter
    (fun p ->
      Alcotest.(check bool) (p.Poly.name ^ " self test") true (Engine.self_test p))
    Poly.all

let test_known_vectors () =
  Alcotest.check hex "crc32(empty)" 0L (Engine.digest_string Poly.crc32 "");
  Alcotest.check hex "crc32(a)" 0xE8B7BE43L (Engine.digest_string Poly.crc32 "a");
  Alcotest.check hex "crc32(abc)" 0x352441C2L (Engine.digest_string Poly.crc32 "abc");
  Alcotest.check hex "crc32c(abc)" 0x364B3FB7L (Engine.digest_string Poly.crc32c "abc")

let test_serial_matches_table_driven () =
  List.iter
    (fun p ->
      List.iter
        (fun s ->
          Alcotest.check hex
            (Printf.sprintf "%s of %S" p.Poly.name s)
            (Engine.digest_serial p s) (Engine.digest_string p s))
        [ ""; "x"; "hello world"; String.make 100 '\xFF'; "\x00\x01\x02\x03" ])
    Poly.all

let test_incremental_equals_oneshot () =
  let p = Poly.crc32 in
  let s = "the quick brown fox jumps over the lazy dog" in
  let t = Engine.start p in
  Engine.feed_string t (String.sub s 0 10);
  Engine.feed_string t (String.sub s 10 (String.length s - 10));
  Alcotest.check hex "split feed" (Engine.digest_string p s) (Engine.value t)

let test_value_non_destructive () =
  let t = Engine.start Poly.crc32 in
  Engine.feed_string t "abc";
  let v1 = Engine.value t in
  let v2 = Engine.value t in
  Alcotest.check hex "value is pure" v1 v2;
  Engine.feed_string t "d";
  Alcotest.check hex "continues correctly" (Engine.digest_string Poly.crc32 "abcd")
    (Engine.value t)

let test_copy_snapshots () =
  let t = Engine.start Poly.crc32 in
  Engine.feed_string t "ab";
  let snap = Engine.copy t in
  Engine.feed_string t "cd";
  Engine.feed_string snap "cd";
  Alcotest.check hex "copy diverges identically" (Engine.value t) (Engine.value snap)

let test_feed_int64_little_endian () =
  let t1 = Engine.start Poly.crc32 in
  Engine.feed_int64 t1 ~width:4 0x64636261L;
  (* "abcd" *)
  Alcotest.check hex "matches string bytes" (Engine.digest_string Poly.crc32 "abcd")
    (Engine.value t1)

let test_bytes_fed () =
  let t = Engine.start Poly.crc32 in
  Engine.feed_int64 t ~width:8 0L;
  Engine.feed_byte t 0xFF;
  Alcotest.(check int) "9 bytes" 9 (Engine.bytes_fed t)

let test_table_structure () =
  let tbl = Engine.table Poly.crc32 in
  Alcotest.(check int) "256 entries" 256 (Array.length tbl);
  Alcotest.check hex "entry 0 is 0" 0L tbl.(0);
  (* table is cached *)
  Alcotest.(check bool) "cached" true (Engine.table Poly.crc32 == tbl)

let test_sensitivity_every_bit () =
  (* Flipping any single input bit changes the CRC (linearity of CRC). *)
  let p = Poly.crc32 in
  let base = Engine.digest_string p "AXMEMO" in
  String.iteri
    (fun i _ ->
      for bit = 0 to 7 do
        let flipped = Bytes.of_string "AXMEMO" in
        Bytes.set flipped i (Char.chr (Char.code (Bytes.get flipped i) lxor (1 lsl bit)));
        Alcotest.(check bool) "bit flip changes CRC" false
          (Engine.digest_string p (Bytes.to_string flipped) = base)
      done)
    "AXMEMO"

let test_cost_model () =
  Alcotest.(check int) "3 per byte" 3 Cost.software_instructions_per_byte;
  Alcotest.(check bool) "at least 12 for 4 bytes (paper)" true
    (Cost.software_instructions ~input_bytes:4 >= 12)

(* properties *)

let gen_string = QCheck.string_of_size (QCheck.Gen.int_range 0 200)

let prop_serial_equals_parallel =
  QCheck.Test.make ~name:"serial = table-driven (all polys)" ~count:100 gen_string
    (fun s ->
      List.for_all (fun p -> Engine.digest_serial p s = Engine.digest_string p s) Poly.all)

let prop_incremental_any_split =
  QCheck.Test.make ~name:"incremental = one-shot at any split" ~count:200
    QCheck.(pair gen_string (int_bound 1000))
    (fun (s, k) ->
      let k = if String.length s = 0 then 0 else k mod (String.length s + 1) in
      let t = Engine.start Poly.crc32 in
      Engine.feed_string t (String.sub s 0 k);
      Engine.feed_string t (String.sub s k (String.length s - k));
      Engine.value t = Engine.digest_string Poly.crc32 s)

let prop_feed_string_equals_feed_byte =
  (* Pins the slice-by-8 feed_string path to the per-byte fold, for every
     polynomial, across an arbitrary split (so chunk boundaries land at
     every alignment). *)
  QCheck.Test.make ~name:"feed_string = per-byte feed_byte at any split" ~count:200
    QCheck.(pair gen_string (int_bound 1000))
    (fun (s, k) ->
      let k = if String.length s = 0 then 0 else k mod (String.length s + 1) in
      List.for_all
        (fun p ->
          let sliced = Engine.start p in
          Engine.feed_string sliced (String.sub s 0 k);
          Engine.feed_string sliced (String.sub s k (String.length s - k));
          let byte_wise = Engine.start p in
          String.iter (fun c -> Engine.feed_byte byte_wise (Char.code c)) s;
          Engine.value sliced = Engine.value byte_wise
          && Engine.bytes_fed sliced = Engine.bytes_fed byte_wise)
        Poly.all)

let prop_width_mask =
  QCheck.Test.make ~name:"digest fits the declared width" ~count:200 gen_string
    (fun s ->
      List.for_all
        (fun p ->
          let v = Engine.digest_string p s in
          Int64.logand v (Int64.lognot (Poly.mask p)) = 0L)
        Poly.all)

let prop_distinct_inputs_rarely_collide =
  QCheck.Test.make ~name:"no trivial collisions on short strings" ~count:200
    QCheck.(pair gen_string gen_string)
    (fun (a, b) ->
      QCheck.assume (a <> b);
      (* CRC-64 over short distinct strings: collision probability ~2^-64. *)
      Engine.digest_string Poly.crc64_xz a <> Engine.digest_string Poly.crc64_xz b)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_serial_equals_parallel; prop_incremental_any_split;
      prop_feed_string_equals_feed_byte; prop_width_mask;
      prop_distinct_inputs_rarely_collide ]

let () =
  Alcotest.run "crc"
    [
      ( "engine",
        [
          Alcotest.test_case "self tests" `Quick test_self_tests;
          Alcotest.test_case "known vectors" `Quick test_known_vectors;
          Alcotest.test_case "serial = table" `Quick test_serial_matches_table_driven;
          Alcotest.test_case "incremental" `Quick test_incremental_equals_oneshot;
          Alcotest.test_case "value non destructive" `Quick test_value_non_destructive;
          Alcotest.test_case "copy" `Quick test_copy_snapshots;
          Alcotest.test_case "feed_int64" `Quick test_feed_int64_little_endian;
          Alcotest.test_case "bytes fed" `Quick test_bytes_fed;
          Alcotest.test_case "table structure" `Quick test_table_structure;
          Alcotest.test_case "every bit matters" `Quick test_sensitivity_every_bit;
          Alcotest.test_case "software cost model" `Quick test_cost_model;
        ] );
      ("properties", qsuite);
    ]
