(* Tests for the energy model and the Table 5 synthesis constants. *)

module Syn = Axmemo_energy.Synthesis
module Model = Axmemo_energy.Model
module Pipeline = Axmemo_cpu.Pipeline
module Hierarchy = Axmemo_cache.Hierarchy
module MU = Axmemo_memo.Memo_unit
module Ir = Axmemo_ir.Ir
module Interp = Axmemo_ir.Interp
module Memory = Axmemo_ir.Memory

let test_table5_rows () =
  Alcotest.(check int) "five rows" 5 (List.length Syn.rows);
  List.iter
    (fun (r : Syn.unit_row) ->
      Alcotest.(check bool) (r.unit_name ^ " positive") true
        (r.area_mm2 > 0.0 && r.energy_pj > 0.0 && r.latency_ns > 0.0))
    Syn.rows;
  (* Paper values carried verbatim. *)
  Alcotest.(check (float 1e-9)) "crc32 energy" 2.9143 Syn.crc32_unit.energy_pj;
  Alcotest.(check (float 1e-9)) "16KB lut energy" 7.2340 Syn.lut_16kb.energy_pj

let test_lut_row_selection () =
  Alcotest.(check string) "4k" "LUT (4KB)" (Syn.lut_row_for ~bytes:4096).unit_name;
  Alcotest.(check string) "8k" "LUT (8KB)" (Syn.lut_row_for ~bytes:8192).unit_name;
  Alcotest.(check string) "16k" "LUT (16KB)" (Syn.lut_row_for ~bytes:16384).unit_name

let test_timing_under_half_ns () =
  (* The paper keeps the 2 GHz clock because every unit is under 0.5 ns. *)
  List.iter
    (fun (r : Syn.unit_row) ->
      Alcotest.(check bool) (r.unit_name ^ " < 0.5ns") true (r.latency_ns < 0.5))
    Syn.rows

let test_area_overhead_matches_paper () =
  let o = Syn.area_overhead ~l1_lut_bytes:(16 * 1024) in
  (* Paper: 2.08% with the largest L1 LUT. *)
  Alcotest.(check bool) "close to 2.1%" true (o > 0.015 && o < 0.025);
  let smaller = Syn.area_overhead ~l1_lut_bytes:4096 in
  Alcotest.(check bool) "smaller LUT, smaller overhead" true (smaller < o)

(* Drive a tiny program to obtain consistent stats records. *)
let run_stats instrs =
  let fn =
    {
      Ir.fname = "p";
      params = [||];
      ret_tys = [||];
      nregs = 4;
      pure = false;
      blocks = [| { Ir.label = "entry"; instrs = Array.of_list instrs; term = Ret [||] } |];
    }
  in
  let program = { Ir.funcs = [| fn |] } in
  let hierarchy = Hierarchy.(create hpi_default) in
  let pipe = Pipeline.create ~program ~hierarchy () in
  let t = Interp.create ~hook:(Pipeline.hook pipe) ~program ~mem:(Memory.create ()) () in
  ignore (Interp.run t "p" [||]);
  (Pipeline.stats pipe, hierarchy)

let test_model_breakdown_sums () =
  let stats, hierarchy =
    run_stats
      [
        Ir.Const { dst = 0; ty = I32; value = VI 1L };
        Ir.Load { ty = I32; dst = 1; base = Imm (VI 0L); offset = 0 };
      ]
  in
  let b = Model.of_run ~pipeline:stats ~hierarchy ~memo:None ~l1_lut_bytes:8192 () in
  Alcotest.(check (float 1e-6)) "total = parts minus dram"
    (b.pipeline_pj +. b.cache_pj +. b.memo_pj +. b.protection_pj +. b.leakage_pj)
    b.total_pj;
  Alcotest.(check bool) "dram accounted separately" true (b.dram_pj > 0.0);
  Alcotest.(check (float 1e-9)) "no memo hardware" 0.0 b.memo_pj;
  Alcotest.(check (float 1e-9)) "no protection by default" 0.0 b.protection_pj;
  let bp =
    Model.of_run ~protection_pj:42.0 ~pipeline:stats ~hierarchy ~memo:None
      ~l1_lut_bytes:8192 ()
  in
  Alcotest.(check (float 1e-6)) "protection charge lands in the total"
    (b.total_pj +. 42.0) bp.total_pj

let test_model_memo_energy () =
  let stats, hierarchy = run_stats [ Ir.Const { dst = 0; ty = I32; value = VI 1L } ] in
  let unit = MU.create MU.default_config [ { MU.lut_id = 0; payload = Axmemo_ir.Payload.Pf32 } ] in
  let h = MU.hooks unit in
  h.send ~lut:0 ~ty:Ir.F32 ~trunc:0 (Ir.VF 1.0);
  ignore (h.lookup ~lut:0);
  h.update ~lut:0 1L;
  let b =
    Model.of_run ~pipeline:stats ~hierarchy ~memo:(Some (MU.stats unit))
      ~l1_lut_bytes:8192 ()
  in
  Alcotest.(check bool) "memo energy positive" true (b.memo_pj > 0.0)

let test_model_monotone_in_cycles () =
  let s1, h1 = run_stats [ Ir.Const { dst = 0; ty = I32; value = VI 1L } ] in
  let s2, h2 =
    run_stats
      (List.init 50 (fun i -> Ir.Const { dst = 0; ty = I32; value = VI (Int64.of_int i) }))
  in
  let b1 = Model.of_run ~pipeline:s1 ~hierarchy:h1 ~memo:None ~l1_lut_bytes:8192 () in
  let b2 = Model.of_run ~pipeline:s2 ~hierarchy:h2 ~memo:None ~l1_lut_bytes:8192 () in
  Alcotest.(check bool) "more work, more energy" true (b2.total_pj > b1.total_pj)

let test_quality_monitor_constants () =
  Alcotest.(check (float 1e-9)) "area um2" 16.8 Syn.quality_monitor_area_um2;
  Alcotest.(check (float 1e-9)) "power uw" 7.47 Syn.quality_monitor_power_uw;
  Alcotest.(check bool) "latency < 1ns" true (Syn.quality_monitor_latency_ns < 1.0)

let () =
  Alcotest.run "energy"
    [
      ( "synthesis",
        [
          Alcotest.test_case "table 5 rows" `Quick test_table5_rows;
          Alcotest.test_case "lut row selection" `Quick test_lut_row_selection;
          Alcotest.test_case "sub-0.5ns latencies" `Quick test_timing_under_half_ns;
          Alcotest.test_case "area overhead" `Quick test_area_overhead_matches_paper;
          Alcotest.test_case "monitor constants" `Quick test_quality_monitor_constants;
        ] );
      ( "model",
        [
          Alcotest.test_case "breakdown sums" `Quick test_model_breakdown_sums;
          Alcotest.test_case "memo energy" `Quick test_model_memo_energy;
          Alcotest.test_case "monotone" `Quick test_model_monotone_in_cycles;
        ] );
    ]
