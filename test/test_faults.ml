(* Tests for the fault-injection subsystem: the model/injector/protection
   building blocks, the LUT-level protection semantics, the no-injector
   bit-identity guarantee (pinned against the pre-subsystem simulator), and
   the campaign's serial/parallel byte-identity. *)

module Fault_model = Axmemo_faults.Fault_model
module Injector = Axmemo_faults.Injector
module Protection = Axmemo_faults.Protection
module Lut = Axmemo_memo.Lut
module Runner = Axmemo.Runner
module Campaign = Axmemo_resilience.Campaign
module W = Axmemo_workloads
module Json = Axmemo_util.Json
module Rng = Axmemo_util.Rng

(* --- fault model --- *)

let test_spec_validation () =
  let ok = { Fault_model.default with rate = 0.5 } in
  Fault_model.validate ok;
  let rejects name spec =
    Alcotest.(check bool) name true
      (try
         Fault_model.validate spec;
         false
       with Invalid_argument _ -> true)
  in
  rejects "rate > 1" { ok with rate = 1.5 };
  rejects "negative rate" { ok with rate = -0.1 };
  rejects "empty sites" { ok with sites = [] };
  rejects "zero seed" { ok with seed = 0L }

let test_site_names_roundtrip () =
  List.iter
    (fun site ->
      let name = Fault_model.site_name site in
      Alcotest.(check bool) (name ^ " round-trips") true
        (Fault_model.site_of_string name = Some site))
    Fault_model.all_sites;
  Alcotest.(check bool) "unknown site" true (Fault_model.site_of_string "l3.tag" = None);
  List.iter
    (fun k ->
      Alcotest.(check bool) (Fault_model.kind_name k) true
        (Fault_model.kind_of_string (Fault_model.kind_name k) = Some k))
    [ Fault_model.Transient; Stuck_at_0; Stuck_at_1 ];
  List.iter
    (fun b ->
      Alcotest.(check bool) (Fault_model.basis_name b) true
        (Fault_model.basis_of_string (Fault_model.basis_name b) = Some b))
    [ Fault_model.Per_access; Per_cycle ]

(* --- injector --- *)

let spec_all rate = { Fault_model.default with rate; seed = 7L }

let test_injector_deterministic () =
  (* Two injectors with the same spec corrupt an identical word sequence
     identically — the replay contract behind --jobs byte-identity. *)
  let a = Injector.create (spec_all 0.3) and b = Injector.create (spec_all 0.3) in
  for i = 0 to 499 do
    let v = Int64.of_int (i * 977) in
    let ca = Injector.corrupt a Fault_model.L1_payload ~width:64 v
    and cb = Injector.corrupt b Fault_model.L1_payload ~width:64 v in
    if ca <> cb then Alcotest.failf "diverged at draw %d" i
  done;
  Alcotest.(check bool) "same counters" true (Injector.stats a = Injector.stats b);
  Alcotest.(check bool) "some faults fired" true ((Injector.stats a).injected_total > 0)

let test_injector_width_respected () =
  let inj = Injector.create (spec_all 1.0) in
  for _ = 1 to 200 do
    let c = Injector.corrupt inj Fault_model.Hvr ~width:8 0L in
    Alcotest.(check bool) "flip stays under width 8" true
      (Int64.unsigned_compare c 256L < 0)
  done

let test_injector_disabled_site_is_free () =
  (* A disabled site draws nothing: the stream stays untouched, so enabled
     sites replay identically whether or not other sites are probed. *)
  let only_payload = { (spec_all 1.0) with sites = [ Fault_model.L1_payload ] } in
  let inj = Injector.create only_payload in
  let before = Injector.corrupt inj Fault_model.L1_payload ~width:64 0L in
  let inj2 = Injector.create only_payload in
  for _ = 1 to 50 do
    (* Disabled-site probes between the two draws must not consume stream. *)
    ignore (Injector.corrupt inj2 Fault_model.L2_tag ~width:32 5L)
  done;
  let after = Injector.corrupt inj2 Fault_model.L1_payload ~width:64 0L in
  Alcotest.(check int64) "stream position unaffected" before after;
  Alcotest.(check int) "disabled site never fires" 0
    (Injector.injected_at inj2 Fault_model.L2_tag)

let test_stuck_at_semantics () =
  (* Stuck-at-1 can only set bits; stuck-at-0 can only clear them. A strike
     on an already-stuck bit changes nothing and is not counted. *)
  let s1 = Injector.create { (spec_all 1.0) with kind = Fault_model.Stuck_at_1 } in
  for _ = 1 to 100 do
    let c = Injector.corrupt s1 Fault_model.L1_tag ~width:16 0xFFFFL in
    Alcotest.(check int64) "all-ones unchanged by stuck-at-1" 0xFFFFL c
  done;
  Alcotest.(check int) "no state change, no count" 0
    (Injector.injected_at s1 Fault_model.L1_tag);
  let s0 = Injector.create { (spec_all 1.0) with kind = Fault_model.Stuck_at_0 } in
  let c = Injector.corrupt s0 Fault_model.L1_tag ~width:16 0xFFFFL in
  Alcotest.(check bool) "stuck-at-0 cleared exactly one bit" true
    (Int64.logand c (Int64.lognot 0xFFFFL) = 0L
    && Axmemo_util.Bits.popcount64 (Int64.logxor c 0xFFFFL) = 1)

let test_per_cycle_integrates_clock () =
  let spec = { (spec_all 0.01) with basis = Fault_model.Per_cycle; seed = 11L } in
  let inj = Injector.create spec in
  let now = ref 0 in
  Injector.set_clock inj (fun () -> !now);
  (* 100 accesses spread over 100k cycles at 1e-2/cycle: certain to fire. *)
  for i = 1 to 100 do
    now := i * 1000;
    ignore (Injector.corrupt inj Fault_model.L1_payload ~width:64 0L)
  done;
  Alcotest.(check bool) "per-cycle faults fired" true
    ((Injector.stats inj).injected_total > 0)

(* --- protection --- *)

let test_protection_energy () =
  Alcotest.(check (float 0.0)) "unprotected is free" 0.0
    (Protection.energy_pj Protection.Unprotected ~lookups:1000 ~updates:500
       ~corrections:10);
  let parity =
    Protection.energy_pj Protection.Parity ~lookups:1000 ~updates:500 ~corrections:0
  in
  let secded =
    Protection.energy_pj Protection.Secded ~lookups:1000 ~updates:500 ~corrections:0
  in
  Alcotest.(check bool) "parity costs something" true (parity > 0.0);
  Alcotest.(check bool) "secded costs more than parity" true (secded > parity);
  let with_corr =
    Protection.energy_pj Protection.Secded ~lookups:1000 ~updates:500 ~corrections:50
  in
  Alcotest.(check (float 1e-9)) "corrections are a surcharge"
    (50.0 *. Protection.secded_correct_pj)
    (with_corr -. secded)

let test_storage_overhead () =
  Alcotest.(check int) "none" 0
    (Protection.storage_overhead_bits Protection.Unprotected ~entry_bits:97);
  Alcotest.(check int) "parity is one bit" 1
    (Protection.storage_overhead_bits Protection.Parity ~entry_bits:97);
  Alcotest.(check int) "secded r+1 for 97 bits" 8
    (Protection.storage_overhead_bits Protection.Secded ~entry_bits:97)

(* --- LUT-level protection semantics --- *)

(* One 4-way set, payload-only faults at rate 1.0: every probe corrupts one
   payload bit per way, so the very first lookup exercises the protection
   path deterministically. *)
let lut_under_fire protection =
  let spec =
    {
      Fault_model.seed = 21L;
      kind = Fault_model.Transient;
      basis = Fault_model.Per_access;
      rate = 1.0;
      sites = [ Fault_model.L1_payload ];
      protection;
    }
  in
  let inj = Injector.create spec in
  let l = Lut.create ~faults:(inj, Fault_model.l1_sites) ~size_bytes:64 () in
  Lut.insert l ~lut_id:0 ~key:5L ~payload:0xABCDL None;
  (inj, l)

let test_unprotected_sdc () =
  let inj, l = lut_under_fire Protection.Unprotected in
  match Lut.lookup l ~lut_id:0 ~key:5L with
  | None -> Alcotest.fail "entry vanished without protection"
  | Some v ->
      Alcotest.(check bool) "payload corrupted" true (v <> 0xABCDL);
      Alcotest.(check bool) "counted as SDC" true ((Injector.stats inj).sdc_hits = 1)

let test_parity_detects_and_invalidates () =
  let inj, l = lut_under_fire Protection.Parity in
  Alcotest.(check (option int64)) "odd corruption reads as a miss" None
    (Lut.lookup l ~lut_id:0 ~key:5L);
  Alcotest.(check bool) "detection counted" true
    ((Injector.stats inj).parity_detected >= 1);
  Alcotest.(check int) "no SDC escaped" 0 (Injector.stats inj).sdc_hits;
  Alcotest.(check int) "entry invalidated" 0 (Lut.occupancy l)

let test_secded_corrects () =
  let inj, l = lut_under_fire Protection.Secded in
  Alcotest.(check (option int64)) "single flip corrected, clean hit" (Some 0xABCDL)
    (Lut.lookup l ~lut_id:0 ~key:5L);
  Alcotest.(check bool) "correction counted" true
    ((Injector.stats inj).secded_corrected >= 1);
  Alcotest.(check int) "no SDC" 0 (Injector.stats inj).sdc_hits

(* --- no-injector bit-identity (pinned against the pre-faults simulator) --- *)

let test_fault_free_pinned () =
  (* Exact numbers recorded from the simulator before lib/faults existed:
     any drift means the subsystem is not observation-only when absent. *)
  let _, make = Option.get (W.Registry.find "fft") in
  let r = Runner.run Runner.l1_8k_l2_512k (make W.Workload.Sample) in
  Alcotest.(check int) "cycles" 475124 r.cycles;
  Alcotest.(check int) "lookups" 5120 r.lookups;
  Alcotest.(check int) "dyn_normal" 301853 r.dyn_normal;
  Alcotest.(check int) "dyn_memo" 15919 r.dyn_memo;
  Alcotest.(check bool) "no fault stats" true (r.faults = None);
  Alcotest.(check bool) "no crash" true (r.crashed = None);
  let _, make_k = Option.get (W.Registry.find "kmeans") in
  let rk = Runner.run Runner.l1_8k_l2_512k (make_k W.Workload.Sample) in
  Alcotest.(check int) "kmeans cycles" 641539 rk.cycles

let test_rate_zero_injector_is_transparent () =
  (* An attached injector that never fires must not change the simulation:
     same cycles, hits and outputs as the plain configuration. *)
  let _, make = Option.get (W.Registry.find "fft") in
  let plain = Runner.run Runner.l1_8k_l2_512k (make W.Workload.Sample) in
  let cfg =
    Runner.Hw_custom
      {
        label = "rate0";
        unit_cfg =
          {
            Axmemo_memo.Memo_unit.default_config with
            l1_bytes = 8 * 1024;
            l2_bytes = Some (512 * 1024);
            faults = Some { Fault_model.default with seed = 3L };
          };
        approximate = true;
        crc_bytes_per_cycle = Axmemo_isa.Timing.crc_bytes_per_cycle;
      }
  in
  let r = Runner.run cfg (make W.Workload.Sample) in
  Alcotest.(check int) "cycles identical" plain.cycles r.cycles;
  Alcotest.(check int) "hits identical" plain.hits r.hits;
  Alcotest.(check bool) "outputs identical" true (plain.outputs = r.outputs);
  match r.faults with
  | None -> Alcotest.fail "injector stats missing"
  | Some s -> Alcotest.(check int) "nothing injected" 0 s.injected_total

(* --- campaign --- *)

let small_campaign () =
  {
    (Campaign.default ()) with
    rates = [ 1e-4; 1e-2 ];
    site_groups = [ ("lut", Fault_model.[ L1_tag; L1_payload; L1_valid; L1_lru ]) ];
  }

let fft_bench () = Option.get (W.Registry.find "fft")

let test_campaign_serial_parallel_identical () =
  let cfg = small_campaign () in
  let run jobs = Campaign.run ~jobs cfg [ fft_bench () ] ~variant:W.Workload.Sample in
  let serial = run 1 and parallel = run 4 in
  let render o =
    let path = Filename.temp_file "axmemo_faults" ".json" in
    Campaign.write_report o path;
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    s
  in
  Alcotest.(check string) "byte-identical reports" (render serial) (render parallel)

let test_campaign_resilience_trends () =
  let cfg = small_campaign () in
  let o = Campaign.run ~jobs:2 cfg [ fft_bench () ] ~variant:W.Workload.Sample in
  let pick rate prot =
    List.find
      (fun (m : Campaign.measurement) -> m.rate = rate && m.protection = prot)
      o.measurements
  in
  let low = pick 1e-4 Protection.Unprotected
  and high = pick 1e-2 Protection.Unprotected
  and parity = pick 1e-2 Protection.Parity
  and secded = pick 1e-2 Protection.Secded in
  Alcotest.(check bool) "more faults at the higher rate" true
    (high.injected > low.injected);
  Alcotest.(check bool) "unprotected SDC at the high rate" true (high.sdc_hits > 0);
  Alcotest.(check bool) "parity detects" true (parity.detected > 0);
  Alcotest.(check bool) "secded corrects" true (secded.corrected > 0);
  Alcotest.(check bool) "secded kills the SDC" true (secded.sdc_hits < high.sdc_hits);
  Alcotest.(check bool) "protection costs energy" true
    (secded.energy_overhead > 0.0 || secded.crashed <> None)

let test_campaign_report_shape () =
  let cfg = small_campaign () in
  let o = Campaign.run ~jobs:1 cfg [ fft_bench () ] ~variant:W.Workload.Sample in
  Alcotest.(check int) "measurements = rates x protections" 6
    (List.length o.measurements);
  Alcotest.(check int) "runs = refs + faulty cells" 8 (List.length o.runs);
  match Campaign.report o with
  | Json.Obj fields ->
      Alcotest.(check bool) "has fault_campaign" true
        (List.mem_assoc "fault_campaign" fields);
      Alcotest.(check bool) "has resilience" true (List.mem_assoc "resilience" fields)
  | _ -> Alcotest.fail "report is not an object"

(* --- root seed --- *)

let test_derive_stream_identity_without_root () =
  Alcotest.(check int64) "no root installed" 0L (Rng.root_seed ());
  Alcotest.(check int64) "derive_stream is the identity" 0x1234L
    (Rng.derive_stream 0x1234L)

let () =
  Alcotest.run "faults"
    [
      ( "model",
        [
          Alcotest.test_case "spec validation" `Quick test_spec_validation;
          Alcotest.test_case "name round-trips" `Quick test_site_names_roundtrip;
        ] );
      ( "injector",
        [
          Alcotest.test_case "deterministic" `Quick test_injector_deterministic;
          Alcotest.test_case "width respected" `Quick test_injector_width_respected;
          Alcotest.test_case "disabled site free" `Quick test_injector_disabled_site_is_free;
          Alcotest.test_case "stuck-at semantics" `Quick test_stuck_at_semantics;
          Alcotest.test_case "per-cycle basis" `Quick test_per_cycle_integrates_clock;
        ] );
      ( "protection",
        [
          Alcotest.test_case "energy model" `Quick test_protection_energy;
          Alcotest.test_case "storage overhead" `Quick test_storage_overhead;
          Alcotest.test_case "unprotected SDC" `Quick test_unprotected_sdc;
          Alcotest.test_case "parity detects" `Quick test_parity_detects_and_invalidates;
          Alcotest.test_case "secded corrects" `Quick test_secded_corrects;
        ] );
      ( "bit-identity",
        [
          Alcotest.test_case "fault-free pinned" `Quick test_fault_free_pinned;
          Alcotest.test_case "rate-0 injector transparent" `Quick
            test_rate_zero_injector_is_transparent;
          Alcotest.test_case "derive_stream identity" `Quick
            test_derive_stream_identity_without_root;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "serial = parallel" `Quick
            test_campaign_serial_parallel_identical;
          Alcotest.test_case "resilience trends" `Quick test_campaign_resilience_trends;
          Alcotest.test_case "report shape" `Quick test_campaign_report_shape;
        ] );
    ]
