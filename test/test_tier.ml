(* Tests for the tiered + persistent LUT storage subsystem: DRAM L3
   row-buffer pricing and per-row FIFO replacement, pLUTo bulk-probe
   amortisation, the approximate-payload criticality split, snapshot
   byte-format roundtrips (including LRU/FIFO recency preservation) and
   rejection of damaged files, cluster capture/restore, serve warm-start
   efficacy, and the L3-absent bit-identity guard. *)

module Dram = Axmemo_tier.Dram_lut
module Snapshot = Axmemo_tier.Snapshot
module Lut = Axmemo_memo.Lut
module Fault_model = Axmemo_faults.Fault_model
module Injector = Axmemo_faults.Injector
module Corun = Axmemo_multicore.Corun
module Serve = Axmemo_serve.Serve
module Arrival = Axmemo_serve.Arrival
module Json = Axmemo_util.Json
module W = Axmemo_workloads

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* A tiny geometry where the row layout is easy to reason about: one row of
   [slots] 16-byte entries, or [rows] such rows. *)
let tiny ?(rows = 1) ?(slots = 2) ?(exact = 64) () =
  {
    Dram.default with
    size_bytes = rows * slots * 16;
    row_bytes = slots * 16;
    exact_high_bits = exact;
  }

(* --- geometry & row-buffer pricing -------------------------------------- *)

let test_geometry () =
  let t = Dram.create (tiny ~rows:4 ~slots:8 ()) in
  Alcotest.(check int) "rows" 4 (Dram.rows t);
  Alcotest.(check int) "slots per row" 8 (Dram.slots_per_row t);
  Alcotest.(check int) "capacity" 32 (Dram.capacity_entries t);
  Alcotest.(check int) "empty" 0 (Dram.occupancy t);
  Alcotest.check_raises "ragged geometry rejected"
    (Invalid_argument "Dram_lut.create: size_bytes must be a positive multiple of row_bytes")
    (fun () -> ignore (Dram.create { (tiny ()) with size_bytes = 100; row_bytes = 32 }))

let test_row_buffer_pricing ()
    =
  let cfg = tiny ~rows:2 ~slots:4 () in
  let t = Dram.create cfg in
  let switch = cfg.Dram.activate_cycles + cfg.Dram.row_hit_cycles in
  (* First probe ever: no row is open, so it pays the activate. *)
  ignore (Dram.lookup t ~lut_id:0 ~key:10L);
  Alcotest.(check int) "cold probe activates" switch (Dram.last_probe_cycles t);
  (* Same key again: its row is now the open row. *)
  ignore (Dram.lookup t ~lut_id:0 ~key:10L);
  Alcotest.(check int) "open-row probe" cfg.Dram.row_hit_cycles
    (Dram.last_probe_cycles t);
  (* Find a key living in the other row and alternate: every probe switches. *)
  let other =
    let rec hunt k =
      ignore (Dram.lookup t ~lut_id:0 ~key:k);
      if Dram.last_probe_cycles t = switch then k else hunt (Int64.add k 1L)
    in
    hunt 11L
  in
  ignore (Dram.lookup t ~lut_id:0 ~key:10L);
  Alcotest.(check int) "alternating rows thrash" switch (Dram.last_probe_cycles t);
  ignore (Dram.lookup t ~lut_id:0 ~key:other);
  Alcotest.(check int) "and back" switch (Dram.last_probe_cycles t);
  let s = Dram.stats t in
  Alcotest.(check int) "all probes missed (empty tier)" s.Dram.probes s.Dram.misses;
  Alcotest.(check int) "row hits + activations = probes" s.Dram.probes
    (s.Dram.row_hits + s.Dram.row_activations)

let test_insert_lookup_fifo () =
  (* One row, two slots: the per-row FIFO evicts the oldest insertion. *)
  let t = Dram.create (tiny ~rows:1 ~slots:2 ()) in
  Dram.insert t ~lut_id:0 ~key:1L ~payload:100L;
  Dram.insert t ~lut_id:0 ~key:2L ~payload:200L;
  Alcotest.(check (option int64)) "k1 present" (Some 100L)
    (Dram.lookup t ~lut_id:0 ~key:1L);
  Alcotest.(check (option int64)) "k2 present" (Some 200L)
    (Dram.lookup t ~lut_id:0 ~key:2L);
  Dram.insert t ~lut_id:0 ~key:3L ~payload:300L;
  Alcotest.(check (option int64)) "oldest evicted" None
    (Dram.lookup t ~lut_id:0 ~key:1L);
  Alcotest.(check (option int64)) "younger survives" (Some 200L)
    (Dram.lookup t ~lut_id:0 ~key:2L);
  Alcotest.(check (option int64)) "newest present" (Some 300L)
    (Dram.lookup t ~lut_id:0 ~key:3L);
  Alcotest.(check int) "one eviction" 1 (Dram.stats t).Dram.evictions;
  (* Re-inserting an existing key refreshes in place, no eviction. *)
  Dram.insert t ~lut_id:0 ~key:2L ~payload:222L;
  Alcotest.(check (option int64)) "refreshed" (Some 222L)
    (Dram.lookup t ~lut_id:0 ~key:2L);
  Alcotest.(check int) "refresh is not an eviction" 1 (Dram.stats t).Dram.evictions;
  (* Invalidation opens a hole; the next insert fills it without evicting. *)
  Dram.invalidate_lut t ~lut_id:0;
  Alcotest.(check int) "invalidated" 0 (Dram.occupancy t);
  Dram.insert t ~lut_id:1 ~key:9L ~payload:900L;
  Alcotest.(check int) "hole filled" 1 (Dram.occupancy t);
  Alcotest.(check int) "hole fill is not an eviction" 1 (Dram.stats t).Dram.evictions;
  (* lut_id is part of the tag: same key under another LUT is a miss. *)
  Alcotest.(check (option int64)) "lut_id tags" None (Dram.lookup t ~lut_id:0 ~key:9L)

let test_bulk_amortisation () =
  let cfg = tiny ~rows:8 ~slots:4 () in
  let seed = Dram.create cfg in
  let keys = Array.init 24 (fun i -> Int64.of_int (i * 7919)) in
  Array.iter (fun k -> Dram.insert seed ~lut_id:0 ~key:k ~payload:(Int64.neg k)) keys;
  (* Collect the live entries round-robin across rows: the worst serial
     probe order, where consecutive probes (almost) always switch rows. *)
  let by_row = Hashtbl.create 8 in
  Dram.iter_entries seed (fun ~row ~slot:_ ~lut_id ~key ~payload:_ ~stamp:_ ->
      Hashtbl.replace by_row row ((lut_id, key) :: (try Hashtbl.find by_row row with Not_found -> [])));
  let buckets = ref [] in
  Hashtbl.iter (fun _ es -> buckets := ref es :: !buckets) by_row;
  let interleaved = ref [] in
  let drained = ref false in
  while not !drained do
    drained := true;
    List.iter
      (fun b ->
        match !b with
        | [] -> ()
        | e :: rest ->
            b := rest;
            drained := false;
            interleaved := e :: !interleaved)
      !buckets
  done;
  let live = Array.of_list !interleaved in
  (* Individual probes from a cold row buffer, summed. *)
  let individual =
    let t = Dram.create cfg in
    Array.iter (fun (l, k) -> Dram.insert t ~lut_id:l ~key:k ~payload:1L) live;
    Array.fold_left
      (fun acc (l, k) ->
        ignore (Dram.lookup t ~lut_id:l ~key:k);
        acc + Dram.last_probe_cycles t)
      0 live
  in
  let t = Dram.create cfg in
  Array.iter (fun (l, k) -> Dram.insert t ~lut_id:l ~key:k ~payload:1L) live;
  let results, bulk_cycles = Dram.bulk_lookup t live in
  Alcotest.(check bool) "bulk never dearer than serial probes" true
    (bulk_cycles <= individual);
  (* With more live entries than rows, at least one row must be shared, so
     the sort saves at least one activation. *)
  if Array.length live > Dram.rows t then
    Alcotest.(check bool) "row sharing amortises an activation" true
      (bulk_cycles < individual);
  Array.iteri
    (fun i r ->
      Alcotest.(check bool) (Printf.sprintf "bulk result %d" i) true (r <> None))
    results

(* --- approximate payload (criticality split) ---------------------------- *)

let l3_spec rate kind =
  { Fault_model.default with rate; kind; sites = Fault_model.l3_sites_list; seed = 42L }

let test_relaxed_bits_decay () =
  let inj = Injector.create (l3_spec 1.0 Fault_model.Stuck_at_0) in
  let t = Dram.create ~injector:inj (tiny ~rows:1 ~slots:4 ~exact:48 ()) in
  let payload = -1L (* all ones: any stuck-at-0 flip is visible *) in
  Dram.insert t ~lut_id:0 ~key:5L ~payload;
  let high_mask = Int64.shift_left (-1L) 16 in
  (match Dram.lookup t ~lut_id:0 ~key:5L with
  | None -> Alcotest.fail "entry lost"
  | Some v ->
      Alcotest.(check int64) "exact high bits untouched"
        (Int64.logand payload high_mask)
        (Int64.logand v high_mask);
      Alcotest.(check bool) "a relaxed low bit decayed" true (v <> payload));
  Alcotest.(check bool) "decay counted" true
    ((Dram.stats t).Dram.corrupted_reads >= 1);
  (* The decayed value persists: it was written back into the cells. *)
  let first = Dram.lookup t ~lut_id:0 ~key:5L in
  (match first with
  | Some v ->
      Alcotest.(check int64) "still exact up high"
        (Int64.logand payload high_mask)
        (Int64.logand v high_mask)
  | None -> Alcotest.fail "entry lost on reread");
  (* Rewriting the entry restores pristine cells for the high bits. *)
  Dram.insert t ~lut_id:0 ~key:5L ~payload:0x1234_5678_0000_0000L;
  match Dram.lookup t ~lut_id:0 ~key:5L with
  | Some v ->
      Alcotest.(check int64) "rewrite refreshes high bits" 0x1234_5678_0000_0000L
        (Int64.logand v high_mask)
  | None -> Alcotest.fail "entry lost after rewrite"

let test_exact_64_never_decays () =
  let inj = Injector.create (l3_spec 1.0 Fault_model.Transient) in
  let t = Dram.create ~injector:inj (tiny ~rows:1 ~slots:4 ~exact:64 ()) in
  Dram.insert t ~lut_id:0 ~key:5L ~payload:0xDEAD_BEEFL;
  for _ = 1 to 10 do
    Alcotest.(check (option int64)) "fully exact storage" (Some 0xDEAD_BEEFL)
      (Dram.lookup t ~lut_id:0 ~key:5L)
  done;
  Alcotest.(check int) "no corrupted reads" 0 (Dram.stats t).Dram.corrupted_reads

let test_disabled_site_is_exact () =
  (* An injector whose spec does not list l3.payload must leave reads exact
     and not advance its fault stream. *)
  let inj = Injector.create { (l3_spec 1.0 Fault_model.Transient) with
                              sites = [ Fault_model.L1_payload ] } in
  let t = Dram.create ~injector:inj (tiny ~rows:1 ~slots:4 ~exact:0 ()) in
  Dram.insert t ~lut_id:0 ~key:5L ~payload:77L;
  Alcotest.(check (option int64)) "site off, read exact" (Some 77L)
    (Dram.lookup t ~lut_id:0 ~key:5L);
  Alcotest.(check int) "nothing injected" 0
    (Injector.injected_at inj Fault_model.L3_payload)

(* --- snapshot format ---------------------------------------------------- *)

let entry_gen =
  QCheck.Gen.(
    triple (int_range 0 7)
      (map Int64.of_int (int_range 0 1_000_000))
      (map Int64.of_int int))

let sram_capture_fixpoint =
  (* capture -> bytes -> restore -> capture is the identity on sections:
     entry set, payloads, and LRU recency order all survive. *)
  QCheck.Test.make ~name:"sram snapshot roundtrip preserves entries and LRU order"
    ~count:100
    QCheck.(make (Gen.list_size (Gen.int_range 1 120) entry_gen))
    (fun entries ->
      let mk () = Lut.create ~size_bytes:1024 () in
      let a = mk () in
      List.iter (fun (l, k, p) -> Lut.insert a ~lut_id:l ~key:k ~payload:p None)
        entries;
      (* Touch a few keys so recency order differs from insertion order. *)
      List.iteri (fun i (l, k, _) -> if i mod 3 = 0 then
          ignore (Lut.lookup a ~lut_id:l ~key:k)) entries;
      let snap = { Snapshot.sections = [ Snapshot.capture_lut ~name:"l2" a ] } in
      match Snapshot.of_bytes (Snapshot.to_bytes snap) with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok decoded ->
          let b = mk () in
          let restored =
            match Snapshot.section decoded "l2" with
            | Some s -> Snapshot.restore_lut s b
            | None -> QCheck.Test.fail_report "section lost"
          in
          (* Recency order survived: re-capturing the restored LUT
             reproduces the original section byte for byte. (Checked before
             the lookups below, which refresh LRU state.) *)
          restored = Snapshot.total_entries snap
          && Snapshot.to_bytes
               { Snapshot.sections = [ Snapshot.capture_lut ~name:"l2" b ] }
             = Snapshot.to_bytes snap
          && (* And every live lookup answers bit-identically. *)
          List.for_all
            (fun (l, k, _) ->
              Lut.lookup a ~lut_id:l ~key:k = Lut.lookup b ~lut_id:l ~key:k)
            entries)

let dram_capture_fixpoint =
  QCheck.Test.make ~name:"dram snapshot roundtrip preserves entries and FIFO order"
    ~count:100
    QCheck.(make (Gen.list_size (Gen.int_range 1 80) entry_gen))
    (fun entries ->
      let cfg = tiny ~rows:4 ~slots:4 () in
      let a = Dram.create cfg in
      List.iter (fun (l, k, p) -> Dram.insert a ~lut_id:l ~key:k ~payload:p) entries;
      let snap = { Snapshot.sections = [ Snapshot.capture_dram ~name:"l3" a ] } in
      match Snapshot.of_bytes (Snapshot.to_bytes snap) with
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e
      | Ok decoded ->
          let b = Dram.create cfg in
          let restored =
            match Snapshot.section decoded "l3" with
            | Some s -> Snapshot.restore_dram s b
            | None -> QCheck.Test.fail_report "section lost"
          in
          restored = Dram.occupancy a
          && List.for_all
               (fun (l, k, _) ->
                 Dram.lookup a ~lut_id:l ~key:k = Dram.lookup b ~lut_id:l ~key:k)
               entries
          && Snapshot.to_bytes
               { Snapshot.sections = [ Snapshot.capture_dram ~name:"l3" b ] }
             = Snapshot.to_bytes snap)

let sample_snapshot () =
  let lut = Lut.create ~size_bytes:1024 () in
  for i = 1 to 40 do
    Lut.insert lut ~lut_id:(i mod 4) ~key:(Int64.of_int (i * 31))
      ~payload:(Int64.of_int (i * 1001)) None
  done;
  { Snapshot.sections = [ Snapshot.capture_lut ~name:"l1.0" lut ] }

let reject name bytes expect =
  let file = Filename.temp_file "axmemo_test" ".axs" in
  let oc = open_out_bin file in
  output_string oc bytes;
  close_out oc;
  let r = Snapshot.load file in
  Sys.remove file;
  match r with
  | Ok _ -> Alcotest.failf "%s: damaged snapshot accepted" name
  | Error msg ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: error mentions %S (got %S)" name expect msg)
        true
        (contains msg expect)

let test_snapshot_rejection () =
  let good = Snapshot.to_bytes (sample_snapshot ()) in
  (* Sanity: the pristine bytes decode. *)
  (match Snapshot.of_bytes good with
  | Ok s -> Alcotest.(check int) "pristine decodes" 40 (Snapshot.total_entries s)
  | Error e -> Alcotest.failf "pristine rejected: %s" e);
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF));
    Bytes.to_string b
  in
  reject "bad magic" (flip good 0) "bad magic";
  reject "wrong version" (flip good 8) "unsupported snapshot version";
  reject "corrupted body" (flip good (String.length good / 2)) "checksum";
  (* Cut inside the header so the parser runs out of bytes before it even
     reaches the checksum. *)
  reject "truncated" (String.sub good 0 13) "truncated";
  (* Appended bytes shift where the trailing CRC is read from, so the
     checksum is what catches them. *)
  reject "trailing garbage" (good ^ "junk") "checksum";
  reject "empty file" "" "truncated";
  (* A missing file is a clean one-line error, not an exception. *)
  match Snapshot.load "/nonexistent/axmemo.axs" with
  | Ok _ -> Alcotest.fail "missing file accepted"
  | Error msg -> Alcotest.(check bool) "missing file error" true (String.length msg > 0)

let test_snapshot_file_roundtrip () =
  let snap = sample_snapshot () in
  let file = Filename.temp_file "axmemo_test" ".axs" in
  Snapshot.save snap file;
  let r = Snapshot.load file in
  Sys.remove file;
  match r with
  | Error e -> Alcotest.failf "load failed: %s" e
  | Ok loaded ->
      Alcotest.(check string) "file roundtrip byte-identical"
        (Snapshot.to_bytes snap) (Snapshot.to_bytes loaded)

(* --- cluster capture/restore & L3 integration --------------------------- *)

(* Small LUTs so the shared level actually spills into the DRAM tier. *)
let l3_cfg =
  {
    Corun.default with
    ncores = 2;
    l1_bytes = 1024;
    shared_l2_bytes = 4096;
    workloads = [ "blackscholes"; "sobel" ];
    requests = 8;
    variant = W.Workload.Sample;
    l3 = Some { Dram.default with size_bytes = 256 * 1024; row_bytes = 1024 };
  }

let l3_outcome = lazy (Corun.run_keep l3_cfg)

let test_cluster_l3_summary () =
  let o, _ = Lazy.force l3_outcome in
  match o.Corun.l3 with
  | None -> Alcotest.fail "l3 summary missing"
  | Some s ->
      Alcotest.(check bool) "spills reached the tier" true (s.Corun.l3_spills > 0);
      Alcotest.(check bool) "tier was probed" true (s.Corun.l3_probes > 0);
      Alcotest.(check int) "probes split into hits+misses" s.Corun.l3_probes
        (s.Corun.l3_tier_hits + s.Corun.l3_misses);
      (* Inserts are charged as row traffic too, so row touches can only
         exceed probes. *)
      Alcotest.(check bool) "every probe touched a row" true
        (s.Corun.l3_row_hits + s.Corun.l3_row_activations >= s.Corun.l3_probes);
      Alcotest.(check bool) "occupancy within capacity" true
        (s.Corun.l3_occupancy <= s.Corun.l3_capacity);
      Alcotest.(check bool) "label advertises the tier" true
        (contains (Corun.label l3_cfg) "l3=256KB")

let test_cluster_capture_restore () =
  let _, cluster = Lazy.force l3_outcome in
  let snap = Corun.capture_snapshot cluster in
  let names = List.map (fun (s : Snapshot.section) -> s.Snapshot.name)
      snap.Snapshot.sections in
  Alcotest.(check (list string)) "sections per level"
    [ "l1.0"; "l1.1"; "l2"; "l3" ] names;
  Alcotest.(check bool) "captured something" true (Snapshot.total_entries snap > 0);
  (* Restoring into a fresh cluster replays every captured entry. *)
  let fresh = snd (Corun.run_keep { l3_cfg with requests = 0 }) in
  let restored = Corun.restore_snapshot fresh snap in
  Alcotest.(check int) "every entry restored" (Snapshot.total_entries snap) restored;
  (* And a re-capture of the restored cluster is byte-identical. *)
  Alcotest.(check string) "restored cluster re-captures identically"
    (Snapshot.to_bytes snap)
    (Snapshot.to_bytes (Corun.capture_snapshot fresh))

let test_l3_absent_unchanged () =
  (* The tier is strictly opt-in: without it the label, the outcome record
     and the report JSON must not mention it at all. *)
  let cfg = { l3_cfg with l3 = None } in
  let o = Corun.run cfg in
  Alcotest.(check bool) "no l3 summary" true (o.Corun.l3 = None);
  let has_l3 s = contains s "\"l3\"" in
  Alcotest.(check bool) "label silent" false (contains (Corun.label cfg) "l3");
  Alcotest.(check bool) "report json silent" false
    (has_l3 (Json.to_string (Corun.report [ o ])))

(* --- serve warm start --------------------------------------------------- *)

let serve_cfg warm_start =
  {
    Serve.default with
    cluster =
      {
        Corun.default with
        ncores = 2;
        workloads = [ "blackscholes"; "sobel" ];
        requests = 12;
        variant = W.Workload.Sample;
      };
    arrival = Arrival.Poisson;
    load = 0.8;
    queue_capacity = 8;
    warm_start;
  }

let test_warm_start_beats_cold () =
  (* Warm a closed cluster, snapshot it, and compare a cold serve run with
     its warm twin: same arrivals, better first-window hit rate. *)
  let _, warmed = Corun.run_keep (serve_cfg None).Serve.cluster in
  let file = Filename.temp_file "axmemo_test" ".axs" in
  Snapshot.save (Corun.capture_snapshot warmed) file;
  let cold = Serve.run (serve_cfg None) in
  let warm = Serve.run (serve_cfg (Some file)) in
  Sys.remove file;
  Alcotest.(check int) "cold restores nothing" 0 cold.Serve.restored_entries;
  Alcotest.(check bool) "warm restored entries" true (warm.Serve.restored_entries > 0);
  (* The arrival stream ignores warm_start: both runs face identical
     arrivals. *)
  Alcotest.(check (list int)) "same arrivals"
    (List.map (fun (r : Serve.request_record) -> r.Serve.arrival) cold.Serve.requests)
    (List.map (fun (r : Serve.request_record) -> r.Serve.arrival) warm.Serve.requests);
  Alcotest.(check bool)
    (Printf.sprintf "warm first-window hit rate improves (%.3f -> %.3f)"
       cold.Serve.cold_hit_rate warm.Serve.cold_hit_rate)
    true
    (warm.Serve.cold_hit_rate > cold.Serve.cold_hit_rate);
  let has_warm s = contains s "+warm" in
  Alcotest.(check bool) "warm label tagged" true
    (has_warm (Serve.label (serve_cfg (Some file))));
  Alcotest.(check bool) "cold label untagged" false
    (has_warm (Serve.label (serve_cfg None)))

let test_warm_start_bad_file_rejected () =
  Alcotest.(check bool) "invalid snapshot raises Invalid_argument" true
    (match Serve.run (serve_cfg (Some "/nonexistent/warm.axs")) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --- suites ------------------------------------------------------------- *)

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ sram_capture_fixpoint; dram_capture_fixpoint ]

let () =
  Alcotest.run "tier"
    [
      ( "dram_lut",
        [
          Alcotest.test_case "geometry" `Quick test_geometry;
          Alcotest.test_case "row-buffer pricing" `Quick test_row_buffer_pricing;
          Alcotest.test_case "insert/lookup/per-row FIFO" `Quick test_insert_lookup_fifo;
          Alcotest.test_case "bulk probe amortisation" `Quick test_bulk_amortisation;
        ] );
      ( "approx_payload",
        [
          Alcotest.test_case "relaxed low bits decay" `Quick test_relaxed_bits_decay;
          Alcotest.test_case "64 exact bits never decay" `Quick test_exact_64_never_decays;
          Alcotest.test_case "disabled site stays exact" `Quick test_disabled_site_is_exact;
        ] );
      ( "snapshot",
        [
          Alcotest.test_case "file roundtrip" `Quick test_snapshot_file_roundtrip;
          Alcotest.test_case "damaged files rejected" `Quick test_snapshot_rejection;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "l3 summary" `Quick test_cluster_l3_summary;
          Alcotest.test_case "capture/restore" `Quick test_cluster_capture_restore;
          Alcotest.test_case "l3-absent runs untouched" `Quick test_l3_absent_unchanged;
        ] );
      ( "serve",
        [
          Alcotest.test_case "warm start beats cold" `Slow test_warm_start_beats_cold;
          Alcotest.test_case "bad warm-start rejected" `Quick
            test_warm_start_bad_file_rejected;
        ] );
      ("properties", qsuite);
    ]
