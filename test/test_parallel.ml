(* Tests for the domain pool and the parallel experiment matrix.

   The contract under test is bit-identity: [Runner.run_matrix ~jobs:n] must
   return exactly what the serial path returns, for any n, and repeated runs
   must be deterministic. Speedup is deliberately NOT asserted — it depends
   on host core count (CI may pin us to one). *)

module Pool = Axmemo_util.Pool
module Runner = Axmemo.Runner
module Workload = Axmemo_workloads.Workload
module Registry = Axmemo_workloads.Registry
module Model = Axmemo_energy.Model

(* ------------------------------------------------------------------ *)
(* Pool unit tests *)

let test_pool_map_order () =
  let xs = List.init 100 Fun.id in
  let ys = Pool.run ~jobs:4 (fun x -> x * x) xs in
  Alcotest.(check (list int)) "order preserved" (List.map (fun x -> x * x) xs) ys

let test_pool_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Pool.run ~jobs:4 Fun.id []);
  Alcotest.(check (list int)) "single" [ 7 ] (Pool.run ~jobs:4 Fun.id [ 7 ])

let test_pool_jobs_one_serial () =
  (* jobs:1 must not spawn domains: side effects happen on the calling
     domain, in order. *)
  let seen = ref [] in
  let self = Domain.self () in
  let ok = ref true in
  ignore
    (Pool.run ~jobs:1
       (fun x ->
         if Domain.self () <> self then ok := false;
         seen := x :: !seen)
       [ 1; 2; 3 ]);
  Alcotest.(check bool) "calling domain" true !ok;
  Alcotest.(check (list int)) "in order" [ 3; 2; 1 ] !seen

exception Boom

let test_pool_exception_propagates () =
  Alcotest.check_raises "re-raised" Boom (fun () ->
      ignore (Pool.run ~jobs:4 (fun x -> if x = 5 then raise Boom else x) (List.init 10 Fun.id)))

let test_pool_reuse () =
  let p = Pool.create ~jobs:3 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown p)
    (fun () ->
      let a = Pool.map p (fun x -> x + 1) [ 1; 2; 3 ] in
      let b = Pool.map p string_of_int [ 4; 5 ] in
      Alcotest.(check (list int)) "first map" [ 2; 3; 4 ] a;
      Alcotest.(check (list string)) "second map" [ "4"; "5" ] b)

(* ------------------------------------------------------------------ *)
(* Bit-identity of the experiment matrix *)

let matrix_names = [ "blackscholes"; "inversek2j"; "sobel" ]
let matrix_configs = [ Runner.Baseline; Runner.l1_8k; Runner.software_default ]

let cells () =
  List.concat_map
    (fun n ->
      let _, make = Option.get (Registry.find n) in
      List.map (fun c -> (c, make Workload.Sample)) matrix_configs)
    matrix_names

let floats_identical a b = Int64.bits_of_float a = Int64.bits_of_float b

let outputs_identical (a : Workload.outputs) (b : Workload.outputs) =
  match (a, b) with
  | Workload.Floats x, Workload.Floats y ->
      Array.length x = Array.length y
      && Array.for_all2 (fun u v -> floats_identical u v) x y
  | Workload.Bools x, Workload.Bools y -> x = y
  | _ -> false

let check_identical i (a : Runner.result) (b : Runner.result) =
  let tag name = Printf.sprintf "cell %d %s %s" i a.label name in
  Alcotest.(check string) (tag "label") a.label b.label;
  Alcotest.(check int) (tag "cycles") a.cycles b.cycles;
  Alcotest.(check bool) (tag "seconds") true (floats_identical a.seconds b.seconds);
  Alcotest.(check int) (tag "dyn_normal") a.dyn_normal b.dyn_normal;
  Alcotest.(check int) (tag "dyn_memo") a.dyn_memo b.dyn_memo;
  Alcotest.(check int) (tag "lookups") a.lookups b.lookups;
  Alcotest.(check int) (tag "hits") a.hits b.hits;
  Alcotest.(check bool) (tag "hit_rate") true (floats_identical a.hit_rate b.hit_rate);
  Alcotest.(check int) (tag "collisions") a.collisions b.collisions;
  Alcotest.(check bool) (tag "memo_disabled") a.memo_disabled b.memo_disabled;
  Alcotest.(check bool)
    (tag "energy")
    true
    (floats_identical a.energy.Model.total_pj b.energy.Model.total_pj);
  Alcotest.(check bool) (tag "outputs") true (outputs_identical a.outputs b.outputs)

let test_matrix_parallel_matches_serial () =
  let serial = Runner.run_matrix ~jobs:1 (cells ()) in
  let parallel = Runner.run_matrix ~jobs:4 (cells ()) in
  Alcotest.(check int) "same length" (List.length serial) (List.length parallel);
  List.iteri (fun i (a, b) -> check_identical i a b)
    (List.combine serial parallel)

let test_matrix_deterministic () =
  let a = Runner.run_matrix ~jobs:4 (cells ()) in
  let b = Runner.run_matrix ~jobs:4 (cells ()) in
  List.iteri (fun i (x, y) -> check_identical i x y) (List.combine a b)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_pool_map_order;
          Alcotest.test_case "empty and singleton" `Quick test_pool_empty_and_single;
          Alcotest.test_case "jobs=1 stays serial" `Quick test_pool_jobs_one_serial;
          Alcotest.test_case "exceptions propagate" `Quick test_pool_exception_propagates;
          Alcotest.test_case "pool is reusable" `Quick test_pool_reuse;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "parallel == serial (bit-identical)" `Slow
            test_matrix_parallel_matches_serial;
          Alcotest.test_case "parallel runs deterministic" `Slow
            test_matrix_deterministic;
        ] );
    ]
